# Empty dependencies file for uniscan_cli.
# This may be replaced when dependencies are built.
