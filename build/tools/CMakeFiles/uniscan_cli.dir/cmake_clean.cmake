file(REMOVE_RECURSE
  "CMakeFiles/uniscan_cli.dir/uniscan_cli.cpp.o"
  "CMakeFiles/uniscan_cli.dir/uniscan_cli.cpp.o.d"
  "uniscan_cli"
  "uniscan_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniscan_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
