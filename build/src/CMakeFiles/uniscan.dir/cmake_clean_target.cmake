file(REMOVE_RECURSE
  "libuniscan.a"
)
