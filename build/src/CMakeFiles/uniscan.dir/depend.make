# Empty dependencies file for uniscan.
# This may be replaced when dependencies are built.
