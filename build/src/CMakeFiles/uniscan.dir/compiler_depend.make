# Empty compiler generated dependencies file for uniscan.
# This may be replaced when dependencies are built.
