
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atpg/dcalc.cpp" "src/CMakeFiles/uniscan.dir/atpg/dcalc.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/atpg/dcalc.cpp.o.d"
  "/root/repo/src/atpg/frame_model.cpp" "src/CMakeFiles/uniscan.dir/atpg/frame_model.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/atpg/frame_model.cpp.o.d"
  "/root/repo/src/atpg/ndetect.cpp" "src/CMakeFiles/uniscan.dir/atpg/ndetect.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/atpg/ndetect.cpp.o.d"
  "/root/repo/src/atpg/podem.cpp" "src/CMakeFiles/uniscan.dir/atpg/podem.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/atpg/podem.cpp.o.d"
  "/root/repo/src/atpg/redundancy.cpp" "src/CMakeFiles/uniscan.dir/atpg/redundancy.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/atpg/redundancy.cpp.o.d"
  "/root/repo/src/atpg/scan_knowledge.cpp" "src/CMakeFiles/uniscan.dir/atpg/scan_knowledge.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/atpg/scan_knowledge.cpp.o.d"
  "/root/repo/src/atpg/seq_atpg.cpp" "src/CMakeFiles/uniscan.dir/atpg/seq_atpg.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/atpg/seq_atpg.cpp.o.d"
  "/root/repo/src/atpg/transition_atpg.cpp" "src/CMakeFiles/uniscan.dir/atpg/transition_atpg.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/atpg/transition_atpg.cpp.o.d"
  "/root/repo/src/baseline/comb_atpg.cpp" "src/CMakeFiles/uniscan.dir/baseline/comb_atpg.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/baseline/comb_atpg.cpp.o.d"
  "/root/repo/src/baseline/scan_testset_gen.cpp" "src/CMakeFiles/uniscan.dir/baseline/scan_testset_gen.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/baseline/scan_testset_gen.cpp.o.d"
  "/root/repo/src/compact/omission.cpp" "src/CMakeFiles/uniscan.dir/compact/omission.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/compact/omission.cpp.o.d"
  "/root/repo/src/compact/restoration.cpp" "src/CMakeFiles/uniscan.dir/compact/restoration.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/compact/restoration.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/uniscan.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/uniscan.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/uniscan.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/core/report.cpp.o.d"
  "/root/repo/src/diag/diagnosis.cpp" "src/CMakeFiles/uniscan.dir/diag/diagnosis.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/diag/diagnosis.cpp.o.d"
  "/root/repo/src/fault/fault.cpp" "src/CMakeFiles/uniscan.dir/fault/fault.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/fault/fault.cpp.o.d"
  "/root/repo/src/fault/fault_list.cpp" "src/CMakeFiles/uniscan.dir/fault/fault_list.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/fault/fault_list.cpp.o.d"
  "/root/repo/src/fault/transition_fault.cpp" "src/CMakeFiles/uniscan.dir/fault/transition_fault.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/fault/transition_fault.cpp.o.d"
  "/root/repo/src/netlist/bench_io.cpp" "src/CMakeFiles/uniscan.dir/netlist/bench_io.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/netlist/bench_io.cpp.o.d"
  "/root/repo/src/netlist/builder.cpp" "src/CMakeFiles/uniscan.dir/netlist/builder.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/netlist/builder.cpp.o.d"
  "/root/repo/src/netlist/gate.cpp" "src/CMakeFiles/uniscan.dir/netlist/gate.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/netlist/gate.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/CMakeFiles/uniscan.dir/netlist/netlist.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/netlist/netlist.cpp.o.d"
  "/root/repo/src/netlist/verilog_io.cpp" "src/CMakeFiles/uniscan.dir/netlist/verilog_io.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/netlist/verilog_io.cpp.o.d"
  "/root/repo/src/scan/scan_insertion.cpp" "src/CMakeFiles/uniscan.dir/scan/scan_insertion.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/scan/scan_insertion.cpp.o.d"
  "/root/repo/src/scan/scan_test.cpp" "src/CMakeFiles/uniscan.dir/scan/scan_test.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/scan/scan_test.cpp.o.d"
  "/root/repo/src/sim/event_sim.cpp" "src/CMakeFiles/uniscan.dir/sim/event_sim.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/sim/event_sim.cpp.o.d"
  "/root/repo/src/sim/fault_sim.cpp" "src/CMakeFiles/uniscan.dir/sim/fault_sim.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/sim/fault_sim.cpp.o.d"
  "/root/repo/src/sim/fault_sim_session.cpp" "src/CMakeFiles/uniscan.dir/sim/fault_sim_session.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/sim/fault_sim_session.cpp.o.d"
  "/root/repo/src/sim/logic3.cpp" "src/CMakeFiles/uniscan.dir/sim/logic3.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/sim/logic3.cpp.o.d"
  "/root/repo/src/sim/sequence.cpp" "src/CMakeFiles/uniscan.dir/sim/sequence.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/sim/sequence.cpp.o.d"
  "/root/repo/src/sim/sequence_io.cpp" "src/CMakeFiles/uniscan.dir/sim/sequence_io.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/sim/sequence_io.cpp.o.d"
  "/root/repo/src/sim/sequential_sim.cpp" "src/CMakeFiles/uniscan.dir/sim/sequential_sim.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/sim/sequential_sim.cpp.o.d"
  "/root/repo/src/sim/transition_sim.cpp" "src/CMakeFiles/uniscan.dir/sim/transition_sim.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/sim/transition_sim.cpp.o.d"
  "/root/repo/src/translate/translation.cpp" "src/CMakeFiles/uniscan.dir/translate/translation.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/translate/translation.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/uniscan.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/uniscan.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/string_utils.cpp" "src/CMakeFiles/uniscan.dir/util/string_utils.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/util/string_utils.cpp.o.d"
  "/root/repo/src/workloads/circuits.cpp" "src/CMakeFiles/uniscan.dir/workloads/circuits.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/workloads/circuits.cpp.o.d"
  "/root/repo/src/workloads/suite.cpp" "src/CMakeFiles/uniscan.dir/workloads/suite.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/workloads/suite.cpp.o.d"
  "/root/repo/src/workloads/synth_gen.cpp" "src/CMakeFiles/uniscan.dir/workloads/synth_gen.cpp.o" "gcc" "src/CMakeFiles/uniscan.dir/workloads/synth_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
