
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/baseline_test.cpp.o.d"
  "/root/repo/tests/bench_io_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/bench_io_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/bench_io_test.cpp.o.d"
  "/root/repo/tests/cli_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/cli_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/cli_test.cpp.o.d"
  "/root/repo/tests/compaction_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/compaction_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/compaction_test.cpp.o.d"
  "/root/repo/tests/dcalc_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/dcalc_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/dcalc_test.cpp.o.d"
  "/root/repo/tests/event_sim_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/event_sim_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/event_sim_test.cpp.o.d"
  "/root/repo/tests/fault_list_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/fault_list_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/fault_list_test.cpp.o.d"
  "/root/repo/tests/fault_sim_session_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/fault_sim_session_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/fault_sim_session_test.cpp.o.d"
  "/root/repo/tests/fault_sim_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/fault_sim_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/fault_sim_test.cpp.o.d"
  "/root/repo/tests/frame_model_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/frame_model_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/frame_model_test.cpp.o.d"
  "/root/repo/tests/fuzz_property_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/fuzz_property_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/fuzz_property_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/logic3_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/logic3_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/logic3_test.cpp.o.d"
  "/root/repo/tests/metrics_diag_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/metrics_diag_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/metrics_diag_test.cpp.o.d"
  "/root/repo/tests/ndetect_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/ndetect_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/ndetect_test.cpp.o.d"
  "/root/repo/tests/netlist_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/netlist_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/netlist_test.cpp.o.d"
  "/root/repo/tests/pipeline_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/pipeline_test.cpp.o.d"
  "/root/repo/tests/podem_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/podem_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/podem_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/redundancy_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/redundancy_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/redundancy_test.cpp.o.d"
  "/root/repo/tests/report_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/report_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/report_test.cpp.o.d"
  "/root/repo/tests/scan_insertion_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/scan_insertion_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/scan_insertion_test.cpp.o.d"
  "/root/repo/tests/scan_knowledge_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/scan_knowledge_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/scan_knowledge_test.cpp.o.d"
  "/root/repo/tests/seq_atpg_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/seq_atpg_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/seq_atpg_test.cpp.o.d"
  "/root/repo/tests/sequence_io_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/sequence_io_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/sequence_io_test.cpp.o.d"
  "/root/repo/tests/sequence_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/sequence_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/sequence_test.cpp.o.d"
  "/root/repo/tests/sequential_sim_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/sequential_sim_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/sequential_sim_test.cpp.o.d"
  "/root/repo/tests/synth_gen_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/synth_gen_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/synth_gen_test.cpp.o.d"
  "/root/repo/tests/transition_property_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/transition_property_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/transition_property_test.cpp.o.d"
  "/root/repo/tests/transition_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/transition_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/transition_test.cpp.o.d"
  "/root/repo/tests/translation_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/translation_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/translation_test.cpp.o.d"
  "/root/repo/tests/verilog_io_test.cpp" "tests/CMakeFiles/uniscan_tests.dir/verilog_io_test.cpp.o" "gcc" "tests/CMakeFiles/uniscan_tests.dir/verilog_io_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/uniscan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
