# Empty compiler generated dependencies file for uniscan_tests.
# This may be replaced when dependencies are built.
