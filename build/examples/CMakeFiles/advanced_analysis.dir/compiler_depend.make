# Empty compiler generated dependencies file for advanced_analysis.
# This may be replaced when dependencies are built.
