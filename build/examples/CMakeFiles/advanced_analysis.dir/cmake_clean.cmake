file(REMOVE_RECURSE
  "CMakeFiles/advanced_analysis.dir/advanced_analysis.cpp.o"
  "CMakeFiles/advanced_analysis.dir/advanced_analysis.cpp.o.d"
  "advanced_analysis"
  "advanced_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advanced_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
