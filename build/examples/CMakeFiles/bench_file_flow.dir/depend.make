# Empty dependencies file for bench_file_flow.
# This may be replaced when dependencies are built.
