file(REMOVE_RECURSE
  "CMakeFiles/bench_file_flow.dir/bench_file_flow.cpp.o"
  "CMakeFiles/bench_file_flow.dir/bench_file_flow.cpp.o.d"
  "bench_file_flow"
  "bench_file_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_file_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
