file(REMOVE_RECURSE
  "CMakeFiles/translate_legacy_tests.dir/translate_legacy_tests.cpp.o"
  "CMakeFiles/translate_legacy_tests.dir/translate_legacy_tests.cpp.o.d"
  "translate_legacy_tests"
  "translate_legacy_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_legacy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
