# Empty dependencies file for translate_legacy_tests.
# This may be replaced when dependencies are built.
