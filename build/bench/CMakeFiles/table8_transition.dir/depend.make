# Empty dependencies file for table8_transition.
# This may be replaced when dependencies are built.
