file(REMOVE_RECURSE
  "CMakeFiles/table8_transition.dir/table8_transition.cpp.o"
  "CMakeFiles/table8_transition.dir/table8_transition.cpp.o.d"
  "table8_transition"
  "table8_transition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_transition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
