# Empty compiler generated dependencies file for table7_translated.
# This may be replaced when dependencies are built.
