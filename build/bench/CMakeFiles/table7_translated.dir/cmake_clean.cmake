file(REMOVE_RECURSE
  "CMakeFiles/table7_translated.dir/table7_translated.cpp.o"
  "CMakeFiles/table7_translated.dir/table7_translated.cpp.o.d"
  "table7_translated"
  "table7_translated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_translated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
