# Empty dependencies file for table5_coverage.
# This may be replaced when dependencies are built.
