file(REMOVE_RECURSE
  "CMakeFiles/table5_coverage.dir/table5_coverage.cpp.o"
  "CMakeFiles/table5_coverage.dir/table5_coverage.cpp.o.d"
  "table5_coverage"
  "table5_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
