file(REMOVE_RECURSE
  "CMakeFiles/table3_translation.dir/table3_translation.cpp.o"
  "CMakeFiles/table3_translation.dir/table3_translation.cpp.o.d"
  "table3_translation"
  "table3_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
