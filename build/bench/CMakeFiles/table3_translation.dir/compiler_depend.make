# Empty compiler generated dependencies file for table3_translation.
# This may be replaced when dependencies are built.
