# Empty compiler generated dependencies file for micro_atpg.
# This may be replaced when dependencies are built.
