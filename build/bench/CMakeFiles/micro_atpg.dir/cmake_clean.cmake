file(REMOVE_RECURSE
  "CMakeFiles/micro_atpg.dir/micro_atpg.cpp.o"
  "CMakeFiles/micro_atpg.dir/micro_atpg.cpp.o.d"
  "micro_atpg"
  "micro_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
