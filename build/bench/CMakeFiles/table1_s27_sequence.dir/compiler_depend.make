# Empty compiler generated dependencies file for table1_s27_sequence.
# This may be replaced when dependencies are built.
