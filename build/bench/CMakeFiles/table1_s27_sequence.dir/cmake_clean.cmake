file(REMOVE_RECURSE
  "CMakeFiles/table1_s27_sequence.dir/table1_s27_sequence.cpp.o"
  "CMakeFiles/table1_s27_sequence.dir/table1_s27_sequence.cpp.o.d"
  "table1_s27_sequence"
  "table1_s27_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_s27_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
