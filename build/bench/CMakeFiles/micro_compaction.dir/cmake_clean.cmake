file(REMOVE_RECURSE
  "CMakeFiles/micro_compaction.dir/micro_compaction.cpp.o"
  "CMakeFiles/micro_compaction.dir/micro_compaction.cpp.o.d"
  "micro_compaction"
  "micro_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
