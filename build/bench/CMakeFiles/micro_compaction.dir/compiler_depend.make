# Empty compiler generated dependencies file for micro_compaction.
# This may be replaced when dependencies are built.
