file(REMOVE_RECURSE
  "CMakeFiles/micro_xfill.dir/micro_xfill.cpp.o"
  "CMakeFiles/micro_xfill.dir/micro_xfill.cpp.o.d"
  "micro_xfill"
  "micro_xfill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_xfill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
