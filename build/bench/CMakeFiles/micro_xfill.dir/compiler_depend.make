# Empty compiler generated dependencies file for micro_xfill.
# This may be replaced when dependencies are built.
