# Empty compiler generated dependencies file for table4_compaction.
# This may be replaced when dependencies are built.
