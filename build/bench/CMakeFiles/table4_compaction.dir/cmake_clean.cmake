file(REMOVE_RECURSE
  "CMakeFiles/table4_compaction.dir/table4_compaction.cpp.o"
  "CMakeFiles/table4_compaction.dir/table4_compaction.cpp.o.d"
  "table4_compaction"
  "table4_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
