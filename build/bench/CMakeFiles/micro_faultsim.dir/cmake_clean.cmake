file(REMOVE_RECURSE
  "CMakeFiles/micro_faultsim.dir/micro_faultsim.cpp.o"
  "CMakeFiles/micro_faultsim.dir/micro_faultsim.cpp.o.d"
  "micro_faultsim"
  "micro_faultsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_faultsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
