# Empty compiler generated dependencies file for micro_faultsim.
# This may be replaced when dependencies are built.
