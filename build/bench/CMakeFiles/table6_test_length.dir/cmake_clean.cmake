file(REMOVE_RECURSE
  "CMakeFiles/table6_test_length.dir/table6_test_length.cpp.o"
  "CMakeFiles/table6_test_length.dir/table6_test_length.cpp.o.d"
  "table6_test_length"
  "table6_test_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_test_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
