# Empty dependencies file for table6_test_length.
# This may be replaced when dependencies are built.
