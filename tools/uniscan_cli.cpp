// uniscan command-line tool: the library's flows on .bench files.
//
//   uniscan_cli stats       <circuit.bench>
//   uniscan_cli insert-scan <circuit.bench> [--chains=N] [-o out.bench]
//   uniscan_cli generate    <circuit.bench> [--chains=N] [--seed=N]
//                           [--no-scan-knowledge] [-o seq.useq]
//   uniscan_cli compact     <circuit.bench> <seq.useq> [--chains=N]
//                           [--skip-restoration] [--skip-omission] [-o out.useq]
//   uniscan_cli faultsim    <circuit.bench> <seq.useq> [--chains=N]
//   uniscan_cli baseline    <circuit.bench> [--chains=N] [--seed=N] [-o tests.utst]
//   uniscan_cli translate   <circuit.bench> <tests.utst> [--x-fill=random|zero|repeat]
//                           [-o seq.useq]
//   uniscan_cli classify    <circuit.bench> [--window=K]
//   uniscan_cli export      <circuit.bench> <seq.useq> [--chains=N]
//   uniscan_cli metrics     <circuit.bench> <seq.useq> [--chains=N]
//   uniscan_cli serve       [--cache-dir=DIR] [--cache-bytes=N] [--max-queue=N]
//                           [--retries=N] [--backoff-ms=MS] [--default-budget=SECS]
//                           [--threads=N]
//
// `serve` (also spelled `--serve`) runs the resident job scheduler: one JSON
// request per stdin line, one JSON response line per request on stdout (see
// README "Service mode" for the schema). Compiled circuit artifacts are
// cached across jobs — keyed by content hash, persisted under --cache-dir
// when given — so repeat jobs skip parse/scan/collapse/compile.
//
// The circuit argument is always the NON-scan netlist; scan insertion
// happens internally (--chains, default 1). Sequences are over the scan
// circuit's inputs (original PIs, then scan_sel, then scan_inp per chain).
//
// Global flags: --time-budget=SECS caps the wall clock of the long-running
// commands (generate/compact/baseline/classify) with graceful degradation;
// --json reports errors as a one-line {"error": ...} object on stdout;
// --metrics appends one {"schema_version": 2, "counters": {...},
// "slot_width": N} line on stdout with the run's telemetry counter totals
// (same keys as the bench JSON's `counters` object) and the resolved
// simulation slot width; --slot-width=64|256|512|auto picks the slot width
// (default auto: widest SIMD the build and CPU support); --repack=on|off
// toggles live-fault repacking in the streaming sessions (default on,
// results bit-identical either way, DESIGN.md §5j); --trace=FILE
// writes a Chrome trace_event JSON of the run (load in chrome://tracing or
// Perfetto).
// Exit codes (core/exit_codes.hpp, shared with the table binaries): 0
// success, 1 error (std::exception), 2 usage, 3 unexpected non-standard
// exception, 4 isolated job failures (serve), 5 overload/shed (serve).
#include <cstdio>
#include <fstream>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "atpg/redundancy.hpp"
#include "core/exit_codes.hpp"
#include "core/uniscan.hpp"
#include "obs/counters.hpp"
#include "serve/serve_loop.hpp"
#include "sim/engine.hpp"
#include "obs/trace.hpp"
#include "sim/sequence_io.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace uniscan;

struct CliArgs {
  std::string command;
  std::vector<std::string> positional;
  std::string output;
  std::size_t chains = 1;
  std::uint64_t seed = 1;
  std::size_t window = 1;
  bool scan_knowledge = true;
  bool skip_restoration = false;
  bool skip_omission = false;
  bool json = false;
  bool metrics = false;   // --metrics: counter-totals JSON line on stdout
  std::string trace;      // --trace=FILE: Chrome trace_event output
  SlotWidth slot_width = SlotWidth::Auto;  // --slot-width=64|256|512|auto
  bool repack = true;     // --repack=on|off: live-fault repacking (§5j)
  double time_budget_secs = 0;
  XFillPolicy fill = XFillPolicy::RandomFill;
  // serve-only flags
  std::string cache_dir;              // --cache-dir=DIR: persist artifacts
  std::size_t cache_bytes = 0;        // --cache-bytes=N: RAM budget (0 = default)
  std::size_t max_queue = 0;          // --max-queue=N: per-tenant bound (0 = default)
  int retries = -1;                   // --retries=N: transient retry budget
  double backoff_ms = -1;             // --backoff-ms=MS: backoff base
  double default_budget_secs = 0;     // --default-budget=SECS: per-job deadline
  std::size_t threads = 0;            // --threads=N: global pool size
};

int usage() {
  std::fprintf(stderr,
               "usage: uniscan_cli <stats|insert-scan|generate|compact|faultsim|baseline|"
               "translate|classify|serve> <circuit.bench> [args] [flags]\n"
               "run with a command and no arguments for per-command flags\n");
  return kExitUsage;
}

std::optional<CliArgs> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  CliArgs a;
  a.command = argv[1];
  if (a.command == "--serve") a.command = "serve";
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (++i >= argc) return std::nullopt;
      a.output = argv[i];
    } else if (arg.rfind("--chains=", 0) == 0) {
      a.chains = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      a.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--window=", 0) == 0) {
      a.window = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg == "--no-scan-knowledge") {
      a.scan_knowledge = false;
    } else if (arg == "--json") {
      a.json = true;
    } else if (arg == "--metrics") {
      a.metrics = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      a.trace = arg.substr(8);
    } else if (arg.rfind("--slot-width=", 0) == 0) {
      if (!parse_slot_width(arg.substr(13), a.slot_width)) {
        std::fprintf(stderr, "unknown slot width: %s (64|256|512|auto)\n", arg.c_str() + 13);
        return std::nullopt;
      }
    } else if (arg == "--repack=on") {
      a.repack = true;
    } else if (arg == "--repack=off") {
      a.repack = false;
    } else if (arg.rfind("--time-budget=", 0) == 0) {
      a.time_budget_secs = std::strtod(arg.c_str() + 14, nullptr);
    } else if (arg == "--skip-restoration") {
      a.skip_restoration = true;
    } else if (arg == "--skip-omission") {
      a.skip_omission = true;
    } else if (arg == "--x-fill=random") {
      a.fill = XFillPolicy::RandomFill;
    } else if (arg == "--x-fill=zero") {
      a.fill = XFillPolicy::ZeroFill;
    } else if (arg == "--x-fill=repeat") {
      a.fill = XFillPolicy::RepeatFill;
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      a.cache_dir = arg.substr(12);
    } else if (arg.rfind("--cache-bytes=", 0) == 0) {
      a.cache_bytes = std::strtoull(arg.c_str() + 14, nullptr, 10);
    } else if (arg.rfind("--max-queue=", 0) == 0) {
      a.max_queue = std::strtoull(arg.c_str() + 12, nullptr, 10);
    } else if (arg.rfind("--retries=", 0) == 0) {
      a.retries = static_cast<int>(std::strtol(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--backoff-ms=", 0) == 0) {
      a.backoff_ms = std::strtod(arg.c_str() + 13, nullptr);
    } else if (arg.rfind("--default-budget=", 0) == 0) {
      a.default_budget_secs = std::strtod(arg.c_str() + 17, nullptr);
    } else if (arg.rfind("--threads=", 0) == 0) {
      a.threads = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return std::nullopt;
    } else {
      a.positional.push_back(arg);
    }
  }
  return a;
}

void emit_sequence(const CliArgs& a, const TestSequence& seq) {
  if (a.output.empty()) write_sequence(std::cout, seq);
  else write_sequence_file(a.output, seq);
}

/// The command's deadline token: inert unless --time-budget was given.
CancelToken cli_token(const CliArgs& a) {
  if (a.time_budget_secs > 0) return CancelToken(Deadline::after(a.time_budget_secs));
  return {};
}

int cmd_stats(const CliArgs& a) {
  const Netlist c = read_bench_file(a.positional.at(0));
  std::cout << c.stats_string() << "\n";
  const ScanCircuit sc = insert_scan(c, a.chains);
  const FaultList fl = FaultList::collapsed(sc.netlist);
  std::cout << "scan version (" << a.chains << " chain(s)): " << sc.netlist.stats_string()
            << "\n";
  std::cout << "collapsed faults: " << fl.size() << " (of " << fl.uncollapsed_count()
            << " uncollapsed)\n";
  return 0;
}

int cmd_insert_scan(const CliArgs& a) {
  const Netlist c = read_bench_file(a.positional.at(0));
  const ScanCircuit sc = insert_scan(c, a.chains);
  if (a.output.empty()) write_bench(std::cout, sc.netlist);
  else {
    std::ofstream f(a.output);
    if (!f) throw std::runtime_error("cannot write " + a.output);
    write_bench(f, sc.netlist);
  }
  return 0;
}

int cmd_generate(const CliArgs& a) {
  const Netlist c = read_bench_file(a.positional.at(0));
  const ScanCircuit sc = insert_scan(c, a.chains);
  AtpgOptions opt;
  opt.seed = a.seed;
  opt.use_scan_knowledge = a.scan_knowledge;
  opt.cancel = cli_token(a);
  const AtpgResult r = generate_tests(sc, opt);
  std::fprintf(stderr, "coverage %.2f%% (%zu/%zu), %zu via scan knowledge, %zu vectors%s\n",
               r.fault_coverage(), r.detected, r.num_faults, r.detected_by_scan_knowledge,
               r.sequence.length(), r.timed_out ? " [TIMED OUT: best-so-far]" : "");
  emit_sequence(a, r.sequence);
  return 0;
}

int cmd_compact(const CliArgs& a) {
  const Netlist c = read_bench_file(a.positional.at(0));
  const ScanCircuit sc = insert_scan(c, a.chains);
  TestSequence seq = read_sequence_file(a.positional.at(1));
  const FaultList fl = FaultList::collapsed(sc.netlist);
  if (seq.num_inputs() != sc.netlist.num_inputs())
    throw std::runtime_error("sequence width does not match the scan circuit");

  const CancelToken cancel = cli_token(a);
  if (!a.skip_restoration) {
    RestorationOptions opt;
    opt.cancel = cancel;
    const CompactionResult r = restoration_compact(sc.netlist, seq, fl.faults(), opt);
    std::fprintf(stderr, "restoration: %zu -> %zu vectors%s\n", r.original_length,
                 r.sequence.length(), r.timed_out ? " [TIMED OUT]" : "");
    seq = r.sequence;
  }
  if (!a.skip_omission) {
    OmissionOptions opt;
    opt.cancel = cancel;
    const CompactionResult r = omission_compact(sc.netlist, seq, fl.faults(), opt);
    std::fprintf(stderr, "omission: %zu -> %zu vectors (+%zu faults)%s\n", r.original_length,
                 r.sequence.length(), r.extra_detected, r.timed_out ? " [TIMED OUT]" : "");
    seq = r.sequence;
  }
  emit_sequence(a, seq);
  return 0;
}

int cmd_faultsim(const CliArgs& a) {
  const Netlist c = read_bench_file(a.positional.at(0));
  const ScanCircuit sc = insert_scan(c, a.chains);
  const TestSequence seq = read_sequence_file(a.positional.at(1));
  if (seq.num_inputs() != sc.netlist.num_inputs())
    throw std::runtime_error("sequence width does not match the scan circuit");
  const FaultList fl = FaultList::collapsed(sc.netlist);
  FaultSimulator sim(sc.netlist);
  const auto det = sim.detected_indices(seq, fl.faults());
  std::cout << "detected " << det.size() << "/" << fl.size() << " collapsed faults ("
            << format_pct(100.0 * static_cast<double>(det.size()) /
                          static_cast<double>(fl.size()))
            << "%) with " << seq.length() << " vectors\n";
  return 0;
}

int cmd_baseline(const CliArgs& a) {
  const Netlist c = read_bench_file(a.positional.at(0));
  const ScanCircuit sc = insert_scan(c, a.chains);
  BaselineOptions opt;
  opt.seed = a.seed;
  opt.cancel = cli_token(a);
  const BaselineResult r = generate_baseline_tests(sc, opt);
  std::fprintf(stderr, "coverage %.2f%% (%zu/%zu), %zu tests, %zu cycles%s\n",
               r.fault_coverage(), r.detected, r.num_faults, r.test_set.tests.size(),
               r.application_cycles(), r.timed_out ? " [TIMED OUT: best-so-far]" : "");
  if (a.output.empty()) write_test_set(std::cout, r.test_set);
  else write_test_set_file(a.output, r.test_set);
  return 0;
}

int cmd_translate(const CliArgs& a) {
  const Netlist c = read_bench_file(a.positional.at(0));
  const ScanCircuit sc = insert_scan(c, a.chains);
  const ScanTestSet set = read_test_set_file(a.positional.at(1));
  TranslationOptions opt;
  opt.fill = a.fill;
  opt.seed = a.seed;
  const TestSequence seq = translate_test_set(sc, set, opt);
  std::fprintf(stderr, "translated %zu tests into %zu vectors\n", set.tests.size(),
               seq.length());
  emit_sequence(a, seq);
  return 0;
}

int cmd_export(const CliArgs& a) {
  const Netlist c = read_bench_file(a.positional.at(0));
  const ScanCircuit sc = insert_scan(c, a.chains);
  const TestSequence seq = read_sequence_file(a.positional.at(1));
  if (seq.num_inputs() != sc.netlist.num_inputs())
    throw std::runtime_error("sequence width does not match the scan circuit");
  const std::string program = format_tester_program(sc, seq);
  if (a.output.empty()) std::cout << program;
  else {
    std::ofstream f(a.output);
    if (!f) throw std::runtime_error("cannot write " + a.output);
    f << program;
  }
  return 0;
}

int cmd_metrics(const CliArgs& a) {
  const Netlist c = read_bench_file(a.positional.at(0));
  const ScanCircuit sc = insert_scan(c, a.chains);
  const TestSequence seq = read_sequence_file(a.positional.at(1));
  if (seq.num_inputs() != sc.netlist.num_inputs())
    throw std::runtime_error("sequence width does not match the scan circuit");
  std::cout << format_metrics(compute_metrics(sc, seq));
  return 0;
}

int cmd_serve(const CliArgs& a) {
  if (a.threads > 0) ThreadPool::set_global_threads(a.threads);
  serve::ServeOptions opt;
  if (!a.cache_dir.empty()) opt.cache.disk_dir = a.cache_dir;
  if (a.cache_bytes > 0) opt.cache.max_ram_bytes = a.cache_bytes;
  if (a.max_queue > 0) opt.sched.max_queue_per_tenant = a.max_queue;
  if (a.retries >= 0) opt.sched.max_retries = a.retries;
  if (a.backoff_ms >= 0) opt.sched.backoff_base_ms = a.backoff_ms;
  if (a.default_budget_secs > 0) opt.sched.default_budget_secs = a.default_budget_secs;
  opt.sched.parent = cli_token(a);
  return serve::run_serve(std::cin, std::cout, opt);
}

int cmd_classify(const CliArgs& a) {
  const Netlist c = read_bench_file(a.positional.at(0));
  const ScanCircuit sc = insert_scan(c, a.chains);
  const FaultList fl = FaultList::collapsed(sc.netlist);
  RedundancyOptions opt;
  opt.window = a.window;
  opt.cancel = cli_token(a);
  const RedundancyReport r = classify_faults(sc, fl.faults(), opt);
  std::cout << "faults: " << fl.size() << "\n"
            << "  testable : " << r.testable << "\n"
            << "  redundant: " << r.redundant << " (no (SI,T) test with |T| <= " << a.window
            << ")\n"
            << "  aborted  : " << r.aborted << "\n";
  for (std::size_t i = 0; i < fl.size(); ++i)
    if (r.classes[i] == FaultClass::Redundant)
      std::cout << "  redundant fault: " << fault_to_string(sc.netlist, fl[i]) << "\n";
  return 0;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Report one error as a single structured line: a JSON object on stdout
/// with --json (for machine consumers), plain text on stderr otherwise.
void report_error(bool as_json, const char* what) {
  if (as_json) std::printf("{\"error\": \"%s\"}\n", json_escape(what).c_str());
  std::fprintf(stderr, "error: %s\n", what);
}

/// One {"schema_version": 2, "counters": {...}, "slot_width": N} line: the
/// process-wide telemetry totals, keyed like the bench JSON's `counters`
/// object, plus the slot width the run resolved to.
void print_metrics_line() {
  std::string out = "{\"schema_version\": 2, \"counters\": {";
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    if (i) out += ", ";
    out += "\"";
    out += obs::counter_name(static_cast<obs::Counter>(i));
    out += "\": ";
    out += std::to_string(obs::total(static_cast<obs::Counter>(i)));
  }
  out += "}, \"slot_width\": ";
  out += std::to_string(slot_width_bits(resolved_slot_width()));
  out += "}";
  std::printf("%s\n", out.c_str());
}

int run_command(const CliArgs& args) {
  const auto need = [&](std::size_t n) {
    if (args.positional.size() < n)
      throw std::runtime_error("missing arguments; see header comment for usage");
  };
  if (args.command == "stats") return need(1), cmd_stats(args);
  if (args.command == "insert-scan") return need(1), cmd_insert_scan(args);
  if (args.command == "generate") return need(1), cmd_generate(args);
  if (args.command == "compact") return need(2), cmd_compact(args);
  if (args.command == "faultsim") return need(2), cmd_faultsim(args);
  if (args.command == "baseline") return need(1), cmd_baseline(args);
  if (args.command == "translate") return need(2), cmd_translate(args);
  if (args.command == "classify") return need(1), cmd_classify(args);
  if (args.command == "export") return need(2), cmd_export(args);
  if (args.command == "metrics") return need(2), cmd_metrics(args);
  if (args.command == "serve") return cmd_serve(args);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse(argc, argv);
  if (!args) return usage();
  set_global_slot_width(args->slot_width);
  set_global_repack(args->repack);
  if (!args->trace.empty()) obs::Tracer::start(args->trace);
  int rc;
  try {
    rc = run_command(*args);
  } catch (const std::exception& e) {
    report_error(args->json, e.what());
    rc = kExitError;
  } catch (...) {
    // Previously this escaped main and std::terminate'd; keep the exit
    // orderly and distinguishable from ordinary errors.
    report_error(args->json, "unexpected non-standard exception");
    rc = kExitInternal;
  }
  // Emitted even after an error: partial counter totals are still useful
  // and the line's shape stays machine-parseable either way.
  if (args->metrics) print_metrics_line();
  if (!args->trace.empty()) obs::Tracer::stop_and_write();
  return rc;
}
