// Corpus maintenance tool (DESIGN.md §5i).
//
//   corpus_tool list   [tier]          enumerate registry rows + file status
//   corpus_tool verify [tier]          hash-check every loadable circuit
//   corpus_tool synth  <name>|<tier>|all   materialize stand-in .bench files
//   corpus_tool hash   [tier]          print "name<TAB>sha256" of canonical text
//   corpus_tool digest <name> [--text] compute the golden digest (print hex)
//   corpus_tool regen-golden <name>|<tier>   recompute golden/<ckt>.ans.sha
//   corpus_tool check-golden <name>|<tier>   compare digests against golden
//
// Common flags: --corpus-dir=DIR (default: UNISCAN_CORPUS_DIR env or the
// compiled-in source corpus), --threads=N (sizes the global pool; results
// are bit-identical at any value, DESIGN.md §5d).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "corpus/golden.hpp"
#include "sim/engine.hpp"
#include "util/sha256.hpp"
#include "util/thread_pool.hpp"

using namespace uniscan;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: corpus_tool [--corpus-dir=DIR] [--threads=N] <command> [args]\n"
               "commands: list|verify|hash [tier], synth <name>|<tier>|all,\n"
               "          digest <name> [--text], regen-golden <sel>, check-golden <sel>\n");
  return 2;
}

/// Resolve a selector ("all", a tier name, or a circuit name) to entries.
std::vector<CorpusEntry> select(const CorpusRegistry& reg, const std::string& sel) {
  if (sel.empty() || sel == "all") return reg.entries();
  CorpusTier tier;
  if (parse_corpus_tier(sel, tier)) return reg.tier(tier);
  if (const CorpusEntry* e = reg.find(sel)) return {*e};
  std::fprintf(stderr, "corpus_tool: unknown tier or circuit '%s'\n", sel.c_str());
  std::exit(2);
}

int cmd_list(const CorpusRegistry& reg, const std::string& sel) {
  for (const CorpusEntry& e : select(reg, sel)) {
    std::printf("%-10s %-5s %-8s pi=%-4zu ff=%-5zu gates=%-6zu %s%s\n", e.name.c_str(),
                corpus_tier_name(e.tier), e.source.c_str(), e.num_inputs, e.num_dffs, e.num_gates,
                reg.has_file(e) ? "file" : (e.source == "file" ? "NOT-FETCHED" : "in-memory"),
                read_golden_sha(reg.golden_path(e)).empty() ? "" : " +golden");
  }
  return 0;
}

int cmd_verify(const CorpusRegistry& reg, const std::string& sel) {
  int bad = 0;
  for (const CorpusEntry& e : select(reg, sel)) {
    if (e.source == "file" && !reg.has_file(e)) {
      std::printf("%-10s SKIP (not fetched)\n", e.name.c_str());
      continue;
    }
    try {
      const Netlist nl = reg.load(e);
      std::printf("%-10s OK (%zu gates)\n", e.name.c_str(), nl.num_gates());
    } catch (const std::exception& ex) {
      std::printf("%-10s FAIL: %s\n", e.name.c_str(), ex.what());
      ++bad;
    }
  }
  return bad == 0 ? 0 : 1;
}

int cmd_hash(const CorpusRegistry& reg, const std::string& sel) {
  for (const CorpusEntry& e : select(reg, sel)) {
    if (e.source == "file" && !reg.has_file(e)) continue;
    std::printf("%s\t%s\n", e.name.c_str(), sha256_hex(reg.bench_text(e, false)).c_str());
  }
  return 0;
}

int cmd_synth(const CorpusRegistry& reg, const std::string& sel) {
  std::filesystem::create_directories(std::filesystem::path(reg.dir()) / "circuits");
  for (const CorpusEntry& e : select(reg, sel)) {
    if (e.source != "synth") continue;
    const std::string path = reg.circuit_path(e);
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "corpus_tool: cannot write %s\n", path.c_str());
      return 1;
    }
    out << CorpusRegistry::synth_bench_text(e);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

int cmd_digest(const CorpusRegistry& reg, const std::string& name, bool print_text) {
  const CorpusEntry* e = reg.find(name);
  if (!e) {
    std::fprintf(stderr, "corpus_tool: unknown circuit '%s'\n", name.c_str());
    return 2;
  }
  const CircuitDigest d = compute_corpus_digest(reg, *e);
  if (print_text) std::fputs(d.canonical_text.c_str(), stdout);
  std::printf("%s  %s\n", d.sha_hex.c_str(), d.circuit.c_str());
  return 0;
}

int cmd_golden(const CorpusRegistry& reg, const std::string& sel, bool regen) {
  std::filesystem::create_directories(std::filesystem::path(reg.dir()) / "golden");
  int bad = 0;
  for (const CorpusEntry& e : select(reg, sel)) {
    if (e.source == "file" && !reg.has_file(e)) continue;
    const std::string path = reg.golden_path(e);
    const CircuitDigest d = compute_corpus_digest(reg, e);
    if (regen) {
      write_golden_sha(path, d.sha_hex);
      std::printf("%-10s %s (written)\n", e.name.c_str(), d.sha_hex.c_str());
      continue;
    }
    const std::string want = read_golden_sha(path);
    if (want.empty()) {
      std::printf("%-10s NO-GOLDEN (%s)\n", e.name.c_str(), d.sha_hex.c_str());
      ++bad;
    } else if (want != d.sha_hex) {
      std::printf("%-10s MISMATCH got %s want %s\n", e.name.c_str(), d.sha_hex.c_str(),
                  want.c_str());
      ++bad;
    } else {
      std::printf("%-10s OK %s\n", e.name.c_str(), d.sha_hex.c_str());
    }
  }
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_dir;
  std::size_t threads = 1;
  std::vector<std::string> rest;
  bool print_text = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--corpus-dir=", 0) == 0) corpus_dir = arg.substr(13);
    else if (arg.rfind("--threads=", 0) == 0)
      threads = std::strtoull(arg.c_str() + 10, nullptr, 10);
    else if (arg == "--text") print_text = true;
    else if (arg.rfind("--engine=", 0) == 0) {
      SimEngine engine;
      if (!parse_sim_engine(arg.substr(9), engine)) {
        std::fprintf(stderr, "unknown engine: %s\n", arg.c_str() + 9);
        return 2;
      }
      set_global_sim_engine(engine);
    } else if (arg.rfind("--slot-width=", 0) == 0) {
      SlotWidth width;
      if (!parse_slot_width(arg.substr(13), width)) {
        std::fprintf(stderr, "unknown slot width: %s\n", arg.c_str() + 13);
        return 2;
      }
      set_global_slot_width(width);
    } else rest.push_back(arg);
  }
  if (rest.empty()) return usage();
  ThreadPool::set_global_threads(threads == 0 ? 1 : threads);
  const CorpusRegistry owned(corpus_dir.empty() ? CorpusRegistry::default_dir() : corpus_dir);
  const CorpusRegistry& reg = owned;

  const std::string& cmd = rest[0];
  const std::string sel = rest.size() > 1 ? rest[1] : std::string();
  try {
    if (cmd == "list") return cmd_list(reg, sel);
    if (cmd == "verify") return cmd_verify(reg, sel);
    if (cmd == "hash") return cmd_hash(reg, sel);
    if (cmd == "synth") return cmd_synth(reg, sel.empty() ? "all" : sel);
    if (cmd == "digest" && !sel.empty()) return cmd_digest(reg, sel, print_text);
    if (cmd == "regen-golden" && !sel.empty()) return cmd_golden(reg, sel, /*regen=*/true);
    if (cmd == "check-golden" && !sel.empty()) return cmd_golden(reg, sel, /*regen=*/false);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "corpus_tool: %s\n", ex.what());
    return 1;
  }
  return usage();
}
