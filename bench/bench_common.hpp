// Shared helpers for the experiment binaries (bench/table*_*.cpp).
//
// Flags understood by the table binaries:
//   --full               run the whole paper suite (default: fast suite)
//   --circuit=NAME       run a single suite circuit
//   --bench-dir=DIR      load real .bench files from DIR when present
//   --seed=N             ATPG seed
//   --no-scan-knowledge  disable the Section-2 functional scan knowledge
//   --x-fill=random|zero translation x-fill policy
//   --threads=N          size of the global fault-simulation thread pool
//   --engine=E           simulation engine: compiled (default) | levelized
//                        | event (see sim/engine.hpp)
//   --no-cone-pruning    disable per-batch observation-cone pruning
//   --slot-width=W       simulation slot width: 64 | 256 | 512 | auto
//                        (default auto: widest SIMD the build and CPU
//                        support; see sim/slot_word.hpp). With --repack=on
//                        (the default) auto additionally narrows per fault
//                        population; an explicit width is always honored.
//   --repack=on|off      live-fault batch repacking + slot-width
//                        auto-narrowing in the streaming sessions (default
//                        on; results are bit-identical either way — see
//                        DESIGN.md §5j)
//   --sat=MODE           SAT second chance (DESIGN.md §5l): off (default;
//                        byte-identical to the pre-SAT pipeline) |
//                        second-chance (PODEM-undecided faults go to the SAT
//                        engine) | cross-check (also re-prove PODEM's own
//                        redundancy claims)
//   --json=FILE          also write machine-readable results to FILE
//   --circuits=A,B,C     run an explicit comma-separated subset of the suite
//   --corpus=TIER        run the corpus registry instead of the paper suite:
//                        fast | mid | large | all (circuits come from
//                        corpus/manifest.tsv; hash-verified on load);
//                        combine with --circuits to narrow by name
//   --time-budget=SECS   suite-wide wall-clock budget (graceful degradation)
//   --per-circuit-budget=SECS  per-circuit wall-clock budget
//   --fail-fast          abort the whole run on the first circuit failure
//                        (default: failures are isolated into FAILED rows)
//   --trace=FILE         emit a Chrome trace_event JSON of the run to FILE
//   --via-scheduler      route the suite's circuit tasks through the serve
//                        JobScheduler (admission control, fair dispatch,
//                        transient-failure retries) instead of a bare
//                        parallel_for; rows are bit-identical either way
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/exit_codes.hpp"
#include "core/uniscan.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "serve/suite_client.hpp"
#include "sim/engine.hpp"
#include "util/thread_pool.hpp"

namespace uniscan::bench {

struct Args {
  bool full = false;
  bool scan_knowledge = true;
  std::string circuit;
  std::vector<std::string> circuits;  // --circuits=A,B,C subset
  std::string bench_dir;
  std::string json;
  std::uint64_t seed = 1;
  std::size_t threads = 1;
  XFillPolicy fill = XFillPolicy::RandomFill;
  SimEngine engine = SimEngine::Compiled;
  bool cone_pruning = true;
  bool repack = true;
  SlotWidth slot_width = SlotWidth::Auto;
  double time_budget_secs = 0;
  double per_circuit_budget_secs = 0;
  bool fail_fast = false;
  bool via_scheduler = false;  // --via-scheduler: thin-client JobScheduler path
  SatMode sat = SatMode::Off;  // --sat=off|second-chance|cross-check
  std::string trace;   // --trace=FILE: Chrome trace_event output
  std::string corpus;  // --corpus=fast|mid|large|all
};

inline Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") a.full = true;
    else if (arg == "--no-scan-knowledge") a.scan_knowledge = false;
    else if (arg.rfind("--circuit=", 0) == 0) a.circuit = arg.substr(10);
    else if (arg.rfind("--bench-dir=", 0) == 0) a.bench_dir = arg.substr(12);
    else if (arg.rfind("--json=", 0) == 0) a.json = arg.substr(7);
    else if (arg.rfind("--seed=", 0) == 0) a.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    else if (arg.rfind("--threads=", 0) == 0)
      a.threads = std::strtoull(arg.c_str() + 10, nullptr, 10);
    else if (arg == "--x-fill=zero") a.fill = XFillPolicy::ZeroFill;
    else if (arg == "--x-fill=random") a.fill = XFillPolicy::RandomFill;
    else if (arg.rfind("--engine=", 0) == 0) {
      if (!parse_sim_engine(arg.substr(9), a.engine)) {
        std::fprintf(stderr, "unknown engine: %s (compiled|levelized|event)\n", arg.c_str() + 9);
        std::exit(2);
      }
    } else if (arg == "--no-cone-pruning") a.cone_pruning = false;
    else if (arg.rfind("--repack=", 0) == 0) {
      const std::string v = arg.substr(9);
      if (v == "on") a.repack = true;
      else if (v == "off") a.repack = false;
      else {
        std::fprintf(stderr, "unknown repack mode: %s (on|off)\n", v.c_str());
        std::exit(2);
      }
    } else if (arg.rfind("--slot-width=", 0) == 0) {
      if (!parse_slot_width(arg.substr(13), a.slot_width)) {
        std::fprintf(stderr, "unknown slot width: %s (64|256|512|auto)\n", arg.c_str() + 13);
        std::exit(2);
      }
    } else if (arg.rfind("--circuits=", 0) == 0) {
      std::string rest = arg.substr(11);
      std::size_t start = 0;
      while (start <= rest.size()) {
        const std::size_t comma = rest.find(',', start);
        const std::size_t end = comma == std::string::npos ? rest.size() : comma;
        if (end > start) a.circuits.push_back(rest.substr(start, end - start));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg.rfind("--corpus=", 0) == 0) {
      a.corpus = arg.substr(9);
      CorpusTier tier;
      if (a.corpus != "all" && !parse_corpus_tier(a.corpus, tier)) {
        std::fprintf(stderr, "unknown corpus tier: %s (fast|mid|large|all)\n", arg.c_str() + 9);
        std::exit(2);
      }
    } else if (arg.rfind("--time-budget=", 0) == 0)
      a.time_budget_secs = std::strtod(arg.c_str() + 14, nullptr);
    else if (arg.rfind("--per-circuit-budget=", 0) == 0)
      a.per_circuit_budget_secs = std::strtod(arg.c_str() + 21, nullptr);
    else if (arg == "--fail-fast") a.fail_fast = true;
    else if (arg == "--via-scheduler") a.via_scheduler = true;
    else if (arg.rfind("--sat=", 0) == 0) {
      const auto mode = parse_sat_mode(arg.substr(6));
      if (!mode) {
        std::fprintf(stderr, "unknown sat mode: %s (off|second-chance|cross-check)\n",
                     arg.c_str() + 6);
        std::exit(2);
      }
      a.sat = *mode;
    }
    else if (arg.rfind("--trace=", 0) == 0) a.trace = arg.substr(8);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (a.threads == 0) a.threads = 1;
  ThreadPool::set_global_threads(a.threads);
  set_global_sim_engine(a.engine);
  set_global_cone_pruning(a.cone_pruning);
  set_global_repack(a.repack);
  set_global_slot_width(a.slot_width);
  if (!a.trace.empty()) obs::Tracer::start(a.trace);
  return a;
}

/// Wall-clock stopwatch for the experiment binaries.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// run_stage wrapped with a Stopwatch + CounterScope: appends a StageStat
/// row (wall time, counter deltas) to `stages` on success and returns the
/// stage's value. Bench-side mirror of the pipeline's internal per-stage
/// recording, for table binaries that drive stages by hand.
template <typename Fn>
auto timed_stage(std::vector<obs::StageStat>& stages, const std::string& circuit,
                 const char* stage, Fn&& fn) {
  const Stopwatch sw;
  const obs::CounterScope scope;
  if constexpr (std::is_void_v<decltype(fn())>) {
    run_stage(circuit, stage, std::forward<Fn>(fn));
    stages.push_back(obs::StageStat{stage, sw.ms(), scope.deltas()});
  } else {
    auto result = run_stage(circuit, stage, std::forward<Fn>(fn));
    stages.push_back(obs::StageStat{stage, sw.ms(), scope.deltas()});
    return result;
  }
}

/// JSON string escaping for exception texts (quotes, backslashes, control
/// characters) — failure records embed arbitrary what() strings.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Render a CounterArray as a JSON object keyed by counter_name.
inline std::string counters_json(const obs::CounterArray& c) {
  std::string out = "{";
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    if (i) out += ", ";
    out += "\"";
    out += obs::counter_name(static_cast<obs::Counter>(i));
    out += "\": ";
    out += std::to_string(c[i]);
  }
  out += "}";
  return out;
}

/// Collects per-row results and writes them as a JSON document (schema v2):
///   { "schema_version": 2, "threads": N, "slot_width": 64|256|512,
///     "repack": true|false,                             // additive in v2
///     "counters": {gate_evals, batch_skips, ...},       // process totals
///     "entries": [ {name, wall_ms, gate_evals, in_len, out_len, timed_out,
///                   "stages": [{name, wall_ms, counters: {...}}, ...]},
///                  ... ],
///     "failures": [ {circuit, stage, what}, ... ] }
/// The `stages` array appears on entries constructed with a per-stage
/// breakdown (v1 consumers that only read the flat fields keep working: no
/// v1 key was renamed or removed). The failures array is always present
/// (empty on a healthy run) so CI can assert its shape unconditionally.
/// Intended for CI artifacts (BENCH_compaction.json, robustness output).
class BenchJson {
 public:
  void add(std::string name, double wall_ms, std::uint64_t gate_evals, std::size_t in_len,
           std::size_t out_len, bool timed_out = false,
           const std::vector<obs::StageStat>* stages = nullptr) {
    entries_.push_back({std::move(name), wall_ms, gate_evals, in_len, out_len, timed_out,
                        stages ? *stages : std::vector<obs::StageStat>{}});
  }

  void add_failure(const TaskFailure& f) { failures_.push_back(f); }
  bool has_failures() const { return !failures_.empty(); }

  /// Accumulate a circuit's SAT second-chance contribution. Once called,
  /// write() emits the additive v2 `sat` block; table binaries only call it
  /// when --sat is active, so --sat=off JSON stays byte-identical to the
  /// pre-SAT output.
  void record_sat(SatMode mode, const SatSummary& s) {
    sat_mode_ = mode;
    sat_.add(s);
    have_sat_ = true;
  }

  /// No-op when `path` is empty (no --json flag given). The `counters`
  /// object snapshots the process-wide registry totals at write time.
  void write(const std::string& path, std::size_t threads) const {
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      std::exit(1);
    }
    out << "{\n  \"schema_version\": 2,\n  \"threads\": " << threads
        << ",\n  \"slot_width\": " << slot_width_bits(resolved_slot_width())
        << ",\n  \"repack\": " << (global_repack() ? "true" : "false");
    if (have_sat_)
      out << ",\n  \"sat\": {\"mode\": \"" << sat_mode_name(sat_mode_)
          << "\", \"attempts\": " << sat_.attempts << ", \"detected\": " << sat_.detected
          << ", \"proved_redundant\": " << sat_.proved_redundant
          << ", \"aborted\": " << sat_.aborted << ", \"cross_checks\": " << sat_.cross_checks
          << ", \"mismatches\": " << sat_.mismatches << "}";
    out << ",\n  \"counters\": " << counters_json(obs::totals()) << ",\n  \"entries\": [\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      out << "    {\"name\": \"" << json_escape(e.name) << "\", \"wall_ms\": " << e.wall_ms
          << ", \"gate_evals\": " << e.gate_evals << ", \"in_len\": " << e.in_len
          << ", \"out_len\": " << e.out_len << ", \"timed_out\": "
          << (e.timed_out ? "true" : "false");
      if (!e.stages.empty()) {
        out << ", \"stages\": [";
        for (std::size_t s = 0; s < e.stages.size(); ++s) {
          const obs::StageStat& st = e.stages[s];
          out << (s ? ", " : "") << "{\"name\": \"" << json_escape(st.name)
              << "\", \"wall_ms\": " << st.wall_ms
              << ", \"counters\": " << counters_json(st.counters) << "}";
        }
        out << "]";
      }
      out << "}" << (i + 1 < entries_.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"failures\": [\n";
    for (std::size_t i = 0; i < failures_.size(); ++i) {
      const TaskFailure& f = failures_[i];
      out << "    {\"circuit\": \"" << json_escape(f.circuit) << "\", \"stage\": \""
          << json_escape(f.stage) << "\", \"what\": \"" << json_escape(f.what) << "\"}"
          << (i + 1 < failures_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

 private:
  struct Entry {
    std::string name;
    double wall_ms;
    std::uint64_t gate_evals;
    std::size_t in_len;
    std::size_t out_len;
    bool timed_out;
    std::vector<obs::StageStat> stages;
  };
  std::vector<Entry> entries_;
  std::vector<TaskFailure> failures_;
  SatMode sat_mode_ = SatMode::Off;
  SatSummary sat_;
  bool have_sat_ = false;
};

inline std::vector<SuiteEntry> select_suite(const Args& a) {
  if (!a.corpus.empty()) {
    const CorpusRegistry& reg = CorpusRegistry::global();
    std::optional<CorpusTier> tier;
    CorpusTier parsed;
    if (parse_corpus_tier(a.corpus, parsed)) tier = parsed;  // "all" -> nullopt
    std::vector<SuiteEntry> out = reg.suite_entries(tier);
    if (out.empty()) {
      std::fprintf(stderr, "corpus tier '%s' is empty (no manifest at %s?)\n", a.corpus.c_str(),
                   reg.dir().c_str());
      std::exit(2);
    }
    // --circuits narrows the corpus selection by name (corpus order kept).
    if (!a.circuits.empty()) {
      std::vector<SuiteEntry> picked;
      for (const SuiteEntry& e : out)
        if (std::find(a.circuits.begin(), a.circuits.end(), e.name) != a.circuits.end())
          picked.push_back(e);
      if (picked.size() != a.circuits.size()) {
        for (const std::string& name : a.circuits)
          if (std::none_of(picked.begin(), picked.end(),
                           [&](const SuiteEntry& e) { return e.name == name; }))
            std::fprintf(stderr, "circuit '%s' is not in corpus tier '%s'\n", name.c_str(),
                         a.corpus.c_str());
        std::exit(2);
      }
      return picked;
    }
    return out;
  }
  if (!a.circuits.empty()) {
    std::vector<SuiteEntry> out;
    for (const std::string& name : a.circuits) {
      const auto e = find_suite_entry(name);
      if (!e) {
        std::fprintf(stderr, "unknown circuit: %s\n", name.c_str());
        std::exit(2);
      }
      out.push_back(*e);
    }
    return out;
  }
  if (!a.circuit.empty()) {
    const auto e = find_suite_entry(a.circuit);
    if (!e) {
      std::fprintf(stderr, "unknown circuit: %s\n", a.circuit.c_str());
      std::exit(2);
    }
    return {*e};
  }
  return a.full ? paper_suite() : fast_suite();
}

inline PipelineConfig make_config(const Args& a) {
  PipelineConfig cfg;
  cfg.atpg.seed = a.seed;
  cfg.atpg.use_scan_knowledge = a.scan_knowledge;
  cfg.atpg.sat_mode = a.sat;
  cfg.baseline.seed = a.seed + 10;
  cfg.time_budget_secs = a.time_budget_secs;
  cfg.per_circuit_budget_secs = a.per_circuit_budget_secs;
  cfg.fail_fast = a.fail_fast;
  return cfg;
}

/// Render one row's status cell: "" when healthy, "TIMEOUT" when the row's
/// deadline fired, "FAILED(stage)" for an isolated failure.
inline std::string row_status(bool timed_out) { return timed_out ? "TIMEOUT" : ""; }
inline std::string row_status(const TaskFailure& f) { return "FAILED(" + f.stage + ")"; }

/// Exit code of a table binary whose run had isolated failures (the healthy
/// rows were still produced; CI asserts on this). Alias of the shared
/// taxonomy in core/exit_codes.hpp.
inline constexpr int kExitHadFailures = uniscan::kExitHadFailures;

/// Suite fan-out dispatcher: the direct streaming path by default, the serve
/// JobScheduler thin-client path under --via-scheduler. Both produce the
/// same ordered row stream and identical row values — the scheduler only
/// changes HOW tasks are dispatched (admission, fairness, retries), never
/// what they compute (serve/suite_client.hpp).
template <typename Fn, typename Emit>
auto run_suite_rows(const Args& a, const std::vector<SuiteEntry>& suite, Fn&& fn, Emit&& emit,
                    bool fail_fast = false) {
  if (!a.via_scheduler)
    return run_suite_tasks_streaming(suite, std::forward<Fn>(fn), std::forward<Emit>(emit),
                                     fail_fast);
  serve::JobScheduler::Options opt;
  // The whole suite is submitted up front by one tenant: size the queue so
  // admission control never sheds the bench's own rows.
  opt.max_queue_per_tenant = std::max<std::size_t>(suite.size(), 1);
  serve::JobScheduler sched(opt);
  return serve::run_suite_tasks_scheduled(sched, suite, std::forward<Fn>(fn),
                                          std::forward<Emit>(emit), fail_fast);
}

/// Print isolated failures to stderr, one structured line each.
inline void print_failures(const std::vector<TaskFailure>& failures) {
  for (const TaskFailure& f : failures)
    std::fprintf(stderr, "FAILED circuit=%s stage=%s: %s\n", f.circuit.c_str(), f.stage.c_str(),
                 f.what.c_str());
}

}  // namespace uniscan::bench
