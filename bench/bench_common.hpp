// Shared helpers for the experiment binaries (bench/table*_*.cpp).
//
// Flags understood by the table binaries:
//   --full               run the whole paper suite (default: fast suite)
//   --circuit=NAME       run a single suite circuit
//   --bench-dir=DIR      load real .bench files from DIR when present
//   --seed=N             ATPG seed
//   --no-scan-knowledge  disable the Section-2 functional scan knowledge
//   --x-fill=random|zero translation x-fill policy
//   --threads=N          size of the global fault-simulation thread pool
//   --engine=E           simulation engine: compiled (default) | levelized
//                        | event (see sim/engine.hpp)
//   --no-cone-pruning    disable per-batch observation-cone pruning
//   --json=FILE          also write machine-readable results to FILE
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/uniscan.hpp"
#include "sim/engine.hpp"
#include "util/thread_pool.hpp"

namespace uniscan::bench {

struct Args {
  bool full = false;
  bool scan_knowledge = true;
  std::string circuit;
  std::string bench_dir;
  std::string json;
  std::uint64_t seed = 1;
  std::size_t threads = 1;
  XFillPolicy fill = XFillPolicy::RandomFill;
  SimEngine engine = SimEngine::Compiled;
  bool cone_pruning = true;
};

inline Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") a.full = true;
    else if (arg == "--no-scan-knowledge") a.scan_knowledge = false;
    else if (arg.rfind("--circuit=", 0) == 0) a.circuit = arg.substr(10);
    else if (arg.rfind("--bench-dir=", 0) == 0) a.bench_dir = arg.substr(12);
    else if (arg.rfind("--json=", 0) == 0) a.json = arg.substr(7);
    else if (arg.rfind("--seed=", 0) == 0) a.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    else if (arg.rfind("--threads=", 0) == 0)
      a.threads = std::strtoull(arg.c_str() + 10, nullptr, 10);
    else if (arg == "--x-fill=zero") a.fill = XFillPolicy::ZeroFill;
    else if (arg == "--x-fill=random") a.fill = XFillPolicy::RandomFill;
    else if (arg.rfind("--engine=", 0) == 0) {
      if (!parse_sim_engine(arg.substr(9), a.engine)) {
        std::fprintf(stderr, "unknown engine: %s (compiled|levelized|event)\n", arg.c_str() + 9);
        std::exit(2);
      }
    } else if (arg == "--no-cone-pruning") a.cone_pruning = false;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (a.threads == 0) a.threads = 1;
  ThreadPool::set_global_threads(a.threads);
  set_global_sim_engine(a.engine);
  set_global_cone_pruning(a.cone_pruning);
  return a;
}

/// Wall-clock stopwatch for the experiment binaries.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Collects per-stage results and writes them as a JSON document:
///   { "threads": N, "entries": [ {name, wall_ms, gate_evals, in_len,
///     out_len}, ... ] }
/// Intended for CI artifacts (BENCH_compaction.json).
class BenchJson {
 public:
  void add(std::string name, double wall_ms, std::uint64_t gate_evals, std::size_t in_len,
           std::size_t out_len) {
    entries_.push_back({std::move(name), wall_ms, gate_evals, in_len, out_len});
  }

  /// No-op when `path` is empty (no --json flag given).
  void write(const std::string& path, std::size_t threads) const {
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      std::exit(1);
    }
    out << "{\n  \"threads\": " << threads << ",\n  \"entries\": [\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      out << "    {\"name\": \"" << e.name << "\", \"wall_ms\": " << e.wall_ms
          << ", \"gate_evals\": " << e.gate_evals << ", \"in_len\": " << e.in_len
          << ", \"out_len\": " << e.out_len << "}" << (i + 1 < entries_.size() ? "," : "")
          << "\n";
    }
    out << "  ]\n}\n";
  }

 private:
  struct Entry {
    std::string name;
    double wall_ms;
    std::uint64_t gate_evals;
    std::size_t in_len;
    std::size_t out_len;
  };
  std::vector<Entry> entries_;
};

inline std::vector<SuiteEntry> select_suite(const Args& a) {
  if (!a.circuit.empty()) {
    const auto e = find_suite_entry(a.circuit);
    if (!e) {
      std::fprintf(stderr, "unknown circuit: %s\n", a.circuit.c_str());
      std::exit(2);
    }
    return {*e};
  }
  return a.full ? paper_suite() : fast_suite();
}

inline PipelineConfig make_config(const Args& a) {
  PipelineConfig cfg;
  cfg.atpg.seed = a.seed;
  cfg.atpg.use_scan_knowledge = a.scan_knowledge;
  cfg.baseline.seed = a.seed + 10;
  return cfg;
}

}  // namespace uniscan::bench
