// Shared helpers for the experiment binaries (bench/table*_*.cpp).
//
// Flags understood by the table binaries:
//   --full               run the whole paper suite (default: fast suite)
//   --circuit=NAME       run a single suite circuit
//   --bench-dir=DIR      load real .bench files from DIR when present
//   --seed=N             ATPG seed
//   --no-scan-knowledge  disable the Section-2 functional scan knowledge
//   --x-fill=random|zero translation x-fill policy
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/uniscan.hpp"

namespace uniscan::bench {

struct Args {
  bool full = false;
  bool scan_knowledge = true;
  std::string circuit;
  std::string bench_dir;
  std::uint64_t seed = 1;
  XFillPolicy fill = XFillPolicy::RandomFill;
};

inline Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") a.full = true;
    else if (arg == "--no-scan-knowledge") a.scan_knowledge = false;
    else if (arg.rfind("--circuit=", 0) == 0) a.circuit = arg.substr(10);
    else if (arg.rfind("--bench-dir=", 0) == 0) a.bench_dir = arg.substr(12);
    else if (arg.rfind("--seed=", 0) == 0) a.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    else if (arg == "--x-fill=zero") a.fill = XFillPolicy::ZeroFill;
    else if (arg == "--x-fill=random") a.fill = XFillPolicy::RandomFill;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return a;
}

inline std::vector<SuiteEntry> select_suite(const Args& a) {
  if (!a.circuit.empty()) {
    const auto e = find_suite_entry(a.circuit);
    if (!e) {
      std::fprintf(stderr, "unknown circuit: %s\n", a.circuit.c_str());
      std::exit(2);
    }
    return {*e};
  }
  return a.full ? paper_suite() : fast_suite();
}

inline PipelineConfig make_config(const Args& a) {
  PipelineConfig cfg;
  cfg.atpg.seed = a.seed;
  cfg.atpg.use_scan_knowledge = a.scan_knowledge;
  cfg.baseline.seed = a.seed + 10;
  return cfg;
}

}  // namespace uniscan::bench
