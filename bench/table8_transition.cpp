// EXTENSION (not in the paper): unified at-speed testing. The paper's
// comparison procedure [26] targets at-speed testing of scan circuits; this
// table applies the unified approach to the TRANSITION fault model directly:
// generate one sequence on C_scan (consecutive vectors are launch/capture
// pairs at speed, scan shifts included), then compact with the same
// restoration + omission machinery, all under gross-delay semantics.
#include "bench_common.hpp"

#include <iostream>

using namespace uniscan;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto suite = bench::select_suite(args);

  std::cout << "=== Table 8 (extension): transition-fault generation and compaction ===\n\n";

  TextTable table({"circ", "tfaults", "det", "tcov", "funct", "test.total", "omit.total",
                   "omit.scan"});
  std::size_t total_faults = 0, total_detected = 0;
  for (const SuiteEntry& entry : suite) {
    const Netlist c = load_circuit(entry, args.bench_dir);
    const ScanCircuit sc = insert_scan(c);
    const auto faults = enumerate_transition_faults(sc.netlist);

    AtpgOptions opt;
    opt.seed = args.seed;
    opt.use_scan_knowledge = args.scan_knowledge;
    const TransitionAtpgResult r = generate_transition_tests(sc, faults, opt);

    const CompactionResult rest = restoration_compact(sc.netlist, r.sequence, faults);
    const CompactionResult omit = omission_compact(sc.netlist, rest.sequence, faults);
    const SequenceStats st = sequence_stats(sc, omit.sequence);

    table.add_row({entry.name, std::to_string(r.num_faults), std::to_string(r.detected),
                   format_pct(r.fault_coverage()),
                   std::to_string(r.detected_by_scan_knowledge),
                   std::to_string(r.sequence.length()), std::to_string(st.total),
                   std::to_string(st.scan)});
    total_faults += r.num_faults;
    total_detected += r.detected;
  }
  table.print(std::cout);
  std::cout << "\nsuite transition coverage: "
            << format_pct(100.0 * static_cast<double>(total_detected) /
                          static_cast<double>(total_faults))
            << "% (" << total_detected << "/" << total_faults << ")\n";
  return 0;
}
