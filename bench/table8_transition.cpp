// EXTENSION (not in the paper): unified at-speed testing. The paper's
// comparison procedure [26] targets at-speed testing of scan circuits; this
// table applies the unified approach to the TRANSITION fault model directly:
// generate one sequence on C_scan (consecutive vectors are launch/capture
// pairs at speed, scan shifts included), then compact with the same
// restoration + omission machinery, all under gross-delay semantics.
// Circuits run as parallel tasks (--threads=N); rows stream to stdout in
// suite order as the completed prefix grows (run_suite_tasks_streaming).
#include "bench_common.hpp"

#include <iostream>

using namespace uniscan;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto suite = bench::select_suite(args);

  std::cout << "=== Table 8 (extension): transition-fault generation and compaction ===\n\n";

  struct Row {
    TransitionAtpgResult r;
    SequenceStats omitted;
    bool compaction_timed_out = false;
    std::uint64_t gate_evals = 0;
    double wall_ms = 0.0;
    std::vector<obs::StageStat> stages;
  };
  StreamTable table(std::cout, {"circ", "tfaults", "det", "tcov", "funct", "test.total",
                                "omit.total", "omit.scan", "status"});
  bench::BenchJson json;
  std::size_t total_faults = 0, total_detected = 0;
  SatSummary sat_total;
  const PipelineConfig cfg = anchor_suite_budget(bench::make_config(args));
  const auto rows = bench::run_suite_rows(
      args, suite,
      [&](std::size_t i) {
        const bench::Stopwatch sw;
        Row row;
        const Netlist c = run_stage(suite[i].name, "load",
                                    [&] { return load_circuit(suite[i], args.bench_dir); });
        const ScanCircuit sc = bench::timed_stage(row.stages, suite[i].name, "scan",
                                                  [&] { return insert_scan(c); });
        const auto faults =
            bench::timed_stage(row.stages, suite[i].name, "faults",
                               [&] { return enumerate_transition_faults(sc.netlist); });

        CancelToken cancel = cfg.cancel;
        if (cfg.per_circuit_budget_secs > 0)
          cancel = cancel.child(Deadline::after(cfg.per_circuit_budget_secs));

        AtpgOptions opt = cfg.atpg;
        opt.cancel = cancel;
        row.r = bench::timed_stage(row.stages, suite[i].name, "atpg",
                                   [&] { return generate_transition_tests(sc, faults, opt); });

        RestorationOptions rest_opt;
        rest_opt.cancel = cancel;
        const CompactionResult rest =
            bench::timed_stage(row.stages, suite[i].name, "restoration", [&] {
              return restoration_compact(sc.netlist, row.r.sequence, faults, rest_opt);
            });
        OmissionOptions om_opt;
        om_opt.cancel = cancel;
        const CompactionResult omit = bench::timed_stage(row.stages, suite[i].name, "omission", [&] {
          return omission_compact(sc.netlist, rest.sequence, faults, om_opt);
        });
        row.omitted = sequence_stats(sc, omit.sequence);
        row.compaction_timed_out = rest.timed_out || omit.timed_out;
        row.gate_evals = row.r.gate_evals + rest.gate_evals + omit.gate_evals;
        row.wall_ms = sw.ms();
        return row;
      },
      [&](std::size_t i, const TaskOutcome<Row>& outcome) {
        if (outcome.failed()) {
          table.add_row({suite[i].name, "-", "-", "-", "-", "-", "-", "-",
                         bench::row_status(*outcome.failure)});
          json.add_failure(*outcome.failure);
          return;
        }
        const Row& row = outcome.value;
        const TransitionAtpgResult& r = row.r;
        const bool timed_out = r.timed_out || row.compaction_timed_out;
        table.add_row({suite[i].name, std::to_string(r.num_faults), std::to_string(r.detected),
                       format_pct(r.fault_coverage()),
                       std::to_string(r.detected_by_scan_knowledge),
                       std::to_string(r.sequence.length()), std::to_string(row.omitted.total),
                       std::to_string(row.omitted.scan), bench::row_status(timed_out)});
        json.add(suite[i].name, row.wall_ms, row.gate_evals, r.sequence.length(),
                 row.omitted.total, timed_out, &row.stages);
        if (args.sat != SatMode::Off) {
          sat_total.add(r.sat);
          json.record_sat(args.sat, r.sat);
        }
        total_faults += r.num_faults;
        total_detected += r.detected;
      },
      cfg.fail_fast);
  if (total_faults > 0)
    std::cout << "\nsuite transition coverage: "
              << format_pct(100.0 * static_cast<double>(total_detected) /
                            static_cast<double>(total_faults))
              << "% (" << total_detected << "/" << total_faults << ")\n";
  if (args.sat != SatMode::Off)
    std::cout << format_sat_summary(args.sat, sat_total) << "\n";
  json.write(args.json, args.threads);
  if (json.has_failures()) {
    std::vector<TaskFailure> failures;
    for (const auto& row : rows)
      if (row.failed()) failures.push_back(*row.failure);
    bench::print_failures(failures);
    return bench::kExitHadFailures;
  }
  return 0;
}
