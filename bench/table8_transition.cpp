// EXTENSION (not in the paper): unified at-speed testing. The paper's
// comparison procedure [26] targets at-speed testing of scan circuits; this
// table applies the unified approach to the TRANSITION fault model directly:
// generate one sequence on C_scan (consecutive vectors are launch/capture
// pairs at speed, scan shifts included), then compact with the same
// restoration + omission machinery, all under gross-delay semantics.
// Circuits run as parallel tasks (--threads=N) and merge in suite order.
#include "bench_common.hpp"

#include <iostream>

using namespace uniscan;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto suite = bench::select_suite(args);

  std::cout << "=== Table 8 (extension): transition-fault generation and compaction ===\n\n";

  struct Row {
    TransitionAtpgResult r;
    SequenceStats omitted;
    std::uint64_t gate_evals = 0;
    double wall_ms = 0.0;
  };
  const auto rows = run_suite_tasks(suite.size(), [&](std::size_t i) {
    const bench::Stopwatch sw;
    Row row;
    const Netlist c = load_circuit(suite[i], args.bench_dir);
    const ScanCircuit sc = insert_scan(c);
    const auto faults = enumerate_transition_faults(sc.netlist);

    AtpgOptions opt;
    opt.seed = args.seed;
    opt.use_scan_knowledge = args.scan_knowledge;
    row.r = generate_transition_tests(sc, faults, opt);

    const CompactionResult rest = restoration_compact(sc.netlist, row.r.sequence, faults);
    const CompactionResult omit = omission_compact(sc.netlist, rest.sequence, faults);
    row.omitted = sequence_stats(sc, omit.sequence);
    row.gate_evals = row.r.gate_evals + rest.gate_evals + omit.gate_evals;
    row.wall_ms = sw.ms();
    return row;
  });

  TextTable table({"circ", "tfaults", "det", "tcov", "funct", "test.total", "omit.total",
                   "omit.scan"});
  bench::BenchJson json;
  std::size_t total_faults = 0, total_detected = 0;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const Row& row = rows[i];
    const TransitionAtpgResult& r = row.r;
    table.add_row({suite[i].name, std::to_string(r.num_faults), std::to_string(r.detected),
                   format_pct(r.fault_coverage()),
                   std::to_string(r.detected_by_scan_knowledge),
                   std::to_string(r.sequence.length()), std::to_string(row.omitted.total),
                   std::to_string(row.omitted.scan)});
    json.add(suite[i].name, row.wall_ms, row.gate_evals, r.sequence.length(),
             row.omitted.total);
    total_faults += r.num_faults;
    total_detected += r.detected;
  }
  table.print(std::cout);
  std::cout << "\nsuite transition coverage: "
            << format_pct(100.0 * static_cast<double>(total_detected) /
                          static_cast<double>(total_faults))
            << "% (" << total_detected << "/" << total_faults << ")\n";
  json.write(args.json, args.threads);
  return 0;
}
