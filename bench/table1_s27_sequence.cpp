// Regenerates the paper's Table 1: a test sequence for s27_scan produced by
// the Section-2 generator, where scan_sel/scan_inp are ordinary inputs and
// only LIMITED scan operations appear (runs of scan_sel = 1 shorter than the
// chain length).
#include "bench_common.hpp"

#include <iostream>

using namespace uniscan;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);

  const Netlist c = make_s27();
  const ScanCircuit sc = insert_scan(c);
  AtpgOptions opt;
  opt.seed = args.seed;
  opt.use_scan_knowledge = args.scan_knowledge;
  const AtpgResult r = generate_tests(sc, opt);

  std::cout << "=== Table 1: test sequence for s27_scan (Section 2 generator) ===\n\n";
  std::cout << format_sequence_table(sc, r.sequence) << "\n";

  const SequenceStats st = sequence_stats(sc, r.sequence);
  std::cout << "sequence length (clock cycles): " << st.total << "\n";
  std::cout << "vectors with scan_sel = 1:      " << st.scan << "\n";
  std::cout << "fault coverage:                 " << format_pct(r.fault_coverage()) << "% ("
            << r.detected << "/" << r.num_faults << ")\n";

  // Paper observation: all scan operations are LIMITED — no run of
  // scan_sel=1 reaches the full chain length.
  std::size_t longest_run = 0, run = 0, runs = 0;
  for (std::size_t t = 0; t < r.sequence.length(); ++t) {
    if (r.sequence.at(t, sc.scan_sel_index()) == V3::One) {
      if (run == 0) ++runs;
      longest_run = std::max(longest_run, ++run);
    } else {
      run = 0;
    }
  }
  std::cout << "scan operations (runs of scan_sel=1): " << runs
            << ", longest = " << longest_run << " shifts (chain length = "
            << sc.chain().cells.size() << ")\n";
  return 0;
}
