// Regenerates the paper's Table 4: the s27_scan sequence of Table 1 after
// static compaction for non-scan circuits — vector restoration [23] followed
// by vector omission [22]. The compacted sequence rearranges complete scan
// operations into limited ones.
//
// By default only s27 runs (with its full Table-4 sequence printout). With
// --full the restoration+omission pipeline additionally covers the fast
// suite's s2xx-s5xx circuits, producing one restoration_<name> and one
// omission_<name> JSON entry per circuit (BENCH_compaction.json).
#include "bench_common.hpp"

#include <iostream>

using namespace uniscan;

namespace {

struct CircuitRows {
  std::string name;
  std::size_t generated, restored, omitted;
  std::size_t detected, total_faults;
};

CircuitRows run_circuit(const SuiteEntry& entry, const bench::Args& args, bench::BenchJson& json,
                        bool print_s27_table) {
  const ScanCircuit sc = insert_scan(load_circuit(entry, args.bench_dir));
  const FaultList fl = FaultList::collapsed(sc.netlist);

  AtpgOptions opt;
  opt.seed = args.seed;
  opt.use_scan_knowledge = args.scan_knowledge;
  const AtpgResult gen = generate_tests(sc, fl, opt);

  bench::Stopwatch t_rest;
  const CompactionResult rest = restoration_compact(sc.netlist, gen.sequence, fl.faults());
  json.add("restoration_" + entry.name, t_rest.ms(), rest.gate_evals, gen.sequence.length(),
           rest.sequence.length());

  bench::Stopwatch t_omit;
  const CompactionResult omit = omission_compact(sc.netlist, rest.sequence, fl.faults());
  json.add("omission_" + entry.name, t_omit.ms(), omit.gate_evals, rest.sequence.length(),
           omit.sequence.length());

  if (print_s27_table) {
    std::cout << "=== Table 4: compacted test sequence for s27_scan ===\n\n";
    std::cout << format_sequence_table(sc, omit.sequence) << "\n";
  }

  FaultSimulator sim(sc.netlist);
  return CircuitRows{entry.name, gen.sequence.length(), rest.sequence.length(),
                     omit.sequence.length(),
                     sim.detected_indices(omit.sequence, fl.faults()).size(), fl.size()};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);

  // Default: the paper's s27 row. --full: the fast-suite circuits (the
  // larger paper circuits make compaction runs impractically long here).
  std::vector<SuiteEntry> suite;
  if (!args.circuit.empty()) {
    const auto e = find_suite_entry(args.circuit);
    if (!e) {
      std::fprintf(stderr, "unknown circuit: %s\n", args.circuit.c_str());
      return 2;
    }
    suite.push_back(*e);
  } else if (args.full) {
    suite = fast_suite();
  } else {
    suite.push_back(*find_suite_entry("s27"));
  }

  bench::BenchJson json;
  std::vector<CircuitRows> rows;
  for (const SuiteEntry& entry : suite)
    rows.push_back(run_circuit(entry, args, json, entry.name == "s27"));

  TextTable summary({"circuit", "generated", "restored", "omitted", "detected"});
  for (const CircuitRows& r : rows)
    summary.add_row({r.name, std::to_string(r.generated), std::to_string(r.restored),
                     std::to_string(r.omitted),
                     std::to_string(r.detected) + "/" + std::to_string(r.total_faults)});
  summary.print(std::cout);

  json.write(args.json, args.threads);
  return 0;
}
