// Regenerates the paper's Table 4: the s27_scan sequence of Table 1 after
// static compaction for non-scan circuits — vector restoration [23] followed
// by vector omission [22]. The compacted sequence rearranges complete scan
// operations into limited ones.
//
// By default only s27 runs (with its full Table-4 sequence printout). With
// --full the restoration+omission pipeline additionally covers the fast
// suite's s2xx-s5xx circuits, producing one restoration_<name> and one
// omission_<name> JSON entry per circuit (BENCH_compaction.json).
#include "bench_common.hpp"

#include <iostream>

using namespace uniscan;

namespace {

struct CircuitRows {
  std::string name;
  std::size_t generated, restored, omitted;
  std::size_t detected, total_faults;
  bool timed_out = false;
};

CircuitRows run_circuit(const SuiteEntry& entry, const bench::Args& args,
                        const PipelineConfig& cfg, bench::BenchJson& json,
                        std::string* s27_table) {
  const ScanCircuit sc = run_stage(entry.name, "scan", [&] {
    return insert_scan(run_stage(entry.name, "load",
                                 [&] { return load_circuit(entry, args.bench_dir); }));
  });
  const FaultList fl =
      run_stage(entry.name, "faults", [&] { return FaultList::collapsed(sc.netlist); });

  CancelToken cancel = cfg.cancel;
  if (cfg.per_circuit_budget_secs > 0)
    cancel = cancel.child(Deadline::after(cfg.per_circuit_budget_secs));

  AtpgOptions opt = cfg.atpg;
  opt.cancel = cancel;
  const AtpgResult gen = run_stage(entry.name, "atpg", [&] { return generate_tests(sc, fl, opt); });

  RestorationOptions rest_opt = cfg.restoration;
  rest_opt.cancel = cancel;
  std::vector<obs::StageStat> rest_stages;
  const CompactionResult rest = bench::timed_stage(rest_stages, entry.name, "restoration", [&] {
    return restoration_compact(sc.netlist, gen.sequence, fl.faults(), rest_opt);
  });
  json.add("restoration_" + entry.name, rest_stages.back().wall_ms, rest.gate_evals,
           gen.sequence.length(), rest.sequence.length(), rest.timed_out, &rest_stages);

  OmissionOptions om_opt = cfg.omission;
  om_opt.cancel = cancel;
  std::vector<obs::StageStat> omit_stages;
  const CompactionResult omit = bench::timed_stage(omit_stages, entry.name, "omission", [&] {
    return omission_compact(sc.netlist, rest.sequence, fl.faults(), om_opt);
  });
  json.add("omission_" + entry.name, omit_stages.back().wall_ms, omit.gate_evals,
           rest.sequence.length(), omit.sequence.length(), omit.timed_out, &omit_stages);

  if (s27_table) {
    *s27_table = "=== Table 4: compacted test sequence for s27_scan ===\n\n" +
                 format_sequence_table(sc, omit.sequence) + "\n";
  }

  FaultSimulator sim(sc.netlist);
  return CircuitRows{entry.name, gen.sequence.length(), rest.sequence.length(),
                     omit.sequence.length(),
                     sim.detected_indices(omit.sequence, fl.faults()).size(), fl.size(),
                     gen.timed_out || rest.timed_out || omit.timed_out};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);

  // Default: the paper's s27 row. --full: the fast-suite circuits (the
  // larger paper circuits make compaction runs impractically long here);
  // --circuit/--circuits/--corpus select like the other table binaries.
  std::vector<SuiteEntry> suite;
  if (args.circuits.empty() && args.circuit.empty() && args.corpus.empty()) {
    suite = args.full ? fast_suite() : std::vector<SuiteEntry>{*find_suite_entry("s27")};
  } else {
    suite = bench::select_suite(args);
  }

  bench::BenchJson json;
  const PipelineConfig cfg = anchor_suite_budget(bench::make_config(args));
  std::vector<TaskFailure> failures;
  std::string s27_table;
  // Rows stream: each circuit's summary line prints the moment its
  // (serial) compaction flow finishes; the s27 sequence printout follows
  // the summary so the streamed table is never interrupted.
  StreamTable summary(std::cout,
                      {"circuit", "generated", "restored", "omitted", "detected", "status"});
  for (const SuiteEntry& entry : suite) {
    CircuitRows r;
    try {
      r = run_circuit(entry, args, cfg, json, entry.name == "s27" ? &s27_table : nullptr);
    } catch (const StageError& e) {
      if (cfg.fail_fast) throw;
      failures.push_back(TaskFailure{entry.name, e.stage(), e.what()});
      summary.add_row({entry.name, "-", "-", "-", "-", bench::row_status(failures.back())});
      json.add_failure(failures.back());
      continue;
    } catch (const std::exception& e) {
      if (cfg.fail_fast) throw;
      failures.push_back(TaskFailure{entry.name, "unknown", e.what()});
      summary.add_row({entry.name, "-", "-", "-", "-", bench::row_status(failures.back())});
      json.add_failure(failures.back());
      continue;
    }
    summary.add_row({r.name, std::to_string(r.generated), std::to_string(r.restored),
                     std::to_string(r.omitted),
                     std::to_string(r.detected) + "/" + std::to_string(r.total_faults),
                     bench::row_status(r.timed_out)});
  }
  if (!s27_table.empty()) std::cout << "\n" << s27_table;

  json.write(args.json, args.threads);
  if (!failures.empty()) {
    bench::print_failures(failures);
    return bench::kExitHadFailures;
  }
  return 0;
}
