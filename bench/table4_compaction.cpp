// Regenerates the paper's Table 4: the s27_scan sequence of Table 1 after
// static compaction for non-scan circuits — vector restoration [23] followed
// by vector omission [22]. The compacted sequence rearranges complete scan
// operations into limited ones.
#include "bench_common.hpp"

#include <iostream>

using namespace uniscan;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);

  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);

  AtpgOptions opt;
  opt.seed = args.seed;
  const AtpgResult gen = generate_tests(sc, fl, opt);

  bench::BenchJson json;

  bench::Stopwatch t_rest;
  const CompactionResult rest = restoration_compact(sc.netlist, gen.sequence, fl.faults());
  json.add("restoration_s27", t_rest.ms(), rest.gate_evals, gen.sequence.length(),
           rest.sequence.length());

  bench::Stopwatch t_omit;
  const CompactionResult omit = omission_compact(sc.netlist, rest.sequence, fl.faults());
  json.add("omission_s27", t_omit.ms(), omit.gate_evals, rest.sequence.length(),
           omit.sequence.length());

  std::cout << "=== Table 4: compacted test sequence for s27_scan ===\n\n";
  std::cout << format_sequence_table(sc, omit.sequence) << "\n";

  TextTable summary({"stage", "total", "scan_sel=1"});
  const auto row = [&](const char* name, const TestSequence& s) {
    const SequenceStats st = sequence_stats(sc, s);
    summary.add_row({name, std::to_string(st.total), std::to_string(st.scan)});
  };
  row("generated (Table 1)", gen.sequence);
  row("after restoration [23]", rest.sequence);
  row("after omission [22]", omit.sequence);
  summary.print(std::cout);

  FaultSimulator sim(sc.netlist);
  std::cout << "\nfaults detected by compacted sequence: "
            << sim.detected_indices(omit.sequence, fl.faults()).size() << "/" << fl.size()
            << " (original: " << gen.detected << ")\n";

  json.write(args.json, args.threads);
  return 0;
}
