// Microbenchmarks + ablations for the static compaction procedures:
// restoration-before-omission order (DESIGN.md §5 ablation 4) and the
// omission trial order (back-to-front vs front-to-back).
#include <benchmark/benchmark.h>

#include "core/uniscan.hpp"

using namespace uniscan;

namespace {

struct Setup {
  ScanCircuit sc;
  FaultList fl;
  AtpgResult atpg;

  explicit Setup(const char* name)
      : sc(insert_scan(load_circuit(*find_suite_entry(name)))),
        fl(FaultList::collapsed(sc.netlist)),
        atpg(generate_tests(sc, fl, {})) {}
};

Setup& s27() {
  static Setup s("s27");
  return s;
}
Setup& b01() {
  static Setup s("b01");
  return s;
}

void BM_RestorationS27(benchmark::State& state) {
  Setup& s = s27();
  std::size_t len = 0;
  for (auto _ : state) {
    CompactionResult r = restoration_compact(s.sc.netlist, s.atpg.sequence, s.fl.faults());
    len = r.sequence.length();
    benchmark::DoNotOptimize(r);
  }
  state.counters["in_len"] = static_cast<double>(s.atpg.sequence.length());
  state.counters["out_len"] = static_cast<double>(len);
}
BENCHMARK(BM_RestorationS27)->Unit(benchmark::kMillisecond);

void BM_OmissionS27(benchmark::State& state) {
  Setup& s = s27();
  std::size_t len = 0;
  for (auto _ : state) {
    CompactionResult r = omission_compact(s.sc.netlist, s.atpg.sequence, s.fl.faults());
    len = r.sequence.length();
    benchmark::DoNotOptimize(r);
  }
  state.counters["out_len"] = static_cast<double>(len);
}
BENCHMARK(BM_OmissionS27)->Unit(benchmark::kMillisecond);

/// Ablation: the paper's order (restoration THEN omission) versus
/// omission-only. Restoration first is much cheaper because omission then
/// works on a shorter sequence; final lengths are comparable.
void BM_PipelineOrder(benchmark::State& state) {
  Setup& s = b01();
  const bool restoration_first = state.range(0) != 0;
  std::size_t len = 0;
  for (auto _ : state) {
    TestSequence input = s.atpg.sequence;
    if (restoration_first) {
      CompactionResult r = restoration_compact(s.sc.netlist, input, s.fl.faults());
      input = r.sequence;
    }
    CompactionResult o = omission_compact(s.sc.netlist, input, s.fl.faults());
    len = o.sequence.length();
    benchmark::DoNotOptimize(o);
  }
  state.counters["final_len"] = static_cast<double>(len);
  state.counters["restor_first"] = static_cast<double>(restoration_first);
}
BENCHMARK(BM_PipelineOrder)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

/// Ablation: omission trial order.
void BM_OmissionOrder(benchmark::State& state) {
  Setup& s = s27();
  OmissionOptions opt;
  opt.back_to_front = state.range(0) != 0;
  std::size_t len = 0;
  for (auto _ : state) {
    CompactionResult r = omission_compact(s.sc.netlist, s.atpg.sequence, s.fl.faults(), opt);
    len = r.sequence.length();
    benchmark::DoNotOptimize(r);
  }
  state.counters["final_len"] = static_cast<double>(len);
  state.counters["back_to_front"] = static_cast<double>(opt.back_to_front);
}
BENCHMARK(BM_OmissionOrder)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
