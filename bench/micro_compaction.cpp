// Microbenchmarks + ablations for the static compaction procedures:
// restoration-before-omission order (DESIGN.md §5 ablation 4), the omission
// trial order (back-to-front vs front-to-back), and the omission checkpoint
// interval. Accepts --threads=N (stripped before google-benchmark sees the
// flags) to size the global fault-simulation pool.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>

#include "core/uniscan.hpp"
#include "sim/engine.hpp"
#include "util/thread_pool.hpp"

using namespace uniscan;

namespace {

struct Setup {
  ScanCircuit sc;
  FaultList fl;
  AtpgResult atpg;

  explicit Setup(const char* name)
      : sc(insert_scan(load_circuit(*find_suite_entry(name)))),
        fl(FaultList::collapsed(sc.netlist)),
        atpg(generate_tests(sc, fl, {})) {}
};

Setup& s27() {
  static Setup s("s27");
  return s;
}
Setup& b01() {
  static Setup s("b01");
  return s;
}

void BM_RestorationS27(benchmark::State& state) {
  Setup& s = s27();
  std::size_t len = 0;
  for (auto _ : state) {
    CompactionResult r = restoration_compact(s.sc.netlist, s.atpg.sequence, s.fl.faults());
    len = r.sequence.length();
    benchmark::DoNotOptimize(r);
  }
  state.counters["in_len"] = static_cast<double>(s.atpg.sequence.length());
  state.counters["out_len"] = static_cast<double>(len);
}
BENCHMARK(BM_RestorationS27)->Unit(benchmark::kMillisecond);

void BM_OmissionS27(benchmark::State& state) {
  Setup& s = s27();
  std::size_t len = 0;
  for (auto _ : state) {
    CompactionResult r = omission_compact(s.sc.netlist, s.atpg.sequence, s.fl.faults());
    len = r.sequence.length();
    benchmark::DoNotOptimize(r);
  }
  state.counters["out_len"] = static_cast<double>(len);
}
BENCHMARK(BM_OmissionS27)->Unit(benchmark::kMillisecond);

/// Ablation: the paper's order (restoration THEN omission) versus
/// omission-only. Restoration first is much cheaper because omission then
/// works on a shorter sequence; final lengths are comparable.
void BM_PipelineOrder(benchmark::State& state) {
  Setup& s = b01();
  const bool restoration_first = state.range(0) != 0;
  std::size_t len = 0;
  for (auto _ : state) {
    TestSequence input = s.atpg.sequence;
    if (restoration_first) {
      CompactionResult r = restoration_compact(s.sc.netlist, input, s.fl.faults());
      input = r.sequence;
    }
    CompactionResult o = omission_compact(s.sc.netlist, input, s.fl.faults());
    len = o.sequence.length();
    benchmark::DoNotOptimize(o);
  }
  state.counters["final_len"] = static_cast<double>(len);
  state.counters["restor_first"] = static_cast<double>(restoration_first);
}
BENCHMARK(BM_PipelineOrder)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

/// Ablation: omission trial order.
void BM_OmissionOrder(benchmark::State& state) {
  Setup& s = s27();
  OmissionOptions opt;
  opt.back_to_front = state.range(0) != 0;
  std::size_t len = 0;
  for (auto _ : state) {
    CompactionResult r = omission_compact(s.sc.netlist, s.atpg.sequence, s.fl.faults(), opt);
    len = r.sequence.length();
    benchmark::DoNotOptimize(r);
  }
  state.counters["final_len"] = static_cast<double>(len);
  state.counters["back_to_front"] = static_cast<double>(opt.back_to_front);
}
BENCHMARK(BM_OmissionOrder)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

/// Ablation: simulation slot width. The omission engine's batch count,
/// checkpoint stores and fail-fast waves all shrink with wider words; the
/// compacted sequence is bit-identical at every width.
void BM_OmissionWidth(benchmark::State& state) {
  Setup& s = s27();
  set_global_slot_width(static_cast<SlotWidth>(state.range(0)));
  std::size_t len = 0;
  for (auto _ : state) {
    CompactionResult r = omission_compact(s.sc.netlist, s.atpg.sequence, s.fl.faults());
    len = r.sequence.length();
    benchmark::DoNotOptimize(r);
  }
  state.counters["final_len"] = static_cast<double>(len);
  state.counters["slot_width"] = static_cast<double>(slot_width_bits(resolved_slot_width()));
  set_global_slot_width(SlotWidth::Auto);
}
BENCHMARK(BM_OmissionWidth)->Arg(64)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

/// Ablation: omission checkpoint interval (0 = resimulate every trial from
/// power-up). The result is bit-identical across intervals; only the work
/// per trial changes.
void BM_OmissionCheckpoint(benchmark::State& state) {
  Setup& s = s27();
  OmissionOptions opt;
  opt.checkpoint_interval = static_cast<std::size_t>(state.range(0));
  std::size_t len = 0;
  std::uint64_t evals = 0;
  for (auto _ : state) {
    CompactionResult r = omission_compact(s.sc.netlist, s.atpg.sequence, s.fl.faults(), opt);
    len = r.sequence.length();
    evals = r.gate_evals;
    benchmark::DoNotOptimize(r);
  }
  state.counters["final_len"] = static_cast<double>(len);
  state.counters["gate_evals"] = static_cast<double>(evals);
}
BENCHMARK(BM_OmissionCheckpoint)->Arg(0)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Pull out --threads=N before google-benchmark rejects it as unknown.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      const std::size_t n = std::strtoull(argv[i] + 10, nullptr, 10);
      uniscan::ThreadPool::set_global_threads(n == 0 ? 1 : n);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
