// Microbenchmarks + ablation: parallel-fault (63 machines/word) versus
// serial (one machine/word) sequential fault simulation — DESIGN.md §5
// ablation 1. BM_CounterDisabled/BM_CounterEnabled pin down the telemetry
// registry's per-count cost (DESIGN.md §5g: disabled must be one predictable
// branch); BM_ParallelFaultSimNoObs is the whole-simulation overhead check
// the EXPERIMENTS.md 2%-budget row uses.
#include <benchmark/benchmark.h>

#include "core/uniscan.hpp"
#include "obs/counters.hpp"
#include "sim/engine.hpp"

using namespace uniscan;

namespace {

struct Setup {
  Netlist nl;
  FaultList fl;
  TestSequence seq;

  explicit Setup(const char* circuit, std::size_t len) :
      nl(load_circuit(*find_suite_entry(circuit))),
      fl(FaultList::collapsed(nl)),
      seq(nl.num_inputs()) {
    Rng rng(7);
    for (std::size_t t = 0; t < len; ++t) seq.append_x();
    seq.random_fill(rng);
  }
};

Setup& s298() {
  static Setup s("s298", 256);
  return s;
}

void BM_ParallelFaultSim(benchmark::State& state) {
  Setup& s = s298();
  FaultSimulator sim(s.nl);
  for (auto _ : state) {
    auto records = sim.run(s.seq, s.fl.faults());
    benchmark::DoNotOptimize(records);
  }
  state.counters["faults"] = static_cast<double>(s.fl.size());
  state.counters["fault_frames/s"] = benchmark::Counter(
      static_cast<double>(s.fl.size() * s.seq.length()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelFaultSim)->Unit(benchmark::kMillisecond);

void BM_SerialFaultSim(benchmark::State& state) {
  // One fault per word: the cost model of a naive serial simulator on the
  // same levelized engine.
  Setup& s = s298();
  FaultSimulator sim(s.nl);
  for (auto _ : state) {
    std::size_t detected = 0;
    for (std::size_t i = 0; i < s.fl.size(); ++i) {
      auto records = sim.run(s.seq, std::span<const Fault>(&s.fl[i], 1));
      detected += records[0].detected;
    }
    benchmark::DoNotOptimize(detected);
  }
  state.counters["fault_frames/s"] = benchmark::Counter(
      static_cast<double>(s.fl.size() * s.seq.length()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SerialFaultSim)->Unit(benchmark::kMillisecond);

void BM_GoodMachineSim(benchmark::State& state) {
  Setup& s = s298();
  const SequentialSimulator sim(s.nl);
  for (auto _ : state) {
    auto trace = sim.simulate(s.seq, sim.initial_state());
    benchmark::DoNotOptimize(trace);
  }
  state.counters["frames/s"] =
      benchmark::Counter(static_cast<double>(s.seq.length()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GoodMachineSim)->Unit(benchmark::kMicrosecond);

void BM_EventDrivenSim(benchmark::State& state) {
  // Event-driven vs levelized good-machine simulation; the event engine
  // shines when activity is low (here: constant inputs, settling state).
  Setup& s = s298();
  TestSequence quiet(s.nl.num_inputs());
  for (int t = 0; t < 256; ++t) quiet.append(std::vector<V3>(s.nl.num_inputs(), V3::Zero));
  EventSimulator sim(s.nl);
  for (auto _ : state) {
    auto trace = sim.simulate(quiet, State(s.nl.num_dffs(), V3::X));
    benchmark::DoNotOptimize(trace);
  }
  state.counters["gate_evals"] = static_cast<double>(sim.gate_evals());
}
BENCHMARK(BM_EventDrivenSim)->Unit(benchmark::kMicrosecond);

void BM_LevelizedQuietSim(benchmark::State& state) {
  Setup& s = s298();
  TestSequence quiet(s.nl.num_inputs());
  for (int t = 0; t < 256; ++t) quiet.append(std::vector<V3>(s.nl.num_inputs(), V3::Zero));
  const SequentialSimulator sim(s.nl);
  for (auto _ : state) {
    auto trace = sim.simulate(quiet, State(s.nl.num_dffs(), V3::X));
    benchmark::DoNotOptimize(trace);
  }
}
BENCHMARK(BM_LevelizedQuietSim)->Unit(benchmark::kMicrosecond);

void BM_CounterDisabled(benchmark::State& state) {
  // The disabled hot path of obs::count: one relaxed atomic bool load and a
  // branch, independent of the counter or increment.
  obs::set_enabled(false);
  for (auto _ : state) obs::count(obs::Counter::GateEvals, 63);
  obs::set_enabled(true);
}
BENCHMARK(BM_CounterDisabled)->Unit(benchmark::kNanosecond);

void BM_CounterEnabled(benchmark::State& state) {
  // Enabled path: the load + branch plus one relaxed fetch_add on this
  // worker's cache-line-aligned shard (uncontended here).
  obs::set_enabled(true);
  for (auto _ : state) obs::count(obs::Counter::GateEvals, 63);
}
BENCHMARK(BM_CounterEnabled)->Unit(benchmark::kNanosecond);

void BM_ParallelFaultSimNoObs(benchmark::State& state) {
  // BM_ParallelFaultSim with telemetry disabled: the pair bounds the
  // whole-simulation counter overhead (EXPERIMENTS.md keeps it under 2%).
  Setup& s = s298();
  FaultSimulator sim(s.nl);
  obs::set_enabled(false);
  for (auto _ : state) {
    auto records = sim.run(s.seq, s.fl.faults());
    benchmark::DoNotOptimize(records);
  }
  obs::set_enabled(true);
}
BENCHMARK(BM_ParallelFaultSimNoObs)->Unit(benchmark::kMillisecond);

void BM_ParallelFaultSimWidth(benchmark::State& state) {
  // Slot-width ablation: the same run at 63, 255 and 511 faults per batch.
  // On a plain build the wider words run portable lane loops; configure
  // with -DUNISCAN_AVX2=ON / -DUNISCAN_AVX512=ON for the intrinsic paths
  // (EXPERIMENTS.md records both). Arg(0) = auto (build/CPU default).
  Setup& s = s298();
  FaultSimulator sim(s.nl);
  set_global_slot_width(static_cast<SlotWidth>(state.range(0)));
  for (auto _ : state) {
    auto records = sim.run(s.seq, s.fl.faults());
    benchmark::DoNotOptimize(records);
  }
  state.counters["slot_width"] = static_cast<double>(slot_width_bits(resolved_slot_width()));
  state.counters["fault_frames/s"] = benchmark::Counter(
      static_cast<double>(s.fl.size() * s.seq.length()), benchmark::Counter::kIsRate);
  set_global_slot_width(SlotWidth::Auto);
}
BENCHMARK(BM_ParallelFaultSimWidth)->Arg(64)->Arg(256)->Arg(512)->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelFaultSimWidthLarge(benchmark::State& state) {
  // The width ablation on a fault list an order of magnitude larger
  // (s1423: ~3.2k collapsed faults, 50 batches at width 64 vs 13 at 256).
  // Small circuits are fixup-bound (see EXPERIMENTS.md); this is the
  // regime the wide words are for.
  static Setup s("s1423", 256);
  FaultSimulator sim(s.nl);
  set_global_slot_width(static_cast<SlotWidth>(state.range(0)));
  for (auto _ : state) {
    auto records = sim.run(s.seq, s.fl.faults());
    benchmark::DoNotOptimize(records);
  }
  state.counters["slot_width"] = static_cast<double>(slot_width_bits(resolved_slot_width()));
  state.counters["fault_frames/s"] = benchmark::Counter(
      static_cast<double>(s.fl.size() * s.seq.length()), benchmark::Counter::kIsRate);
  set_global_slot_width(SlotWidth::Auto);
}
BENCHMARK(BM_ParallelFaultSimWidthLarge)->Arg(64)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_SessionAdvanceWidth(benchmark::State& state) {
  // Session construction is untimed; the advance packs the whole fault
  // universe into kBits-1-slot batches at the forced width.
  Setup& s = s298();
  set_global_slot_width(static_cast<SlotWidth>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    FaultSimSession session(s.nl, s.fl.faults());
    state.ResumeTiming();
    session.advance(s.seq);
    benchmark::DoNotOptimize(session.num_detected());
  }
  state.counters["slot_width"] = static_cast<double>(slot_width_bits(resolved_slot_width()));
  set_global_slot_width(SlotWidth::Auto);
}
BENCHMARK(BM_SessionAdvanceWidth)->Arg(64)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_SessionAdvance(benchmark::State& state) {
  // Streaming session: cost of advancing the whole fault universe one chunk.
  Setup& s = s298();
  for (auto _ : state) {
    state.PauseTiming();
    FaultSimSession session(s.nl, s.fl.faults());
    state.ResumeTiming();
    session.advance(s.seq);
    benchmark::DoNotOptimize(session.num_detected());
  }
}
BENCHMARK(BM_SessionAdvance)->Unit(benchmark::kMillisecond);

void BM_RepackFaultSim(benchmark::State& state) {
  // Repacking ablation (DESIGN.md §5j): a session advanced chunk by chunk,
  // the regime repacking targets — early chunks detect the easy faults, so
  // without repacking the later chunks drag mostly-dead batches. s344 is
  // random-testable (most lanes die within the first chunks); a
  // random-resistant circuit like s526 keeps its population live and the
  // trigger correctly never fires. Arg pairs are (slot width or 0 for
  // auto, repack on/off); detections are bit-identical across all
  // variants, only the work moves.
  static Setup s("s344", 2048);
  const SlotWidth width = static_cast<SlotWidth>(state.range(0));
  const bool repack = state.range(1) != 0;
  constexpr std::size_t kChunk = 64;
  std::vector<TestSequence> chunks;
  for (std::size_t t = 0; t < s.seq.length(); t += kChunk) {
    TestSequence c(s.nl.num_inputs());
    for (std::size_t u = t; u < std::min(t + kChunk, s.seq.length()); ++u)
      c.append(std::vector<V3>(s.seq.vector_at(u)));
    chunks.push_back(std::move(c));
  }
  set_global_slot_width(width);
  set_global_repack(repack);
  const std::uint64_t evals0 = obs::totals()[static_cast<std::size_t>(obs::Counter::GateEvals)];
  std::uint64_t iters = 0;
  for (auto _ : state) {
    state.PauseTiming();
    FaultSimSession session(s.nl, s.fl.faults());
    state.ResumeTiming();
    for (const TestSequence& c : chunks) session.advance(c);
    benchmark::DoNotOptimize(session.num_detected());
    ++iters;
  }
  const std::uint64_t evals1 = obs::totals()[static_cast<std::size_t>(obs::Counter::GateEvals)];
  if (iters)
    state.counters["gate_evals/iter"] = static_cast<double>((evals1 - evals0) / iters);
  set_global_repack(true);
  set_global_slot_width(SlotWidth::Auto);
}
BENCHMARK(BM_RepackFaultSim)
    ->Args({0, 0})->Args({0, 1})
    ->Args({64, 0})->Args({64, 1})
    ->Args({512, 0})->Args({512, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
