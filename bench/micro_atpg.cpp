// Microbenchmarks + ablation: PODEM search cost versus time-frame window
// length (DESIGN.md §5 ablation 2), and full generation runs.
#include <benchmark/benchmark.h>

#include "core/uniscan.hpp"

using namespace uniscan;

namespace {

const ScanCircuit& s27_scan() {
  static ScanCircuit sc = insert_scan(make_s27());
  return sc;
}

const ScanCircuit& s298_scan() {
  static ScanCircuit sc = insert_scan(load_circuit(*find_suite_entry("s298")));
  return sc;
}

/// Ablation: deterministic PODEM over all collapsed faults at a fixed window
/// length. Longer windows find deeper tests but each simulate() costs more.
void BM_PodemWindowSweep(benchmark::State& state) {
  const ScanCircuit& sc = s298_scan();
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const std::size_t window = static_cast<std::size_t>(state.range(0));
  std::size_t successes = 0;
  for (auto _ : state) {
    successes = 0;
    for (std::size_t i = 0; i < fl.size(); i += 16) {  // sample every 16th fault
      FrameModel model(sc.netlist, fl[i], window);
      successes += run_podem(model, PodemGoal::ObservePo, {40}).success;
    }
    benchmark::DoNotOptimize(successes);
  }
  state.counters["detected"] = static_cast<double>(successes);
  state.counters["window"] = static_cast<double>(window);
}
BENCHMARK(BM_PodemWindowSweep)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_GenerateTestsS27(benchmark::State& state) {
  const ScanCircuit& sc = s27_scan();
  for (auto _ : state) {
    AtpgResult r = generate_tests(sc);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GenerateTestsS27)->Unit(benchmark::kMillisecond);

void BM_GenerateTestsS298(benchmark::State& state) {
  const ScanCircuit& sc = s298_scan();
  for (auto _ : state) {
    AtpgResult r = generate_tests(sc);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GenerateTestsS298)->Unit(benchmark::kMillisecond);

/// Ablation 3 (paper Table 5 `funct` column): generation with and without
/// the Section-2 functional scan knowledge.
void BM_ScanKnowledgeOnOff(benchmark::State& state) {
  const ScanCircuit& sc = s298_scan();
  AtpgOptions opt;
  opt.use_scan_knowledge = state.range(0) != 0;
  opt.max_backtracks = 60;  // keep the ablation affordable; the gap is huge either way
  std::size_t detected = 0;
  for (auto _ : state) {
    AtpgResult r = generate_tests(sc, FaultList::collapsed(sc.netlist), opt);
    detected = r.detected;
    benchmark::DoNotOptimize(r);
  }
  state.counters["detected"] = static_cast<double>(detected);
  state.counters["knowledge"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ScanKnowledgeOnOff)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
