// Regenerates the paper's Tables 2+3: a conventional scan test set S for
// s27_scan and its Section-3 translation into one unified sequence where the
// scan operations are explicit vectors.
#include "bench_common.hpp"

#include <iostream>

using namespace uniscan;

namespace {
std::vector<V3> vec(const std::string& s) {
  std::vector<V3> out;
  for (char c : s) out.push_back(v3_from_char(c));
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);

  const ScanCircuit sc = insert_scan(make_s27());

  // The paper's Table 2 test set.
  ScanTestSet set;
  set.num_original_inputs = 4;
  set.chain_length = 3;
  set.tests.push_back({vec("011"), {vec("0000")}});
  set.tests.push_back({vec("011"), {vec("1101")}});
  set.tests.push_back({vec("000"), {vec("1010")}});
  set.tests.push_back({vec("110"), {vec("0100"), vec("0111"), vec("1001")}});

  std::cout << "=== Table 2: scan test set S for s27_scan ===\n\n";
  TextTable t2({"i", "SI_i", "T_i"});
  for (std::size_t i = 0; i < set.tests.size(); ++i) {
    std::string si, ti;
    for (V3 v : set.tests[i].scan_in) si.push_back(to_char(v));
    for (const auto& tv : set.tests[i].vectors) {
      if (!ti.empty()) ti.push_back(' ');
      for (V3 v : tv) ti.push_back(to_char(v));
    }
    t2.add_row({std::to_string(i + 1), si, ti});
  }
  t2.print(std::cout);

  TranslationOptions opt;
  opt.fill = XFillPolicy::KeepX;
  const TestSequence keep_x = translate_test_set(sc, set, opt);
  std::cout << "\n=== Table 3: translated test sequence (x = free value) ===\n\n";
  std::cout << format_sequence_table(sc, keep_x);

  opt.fill = args.fill;
  opt.seed = args.seed;
  const TestSequence filled = translate_test_set(sc, set, opt);
  FaultSimulator sim(sc.netlist);
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const auto detected = sim.detected_indices(filled, fl.faults());

  std::cout << "\ntranslated length: " << filled.length() << " cycles (= "
            << set.application_cycles() << " conventional application cycles)\n";
  std::cout << "faults detected by the filled translation: " << detected.size() << "/"
            << fl.size() << "\n";
  return 0;
}
