// Regenerates the paper's Table 5: fault coverage of the Section-2 test
// generation procedure over the benchmark suite. Columns mirror the paper:
// circuit, inputs (including scan_sel/scan_inp), state variables, collapsed
// fault count, detected faults, coverage, and `funct` — faults detected only
// through the functional-level scan knowledge.
//
// Run with --no-scan-knowledge for the ablation (funct becomes 0 and
// coverage may drop).
#include "bench_common.hpp"

#include <iostream>

using namespace uniscan;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto suite = bench::select_suite(args);

  std::cout << "=== Table 5: fault coverage after test generation ===\n";
  if (!args.scan_knowledge) std::cout << "(functional scan knowledge DISABLED)\n";
  std::cout << "\n";

  // `redund` and `eff` extend the paper's columns: faults PROVED untestable
  // by any single-vector scan test, and coverage relative to the remaining
  // (possibly testable) universe.
  TextTable table({"circ", "inp", "stvr", "faults", "total", "fcov", "funct", "redund", "eff"});
  std::size_t total_faults = 0, total_detected = 0;
  for (const SuiteEntry& entry : suite) {
    const Netlist c = load_circuit(entry, args.bench_dir);
    const ScanCircuit sc = insert_scan(c);
    const FaultList fl = FaultList::collapsed(sc.netlist);

    AtpgOptions opt;
    opt.seed = args.seed;
    opt.use_scan_knowledge = args.scan_knowledge;
    const AtpgResult r = generate_tests(sc, fl, opt);

    const std::size_t testable_universe = r.num_faults - r.proved_redundant;
    const double efficiency =
        testable_universe == 0
            ? 100.0
            : 100.0 * static_cast<double>(r.detected) / static_cast<double>(testable_universe);
    table.add_row({entry.name, std::to_string(sc.netlist.num_inputs()),
                   std::to_string(sc.netlist.num_dffs()), std::to_string(r.num_faults),
                   std::to_string(r.detected), format_pct(r.fault_coverage()),
                   std::to_string(r.detected_by_scan_knowledge),
                   std::to_string(r.proved_redundant), format_pct(efficiency)});
    total_faults += r.num_faults;
    total_detected += r.detected;
  }
  table.print(std::cout);
  std::cout << "\nsuite total: " << total_detected << "/" << total_faults << " ("
            << format_pct(100.0 * static_cast<double>(total_detected) /
                          static_cast<double>(total_faults))
            << "%)\n";
  return 0;
}
