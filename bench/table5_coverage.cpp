// Regenerates the paper's Table 5: fault coverage of the Section-2 test
// generation procedure over the benchmark suite. Columns mirror the paper:
// circuit, inputs (including scan_sel/scan_inp), state variables, collapsed
// fault count, detected faults, coverage, and `funct` — faults detected only
// through the functional-level scan knowledge.
//
// Run with --no-scan-knowledge for the ablation (funct becomes 0 and
// coverage may drop). Circuits run as parallel tasks on the global pool
// (--threads=N); rows STREAM to stdout as the completed prefix of the suite
// grows (run_suite_tasks_streaming), so a long --corpus run under
// --time-budget shows its finished rows immediately — while the emitted
// order stays identical at any thread count; --json=FILE records
// per-circuit wall time and gate evaluations (BENCH_atpg.json).
#include "bench_common.hpp"

#include <iostream>

using namespace uniscan;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto suite = bench::select_suite(args);

  std::cout << "=== Table 5: fault coverage after test generation ===\n";
  if (!args.scan_knowledge) std::cout << "(functional scan knowledge DISABLED)\n";
  std::cout << "\n";

  struct Row {
    std::size_t inputs = 0;
    std::size_t dffs = 0;
    AtpgResult r;
    double wall_ms = 0.0;
    std::vector<obs::StageStat> stages;
  };
  // `redund` and `eff` extend the paper's columns: faults PROVED untestable
  // by any single-vector scan test, and coverage relative to the remaining
  // (possibly testable) universe.
  StreamTable table(std::cout, {"circ", "inp", "stvr", "faults", "total", "fcov", "funct",
                                "redund", "eff", "status"});
  bench::BenchJson json;
  std::size_t total_faults = 0, total_detected = 0;
  SatSummary sat_total;
  const PipelineConfig cfg = anchor_suite_budget(bench::make_config(args));
  const auto rows = bench::run_suite_rows(
      args, suite,
      [&](std::size_t i) {
        const bench::Stopwatch sw;
        Row row;
        const Netlist c = run_stage(suite[i].name, "load",
                                    [&] { return load_circuit(suite[i], args.bench_dir); });
        const ScanCircuit sc = bench::timed_stage(row.stages, suite[i].name, "scan",
                                                  [&] { return insert_scan(c); });
        const FaultList fl = bench::timed_stage(row.stages, suite[i].name, "faults",
                                                [&] { return FaultList::collapsed(sc.netlist); });

        AtpgOptions opt = cfg.atpg;
        opt.cancel = cfg.cancel;
        if (cfg.per_circuit_budget_secs > 0)
          opt.cancel = opt.cancel.child(Deadline::after(cfg.per_circuit_budget_secs));
        row.r = bench::timed_stage(row.stages, suite[i].name, "atpg",
                                   [&] { return generate_tests(sc, fl, opt); });
        row.inputs = sc.netlist.num_inputs();
        row.dffs = sc.netlist.num_dffs();
        row.wall_ms = sw.ms();
        return row;
      },
      [&](std::size_t i, const TaskOutcome<Row>& outcome) {
        if (outcome.failed()) {
          table.add_row({suite[i].name, "-", "-", "-", "-", "-", "-", "-", "-",
                         bench::row_status(*outcome.failure)});
          json.add_failure(*outcome.failure);
          return;
        }
        const Row& row = outcome.value;
        const AtpgResult& r = row.r;
        const std::size_t testable_universe = r.num_faults - r.proved_redundant;
        const double efficiency =
            testable_universe == 0
                ? 100.0
                : 100.0 * static_cast<double>(r.detected) / static_cast<double>(testable_universe);
        table.add_row({suite[i].name, std::to_string(row.inputs), std::to_string(row.dffs),
                       std::to_string(r.num_faults), std::to_string(r.detected),
                       format_pct(r.fault_coverage()), std::to_string(r.detected_by_scan_knowledge),
                       std::to_string(r.proved_redundant), format_pct(efficiency),
                       bench::row_status(r.timed_out)});
        // Generation builds the sequence from scratch: in_len 0, out_len the
        // generated vector count.
        json.add(suite[i].name, row.wall_ms, r.gate_evals, 0, r.sequence.length(), r.timed_out,
                 &row.stages);
        if (args.sat != SatMode::Off) {
          sat_total.add(r.sat);
          json.record_sat(args.sat, r.sat);
        }
        total_faults += r.num_faults;
        total_detected += r.detected;
      },
      cfg.fail_fast);
  if (total_faults > 0)
    std::cout << "\nsuite total: " << total_detected << "/" << total_faults << " ("
              << format_pct(100.0 * static_cast<double>(total_detected) /
                            static_cast<double>(total_faults))
              << "%)\n";
  if (args.sat != SatMode::Off)
    std::cout << format_sat_summary(args.sat, sat_total) << "\n";
  json.write(args.json, args.threads);
  if (json.has_failures()) {
    std::vector<TaskFailure> failures;
    for (const auto& row : rows)
      if (row.failed()) failures.push_back(*row.failure);
    bench::print_failures(failures);
    return bench::kExitHadFailures;
  }
  return 0;
}
