// Ablation (DESIGN.md §5.5): x-fill policy of the Section-3 translation.
// Random fill maximizes incidental coverage, zero/repeat fill minimize
// tester switching — the bench quantifies both sides of the trade.
#include <benchmark/benchmark.h>

#include "core/uniscan.hpp"

using namespace uniscan;

namespace {

struct Setup {
  ScanCircuit sc = insert_scan(load_circuit(*find_suite_entry("s298")));
  FaultList fl = FaultList::collapsed(sc.netlist);
  BaselineResult base = generate_baseline_tests(sc, fl, {});
};

Setup& setup() {
  static Setup s;
  return s;
}

void BM_XFillPolicy(benchmark::State& state) {
  Setup& s = setup();
  TranslationOptions opt;
  switch (state.range(0)) {
    case 0: opt.fill = XFillPolicy::RandomFill; break;
    case 1: opt.fill = XFillPolicy::ZeroFill; break;
    default: opt.fill = XFillPolicy::RepeatFill; break;
  }

  std::size_t detected = 0, transitions = 0;
  FaultSimulator sim(s.sc.netlist);
  for (auto _ : state) {
    const TestSequence seq = translate_test_set(s.sc, s.base.test_set, opt);
    detected = sim.detected_indices(seq, s.fl.faults()).size();
    transitions = compute_metrics(s.sc, seq).input_transitions;
    benchmark::DoNotOptimize(seq);
  }
  state.counters["detected"] = static_cast<double>(detected);
  state.counters["input_transitions"] = static_cast<double>(transitions);
  state.counters["policy"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_XFillPolicy)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_DiagnoseFullUniverse(benchmark::State& state) {
  // Cost of one full-universe diagnosis pass on a compacted sequence.
  Setup& s = setup();
  static const AtpgResult atpg = generate_tests(s.sc, s.fl, {});
  const FailLog observed = simulate_fail_log(s.sc.netlist, atpg.sequence, s.fl[3]);
  std::size_t candidates = 0;
  for (auto _ : state) {
    candidates = diagnose(s.sc.netlist, atpg.sequence, s.fl.faults(), observed).size();
    benchmark::DoNotOptimize(candidates);
  }
  state.counters["candidates"] = static_cast<double>(candidates);
}
BENCHMARK(BM_DiagnoseFullUniverse)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
