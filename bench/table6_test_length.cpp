// Regenerates the paper's Table 6: test application time of the unified
// approach. For every circuit: the generated sequence T (total vectors and
// scan_sel=1 vectors), after restoration-based compaction [23], after
// omission-based compaction [22], faults gained by compaction (`ext det`),
// and the complete-scan baseline cycles (the paper's [26] column; here our
// second-approach generator, see DESIGN.md §3). Circuits run as parallel
// tasks (--threads=N); rows stream to stdout in suite order as the
// completed prefix grows (run_suite_tasks_streaming).
#include "bench_common.hpp"

#include <iostream>

using namespace uniscan;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto suite = bench::select_suite(args);

  std::cout << "=== Table 6: test length after test generation and compaction ===\n\n";

  struct Row {
    GenerateCompactReport r;
    double wall_ms = 0.0;
  };
  StreamTable table(std::cout, {"circ", "test.total", "test.scan", "restor.total", "restor.scan",
                                "omit.total", "omit.scan", "ext", "base.cyc", "status"});
  bench::BenchJson json;
  std::size_t total_omit = 0, total_base = 0;
  SatSummary sat_total;
  const PipelineConfig cfg = anchor_suite_budget(bench::make_config(args));
  const auto rows = bench::run_suite_rows(
      args, suite,
      [&](std::size_t i) {
        const bench::Stopwatch sw;
        Row row;
        const Netlist c = run_stage(suite[i].name, "load",
                                    [&] { return load_circuit(suite[i], args.bench_dir); });
        row.r = run_generate_and_compact(c, cfg);
        row.wall_ms = sw.ms();
        return row;
      },
      [&](std::size_t i, const TaskOutcome<Row>& outcome) {
        if (outcome.failed()) {
          table.add_row({suite[i].name, "-", "-", "-", "-", "-", "-", "", "-",
                         bench::row_status(*outcome.failure)});
          json.add_failure(*outcome.failure);
          return;  // failed rows contribute nothing to the totals
        }
        const GenerateCompactReport& r = outcome.value.r;
        table.add_row({suite[i].name, std::to_string(r.raw.total), std::to_string(r.raw.scan),
                       std::to_string(r.restored.total), std::to_string(r.restored.scan),
                       std::to_string(r.omitted.total), std::to_string(r.omitted.scan),
                       r.extra_detected ? "+" + std::to_string(r.extra_detected) : "",
                       std::to_string(r.baseline.application_cycles()),
                       bench::row_status(r.timed_out())});
        json.add(suite[i].name, outcome.value.wall_ms,
                 r.atpg.gate_evals + r.restoration.gate_evals + r.omission.gate_evals, r.raw.total,
                 r.omitted.total, r.timed_out(), &r.stages);
        if (args.sat != SatMode::Off) {
          sat_total.add(r.atpg.sat);
          json.record_sat(args.sat, r.atpg.sat);
        }
        total_omit += r.omitted.total;
        total_base += r.baseline.application_cycles();
      },
      cfg.fail_fast);
  if (total_base > 0)
    std::cout << "\nsuite totals: unified+compacted = " << total_omit
              << " cycles, complete-scan baseline = " << total_base << " cycles ("
              << format_pct(100.0 * static_cast<double>(total_omit) /
                            static_cast<double>(total_base))
              << "% of baseline)\n";
  if (args.sat != SatMode::Off)
    std::cout << format_sat_summary(args.sat, sat_total) << "\n";
  json.write(args.json, args.threads);
  if (json.has_failures()) {
    std::vector<TaskFailure> failures;
    for (const auto& row : rows)
      if (row.failed()) failures.push_back(*row.failure);
    bench::print_failures(failures);
    return bench::kExitHadFailures;
  }
  return 0;
}
