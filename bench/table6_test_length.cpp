// Regenerates the paper's Table 6: test application time of the unified
// approach. For every circuit: the generated sequence T (total vectors and
// scan_sel=1 vectors), after restoration-based compaction [23], after
// omission-based compaction [22], faults gained by compaction (`ext det`),
// and the complete-scan baseline cycles (the paper's [26] column; here our
// second-approach generator, see DESIGN.md §3).
#include "bench_common.hpp"

#include <iostream>

using namespace uniscan;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const auto suite = bench::select_suite(args);

  std::cout << "=== Table 6: test length after test generation and compaction ===\n\n";

  TextTable table({"circ", "test.total", "test.scan", "restor.total", "restor.scan",
                   "omit.total", "omit.scan", "ext", "base.cyc"});
  std::size_t total_omit = 0, total_base = 0;
  for (const SuiteEntry& entry : suite) {
    const Netlist c = load_circuit(entry, args.bench_dir);
    PipelineConfig cfg = bench::make_config(args);
    const GenerateCompactReport r = run_generate_and_compact(c, cfg);

    table.add_row({entry.name, std::to_string(r.raw.total), std::to_string(r.raw.scan),
                   std::to_string(r.restored.total), std::to_string(r.restored.scan),
                   std::to_string(r.omitted.total), std::to_string(r.omitted.scan),
                   r.extra_detected ? "+" + std::to_string(r.extra_detected) : "",
                   std::to_string(r.baseline.application_cycles())});
    total_omit += r.omitted.total;
    total_base += r.baseline.application_cycles();
  }
  table.print(std::cout);
  std::cout << "\nsuite totals: unified+compacted = " << total_omit
            << " cycles, complete-scan baseline = " << total_base << " cycles ("
            << format_pct(100.0 * static_cast<double>(total_omit) /
                          static_cast<double>(total_base))
            << "% of baseline)\n";
  return 0;
}
