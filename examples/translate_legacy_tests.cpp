// Scenario: you already have scan tests from a conventional ATPG flow (a
// commercial tool, a legacy test program) and want to cut tester time
// WITHOUT regenerating tests — the paper's Section 3 + Section 4 flow.
//
// The example builds a conventional complete-scan test set for a mid-size
// circuit, translates it into a unified sequence (scan operations become
// explicit vectors), compacts, and reports the cycle savings. It also shows
// how the compacted sequence replaces complete scan operations with limited
// ones: the histogram of scan_sel=1 run lengths shifts far below the chain
// length.
//
// Build & run:  ./build/examples/translate_legacy_tests
#include <iostream>
#include <map>

#include "core/uniscan.hpp"

int main() {
  using namespace uniscan;

  const Netlist c = load_circuit(*find_suite_entry("s298"));
  const ScanCircuit sc = insert_scan(c);
  const FaultList faults = FaultList::collapsed(sc.netlist);
  const std::size_t n = sc.chain().cells.size();

  // A conventional test set with COMPLETE scan operations (stand-in for a
  // legacy/commercial test program; any (SI, T) set can be used instead).
  const BaselineResult legacy = generate_baseline_tests(sc, faults, {});
  std::cout << "legacy test set: " << legacy.test_set.tests.size() << " scan tests, "
            << legacy.application_cycles() << " cycles, coverage "
            << format_pct(legacy.fault_coverage()) << "%\n";

  // Section 3: translation. legacy.translated already is the unified
  // sequence; translate_test_set() does the same from any external test set:
  const TestSequence unified = translate_test_set(sc, legacy.test_set, {});
  std::cout << "translated sequence: " << unified.length() << " vectors\n";

  // Section 4: compaction with non-scan procedures.
  const CompactionResult restored =
      restoration_compact(sc.netlist, legacy.translated, faults.faults());
  const CompactionResult omitted =
      omission_compact(sc.netlist, restored.sequence, faults.faults());
  std::cout << "after restoration [23]: " << restored.sequence.length() << " vectors\n";
  std::cout << "after omission [22]:    " << omitted.sequence.length() << " vectors ("
            << format_pct(100.0 * static_cast<double>(omitted.sequence.length()) /
                          static_cast<double>(legacy.application_cycles()))
            << "% of the legacy application time)\n\n";

  // Limited scan operations: run-length histogram of scan_sel = 1.
  const auto histogram = [&](const TestSequence& seq) {
    std::map<std::size_t, std::size_t> h;
    std::size_t run = 0;
    for (std::size_t t = 0; t < seq.length(); ++t) {
      if (seq.at(t, sc.scan_sel_index()) == V3::One) ++run;
      else if (run) h[run]++, run = 0;
    }
    if (run) h[run]++;
    return h;
  };

  std::cout << "scan-operation lengths (chain length = " << n << "):\n";
  TextTable table({"shifts", "legacy", "compacted"});
  const auto before = histogram(legacy.translated);
  const auto after = histogram(omitted.sequence);
  for (std::size_t k = 1; k <= n; ++k) {
    const auto b = before.count(k) ? before.at(k) : 0;
    const auto a = after.count(k) ? after.at(k) : 0;
    if (b || a) table.add_row({std::to_string(k), std::to_string(b), std::to_string(a)});
  }
  table.print(std::cout);
  std::cout << "\n(legacy uses only complete " << n
            << "-shift operations; the compacted sequence keeps mostly limited ones)\n";
  return 0;
}
