// Scenario: bring your own netlist. The example writes an ISCAS .bench file
// to a temporary location, reads it back (the normal entry point for real
// ISCAS-89/ITC-99 files), inserts a scan chain, and runs the full
// generate-and-compact pipeline via the one-call API.
//
// With real benchmark files on disk:
//     uniscan::Netlist c = uniscan::read_bench_file("path/to/s298.bench");
//
// Build & run:  ./build/examples/bench_file_flow
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/uniscan.hpp"

namespace {
// A small handwritten traffic-light-style controller in .bench format.
constexpr const char* kBenchText = R"(
# 2-bit counter with enable and direction, one decoded output
INPUT(en)
INPUT(dir)
OUTPUT(match)
b0 = DFF(n0)
b1 = DFF(n1)
t0   = XOR(b0, en)
n0   = BUF(t0)
carry = XNOR(b0, dir)
t1   = XOR(b1, carryen)
carryen = AND(carry, en)
n1   = BUF(t1)
match = AND(b1, t0)
)";
}  // namespace

int main() {
  using namespace uniscan;

  // Write and re-read a .bench file (round-trip through the parser).
  const auto path = std::filesystem::temp_directory_path() / "uniscan_example.bench";
  {
    std::ofstream f(path);
    f << kBenchText;
  }
  const Netlist c = read_bench_file(path.string());
  std::cout << "loaded: " << c.stats_string() << "\n";

  // One-call pipeline: scan insertion, Section-2 generation, restoration,
  // omission, and the complete-scan baseline.
  PipelineConfig cfg;
  const GenerateCompactReport r = run_generate_and_compact(c, cfg);

  std::cout << "coverage: " << format_pct(r.atpg.fault_coverage()) << "% ("
            << r.atpg.detected << "/" << r.atpg.num_faults << " faults, "
            << r.atpg.detected_by_scan_knowledge << " via scan knowledge)\n";
  std::cout << "cycles: generated " << r.raw.total << " -> restoration " << r.restored.total
            << " -> omission " << r.omitted.total << "\n";
  std::cout << "complete-scan baseline: " << r.baseline.application_cycles() << " cycles\n";
  if (r.extra_detected) std::cout << "compaction detected " << r.extra_detected << " extra faults\n";

  // The compacted sequence is a plain vector table — ship it to a tester.
  std::cout << "\nfinal sequence (" << r.omitted.total << " cycles):\n";
  const ScanCircuit sc = insert_scan(c);
  std::cout << format_sequence_table(sc, r.omission.sequence);

  std::filesystem::remove(path);
  return 0;
}
