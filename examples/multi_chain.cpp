// Extension beyond the paper's single-chain experiments: the paper notes the
// procedures "can be easily applied to circuits with multiple scan chains".
// This example inserts 1, 2 and 3 balanced chains into the same circuit and
// compares the compacted unified test length — more chains mean shorter
// flushes (limited scan operations get even cheaper), at the cost of pins.
//
// Build & run:  ./build/examples/multi_chain
#include <iostream>

#include "core/uniscan.hpp"

int main() {
  using namespace uniscan;

  const Netlist c = load_circuit(*find_suite_entry("b01"));
  std::cout << "circuit: " << c.stats_string() << "\n\n";

  TextTable table({"chains", "inputs", "faults", "coverage", "generated", "compacted"});
  for (std::size_t chains = 1; chains <= 3; ++chains) {
    const ScanCircuit sc = insert_scan(c, chains);
    const FaultList faults = FaultList::collapsed(sc.netlist);
    const AtpgResult atpg = generate_tests(sc, faults, {});
    const CompactionResult restored =
        restoration_compact(sc.netlist, atpg.sequence, faults.faults());
    const CompactionResult omitted =
        omission_compact(sc.netlist, restored.sequence, faults.faults());
    table.add_row({std::to_string(chains), std::to_string(sc.netlist.num_inputs()),
                   std::to_string(faults.size()), format_pct(atpg.fault_coverage()) + "%",
                   std::to_string(atpg.sequence.length()),
                   std::to_string(omitted.sequence.length())});
  }
  table.print(std::cout);
  std::cout << "\n(note: fault universes differ slightly across rows because each\n"
               " configuration adds its own scan multiplexers and pins)\n";
  return 0;
}
