// Fault diagnosis with unified sequences.
//
// Scenario: a device fails on the tester. The tester logged every cycle at
// which an output mismatched and what value it saw. Because the unified
// sequence measures outputs on EVERY cycle (scan shifts included), the fail
// log pinpoints the defect much more precisely than an end-of-scan dump.
// The demo injects each of several faults as the "defective device",
// diagnoses from the fail log alone, and reports the candidate-set sizes.
//
// Build & run:  ./build/examples/diagnosis_demo
#include <iostream>

#include "core/uniscan.hpp"

int main() {
  using namespace uniscan;

  const Netlist c = make_s27();
  const ScanCircuit sc = insert_scan(c);
  const FaultList faults = FaultList::collapsed(sc.netlist);

  // The production test: generated + compacted unified sequence.
  const AtpgResult atpg = generate_tests(sc, faults, {});
  const CompactionResult rest =
      restoration_compact(sc.netlist, atpg.sequence, faults.faults());
  const CompactionResult omit = omission_compact(sc.netlist, rest.sequence, faults.faults());
  std::cout << "test sequence: " << omit.sequence.length() << " cycles, detects "
            << FaultSimulator(sc.netlist).detected_indices(omit.sequence, faults.faults()).size()
            << "/" << faults.size() << " faults\n\n";

  TextTable table({"injected fault", "fail entries", "candidates"});
  std::size_t exact = 0, cases = 0;
  for (std::size_t i = 0; i < faults.size(); i += 4) {
    const FailLog observed = simulate_fail_log(sc.netlist, omit.sequence, faults[i]);
    if (observed.empty()) continue;  // this fault escapes the compacted test
    const auto candidates = diagnose(sc.netlist, omit.sequence, faults.faults(), observed);
    table.add_row({fault_to_string(sc.netlist, faults[i]),
                   std::to_string(observed.size()), std::to_string(candidates.size())});
    exact += candidates.size() == 1;
    ++cases;
  }
  table.print(std::cout);
  std::cout << "\nexact diagnoses: " << exact << "/" << cases
            << " (candidate sets of size 1; larger sets are equivalence classes\n"
            << " the test cannot distinguish)\n";
  return 0;
}
