// Advanced analyses beyond the paper's core flow:
//   * redundancy identification — proving which undetected faults have NO
//     conventional scan test at all (the completeness the paper notes its
//     generator lacks),
//   * n-detect generation — every fault observed at n distinct time points,
//   * tester-program export — the per-cycle stimulus/expected-response
//     artifact a test engineer would consume.
//
// Build & run:  ./build/examples/advanced_analysis
#include <iostream>

#include "core/uniscan.hpp"

int main() {
  using namespace uniscan;

  const Netlist c = load_circuit(*find_suite_entry("b01"));
  const ScanCircuit sc = insert_scan(c);
  const FaultList faults = FaultList::collapsed(sc.netlist);

  // --- single-detect generation + redundancy triage ------------------------
  const AtpgResult atpg = generate_tests(sc, faults, {});
  std::cout << "coverage: " << format_pct(atpg.fault_coverage()) << "% (" << atpg.detected
            << "/" << atpg.num_faults << ")\n";
  std::cout << "proved untestable during generation: " << atpg.proved_redundant << "\n";

  // Classify everything the generator left behind.
  std::vector<Fault> leftovers;
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (!atpg.detection[i].detected) leftovers.push_back(faults[i]);
  const RedundancyReport triage = classify_faults(sc, leftovers);
  std::cout << "of " << leftovers.size() << " undetected faults: " << triage.redundant
            << " provably untestable, " << triage.testable << " testable-but-missed, "
            << triage.aborted << " undecided\n";
  const double efficiency =
      100.0 * static_cast<double>(atpg.detected) /
      static_cast<double>(faults.size() - triage.redundant);
  std::cout << "fault efficiency over the testable universe: " << format_pct(efficiency)
            << "%\n\n";

  // --- n-detect generation -------------------------------------------------
  NDetectOptions nopt;
  nopt.n = 3;
  const NDetectResult nd = generate_n_detect_tests(sc, faults, nopt);
  std::cout << "n-detect (n=3): " << nd.satisfied << "/" << nd.num_faults
            << " faults observed 3+ times, " << nd.detected << " at least once, "
            << nd.sequence.length() << " cycles (single-detect compacted flows are ~"
            << atpg.sequence.length() << " cycles before compaction)\n\n";

  // --- tester program -------------------------------------------------------
  const CompactionResult rest = restoration_compact(sc.netlist, atpg.sequence, faults.faults());
  const CompactionResult omit = omission_compact(sc.netlist, rest.sequence, faults.faults());
  const std::string program = format_tester_program(sc, omit.sequence);
  std::cout << "tester program (first lines):\n";
  std::size_t shown = 0, pos = 0;
  while (shown < 12 && pos < program.size()) {
    const std::size_t nl = program.find('\n', pos);
    std::cout << program.substr(pos, nl - pos + 1);
    pos = nl + 1;
    ++shown;
  }
  std::cout << "... (" << omit.sequence.length() << " cycles total)\n";
  return 0;
}
