// Quickstart: the whole paper pipeline in a dozen lines.
//
//   1. take a sequential circuit (the embedded ISCAS-89 s27),
//   2. insert a scan chain (scan_sel/scan_inp/scan_out become ordinary
//      circuit pins),
//   3. generate ONE unified test sequence with the Section-2 generator,
//   4. compact it with restoration [23] + omission [22],
//   5. compare the resulting test application time against a conventional
//      complete-scan baseline.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/uniscan.hpp"

int main() {
  using namespace uniscan;

  // 1-2. Circuit and scan insertion.
  const Netlist c = make_s27();
  const ScanCircuit sc = insert_scan(c);
  std::cout << "circuit: " << sc.netlist.stats_string() << "\n";

  // 3. Unified test generation (scan lines are just inputs/outputs).
  const FaultList faults = FaultList::collapsed(sc.netlist);
  const AtpgResult atpg = generate_tests(sc, faults, {});
  std::cout << "generated " << atpg.sequence.length() << " vectors, coverage "
            << format_pct(atpg.fault_coverage()) << "% (" << atpg.detected << "/"
            << atpg.num_faults << " faults)\n";

  // 4. Static compaction for non-scan circuits, applied to the scan circuit.
  const CompactionResult restored =
      restoration_compact(sc.netlist, atpg.sequence, faults.faults());
  const CompactionResult omitted =
      omission_compact(sc.netlist, restored.sequence, faults.faults());
  std::cout << "compacted to " << restored.sequence.length() << " (restoration) then "
            << omitted.sequence.length() << " (omission) vectors\n";

  // 5. A conventional complete-scan test set needs far more clock cycles.
  const BaselineResult baseline = generate_baseline_tests(sc, faults, {});
  std::cout << "complete-scan baseline: " << baseline.test_set.tests.size() << " tests = "
            << baseline.application_cycles() << " cycles\n";
  std::cout << "unified approach:       " << omitted.sequence.length() << " cycles ("
            << format_pct(100.0 * static_cast<double>(omitted.sequence.length()) /
                          static_cast<double>(baseline.application_cycles()))
            << "% of baseline)\n\n";

  std::cout << "final sequence:\n" << format_sequence_table(sc, omitted.sequence);
  return 0;
}
