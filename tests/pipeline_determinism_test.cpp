// Determinism of the suite-level fan-out (DESIGN.md §5d): a mini-suite run
// through run_suite_generate_and_compact / run_suite_translate_and_compact
// must produce identical reports — down to the rendered Table 5/6 rows and
// the formatted sequence tables — when run twice at the same thread count
// and when run at different thread counts. Per-circuit tasks land in
// task-indexed slots, so the merge order is the suite order by construction;
// these tests pin the contents too.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "util/thread_pool.hpp"
#include "workloads/suite.hpp"

namespace uniscan {
namespace {

struct PoolGuard {
  explicit PoolGuard(std::size_t n) { ThreadPool::set_global_threads(n); }
  ~PoolGuard() { ThreadPool::set_global_threads(1); }
};

std::vector<SuiteEntry> mini_suite() {
  return {*find_suite_entry("s27"), *find_suite_entry("b01"), *find_suite_entry("b02")};
}

/// Render the Table-5 + Table-6 cells of one report the way the bench
/// binaries do; comparing the rendered strings catches any divergence a
/// field-by-field comparison of doubles might round away.
std::string render_rows(const std::vector<GenerateCompactReport>& reports) {
  TextTable t5({"circ", "inp", "stvr", "faults", "total", "fcov", "funct", "redund", "eff"});
  TextTable t6({"circ", "test.total", "test.scan", "restor.total", "restor.scan", "omit.total",
                "omit.scan", "ext", "base.cyc"});
  for (const GenerateCompactReport& r : reports) {
    const AtpgResult& a = r.atpg;
    t5.add_row({r.circuit, std::to_string(r.num_inputs), std::to_string(r.num_dffs),
                std::to_string(a.num_faults), std::to_string(a.detected),
                format_pct(a.fault_coverage()), std::to_string(a.detected_by_scan_knowledge),
                std::to_string(a.proved_redundant), ""});
    t6.add_row({r.circuit, std::to_string(r.raw.total), std::to_string(r.raw.scan),
                std::to_string(r.restored.total), std::to_string(r.restored.scan),
                std::to_string(r.omitted.total), std::to_string(r.omitted.scan),
                std::to_string(r.extra_detected), std::to_string(r.baseline.application_cycles())});
  }
  return t5.to_string() + "\n" + t6.to_string();
}

void expect_same(const std::vector<GenerateCompactReport>& got,
                 const std::vector<GenerateCompactReport>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE("circuit " + want[i].circuit);
    EXPECT_EQ(got[i].circuit, want[i].circuit);
    EXPECT_EQ(got[i].atpg.sequence, want[i].atpg.sequence);
    EXPECT_EQ(got[i].restoration.sequence, want[i].restoration.sequence);
    EXPECT_EQ(got[i].omission.sequence, want[i].omission.sequence);
    EXPECT_EQ(got[i].atpg.gate_evals, want[i].atpg.gate_evals);
    EXPECT_EQ(got[i].extra_detected, want[i].extra_detected);
    EXPECT_EQ(got[i].baseline.application_cycles(), want[i].baseline.application_cycles());
  }
  EXPECT_EQ(render_rows(got), render_rows(want));
}

TEST(PipelineDeterminism, GenerateSuiteIdenticalAcrossThreadCounts) {
  const auto suite = mini_suite();
  PipelineConfig cfg;
  cfg.atpg.final_effort_backtracks = 500;  // keep the mini-suite quick

  PoolGuard one(1);
  const auto want = run_suite_generate_and_compact(suite, cfg);
  ASSERT_EQ(want.size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i)
    EXPECT_EQ(want[i].circuit, suite[i].name);  // ordered merge

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    PoolGuard guard(threads);
    const auto got = run_suite_generate_and_compact(suite, cfg);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_same(got, want);
  }
}

TEST(PipelineDeterminism, GenerateSuiteRepeatableAtFixedThreadCount) {
  const auto suite = mini_suite();
  PipelineConfig cfg;
  cfg.atpg.final_effort_backtracks = 500;
  PoolGuard guard(4);
  const auto first = run_suite_generate_and_compact(suite, cfg);
  const auto second = run_suite_generate_and_compact(suite, cfg);
  expect_same(second, first);
}

TEST(PipelineDeterminism, TranslateSuiteIdenticalAcrossThreadCounts) {
  const auto suite = mini_suite();
  const PipelineConfig cfg;

  PoolGuard one(1);
  const auto want = run_suite_translate_and_compact(suite, cfg);
  ASSERT_EQ(want.size(), suite.size());

  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    PoolGuard guard(threads);
    const auto got = run_suite_translate_and_compact(suite, cfg);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      SCOPED_TRACE("circuit " + want[i].circuit);
      EXPECT_EQ(got[i].circuit, want[i].circuit);
      EXPECT_EQ(got[i].baseline.translated, want[i].baseline.translated);
      EXPECT_EQ(got[i].restoration.sequence, want[i].restoration.sequence);
      EXPECT_EQ(got[i].omission.sequence, want[i].omission.sequence);
      EXPECT_EQ(got[i].baseline.application_cycles(), want[i].baseline.application_cycles());
    }
  }
}

TEST(PipelineDeterminism, FormattedReportsIdenticalAcrossThreadCounts) {
  // The human-readable artifacts must match too: render every compacted
  // sequence as the paper-style table and compare the full strings.
  const auto suite = mini_suite();
  PipelineConfig cfg;
  cfg.atpg.final_effort_backtracks = 500;
  cfg.run_baseline = false;

  const auto render = [&](const std::vector<GenerateCompactReport>& reports) {
    std::string out;
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const ScanCircuit sc = insert_scan(load_circuit(suite[i]));
      out += format_sequence_table(sc, reports[i].omission.sequence);
      out += "\n";
    }
    return out;
  };

  PoolGuard one(1);
  const std::string want = render(run_suite_generate_and_compact(suite, cfg));
  {
    PoolGuard guard(4);
    const std::string got = render(run_suite_generate_and_compact(suite, cfg));
    EXPECT_EQ(got, want);
  }
}

}  // namespace
}  // namespace uniscan
