#include "fault/fault_list.hpp"

#include <gtest/gtest.h>

#include <set>

#include "netlist/builder.hpp"
#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

TEST(FaultList, UncollapsedCountsEveryLineTwice) {
  NetlistBuilder b("t");
  const GateId a = b.input("a");
  const GateId c = b.input("b");
  const GateId g = b.and_("g", {a, c});
  b.output(g);
  const Netlist nl = b.build();
  const FaultList fl = FaultList::uncollapsed(nl);
  // Lines: 3 stems + 2 input pins = 5; faults = 10.
  EXPECT_EQ(fl.size(), 10u);
}

TEST(FaultList, SingleFanoutBranchesFoldIntoStems) {
  NetlistBuilder b("t");
  const GateId a = b.input("a");
  const GateId g = b.not_("g", a);
  b.output(g);
  const Netlist nl = b.build();
  const FaultList fl = FaultList::collapsed(nl);
  // a and g stems only; NOT merges {a sa0 == g sa1, a sa1 == g sa0}, so only
  // 2 representatives survive.
  EXPECT_EQ(fl.size(), 2u);
}

TEST(FaultList, AndGateCollapsing) {
  NetlistBuilder b("t");
  const GateId a = b.input("a");
  const GateId c = b.input("b");
  const GateId g = b.and_("g", {a, c});
  b.output(g);
  const Netlist nl = b.build();
  const FaultList fl = FaultList::collapsed(nl);
  // Uncollapsed (branches folded): stems a, b, g -> 6 faults.
  // AND rule: a-sa0 == b-sa0 == g-sa0 merge into one class.
  // Survivors: {a0==b0==g0}, a1, b1, g1 -> 4.
  EXPECT_EQ(fl.size(), 4u);
}

TEST(FaultList, MultiFanoutBranchesKept) {
  NetlistBuilder b("t");
  const GateId a = b.input("a");
  const GateId g1 = b.not_("g1", a);
  const GateId g2 = b.buf("g2", a);
  b.output(g1);
  b.output(g2);
  const Netlist nl = b.build();
  const FaultList fl = FaultList::collapsed(nl);
  // Lines: stems a,g1,g2 + branches (g1,in0),(g2,in0) = 5 lines, 10 faults.
  // NOT merges branch(g1) with g1 stem (2 classes), BUF merges branch(g2)
  // with g2 stem (2 classes). Survivors: a0,a1,g1 pair, g2 pair = 6.
  EXPECT_EQ(fl.size(), 6u);
}

TEST(FaultList, RepresentativesAreUnique) {
  const Netlist nl = make_s27();
  const FaultList fl = FaultList::collapsed(nl);
  std::set<Fault> seen;
  for (const Fault& f : fl.faults()) EXPECT_TRUE(seen.insert(f).second);
}

TEST(FaultList, CollapsedSmallerThanUncollapsed) {
  const Netlist nl = make_s27();
  const FaultList collapsed = FaultList::collapsed(nl);
  const FaultList uncollapsed = FaultList::uncollapsed(nl);
  EXPECT_LT(collapsed.size(), uncollapsed.size());
  EXPECT_GT(collapsed.size(), uncollapsed.size() / 4);  // sane collapse ratio
  EXPECT_EQ(collapsed.uncollapsed_count(), uncollapsed.size());
}

TEST(FaultList, BranchFaultsReferenceValidPins) {
  const Netlist nl = make_s27();
  const FaultList fl = FaultList::collapsed(nl);
  for (const Fault& f : fl.faults()) {
    ASSERT_LT(f.gate, nl.num_gates());
    if (f.pin != kStemPin) {
      ASSERT_LT(static_cast<std::size_t>(f.pin), nl.gate(f.gate).fanins.size());
      // Branch faults only on multi-fanout nets.
      EXPECT_GT(nl.fanout_count(nl.gate(f.gate).fanins[f.pin]), 1u);
    }
  }
}

TEST(FaultList, FaultToStringIsReadable) {
  const Netlist nl = make_s27();
  const FaultList fl = FaultList::collapsed(nl);
  const std::string s = fault_to_string(nl, fl[0]);
  EXPECT_FALSE(s.empty());
  EXPECT_NE(s.find("s-a-"), std::string::npos);
}

}  // namespace
}  // namespace uniscan
