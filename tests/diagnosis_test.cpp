// Direct unit tests for src/diag/diagnosis.cpp on hand-built circuits with
// manually derived fail logs (the metrics_diag_test file covers the
// statistical end-to-end behaviour on s27; this one pins the exact
// per-entry semantics: times, output indices, observed values, X handling,
// stem vs branch forcing, and exact-match candidate selection).
#include "diag/diagnosis.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "fault/fault_list.hpp"
#include "netlist/bench_io.hpp"
#include "sim/sequence.hpp"

namespace uniscan {
namespace {

// o = AND(a, b): combinational, single output, no state.
Netlist make_and2() {
  return read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = AND(a, b)\n", "and2");
}

TEST(Diagnosis, StemFaultFailLogHasManuallyDerivedEntries) {
  const Netlist nl = make_and2();
  const TestSequence seq = TestSequence::from_rows(2, {"11", "01", "10"});
  // a stuck-at-0: o becomes 0 everywhere; only t=0 (good o = 1) mismatches,
  // and the tester sees the faulty value 0.
  const Fault a_s0{nl.inputs()[0], kStemPin, false};
  const FailLog log = simulate_fail_log(nl, seq, a_s0);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].time, 0u);
  EXPECT_EQ(log[0].po, 0u);
  EXPECT_EQ(log[0].value, V3::Zero);
}

TEST(Diagnosis, StuckOneFaultReportsObservedOne) {
  const Netlist nl = make_and2();
  const TestSequence seq = TestSequence::from_rows(2, {"01", "00"});
  // a stuck-at-1 turns o = AND(1, b) = b: mismatch only at t=0 (good 0,
  // seen 1).
  const Fault a_s1{nl.inputs()[0], kStemPin, true};
  const FailLog log = simulate_fail_log(nl, seq, a_s1);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], (FailEntry{0, 0, V3::One}));
}

TEST(Diagnosis, UnknownGoodValuePositionsAreNotRecorded) {
  const Netlist nl = make_and2();
  // Good machine: AND(x, 1) = x at t=0 — no verdict there, even though the
  // faulty machine has a definite 0.
  const TestSequence seq = TestSequence::from_rows(2, {"x1", "11"});
  const Fault a_s0{nl.inputs()[0], kStemPin, false};
  const FailLog log = simulate_fail_log(nl, seq, a_s0);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].time, 1u);
}

TEST(Diagnosis, BranchFaultDiffersFromStemFault) {
  // b fans out to both gates: the branch fault b->o1 stuck-at-0 only kills
  // o1, the stem fault kills both. The two faults must produce different
  // logs (this is WHY the model carries branch faults).
  const Netlist nl = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(o1)\nOUTPUT(o2)\n"
      "o1 = AND(a, b)\no2 = AND(b, b)\n",
      "branchy");
  const TestSequence seq = TestSequence::from_rows(2, {"11"});
  const GateId o1 = nl.outputs()[0];
  // o1's fanins are (a, b): pin 1 is the b branch.
  const FailLog branch_log = simulate_fail_log(nl, seq, Fault{o1, 1, false});
  const FailLog stem_log = simulate_fail_log(nl, seq, Fault{nl.inputs()[1], kStemPin, false});
  ASSERT_EQ(branch_log.size(), 1u);
  EXPECT_EQ(branch_log[0].po, 0u);
  ASSERT_EQ(stem_log.size(), 2u);
  EXPECT_NE(branch_log, stem_log);
}

TEST(Diagnosis, EntriesSortedByTimeThenOutput) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(o1)\nOUTPUT(o2)\n"
      "o1 = BUF(a)\no2 = BUF(a)\n",
      "fanout2");
  const TestSequence seq = TestSequence::from_rows(1, {"1", "1"});
  const FailLog log = simulate_fail_log(nl, seq, Fault{nl.inputs()[0], kStemPin, false});
  ASSERT_EQ(log.size(), 4u);
  FailLog sorted = log;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(log, sorted);
  EXPECT_EQ(log[0], (FailEntry{0, 0, V3::Zero}));
  EXPECT_EQ(log[1], (FailEntry{0, 1, V3::Zero}));
  EXPECT_EQ(log[2], (FailEntry{1, 0, V3::Zero}));
  EXPECT_EQ(log[3], (FailEntry{1, 1, V3::Zero}));
}

TEST(Diagnosis, SequentialFaultEffectSurfacesAfterClockDelay) {
  // f = DFF(a), o = BUF(f): a's value reaches o one cycle later, so a
  // stuck-at-0 on `a` first mismatches at t=1 (the capture of t=0's 1).
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(o)\nf = DFF(a)\no = BUF(f)\n", "delay1");
  const TestSequence seq = TestSequence::from_rows(1, {"1", "1", "0"});
  const FailLog log = simulate_fail_log(nl, seq, Fault{nl.inputs()[0], kStemPin, false});
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], (FailEntry{1, 0, V3::Zero}));
  EXPECT_EQ(log[1], (FailEntry{2, 0, V3::Zero}));
}

TEST(Diagnosis, DiagnoseSelectsExactLogMatchesOnly) {
  const Netlist nl = make_and2();
  const TestSequence seq = TestSequence::from_rows(2, {"11", "01", "10"});
  const FaultList fl = FaultList::collapsed(nl);
  const Fault a_s0{nl.inputs()[0], kStemPin, false};
  const FailLog observed = simulate_fail_log(nl, seq, a_s0);
  ASSERT_FALSE(observed.empty());
  const auto candidates = diagnose(nl, seq, fl.faults(), observed);
  ASSERT_FALSE(candidates.empty());
  // Every candidate's own log must reproduce the observation exactly, and
  // every non-candidate's must differ (the definition of diagnose()).
  for (std::size_t i = 0; i < fl.size(); ++i) {
    const bool is_candidate =
        std::find(candidates.begin(), candidates.end(), i) != candidates.end();
    EXPECT_EQ(simulate_fail_log(nl, seq, fl[i]) == observed, is_candidate) << i;
  }
}

TEST(Diagnosis, UndetectedFaultHasEmptyLog) {
  const Netlist nl = make_and2();
  // b is 0 throughout: a stuck-at-0 never propagates through the AND.
  const TestSequence seq = TestSequence::from_rows(2, {"10", "00"});
  const FailLog log =
      simulate_fail_log(nl, seq, Fault{nl.inputs()[0], kStemPin, false});
  EXPECT_TRUE(log.empty());
}

}  // namespace
}  // namespace uniscan
