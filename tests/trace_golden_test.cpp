// Golden-trace tier for the Chrome trace_event output (DESIGN.md §5g): an
// end-to-end s27 run with tracing on must produce a well-formed trace
// (balanced B/E per lane, monotonic timestamps) whose SPAN STRUCTURE — the
// set of root-to-span name paths — matches the checked-in golden file.
// Durations and event counts are deliberately not golden: they vary run to
// run; the nesting does not.
//
// Regenerate tests/data/trace_golden_s27.txt after an intentional span
// change with UNISCAN_REGEN_GOLDEN=1 ./uniscan_tests --gtest_filter='TraceGolden.*'.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/uniscan.hpp"

#ifndef UNISCAN_TEST_DATA_DIR
#define UNISCAN_TEST_DATA_DIR ""
#endif

namespace uniscan {
namespace {

struct Event {
  char phase = 0;  // 'B' or 'E'
  int tid = -1;
  long long ts = -1;
  std::string name;  // empty for 'E'
};

/// Pull the value of `"key": <num>` out of one event line.
long long int_field(const std::string& line, const std::string& key) {
  const auto pos = line.find("\"" + key + "\": ");
  if (pos == std::string::npos) return -1;
  return std::strtoll(line.c_str() + pos + key.size() + 4, nullptr, 10);
}

/// Pull the value of `"key": "<str>"` out of one event line.
std::string str_field(const std::string& line, const std::string& key) {
  const auto pos = line.find("\"" + key + "\": \"");
  if (pos == std::string::npos) return {};
  const auto start = pos + key.size() + 5;
  const auto end = line.find('"', start);
  return line.substr(start, end - start);
}

/// Parse the writer's one-event-per-line format. The header/footer lines
/// are validated here too (this is what "well-formed" means for a file we
/// produce ourselves; a JSON library would add a dependency for no signal).
std::vector<Event> parse_trace(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "{\"traceEvents\": [") << "unexpected header";
  std::vector<Event> events;
  while (std::getline(in, line)) {
    if (line.rfind("],", 0) == 0) {  // footer: otherData with the drop count
      EXPECT_NE(line.find("\"dropped_events\": 0"), std::string::npos)
          << "events were dropped; raise the buffer cap or trim spans";
      return events;
    }
    Event e;
    const std::string ph = str_field(line, "ph");
    EXPECT_EQ(ph.size(), 1u) << line;
    if (ph.size() != 1) continue;
    e.phase = ph[0];
    e.tid = static_cast<int>(int_field(line, "tid"));
    e.ts = int_field(line, "ts");
    e.name = str_field(line, "name");
    EXPECT_TRUE(e.phase == 'B' || e.phase == 'E') << line;
    EXPECT_GE(e.tid, 0) << line;
    EXPECT_GE(e.ts, 0) << line;
    if (e.phase == 'B') EXPECT_FALSE(e.name.empty()) << line;
    events.push_back(std::move(e));
  }
  ADD_FAILURE() << "trace file has no footer line";
  return events;
}

/// Replay the per-tid span stacks: every E must close a B on the same lane,
/// every lane must end empty, and timestamps per lane must be monotonic.
/// Returns the sorted unique root-to-span paths ("suite/circuit/atpg/podem").
std::vector<std::string> span_paths(const std::vector<Event>& events) {
  std::map<int, std::vector<std::string>> stacks;
  std::map<int, long long> last_ts;
  std::set<std::string> paths;
  for (const Event& e : events) {
    auto it = last_ts.find(e.tid);
    if (it != last_ts.end()) EXPECT_LE(it->second, e.ts) << "ts not monotonic on tid " << e.tid;
    last_ts[e.tid] = e.ts;
    auto& stack = stacks[e.tid];
    if (e.phase == 'B') {
      stack.push_back(e.name);
      std::string path;
      for (const std::string& s : stack) path += (path.empty() ? "" : "/") + s;
      paths.insert(std::move(path));
    } else {
      EXPECT_FALSE(stack.empty()) << "E without matching B on tid " << e.tid;
      if (!stack.empty()) stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks)
    EXPECT_TRUE(stack.empty()) << stack.size() << " unclosed span(s) on tid " << tid;
  return {paths.begin(), paths.end()};
}

/// One full s27 flow (generation, both compactions, verification, baseline)
/// with tracing into `path`, at one worker so every span lands on tid 0.
void traced_s27_run(const std::string& path) {
  ThreadPool::set_global_threads(1);
  obs::Tracer::start(path);
  const auto outcomes =
      run_suite_generate_and_compact_isolated({*find_suite_entry("s27")}, PipelineConfig{});
  obs::Tracer::stop_and_write();
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_FALSE(outcomes[0].failed());
}

TEST(TraceGolden, S27SpanStructureMatchesGolden) {
  const std::string trace_path = ::testing::TempDir() + "trace_golden_s27.json";
  traced_s27_run(trace_path);
  const std::vector<Event> events = parse_trace(trace_path);
  ASSERT_FALSE(events.empty());
  const std::vector<std::string> paths = span_paths(events);
  std::remove(trace_path.c_str());

  const std::string golden_path = std::string(UNISCAN_TEST_DATA_DIR) + "/trace_golden_s27.txt";
  if (std::getenv("UNISCAN_REGEN_GOLDEN")) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.is_open()) << golden_path;
    for (const std::string& p : paths) out << p << "\n";
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  std::ifstream in(golden_path);
  ASSERT_TRUE(in.is_open()) << "missing golden file " << golden_path
                            << " (regenerate with UNISCAN_REGEN_GOLDEN=1)";
  std::vector<std::string> want;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) want.push_back(line);
  EXPECT_EQ(paths, want) << "span structure changed; if intentional, regenerate the golden "
                            "file with UNISCAN_REGEN_GOLDEN=1";
}

TEST(TraceGolden, TraceIsBalancedAtFourWorkers) {
  // Structure golden only applies at one worker (one lane, one determinate
  // interleaving); at 4 workers we still require well-formedness: balanced
  // per-lane stacks, monotonic per-lane timestamps, nothing dropped.
  const std::string trace_path = ::testing::TempDir() + "trace_mt_s27.json";
  ThreadPool::set_global_threads(4);
  obs::Tracer::start(trace_path);
  const std::vector<SuiteEntry> suite = {*find_suite_entry("s27"), *find_suite_entry("b01"),
                                         *find_suite_entry("b02")};
  PipelineConfig cfg;
  cfg.run_baseline = false;
  const auto outcomes = run_suite_generate_and_compact_isolated(suite, cfg);
  obs::Tracer::stop_and_write();
  ThreadPool::set_global_threads(1);
  for (const auto& o : outcomes) ASSERT_FALSE(o.failed());

  const std::vector<Event> events = parse_trace(trace_path);
  ASSERT_FALSE(events.empty());
  span_paths(events);  // asserts balance + monotonicity per lane
  std::remove(trace_path.c_str());
}

TEST(TraceGolden, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(obs::Tracer::enabled());
  const obs::TraceSpan span("should_not_record");  // must be a cheap no-op
}

}  // namespace
}  // namespace uniscan
