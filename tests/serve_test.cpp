// The serve subsystem (DESIGN.md §5k): ArtifactCache crash-safe recovery,
// JobScheduler admission/fairness/retries, and the serve loop protocol.
//
// The robustness contract under test: a corrupt or injected-faulty cache
// entry is quarantined and rebuilt — never trusted, never fatal — and every
// served result is bit-identical to a direct single-shot run (the cache and
// the scheduler change HOW work is dispatched, never what it computes).
// Failures are injected deterministically via UNISCAN_FAULT_INJECT
// (serve-layer stages: cache_load, admit, dispatch, job_run).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <functional>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/exit_codes.hpp"
#include "corpus/corpus.hpp"
#include "corpus/golden.hpp"
#include "netlist/bench_io.hpp"
#include "obs/counters.hpp"
#include "serve/artifact_cache.hpp"
#include "serve/scheduler.hpp"
#include "serve/serve_loop.hpp"
#include "util/thread_pool.hpp"

namespace uniscan::serve {
namespace {

namespace fs = std::filesystem;

/// Scoped UNISCAN_FAULT_INJECT setting; always unset on exit so one test's
/// injection cannot leak into another.
class ScopedInjection {
 public:
  explicit ScopedInjection(const std::string& spec) {
    ::setenv("UNISCAN_FAULT_INJECT", spec.c_str(), /*overwrite=*/1);
  }
  ~ScopedInjection() { ::unsetenv("UNISCAN_FAULT_INJECT"); }
};

constexpr const char* kDemoBench =
    "INPUT(a)\nINPUT(b)\nOUTPUT(o)\n"
    "f0 = DFF(n0)\nf1 = DFF(f0)\n"
    "n0 = XOR(a, f1)\no = AND(b, f0)\n";

constexpr const char* kDemoBench2 =
    "INPUT(a)\nINPUT(b)\nOUTPUT(o)\n"
    "f0 = DFF(n0)\n"
    "n0 = NAND(a, f0)\no = OR(b, f0)\n";

/// Per-test scratch directory (pid-qualified: ctest -j shares TempDir).
struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path(::testing::TempDir() + "serve_" + std::to_string(::getpid()) + "_" + tag) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

std::string demo_digest(const CircuitArtifacts& a) {
  return compute_circuit_digest(a, digest_profile(CorpusTier::Fast)).sha_hex;
}

/// The single .uart entry a ScratchDir-backed cache wrote.
std::string only_uart_file(const std::string& dir) {
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().extension() == ".uart") return e.path().string();
  return "";
}

TEST(ArtifactCache, RamHitSkipsRebuildAndIsIdentical) {
  ArtifactCache cache(ArtifactCache::Options{});
  const auto cold = cache.get("demo", kDemoBench, 1);
  EXPECT_EQ(cold.source, ArtifactCache::Source::Built);

  // Warm hit: no fault collapsing happens (the stage-skip proof).
  const obs::CounterScope scope;
  const auto warm = cache.get("demo", kDemoBench, 1);
  EXPECT_EQ(warm.source, ArtifactCache::Source::Ram);
  EXPECT_EQ(scope.deltas()[static_cast<std::size_t>(obs::Counter::FaultsCollapsed)], 0u);
  EXPECT_EQ(warm.artifacts.scan.get(), cold.artifacts.scan.get());
  EXPECT_EQ(demo_digest(warm.artifacts), demo_digest(cold.artifacts));

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits_ram, 1u);
}

TEST(ArtifactCache, KeySeparatesContentAndChains) {
  const std::string k1 = ArtifactCache::key_for(kDemoBench, 1);
  EXPECT_NE(k1, ArtifactCache::key_for(kDemoBench2, 1));
  EXPECT_NE(k1, ArtifactCache::key_for(kDemoBench, 2));
  EXPECT_EQ(k1, ArtifactCache::key_for(kDemoBench, 1));
}

TEST(ArtifactCache, LruEvictsOverByteBudget) {
  ArtifactCache::Options opt;
  opt.max_ram_bytes = 1;  // every insert overflows; at least one entry stays
  ArtifactCache cache(opt);
  cache.get("demo", kDemoBench, 1);
  cache.get("demo2", kDemoBench2, 1);
  const CacheStats s = cache.stats();
  EXPECT_GE(s.evictions, 1u);
  EXPECT_EQ(s.ram_entries, 1u);
  // The evicted circuit rebuilds (miss), not a stale hit.
  EXPECT_EQ(cache.get("demo", kDemoBench, 1).source, ArtifactCache::Source::Built);
}

TEST(ArtifactCache, DiskRoundTripSkipsCollapse) {
  ScratchDir dir("disk");
  ArtifactCache::Options opt;
  opt.disk_dir = dir.path;
  ArtifactCache cache(opt);
  const std::string cold_sha = demo_digest(cache.get("demo", kDemoBench, 1).artifacts);
  ASSERT_FALSE(only_uart_file(dir.path).empty());

  cache.clear_ram();
  const obs::CounterScope scope;
  const auto disk = cache.get("demo", kDemoBench, 1);
  EXPECT_EQ(disk.source, ArtifactCache::Source::Disk);
  // The persisted collapsed fault list is reused, not recomputed.
  EXPECT_EQ(scope.deltas()[static_cast<std::size_t>(obs::Counter::FaultsCollapsed)], 0u);
  EXPECT_EQ(demo_digest(disk.artifacts), cold_sha);

  const FaultList fresh = FaultList::collapsed(disk.artifacts.scan->netlist);
  ASSERT_EQ(disk.artifacts.faults->size(), fresh.size());
  EXPECT_EQ(disk.artifacts.faults->uncollapsed_count(), fresh.uncollapsed_count());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ((*disk.artifacts.faults)[i].gate, fresh[i].gate);
    EXPECT_EQ((*disk.artifacts.faults)[i].pin, fresh[i].pin);
    EXPECT_EQ((*disk.artifacts.faults)[i].stuck_one, fresh[i].stuck_one);
  }
}

/// Corrupt one persisted entry with `mutate`, then assert the crash-safe
/// recovery contract: quarantined (counter + renamed file), rebuilt from
/// source, and the rebuilt artifacts digest bit-identically.
void check_recovery(const std::string& tag,
                    const std::function<void(const std::string&)>& mutate) {
  ScratchDir dir(tag);
  ArtifactCache::Options opt;
  opt.disk_dir = dir.path;
  ArtifactCache cache(opt);
  const std::string want_sha = demo_digest(cache.get("demo", kDemoBench, 1).artifacts);
  const std::string entry = only_uart_file(dir.path);
  ASSERT_FALSE(entry.empty());
  mutate(entry);
  cache.clear_ram();

  const std::uint64_t quarantined_before = obs::total(obs::Counter::CacheQuarantined);
  const auto got = cache.get("demo", kDemoBench, 1);
  EXPECT_EQ(got.source, ArtifactCache::Source::Built) << tag;
  EXPECT_EQ(demo_digest(got.artifacts), want_sha) << tag;
  EXPECT_EQ(cache.stats().quarantined, 1u) << tag;
  EXPECT_EQ(obs::total(obs::Counter::CacheQuarantined), quarantined_before + 1) << tag;
  EXPECT_TRUE(fs::exists(entry + ".quarantined")) << tag;
  // The rebuild re-persisted a FRESH entry at the same key; a later cold
  // load must trust it again (no second quarantine) and stay bit-identical.
  cache.clear_ram();
  const auto reloaded = cache.get("demo", kDemoBench, 1);
  EXPECT_EQ(reloaded.source, ArtifactCache::Source::Disk) << tag;
  EXPECT_EQ(demo_digest(reloaded.artifacts), want_sha) << tag;
  EXPECT_EQ(cache.stats().quarantined, 1u) << tag;
}

TEST(ArtifactCache, TruncatedEntryQuarantinedAndRebuilt) {
  check_recovery("trunc", [](const std::string& path) {
    const auto size = fs::file_size(path);
    fs::resize_file(path, size / 2);
  });
}

TEST(ArtifactCache, BitFlippedEntryQuarantinedAndRebuilt) {
  check_recovery("flip", [](const std::string& path) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    f.seekp(size - 16);  // inside the payload: only the hash can catch it
    char c;
    f.seekg(size - 16);
    f.get(c);
    f.seekp(size - 16);
    f.put(static_cast<char>(c ^ 0x01));
  });
}

TEST(ArtifactCache, VersionBumpedEntryQuarantinedAndRebuilt) {
  check_recovery("ver", [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    std::string file = ss.str();
    in.close();
    file.replace(0, file.find('\n'), "uniscan-artifact-cache v999");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << file;
  });
}

TEST(ArtifactCache, InjectedLoadFaultTakesQuarantinePath) {
  // Count 1: the first load faults (and quarantines); the recovery helper's
  // later reload must then succeed from the re-persisted entry.
  const ScopedInjection inject("demo:cache_load:1");
  check_recovery("inj", [](const std::string&) {});  // file intact; the fault is injected
}

TEST(Scheduler, ConservationLawAcrossTenants) {
  ThreadPool::set_global_threads(4);
  JobScheduler::Options opt;
  JobScheduler sched(opt);
  std::atomic<int> done{0};
  for (int t = 0; t < 3; ++t) {
    for (int j = 0; j < 8; ++j) {
      JobSpec spec;
      spec.id = "t" + std::to_string(t) + "-j" + std::to_string(j);
      spec.tenant = "tenant" + std::to_string(t);
      spec.circuit = spec.id;
      ASSERT_TRUE(sched.submit(
          std::move(spec), [](const CancelToken&) {},
          [&](const JobResult& r) {
            EXPECT_EQ(r.status, JobStatus::Done);
            ++done;
          }));
    }
  }
  sched.shutdown();
  EXPECT_EQ(done.load(), 24);
  const JobScheduler::Stats s = sched.stats();
  EXPECT_EQ(s.submitted, 24u);
  EXPECT_EQ(s.admitted, 24u);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(s.submitted, s.admitted + s.shed);
  EXPECT_EQ(s.admitted, s.done + s.failed + s.cancelled);
  ThreadPool::set_global_threads(1);
}

TEST(Scheduler, TransientFailureRetriesThenSucceeds) {
  // The injection fires on the first 2 job_run calls only: attempts 1 and 2
  // fail transiently, attempt 3 succeeds within the retry budget of 2.
  const ScopedInjection inject("flaky:job_run:2");
  JobScheduler::Options opt;
  opt.max_retries = 2;
  opt.backoff_base_ms = 1;
  JobScheduler sched(opt);
  JobResult result;
  JobSpec spec;
  spec.id = "flaky-job";
  spec.circuit = "flaky";
  ASSERT_TRUE(sched.submit(
      std::move(spec), [](const CancelToken&) {}, [&](const JobResult& r) { result = r; }));
  sched.shutdown();
  EXPECT_EQ(result.status, JobStatus::Done);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(sched.stats().retries, 2u);
  EXPECT_EQ(sched.stats().done, 1u);
}

TEST(Scheduler, RetryBudgetExhaustionIsPermanentFailure) {
  const ScopedInjection inject("doomed:job_run");  // fires every attempt
  JobScheduler::Options opt;
  opt.max_retries = 2;
  opt.backoff_base_ms = 1;
  JobScheduler sched(opt);
  JobResult result;
  JobSpec spec;
  spec.id = "doomed-job";
  spec.circuit = "doomed";
  ASSERT_TRUE(sched.submit(
      std::move(spec), [](const CancelToken&) {}, [&](const JobResult& r) { result = r; }));
  sched.shutdown();
  EXPECT_EQ(result.status, JobStatus::Failed);
  EXPECT_EQ(result.attempts, 3);  // 1 initial + 2 retries, then terminal
  EXPECT_EQ(result.error_stage, "job_run");
  EXPECT_NE(result.error.find("injected fault"), std::string::npos);
  EXPECT_EQ(sched.stats().failed, 1u);
  EXPECT_EQ(sched.stats().retries, 2u);
}

TEST(Scheduler, AdmissionInjectionSheds) {
  const ScopedInjection inject("unwanted:admit");
  JobScheduler sched(JobScheduler::Options{});
  JobSpec spec;
  spec.id = "j";
  spec.circuit = "unwanted";
  JobResult shed;
  EXPECT_FALSE(sched.submit(
      std::move(spec), [](const CancelToken&) {},
      [](const JobResult&) { FAIL() << "shed jobs must not get a completion callback"; },
      &shed));
  EXPECT_EQ(shed.status, JobStatus::Shed);
  sched.shutdown();
  EXPECT_EQ(sched.stats().shed, 1u);
  EXPECT_EQ(sched.stats().admitted, 0u);
}

TEST(Scheduler, QueueFullShedsExplicitly) {
  JobScheduler::Options opt;
  opt.max_queue_per_tenant = 2;
  JobScheduler sched(opt);
  sched.pause_dispatch();  // nothing drains: the queue must overflow

  const std::uint64_t shed_counter_before = obs::total(obs::Counter::JobsShed);
  std::atomic<int> done{0};
  int admitted = 0, shed = 0;
  for (int j = 0; j < 5; ++j) {
    JobSpec spec;
    spec.id = "q" + std::to_string(j);
    spec.circuit = spec.id;
    JobResult shed_result;
    if (sched.submit(
            std::move(spec), [](const CancelToken&) {},
            [&](const JobResult&) { ++done; }, &shed_result)) {
      ++admitted;
    } else {
      ++shed;
      EXPECT_EQ(shed_result.status, JobStatus::Shed);
      EXPECT_NE(shed_result.error.find("queue full"), std::string::npos);
    }
  }
  EXPECT_EQ(admitted, 2);
  EXPECT_EQ(shed, 3);
  sched.resume_dispatch();
  sched.shutdown();
  EXPECT_EQ(done.load(), 2);
  EXPECT_EQ(obs::total(obs::Counter::JobsShed), shed_counter_before + 3);
  const JobScheduler::Stats s = sched.stats();
  EXPECT_EQ(s.submitted, s.admitted + s.shed);
  EXPECT_EQ(s.admitted, s.done + s.failed + s.cancelled);
}

TEST(Scheduler, PerJobBudgetDerivesCancelToken) {
  JobScheduler sched(JobScheduler::Options{});
  std::atomic<bool> armed{false}, fired{false};
  JobSpec spec;
  spec.id = "budgeted";
  spec.budget_secs = 0.000001;  // pre-expired by the time the job runs
  ASSERT_TRUE(sched.submit(
      std::move(spec),
      [&](const CancelToken& tok) {
        armed = tok.armed();
        // The budget clock starts at dispatch; spin past the 1µs deadline.
        for (int i = 0; i < 100000000 && !tok.poll(); ++i) {}
        fired = tok.poll();
      },
      [](const JobResult& r) { EXPECT_EQ(r.status, JobStatus::Done); }));
  sched.shutdown();
  EXPECT_TRUE(armed.load());
  EXPECT_TRUE(fired.load());
}

// Served results must be bit-identical to direct runs: same digest from the
// cache's artifacts — cold (Built), warm (Ram), disk-reloaded — across
// thread counts, all equal to the direct Netlist-overload digest and to the
// checked-in golden (when present).
TEST(ServeEquivalence, WarmColdDiskThreadsMatchDirectAndGolden) {
  const CorpusRegistry& reg = CorpusRegistry::global();
  const CorpusEntry* e = reg.find("s27");
  ASSERT_NE(e, nullptr);
  const std::string bench = reg.bench_text(*e);
  const DigestOptions dopt = digest_profile(e->tier, e->num_gates);

  const std::string direct =
      compute_circuit_digest(read_bench_string(bench, e->name, "test"), dopt).sha_hex;
  const std::string golden = read_golden_sha(reg.golden_path(*e));
  if (!golden.empty()) EXPECT_EQ(direct, golden);

  ScratchDir dir("equiv");
  ArtifactCache::Options copt;
  copt.disk_dir = dir.path;
  ArtifactCache cache(copt);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool::set_global_threads(threads);
    const auto cold = cache.get(e->name, bench, 1);
    const auto warm = cache.get(e->name, bench, 1);
    EXPECT_EQ(warm.source, ArtifactCache::Source::Ram);
    cache.clear_ram();
    const auto disk = cache.get(e->name, bench, 1);
    EXPECT_EQ(disk.source, ArtifactCache::Source::Disk);
    for (const auto* got : {&cold, &warm, &disk})
      EXPECT_EQ(compute_circuit_digest(got->artifacts, dopt).sha_hex, direct)
          << "threads=" << threads;
    cache.clear_ram();  // next thread count starts cold again
  }
  ThreadPool::set_global_threads(1);
}

TEST(ServeEquivalence, ArtifactPipelineSkipsScanAndFaultStages) {
  ArtifactCache cache(ArtifactCache::Options{});
  const auto got = cache.get("demo", kDemoBench, 1);
  const GenerateCompactReport rep = run_generate_and_compact(got.artifacts);
  for (const obs::StageStat& st : rep.stages) {
    EXPECT_NE(st.name, "scan");
    EXPECT_NE(st.name, "faults");
  }
  // The tail stages still ran and verified.
  EXPECT_FALSE(rep.stages.empty());
  EXPECT_GT(rep.atpg.detected, 0u);
}

int run_serve_lines(const std::vector<std::string>& lines, std::string* out_text,
                    ServeOptions opt = {}) {
  std::string in_text;
  for (const std::string& l : lines) in_text += l + "\n";
  std::istringstream in(in_text);
  std::ostringstream out;
  const int rc = run_serve(in, out, opt);
  *out_text = out.str();
  return rc;
}

TEST(ServeLoop, CleanRunAnswersEveryRequestAndExitsZero) {
  std::string out;
  const int rc = run_serve_lines(
      {R"({"op":"ping","id":"p"})",
       std::string(R"({"op":"generate","id":"g","bench":")") +
           "INPUT(a)\\nINPUT(b)\\nOUTPUT(o)\\nf0 = DFF(n0)\\nn0 = XOR(a, f0)\\no = AND(b, f0)\\n" +
           R"("})",
       R"({"op":"stats","id":"s"})", R"({"op":"shutdown"})"},
      &out);
  EXPECT_EQ(rc, kExitOk) << out;
  EXPECT_NE(out.find(R"("op":"ping","id":"p","status":"done")"), std::string::npos) << out;
  EXPECT_NE(out.find(R"("id":"g","tenant":"default","status":"done")"), std::string::npos) << out;
  EXPECT_NE(out.find(R"("cache":"built")"), std::string::npos) << out;
  EXPECT_NE(out.find(R"("scheduler":{"submitted":1,"admitted":1)"), std::string::npos) << out;
  // One response line per request.
  EXPECT_EQ(static_cast<int>(std::count(out.begin(), out.end(), '\n')), 4) << out;
}

TEST(ServeLoop, MalformedAndUnknownRequestsFailWithoutCrashing) {
  std::string out;
  const int rc = run_serve_lines({"this is not json", R"({"op":"frobnicate"})",
                                  R"({"op":"generate","id":"nocircuit"})", R"({"op":"shutdown"})"},
                                 &out);
  EXPECT_EQ(rc, kExitHadFailures) << out;
  EXPECT_NE(out.find("malformed request"), std::string::npos) << out;
  EXPECT_NE(out.find("unknown op"), std::string::npos) << out;
  EXPECT_NE(out.find(R"("stage":"request")"), std::string::npos) << out;
}

TEST(ServeLoop, OverloadShedsWithExplicitRejectAndExitCode) {
  ServeOptions opt;
  opt.sched.max_queue_per_tenant = 1;
  std::vector<std::string> lines = {R"({"op":"pause"})"};
  const std::string bench_json =
      "INPUT(a)\\nINPUT(b)\\nOUTPUT(o)\\nf0 = DFF(n0)\\nn0 = XOR(a, f0)\\no = AND(b, f0)\\n";
  for (int j = 0; j < 3; ++j)
    lines.push_back(R"({"op":"generate","id":"burst)" + std::to_string(j) + R"(","bench":")" +
                    bench_json + R"("})");
  lines.push_back(R"({"op":"resume"})");
  lines.push_back(R"({"op":"shutdown"})");
  std::string out;
  const int rc = run_serve_lines(lines, &out, opt);
  // No admitted job failed, so overload (not failure) is the exit status.
  EXPECT_EQ(rc, kExitOverload) << out;
  EXPECT_NE(out.find(R"("status":"shed")"), std::string::npos) << out;
  EXPECT_NE(out.find("queue full"), std::string::npos) << out;
  EXPECT_NE(out.find(R"("status":"done")"), std::string::npos) << out;  // burst0 still ran
}

// TSan soak: concurrent tenants, injected transient faults, tiny deadlines.
// Asserts clean shutdown (no leaked jobs: conservation law holds exactly)
// and deterministic counter totals for the deterministic parts.
TEST(ServeSoak, ConcurrentTenantsWithFaultsAndDeadlines) {
  const ScopedInjection inject("soak-t1-*:job_run:6;soak-t2-*:admit:2");
  ThreadPool::set_global_threads(4);
  const std::uint64_t retries_before = obs::total(obs::Counter::JobRetries);
  const std::uint64_t shed_before = obs::total(obs::Counter::JobsShed);

  JobScheduler::Options opt;
  opt.max_retries = 2;
  opt.backoff_base_ms = 1;
  opt.max_queue_per_tenant = 64;
  opt.default_budget_secs = 0.001;  // tiny: tokens arm and may fire mid-job
  JobScheduler sched(opt);

  std::atomic<int> callbacks{0};
  int shed = 0;
  const int kTenants = 4, kJobs = 12;
  for (int j = 0; j < kJobs; ++j) {
    for (int t = 0; t < kTenants; ++t) {
      JobSpec spec;
      spec.tenant = "t" + std::to_string(t);
      spec.id = "soak-t" + std::to_string(t) + "-" + std::to_string(j);
      spec.circuit = spec.id;
      const bool admitted = sched.submit(
          std::move(spec),
          [](const CancelToken& tok) {
            for (int spin = 0; spin < 50 && !tok.poll(); ++spin) {}
          },
          [&](const JobResult&) { ++callbacks; });
      if (!admitted) ++shed;
    }
  }
  sched.shutdown();

  const JobScheduler::Stats s = sched.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kTenants * kJobs));
  EXPECT_EQ(s.submitted, s.admitted + s.shed);
  EXPECT_EQ(s.admitted, s.done + s.failed + s.cancelled);          // zero leaked jobs
  EXPECT_EQ(static_cast<std::uint64_t>(callbacks.load()), s.admitted);
  EXPECT_EQ(static_cast<std::uint64_t>(shed), s.shed);
  // Deterministic injections: tenant 2 loses exactly its first 2 submits to
  // the admit fault; tenant 1's first 6 attempts fail transiently and (with
  // budget 2) produce exactly 2 permanent failures + 6 total retries... but
  // retries interleave with fresh attempts nondeterministically, so assert
  // the deterministic aggregates only.
  EXPECT_EQ(s.shed, 2u);
  EXPECT_EQ(obs::total(obs::Counter::JobsShed), shed_before + 2);
  EXPECT_EQ(s.failed + s.done, s.admitted);
  // Exactly 6 job_run faults fired; each one became a retry or a terminal
  // failure, however the attempts interleaved.
  EXPECT_EQ(s.retries + s.failed, 6u);
  EXPECT_EQ(obs::total(obs::Counter::JobRetries), retries_before + s.retries);
  ThreadPool::set_global_threads(1);
}

}  // namespace
}  // namespace uniscan::serve
