#include "sim/sequence_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace uniscan {
namespace {

TEST(SequenceIo, RoundTrip) {
  TestSequence seq = TestSequence::from_rows(4, {"01x1", "1110", "xxxx"});
  const TestSequence back = read_sequence_string(write_sequence_string(seq));
  EXPECT_EQ(seq, back);
}

TEST(SequenceIo, EmptySequenceRoundTrips) {
  const TestSequence seq(7);
  const TestSequence back = read_sequence_string(write_sequence_string(seq));
  EXPECT_EQ(back.num_inputs(), 7u);
  EXPECT_EQ(back.length(), 0u);
}

TEST(SequenceIo, CommentsAndBlanksIgnored) {
  const auto text = "# header comment\nuseq v1 2\n\n01  # trailing\n# mid comment\n1x\n";
  const TestSequence seq = read_sequence_string(text);
  ASSERT_EQ(seq.length(), 2u);
  EXPECT_EQ(seq.at(1, 1), V3::X);
}

TEST(SequenceIo, RejectsBadHeader) {
  EXPECT_THROW(read_sequence_string("frob v1 3\n000\n"), std::runtime_error);
  EXPECT_THROW(read_sequence_string("useq v2 3\n000\n"), std::runtime_error);
  EXPECT_THROW(read_sequence_string(""), std::runtime_error);
}

TEST(SequenceIo, RejectsBadRows) {
  EXPECT_THROW(read_sequence_string("useq v1 3\n01\n"), std::runtime_error);
  EXPECT_THROW(read_sequence_string("useq v1 3\n012\n"), std::runtime_error);
}

TEST(SequenceIo, FileRoundTrip) {
  TestSequence seq = TestSequence::from_rows(3, {"101", "x0x"});
  const std::string path = ::testing::TempDir() + "seq_io_test.useq";
  write_sequence_file(path, seq);
  EXPECT_EQ(read_sequence_file(path), seq);
  std::remove(path.c_str());
}

TEST(SequenceIo, MissingFileThrows) {
  EXPECT_THROW(read_sequence_file("/nonexistent/x.useq"), std::runtime_error);
}

TEST(SequenceIo, FileParseErrorsNameTheFile) {
  const std::string path = ::testing::TempDir() + "broken.useq";
  {
    std::ofstream f(path);
    f << "useq v1 3\n01q\n";
  }
  try {
    read_sequence_file(path);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(SequenceIo, CrlfLineEndingsTolerated) {
  const TestSequence seq = read_sequence_string("useq v1 2\r\n01\r\n1x\r\n");
  ASSERT_EQ(seq.length(), 2u);
  EXPECT_EQ(seq.at(1, 1), V3::X);
}

TEST(SequenceIo, BadRowErrorEchoesACappedExcerpt) {
  const std::string junk(300, 'q');
  try {
    read_sequence_string("useq v1 300\n" + junk + "\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_LT(what.size(), 200u) << what;
    EXPECT_NE(what.find("..."), std::string::npos) << what;
  }
}

ScanTestSet demo_set() {
  ScanTestSet set;
  set.num_original_inputs = 3;
  set.chain_length = 2;
  set.tests.push_back({{V3::One, V3::Zero}, {{V3::Zero, V3::One, V3::X}}});
  set.tests.push_back(
      {{V3::X, V3::One}, {{V3::One, V3::One, V3::One}, {V3::Zero, V3::Zero, V3::Zero}}});
  return set;
}

TEST(TestSetIo, RoundTrip) {
  const ScanTestSet set = demo_set();
  const ScanTestSet back = read_test_set_string(write_test_set_string(set));
  ASSERT_EQ(back.tests.size(), 2u);
  EXPECT_EQ(back.num_original_inputs, 3u);
  EXPECT_EQ(back.chain_length, 2u);
  EXPECT_EQ(back.tests[0].scan_in, set.tests[0].scan_in);
  EXPECT_EQ(back.tests[1].vectors, set.tests[1].vectors);
}

TEST(TestSetIo, RejectsVectorBeforeTest) {
  EXPECT_THROW(read_test_set_string("utst v1 3 2\n000\n"), std::runtime_error);
}

TEST(TestSetIo, RejectsScanInNarrowerThanChain) {
  EXPECT_THROW(read_test_set_string("utst v1 3 2\ntest 1\n000\n"), std::runtime_error);
}

TEST(TestSetIo, MultiChainScanInWiderThanChainAccepted) {
  // With multiple chains scan_in covers every flip-flop while chain_length
  // is only the (max) shift count.
  const ScanTestSet set = read_test_set_string("utst v1 3 2\ntest 1010\n000\n");
  EXPECT_EQ(set.tests[0].scan_in.size(), 4u);
}

TEST(TestSetIo, RejectsInconsistentScanInWidths) {
  EXPECT_THROW(read_test_set_string("utst v1 3 2\ntest 10\n000\ntest 101\n111\n"),
               std::runtime_error);
}

TEST(TestSetIo, RejectsTestWithoutVectors) {
  EXPECT_THROW(read_test_set_string("utst v1 3 2\ntest 10\n"), std::runtime_error);
}

TEST(TestSetIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "testset_io_test.utst";
  write_test_set_file(path, demo_set());
  const ScanTestSet back = read_test_set_file(path);
  EXPECT_EQ(back.tests.size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uniscan
