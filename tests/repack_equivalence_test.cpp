// Live-fault batch repacking (DESIGN.md §5j) is a pure work knob: at wave
// boundaries the sessions repack surviving faults into dense batches and
// auto-narrow the slot word, but a fault's detection is a function of its
// own slot alone, so detections, detection times, committed sequences and
// corpus digests must be bit-identical with repacking on or off, at every
// slot width and every thread count. These tests pin that down for both
// streaming sessions (chunked advance + snapshot/restore across a repack),
// assert the layer actually fires and reclaims lanes, and check the fast
// corpus tier's golden digests against the repack-off path.
//
// Under the forced CI jobs (UNISCAN_REPACK=0 / UNISCAN_SLOT_WIDTH=64) the
// environment override outranks set_global_repack, degenerating parts of
// the matrix to off-vs-off — which is the point there; the firing test
// skips itself when it cannot turn repacking on.
//
// The same file builds twice: the default (tier1) matrix in uniscan_tests,
// and a seed-reproducible fuzz sweep in uniscan_slow_tests
// (-DUNISCAN_SLOW_FUZZ, ctest label `slow`).
#include <gtest/gtest.h>

#include <array>
#include <span>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "corpus/golden.hpp"
#include "fault/fault_list.hpp"
#include "fault/transition_fault.hpp"
#include "obs/counters.hpp"
#include "scan/scan_insertion.hpp"
#include "sim/engine.hpp"
#include "sim/fault_sim.hpp"
#include "sim/fault_sim_session.hpp"
#include "sim/transition_sim.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workloads/circuits.hpp"
#include "workloads/synth_gen.hpp"

namespace uniscan {
namespace {

constexpr std::array<SlotWidth, 4> kWidths = {SlotWidth::W64, SlotWidth::W256, SlotWidth::W512,
                                              SlotWidth::Auto};
constexpr std::array<std::size_t, 4> kThreads = {1, 2, 4, 8};

struct RepackGuard {
  explicit RepackGuard(bool on) { set_global_repack(on); }
  ~RepackGuard() { set_global_repack(true); }
};

struct WidthGuard {
  explicit WidthGuard(SlotWidth w) { set_global_slot_width(w); }
  ~WidthGuard() { set_global_slot_width(SlotWidth::Auto); }
};

struct PoolGuard {
  explicit PoolGuard(std::size_t n) { ThreadPool::set_global_threads(n); }
  ~PoolGuard() { ThreadPool::set_global_threads(1); }
};

void expect_same_detections(const std::vector<DetectionRecord>& got,
                            const std::vector<DetectionRecord>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].detected, want[i].detected) << what << " fault " << i;
    EXPECT_EQ(got[i].time, want[i].time) << what << " fault " << i;
  }
}

/// Big enough to span several 256-bit batches, so repacking has batches to
/// merge and widths to narrow through.
Netlist make_wide_circuit(std::uint64_t seed) {
  SynthSpec spec;
  spec.name = "repack" + std::to_string(seed);
  spec.num_inputs = 6;
  spec.num_dffs = 8;
  spec.num_gates = 140;
  spec.seed = seed;
  return generate_synthetic(spec);
}

TestSequence make_random_sequence(const Netlist& nl, std::size_t length, std::uint64_t seed) {
  Rng rng(seed);
  TestSequence seq(nl.num_inputs());
  for (std::size_t t = 0; t < length; ++t) {
    std::vector<V3> vec(nl.num_inputs());
    for (auto& v : vec) v = rng.next_bool() ? V3::One : V3::Zero;
    seq.append(std::move(vec));
  }
  return seq;
}

/// Reference trajectory of a chunked session run: per-chunk gains plus the
/// final detection records.
struct Trajectory {
  std::vector<std::size_t> gains;
  std::vector<DetectionRecord> detections;
};

template <class Session, class FaultSpan>
Trajectory run_session(const Netlist& nl, const FaultSpan& faults,
                       const std::vector<TestSequence>& chunks) {
  Session session(nl, faults);
  Trajectory t;
  for (const TestSequence& c : chunks) t.gains.push_back(session.advance(c));
  t.detections = session.detections();
  return t;
}

#ifndef UNISCAN_SLOW_FUZZ

// ---------------------------------------------------------------------------
// Tier-1: repack on/off × width × threads against the repack-off 64-bit
// single-threaded reference, both fault models.
// ---------------------------------------------------------------------------

TEST(RepackEquivalence, SessionMatrixStuckAt) {
  const ScanCircuit sc = insert_scan(make_wide_circuit(3));
  const FaultList fl = FaultList::collapsed(sc.netlist);
  ASSERT_GT(fl.size(), 255u) << "circuit too small to span 256-bit batches";
  std::vector<TestSequence> chunks;
  for (std::uint64_t k = 0; k < 6; ++k)
    chunks.push_back(make_random_sequence(sc.netlist, 16, 101 + k));

  Trajectory want;
  {
    const RepackGuard rg(false);
    const WidthGuard wg(SlotWidth::W64);
    want = run_session<FaultSimSession>(sc.netlist, fl.faults(), chunks);
  }

  for (const bool repack : {false, true}) {
    for (const SlotWidth w : kWidths) {
      for (const std::size_t n : kThreads) {
        SCOPED_TRACE(std::string("repack=") + (repack ? "on" : "off") +
                     " width=" + std::to_string(slot_width_bits(w)) +
                     " threads=" + std::to_string(n));
        const RepackGuard rg(repack);
        const WidthGuard wg(w);
        const PoolGuard pg(n);
        const Trajectory got = run_session<FaultSimSession>(sc.netlist, fl.faults(), chunks);
        EXPECT_EQ(got.gains, want.gains);
        expect_same_detections(got.detections, want.detections, "stuck-at session");
      }
    }
  }
}

TEST(RepackEquivalence, SessionMatrixTransition) {
  const ScanCircuit sc = insert_scan(make_wide_circuit(5));
  const auto faults = enumerate_transition_faults(sc.netlist);
  ASSERT_GT(faults.size(), 255u);
  std::vector<TestSequence> chunks;
  for (std::uint64_t k = 0; k < 6; ++k)
    chunks.push_back(make_random_sequence(sc.netlist, 16, 211 + k));

  Trajectory want;
  {
    const RepackGuard rg(false);
    const WidthGuard wg(SlotWidth::W64);
    want = run_session<TransitionSimSession>(sc.netlist, std::span<const TransitionFault>(faults),
                                             chunks);
  }

  for (const bool repack : {false, true}) {
    for (const SlotWidth w : kWidths) {
      for (const std::size_t n : kThreads) {
        SCOPED_TRACE(std::string("repack=") + (repack ? "on" : "off") +
                     " width=" + std::to_string(slot_width_bits(w)) +
                     " threads=" + std::to_string(n));
        const RepackGuard rg(repack);
        const WidthGuard wg(w);
        const PoolGuard pg(n);
        const Trajectory got = run_session<TransitionSimSession>(
            sc.netlist, std::span<const TransitionFault>(faults), chunks);
        EXPECT_EQ(got.gains, want.gains);
        expect_same_detections(got.detections, want.detections, "transition session");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The layer must actually fire — an equivalence suite that silently tests
// off-vs-off proves nothing — and must only shed work, never add it.
// ---------------------------------------------------------------------------

TEST(RepackEquivalence, RepackFiresAndShedsWork) {
  {
    const RepackGuard probe(true);
    if (!global_repack()) GTEST_SKIP() << "repacking forced off by environment";
  }
  const ScanCircuit sc = insert_scan(make_wide_circuit(7));
  const FaultList fl = FaultList::collapsed(sc.netlist);
  ASSERT_GT(fl.size(), 255u);
  std::vector<TestSequence> chunks;
  for (std::uint64_t k = 0; k < 10; ++k)
    chunks.push_back(make_random_sequence(sc.netlist, 24, 301 + k));

  std::uint64_t evals_off = 0;
  {
    const RepackGuard rg(false);
    const obs::CounterScope scope;
    run_session<FaultSimSession>(sc.netlist, fl.faults(), chunks);
    evals_off = scope.delta(obs::Counter::GateEvals);
  }

  const RepackGuard rg(true);
  const obs::CounterScope scope;
  run_session<FaultSimSession>(sc.netlist, fl.faults(), chunks);
  EXPECT_GE(scope.delta(obs::Counter::RepackEvents), 1u)
      << "random chunks detected enough faults that at least one repack must fire";
  EXPECT_GE(scope.delta(obs::Counter::LanesReclaimed), 1u);
  EXPECT_LE(scope.delta(obs::Counter::GateEvals), evals_off)
      << "repacking may only shed simulation work";
}

// ---------------------------------------------------------------------------
// Snapshot/restore across an intervening repack: the snapshot pins its pack.
// ---------------------------------------------------------------------------

TEST(RepackEquivalence, SnapshotRestoresAcrossRepack) {
  const ScanCircuit sc = insert_scan(make_wide_circuit(9));
  const FaultList fl = FaultList::collapsed(sc.netlist);
  ASSERT_GT(fl.size(), 255u);
  const TestSequence head = make_random_sequence(sc.netlist, 16, 401);
  std::vector<TestSequence> tail;
  for (std::uint64_t k = 0; k < 8; ++k)
    tail.push_back(make_random_sequence(sc.netlist, 24, 411 + k));

  // Straight-through reference: head then tail, no snapshot detour.
  Trajectory want;
  {
    FaultSimSession ref(sc.netlist, fl.faults());
    ref.advance(head);
    for (const TestSequence& c : tail) want.gains.push_back(ref.advance(c));
    want.detections = ref.detections();
  }

  // Detour: capture after head, run the whole tail (repacks happen when the
  // layer is on), restore, replay the tail. The replay must be identical.
  FaultSimSession session(sc.netlist, fl.faults());
  session.advance(head);
  const auto snap = session.snapshot();
  for (const TestSequence& c : tail) session.advance(c);
  session.restore(snap);
  Trajectory got;
  for (const TestSequence& c : tail) got.gains.push_back(session.advance(c));
  got.detections = session.detections();
  EXPECT_EQ(got.gains, want.gains);
  expect_same_detections(got.detections, want.detections, "restored replay");

  // Cross-session restores still throw, including across a repack.
  FaultSimSession other(sc.netlist, fl.faults());
  EXPECT_THROW(other.restore(snap), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fast-tier golden digests: the repack-off path must reproduce the same
// checked-in digests the default (repack-on) path is pinned to by
// CorpusDigest.FastTierMatchesGolden. Three circuits keep the tier-1 cost
// bounded; the slow corpus sweep covers the rest via the default path.
// ---------------------------------------------------------------------------

TEST(RepackEquivalence, FastTierDigestsUnchangedWithRepackOff) {
  const CorpusRegistry& reg = CorpusRegistry::global();
  const auto fast = reg.tier(CorpusTier::Fast);
  ASSERT_FALSE(fast.empty());
  const RepackGuard rg(false);
  std::size_t checked = 0;
  for (const CorpusEntry& e : fast) {
    if (checked == 3) break;
    SCOPED_TRACE(e.name);
    const std::string want = read_golden_sha(reg.golden_path(e));
    ASSERT_FALSE(want.empty()) << "no golden digest for " << e.name;
    EXPECT_EQ(compute_corpus_digest(reg, e).sha_hex, want)
        << e.name << ": --repack=off changed pipeline behavior";
    ++checked;
  }
}

#else  // UNISCAN_SLOW_FUZZ

// ---------------------------------------------------------------------------
// Slow tier: seed-reproducible fuzz — random circuits, random chunk
// schedules, both sessions, repack on/off × widths against the repack-off
// 64-bit reference. Every case is a pure function of the seed.
// ---------------------------------------------------------------------------

class RepackFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RepackFuzz, SessionsMatchWithRepackOnAndOff) {
  const std::uint64_t seed = GetParam();
  SynthSpec spec;
  spec.name = "repackfuzz" + std::to_string(seed);
  spec.num_inputs = 4 + seed % 5;
  spec.num_dffs = 4 + seed % 7;
  spec.num_gates = 90 + static_cast<std::size_t>(seed % 4) * 45;
  spec.seed = seed * 2654435761u;
  const ScanCircuit sc = insert_scan(generate_synthetic(spec));
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const auto tfaults = enumerate_transition_faults(sc.netlist);

  Rng rng(seed ^ 0x5eedf00dULL);
  std::vector<TestSequence> chunks;
  const std::size_t num_chunks = 4 + rng.next() % 5;
  for (std::size_t k = 0; k < num_chunks; ++k)
    chunks.push_back(make_random_sequence(sc.netlist, 8 + rng.next() % 25, rng.next()));

  Trajectory want_sa, want_tr;
  {
    const RepackGuard rg(false);
    const WidthGuard wg(SlotWidth::W64);
    want_sa = run_session<FaultSimSession>(sc.netlist, fl.faults(), chunks);
    want_tr = run_session<TransitionSimSession>(sc.netlist,
                                                std::span<const TransitionFault>(tfaults), chunks);
  }

  for (const bool repack : {false, true}) {
    for (const SlotWidth w : kWidths) {
      SCOPED_TRACE(std::string("repack=") + (repack ? "on" : "off") +
                   " width=" + std::to_string(slot_width_bits(w)));
      const RepackGuard rg(repack);
      const WidthGuard wg(w);
      const PoolGuard pg(4);
      const Trajectory sa = run_session<FaultSimSession>(sc.netlist, fl.faults(), chunks);
      EXPECT_EQ(sa.gains, want_sa.gains);
      expect_same_detections(sa.detections, want_sa.detections, "stuck-at fuzz");
      const Trajectory tr = run_session<TransitionSimSession>(
          sc.netlist, std::span<const TransitionFault>(tfaults), chunks);
      EXPECT_EQ(tr.gains, want_tr.gains);
      expect_same_detections(tr.detections, want_tr.detections, "transition fuzz");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepackFuzz, ::testing::Range<std::uint64_t>(1, 13));

#endif  // UNISCAN_SLOW_FUZZ

}  // namespace
}  // namespace uniscan
