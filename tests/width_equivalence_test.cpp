// The simulation slot width (64/256/512-bit words — see sim/slot_word.hpp)
// is a pure throughput knob: batches never interact, and every per-fault
// result is a function of that fault's slot alone, so detection records,
// latch records, compaction output and session state must be bit-identical
// at every width and every thread count. These tests pin that down by
// running the 64-bit single-threaded configuration as the reference and
// sweeping the full width × thread matrix against it, for both fault
// models, the one-shot simulators, the omission engine, and the streaming
// sessions (including the snapshot width-tagging contract).
//
// The same file builds twice: the default (tier1) matrix in uniscan_tests,
// and a wider fuzz-circuit matrix in uniscan_slow_tests
// (-DUNISCAN_SLOW_FUZZ, ctest label `slow`).
#include <gtest/gtest.h>

#include <array>
#include <span>
#include <vector>

#include "atpg/seq_atpg.hpp"
#include "compact/omission.hpp"
#include "fault/fault_list.hpp"
#include "fault/transition_fault.hpp"
#include "scan/scan_insertion.hpp"
#include "sim/engine.hpp"
#include "sim/fault_sim.hpp"
#include "sim/fault_sim_session.hpp"
#include "sim/transition_sim.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workloads/circuits.hpp"
#include "workloads/synth_gen.hpp"

namespace uniscan {
namespace {

constexpr std::array<SlotWidth, 3> kWidths = {SlotWidth::W64, SlotWidth::W256, SlotWidth::W512};
constexpr std::array<std::size_t, 4> kThreads = {1, 2, 4, 8};

/// Forces a slot width for the enclosing scope; restores Auto on exit.
/// (The UNISCAN_SLOT_WIDTH environment override outranks this — the forced
/// CI job degenerates the matrix to 64-vs-64, which is the point there.)
struct WidthGuard {
  explicit WidthGuard(SlotWidth w) { set_global_slot_width(w); }
  ~WidthGuard() { set_global_slot_width(SlotWidth::Auto); }
};

struct PoolGuard {
  explicit PoolGuard(std::size_t n) { ThreadPool::set_global_threads(n); }
  ~PoolGuard() { ThreadPool::set_global_threads(1); }
};

void expect_same_detections(const std::vector<DetectionRecord>& got,
                            const std::vector<DetectionRecord>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].detected, want[i].detected) << what << " fault " << i;
    EXPECT_EQ(got[i].time, want[i].time) << what << " fault " << i;
  }
}

void expect_same_latches(const std::vector<LatchRecord>& got, const std::vector<LatchRecord>& want,
                         const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].latched, want[i].latched) << what << " fault " << i;
    EXPECT_EQ(got[i].ff_index, want[i].ff_index) << what << " fault " << i;
    EXPECT_EQ(got[i].time, want[i].time) << what << " fault " << i;
  }
}

/// A circuit whose collapsed fault list spans several 256-bit batches, so
/// the wider widths exercise real multi-batch packing, not just batch 0.
Netlist make_wide_circuit(std::uint64_t seed = 3) {
  SynthSpec spec;
  spec.name = "width" + std::to_string(seed);
  spec.num_inputs = 6;
  spec.num_dffs = 8;
  spec.num_gates = 140;
  spec.seed = seed;
  return generate_synthetic(spec);
}

/// A fully specified random sequence over the circuit's inputs.
TestSequence make_random_sequence(const Netlist& nl, std::size_t length, std::uint64_t seed) {
  Rng rng(seed);
  TestSequence seq(nl.num_inputs());
  for (std::size_t t = 0; t < length; ++t) {
    std::vector<V3> vec(nl.num_inputs());
    for (auto& v : vec) v = rng.next_bool() ? V3::One : V3::Zero;
    seq.append(std::move(vec));
  }
  return seq;
}

#ifdef UNISCAN_SLOW_FUZZ
constexpr std::uint64_t kFuzzSeedEnd = 17;
#else
constexpr std::uint64_t kFuzzSeedEnd = 4;
#endif

// ---------------------------------------------------------------------------
// One-shot simulators: width × threads, stuck-at and transition.
// ---------------------------------------------------------------------------

TEST(WidthEquivalence, StuckAtRunMatrix) {
  const ScanCircuit sc = insert_scan(make_wide_circuit());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  ASSERT_GT(fl.size(), 255u) << "circuit too small to span 256-bit batches";
  const TestSequence seq = make_random_sequence(sc.netlist, 48, 11);

  FaultSimulator sim(sc.netlist);
  std::vector<LatchRecord> want_latched;
  const auto want = sim.run(seq, fl.faults(), &want_latched);
  const bool want_all = sim.detects_all(seq, fl.faults());

  for (const SlotWidth w : kWidths) {
    for (const std::size_t n : kThreads) {
      SCOPED_TRACE("width=" + std::to_string(slot_width_bits(w)) + " threads=" +
                   std::to_string(n));
      const WidthGuard wg(w);
      const PoolGuard pg(n);
      std::vector<LatchRecord> latched;
      expect_same_detections(sim.run(seq, fl.faults(), &latched), want, "stuck-at");
      expect_same_latches(latched, want_latched, "stuck-at latch");
      EXPECT_EQ(sim.detects_all(seq, fl.faults()), want_all);
    }
  }
}

TEST(WidthEquivalence, TransitionRunMatrix) {
  const ScanCircuit sc = insert_scan(make_wide_circuit(5));
  const auto faults = enumerate_transition_faults(sc.netlist);
  ASSERT_GT(faults.size(), 255u);
  const TestSequence seq = make_random_sequence(sc.netlist, 48, 17);

  TransitionFaultSimulator sim(sc.netlist);
  const auto want = sim.run(seq, faults);

  for (const SlotWidth w : kWidths) {
    for (const std::size_t n : kThreads) {
      SCOPED_TRACE("width=" + std::to_string(slot_width_bits(w)) + " threads=" +
                   std::to_string(n));
      const WidthGuard wg(w);
      const PoolGuard pg(n);
      expect_same_detections(sim.run(seq, faults), want, "transition");
    }
  }
}

// ---------------------------------------------------------------------------
// Compaction: the omission engine's batches, checkpoints and fail-fast waves
// all follow the slot width; the committed output must not.
// ---------------------------------------------------------------------------

TEST(WidthEquivalence, OmissionCompactionMatrix) {
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const AtpgResult atpg = generate_tests(sc, fl, {});

  const CompactionResult want = omission_compact(sc.netlist, atpg.sequence, fl.faults(), {});

  for (const SlotWidth w : kWidths) {
    for (const std::size_t n : kThreads) {
      SCOPED_TRACE("width=" + std::to_string(slot_width_bits(w)) + " threads=" +
                   std::to_string(n));
      const WidthGuard wg(w);
      const PoolGuard pg(n);
      const CompactionResult got = omission_compact(sc.netlist, atpg.sequence, fl.faults(), {});
      EXPECT_EQ(got.sequence, want.sequence);
      EXPECT_EQ(got.vectors_removed, want.vectors_removed);
      EXPECT_EQ(got.rounds, want.rounds);
    }
  }
}

// ---------------------------------------------------------------------------
// Streaming sessions: incremental advance and snapshot/restore.
// ---------------------------------------------------------------------------

TEST(WidthEquivalence, SessionAdvanceMatrix) {
  const ScanCircuit sc = insert_scan(make_wide_circuit(7));
  const FaultList fl = FaultList::collapsed(sc.netlist);
  ASSERT_GT(fl.size(), 255u);
  const TestSequence chunk1 = make_random_sequence(sc.netlist, 16, 23);
  const TestSequence chunk2 = make_random_sequence(sc.netlist, 16, 29);

  std::vector<DetectionRecord> want;
  std::size_t want_first = 0, want_second = 0;
  {
    FaultSimSession ref(sc.netlist, fl.faults());
    want_first = ref.advance(chunk1);
    const auto snap = ref.snapshot();
    ref.advance(chunk2);
    ref.restore(snap);  // the restored path must replay identically
    want_second = ref.advance(chunk2);
    want = ref.detections();
  }

  for (const SlotWidth w : kWidths) {
    for (const std::size_t n : kThreads) {
      SCOPED_TRACE("width=" + std::to_string(slot_width_bits(w)) + " threads=" +
                   std::to_string(n));
      const WidthGuard wg(w);
      const PoolGuard pg(n);
      FaultSimSession session(sc.netlist, fl.faults());
      EXPECT_EQ(session.advance(chunk1), want_first);
      const auto snap = session.snapshot();
      session.advance(chunk2);
      session.restore(snap);
      EXPECT_EQ(session.advance(chunk2), want_second);
      expect_same_detections(session.detections(), want, "session");
    }
  }
}

TEST(WidthEquivalence, SnapshotRejectsWidthMismatch) {
  // A snapshot is only valid for sessions of the width it was captured at:
  // restoring it into a session resolved to a different width must throw,
  // not silently reinterpret the payload.
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const TestSequence chunk = make_random_sequence(sc.netlist, 8, 31);

  // UNISCAN_SLOT_WIDTH trumps set_global_slot_width, so the guards below
  // would not actually produce two different widths. Probe rather than
  // checking the ambient width: Auto legitimately resolves wide on SIMD
  // builds and the test must still run there.
  {
    const WidthGuard probe(SlotWidth::W64);
    if (resolved_slot_width() != SlotWidth::W64)
      GTEST_SKIP() << "width forced by environment";
  }

  FaultSimSession::Snapshot snap64;
  {
    const WidthGuard wg(SlotWidth::W64);
    FaultSimSession session(sc.netlist, fl.faults());
    session.advance(chunk);
    snap64 = session.snapshot();
  }
  const WidthGuard wg(SlotWidth::W256);
  FaultSimSession session(sc.netlist, fl.faults());
  EXPECT_THROW(session.restore(snap64), std::invalid_argument);
  EXPECT_THROW(session.restore(FaultSimSession::Snapshot{}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fuzz sweep: random circuits, random sequences, every width against the
// 64-bit result. Threads fixed at 4 (the matrix above covers the sweep).
// ---------------------------------------------------------------------------

class WidthFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WidthFuzz, RandomCircuitsMatchAcrossWidths) {
  const std::uint64_t seed = GetParam();
  SynthSpec spec;
  spec.name = "wfuzz" + std::to_string(seed);
  spec.num_inputs = 3 + seed % 5;
  spec.num_dffs = 2 + seed % 7;
  spec.num_gates = 30 + static_cast<std::size_t>(seed * 13 % 90);
  spec.seed = seed * 31 + 7;
  const ScanCircuit sc = insert_scan(generate_synthetic(spec));
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const TestSequence seq = make_random_sequence(sc.netlist, 32, seed * 101 + 3);

  FaultSimulator sim(sc.netlist);
  const auto want = sim.run(seq, fl.faults());

  const PoolGuard pg(4);
  for (const SlotWidth w : kWidths) {
    SCOPED_TRACE("width=" + std::to_string(slot_width_bits(w)));
    const WidthGuard wg(w);
    expect_same_detections(sim.run(seq, fl.faults()), want, spec.name.c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WidthFuzz, ::testing::Range<std::uint64_t>(0, kFuzzSeedEnd));

}  // namespace
}  // namespace uniscan
