// Fuzz-style property sweeps: random synthetic circuits through the whole
// stack, asserting the invariants that must hold for ANY circuit.
//
// Reproducibility audit: every random choice in this file — circuit shape,
// circuit contents, scan-chain count, loaded states, ATPG restarts — derives
// from the gtest parameter seed and NOTHING else (no time, no global RNG
// state), so a failing case is replayed exactly by its printed seed /
// --gtest_filter suffix. Each test opens with a SCOPED_TRACE carrying the
// seed and derived spec, so any assertion that fires logs the full recipe.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/uniscan.hpp"
#include "sim/engine.hpp"
#include "util/thread_pool.hpp"

namespace uniscan {
namespace {

std::string fuzz_repro(std::uint64_t seed, const SynthSpec& spec) {
  return "fuzz seed=" + std::to_string(seed) + " circuit=" + spec.name +
         " (pi=" + std::to_string(spec.num_inputs) + " ff=" + std::to_string(spec.num_dffs) +
         " gates=" + std::to_string(spec.num_gates) +
         "); deterministic in the seed — rerun with --gtest_filter='*Seeds/*/" +
         std::to_string(seed - 1) + "' to replay exactly";
}

// The same file builds twice: the default (tier1) matrix in uniscan_tests,
// and a wider seed matrix in uniscan_slow_tests (-DUNISCAN_SLOW_FUZZ,
// ctest label `slow`).
#ifdef UNISCAN_SLOW_FUZZ
constexpr std::uint64_t kPipelineSeedEnd = 33;
constexpr std::uint64_t kScanChainSeedEnd = 33;
constexpr std::uint64_t kBaselineSeedEnd = 21;
#else
constexpr std::uint64_t kPipelineSeedEnd = 9;
constexpr std::uint64_t kScanChainSeedEnd = 9;
constexpr std::uint64_t kBaselineSeedEnd = 6;
#endif

SynthSpec fuzz_spec(std::uint64_t seed) {
  Rng rng(seed * 7919 + 13);
  SynthSpec spec;
  spec.name = "fuzz" + std::to_string(seed);
  spec.num_inputs = 2 + rng.next_below(6);
  spec.num_dffs = 2 + rng.next_below(8);
  spec.num_gates = 20 + rng.next_below(60);
  spec.seed = seed;
  return spec;
}

class FuzzPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzPipeline, EndToEndInvariants) {
  const SynthSpec spec = fuzz_spec(GetParam());
  SCOPED_TRACE(fuzz_repro(GetParam(), spec));
  const Netlist c = generate_synthetic(spec);
  const ScanCircuit sc = insert_scan(c);
  const FaultList fl = FaultList::collapsed(sc.netlist);
  ASSERT_GT(fl.size(), 0u);

  // Generation: reported detections must match independent simulation.
  AtpgOptions opt;
  opt.seed = GetParam();
  opt.final_effort_backtracks = 500;  // keep fuzz runs quick
  const AtpgResult atpg = generate_tests(sc, fl, opt);
  FaultSimulator sim(sc.netlist);
  const auto check = sim.run(atpg.sequence, fl.faults());
  std::size_t detected = 0;
  for (std::size_t i = 0; i < fl.size(); ++i) {
    ASSERT_EQ(check[i].detected, atpg.detection[i].detected) << spec.name << " fault " << i;
    detected += check[i].detected;
  }
  ASSERT_EQ(detected, atpg.detected);

#ifdef UNISCAN_SLOW_FUZZ
  // Fuzz the determinism contract too: re-running the generator at an odd
  // thread count must be bit-identical on every random circuit.
  {
    ThreadPool::set_global_threads(3);
    const AtpgResult redo = generate_tests(sc, fl, opt);
    ThreadPool::set_global_threads(1);
    ASSERT_EQ(redo.sequence, atpg.sequence) << spec.name;
    ASSERT_EQ(redo.detected, atpg.detected) << spec.name;
    ASSERT_EQ(redo.gate_evals, atpg.gate_evals) << spec.name;
  }
  // Observation-cone pruning must not change a single generated vector or
  // detection on any random circuit. (Do NOT compare gate_evals here —
  // pruning exists to change that.)
  {
    set_global_cone_pruning(false);
    const AtpgResult redo = generate_tests(sc, fl, opt);
    set_global_cone_pruning(true);
    ASSERT_EQ(redo.sequence, atpg.sequence) << spec.name;
    ASSERT_EQ(redo.detected, atpg.detected) << spec.name;
    for (std::size_t i = 0; i < fl.size(); ++i)
      ASSERT_EQ(redo.detection[i].detected, atpg.detection[i].detected)
          << spec.name << " fault " << i;
  }
#endif

  // Compaction: never longer, never loses a detection.
  const CompactionResult rest = restoration_compact(sc.netlist, atpg.sequence, fl.faults());
  ASSERT_LE(rest.sequence.length(), atpg.sequence.length());
  const auto after = sim.run(rest.sequence, fl.faults());
  for (std::size_t i = 0; i < fl.size(); ++i) {
    if (check[i].detected) {
      ASSERT_TRUE(after[i].detected) << spec.name << " fault " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Range<std::uint64_t>(1, kPipelineSeedEnd));

class FuzzScanChain : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzScanChain, LoadUnloadIdentityAnyChainCount) {
  const SynthSpec spec = fuzz_spec(GetParam() + 100);
  SCOPED_TRACE(fuzz_repro(GetParam(), spec));
  const Netlist c = generate_synthetic(spec);
  Rng rng(GetParam());
  const std::size_t chains = 1 + rng.next_below(std::min<std::size_t>(c.num_dffs(), 4));
  const ScanCircuit sc = insert_scan(c, chains);
  const SequentialSimulator sim(sc.netlist);

  // Load a random state, then unload while observing every chain's scan_out:
  // the observed stream must equal the loaded slice (shifted out in order).
  State target(sc.netlist.num_dffs());
  for (auto& v : target) v = rng.next_bool() ? V3::One : V3::Zero;
  const TestSequence load = make_scan_load_all(sc, target, rng);
  SimTrace lt = sim.simulate(load, sim.initial_state());
  ASSERT_EQ(lt.state.back(), target) << spec.name << " chains=" << chains;

  // Unload: max-chain-length shift cycles.
  TestSequence unload(sc.netlist.num_inputs());
  for (std::size_t k = 0; k < sc.max_chain_length(); ++k) {
    std::vector<V3> vec(sc.netlist.num_inputs(), V3::Zero);
    vec[sc.scan_sel_index()] = V3::One;
    unload.append(std::move(vec));
  }
  const SimTrace ut = sim.simulate(unload, target);
  // During unload cycle k, chain c's scan_out shows cell (len-1-k) of its
  // loaded slice (the tail cell leaves first).
  std::size_t base = 0;
  for (const ScanChain& chain : sc.nets.chains) {
    const std::size_t len = chain.cells.size();
    for (std::size_t k = 0; k < len; ++k) {
      ASSERT_EQ(ut.po[k][chain.scan_out_index], target[base + len - 1 - k])
          << spec.name << " chains=" << chains << " k=" << k;
    }
    base += len;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzScanChain,
                         ::testing::Range<std::uint64_t>(1, kScanChainSeedEnd));

class FuzzBaselineTranslate : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzBaselineTranslate, BaselineBookkeepingIsExactTranslation) {
  const SynthSpec spec = fuzz_spec(GetParam() + 200);
  SCOPED_TRACE(fuzz_repro(GetParam(), spec));
  const Netlist c = generate_synthetic(spec);
  const ScanCircuit sc = insert_scan(c);
  const FaultList fl = FaultList::collapsed(sc.netlist);
  BaselineOptions opt;
  opt.seed = GetParam();
  const BaselineResult r = generate_baseline_tests(sc, fl, opt);

  // Structure: length matches the conventional application-cycle count and
  // the scan_sel column follows load/functional/unload periods.
  ASSERT_EQ(r.translated.length(), r.application_cycles());
  FaultSimulator sim(sc.netlist);
  const auto det = sim.run(r.translated, fl.faults());
  std::size_t detected = 0;
  for (std::size_t i = 0; i < fl.size(); ++i) {
    ASSERT_EQ(det[i].detected, r.detection[i].detected);
    detected += det[i].detected;
  }
  ASSERT_EQ(detected, r.detected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzBaselineTranslate,
                         ::testing::Range<std::uint64_t>(1, kBaselineSeedEnd));

// Corpus-derived fuzz: the seed picks a fast-tier corpus circuit (real
// .bench parse path, hash-verified) and drives a capped-effort generation
// run twice — the detection records must match independent simulation, and
// the second run must be BIT-IDENTICAL to the first, which is exactly the
// property that makes a failure reproducible from the logged seed alone.
class FuzzCorpus : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzCorpus, CorpusCaseReproducibleFromSeed) {
  const std::uint64_t seed = GetParam();
  const CorpusRegistry& reg = CorpusRegistry::global();
  const auto fast = reg.tier(CorpusTier::Fast);
  if (fast.empty()) GTEST_SKIP() << "corpus manifest not present at " << reg.dir();
  const CorpusEntry& entry = fast[seed % fast.size()];
  SCOPED_TRACE("fuzz seed=" + std::to_string(seed) + " -> corpus circuit " + entry.name +
               " (tier fast, " + reg.circuit_path(entry) +
               "); deterministic in the seed — rerun with --gtest_filter='*FuzzCorpus*/" +
               std::to_string(seed - 1) + "' to replay exactly");

  const Netlist c = reg.load(entry);
  const ScanCircuit sc = insert_scan(c);
  const FaultList fl = FaultList::collapsed(sc.netlist);

  AtpgOptions opt;
  opt.seed = seed;
  opt.max_backtracks = 10;
  opt.final_effort_backtracks = 0;
  opt.max_random_chunks = 4;
  opt.window_schedule = {4};
  const AtpgResult first = generate_tests(sc, fl, opt);

  FaultSimulator sim(sc.netlist);
  const auto check = sim.run(first.sequence, fl.faults());
  for (std::size_t i = 0; i < fl.size(); ++i)
    ASSERT_EQ(check[i].detected, first.detection[i].detected) << "fault " << i;

  const AtpgResult again = generate_tests(sc, fl, opt);
  ASSERT_EQ(again.sequence, first.sequence) << "same seed must replay bit-identically";
  ASSERT_EQ(again.detected, first.detected);
  ASSERT_EQ(again.gate_evals, first.gate_evals);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCorpus,
                         ::testing::Range<std::uint64_t>(1, kBaselineSeedEnd));

}  // namespace
}  // namespace uniscan
