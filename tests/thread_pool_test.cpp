#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace uniscan {
namespace {

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_workers(), 1u);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t task, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(static_cast<int>(task));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, EveryTaskRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  constexpr std::size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.parallel_for(kTasks, [&](std::size_t task, std::size_t worker) {
    EXPECT_LT(worker, 4u);
    hits[task].fetch_add(1);
  });
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t task, std::size_t) { sum += task; });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t, std::size_t) { FAIL() << "no task expected"; });
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [&](std::size_t task, std::size_t) {
                                   if (task == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](std::size_t, std::size_t outer_worker) {
    // A nested parallel_for must not deadlock waiting for the busy workers;
    // it runs its tasks on the calling worker.
    pool.parallel_for(3, [&](std::size_t, std::size_t inner_worker) {
      EXPECT_EQ(inner_worker, outer_worker);
      ++inner_total;
    });
  });
  EXPECT_EQ(inner_total.load(), 12);
}

TEST(ThreadPool, GlobalPoolResizable) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().num_workers(), 3u);
  std::atomic<int> count{0};
  ThreadPool::global().parallel_for(10, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(ThreadPool::global().num_workers(), 1u);
}

}  // namespace
}  // namespace uniscan
