#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace uniscan {
namespace {

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_workers(), 1u);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t task, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(static_cast<int>(task));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, EveryTaskRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  constexpr std::size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.parallel_for(kTasks, [&](std::size_t task, std::size_t worker) {
    EXPECT_LT(worker, 4u);
    hits[task].fetch_add(1);
  });
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t task, std::size_t) { sum += task; });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t, std::size_t) { FAIL() << "no task expected"; });
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [&](std::size_t task, std::size_t) {
                                   if (task == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, LowestIndexExceptionWinsDeterministically) {
  // Several tasks throw; the pool must (a) keep running the remaining tasks
  // (drain, no abandonment) and (b) rethrow the LOWEST-index task's
  // exception — at every pool size, so failure reports are reproducible
  // regardless of --threads.
  for (const std::size_t workers : {1u, 2u, 4u}) {
    ThreadPool pool(workers);
    std::vector<std::atomic<int>> ran(10);
    std::string message;
    try {
      pool.parallel_for(10, [&](std::size_t task, std::size_t) {
        ran[task].fetch_add(1);
        if (task == 2) throw std::runtime_error("boom-2");
        if (task == 5) throw std::runtime_error("boom-5");
        if (task == 7) throw std::runtime_error("boom-7");
      });
      FAIL() << "expected an exception at " << workers << " workers";
    } catch (const std::runtime_error& e) {
      message = e.what();
    }
    EXPECT_EQ(message, "boom-2") << workers << " workers";
    for (std::size_t i = 0; i < ran.size(); ++i)
      EXPECT_EQ(ran[i].load(), 1) << "task " << i << " at " << workers << " workers";

    // The pool must still be usable afterwards.
    std::atomic<int> count{0};
    pool.parallel_for(6, [&](std::size_t, std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 6);
  }
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](std::size_t, std::size_t outer_worker) {
    // A nested parallel_for must not deadlock waiting for the busy workers;
    // it runs its tasks on the calling worker.
    pool.parallel_for(3, [&](std::size_t, std::size_t inner_worker) {
      EXPECT_EQ(inner_worker, outer_worker);
      ++inner_total;
    });
  });
  EXPECT_EQ(inner_total.load(), 12);
}

TEST(ThreadPool, WorkerIdMatchesCallbackArgument) {
  // worker_id()/in_pool_task() are the TLS accessors per-worker state
  // (counter shards, trace buffers) index by; they must agree with the
  // worker index parallel_for hands the task.
  EXPECT_EQ(ThreadPool::worker_id(), 0u);
  EXPECT_FALSE(ThreadPool::in_pool_task());
  ThreadPool pool(4);
  std::atomic<int> mismatches{0};
  pool.parallel_for(64, [&](std::size_t, std::size_t worker) {
    if (ThreadPool::worker_id() != worker) ++mismatches;
    if (!ThreadPool::in_pool_task()) ++mismatches;
  });
  EXPECT_EQ(mismatches.load(), 0);
  // Cleared again once the fan-out returns.
  EXPECT_EQ(ThreadPool::worker_id(), 0u);
  EXPECT_FALSE(ThreadPool::in_pool_task());
}

TEST(ThreadPool, WorkerIdStableAcrossNestedFanOut) {
  // A nested parallel_for runs inline on the issuing worker, so worker_id()
  // must not change inside it — the property that makes a CounterScope's
  // single-shard read exact for one circuit's whole flow.
  ThreadPool pool(3);
  std::atomic<int> mismatches{0};
  pool.parallel_for(9, [&](std::size_t, std::size_t outer_worker) {
    pool.parallel_for(4, [&](std::size_t, std::size_t) {
      if (ThreadPool::worker_id() != outer_worker) ++mismatches;
      if (!ThreadPool::in_pool_task()) ++mismatches;
    });
    if (ThreadPool::worker_id() != outer_worker) ++mismatches;
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadPool, GlobalPoolResizable) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().num_workers(), 3u);
  std::atomic<int> count{0};
  ThreadPool::global().parallel_for(10, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(ThreadPool::global().num_workers(), 1u);
}

TEST(ThreadPool, ResizeKeepsObjectIdentity) {
  // A --threads=N flag parsed AFTER a component captured the global pool
  // must still take effect: set_global_threads resizes the pool in place
  // instead of replacing it.
  ThreadPool& before = ThreadPool::global();
  ThreadPool::set_global_threads(4);
  EXPECT_EQ(&ThreadPool::global(), &before);
  EXPECT_EQ(before.num_workers(), 4u);

  std::atomic<int> count{0};
  before.parallel_for(20, [&](std::size_t, std::size_t worker) {
    EXPECT_LT(worker, 4u);
    ++count;
  });
  EXPECT_EQ(count.load(), 20);

  ThreadPool::set_global_threads(1);
  EXPECT_EQ(&ThreadPool::global(), &before);
  EXPECT_EQ(before.num_workers(), 1u);
}

TEST(ThreadPool, ResizeUpDownAndNoop) {
  ThreadPool pool(1);
  const auto run = [&](std::size_t expect_workers) {
    std::atomic<int> count{0};
    std::atomic<int> bad{0};
    pool.parallel_for(50, [&](std::size_t, std::size_t worker) {
      if (worker >= expect_workers) ++bad;
      ++count;
    });
    EXPECT_EQ(count.load(), 50);
    EXPECT_EQ(bad.load(), 0);
  };
  run(1);
  pool.resize(5);
  EXPECT_EQ(pool.num_workers(), 5u);
  run(5);
  pool.resize(5);  // no-op resize must not respawn or wedge the pool
  run(5);
  pool.resize(2);
  EXPECT_EQ(pool.num_workers(), 2u);
  run(2);
  pool.resize(1);  // back to fully inline
  run(1);
  pool.resize(3);  // and usable again after inline mode
  run(3);
}

}  // namespace
}  // namespace uniscan
