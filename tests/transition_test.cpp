#include "atpg/transition_atpg.hpp"

#include <gtest/gtest.h>

#include "atpg/frame_model.hpp"
#include "atpg/podem.hpp"
#include "compact/omission.hpp"
#include "compact/restoration.hpp"
#include "netlist/builder.hpp"
#include "sim/transition_sim.hpp"
#include "util/rng.hpp"
#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

/// wire = BUF(a) -> PO; one DFF keeps the circuit sequential.
Netlist wire_circuit() {
  NetlistBuilder b("wire");
  const GateId a = b.input("a");
  const GateId w = b.buf("w", a);
  const GateId f = b.dff("f", w);
  const GateId o = b.or_("o", {w, f});
  b.output(w);
  b.output(o);
  return b.build();
}

TEST(TransitionFaults, EnumerationCoversStemsAndBranches) {
  const Netlist nl = make_s27();
  const auto faults = enumerate_transition_faults(nl);
  // Two per gate stem plus two per multi-fanout branch; must exceed 2*gates.
  EXPECT_GE(faults.size(), 2 * nl.num_gates());
  for (const auto& f : faults) EXPECT_LT(f.gate, nl.num_gates());
  EXPECT_FALSE(transition_fault_to_string(nl, faults[1]).empty());
}

TEST(TransitionSim, SlowToRiseDetectedOnLaunch) {
  const Netlist nl = wire_circuit();
  const TransitionFault str{*nl.find("w"), kStemPin, true};
  const TransitionFault faults[1] = {str};
  TransitionFaultSimulator sim(nl);

  // 0 then 1: the rising launch is delayed, PO 'w' shows 0 vs good 1 at t=1.
  const auto det = sim.run(TestSequence::from_rows(1, {"0", "1"}), faults);
  ASSERT_TRUE(det[0].detected);
  EXPECT_EQ(det[0].time, 1u);
}

TEST(TransitionSim, NoTransitionNoDetection) {
  const Netlist nl = wire_circuit();
  const TransitionFault str{*nl.find("w"), kStemPin, true};
  const TransitionFault faults[1] = {str};
  TransitionFaultSimulator sim(nl);
  // Constant 1: no rising transition is ever launched (the first frame's
  // history is X, so the first 1 yields and(1, X) = X — no detection).
  EXPECT_FALSE(sim.run(TestSequence::from_rows(1, {"1", "1", "1"}), faults)[0].detected);
  // Falling transitions do not excite a slow-to-rise fault either.
  EXPECT_FALSE(sim.run(TestSequence::from_rows(1, {"1", "0", "0"}), faults)[0].detected);
}

TEST(TransitionSim, SlowToFallSymmetry) {
  const Netlist nl = wire_circuit();
  const TransitionFault stf{*nl.find("w"), kStemPin, false};
  const TransitionFault faults[1] = {stf};
  TransitionFaultSimulator sim(nl);
  const auto det = sim.run(TestSequence::from_rows(1, {"1", "0"}), faults);
  ASSERT_TRUE(det[0].detected);
  EXPECT_EQ(det[0].time, 1u);
  EXPECT_FALSE(sim.run(TestSequence::from_rows(1, {"0", "1"}), faults)[0].detected);
}

TEST(TransitionSim, SessionMatchesOneShot) {
  const Netlist nl = make_s27();
  const auto faults = enumerate_transition_faults(nl);
  TestSequence seq(nl.num_inputs());
  Rng rng(5);
  for (int t = 0; t < 50; ++t) seq.append_x();
  seq.random_fill(rng);

  TransitionFaultSimulator sim(nl);
  const auto oneshot = sim.run(seq, faults);

  TransitionSimSession session(nl, faults);
  // Advance in chunks.
  for (std::size_t pos = 0; pos < seq.length();) {
    const std::size_t chunk = std::min<std::size_t>(7, seq.length() - pos);
    TestSequence part(nl.num_inputs());
    for (std::size_t t = 0; t < chunk; ++t) part.append(seq.vector_at(pos + t));
    session.advance(part);
    pos += chunk;
  }
  for (std::size_t i = 0; i < faults.size(); ++i) {
    ASSERT_EQ(session.detections()[i].detected, oneshot[i].detected) << i;
    if (oneshot[i].detected) {
      ASSERT_EQ(session.detections()[i].time, oneshot[i].time) << i;
    }
  }
}

TEST(TransitionSim, SnapshotRestore) {
  const Netlist nl = make_s27();
  const auto faults = enumerate_transition_faults(nl);
  TransitionSimSession session(nl, faults);
  Rng rng(9);
  TestSequence a(nl.num_inputs());
  for (int t = 0; t < 10; ++t) a.append_x();
  a.random_fill(rng);
  session.advance(a);
  const auto snap = session.snapshot();
  const std::size_t before = session.num_detected();
  TestSequence b(nl.num_inputs());
  for (int t = 0; t < 20; ++t) b.append_x();
  b.random_fill(rng);
  session.advance(b);
  session.restore(snap);
  EXPECT_EQ(session.num_detected(), before);
  EXPECT_EQ(session.now(), 10u);
}

TEST(TransitionFrameModel, LaunchConditionEncodedInDCalculus) {
  const Netlist nl = wire_circuit();
  const auto w = *nl.find("w");
  FrameModel model(nl, TransitionFault{w, kStemPin, true}, 2);
  // a = 0 then 1: frame 1 must carry D on the wire (good 1, faulty 0).
  model.assign(0, 0, V3::Zero);
  model.assign(1, 0, V3::One);
  model.simulate();
  EXPECT_EQ(model.value(1, w), V5::d());
  EXPECT_TRUE(model.po_detection_frame().has_value());
  // Without the launch (1 then 1) no effect exists.
  model.clear_assignments();
  model.assign(0, 0, V3::One);
  model.assign(1, 0, V3::One);
  model.simulate();
  EXPECT_FALSE(model.po_detection_frame().has_value());
}

TEST(TransitionPodem, FindsLaunchAndCapture) {
  const Netlist nl = wire_circuit();
  FrameModel model(nl, TransitionFault{*nl.find("w"), kStemPin, true}, 3);
  const PodemResult r = run_podem(model, PodemGoal::ObservePo, {100});
  ASSERT_TRUE(r.success);
  EXPECT_GE(r.frames_used, 2u);  // launch needs a predecessor frame

  // Verify with the transition simulator.
  TestSequence seq = r.subsequence;
  Rng rng(3);
  seq.random_fill(rng);
  TransitionFaultSimulator sim(nl);
  const TransitionFault faults[1] = {{*nl.find("w"), kStemPin, true}};
  EXPECT_TRUE(sim.detects_all(seq, faults));
}

TEST(TransitionAtpg, GeneratesOnS27Scan) {
  const ScanCircuit sc = insert_scan(make_s27());
  const TransitionAtpgResult r = generate_transition_tests(sc);
  EXPECT_GT(r.fault_coverage(), 80.0) << r.detected << "/" << r.num_faults;

  // Claims verified independently.
  TransitionFaultSimulator sim(sc.netlist);
  const auto faults = enumerate_transition_faults(sc.netlist);
  const auto check = sim.run(r.sequence, faults);
  std::size_t detected = 0;
  for (std::size_t i = 0; i < check.size(); ++i) {
    ASSERT_EQ(check[i].detected, r.detection[i].detected) << i;
    detected += check[i].detected;
  }
  EXPECT_EQ(detected, r.detected);
}

TEST(TransitionCompaction, PreservesTransitionDetections) {
  const ScanCircuit sc = insert_scan(make_s27());
  const auto faults = enumerate_transition_faults(sc.netlist);
  const TransitionAtpgResult r = generate_transition_tests(sc);

  const CompactionResult rest = restoration_compact(sc.netlist, r.sequence, faults);
  const CompactionResult omit = omission_compact(sc.netlist, rest.sequence, faults);
  EXPECT_LE(omit.sequence.length(), rest.sequence.length());
  EXPECT_LE(rest.sequence.length(), r.sequence.length());

  TransitionFaultSimulator sim(sc.netlist);
  const auto before = sim.run(r.sequence, faults);
  const auto after = sim.run(omit.sequence, faults);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (before[i].detected) {
      EXPECT_TRUE(after[i].detected) << i;
    }
  }
}

}  // namespace
}  // namespace uniscan
