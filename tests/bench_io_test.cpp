#include "netlist/bench_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

TEST(BenchIo, ParsesS27) {
  const Netlist nl = read_bench_string(s27_bench_text(), "s27");
  EXPECT_EQ(nl.num_inputs(), 4u);
  EXPECT_EQ(nl.num_dffs(), 3u);
  EXPECT_EQ(nl.num_outputs(), 1u);
  EXPECT_EQ(nl.gate(nl.outputs()[0]).name, "G17");
  // Flip-flop order matches the description order.
  EXPECT_EQ(nl.gate(nl.dffs()[0]).name, "G5");
  EXPECT_EQ(nl.gate(nl.dffs()[1]).name, "G6");
  EXPECT_EQ(nl.gate(nl.dffs()[2]).name, "G7");
}

TEST(BenchIo, RoundTripPreservesStructure) {
  const Netlist a = make_s27();
  const Netlist b = read_bench_string(write_bench_string(a), "s27");
  EXPECT_EQ(a.num_inputs(), b.num_inputs());
  EXPECT_EQ(a.num_outputs(), b.num_outputs());
  EXPECT_EQ(a.num_dffs(), b.num_dffs());
  EXPECT_EQ(a.num_comb_gates(), b.num_comb_gates());
  for (GateId g = 0; g < a.num_gates(); ++g) {
    const auto found = b.find(a.gate(g).name);
    ASSERT_TRUE(found.has_value()) << a.gate(g).name;
    EXPECT_EQ(b.gate(*found).type, a.gate(g).type);
    EXPECT_EQ(b.gate(*found).fanins.size(), a.gate(g).fanins.size());
  }
}

TEST(BenchIo, ForwardReferencesAllowed) {
  // G2 uses G3, defined later.
  const auto text = R"(
INPUT(a)
OUTPUT(G2)
G2 = NOT(G3)
G3 = BUF(a)
)";
  const Netlist nl = read_bench_string(text, "fwd");
  EXPECT_EQ(nl.num_comb_gates(), 2u);
}

TEST(BenchIo, CommentsAndBlankLinesIgnored) {
  const auto text = R"(
# a comment
INPUT(a)   # trailing comment

OUTPUT(o)
o = NOT(a)
)";
  const Netlist nl = read_bench_string(text, "c");
  EXPECT_EQ(nl.num_inputs(), 1u);
}

TEST(BenchIo, UndefinedNetReported) {
  const auto text = "INPUT(a)\nOUTPUT(o)\no = AND(a, ghost)\n";
  EXPECT_THROW(read_bench_string(text, "bad"), std::runtime_error);
}

TEST(BenchIo, UnknownGateReported) {
  const auto text = "INPUT(a)\nOUTPUT(o)\no = FOO(a)\n";
  EXPECT_THROW(read_bench_string(text, "bad"), std::runtime_error);
}

TEST(BenchIo, DuplicateDefinitionReported) {
  const auto text = "INPUT(a)\nOUTPUT(o)\no = NOT(a)\no = BUF(a)\n";
  EXPECT_THROW(read_bench_string(text, "bad"), std::runtime_error);
}

TEST(BenchIo, OutputOfUndefinedNetReported) {
  const auto text = "INPUT(a)\nOUTPUT(ghost)\nx = NOT(a)\n";
  EXPECT_THROW(read_bench_string(text, "bad"), std::runtime_error);
}

TEST(BenchIo, MalformedAssignmentReported) {
  EXPECT_THROW(read_bench_string("INPUT(a)\no NOT(a)\n", "bad"), std::runtime_error);
  EXPECT_THROW(read_bench_string("INPUT(a)\no = NOT a\n", "bad"), std::runtime_error);
}

TEST(BenchIo, ErrorsCarryLineNumbers) {
  try {
    read_bench_string("INPUT(a)\nOUTPUT(o)\no = FOO(a)\n", "bad");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(BenchIo, MuxAndConstParse) {
  const auto text = R"(
INPUT(a)
INPUT(s)
OUTPUT(o)
c1 = CONST1(  )
o = MUX(a, c1, s)
)";
  const Netlist nl = read_bench_string(text, "m");
  const auto o = nl.find("o");
  ASSERT_TRUE(o);
  EXPECT_EQ(nl.gate(*o).type, GateType::Mux2);
}

TEST(BenchIo, MissingFileThrows) {
  EXPECT_THROW(read_bench_file("/nonexistent/foo.bench"), std::runtime_error);
}

TEST(BenchIo, FileParseErrorsNameTheFile) {
  const std::string path = ::testing::TempDir() + "broken.bench";
  {
    std::ofstream f(path);
    f << "INPUT(a)\nOUTPUT(o)\no = FOO(a)\n";
  }
  try {
    read_bench_file(path);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(BenchIo, CrlfLineEndingsTolerated) {
  const auto text = "INPUT(a)\r\nOUTPUT(o)\r\no = NOT(a)\r\n";
  const Netlist nl = read_bench_string(text, "crlf");
  EXPECT_EQ(nl.num_inputs(), 1u);
  EXPECT_EQ(nl.num_outputs(), 1u);
}

TEST(BenchIo, ContinuationLinesJoined) {
  // Wrapped operand lists (open paren / trailing comma) continue onto the
  // following lines; comments and blank lines may interleave the wrap.
  const auto wrapped = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(o)\n"
                       "o = AND(a,\n        b,   # wrapped mid-list\n\n        c)\n";
  const Netlist nl = read_bench_string(wrapped, "wrap");
  const auto o = nl.find("o");
  ASSERT_TRUE(o);
  EXPECT_EQ(nl.gate(*o).fanins.size(), 3u);
}

TEST(BenchIo, ContinuationAfterEquals) {
  const auto text = "INPUT(a)\nOUTPUT(o)\no =\n  NOT(a)\n";
  const Netlist nl = read_bench_string(text, "wrap");
  EXPECT_EQ(nl.num_comb_gates(), 1u);
}

TEST(BenchIo, UnterminatedContinuationReported) {
  try {
    read_bench_string("INPUT(a)\nOUTPUT(o)\no = AND(a,\n", "bad");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("unterminated"), std::string::npos) << e.what();
  }
}

TEST(BenchIo, SpellingVariantsAccepted) {
  // BUFF/INV synonyms and lower-case keywords all parse.
  const auto text = "INPUT(a)\nOUTPUT(o)\nb1 = BUFF(a)\nb2 = buff(b1)\n"
                    "n1 = INV(b2)\nd = dff(n1)\no = not(d)\n";
  const Netlist nl = read_bench_string(text, "variants");
  EXPECT_EQ(nl.num_dffs(), 1u);
  EXPECT_EQ(nl.gate(*nl.find("n1")).type, GateType::Not);
  EXPECT_EQ(nl.gate(*nl.find("b2")).type, GateType::Buf);
}

TEST(BenchIo, DuplicateInputReported) {
  try {
    read_bench_string("INPUT(a)\nINPUT(a)\nOUTPUT(o)\no = NOT(a)\n", "bad");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("duplicate INPUT"), std::string::npos) << e.what();
  }
}

TEST(BenchIo, InputRedefinedAsGateReported) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(a)\na = NOT(a)\n", "bad"),
               std::runtime_error);
}

TEST(BenchIo, ArityMismatchReported) {
  // NOT with two operands, MUX with two, AND with none.
  EXPECT_THROW(read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = NOT(a, b)\n", "bad"),
               std::runtime_error);
  EXPECT_THROW(read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = MUX(a, b)\n", "bad"),
               std::runtime_error);
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(o)\no = AND()\n", "bad"),
               std::runtime_error);
}

TEST(BenchIo, TrailingJunkReported) {
  EXPECT_THROW(read_bench_string("INPUT(a) junk\nOUTPUT(o)\no = NOT(a)\n", "bad"),
               std::runtime_error);
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(o)\no = NOT(a) junk\n", "bad"),
               std::runtime_error);
}

TEST(BenchIo, ErrorExcerptsAreCapped) {
  // A pathologically long identifier must not be echoed wholesale into the
  // error message — it is cut to a short excerpt with a "..." marker.
  const std::string huge(500, 'Z');
  try {
    read_bench_string("INPUT(a)\no = " + huge + "(a)\n", "bad");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_LT(what.size(), 200u) << what;
    EXPECT_NE(what.find("..."), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace uniscan
