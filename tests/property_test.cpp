// Parameterized property tests: cross-circuit and cross-seed invariant
// sweeps over the whole stack.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/uniscan.hpp"

namespace uniscan {
namespace {

// ---------------------------------------------------------------------------
// Property: scan insertion preserves functional behaviour (scan_sel = 0)
// for every suite circuit and any chain count.
// ---------------------------------------------------------------------------

struct ScanParam {
  const char* circuit;
  std::size_t chains;
};

class ScanPreservation : public ::testing::TestWithParam<ScanParam> {};

TEST_P(ScanPreservation, FunctionalModeEquivalence) {
  const auto [name, chains] = GetParam();
  const Netlist c = load_circuit(*find_suite_entry(name));
  if (chains > c.num_dffs()) GTEST_SKIP();
  const ScanCircuit sc = insert_scan(c, chains);

  const SequentialSimulator sim_c(c);
  const SequentialSimulator sim_s(sc.netlist);
  Rng rng(0xabcdef);
  State state_c(c.num_dffs(), V3::X);
  State state_s(c.num_dffs(), V3::X);
  for (int t = 0; t < 32; ++t) {
    std::vector<V3> pi(c.num_inputs());
    for (auto& v : pi) v = rng.next_bool() ? V3::One : V3::Zero;
    std::vector<V3> pi_scan = pi;
    pi_scan.resize(sc.netlist.num_inputs(), V3::Zero);
    pi_scan[sc.scan_sel_index()] = V3::Zero;

    const FrameValues fc = sim_c.step(state_c, pi);
    const FrameValues fs = sim_s.step(state_s, pi_scan);
    for (std::size_t o = 0; o < c.num_outputs(); ++o)
      ASSERT_EQ(fc.po[o], fs.po[o]) << name << " chains=" << chains << " t=" << t;
    ASSERT_EQ(fc.next_state, fs.next_state);
    state_c = fc.next_state;
    state_s = fs.next_state;
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, ScanPreservation,
                         ::testing::Values(ScanParam{"s27", 1}, ScanParam{"s27", 3},
                                           ScanParam{"b01", 1}, ScanParam{"b01", 2},
                                           ScanParam{"b02", 1}, ScanParam{"s208", 1},
                                           ScanParam{"s208", 4}, ScanParam{"s298", 2}),
                         [](const auto& info) {
                           return std::string(info.param.circuit) + "_chains" +
                                  std::to_string(info.param.chains);
                         });

// ---------------------------------------------------------------------------
// Property: scan load reaches any target state, for every suite circuit and
// several random states, including through multiple chains.
// ---------------------------------------------------------------------------

class ScanLoadReachesState : public ::testing::TestWithParam<ScanParam> {};

TEST_P(ScanLoadReachesState, LoadsExactTarget) {
  const auto [name, chains] = GetParam();
  const Netlist c = load_circuit(*find_suite_entry(name));
  if (chains > c.num_dffs()) GTEST_SKIP();
  const ScanCircuit sc = insert_scan(c, chains);
  const SequentialSimulator sim(sc.netlist);
  Rng rng(name[0] * 131 + chains);

  for (int round = 0; round < 4; ++round) {
    State target(sc.netlist.num_dffs());
    for (auto& v : target) v = rng.next_bool() ? V3::One : V3::Zero;
    const TestSequence load = make_scan_load_all(sc, target, rng);
    EXPECT_EQ(load.length(), sc.max_chain_length());
    const SimTrace trace = sim.simulate(load, sim.initial_state());
    ASSERT_EQ(trace.state.back(), target) << name << " chains=" << chains;
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, ScanLoadReachesState,
                         ::testing::Values(ScanParam{"s27", 1}, ScanParam{"s27", 2},
                                           ScanParam{"b01", 1}, ScanParam{"b01", 3},
                                           ScanParam{"s208", 1}, ScanParam{"s208", 3},
                                           ScanParam{"s298", 1}, ScanParam{"s298", 4}),
                         [](const auto& info) {
                           return std::string(info.param.circuit) + "_chains" +
                                  std::to_string(info.param.chains);
                         });

// ---------------------------------------------------------------------------
// Property: for any seed, compaction preserves the detected-fault set and
// never lengthens the sequence (restoration AND omission).
// ---------------------------------------------------------------------------

class CompactionSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompactionSoundness, DetectionPreservedAcrossSeeds) {
  const std::uint64_t seed = GetParam();
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  AtpgOptions opt;
  opt.seed = seed;
  const AtpgResult atpg = generate_tests(sc, fl, opt);

  FaultSimulator sim(sc.netlist);
  const auto before = sim.detected_indices(atpg.sequence, fl.faults());

  const CompactionResult rest = restoration_compact(sc.netlist, atpg.sequence, fl.faults());
  const CompactionResult omit = omission_compact(sc.netlist, rest.sequence, fl.faults());
  ASSERT_LE(rest.sequence.length(), atpg.sequence.length());
  ASSERT_LE(omit.sequence.length(), rest.sequence.length());

  const auto after = sim.detected_indices(omit.sequence, fl.faults());
  for (std::size_t f : before)
    EXPECT_TRUE(std::find(after.begin(), after.end(), f) != after.end())
        << "seed " << seed << " lost fault " << f;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactionSoundness,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ---------------------------------------------------------------------------
// Property: the detection set reported by the generator matches an
// independent fault simulation, across circuits.
// ---------------------------------------------------------------------------

class GeneratorVerification : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratorVerification, IndependentSimulationAgrees) {
  const Netlist c = load_circuit(*find_suite_entry(GetParam()));
  const ScanCircuit sc = insert_scan(c);
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const AtpgResult r = generate_tests(sc, fl, {});

  FaultSimulator sim(sc.netlist);
  const auto check = sim.run(r.sequence, fl.faults());
  std::size_t detected = 0;
  for (std::size_t i = 0; i < check.size(); ++i) {
    ASSERT_EQ(check[i].detected, r.detection[i].detected) << "fault " << i;
    detected += check[i].detected;
  }
  EXPECT_EQ(detected, r.detected);
  EXPECT_GE(r.fault_coverage(), 90.0);
}

INSTANTIATE_TEST_SUITE_P(Suite, GeneratorVerification,
                         ::testing::Values("s27", "b01", "b02", "b06"));

// ---------------------------------------------------------------------------
// Property: translation preserves the baseline's detected set across seeds
// (the Section-3 guarantee on the sets our baseline produces).
// ---------------------------------------------------------------------------

class TranslationSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TranslationSoundness, BaselineDetectionsSurviveTranslation) {
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  BaselineOptions opt;
  opt.seed = GetParam();
  const BaselineResult base = generate_baseline_tests(sc, fl, opt);

  // Re-translate the test set independently and fault-simulate.
  TranslationOptions topt;
  topt.seed = GetParam() + 99;
  const TestSequence seq = translate_test_set(sc, base.test_set, topt);
  EXPECT_EQ(seq.length(), base.application_cycles());

  FaultSimulator sim(sc.netlist);
  const auto det = sim.detected_indices(seq, fl.faults());
  // The independent translation uses different x-fill values, so faults
  // whose detection hinged on a particular random fill may differ in either
  // direction. The property checked is that the deterministic core carries
  // over: coverage stays within ~12% of the baseline's.
  EXPECT_GE(det.size() + base.detected / 8, base.detected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TranslationSoundness, ::testing::Values(11u, 12u, 13u, 14u));

}  // namespace
}  // namespace uniscan
