// Exhaustive checks of the five-valued D-calculus: pair evaluation must
// equal independent 3-valued evaluation of the good and faulty components,
// for every gate type and every input combination.
#include "atpg/dcalc.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "sim/sequential_sim.hpp"

namespace uniscan {
namespace {

constexpr std::array<V3, 3> kAll = {V3::Zero, V3::One, V3::X};

std::vector<V5> all_pairs() {
  std::vector<V5> out;
  for (V3 g : kAll)
    for (V3 f : kAll) out.push_back(V5{g, f});
  return out;
}

class PairAlgebra : public ::testing::TestWithParam<GateType> {};

TEST_P(PairAlgebra, TwoInputExhaustive) {
  const GateType type = GetParam();
  for (const V5 a : all_pairs()) {
    for (const V5 b : all_pairs()) {
      const V5 in[2] = {a, b};
      const V5 out = eval_gate_v5(type, in, 2);
      const V3 good_in[2] = {a.good, b.good};
      const V3 faulty_in[2] = {a.faulty, b.faulty};
      EXPECT_EQ(out.good, eval_gate_v3(type, good_in, 2));
      EXPECT_EQ(out.faulty, eval_gate_v3(type, faulty_in, 2));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Gates, PairAlgebra,
                         ::testing::Values(GateType::And, GateType::Nand, GateType::Or,
                                           GateType::Nor, GateType::Xor, GateType::Xnor),
                         [](const auto& info) {
                           return std::string(gate_type_name(info.param));
                         });

TEST(PairAlgebra, SingleInputExhaustive) {
  for (const V5 a : all_pairs()) {
    const V5 in[1] = {a};
    EXPECT_EQ(eval_gate_v5(GateType::Not, in, 1),
              (V5{v3_not(a.good), v3_not(a.faulty)}));
    EXPECT_EQ(eval_gate_v5(GateType::Buf, in, 1), a);
  }
}

TEST(PairAlgebra, MuxExhaustive) {
  for (const V5 d0 : all_pairs())
    for (const V5 d1 : all_pairs())
      for (const V5 sel : all_pairs()) {
        const V5 in[3] = {d0, d1, sel};
        const V5 out = eval_gate_v5(GateType::Mux2, in, 3);
        EXPECT_EQ(out.good, v3_mux(d0.good, d1.good, sel.good));
        EXPECT_EQ(out.faulty, v3_mux(d0.faulty, d1.faulty, sel.faulty));
      }
}

TEST(PairAlgebra, DPropagationIdentities) {
  // The classical D-calculus identities fall out of component evaluation.
  const auto check2 = [](GateType t, V5 a, V5 b, V5 expect) {
    const V5 in[2] = {a, b};
    EXPECT_EQ(eval_gate_v5(t, in, 2), expect)
        << gate_type_name(t) << "(" << v5_to_char(a) << ", " << v5_to_char(b) << ")";
  };
  check2(GateType::And, V5::d(), V5::one(), V5::d());
  check2(GateType::And, V5::d(), V5::zero(), V5::zero());
  check2(GateType::And, V5::d(), V5::d(), V5::d());
  check2(GateType::And, V5::d(), V5::dbar(), V5::zero());
  check2(GateType::Or, V5::dbar(), V5::zero(), V5::dbar());
  check2(GateType::Or, V5::d(), V5::dbar(), V5::one());
  check2(GateType::Xor, V5::d(), V5::one(), V5::dbar());
  check2(GateType::Nand, V5::d(), V5::one(), V5::dbar());
  check2(GateType::Nor, V5::dbar(), V5::zero(), V5::d());
}

TEST(PairAlgebra, XMasksD) {
  // An X side input absorbs the effect on AND/OR (pessimistic).
  const V5 in_and[2] = {V5::d(), V5::x()};
  EXPECT_EQ(eval_gate_v5(GateType::And, in_and, 2), (V5{V3::X, V3::Zero}));
  const V5 in_or[2] = {V5::d(), V5::x()};
  EXPECT_EQ(eval_gate_v5(GateType::Or, in_or, 2), (V5{V3::One, V3::X}));
}

}  // namespace
}  // namespace uniscan
