#include "baseline/comb_atpg.hpp"
#include "baseline/scan_testset_gen.hpp"

#include <gtest/gtest.h>

#include "fault/fault_list.hpp"
#include "sim/fault_sim.hpp"
#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

TEST(Baseline, CoversS27) {
  const ScanCircuit sc = insert_scan(make_s27());
  const BaselineResult r = generate_baseline_tests(sc);
  EXPECT_GE(r.fault_coverage(), 95.0) << r.detected << "/" << r.num_faults;
  EXPECT_FALSE(r.test_set.tests.empty());
}

TEST(Baseline, TranslatedSequenceLengthEqualsCycleCount) {
  const ScanCircuit sc = insert_scan(make_s27());
  const BaselineResult r = generate_baseline_tests(sc);
  EXPECT_EQ(r.translated.length(), r.application_cycles());
  EXPECT_EQ(r.test_set.chain_length, sc.chain().cells.size());
}

TEST(Baseline, TestsRespectSequenceLengthBound) {
  const ScanCircuit sc = insert_scan(make_s27());
  BaselineOptions opt;
  opt.max_seq_len = 2;
  const BaselineResult r = generate_baseline_tests(sc, opt);
  for (const ScanTest& t : r.test_set.tests) {
    EXPECT_GE(t.vectors.size(), 1u);
    EXPECT_LE(t.vectors.size(), 2u);
    EXPECT_EQ(t.scan_in.size(), sc.chain().cells.size());
  }
}

TEST(Baseline, DetectionConfirmedOnTranslatedSequence) {
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const BaselineResult r = generate_baseline_tests(sc, fl, {});
  FaultSimulator sim(sc.netlist);
  const auto check = sim.run(r.translated, fl.faults());
  std::size_t detected = 0;
  for (std::size_t i = 0; i < check.size(); ++i) {
    EXPECT_EQ(check[i].detected, r.detection[i].detected);
    detected += check[i].detected;
  }
  EXPECT_EQ(detected, r.detected);
}

TEST(Baseline, FunctionalVectorsKeepScanSelLow) {
  // In the translated sequence, exactly the shift vectors hold scan_sel=1:
  // per test N shifts, then |T| functional, then N final shifts.
  const ScanCircuit sc = insert_scan(make_s27());
  const BaselineResult r = generate_baseline_tests(sc);
  const std::size_t n = sc.chain().cells.size();
  std::size_t t = 0;
  for (const ScanTest& test : r.test_set.tests) {
    for (std::size_t k = 0; k < n; ++k)
      EXPECT_EQ(r.translated.at(t++, sc.scan_sel_index()), V3::One);
    for (std::size_t k = 0; k < test.vectors.size(); ++k)
      EXPECT_EQ(r.translated.at(t++, sc.scan_sel_index()), V3::Zero);
  }
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_EQ(r.translated.at(t++, sc.scan_sel_index()), V3::One);
  EXPECT_EQ(t, r.translated.length());
}

TEST(Baseline, CompactionPassReducesOrKeepsTestCount) {
  const ScanCircuit sc = insert_scan(make_s27());
  BaselineOptions with, without;
  with.compact_test_set = true;
  without.compact_test_set = false;
  const BaselineResult a = generate_baseline_tests(sc, with);
  const BaselineResult b = generate_baseline_tests(sc, without);
  EXPECT_LE(a.test_set.tests.size(), b.test_set.tests.size());
  // Compaction must not lose coverage.
  EXPECT_GE(a.detected + 1, b.detected);  // allow 1 fault of slack from x-fill randomness
}

TEST(Baseline, FirstApproachIsSingleVector) {
  const ScanCircuit sc = insert_scan(make_s27());
  const BaselineResult r = generate_comb_scan_tests(sc);
  for (const ScanTest& t : r.test_set.tests) EXPECT_EQ(t.vectors.size(), 1u);
  EXPECT_GE(r.fault_coverage(), 90.0);
}

TEST(Baseline, SecondApproachComparableToFirst) {
  // Longer functional sequences per scan load should not need many MORE
  // cycles than one-vector-per-load on the same engine (the paper's
  // motivation for the second approach). Greedy test selection is noisy on a
  // 3-FF circuit, so allow one scan operation of slack.
  const ScanCircuit sc = insert_scan(make_s27());
  const BaselineResult first = generate_comb_scan_tests(sc);
  const BaselineResult second = generate_baseline_tests(sc);
  EXPECT_LE(second.application_cycles(),
            first.application_cycles() + sc.chain().cells.size() + 1);
}

TEST(Baseline, DeterministicForFixedSeed) {
  const ScanCircuit sc = insert_scan(make_s27());
  const BaselineResult a = generate_baseline_tests(sc);
  const BaselineResult b = generate_baseline_tests(sc);
  EXPECT_EQ(a.translated, b.translated);
  EXPECT_EQ(a.test_set.tests.size(), b.test_set.tests.size());
}

}  // namespace
}  // namespace uniscan
