#include "atpg/ndetect.hpp"

#include <gtest/gtest.h>

#include "sim/fault_sim.hpp"
#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

TEST(RunCounts, CapOneMatchesDetection) {
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const AtpgResult atpg = generate_tests(sc, fl, {});
  FaultSimulator sim(sc.netlist);
  const auto counts = sim.run_counts(atpg.sequence, fl.faults(), 1);
  const auto records = sim.run(atpg.sequence, fl.faults());
  for (std::size_t i = 0; i < fl.size(); ++i)
    EXPECT_EQ(counts[i] == 1, records[i].detected) << i;
}

TEST(RunCounts, CountsAreMonotoneInCap) {
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const AtpgResult atpg = generate_tests(sc, fl, {});
  FaultSimulator sim(sc.netlist);
  const auto c1 = sim.run_counts(atpg.sequence, fl.faults(), 1);
  const auto c3 = sim.run_counts(atpg.sequence, fl.faults(), 3);
  const auto c9 = sim.run_counts(atpg.sequence, fl.faults(), 9);
  for (std::size_t i = 0; i < fl.size(); ++i) {
    EXPECT_LE(c1[i], c3[i]);
    EXPECT_LE(c3[i], c9[i]);
    EXPECT_LE(c1[i], 1u);
    EXPECT_LE(c3[i], 3u);
  }
}

TEST(RunCounts, LongerSequencesCountMore) {
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const AtpgResult atpg = generate_tests(sc, fl, {});
  TestSequence doubled = atpg.sequence;
  doubled.append_sequence(atpg.sequence);
  FaultSimulator sim(sc.netlist);
  const auto once = sim.run_counts(atpg.sequence, fl.faults(), 10);
  const auto twice = sim.run_counts(doubled, fl.faults(), 10);
  std::size_t grew = 0;
  for (std::size_t i = 0; i < fl.size(); ++i) {
    EXPECT_GE(twice[i], once[i]) << i;
    grew += twice[i] > once[i];
  }
  EXPECT_GT(grew, fl.size() / 4);
}

TEST(NDetect, ReachesTargetOnS27) {
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  NDetectOptions opt;
  opt.n = 3;
  opt.compact = false;
  const NDetectResult r = generate_n_detect_tests(sc, fl, opt);
  EXPECT_EQ(r.detected, fl.size());
  // Nearly every fault should reach 3 detections across 3 rounds.
  EXPECT_GE(r.satisfied, fl.size() * 9 / 10) << r.satisfied << "/" << fl.size();
}

TEST(NDetect, CompactionPreservesCounts) {
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  NDetectOptions raw, compacted;
  raw.n = compacted.n = 2;
  raw.compact = false;
  compacted.compact = true;
  const NDetectResult a = generate_n_detect_tests(sc, fl, raw);
  const NDetectResult b = generate_n_detect_tests(sc, fl, compacted);
  EXPECT_LE(b.sequence.length(), a.sequence.length());
  EXPECT_GE(b.satisfied, a.satisfied);
  EXPECT_GE(b.detected, a.detected);
}

TEST(NDetect, NOneDegeneratesToSingleDetection) {
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  NDetectOptions opt;
  opt.n = 1;
  opt.compact = false;
  const NDetectResult r = generate_n_detect_tests(sc, fl, opt);
  EXPECT_EQ(r.satisfied, r.detected);
  EXPECT_EQ(r.detected, fl.size());
}

}  // namespace
}  // namespace uniscan
