#include "compact/omission.hpp"
#include "compact/restoration.hpp"

#include <gtest/gtest.h>

#include "atpg/seq_atpg.hpp"
#include "fault/fault_list.hpp"
#include "scan/scan_insertion.hpp"
#include "sim/fault_sim.hpp"
#include "util/rng.hpp"
#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

struct Fixture {
  ScanCircuit sc = insert_scan(make_s27());
  FaultList fl = FaultList::collapsed(sc.netlist);
  AtpgResult atpg = generate_tests(sc, fl, {});
};

std::vector<std::size_t> detected_set(const Netlist& nl, const TestSequence& seq,
                                      std::span<const Fault> faults) {
  FaultSimulator sim(nl);
  return sim.detected_indices(seq, faults);
}

TEST(Restoration, PreservesDetectedFaults) {
  Fixture fx;
  const auto before = detected_set(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults());
  const CompactionResult r =
      restoration_compact(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults());
  const auto after = detected_set(fx.sc.netlist, r.sequence, fx.fl.faults());
  // after ⊇ before
  std::size_t covered = 0;
  for (std::size_t f : before)
    covered += std::find(after.begin(), after.end(), f) != after.end();
  EXPECT_EQ(covered, before.size());
}

TEST(Restoration, NeverLengthens) {
  Fixture fx;
  const CompactionResult r =
      restoration_compact(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults());
  EXPECT_LE(r.sequence.length(), fx.atpg.sequence.length());
  EXPECT_EQ(r.original_length, fx.atpg.sequence.length());
  EXPECT_EQ(r.vectors_removed, fx.atpg.sequence.length() - r.sequence.length());
}

TEST(Restoration, ShortensGeneratedSequences) {
  // The Section-2 generator uses no compaction heuristics; restoration must
  // find slack (the paper's Table 6 shows large reductions).
  Fixture fx;
  const CompactionResult r =
      restoration_compact(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults());
  EXPECT_LT(r.sequence.length(), fx.atpg.sequence.length());
}

TEST(Restoration, KeepsOriginalVectorOrder) {
  Fixture fx;
  const CompactionResult r =
      restoration_compact(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults());
  // Every compacted vector must appear in the original sequence (restoration
  // only selects, never rewrites). Check by value multiset inclusion on a
  // rolling scan.
  std::size_t orig_pos = 0;
  for (std::size_t t = 0; t < r.sequence.length(); ++t) {
    bool found = false;
    while (orig_pos < fx.atpg.sequence.length()) {
      if (fx.atpg.sequence.vector_at(orig_pos++) == r.sequence.vector_at(t)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "vector " << t << " not in original order";
  }
}

TEST(Omission, PreservesDetectedFaults) {
  Fixture fx;
  const auto before = detected_set(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults());
  const CompactionResult r = omission_compact(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults());
  const auto after = detected_set(fx.sc.netlist, r.sequence, fx.fl.faults());
  std::size_t covered = 0;
  for (std::size_t f : before)
    covered += std::find(after.begin(), after.end(), f) != after.end();
  EXPECT_EQ(covered, before.size());
}

TEST(Omission, ReachesLocalMinimum) {
  // After omission converges, removing ANY single vector must lose coverage.
  Fixture fx;
  OmissionOptions opt;
  opt.max_passes = 10;  // run to convergence on this small case
  const CompactionResult r =
      omission_compact(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults(), opt);
  FaultSimulator sim(fx.sc.netlist);
  std::vector<Fault> must;
  const auto det = sim.run(r.sequence, fx.fl.faults());
  const auto base = sim.run(fx.atpg.sequence, fx.fl.faults());
  for (std::size_t i = 0; i < fx.fl.size(); ++i)
    if (base[i].detected) must.push_back(fx.fl[i]);
  for (std::size_t t = 0; t < r.sequence.length(); ++t) {
    TestSequence trial = r.sequence;
    trial.erase(t);
    EXPECT_FALSE(sim.detects_all(trial, must)) << "vector " << t << " still removable";
  }
}

TEST(Omission, AfterRestorationShrinksFurtherOrEqual) {
  // The paper's pipeline: restoration first, then omission (Table 6
  // `omit len` <= `restor len`).
  Fixture fx;
  const CompactionResult rest =
      restoration_compact(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults());
  const CompactionResult omit =
      omission_compact(fx.sc.netlist, rest.sequence, fx.fl.faults());
  EXPECT_LE(omit.sequence.length(), rest.sequence.length());
}

TEST(Omission, FrontToBackOrderAlsoSound) {
  Fixture fx;
  OmissionOptions opt;
  opt.back_to_front = false;
  const auto before = detected_set(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults());
  const CompactionResult r =
      omission_compact(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults(), opt);
  const auto after = detected_set(fx.sc.netlist, r.sequence, fx.fl.faults());
  std::size_t covered = 0;
  for (std::size_t f : before)
    covered += std::find(after.begin(), after.end(), f) != after.end();
  EXPECT_EQ(covered, before.size());
}

TEST(Restoration, SegmentPruningSoundAndNotWorse) {
  Fixture fx;
  RestorationOptions plain, pruned;
  pruned.prune_segments = true;
  const CompactionResult a =
      restoration_compact(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults(), plain);
  const CompactionResult b =
      restoration_compact(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults(), pruned);
  EXPECT_LE(b.sequence.length(), a.sequence.length());

  const auto before = detected_set(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults());
  const auto after = detected_set(fx.sc.netlist, b.sequence, fx.fl.faults());
  for (std::size_t f : before)
    EXPECT_TRUE(std::find(after.begin(), after.end(), f) != after.end()) << f;
}

TEST(Compaction, EmptySequenceIsFixpoint) {
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const TestSequence empty(sc.netlist.num_inputs());
  const CompactionResult a = restoration_compact(sc.netlist, empty, fl.faults());
  const CompactionResult b = omission_compact(sc.netlist, empty, fl.faults());
  EXPECT_EQ(a.sequence.length(), 0u);
  EXPECT_EQ(b.sequence.length(), 0u);
}

TEST(Compaction, UselessVectorsAreRemoved) {
  // A sequence padded with vectors that detect nothing new must shrink to at
  // most the informative prefix length.
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  Rng rng(55);
  TestSequence seq(sc.netlist.num_inputs());
  for (int t = 0; t < 10; ++t) seq.append_x();
  seq.random_fill(rng);
  // Duplicate the whole block: the second half adds nothing the first half
  // did not already do from the same reset-free state... not guaranteed in a
  // sequential circuit, so check the weaker invariant: omission never grows
  // and preserves coverage.
  TestSequence doubled = seq;
  doubled.append_sequence(seq);
  const auto before = detected_set(sc.netlist, doubled, fl.faults());
  const CompactionResult r = omission_compact(sc.netlist, doubled, fl.faults());
  EXPECT_LE(r.sequence.length(), doubled.length());
  const auto after = detected_set(sc.netlist, r.sequence, fl.faults());
  EXPECT_GE(after.size(), before.size());
}

}  // namespace
}  // namespace uniscan
