// Counter-equivalence tier for the telemetry registry (DESIGN.md §5g): the
// process-wide counter totals must be bit-identical at any thread count.
// The wave-scheduled deterministic fail-fast (sim/fault_sim.hpp
// kFailFastWave) makes the set of executed batch advances — and therefore
// every counter — a pure function of the input, so these tests compare
// EXACT equality of whole CounterArrays, not tolerances.
#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/uniscan.hpp"

namespace uniscan {
namespace {

struct PoolGuard {
  explicit PoolGuard(std::size_t n) { ThreadPool::set_global_threads(n); }
  ~PoolGuard() { ThreadPool::set_global_threads(1); }
};

const std::size_t kThreadCounts[] = {1, 2, 4, 8};

std::vector<SuiteEntry> small_suite() {
  return {*find_suite_entry("s27"), *find_suite_entry("b01"), *find_suite_entry("b02")};
}

/// Totals of the full stuck-at flow (generation + both compactions +
/// verification) over the small suite at `threads` workers.
obs::CounterArray stuck_at_totals(std::size_t threads) {
  const PoolGuard pool(threads);
  obs::reset();
  PipelineConfig cfg;
  cfg.run_baseline = false;
  run_suite_generate_and_compact(small_suite(), cfg);
  return obs::totals();
}

/// Totals of the transition-fault flow (table8's shape) at `threads`.
obs::CounterArray transition_totals(std::size_t threads) {
  const PoolGuard pool(threads);
  obs::reset();
  const auto suite = small_suite();
  run_suite_tasks(suite.size(), [&](std::size_t i) {
    const ScanCircuit sc = insert_scan(load_circuit(suite[i]));
    const auto faults = enumerate_transition_faults(sc.netlist);
    const TransitionAtpgResult r = generate_transition_tests(sc, faults, {});
    const CompactionResult rest = restoration_compact(sc.netlist, r.sequence, faults, {});
    omission_compact(sc.netlist, rest.sequence, faults, {});
    return 0;
  });
  return obs::totals();
}

std::string diff_string(const obs::CounterArray& a, const obs::CounterArray& b) {
  std::string out;
  for (std::size_t i = 0; i < obs::kNumCounters; ++i)
    if (a[i] != b[i])
      out += std::string(obs::counter_name(static_cast<obs::Counter>(i))) + ": " +
             std::to_string(a[i]) + " vs " + std::to_string(b[i]) + "  ";
  return out;
}

TEST(ObsCounters, StuckAtTotalsBitIdenticalAcrossThreadCounts) {
  const obs::CounterArray base = stuck_at_totals(1);
  EXPECT_GT(base[std::size_t(obs::Counter::GateEvals)], 0u);
  EXPECT_GT(base[std::size_t(obs::Counter::OmissionTrials)], 0u);
  for (std::size_t t : kThreadCounts) {
    const obs::CounterArray got = stuck_at_totals(t);
    EXPECT_EQ(got, base) << "threads=" << t << ": " << diff_string(got, base);
  }
}

TEST(ObsCounters, TransitionTotalsBitIdenticalAcrossThreadCounts) {
  const obs::CounterArray base = transition_totals(1);
  EXPECT_GT(base[std::size_t(obs::Counter::GateEvals)], 0u);
  for (std::size_t t : kThreadCounts) {
    const obs::CounterArray got = transition_totals(t);
    EXPECT_EQ(got, base) << "threads=" << t << ": " << diff_string(got, base);
  }
}

// ---------------------------------------------------------------------------
// Stability under fault injection: a failed stage contributes no per-stage
// rows, and the healthy circuits' per-stage counter rows are unchanged from
// a clean run (suite isolation keeps their work bit-identical).

struct IsolatedRun {
  std::vector<TaskOutcome<GenerateCompactReport>> outcomes;
  obs::CounterArray totals{};
};

IsolatedRun run_isolated(std::size_t threads) {
  const PoolGuard pool(threads);
  obs::reset();
  PipelineConfig cfg;
  cfg.run_baseline = false;
  IsolatedRun r;
  r.outcomes = run_suite_generate_and_compact_isolated(small_suite(), cfg);
  r.totals = obs::totals();
  return r;
}

struct InjectGuard {
  explicit InjectGuard(const char* spec) { ::setenv("UNISCAN_FAULT_INJECT", spec, 1); }
  ~InjectGuard() { ::unsetenv("UNISCAN_FAULT_INJECT"); }
};

TEST(ObsCounters, FaultInjectionLeavesHealthyRowsUnchanged) {
  const IsolatedRun clean = run_isolated(1);
  for (const auto& o : clean.outcomes) ASSERT_FALSE(o.failed());

  const InjectGuard inject("b01:atpg");
  const IsolatedRun injected = run_isolated(1);

  ASSERT_EQ(injected.outcomes.size(), clean.outcomes.size());
  for (std::size_t i = 0; i < injected.outcomes.size(); ++i) {
    if (small_suite()[i].name == "b01") {
      EXPECT_TRUE(injected.outcomes[i].failed());
      // The aborted circuit's report is the default-constructed slot: no
      // stage rows survive from the failed flow.
      EXPECT_TRUE(injected.outcomes[i].value.stages.empty());
      continue;
    }
    ASSERT_FALSE(injected.outcomes[i].failed());
    const auto& got = injected.outcomes[i].value.stages;
    const auto& want = clean.outcomes[i].value.stages;
    ASSERT_EQ(got.size(), want.size()) << small_suite()[i].name;
    for (std::size_t s = 0; s < got.size(); ++s) {
      EXPECT_EQ(got[s].name, want[s].name);
      EXPECT_EQ(got[s].counters, want[s].counters)
          << small_suite()[i].name << "/" << got[s].name << ": "
          << diff_string(got[s].counters, want[s].counters);
    }
  }
}

TEST(ObsCounters, FaultInjectionTotalsStableAcrossThreadCounts) {
  const InjectGuard inject("b01:atpg");
  const IsolatedRun base = run_isolated(1);
  for (std::size_t t : kThreadCounts) {
    const IsolatedRun got = run_isolated(t);
    EXPECT_EQ(got.totals, base.totals)
        << "threads=" << t << ": " << diff_string(got.totals, base.totals);
  }
}

}  // namespace
}  // namespace uniscan
