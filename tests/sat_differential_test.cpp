// Differential oracle for the SAT engine (DESIGN.md §5l) over the fast
// corpus tier: PODEM and the CNF miter search the SAME space (fully
// specified (SI, T) tests of at most `frames` vectors, ScanObserve
// observation), so wherever both complete they must agree —
//
//   * PODEM finds a test        -> SAT must report Testable
//   * PODEM exhausts the space  -> SAT must report RedundantProved
//   * SAT reports Testable      -> the decoded (SI, T) artifacts must
//                                  replay to a real detection in an
//                                  independently constructed FrameModel
//
// Aborts on either side make no claim (PR 4) and skip the comparison.
// Failures name the circuit, the fault, and the unrolled depth.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>

#include "atpg/frame_model.hpp"
#include "atpg/podem.hpp"
#include "corpus/corpus.hpp"
#include "fault/fault.hpp"
#include "fault/fault_list.hpp"
#include "sat/sat_engine.hpp"
#include "scan/scan_insertion.hpp"
#include "sim/compiled_netlist.hpp"
#include "workloads/suite.hpp"

namespace uniscan {
namespace {

constexpr std::size_t kDepth = 1;           // unrolled frames for both engines
constexpr int kPodemBacktracks = 5000;      // generous: most faults resolve
constexpr std::size_t kMaxFaultsPerCircuit = 40;

/// Replay a SAT Testable verdict from its decoded artifacts alone — scan-in
/// state plus PI vectors — through a freshly built FrameModel, trusting
/// nothing the engine computed beyond those artifacts.
void expect_replay_detects(const CompiledNetlist& compiled, const Fault& fault,
                           const sat::SatResult& sr) {
  ASSERT_GE(sr.frames_used, 1u);
  ASSERT_LE(sr.frames_used, kDepth);
  FrameModel replay(compiled, fault, sr.frames_used);
  replay.set_state_assignable(true);
  for (std::size_t d = 0; d < sr.scan_in.size(); ++d) replay.assign_state(d, sr.scan_in[d]);
  ASSERT_EQ(sr.subsequence.length(), sr.frames_used);
  for (std::size_t t = 0; t < sr.subsequence.length(); ++t)
    for (std::size_t pi = 0; pi < sr.subsequence.num_inputs(); ++pi)
      replay.assign(t, pi, sr.subsequence.at(t, pi));
  replay.simulate();
  if (sr.observed_at_po) {
    ASSERT_TRUE(replay.po_detection_frame().has_value())
        << "SAT claimed a PO observation the replay does not show";
    EXPECT_LT(*replay.po_detection_frame(), sr.frames_used);
  } else {
    ASSERT_TRUE(sr.latched_dff.has_value());
    ASSERT_TRUE(replay.first_latched_effect().has_value())
        << "SAT claimed a latched observation the replay does not show";
  }
}

TEST(SatDifferential, FastCorpusAgreesWithPodem) {
  const auto suite = CorpusRegistry::global().suite_entries(CorpusTier::Fast);
  ASSERT_FALSE(suite.empty()) << "fast corpus tier is empty";

  std::size_t compared = 0, sat_aborted = 0, podem_open = 0;
  for (const SuiteEntry& entry : suite) {
    SCOPED_TRACE("circuit " + entry.name);
    const Netlist c = load_circuit(entry);
    const ScanCircuit sc = insert_scan(c);
    const CompiledNetlist compiled(sc.netlist);
    const FaultList fl = FaultList::collapsed(sc.netlist);
    const sat::SatEngine engine(compiled);

    const std::size_t stride = std::max<std::size_t>(1, fl.size() / kMaxFaultsPerCircuit);
    for (std::size_t fi = 0; fi < fl.size(); fi += stride) {
      const Fault& fault = fl[fi];
      SCOPED_TRACE("fault " + fault_to_string(sc.netlist, fault) + " depth " +
                   std::to_string(kDepth));

      FrameModel proof(compiled, fault, kDepth);
      proof.set_state_assignable(true);
      const PodemResult pr = run_podem(proof, PodemGoal::ScanObserve, {kPodemBacktracks, {}});
      const bool podem_proved_redundant =
          !pr.success && !pr.aborted && pr.backtracks <= kPodemBacktracks;

      sat::SatEngineOptions sopt;
      sopt.frames = kDepth;
      sopt.state_assignable = true;
      const sat::SatResult sr = engine.prove(fault, sopt);

      if (sr.verdict == sat::SatVerdict::Aborted) {
        ++sat_aborted;  // no claim either way (PR 4)
        continue;
      }
      if (sr.verdict == sat::SatVerdict::Testable) {
        EXPECT_FALSE(podem_proved_redundant)
            << "SAT found a test for a fault PODEM proved redundant";
        expect_replay_detects(compiled, fault, sr);
      } else {  // RedundantProved
        EXPECT_FALSE(pr.success) << "SAT proved UNSAT-at-depth a fault PODEM detects";
      }
      if (pr.success || podem_proved_redundant)
        ++compared;
      else
        ++podem_open;  // PODEM budget ran out: SAT's complete answer stands alone
    }
  }
  // The suite must actually exercise the oracle: a corpus where PODEM never
  // completes (or the sampler skips everything) would pass vacuously.
  EXPECT_GT(compared, 0u);
  RecordProperty("compared", static_cast<int>(compared));
  RecordProperty("sat_aborted", static_cast<int>(sat_aborted));
  RecordProperty("podem_open", static_cast<int>(podem_open));
}

TEST(SatDifferential, DeeperWindowNeverLosesTests) {
  // Monotonicity of the depth-bounded claim: anything Testable at depth 1
  // stays Testable at depth 2 (the encoder adds frames, never constraints
  // that could exclude a shorter test).
  const auto suite = CorpusRegistry::global().suite_entries(CorpusTier::Fast);
  ASSERT_FALSE(suite.empty());
  const SuiteEntry& entry = suite.front();
  SCOPED_TRACE("circuit " + entry.name);
  const ScanCircuit sc = insert_scan(load_circuit(entry));
  const CompiledNetlist compiled(sc.netlist);
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const sat::SatEngine engine(compiled);

  const std::size_t stride = std::max<std::size_t>(1, fl.size() / 10);
  for (std::size_t fi = 0; fi < fl.size(); fi += stride) {
    SCOPED_TRACE("fault " + fault_to_string(sc.netlist, fl[fi]));
    sat::SatEngineOptions one, two;
    one.frames = 1;
    two.frames = 2;
    const sat::SatResult r1 = engine.prove(fl[fi], one);
    if (r1.verdict != sat::SatVerdict::Testable) continue;
    const sat::SatResult r2 = engine.prove(fl[fi], two);
    EXPECT_EQ(r2.verdict, sat::SatVerdict::Testable)
        << "depth-1 test vanished at depth 2";
  }
}

}  // namespace
}  // namespace uniscan
