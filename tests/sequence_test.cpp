#include "sim/sequence.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace uniscan {
namespace {

TEST(Sequence, AppendAndAccess) {
  TestSequence seq(3);
  seq.append({V3::Zero, V3::One, V3::X});
  seq.append_x();
  ASSERT_EQ(seq.length(), 2u);
  EXPECT_EQ(seq.at(0, 1), V3::One);
  EXPECT_EQ(seq.at(1, 2), V3::X);
  seq.set(1, 2, V3::Zero);
  EXPECT_EQ(seq.at(1, 2), V3::Zero);
}

TEST(Sequence, AppendRejectsWidthMismatch) {
  TestSequence seq(2);
  EXPECT_THROW(seq.append({V3::One}), std::invalid_argument);
}

TEST(Sequence, AppendSequenceConcatenates) {
  TestSequence a(2), b(2);
  a.append({V3::One, V3::Zero});
  b.append({V3::Zero, V3::Zero});
  b.append({V3::One, V3::One});
  a.append_sequence(b);
  ASSERT_EQ(a.length(), 3u);
  EXPECT_EQ(a.at(2, 1), V3::One);
}

TEST(Sequence, AppendSequenceRejectsWidthMismatch) {
  TestSequence a(2), b(3);
  EXPECT_THROW(a.append_sequence(b), std::invalid_argument);
}

TEST(Sequence, RandomFillReplacesOnlyX) {
  TestSequence seq = TestSequence::from_rows(4, {"01xx", "xx10"});
  Rng rng(42);
  seq.random_fill(rng);
  EXPECT_EQ(seq.at(0, 0), V3::Zero);
  EXPECT_EQ(seq.at(0, 1), V3::One);
  EXPECT_EQ(seq.at(1, 2), V3::One);
  EXPECT_EQ(seq.at(1, 3), V3::Zero);
  for (std::size_t t = 0; t < seq.length(); ++t)
    for (std::size_t i = 0; i < 4; ++i) EXPECT_NE(seq.at(t, i), V3::X);
}

TEST(Sequence, RandomFillIsDeterministic) {
  TestSequence a = TestSequence::from_rows(8, {"xxxxxxxx", "xxxxxxxx"});
  TestSequence b = a;
  Rng r1(7), r2(7);
  a.random_fill(r1);
  b.random_fill(r2);
  EXPECT_EQ(a, b);
}

TEST(Sequence, ConstantFill) {
  TestSequence seq = TestSequence::from_rows(3, {"x1x"});
  seq.constant_fill(V3::Zero);
  EXPECT_EQ(seq.at(0, 0), V3::Zero);
  EXPECT_EQ(seq.at(0, 1), V3::One);
  EXPECT_EQ(seq.at(0, 2), V3::Zero);
}

TEST(Sequence, CountOnes) {
  TestSequence seq = TestSequence::from_rows(2, {"10", "11", "0x"});
  EXPECT_EQ(seq.count_ones(0), 2u);
  EXPECT_EQ(seq.count_ones(1), 1u);
}

TEST(Sequence, EraseRemovesVector) {
  TestSequence seq = TestSequence::from_rows(1, {"0", "1", "x"});
  seq.erase(1);
  ASSERT_EQ(seq.length(), 2u);
  EXPECT_EQ(seq.at(0, 0), V3::Zero);
  EXPECT_EQ(seq.at(1, 0), V3::X);
}

TEST(Sequence, SelectBuildsSubsequence) {
  TestSequence seq = TestSequence::from_rows(1, {"0", "1", "x", "0"});
  const TestSequence sub = seq.select({0, 2, 3});
  ASSERT_EQ(sub.length(), 3u);
  EXPECT_EQ(sub.at(1, 0), V3::X);
  EXPECT_THROW(seq.select({9}), std::out_of_range);
}

TEST(Sequence, TruncateShortens) {
  TestSequence seq = TestSequence::from_rows(1, {"0", "1", "0"});
  seq.truncate(1);
  EXPECT_EQ(seq.length(), 1u);
  seq.truncate(5);  // no-op beyond current length
  EXPECT_EQ(seq.length(), 1u);
}

TEST(Sequence, FromRowsRejectsBadWidth) {
  EXPECT_THROW(TestSequence::from_rows(3, {"01"}), std::invalid_argument);
}

TEST(Sequence, ToStringRendersRows) {
  TestSequence seq = TestSequence::from_rows(3, {"01x"});
  EXPECT_EQ(seq.to_string(), "01x\n");
}

}  // namespace
}  // namespace uniscan
