#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "workloads/circuits.hpp"
#include "workloads/suite.hpp"

namespace uniscan {
namespace {

TestSequence random_sequence(const Netlist& nl, std::size_t len, std::uint64_t seed,
                             double x_prob = 0.0) {
  TestSequence seq(nl.num_inputs());
  Rng rng(seed);
  for (std::size_t t = 0; t < len; ++t) {
    std::vector<V3> vec(nl.num_inputs());
    for (auto& v : vec)
      v = rng.next_double() < x_prob ? V3::X : (rng.next_bool() ? V3::One : V3::Zero);
    seq.append(std::move(vec));
  }
  return seq;
}

class EventSimMatchesLevelized : public ::testing::TestWithParam<const char*> {};

TEST_P(EventSimMatchesLevelized, FullTraceEquality) {
  const Netlist nl = load_circuit(*find_suite_entry(GetParam()));
  const SequentialSimulator ref(nl);
  EventSimulator ev(nl);

  const TestSequence seq = random_sequence(nl, 120, 42);
  const SimTrace a = ref.simulate(seq, ref.initial_state());
  const SimTrace b = ev.simulate(seq, ref.initial_state());
  ASSERT_EQ(a.po.size(), b.po.size());
  for (std::size_t t = 0; t < a.po.size(); ++t) {
    ASSERT_EQ(a.po[t], b.po[t]) << GetParam() << " frame " << t;
    ASSERT_EQ(a.state[t + 1], b.state[t + 1]) << GetParam() << " frame " << t;
  }
}

TEST_P(EventSimMatchesLevelized, WithXInputs) {
  const Netlist nl = load_circuit(*find_suite_entry(GetParam()));
  const SequentialSimulator ref(nl);
  EventSimulator ev(nl);
  const TestSequence seq = random_sequence(nl, 60, 7, 0.3);  // 30% X inputs
  const SimTrace a = ref.simulate(seq, ref.initial_state());
  const SimTrace b = ev.simulate(seq, ref.initial_state());
  for (std::size_t t = 0; t < a.po.size(); ++t) ASSERT_EQ(a.po[t], b.po[t]) << t;
}

INSTANTIATE_TEST_SUITE_P(Suite, EventSimMatchesLevelized,
                         ::testing::Values("s27", "b01", "s208", "s298", "b09"));

TEST(EventSim, LowActivityDoesFewerEvals) {
  // Constant inputs after the first frame: the event engine should evaluate
  // far fewer gates than frames*gates once the state settles.
  const Netlist nl = load_circuit(*find_suite_entry("s298"));
  EventSimulator ev(nl);
  TestSequence seq(nl.num_inputs());
  for (int t = 0; t < 100; ++t) seq.append(std::vector<V3>(nl.num_inputs(), V3::Zero));
  ev.simulate(seq, State(nl.num_dffs(), V3::X));
  EXPECT_LT(ev.gate_evals(), 100u * nl.num_comb_gates() / 2)
      << "event engine did not exploit low activity";
}

TEST(EventSim, StepAfterResetMatchesReference) {
  const Netlist nl = make_s27();
  const SequentialSimulator ref(nl);
  EventSimulator ev(nl);
  ev.reset(State{V3::One, V3::Zero, V3::X});
  const std::vector<V3> pi{V3::One, V3::Zero, V3::One, V3::Zero};
  const FrameValues a = ref.step(State{V3::One, V3::Zero, V3::X}, pi);
  const FrameValues b = ev.step(pi);
  EXPECT_EQ(a.po, b.po);
  EXPECT_EQ(a.next_state, b.next_state);
}

TEST(EventSim, ResetClearsHistory) {
  const Netlist nl = make_s27();
  EventSimulator ev(nl);
  const std::vector<V3> pi(4, V3::One);
  ev.reset(State(3, V3::Zero));
  const FrameValues first = ev.step(pi);
  // Run some other stimulus, then reset to the same state: identical result.
  for (int t = 0; t < 5; ++t) ev.step(std::vector<V3>(4, V3::Zero));
  ev.reset(State(3, V3::Zero));
  const FrameValues again = ev.step(pi);
  EXPECT_EQ(first.po, again.po);
  EXPECT_EQ(first.next_state, again.next_state);
}

TEST(EventSim, RejectsBadWidths) {
  const Netlist nl = make_s27();
  EventSimulator ev(nl);
  EXPECT_THROW(ev.reset(State(1, V3::X)), std::invalid_argument);
  ev.reset(State(3, V3::X));
  EXPECT_THROW(ev.step(std::vector<V3>(2, V3::Zero)), std::invalid_argument);
}

}  // namespace
}  // namespace uniscan
