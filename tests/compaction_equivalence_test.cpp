// The incremental omission engine (checkpointed restarts, batch skipping,
// hardest-first fault ordering, thread-pool fan-out) must produce a
// CompactionResult bit-identical to the naive procedure it replaces: trial
// erasures evaluated by full from-scratch resimulation of a materialized
// subsequence. These tests pin that down by running a self-contained
// reference implementation of the seed algorithm next to the production
// path, for both fault models, several thread counts, and checkpoint
// intervals including the degenerate ones.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "atpg/seq_atpg.hpp"
#include "compact/compact_impl.hpp"
#include "compact/omission.hpp"
#include "compact/restoration.hpp"
#include "fault/fault_list.hpp"
#include "fault/transition_fault.hpp"
#include "scan/scan_insertion.hpp"
#include "sim/fault_sim.hpp"
#include "sim/transition_sim.hpp"
#include "util/thread_pool.hpp"
#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

/// The seed omission algorithm, verbatim: every trial erasure materializes
/// the candidate subsequence and resimulates it from power-up.
template <typename Simulator, typename FaultT>
CompactionResult reference_omission(const Netlist& nl, const TestSequence& seq,
                                    std::span<const FaultT> faults,
                                    const OmissionOptions& options) {
  Simulator sim(nl);
  CompactionResult result;
  result.original_length = seq.length();

  const auto base = sim.run(seq, faults);
  std::vector<FaultT> must;
  for (std::size_t i = 0; i < base.size(); ++i)
    if (base[i].detected) must.push_back(faults[i]);

  TestSequence cur = seq;
  const auto try_erase = [&](std::size_t t) {
    std::vector<std::size_t> keep;
    for (std::size_t j = 0; j < cur.length(); ++j)
      if (j != t) keep.push_back(j);
    TestSequence trial = cur.select(keep);
    if (!sim.detects_all(trial, must)) return false;
    cur = std::move(trial);
    return true;
  };

  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    ++result.rounds;
    std::size_t removed = 0;
    if (options.back_to_front) {
      for (std::size_t t = cur.length(); t-- > 0;)
        if (try_erase(t)) ++removed;
    } else {
      for (std::size_t t = 0; t < cur.length();) {
        if (try_erase(t)) ++removed;
        else ++t;
      }
    }
    if (removed == 0) break;
  }

  result.sequence = cur;
  result.vectors_removed = seq.length() - cur.length();
  const auto final_det = sim.run(cur, faults);
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (final_det[i].detected && !base[i].detected) ++result.extra_detected;
  return result;
}

void expect_same(const CompactionResult& got, const CompactionResult& want) {
  EXPECT_EQ(got.sequence, want.sequence);
  EXPECT_EQ(got.original_length, want.original_length);
  EXPECT_EQ(got.vectors_removed, want.vectors_removed);
  EXPECT_EQ(got.rounds, want.rounds);
  EXPECT_EQ(got.extra_detected, want.extra_detected);
}

struct PoolGuard {
  explicit PoolGuard(std::size_t n) { ThreadPool::set_global_threads(n); }
  ~PoolGuard() { ThreadPool::set_global_threads(1); }
};

struct StuckAtFixture {
  ScanCircuit sc = insert_scan(make_s27());
  FaultList fl = FaultList::collapsed(sc.netlist);
  AtpgResult atpg = generate_tests(sc, fl, {});
};

TEST(OmissionEquivalence, StuckAtAcrossThreadsAndIntervals) {
  StuckAtFixture fx;
  const CompactionResult want = reference_omission<FaultSimulator, Fault>(
      fx.sc.netlist, fx.atpg.sequence, fx.fl.faults(), {});
  ASSERT_LT(want.sequence.length(), fx.atpg.sequence.length());

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    PoolGuard guard(threads);
    for (std::size_t interval : {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{4},
                                 std::size_t{1000000}}) {
      OmissionOptions opt;
      opt.checkpoint_interval = interval;
      const CompactionResult got =
          omission_compact(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults(), opt);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " interval=" + std::to_string(interval));
      expect_same(got, want);
    }
  }
}

TEST(OmissionEquivalence, StuckAtFrontToBack) {
  StuckAtFixture fx;
  OmissionOptions opt;
  opt.back_to_front = false;
  const CompactionResult want = reference_omission<FaultSimulator, Fault>(
      fx.sc.netlist, fx.atpg.sequence, fx.fl.faults(), opt);
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    PoolGuard guard(threads);
    const CompactionResult got =
        omission_compact(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults(), opt);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_same(got, want);
  }
}

TEST(OmissionEquivalence, TransitionFaults) {
  const ScanCircuit sc = insert_scan(make_s27());
  const auto faults = enumerate_transition_faults(sc.netlist);
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const AtpgResult atpg = generate_tests(sc, fl, {});
  const std::span<const TransitionFault> tf(faults);

  const CompactionResult want = reference_omission<TransitionFaultSimulator, TransitionFault>(
      sc.netlist, atpg.sequence, tf, {});
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    PoolGuard guard(threads);
    const CompactionResult got = omission_compact(sc.netlist, atpg.sequence, tf, {});
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_same(got, want);
  }
}

TEST(RestorationEquivalence, ViewPathMatchesAcrossThreads) {
  StuckAtFixture fx;
  PoolGuard one(1);
  const CompactionResult want =
      restoration_compact(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults());
  {
    PoolGuard four(4);
    const CompactionResult got =
        restoration_compact(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults());
    expect_same(got, want);
  }
}

/// Direct unit checks of the engine's trial predicate at the boundary
/// positions: frame 0 (restart has no usable checkpoint), a checkpoint frame
/// itself (the snapshot at t must be used, and stays valid after the
/// accept), and the last frame (shortest possible resimulation).
TEST(OmissionEngine, EraseAtBoundaryFramesMatchesReference) {
  StuckAtFixture fx;
  FaultSimulator sim(fx.sc.netlist);
  const auto base = sim.run(fx.atpg.sequence, fx.fl.faults());
  std::vector<Fault> must;
  std::vector<std::uint32_t> must_time;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (!base[i].detected) continue;
    must.push_back(fx.fl.faults()[i]);
    must_time.push_back(base[i].time);
  }
  ASSERT_FALSE(must.empty());

  constexpr std::size_t kInterval = 4;
  detail::OmissionEngine<FaultSimulator, std::uint64_t> engine(sim.compiled(), fx.atpg.sequence,
                                                               must, must_time, kInterval);

  // Reference predicate against the engine's own current selection.
  TestSequence cur = fx.atpg.sequence;
  const auto reference_would_accept = [&](std::size_t t) {
    std::vector<std::size_t> keep;
    for (std::size_t j = 0; j < cur.length(); ++j)
      if (j != t) keep.push_back(j);
    return sim.detects_all(cur.select(keep), must);
  };
  const auto check = [&](std::size_t t) {
    SCOPED_TRACE("erase at t=" + std::to_string(t));
    const bool want = reference_would_accept(t);
    ASSERT_EQ(engine.try_erase(t), want);
    if (want) cur.erase(t);
    ASSERT_EQ(engine.materialize(), cur);
  };

  check(0);                  // frame 0: no checkpoint at or below
  check(kInterval);          // exactly on a checkpoint frame
  check(cur.length() - 1);   // last frame
  check(cur.length() - 1);   // last frame again after the state shrank
  for (std::size_t t = cur.length(); t-- > 0;) check(t);  // full sweep
  ASSERT_EQ(engine.length(), cur.length());
}

}  // namespace
}  // namespace uniscan
