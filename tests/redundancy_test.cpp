#include "atpg/redundancy.hpp"

#include <gtest/gtest.h>

#include "fault/fault_list.hpp"
#include "netlist/builder.hpp"
#include "sim/fault_sim.hpp"
#include "atpg/seq_atpg.hpp"
#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

/// A circuit with a known-redundant node: g = OR(a, NOT(a)) is constant 1,
/// so g s-a-1 is untestable; the AND masks nothing else.
Netlist redundant_circuit() {
  NetlistBuilder b("red");
  const GateId a = b.input("a");
  const GateId bpin = b.input("b");
  const GateId n = b.not_("n", a);
  const GateId g = b.or_("g", {a, n});  // constant 1
  const GateId o = b.and_("o", {g, bpin});
  const GateId f = b.dff("f", o);
  const GateId out = b.buf("out", f);
  b.output(out);
  return b.build();
}

TEST(Redundancy, ProvesConstantNodeFaultsUntestable) {
  const ScanCircuit sc = insert_scan(redundant_circuit());
  const Netlist& nl = sc.netlist;
  const auto g = nl.find("g");
  ASSERT_TRUE(g);
  // g s-a-1 on a constant-1 node: unactivatable -> redundant.
  const Fault f1{*g, kStemPin, true};
  // g s-a-0 is activatable (forces the AND low) -> testable.
  const Fault f0{*g, kStemPin, false};
  const Fault faults[2] = {f1, f0};
  const RedundancyReport r = classify_faults(sc, faults);
  EXPECT_EQ(r.classes[0], FaultClass::Redundant);
  EXPECT_EQ(r.classes[1], FaultClass::Testable);
  EXPECT_EQ(r.redundant, 1u);
  EXPECT_EQ(r.testable, 1u);
  EXPECT_EQ(r.aborted, 0u);
}

TEST(Redundancy, S27ScanFaultsAllTestable) {
  // The real s27 is irredundant; with full state control every collapsed
  // fault of its scan version has a single-vector test.
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const RedundancyReport r = classify_faults(sc, fl.faults());
  EXPECT_EQ(r.redundant, 0u);
  EXPECT_EQ(r.aborted, 0u);
  EXPECT_EQ(r.testable, fl.size());
}

TEST(Redundancy, TestableClaimsNeverContradictDetection) {
  // Faults a generated sequence detects must never be classified Redundant.
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const AtpgResult atpg = generate_tests(sc, fl, {});
  const RedundancyReport r = classify_faults(sc, fl.faults());
  for (std::size_t i = 0; i < fl.size(); ++i) {
    if (atpg.detection[i].detected) {
      EXPECT_NE(r.classes[i], FaultClass::Redundant) << fault_to_string(sc.netlist, fl[i]);
    }
  }
}

TEST(Redundancy, TinyBudgetAborts) {
  const ScanCircuit sc = insert_scan(redundant_circuit());
  const Netlist& nl = sc.netlist;
  const Fault f{*nl.find("g"), kStemPin, true};
  RedundancyOptions opt;
  opt.max_backtracks = 0;
  const Fault faults[1] = {f};
  const RedundancyReport r = classify_faults(sc, faults, opt);
  // With no budget the proof cannot complete... unless the very first
  // objective scan already exhausts (possible for unactivatable faults).
  EXPECT_EQ(r.testable, 0u);
  EXPECT_EQ(r.redundant + r.aborted, 1u);
}

// ---- SAT second chance (DESIGN.md §5l) --------------------------------------

TEST(Redundancy, SatSecondChanceSettlesAbortedFaults) {
  // Starve PODEM completely (max_backtracks = 0) so every classification
  // either finishes on the first objective scan or lands in Aborted; the
  // SAT pass must then settle every survivor into the two PROVED classes:
  // Detected/Testable (replayed through the fault simulator) or
  // Redundant(proved) — never a lingering Aborted on this tiny circuit.
  const ScanCircuit sc = insert_scan(redundant_circuit());
  const Netlist& nl = sc.netlist;
  const Fault f1{*nl.find("g"), kStemPin, true};   // redundant
  const Fault f0{*nl.find("g"), kStemPin, false};  // testable
  const Fault faults[2] = {f1, f0};
  RedundancyOptions opt;
  opt.max_backtracks = 0;
  opt.sat_mode = SatMode::SecondChance;
  const RedundancyReport r = classify_faults(sc, faults, opt);
  EXPECT_EQ(r.classes[0], FaultClass::Redundant);
  EXPECT_EQ(r.classes[1], FaultClass::Testable);
  EXPECT_EQ(r.aborted, 0u);
  // The summary records what SAT actually contributed.
  EXPECT_GT(r.sat.attempts, 0u);
  EXPECT_EQ(r.sat.proved_redundant + r.sat.detected, r.sat.attempts);
  EXPECT_EQ(r.sat.mismatches, 0u);
}

TEST(Redundancy, SatCrossCheckConfirmsPodemProofs) {
  // Full PODEM budget proves g s-a-1 redundant on its own; CrossCheck
  // re-proves the claim with the solver and must find no disagreement.
  const ScanCircuit sc = insert_scan(redundant_circuit());
  const Fault f1{*sc.netlist.find("g"), kStemPin, true};
  const Fault faults[1] = {f1};
  RedundancyOptions opt;
  opt.sat_mode = SatMode::CrossCheck;
  const RedundancyReport r = classify_faults(sc, faults, opt);
  EXPECT_EQ(r.classes[0], FaultClass::Redundant);
  EXPECT_GT(r.sat.cross_checks, 0u);
  EXPECT_EQ(r.sat.mismatches, 0u);
}

TEST(Redundancy, CancelledSatNeverReportsRedundant) {
  // PR 4 invariant through the SAT path: with a pre-fired deadline the
  // second-chance pass must not upgrade anything to Redundant — an aborted
  // solve proves nothing, no matter how redundant the fault really is.
  const ScanCircuit sc = insert_scan(redundant_circuit());
  const Fault f1{*sc.netlist.find("g"), kStemPin, true};
  const Fault faults[1] = {f1};
  RedundancyOptions opt;
  opt.max_backtracks = 0;  // PODEM can't prove it either
  opt.sat_mode = SatMode::SecondChance;
  opt.cancel = CancelToken(Deadline::after(0));
  const RedundancyReport r = classify_faults(sc, faults, opt);
  EXPECT_NE(r.classes[0], FaultClass::Redundant);
  EXPECT_EQ(r.sat.proved_redundant, 0u);
}

TEST(Redundancy, SatOffIsBitIdenticalToPodemOnly) {
  // Off is the default and must not perturb the PODEM-only classification.
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const RedundancyReport base = classify_faults(sc, fl.faults());
  RedundancyOptions off;
  off.sat_mode = SatMode::Off;
  const RedundancyReport again = classify_faults(sc, fl.faults(), off);
  EXPECT_EQ(again.classes, base.classes);
  EXPECT_FALSE(again.sat.any());
}

TEST(Redundancy, WiderWindowFindsSequentialTests) {
  // A fault needing two frames: effect must accumulate through the DFF.
  // Build: out = XOR(f, a) with f' = XOR(f, b): a single frame observes f
  // directly, so use window semantics check instead: window 0 is invalid,
  // window 2 classifies at least as many faults testable as window 1.
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  RedundancyOptions w1, w2;
  w1.window = 1;
  w2.window = 2;
  const RedundancyReport r1 = classify_faults(sc, fl.faults(), w1);
  const RedundancyReport r2 = classify_faults(sc, fl.faults(), w2);
  EXPECT_GE(r2.testable, r1.testable);
}

}  // namespace
}  // namespace uniscan
