#include "core/metrics.hpp"
#include "diag/diagnosis.hpp"

#include <gtest/gtest.h>

#include "atpg/seq_atpg.hpp"
#include "fault/fault_list.hpp"
#include "obs/counters.hpp"
#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

TEST(Metrics, ScanOperationHistogram) {
  const ScanCircuit sc = insert_scan(make_s27());
  // scan_sel column: 0 1 1 0 1 1 1 0  -> one run of 2, one run of 3 (chain=3).
  TestSequence seq(sc.netlist.num_inputs());
  const int pattern[] = {0, 1, 1, 0, 1, 1, 1, 0};
  for (int v : pattern) {
    std::vector<V3> vec(sc.netlist.num_inputs(), V3::Zero);
    vec[sc.scan_sel_index()] = v ? V3::One : V3::Zero;
    seq.append(std::move(vec));
  }
  const SequenceMetrics m = compute_metrics(sc, seq);
  EXPECT_EQ(m.length, 8u);
  EXPECT_EQ(m.scan_vectors, 5u);
  EXPECT_EQ(m.scan_operations, 2u);
  EXPECT_EQ(m.longest_scan_op, 3u);
  EXPECT_EQ(m.complete_scan_ops, 1u);  // the 3-run equals the chain length
  EXPECT_EQ(m.scan_op_histogram.at(2), 1u);
  EXPECT_EQ(m.scan_op_histogram.at(3), 1u);
  EXPECT_DOUBLE_EQ(m.limited_scan_fraction(), 0.5);
}

TEST(Metrics, TrailingScanRunCounted) {
  const ScanCircuit sc = insert_scan(make_s27());
  TestSequence seq(sc.netlist.num_inputs());
  for (int t = 0; t < 2; ++t) {
    std::vector<V3> vec(sc.netlist.num_inputs(), V3::Zero);
    vec[sc.scan_sel_index()] = V3::One;
    seq.append(std::move(vec));
  }
  const SequenceMetrics m = compute_metrics(sc, seq);
  EXPECT_EQ(m.scan_operations, 1u);
  EXPECT_EQ(m.longest_scan_op, 2u);
}

TEST(Metrics, InputTransitionsIgnoreX) {
  const ScanCircuit sc = insert_scan(make_s27());
  TestSequence seq = TestSequence::from_rows(
      sc.netlist.num_inputs(), {"000000", "100000", "x00000", "000000"});
  const SequenceMetrics m = compute_metrics(sc, seq);
  // Only the 0->1 flip at t=1 counts; X boundaries do not.
  EXPECT_EQ(m.input_transitions, 1u);
}

TEST(Metrics, CompactedSequencesAreMostlyLimitedScan) {
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const AtpgResult atpg = generate_tests(sc, fl, {});
  const SequenceMetrics m = compute_metrics(sc, atpg.sequence);
  EXPECT_GT(m.scan_operations, 0u);
  EXPECT_GT(m.limited_scan_fraction(), 0.5) << "generated scan ops should be mostly limited";
}

TEST(Metrics, FormatIsHumanReadable) {
  const ScanCircuit sc = insert_scan(make_s27());
  TestSequence seq(sc.netlist.num_inputs());
  seq.append_x();
  const std::string s = format_metrics(compute_metrics(sc, seq));
  EXPECT_NE(s.find("cycles"), std::string::npos);
  EXPECT_NE(s.find("scan operations"), std::string::npos);
}

// ---------------------------------------------------------------------------

struct DiagFixture {
  ScanCircuit sc = insert_scan(make_s27());
  FaultList fl = FaultList::collapsed(sc.netlist);
  AtpgResult atpg = generate_tests(sc, fl, {});
};

TEST(Diagnosis, InjectedFaultIsAlwaysACandidate) {
  DiagFixture fx;
  for (std::size_t i = 0; i < fx.fl.size(); i += 5) {
    const FailLog observed = simulate_fail_log(fx.sc.netlist, fx.atpg.sequence, fx.fl[i]);
    const auto candidates = diagnose(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults(), observed);
    EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), i) != candidates.end())
        << "fault " << i << " not among its own candidates";
  }
}

TEST(Diagnosis, ResolutionIsUsuallySharp) {
  // On a high-observability sequence most faults diagnose to few candidates.
  DiagFixture fx;
  std::size_t total_candidates = 0, cases = 0;
  for (std::size_t i = 0; i < fx.fl.size(); i += 3) {
    const FailLog observed = simulate_fail_log(fx.sc.netlist, fx.atpg.sequence, fx.fl[i]);
    if (observed.empty()) continue;  // undetected faults have no log
    total_candidates +=
        diagnose(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults(), observed).size();
    ++cases;
  }
  ASSERT_GT(cases, 0u);
  EXPECT_LT(static_cast<double>(total_candidates) / static_cast<double>(cases), 3.0)
      << "average candidate-set size too large";
}

TEST(Diagnosis, FailLogsMatchDetectionVerdicts) {
  DiagFixture fx;
  FaultSimulator sim(fx.sc.netlist);
  const auto det = sim.run(fx.atpg.sequence, fx.fl.faults());
  for (std::size_t i = 0; i < fx.fl.size(); i += 7) {
    const FailLog log = simulate_fail_log(fx.sc.netlist, fx.atpg.sequence, fx.fl[i]);
    EXPECT_EQ(!log.empty(), det[i].detected) << i;
    if (det[i].detected) {
      EXPECT_EQ(log.front().time, det[i].time) << i;
    }
  }
}

TEST(Diagnosis, PassingDeviceMatchesNoDetectedFault) {
  DiagFixture fx;
  const auto candidates =
      diagnose(fx.sc.netlist, fx.atpg.sequence, fx.fl.faults(), FailLog{});
  FaultSimulator sim(fx.sc.netlist);
  const auto det = sim.run(fx.atpg.sequence, fx.fl.faults());
  for (std::size_t c : candidates) EXPECT_FALSE(det[c].detected) << c;
}

// ---------------------------------------------------------------------------
// Telemetry counter registry unit behaviour (the cross-thread equivalence
// tier lives in obs_counter_test.cpp; these pin the single-thread API).

TEST(ObsRegistry, CountAccumulatesAndResetClears) {
  obs::reset();
  obs::count(obs::Counter::OmissionTrials);
  obs::count(obs::Counter::OmissionTrials, 4);
  EXPECT_EQ(obs::total(obs::Counter::OmissionTrials), 5u);
  obs::reset();
  EXPECT_EQ(obs::total(obs::Counter::OmissionTrials), 0u);
}

TEST(ObsRegistry, DisabledCountIsDropped) {
  obs::reset();
  obs::set_enabled(false);
  obs::count(obs::Counter::GateEvals, 1000);
  obs::set_enabled(true);
  EXPECT_EQ(obs::total(obs::Counter::GateEvals), 0u);
}

TEST(ObsRegistry, CounterScopeDeltaIsolatesARegion) {
  obs::reset();
  obs::count(obs::Counter::GateEvals, 7);  // before the scope: not its delta
  const obs::CounterScope scope;
  obs::count(obs::Counter::GateEvals, 3);
  EXPECT_EQ(scope.delta(obs::Counter::GateEvals), 3u);
  const obs::CounterArray d = scope.deltas();
  EXPECT_EQ(d[std::size_t(obs::Counter::GateEvals)], 3u);
  EXPECT_EQ(d[std::size_t(obs::Counter::BatchSkips)], 0u);
  EXPECT_EQ(obs::total(obs::Counter::GateEvals), 10u);
}

TEST(ObsRegistry, GenerationCountsGateEvalsAndPolls) {
  // End-to-end sanity that the registry is actually wired into the ATPG
  // flow: generating tests must evaluate gates and poll its cancel token.
  obs::reset();
  DiagFixture fx;
  EXPECT_GT(obs::total(obs::Counter::GateEvals), 0u);
  EXPECT_GT(obs::total(obs::Counter::CancelPolls), 0u);
  // gate_evals on the result equals the scoped registry delta of the run.
  EXPECT_GT(fx.atpg.gate_evals, 0u);
  obs::reset();
}

}  // namespace
}  // namespace uniscan
