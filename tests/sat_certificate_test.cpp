// Independent replay checker for the SAT engine's UNSAT certificates
// (sat/certificate.hpp). The checker here shares NO code with the solver:
// it is a plain repeat-until-fixpoint unit-propagation loop, so a valid
// certificate is evidence of unsatisfiability that does not rest on any
// solver invariant. Tampered certificates — a flipped literal, a dropped
// step, a missing final empty clause, removed originals — must be rejected.
#include "sat/certificate.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/builder.hpp"
#include "sat/sat_engine.hpp"
#include "scan/scan_insertion.hpp"
#include "sim/compiled_netlist.hpp"

namespace uniscan::sat {
namespace {

/// Does `step` hold by reverse unit propagation over `db`? Assume the
/// negation of every literal of `step` as a unit, then unit propagate over
/// `db` until fixpoint; the step holds iff propagation derives a conflict.
bool rup_holds(const std::vector<Clause>& db, const Clause& step, std::size_t num_vars) {
  // -1 = unassigned, 0 = false, 1 = true.
  std::vector<std::int8_t> val(num_vars, -1);
  for (const Lit l : step) {
    const std::int8_t want = l.sign() ? 1 : 0;  // negation of the literal
    if (val[l.var()] == -1) {
      val[l.var()] = want;
    } else if (val[l.var()] != want) {
      return true;  // the negated step is itself contradictory
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Clause& c : db) {
      std::size_t unassigned = 0;
      Lit last = kLitUndef;
      bool satisfied = false;
      for (const Lit l : c) {
        const std::int8_t v = val[l.var()];
        if (v == -1) {
          ++unassigned;
          last = l;
        } else if (v == (l.sign() ? 0 : 1)) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      if (unassigned == 0) return true;  // conflict
      if (unassigned == 1) {
        val[last.var()] = last.sign() ? 0 : 1;
        changed = true;
      }
    }
  }
  return false;  // fixpoint without conflict: the step is not RUP-implied
}

/// Full certificate check: every step must be RUP w.r.t. the originals plus
/// all previously accepted steps, and the derivation must end with the
/// empty clause.
bool check_certificate(const UnsatCertificate& cert) {
  if (cert.steps.empty() || !cert.steps.back().empty()) return false;
  std::vector<Clause> db = cert.clauses;
  for (const Clause& step : cert.steps) {
    for (const Lit l : step)
      if (l.var() >= cert.num_vars) return false;  // out-of-range literal
    if (!rup_holds(db, step, cert.num_vars)) return false;
    db.push_back(step);
  }
  return true;
}

/// A circuit with a known-redundant node (same shape as redundancy_test):
/// g = OR(a, NOT(a)) is constant 1, so g s-a-1 is untestable.
Netlist redundant_circuit() {
  NetlistBuilder b("red");
  const GateId a = b.input("a");
  const GateId bpin = b.input("b");
  const GateId n = b.not_("n", a);
  const GateId g = b.or_("g", {a, n});
  const GateId o = b.and_("o", {g, bpin});
  const GateId f = b.dff("f", o);
  const GateId out = b.buf("out", f);
  b.output(out);
  return b.build();
}

UnsatCertificate engine_certificate() {
  const ScanCircuit sc = insert_scan(redundant_circuit());
  const CompiledNetlist compiled(sc.netlist);
  const SatEngine engine(compiled);
  const Fault f{*sc.netlist.find("g"), kStemPin, true};
  SatEngineOptions opt;
  opt.want_certificate = true;
  const SatResult r = engine.prove(f, opt);
  EXPECT_EQ(r.verdict, SatVerdict::RedundantProved);
  EXPECT_TRUE(r.certificate.has_value());
  return r.certificate ? *r.certificate : UnsatCertificate{};
}

/// A certificate with real learned steps: PHP(n+1, n) has no unit clauses,
/// so the solver must learn its way to the empty clause and the recorded
/// proof has intermediate additions worth tampering with.
UnsatCertificate pigeonhole_certificate(std::size_t holes) {
  Solver s;
  const std::size_t pigeons = holes + 1;
  const auto var_of = [&](std::size_t p, std::size_t h) {
    return static_cast<Var>(p * holes + h);
  };
  UnsatCertificate cert;
  cert.num_vars = pigeons * holes;
  s.ensure_vars(static_cast<Var>(cert.num_vars));
  for (std::size_t p = 0; p < pigeons; ++p) {
    Clause c;
    for (std::size_t h = 0; h < holes; ++h) c.push_back(lit(var_of(p, h)));
    cert.clauses.push_back(c);
    s.add_clause(std::move(c));
  }
  for (std::size_t h = 0; h < holes; ++h)
    for (std::size_t p1 = 0; p1 + 1 < pigeons; ++p1)
      for (std::size_t p2 = p1 + 1; p2 < pigeons; ++p2) {
        Clause c{lit(var_of(p1, h), true), lit(var_of(p2, h), true)};
        cert.clauses.push_back(c);
        s.add_clause(std::move(c));
      }
  SolverOptions opt;
  opt.record_proof = true;
  EXPECT_EQ(s.solve(opt), SolveStatus::Unsat);
  cert.steps = s.proof();
  return cert;
}

TEST(SatCertificate, HandCraftedRupChainValidates) {
  // (a|b) (a|~b) (~a|c) (~a|~c) is UNSAT; derive a, then empty.
  UnsatCertificate cert;
  cert.num_vars = 3;
  cert.clauses = {{lit(0), lit(1)},
                  {lit(0), lit(1, true)},
                  {lit(0, true), lit(2)},
                  {lit(0, true), lit(2, true)}};
  cert.steps = {{lit(0)}, {}};
  EXPECT_TRUE(check_certificate(cert));
}

TEST(SatCertificate, NonImpliedStepRejected) {
  UnsatCertificate cert;
  cert.num_vars = 3;
  cert.clauses = {{lit(0), lit(1)}};
  cert.steps = {{lit(2)}, {}};  // nothing implies c, let alone empty
  EXPECT_FALSE(check_certificate(cert));
}

TEST(SatCertificate, EngineCertificateValidates) {
  const UnsatCertificate cert = engine_certificate();
  ASSERT_FALSE(cert.steps.empty());
  EXPECT_TRUE(check_certificate(cert));
}

TEST(SatCertificate, SolverProofOnPigeonholeValidates) {
  const UnsatCertificate cert = pigeonhole_certificate(4);
  ASSERT_GT(cert.steps.size(), 1u) << "PHP proof should have learned steps";
  EXPECT_TRUE(check_certificate(cert));
}

TEST(SatCertificate, TamperedLiteralRejected) {
  const UnsatCertificate cert = pigeonhole_certificate(4);
  ASSERT_GT(cert.steps.size(), 1u);
  // Flipping one literal of one step must break at least one link of the
  // chain — either the mutated step is no longer implied, or a later step
  // relied on the original. Require a rejection for a clear majority of
  // single-literal flips (some flips can coincidentally stay RUP).
  std::size_t rejected = 0, tried = 0;
  for (std::size_t si = 0; si < cert.steps.size() && tried < 12; ++si) {
    if (cert.steps[si].empty()) continue;
    UnsatCertificate mutated = cert;
    mutated.steps[si][0] = ~mutated.steps[si][0];
    ++tried;
    if (!check_certificate(mutated)) ++rejected;
  }
  ASSERT_GT(tried, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(SatCertificate, DroppedStepRejected) {
  const UnsatCertificate cert = pigeonhole_certificate(4);
  ASSERT_GT(cert.steps.size(), 1u);
  // Removing a non-final step breaks the chain unless propagation happens
  // to bridge the gap; across all removals at least one must be rejected.
  bool any_rejected = false;
  for (std::size_t drop = 0; drop + 1 < cert.steps.size(); ++drop) {
    UnsatCertificate mutated = cert;
    mutated.steps.erase(mutated.steps.begin() + static_cast<std::ptrdiff_t>(drop));
    if (!check_certificate(mutated)) any_rejected = true;
  }
  EXPECT_TRUE(any_rejected);
}

TEST(SatCertificate, MissingEmptyClauseRejected) {
  UnsatCertificate cert = pigeonhole_certificate(4);
  ASSERT_FALSE(cert.steps.empty());
  cert.steps.pop_back();
  EXPECT_FALSE(check_certificate(cert));
}

TEST(SatCertificate, ClearedOriginalsRejected) {
  UnsatCertificate cert = engine_certificate();
  ASSERT_FALSE(cert.steps.empty());
  cert.clauses.clear();  // without the originals nothing is implied
  EXPECT_FALSE(check_certificate(cert));
}

TEST(SatCertificate, OutOfRangeLiteralRejected) {
  UnsatCertificate cert;
  cert.num_vars = 1;
  cert.clauses = {{lit(0)}, {lit(0, true)}};
  cert.steps = {{lit(5)}, {}};
  EXPECT_FALSE(check_certificate(cert));
}

}  // namespace
}  // namespace uniscan::sat
