// Exhaustive truth-table tests for the scalar and word-parallel 3-valued
// algebra, and consistency between the two representations.
#include "sim/logic3.hpp"

#include <gtest/gtest.h>

#include <array>

namespace uniscan {
namespace {

constexpr std::array<V3, 3> kAll = {V3::Zero, V3::One, V3::X};

TEST(Logic3Scalar, NotTruthTable) {
  EXPECT_EQ(v3_not(V3::Zero), V3::One);
  EXPECT_EQ(v3_not(V3::One), V3::Zero);
  EXPECT_EQ(v3_not(V3::X), V3::X);
}

TEST(Logic3Scalar, AndTruthTable) {
  EXPECT_EQ(v3_and(V3::Zero, V3::X), V3::Zero);
  EXPECT_EQ(v3_and(V3::X, V3::Zero), V3::Zero);
  EXPECT_EQ(v3_and(V3::One, V3::One), V3::One);
  EXPECT_EQ(v3_and(V3::One, V3::X), V3::X);
  EXPECT_EQ(v3_and(V3::X, V3::X), V3::X);
}

TEST(Logic3Scalar, OrTruthTable) {
  EXPECT_EQ(v3_or(V3::One, V3::X), V3::One);
  EXPECT_EQ(v3_or(V3::X, V3::One), V3::One);
  EXPECT_EQ(v3_or(V3::Zero, V3::Zero), V3::Zero);
  EXPECT_EQ(v3_or(V3::Zero, V3::X), V3::X);
}

TEST(Logic3Scalar, XorTruthTable) {
  EXPECT_EQ(v3_xor(V3::Zero, V3::One), V3::One);
  EXPECT_EQ(v3_xor(V3::One, V3::One), V3::Zero);
  EXPECT_EQ(v3_xor(V3::X, V3::One), V3::X);
  EXPECT_EQ(v3_xor(V3::Zero, V3::X), V3::X);
}

TEST(Logic3Scalar, MuxSelectsData) {
  for (V3 d0 : kAll)
    for (V3 d1 : kAll) {
      EXPECT_EQ(v3_mux(d0, d1, V3::Zero), d0);
      EXPECT_EQ(v3_mux(d0, d1, V3::One), d1);
    }
}

TEST(Logic3Scalar, MuxWithUnknownSelect) {
  // Optimistic X: agreeing known data dominates an unknown select.
  EXPECT_EQ(v3_mux(V3::One, V3::One, V3::X), V3::One);
  EXPECT_EQ(v3_mux(V3::Zero, V3::Zero, V3::X), V3::Zero);
  EXPECT_EQ(v3_mux(V3::Zero, V3::One, V3::X), V3::X);
  EXPECT_EQ(v3_mux(V3::X, V3::One, V3::X), V3::X);
}

TEST(Logic3Word, BroadcastAndGet) {
  for (V3 v : kAll) {
    const W3 w = W3::broadcast(v);
    EXPECT_TRUE(w.valid());
    for (unsigned slot : {0u, 1u, 31u, 63u}) EXPECT_EQ(w.get(slot), v);
  }
}

TEST(Logic3Word, SetIndividualSlots) {
  W3 w = W3::all_x();
  w.set(3, V3::One);
  w.set(7, V3::Zero);
  EXPECT_EQ(w.get(3), V3::One);
  EXPECT_EQ(w.get(7), V3::Zero);
  EXPECT_EQ(w.get(0), V3::X);
  EXPECT_TRUE(w.valid());
  w.set(3, V3::Zero);  // overwrite
  EXPECT_EQ(w.get(3), V3::Zero);
  EXPECT_TRUE(w.valid());
}

// Word ops must agree with the scalar ops on every slot value combination.
TEST(Logic3Word, MatchesScalarAlgebra) {
  for (V3 a : kAll) {
    for (V3 b : kAll) {
      W3 wa = W3::all_x();
      W3 wb = W3::all_x();
      // Put the combination in several slots to exercise word logic.
      for (unsigned slot : {0u, 5u, 63u}) {
        wa.set(slot, a);
        wb.set(slot, b);
      }
      for (unsigned slot : {0u, 5u, 63u}) {
        EXPECT_EQ(w3_and(wa, wb).get(slot), v3_and(a, b));
        EXPECT_EQ(w3_or(wa, wb).get(slot), v3_or(a, b));
        EXPECT_EQ(w3_xor(wa, wb).get(slot), v3_xor(a, b));
        EXPECT_EQ(w3_not(wa).get(slot), v3_not(a));
      }
      EXPECT_TRUE(w3_and(wa, wb).valid());
      EXPECT_TRUE(w3_xor(wa, wb).valid());
    }
  }
}

TEST(Logic3Word, MuxMatchesScalar) {
  for (V3 d0 : kAll)
    for (V3 d1 : kAll)
      for (V3 sel : kAll) {
        W3 w0 = W3::broadcast(d0);
        W3 w1 = W3::broadcast(d1);
        W3 ws = W3::broadcast(sel);
        const W3 out = w3_mux(w0, w1, ws);
        EXPECT_TRUE(out.valid());
        EXPECT_EQ(out.get(17), v3_mux(d0, d1, sel))
            << "d0=" << to_char(d0) << " d1=" << to_char(d1) << " sel=" << to_char(sel);
      }
}

TEST(Logic3Word, ToStringRendersSlots) {
  W3 w = W3::all_x();
  w.set(0, V3::One);
  w.set(1, V3::Zero);
  EXPECT_EQ(to_string(w, 4), "10xx");
}

TEST(Logic3Chars, RoundTrip) {
  EXPECT_EQ(v3_from_char(to_char(V3::Zero)), V3::Zero);
  EXPECT_EQ(v3_from_char(to_char(V3::One)), V3::One);
  EXPECT_EQ(v3_from_char(to_char(V3::X)), V3::X);
}

}  // namespace
}  // namespace uniscan
