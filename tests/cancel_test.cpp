// Unit tests for the cooperative cancellation layer (DESIGN.md §5f):
// Deadline arithmetic, CancelToken latching and parent/child propagation,
// and the soundness contract that an aborted search is never reported as a
// completed (redundancy-proving) one.
#include "util/cancel.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <limits>

#include "atpg/podem.hpp"
#include "atpg/redundancy.hpp"
#include "atpg/seq_atpg.hpp"
#include "fault/fault_list.hpp"
#include "scan/scan_insertion.hpp"
#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

TEST(Deadline, DefaultNeverExpires) {
  const Deadline d;
  EXPECT_TRUE(d.is_never());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_seconds(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(Deadline::never().is_never());
}

TEST(Deadline, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::after(0).expired());
  EXPECT_TRUE(Deadline::after(-3.5).expired());
  EXPECT_LE(Deadline::after(0).remaining_seconds(), 0.0);
}

TEST(Deadline, FutureBudgetNotYetExpired) {
  const Deadline d = Deadline::after(3600);
  EXPECT_FALSE(d.is_never());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 0.0);
  EXPECT_LE(d.remaining_seconds(), 3600.0);
}

TEST(Deadline, AbsurdBudgetSaturatesToNever) {
  EXPECT_TRUE(Deadline::after(1e300).is_never());
}

TEST(Deadline, EarlierPicksTheEarlierPoint) {
  const auto now = Deadline::Clock::now();
  const Deadline a = Deadline::at(now + std::chrono::seconds(1));
  const Deadline b = Deadline::at(now + std::chrono::seconds(2));
  EXPECT_EQ(Deadline::earlier(a, b).when(), a.when());
  EXPECT_EQ(Deadline::earlier(b, a).when(), a.when());
  EXPECT_EQ(Deadline::earlier(a, Deadline::never()).when(), a.when());
  EXPECT_TRUE(Deadline::earlier(Deadline::never(), Deadline::never()).is_never());
}

TEST(CancelToken, InertTokenPollsFalse) {
  const CancelToken t;
  EXPECT_FALSE(t.armed());
  EXPECT_FALSE(t.poll());
  EXPECT_TRUE(t.deadline().is_never());
  t.request_cancel();  // must be a safe no-op on an inert token
  EXPECT_FALSE(t.poll());
}

TEST(CancelToken, ExpiredDeadlineFiresAndLatches) {
  const CancelToken t{Deadline::after(0)};
  EXPECT_TRUE(t.armed());
  EXPECT_TRUE(t.poll());
  EXPECT_TRUE(t.poll());  // latched: every subsequent poll agrees
}

TEST(CancelToken, FarDeadlineDoesNotFire) {
  const CancelToken t{Deadline::after(3600)};
  EXPECT_TRUE(t.armed());
  EXPECT_FALSE(t.poll());
}

TEST(CancelToken, RequestCancelObservedByEveryCopy) {
  const CancelToken t{Deadline::never()};
  const CancelToken copy = t;  // taken BEFORE the cancel
  EXPECT_FALSE(t.poll());
  t.request_cancel();
  EXPECT_TRUE(t.poll());
  EXPECT_TRUE(copy.poll());
}

TEST(CancelToken, ChildObservesParentButNotViceVersa) {
  const CancelToken parent{Deadline::never()};
  const CancelToken child = parent.child(Deadline::after(3600));
  EXPECT_FALSE(child.poll());

  // Parent fires -> child observes it.
  parent.request_cancel();
  EXPECT_TRUE(child.poll());

  // A child firing must NOT cancel its parent (per-circuit budget must not
  // kill the rest of the suite).
  const CancelToken parent2{Deadline::after(3600)};
  const CancelToken child2 = parent2.child(Deadline::after(0));
  EXPECT_TRUE(child2.poll());
  EXPECT_FALSE(parent2.poll());
}

TEST(CancelToken, ChildOfInertTokenIsARoot) {
  EXPECT_TRUE(CancelToken().child(Deadline::after(0)).poll());
  EXPECT_FALSE(CancelToken().child(Deadline::after(3600)).poll());
}

TEST(CancelToken, GrandchildObservesGrandparent) {
  const CancelToken root{Deadline::never()};
  const CancelToken mid = root.child(Deadline::never());
  const CancelToken leaf = mid.child(Deadline::after(3600));
  EXPECT_FALSE(leaf.poll());
  root.request_cancel();
  EXPECT_TRUE(leaf.poll());
}

// ---- soundness: aborted searches are never "proofs" -------------------------

TEST(CancelSoundness, FiredTokenAbortsPodemWithoutClaimingExhaustion) {
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  ASSERT_GT(fl.size(), 0u);

  PodemOptions opt;
  opt.cancel = CancelToken{Deadline::after(0)};
  for (std::size_t i = 0; i < fl.size(); ++i) {
    FrameModel model(sc.netlist, fl[i], 6);
    const PodemResult r = run_podem(model, PodemGoal::ObservePo, opt);
    EXPECT_FALSE(r.success) << "fault " << i;
    EXPECT_TRUE(r.aborted) << "fault " << i;
  }
}

TEST(CancelSoundness, ClassifierNeverReportsRedundantUnderFiredDeadline) {
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);

  RedundancyOptions opt;
  opt.cancel = CancelToken{Deadline::after(0)};
  const RedundancyReport rep = classify_faults(sc, fl.faults(), opt);
  ASSERT_EQ(rep.classes.size(), fl.size());
  EXPECT_EQ(rep.redundant, 0u);
  EXPECT_EQ(rep.aborted, fl.size());
  for (const FaultClass c : rep.classes) EXPECT_EQ(c, FaultClass::Aborted);
}

TEST(CancelSoundness, AtpgTimesOutGracefullyWithVerifiedResult) {
  // A pre-fired deadline: generation must come back immediately with
  // timed_out set, claim no redundancy proofs, and report a coverage that an
  // independent check of the (possibly empty) sequence would confirm.
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);

  AtpgOptions opt;
  opt.cancel = CancelToken{Deadline::after(0)};
  const AtpgResult r = generate_tests(sc, fl, opt);
  EXPECT_TRUE(r.timed_out);
  EXPECT_EQ(r.proved_redundant, 0u);
  EXPECT_LE(r.detected, fl.size());
}

TEST(CancelSoundness, InertTokenLeavesAtpgUntouched) {
  // Baseline determinism guard: the default (inert) token must not change
  // results — the same circuit generated twice gives identical sequences.
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);

  const AtpgResult a = generate_tests(sc, fl, {});
  AtpgOptions opt;
  opt.cancel = CancelToken{Deadline::after(1e9)};  // armed but never fires
  const AtpgResult b = generate_tests(sc, fl, opt);
  EXPECT_FALSE(a.timed_out);
  EXPECT_FALSE(b.timed_out);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.sequence.length(), b.sequence.length());
}

}  // namespace
}  // namespace uniscan
