#include "sim/fault_sim.hpp"

#include <gtest/gtest.h>

#include "fault/fault_list.hpp"
#include "netlist/builder.hpp"
#include "sim/sequential_sim.hpp"
#include "util/rng.hpp"
#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

/// Reference implementation: serial single-fault simulation by building a
/// mutated circuit evaluation inline with the scalar simulator.
bool serial_detects(const Netlist& nl, const Fault& f, const TestSequence& seq) {
  // Simulate good and faulty machines separately with the scalar simulator
  // by forcing the fault during a hand-rolled evaluation.
  State good_state(nl.num_dffs(), V3::X);
  State bad_state(nl.num_dffs(), V3::X);
  std::vector<V3> gv(nl.num_gates()), bv(nl.num_gates());

  const auto force = [&](std::vector<V3>& vals, GateId g) {
    if (f.pin == kStemPin && f.gate == g) vals[g] = f.stuck_one ? V3::One : V3::Zero;
  };
  const auto pin_val = [&](const std::vector<V3>& vals, GateId g, std::size_t p, bool faulty) {
    V3 v = vals[nl.gate(g).fanins[p]];
    if (faulty && f.pin != kStemPin && f.gate == g && f.pin == static_cast<std::int16_t>(p))
      v = f.stuck_one ? V3::One : V3::Zero;
    return v;
  };

  for (std::size_t t = 0; t < seq.length(); ++t) {
    for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
      gv[nl.inputs()[i]] = seq.at(t, i);
      bv[nl.inputs()[i]] = seq.at(t, i);
      force(bv, nl.inputs()[i]);
    }
    for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
      gv[nl.dffs()[j]] = good_state[j];
      bv[nl.dffs()[j]] = bad_state[j];
      force(bv, nl.dffs()[j]);
    }
    V3 buf[64];
    for (GateId g : nl.topo_order()) {
      const Gate& gate = nl.gate(g);
      for (std::size_t p = 0; p < gate.fanins.size(); ++p) buf[p] = pin_val(gv, g, p, false);
      gv[g] = eval_gate_v3(gate.type, buf, gate.fanins.size());
      for (std::size_t p = 0; p < gate.fanins.size(); ++p) buf[p] = pin_val(bv, g, p, true);
      bv[g] = eval_gate_v3(gate.type, buf, gate.fanins.size());
      force(bv, g);
    }
    for (GateId po : nl.outputs()) {
      if (gv[po] != V3::X && bv[po] != V3::X && gv[po] != bv[po]) return true;
    }
    for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
      good_state[j] = gv[nl.gate(nl.dffs()[j]).fanins[0]];
      bad_state[j] = pin_val(bv, nl.dffs()[j], 0, true);
    }
  }
  return false;
}

TestSequence random_sequence(const Netlist& nl, std::size_t len, std::uint64_t seed) {
  TestSequence seq(nl.num_inputs());
  Rng rng(seed);
  for (std::size_t t = 0; t < len; ++t) seq.append_x();
  seq.random_fill(rng);
  return seq;
}

TEST(FaultSim, AgreesWithSerialReferenceOnS27) {
  const Netlist nl = make_s27();
  const FaultList fl = FaultList::collapsed(nl);
  const TestSequence seq = random_sequence(nl, 40, 123);

  FaultSimulator sim(nl);
  const auto records = sim.run(seq, fl.faults());
  ASSERT_EQ(records.size(), fl.size());
  for (std::size_t i = 0; i < fl.size(); ++i) {
    EXPECT_EQ(records[i].detected, serial_detects(nl, fl[i], seq))
        << "fault " << i << ": " << fault_to_string(nl, fl[i]);
  }
}

TEST(FaultSim, AgreesWithSerialReferenceOnToyPipeline) {
  const Netlist nl = make_toy_pipeline();
  const FaultList fl = FaultList::uncollapsed(nl);
  const TestSequence seq = random_sequence(nl, 24, 99);
  FaultSimulator sim(nl);
  const auto records = sim.run(seq, fl.faults());
  for (std::size_t i = 0; i < fl.size(); ++i)
    EXPECT_EQ(records[i].detected, serial_detects(nl, fl[i], seq)) << "fault " << i;
}

TEST(FaultSim, GoodMachineSlotMatchesLogicSimulator) {
  // Detection times must refer to frames where the good machine output is
  // known; cross-check detection against explicit PO values.
  const Netlist nl = make_s27();
  const FaultList fl = FaultList::collapsed(nl);
  const TestSequence seq = random_sequence(nl, 30, 5);
  const SequentialSimulator gsim(nl);
  const SimTrace trace = gsim.simulate(seq, gsim.initial_state());

  FaultSimulator sim(nl);
  const auto records = sim.run(seq, fl.faults());
  for (const auto& r : records) {
    if (!r.detected) continue;
    bool any_known_po = false;
    for (V3 v : trace.po[r.time]) any_known_po |= (v != V3::X);
    EXPECT_TRUE(any_known_po) << "detection claimed at a frame with all-X POs";
  }
}

TEST(FaultSim, DetectionTimeIsFirstObservation) {
  const Netlist nl = make_s27();
  const FaultList fl = FaultList::collapsed(nl);
  const TestSequence seq = random_sequence(nl, 30, 7);
  FaultSimulator sim(nl);
  const auto records = sim.run(seq, fl.faults());
  for (std::size_t i = 0; i < fl.size(); ++i) {
    if (!records[i].detected) continue;
    // The prefix ending just before the detection time must NOT detect.
    if (records[i].time == 0) continue;
    TestSequence prefix = seq;
    prefix.truncate(records[i].time);
    const Fault one[1] = {fl[i]};
    EXPECT_FALSE(sim.detects_all(prefix, one)) << "fault " << i;
  }
}

TEST(FaultSim, DetectsAllMatchesRun) {
  const Netlist nl = make_s27();
  const FaultList fl = FaultList::collapsed(nl);
  const TestSequence seq = random_sequence(nl, 50, 11);
  FaultSimulator sim(nl);
  const auto records = sim.run(seq, fl.faults());
  std::vector<Fault> detected;
  for (std::size_t i = 0; i < fl.size(); ++i)
    if (records[i].detected) detected.push_back(fl[i]);
  EXPECT_TRUE(sim.detects_all(seq, detected));
  EXPECT_FALSE(sim.detects_all(seq, fl.faults()));  // 50 random vectors can't catch all
}

TEST(FaultSim, EmptySequenceDetectsNothing) {
  const Netlist nl = make_s27();
  const FaultList fl = FaultList::collapsed(nl);
  FaultSimulator sim(nl);
  const auto records = sim.run(TestSequence(nl.num_inputs()), fl.faults());
  for (const auto& r : records) EXPECT_FALSE(r.detected);
}

TEST(FaultSim, LatchRecordsReportLatchedEffects) {
  // In the toy pipeline, a stuck-at on f0's D input gets latched into f0.
  const Netlist nl = make_toy_pipeline();
  const auto g = nl.find("g");
  ASSERT_TRUE(g);
  const Fault f{*nl.find("f0"), 0, true};  // D-pin of f0 stuck-at-1
  // en=0 first forces g=0 so the pipe fills with known zeros (from all-X the
  // good value would stay unknown and no latch could be recorded); then
  // a=0,en=1 gives x = 0^0 = 0, g = 0: good f0' = 0, faulty = 1.
  TestSequence seq = TestSequence::from_rows(2, {"00", "00", "01"});
  FaultSimulator sim(nl);
  std::vector<LatchRecord> latched;
  const Fault faults[1] = {f};
  sim.run(seq, faults, &latched);
  ASSERT_EQ(latched.size(), 1u);
  EXPECT_TRUE(latched[0].latched);
  // The effect also shifts into f1 one frame later; the record keeps the
  // deepest (closest-to-scan-out) occurrence.
  EXPECT_EQ(latched[0].ff_index, 1u);
}

TEST(FaultSim, BatchBoundaries) {
  // More than 63 faults exercises multi-batch paths.
  const Netlist nl = make_s27();
  const FaultList fl = FaultList::uncollapsed(nl);
  ASSERT_GT(fl.size(), 63u);
  const TestSequence seq = random_sequence(nl, 40, 123);
  FaultSimulator sim(nl);
  const auto records = sim.run(seq, fl.faults());
  // Cross-check a sample from the second batch against the serial reference.
  for (std::size_t i = 60; i < 70 && i < fl.size(); ++i)
    EXPECT_EQ(records[i].detected, serial_detects(nl, fl[i], seq)) << i;
}

}  // namespace
}  // namespace uniscan
