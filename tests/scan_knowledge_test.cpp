#include "atpg/scan_knowledge.hpp"

#include <gtest/gtest.h>

#include "sim/sequential_sim.hpp"
#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

TEST(ScanKnowledge, FlushLengthCountsRemainingCells) {
  const ScanCircuit sc = insert_scan(make_s27());
  // 3 cells: effect in cell 0 needs 2 shifts + 1 observation frame = 3.
  EXPECT_EQ(flush_length(sc.chain(), 0), 3u);
  EXPECT_EQ(flush_length(sc.chain(), 1), 2u);
  EXPECT_EQ(flush_length(sc.chain(), 2), 1u);
}

TEST(ScanKnowledge, FlushSequenceHoldsScanSel) {
  const ScanCircuit sc = insert_scan(make_s27());
  Rng rng(5);
  const TestSequence seq = make_flush_sequence(sc, 0, 4, rng);
  ASSERT_EQ(seq.length(), 4u);
  for (std::size_t t = 0; t < seq.length(); ++t) {
    EXPECT_EQ(seq.at(t, sc.scan_sel_index()), V3::One);
    for (std::size_t i = 0; i < seq.num_inputs(); ++i)
      EXPECT_NE(seq.at(t, i), V3::X) << "flush vectors must be fully specified";
  }
}

TEST(ScanKnowledge, FlushCarriesValueToScanOut) {
  const ScanCircuit sc = insert_scan(make_s27());
  const SequentialSimulator sim(sc.netlist);
  Rng rng(17);

  // Start with a distinctive value in cell 0; flush must surface it on
  // scan_out after 2 shifts (observed during the 3rd frame).
  State s{V3::One, V3::Zero, V3::Zero};
  const TestSequence flush = make_flush_sequence(sc, 0, flush_length(sc.chain(), 0), rng);
  const SimTrace trace = sim.simulate(flush, s);
  EXPECT_EQ(trace.po[2][sc.chain().scan_out_index], V3::One);
}

TEST(ScanKnowledge, LoadSequenceBringsCircuitToState) {
  const ScanCircuit sc = insert_scan(make_s27());
  const SequentialSimulator sim(sc.netlist);
  Rng rng(23);

  const State target{V3::One, V3::Zero, V3::One};
  const TestSequence load = make_scan_load_sequence(sc, 0, target, rng);
  ASSERT_EQ(load.length(), 3u);
  const SimTrace trace = sim.simulate(load, sim.initial_state());
  EXPECT_EQ(trace.state.back(), target);
}

TEST(ScanKnowledge, LoadSequenceWorksFromAnyState) {
  const ScanCircuit sc = insert_scan(make_s27());
  const SequentialSimulator sim(sc.netlist);
  Rng rng(29);
  const State target{V3::Zero, V3::Zero, V3::One};
  const TestSequence load = make_scan_load_sequence(sc, 0, target, rng);
  for (const State& start :
       {State{V3::One, V3::One, V3::One}, State{V3::X, V3::X, V3::X}, State{V3::Zero, V3::One, V3::X}}) {
    EXPECT_EQ(sim.simulate(load, start).state.back(), target);
  }
}

TEST(ScanKnowledge, LoadRejectsWrongWidth) {
  const ScanCircuit sc = insert_scan(make_s27());
  Rng rng(1);
  EXPECT_THROW(make_scan_load_sequence(sc, 0, State{V3::One}, rng), std::invalid_argument);
}

}  // namespace
}  // namespace uniscan
