#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "netlist/builder.hpp"
#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

TEST(GateTypes, ParseKeywords) {
  GateType t;
  EXPECT_TRUE(parse_gate_type("AND", t));
  EXPECT_EQ(t, GateType::And);
  EXPECT_TRUE(parse_gate_type("nand", t));
  EXPECT_EQ(t, GateType::Nand);
  EXPECT_TRUE(parse_gate_type("BUFF", t));
  EXPECT_EQ(t, GateType::Buf);
  EXPECT_TRUE(parse_gate_type("DFF", t));
  EXPECT_EQ(t, GateType::Dff);
  EXPECT_FALSE(parse_gate_type("FROB", t));
}

TEST(GateTypes, ArityRules) {
  EXPECT_EQ(gate_type_arity(GateType::Input), 0);
  EXPECT_EQ(gate_type_arity(GateType::Not), 1);
  EXPECT_EQ(gate_type_arity(GateType::Mux2), 3);
  EXPECT_EQ(gate_type_arity(GateType::And), -1);
}

TEST(Netlist, BasicConstruction) {
  Netlist nl("t");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g = nl.add_gate(GateType::And, "g", {a, b});
  nl.add_output(g);
  nl.finalize();

  EXPECT_EQ(nl.num_inputs(), 2u);
  EXPECT_EQ(nl.num_outputs(), 1u);
  EXPECT_EQ(nl.num_comb_gates(), 1u);
  EXPECT_EQ(nl.levels()[g], 1u);
  EXPECT_EQ(nl.fanout_count(a), 1u);
  EXPECT_EQ(*nl.find("g"), g);
  EXPECT_FALSE(nl.find("missing").has_value());
}

TEST(Netlist, DuplicateNameRejected) {
  Netlist nl("t");
  nl.add_input("a");
  EXPECT_THROW(nl.add_input("a"), std::runtime_error);
}

TEST(Netlist, DuplicateOutputRejected) {
  Netlist nl("t");
  const GateId a = nl.add_input("a");
  const GateId g = nl.add_gate(GateType::Buf, "g", {a});
  nl.add_output(g);
  EXPECT_THROW(nl.add_output(g), std::runtime_error);
}

TEST(Netlist, ArityViolationDetectedAtFinalize) {
  Netlist nl("t");
  const GateId a = nl.add_input("a");
  const GateId g = nl.add_gate(GateType::Mux2, "g", {a, a});  // needs 3 pins
  nl.add_output(g);
  EXPECT_THROW(nl.finalize(), std::runtime_error);
}

TEST(Netlist, CombinationalCycleDetected) {
  Netlist nl("t");
  const GateId a = nl.add_input("a");
  // g1 and g2 feed each other.
  const GateId g1 = nl.add_gate(GateType::And, "g1", {a, kNoGate});
  const GateId g2 = nl.add_gate(GateType::Or, "g2", {g1, a});
  nl.replace_fanin(g1, 1, g2);
  nl.add_output(g2);
  EXPECT_THROW(nl.finalize(), std::runtime_error);
}

TEST(Netlist, CycleThroughDffIsLegal) {
  Netlist nl("t");
  const GateId a = nl.add_input("a");
  const GateId f = nl.add_dff("f");
  const GateId g = nl.add_gate(GateType::Xor, "g", {a, f});
  nl.set_dff_input(f, g);
  nl.add_output(g);
  EXPECT_NO_THROW(nl.finalize());
  EXPECT_EQ(nl.num_dffs(), 1u);
  EXPECT_EQ(*nl.dff_index(f), 0u);
}

TEST(Netlist, MissingOutputRejected) {
  Netlist nl("t");
  nl.add_input("a");
  EXPECT_THROW(nl.finalize(), std::runtime_error);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  const Netlist nl = make_s27();
  std::vector<int> position(nl.num_gates(), -1);
  for (std::size_t i = 0; i < nl.topo_order().size(); ++i)
    position[nl.topo_order()[i]] = static_cast<int>(i);
  for (GateId g : nl.topo_order()) {
    for (GateId fi : nl.gate(g).fanins) {
      if (!is_combinational(nl.gate(fi).type)) continue;
      EXPECT_LT(position[fi], position[g]) << "fanin must precede gate";
    }
  }
}

TEST(Netlist, LevelsAreMonotone) {
  const Netlist nl = make_s27();
  for (GateId g : nl.topo_order())
    for (GateId fi : nl.gate(g).fanins)
      EXPECT_LT(nl.levels()[fi], nl.levels()[g]);
}

TEST(Netlist, S27Statistics) {
  const Netlist nl = make_s27();
  EXPECT_EQ(nl.num_inputs(), 4u);
  EXPECT_EQ(nl.num_outputs(), 1u);
  EXPECT_EQ(nl.num_dffs(), 3u);
  EXPECT_EQ(nl.num_comb_gates(), 10u);
}

TEST(Netlist, ModificationAfterFinalizeRejected) {
  Netlist nl("t");
  const GateId a = nl.add_input("a");
  const GateId g = nl.add_gate(GateType::Buf, "g", {a});
  nl.add_output(g);
  nl.finalize();
  EXPECT_THROW(nl.add_input("b"), std::runtime_error);
  EXPECT_THROW(nl.replace_fanin(g, 0, a), std::runtime_error);
}

TEST(NetlistBuilder, FluentConstruction) {
  NetlistBuilder b("demo");
  const GateId x = b.input("x");
  const GateId y = b.input("y");
  const GateId m = b.mux("m", x, y, b.input("s"));
  b.output(m);
  const Netlist nl = b.build();
  EXPECT_EQ(nl.num_inputs(), 3u);
  EXPECT_EQ(nl.gate(m).type, GateType::Mux2);
}

}  // namespace
}  // namespace uniscan
