#include "atpg/frame_model.hpp"

#include <gtest/gtest.h>

#include "fault/fault_list.hpp"
#include "scan/scan_insertion.hpp"
#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

TEST(DCalc, PairConstantsAndPredicates) {
  EXPECT_TRUE(is_d_or_dbar(V5::d()));
  EXPECT_TRUE(is_d_or_dbar(V5::dbar()));
  EXPECT_FALSE(is_d_or_dbar(V5::one()));
  EXPECT_FALSE(is_d_or_dbar(V5{V3::One, V3::X}));
  EXPECT_TRUE(is_fully_known(V5::d()));
  EXPECT_FALSE(is_fully_known(V5::x()));
  EXPECT_EQ(v5_to_char(V5::d()), 'D');
  EXPECT_EQ(v5_to_char(V5::dbar()), 'B');
}

TEST(DCalc, GateEvaluationPropagatesD) {
  // AND(D, 1) = D; AND(D, 0) = 0; AND(D, D') = 0.
  {
    const V5 in[] = {V5::d(), V5::one()};
    EXPECT_EQ(eval_gate_v5(GateType::And, in, 2), V5::d());
  }
  {
    const V5 in[] = {V5::d(), V5::zero()};
    EXPECT_EQ(eval_gate_v5(GateType::And, in, 2), V5::zero());
  }
  {
    const V5 in[] = {V5::d(), V5::dbar()};
    EXPECT_EQ(eval_gate_v5(GateType::And, in, 2), V5::zero());
  }
  {
    const V5 in[] = {V5::d()};
    EXPECT_EQ(eval_gate_v5(GateType::Not, in, 1), V5::dbar());
  }
  {
    const V5 in[] = {V5::d(), V5::d()};
    EXPECT_EQ(eval_gate_v5(GateType::Xor, in, 2), V5::zero());
  }
}

TEST(FrameModel, StemFaultForcedEveryFrame) {
  const Netlist nl = make_s27();
  const auto g8 = nl.find("G8");
  ASSERT_TRUE(g8);
  FrameModel model(nl, Fault{*g8, kStemPin, true}, 3);
  model.simulate();
  for (std::size_t f = 0; f < 3; ++f) EXPECT_EQ(model.value(f, *g8).faulty, V3::One);
}

TEST(FrameModel, ActivationCreatesD) {
  const Netlist nl = make_s27();
  // G14 = NOT(G0); fault G14 s-a-0 is activated by G0 = 0.
  const auto g14 = nl.find("G14");
  const auto g0_pi = nl.find("G0");
  ASSERT_TRUE(g14 && g0_pi);
  FrameModel model(nl, Fault{*g14, kStemPin, false}, 1);
  // PI index of G0.
  std::size_t pi_index = 0;
  for (std::size_t i = 0; i < nl.num_inputs(); ++i)
    if (nl.inputs()[i] == *g0_pi) pi_index = i;
  model.assign(0, pi_index, V3::Zero);
  model.simulate();
  EXPECT_EQ(model.value(0, *g14), V5::d());
  EXPECT_TRUE(model.any_effect());
}

TEST(FrameModel, InitialStateCarriesIntoFrameZero) {
  const Netlist nl = make_s27();
  FrameModel model(nl, Fault{0, kStemPin, false}, 2);
  State good(3, V3::One), faulty(3, V3::One);
  faulty[1] = V3::Zero;  // pre-latched fault effect at FF 1
  model.set_initial_state(good, faulty);
  model.simulate();
  EXPECT_EQ(model.value(0, nl.dffs()[1]), V5::d());
}

TEST(FrameModel, StateAssignableReplacesFixedState) {
  const Netlist nl = make_s27();
  FrameModel model(nl, Fault{0, kStemPin, false}, 1);
  model.set_state_assignable(true);
  model.assign_state(0, V3::One);
  model.simulate();
  EXPECT_EQ(model.value(0, nl.dffs()[0]).good, V3::One);
  EXPECT_EQ(model.value(0, nl.dffs()[1]).good, V3::X);  // unassigned
}

TEST(FrameModel, PinnedInputsSurviveClear) {
  const Netlist nl = make_s27();
  FrameModel model(nl, Fault{0, kStemPin, false}, 3);
  model.pin_input(2, V3::One);
  model.clear_assignments();
  for (std::size_t f = 0; f < 3; ++f) EXPECT_EQ(model.assignment(f, 2), V3::One);
}

TEST(FrameModel, ExtractSequenceKeepsAssignments) {
  const Netlist nl = make_s27();
  FrameModel model(nl, Fault{0, kStemPin, false}, 4);
  model.assign(1, 0, V3::One);
  model.assign(2, 3, V3::Zero);
  const TestSequence seq = model.extract_sequence(3);
  ASSERT_EQ(seq.length(), 3u);
  EXPECT_EQ(seq.at(1, 0), V3::One);
  EXPECT_EQ(seq.at(2, 3), V3::Zero);
  EXPECT_EQ(seq.at(0, 0), V3::X);
}

TEST(FrameModel, CostsFavourPrimaryInputsOverState) {
  const Netlist nl = make_s27();
  FrameModel model(nl, Fault{0, kStemPin, false}, 1);
  // PI cost is 1; DFF output cost carries the per-frame penalty.
  for (GateId pi : nl.inputs()) {
    EXPECT_EQ(model.cost0(pi), 1u);
    EXPECT_EQ(model.cost1(pi), 1u);
  }
  for (GateId ff : nl.dffs()) {
    EXPECT_GT(model.cost0(ff), 1u);
    EXPECT_GT(model.cost1(ff), 1u);
  }
}

TEST(FrameModel, LatchedEffectReported) {
  // Scan circuit: fault effect reaching a chain cell must show up in
  // first_latched_effect when inputs activate it.
  const ScanCircuit sc = insert_scan(make_s27());
  const Netlist& nl = sc.netlist;
  // Fault on the D-path of the first chain cell: mux output s-a-1 while the
  // functional D is 0. Find the mux feeding cell 0.
  const GateId mux = nl.gate(sc.chain().cells[0]).fanins[0];
  ASSERT_EQ(nl.gate(mux).type, GateType::Mux2);
  FrameModel model(nl, Fault{mux, kStemPin, true}, 2);
  State known(nl.num_dffs(), V3::Zero);
  model.set_initial_state(known, known);
  // scan_sel = 0 keeps functional mode; G0=1,G1=0,G2=0,G3=0 gives G10=...
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) model.assign(0, i, V3::Zero);
  model.simulate();
  if (!model.first_latched_effect().has_value()) {
    // The all-zero vector may not activate; try G0 = 1.
    model.assign(0, 0, V3::One);
    model.simulate();
  }
  ASSERT_TRUE(model.first_latched_effect().has_value());
  EXPECT_EQ(model.first_latched_effect()->frame, 0u);
  EXPECT_EQ(model.first_latched_effect()->dff_index, 0u);
}

}  // namespace
}  // namespace uniscan
