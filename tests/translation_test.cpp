#include "translate/translation.hpp"

#include <gtest/gtest.h>

#include "fault/fault_list.hpp"
#include "sim/fault_sim.hpp"
#include "sim/sequential_sim.hpp"
#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

std::vector<V3> vec(const std::string& s) {
  std::vector<V3> out;
  for (char c : s) out.push_back(v3_from_char(c));
  return out;
}

/// The paper's Table 2 test set for s27_scan (T_4 has three vectors — Table 3
/// shows the translated sequence with functional vectors at rows 15-17).
ScanTestSet paper_table2() {
  ScanTestSet set;
  set.num_original_inputs = 4;
  set.chain_length = 3;
  set.tests.push_back({vec("011"), {vec("0000")}});
  set.tests.push_back({vec("011"), {vec("1101")}});
  set.tests.push_back({vec("000"), {vec("1010")}});
  set.tests.push_back({vec("110"), {vec("0100"), vec("0111"), vec("1001")}});
  return set;
}

TEST(Translation, LengthEqualsApplicationCycles) {
  const ScanCircuit sc = insert_scan(make_s27());
  const ScanTestSet set = paper_table2();
  TranslationOptions opt;
  opt.fill = XFillPolicy::KeepX;
  const TestSequence seq = translate_test_set(sc, set, opt);
  // Paper Table 3: 21 vectors (4 tests: 3+1, 3+1, 3+1, 3+2, plus final 3).
  EXPECT_EQ(seq.length(), 21u);
  EXPECT_EQ(seq.length(), set.application_cycles());
}

TEST(Translation, MatchesPaperTable3Structure) {
  const ScanCircuit sc = insert_scan(make_s27());
  TranslationOptions opt;
  opt.fill = XFillPolicy::KeepX;
  const TestSequence seq = translate_test_set(sc, paper_table2(), opt);
  const std::size_t sel = sc.scan_sel_index();
  const std::size_t inp = sc.chain().scan_inp_index;

  // Table 3 rows 0-2: scan in 011 -> scan_inp = 1,1,0.
  for (int t : {0, 1, 2}) EXPECT_EQ(seq.at(t, sel), V3::One);
  EXPECT_EQ(seq.at(0, inp), V3::One);
  EXPECT_EQ(seq.at(1, inp), V3::One);
  EXPECT_EQ(seq.at(2, inp), V3::Zero);
  // Row 3: T_1 = 0000 with scan_sel = 0.
  EXPECT_EQ(seq.at(3, sel), V3::Zero);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(seq.at(3, i), V3::Zero);
  // Row 7: T_2 = 1101.
  EXPECT_EQ(seq.at(7, sel), V3::Zero);
  EXPECT_EQ(seq.at(7, 0), V3::One);
  EXPECT_EQ(seq.at(7, 1), V3::One);
  EXPECT_EQ(seq.at(7, 2), V3::Zero);
  EXPECT_EQ(seq.at(7, 3), V3::One);
  // Rows 8-10: scan in 000.
  for (int t : {8, 9, 10}) {
    EXPECT_EQ(seq.at(t, sel), V3::One);
    EXPECT_EQ(seq.at(t, inp), V3::Zero);
  }
  // Rows 12-14: scan in 110 -> fed reversed: 0,1,1.
  EXPECT_EQ(seq.at(12, inp), V3::Zero);
  EXPECT_EQ(seq.at(13, inp), V3::One);
  EXPECT_EQ(seq.at(14, inp), V3::One);
  // Rows 15-17: T_4 = 0100, 0111, 1001.
  for (int t : {15, 16, 17}) EXPECT_EQ(seq.at(t, sel), V3::Zero);
  EXPECT_EQ(seq.at(17, 0), V3::One);
  EXPECT_EQ(seq.at(17, 3), V3::One);
  // Rows 18-20: final scan-out.
  for (int t : {18, 19, 20}) EXPECT_EQ(seq.at(t, sel), V3::One);
}

TEST(Translation, ScanInLoadsCorrectState) {
  // Simulate the translated sequence and verify the state right before each
  // functional vector equals the test's scan-in.
  const ScanCircuit sc = insert_scan(make_s27());
  const ScanTestSet set = paper_table2();
  TranslationOptions opt;
  opt.fill = XFillPolicy::RandomFill;
  opt.seed = 3;
  const TestSequence seq = translate_test_set(sc, set, opt);
  const SequentialSimulator sim(sc.netlist);
  const SimTrace trace = sim.simulate(seq, sim.initial_state());

  // Test 1's functional vector is at t=3; the state entering t=3 must be 011.
  EXPECT_EQ(trace.state[3], (State{V3::Zero, V3::One, V3::One}));
  // Test 3 at t=11: state 000.
  EXPECT_EQ(trace.state[11], (State{V3::Zero, V3::Zero, V3::Zero}));
  // Test 4 at t=15: state 110.
  EXPECT_EQ(trace.state[15], (State{V3::One, V3::One, V3::Zero}));
}

TEST(Translation, DetectsWhatTheTestSetDetects) {
  // Property from Section 3: the translated sequence detects every fault the
  // scan test set detects. We verify the paper's Table 2 set detects a
  // healthy share of s27_scan faults through its translation.
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const TestSequence seq = translate_test_set(sc, paper_table2(), {});
  FaultSimulator sim(sc.netlist);
  const auto det = sim.detected_indices(seq, fl.faults());
  EXPECT_GT(det.size(), fl.size() / 2);
}

TEST(Translation, FillPolicies) {
  const ScanCircuit sc = insert_scan(make_s27());
  TranslationOptions keep;
  keep.fill = XFillPolicy::KeepX;
  TranslationOptions zero;
  zero.fill = XFillPolicy::ZeroFill;
  TranslationOptions random;
  random.fill = XFillPolicy::RandomFill;

  const TestSequence kx = translate_test_set(sc, paper_table2(), keep);
  bool has_x = false;
  for (std::size_t t = 0; t < kx.length(); ++t)
    for (std::size_t i = 0; i < kx.num_inputs(); ++i) has_x |= kx.at(t, i) == V3::X;
  EXPECT_TRUE(has_x);

  for (const auto& opt : {zero, random}) {
    const TestSequence full = translate_test_set(sc, paper_table2(), opt);
    for (std::size_t t = 0; t < full.length(); ++t)
      for (std::size_t i = 0; i < full.num_inputs(); ++i)
        EXPECT_NE(full.at(t, i), V3::X);
  }
}

TEST(Translation, RejectsMismatchedShapes) {
  const ScanCircuit sc = insert_scan(make_s27());
  ScanTestSet bad = paper_table2();
  bad.chain_length = 5;
  EXPECT_THROW(translate_test_set(sc, bad), std::invalid_argument);

  ScanTestSet bad2 = paper_table2();
  bad2.tests[0].scan_in.pop_back();
  EXPECT_THROW(translate_test_set(sc, bad2), std::invalid_argument);

  ScanTestSet bad3 = paper_table2();
  bad3.num_original_inputs = 9;
  EXPECT_THROW(translate_test_set(sc, bad3), std::invalid_argument);
}

TEST(Translation, ApplicationCycleAccounting) {
  const ScanTestSet set = paper_table2();
  // sum (N + |T_i|) + N = (3+1)+(3+1)+(3+1)+(3+3)+3 = 21 (the paper's
  // Table 3 has 21 rows, 0 through 20).
  EXPECT_EQ(set.application_cycles(), 21u);
  EXPECT_EQ(set.functional_cycles(), 6u);
}

}  // namespace
}  // namespace uniscan
