#include "workloads/synth_gen.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "netlist/bench_io.hpp"
#include "scan/scan_insertion.hpp"
#include "workloads/suite.hpp"

namespace uniscan {
namespace {

SynthSpec spec(std::size_t pi, std::size_t ff, std::size_t gates, std::uint64_t seed = 1) {
  SynthSpec s;
  s.name = "synth";
  s.num_inputs = pi;
  s.num_dffs = ff;
  s.num_gates = gates;
  s.seed = seed;
  return s;
}

TEST(SynthGen, MeetsRequestedProfile) {
  const Netlist nl = generate_synthetic(spec(7, 12, 120));
  EXPECT_EQ(nl.num_inputs(), 7u);
  EXPECT_EQ(nl.num_dffs(), 12u);
  EXPECT_EQ(nl.num_comb_gates(), 120u);
  EXPECT_GE(nl.num_outputs(), 1u);
}

TEST(SynthGen, DeterministicForSameSeed) {
  const Netlist a = generate_synthetic(spec(5, 6, 60, 42));
  const Netlist b = generate_synthetic(spec(5, 6, 60, 42));
  const std::string sa = write_bench_string(a);
  const std::string sb = write_bench_string(b);
  EXPECT_EQ(sa, sb);
}

TEST(SynthGen, DifferentSeedsDiffer) {
  const Netlist a = generate_synthetic(spec(5, 6, 60, 1));
  const Netlist b = generate_synthetic(spec(5, 6, 60, 2));
  EXPECT_NE(write_bench_string(a), write_bench_string(b));
}

TEST(SynthGen, EveryInputAndFlipFlopIsConsumed) {
  const Netlist nl = generate_synthetic(spec(9, 11, 100));
  for (GateId pi : nl.inputs()) EXPECT_GT(nl.fanout_count(pi), 0u) << nl.gate(pi).name;
  for (GateId ff : nl.dffs()) {
    // Q consumed by logic (not only by the scan chain to be inserted later).
    EXPECT_GT(nl.fanout_count(ff), 0u) << nl.gate(ff).name;
    // D driven by combinational logic.
    EXPECT_TRUE(is_combinational(nl.gate(nl.gate(ff).fanins[0]).type));
  }
}

TEST(SynthGen, AllSinkGatesArePrimaryOutputs) {
  const Netlist nl = generate_synthetic(spec(6, 8, 80));
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    if (!is_combinational(nl.gate(g).type)) continue;
    if (nl.fanout_count(g) == 0) {
      EXPECT_TRUE(nl.output_index(g).has_value());
    }
  }
}

TEST(SynthGen, NoDuplicateFaninPins) {
  const Netlist nl = generate_synthetic(spec(6, 8, 150, 9));
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const auto& fi = nl.gate(g).fanins;
    for (std::size_t i = 0; i < fi.size(); ++i)
      for (std::size_t j = i + 1; j < fi.size(); ++j)
        EXPECT_NE(fi[i], fi[j]) << "gate " << nl.gate(g).name;
  }
}

TEST(SynthGen, RoundTripsThroughBenchFormat) {
  const Netlist a = generate_synthetic(spec(4, 5, 50, 3));
  const Netlist b = read_bench_string(write_bench_string(a), a.name());
  EXPECT_EQ(a.num_inputs(), b.num_inputs());
  EXPECT_EQ(a.num_dffs(), b.num_dffs());
  EXPECT_EQ(a.num_comb_gates(), b.num_comb_gates());
}

TEST(SynthGen, TinyProfilesStillValid) {
  const Netlist nl = generate_synthetic(spec(1, 1, 1));
  EXPECT_GE(nl.num_comb_gates(), 1u);
  EXPECT_EQ(nl.num_inputs(), 1u);
  EXPECT_EQ(nl.num_dffs(), 1u);
}

TEST(SynthGen, RejectsDegenerateSpecs) {
  EXPECT_THROW(generate_synthetic(spec(0, 1, 10)), std::invalid_argument);
  EXPECT_THROW(generate_synthetic(spec(1, 0, 10)), std::invalid_argument);
}

TEST(Suite, ContainsAllPaperCircuits) {
  EXPECT_EQ(paper_suite().size(), 27u);  // 18 ISCAS-89 rows + 8 ITC-99 rows + s27
  EXPECT_TRUE(find_suite_entry("s298").has_value());
  EXPECT_TRUE(find_suite_entry("b11").has_value());
  EXPECT_FALSE(find_suite_entry("nope").has_value());
}

TEST(Suite, ProfilesMatchPaperTable5) {
  // inp column of Table 5 includes the two scan lines.
  const auto s298 = *find_suite_entry("s298");
  EXPECT_EQ(s298.num_inputs + 2, 5u);
  EXPECT_EQ(s298.num_dffs, 14u);
  const auto b09 = *find_suite_entry("b09");
  EXPECT_EQ(b09.num_inputs + 2, 4u);
  EXPECT_EQ(b09.num_dffs, 28u);
}

TEST(Suite, LoadCircuitProducesMatchingProfiles) {
  for (const char* name : {"s27", "s298", "b01"}) {
    const auto entry = *find_suite_entry(name);
    const Netlist nl = load_circuit(entry);
    EXPECT_EQ(nl.num_inputs(), entry.num_inputs) << name;
    EXPECT_EQ(nl.num_dffs(), entry.num_dffs) << name;
  }
}

TEST(Suite, S27IsTheRealCircuit) {
  const Netlist nl = load_circuit(*find_suite_entry("s27"));
  EXPECT_TRUE(nl.find("G17").has_value());
  EXPECT_EQ(nl.num_comb_gates(), 10u);
}

TEST(Suite, EveryPaperCircuitConstructs) {
  // All 27 suite circuits — including the large --full ones up to s35932
  // (1728 FFs, ~16k gates) — must build, finalize and scan-insert cleanly.
  for (const auto& entry : paper_suite()) {
    const Netlist nl = load_circuit(entry);
    EXPECT_EQ(nl.num_inputs(), entry.num_inputs) << entry.name;
    EXPECT_EQ(nl.num_dffs(), entry.num_dffs) << entry.name;
    EXPECT_TRUE(nl.is_finalized());
    const ScanCircuit sc = insert_scan(nl);
    EXPECT_EQ(sc.netlist.num_inputs(), entry.num_inputs + 2) << entry.name;
  }
}

TEST(Suite, MediumCircuitFullPipeline) {
  // One --full-only circuit end to end (s641-class: 35 PIs, 19 FFs).
  const Netlist c = load_circuit(*find_suite_entry("s641"));
  PipelineConfig cfg;
  cfg.run_baseline = false;
  const GenerateCompactReport r = run_generate_and_compact(c, cfg);
  EXPECT_GE(r.atpg.fault_coverage(), 90.0);
  EXPECT_LE(r.omitted.total, r.restored.total);
}

TEST(Suite, FastSuiteIsSubset) {
  const auto fast = fast_suite();
  EXPECT_GT(fast.size(), 10u);
  EXPECT_LT(fast.size(), paper_suite().size());
  for (const auto& e : fast) EXPECT_TRUE(e.in_fast_suite);
}

}  // namespace
}  // namespace uniscan
