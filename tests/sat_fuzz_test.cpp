// Seeded fuzz cross-check of the SAT engine against PODEM (DESIGN.md §5l):
// random synthetic scan circuits, sampled collapsed faults, and for each
// fault both engines search the same depth-1 (SI, T) space — their verdicts
// must agree whenever neither aborted, and every SAT test must replay to a
// real detection.
//
// Reproducibility follows the fuzz_property_test contract: every random
// choice derives from the gtest parameter seed and nothing else, and each
// case opens with a SCOPED_TRACE carrying the seed and derived spec so a
// failure logs its exact replay recipe.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/uniscan.hpp"
#include "sat/sat_engine.hpp"

namespace uniscan {
namespace {

std::string fuzz_repro(std::uint64_t seed, const SynthSpec& spec) {
  return "fuzz seed=" + std::to_string(seed) + " circuit=" + spec.name +
         " (pi=" + std::to_string(spec.num_inputs) + " ff=" + std::to_string(spec.num_dffs) +
         " gates=" + std::to_string(spec.num_gates) +
         "); deterministic in the seed — rerun with --gtest_filter='*Seeds/*/" +
         std::to_string(seed - 1) + "' to replay exactly";
}

// The same file builds twice: the default (tier1) matrix in uniscan_tests,
// and a wider seed matrix in uniscan_slow_tests (-DUNISCAN_SLOW_FUZZ,
// ctest label `slow`).
#ifdef UNISCAN_SLOW_FUZZ
constexpr std::uint64_t kVerdictSeedEnd = 41;
#else
constexpr std::uint64_t kVerdictSeedEnd = 9;
#endif

SynthSpec fuzz_spec(std::uint64_t seed) {
  Rng rng(seed * 7919 + 13);
  SynthSpec spec;
  spec.name = "fuzz" + std::to_string(seed);
  spec.num_inputs = 2 + rng.next_below(6);
  spec.num_dffs = 2 + rng.next_below(8);
  spec.num_gates = 20 + rng.next_below(60);
  spec.seed = seed;
  return spec;
}

class FuzzSatVerdict : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSatVerdict, AgreesWithPodemOnRandomCircuits) {
  const SynthSpec spec = fuzz_spec(GetParam() + 300);
  SCOPED_TRACE(fuzz_repro(GetParam(), spec));
  const Netlist c = generate_synthetic(spec);
  const ScanCircuit sc = insert_scan(c);
  const CompiledNetlist compiled(sc.netlist);
  const FaultList fl = FaultList::collapsed(sc.netlist);
  ASSERT_GT(fl.size(), 0u);
  const sat::SatEngine engine(compiled);

  constexpr int kBacktracks = 5000;
  const std::size_t stride = std::max<std::size_t>(1, fl.size() / 24);
  for (std::size_t fi = 0; fi < fl.size(); fi += stride) {
    const Fault& fault = fl[fi];
    SCOPED_TRACE("fault " + fault_to_string(sc.netlist, fault) + " depth 1");

    FrameModel proof(compiled, fault, 1);
    proof.set_state_assignable(true);
    const PodemResult pr = run_podem(proof, PodemGoal::ScanObserve, {kBacktracks, {}});
    const bool podem_proved = !pr.success && !pr.aborted && pr.backtracks <= kBacktracks;

    sat::SatEngineOptions sopt;
    sopt.frames = 1;
    sopt.state_assignable = true;
    const sat::SatResult sr = engine.prove(fault, sopt);
    if (sr.verdict == sat::SatVerdict::Aborted) continue;  // no claim (PR 4)

    if (pr.success) {
      ASSERT_EQ(sr.verdict, sat::SatVerdict::Testable)
          << "PODEM found a test the SAT miter calls unsatisfiable";
    } else if (podem_proved) {
      ASSERT_EQ(sr.verdict, sat::SatVerdict::RedundantProved)
          << "PODEM exhausted the space but SAT reports a test";
    }

    if (sr.verdict == sat::SatVerdict::Testable) {
      // Independent replay of the decoded artifacts.
      FrameModel replay(compiled, fault, sr.frames_used);
      replay.set_state_assignable(true);
      for (std::size_t d = 0; d < sr.scan_in.size(); ++d)
        replay.assign_state(d, sr.scan_in[d]);
      for (std::size_t t = 0; t < sr.subsequence.length(); ++t)
        for (std::size_t pi = 0; pi < sr.subsequence.num_inputs(); ++pi)
          replay.assign(t, pi, sr.subsequence.at(t, pi));
      replay.simulate();
      ASSERT_TRUE(replay.po_detection_frame().has_value() ||
                  replay.first_latched_effect().has_value())
          << "SAT test does not replay to a detection";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSatVerdict,
                         ::testing::Range<std::uint64_t>(1, kVerdictSeedEnd));

class FuzzSatTransition : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSatTransition, TransitionClaimsReplayAndStaySound) {
  // Transition faults: a Testable verdict must replay under the launch
  // history the engine reports, and a RedundantProved verdict must survive a
  // PODEM search attempt at the same depth (the SAT claim quantifies the
  // history, so no PODEM test at X history may exist either — X-history
  // detections survive every refinement by Kleene monotonicity).
  const SynthSpec spec = fuzz_spec(GetParam() + 700);
  SCOPED_TRACE(fuzz_repro(GetParam(), spec));
  const Netlist c = generate_synthetic(spec);
  const ScanCircuit sc = insert_scan(c);
  const CompiledNetlist compiled(sc.netlist);
  const auto tfaults = enumerate_transition_faults(sc.netlist);
  ASSERT_FALSE(tfaults.empty());
  const sat::SatEngine engine(compiled);

  const std::size_t stride = std::max<std::size_t>(1, tfaults.size() / 12);
  for (std::size_t fi = 0; fi < tfaults.size(); fi += stride) {
    SCOPED_TRACE("tfault " + transition_fault_to_string(sc.netlist, tfaults[fi]) + " depth 2");
    sat::SatEngineOptions sopt;
    sopt.frames = 2;  // launch + capture
    sopt.state_assignable = true;
    sopt.tf_prev_assignable = true;
    const sat::SatResult sr = engine.prove(tfaults[fi], sopt);
    if (sr.verdict == sat::SatVerdict::Aborted) continue;

    if (sr.verdict == sat::SatVerdict::Testable) {
      FrameModel replay(compiled, tfaults[fi], sr.frames_used);
      replay.set_state_assignable(true);
      replay.set_initial_prev_driven(sr.launch_prev);
      for (std::size_t d = 0; d < sr.scan_in.size(); ++d)
        replay.assign_state(d, sr.scan_in[d]);
      for (std::size_t t = 0; t < sr.subsequence.length(); ++t)
        for (std::size_t pi = 0; pi < sr.subsequence.num_inputs(); ++pi)
          replay.assign(t, pi, sr.subsequence.at(t, pi));
      replay.simulate();
      ASSERT_TRUE(replay.po_detection_frame().has_value() ||
                  replay.first_latched_effect().has_value())
          << "SAT transition test does not replay under its own launch history";
    } else {  // RedundantProved with a quantified history
      FrameModel model(compiled, tfaults[fi], 2);
      model.set_state_assignable(true);
      const PodemResult pr = run_podem(model, PodemGoal::ScanObserve, {2000, {}});
      ASSERT_FALSE(pr.success)
          << "PODEM found a transition test for a SAT-proved-redundant fault";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSatTransition,
                         ::testing::Range<std::uint64_t>(1, kVerdictSeedEnd));

}  // namespace
}  // namespace uniscan
