#include "sim/fault_sim_session.hpp"

#include <gtest/gtest.h>

#include "fault/fault_list.hpp"
#include "sim/fault_sim.hpp"
#include "sim/sequential_sim.hpp"
#include "util/rng.hpp"
#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

TestSequence random_sequence(const Netlist& nl, std::size_t len, std::uint64_t seed) {
  TestSequence seq(nl.num_inputs());
  Rng rng(seed);
  for (std::size_t t = 0; t < len; ++t) seq.append_x();
  seq.random_fill(rng);
  return seq;
}

TEST(FaultSimSession, IncrementalEqualsFromScratch) {
  const Netlist nl = make_s27();
  const FaultList fl = FaultList::collapsed(nl);
  const TestSequence full = random_sequence(nl, 60, 77);

  // Advance in uneven chunks.
  FaultSimSession session(nl, fl.faults());
  std::size_t pos = 0;
  for (std::size_t chunk : {7u, 1u, 20u, 32u}) {
    TestSequence part(nl.num_inputs());
    for (std::size_t t = 0; t < chunk; ++t) part.append(full.vector_at(pos + t));
    session.advance(part);
    pos += chunk;
  }
  ASSERT_EQ(pos, full.length());
  EXPECT_EQ(session.now(), full.length());

  FaultSimulator sim(nl);
  const auto reference = sim.run(full, fl.faults());
  ASSERT_EQ(session.detections().size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(session.detections()[i].detected, reference[i].detected) << "fault " << i;
    if (reference[i].detected) {
      EXPECT_EQ(session.detections()[i].time, reference[i].time) << "fault " << i;
    }
  }
}

TEST(FaultSimSession, GoodStateTracksLogicSimulator) {
  const Netlist nl = make_s27();
  const FaultList fl = FaultList::collapsed(nl);
  const TestSequence seq = random_sequence(nl, 25, 3);

  FaultSimSession session(nl, fl.faults());
  session.advance(seq);

  const SequentialSimulator gsim(nl);
  const SimTrace trace = gsim.simulate(seq, gsim.initial_state());
  EXPECT_EQ(session.good_state(), trace.state.back());
}

TEST(FaultSimSession, SnapshotRestoreRoundTrip) {
  const Netlist nl = make_s27();
  const FaultList fl = FaultList::collapsed(nl);
  FaultSimSession session(nl, fl.faults());
  session.advance(random_sequence(nl, 10, 1));

  const auto snap = session.snapshot();
  const std::size_t detected_before = session.num_detected();
  const State good_before = session.good_state();

  session.advance(random_sequence(nl, 30, 2));
  EXPECT_GE(session.num_detected(), detected_before);

  session.restore(snap);
  EXPECT_EQ(session.num_detected(), detected_before);
  EXPECT_EQ(session.good_state(), good_before);
  EXPECT_EQ(session.now(), 10u);
}

TEST(FaultSimSession, PairStateShowsLatchedEffect) {
  const Netlist nl = make_toy_pipeline();
  // f0 D-pin stuck-at-1; with a=0, en=1 from state (0,0) the good next f0 is
  // 0 while the faulty machine latches 1.
  const Fault f{*nl.find("f0"), 0, true};
  const Fault faults[1] = {f};
  FaultSimSession session(nl, faults);
  // Drive to a known state first: en=0 forces g=0 -> f0'=0; two frames fill
  // the pipe with zeros.
  session.advance(TestSequence::from_rows(2, {"00", "00", "00"}));
  State good, faulty;
  session.pair_state(0, good, faulty);
  // In the faulty machine f0 is loaded with 1 (D pin stuck), good with 0.
  EXPECT_EQ(good[0], V3::Zero);
  EXPECT_EQ(faulty[0], V3::One);
}

TEST(FaultSimSession, DetectionCountsMonotone) {
  const Netlist nl = make_s27();
  const FaultList fl = FaultList::collapsed(nl);
  FaultSimSession session(nl, fl.faults());
  std::size_t prev = 0;
  for (int k = 0; k < 5; ++k) {
    session.advance(random_sequence(nl, 12, 100 + static_cast<std::uint64_t>(k)));
    EXPECT_GE(session.num_detected(), prev);
    prev = session.num_detected();
  }
  // Random vectors detect a fair share of s27 faults quickly (the plain
  // non-scan s27 has several sequentially untestable faults, so "majority"
  // is not achievable from the unknown power-up state).
  EXPECT_GT(prev, fl.size() / 4);
}

TEST(FaultSimSession, EmptyFaultUniverse) {
  const Netlist nl = make_s27();
  FaultSimSession session(nl, {});
  EXPECT_EQ(session.advance(random_sequence(nl, 5, 9)), 0u);
  EXPECT_EQ(session.good_state().size(), nl.num_dffs());
}

TEST(FaultSimSession, AdvanceRejectsWidthMismatch) {
  const Netlist nl = make_s27();
  const FaultList fl = FaultList::collapsed(nl);
  FaultSimSession session(nl, fl.faults());
  EXPECT_THROW(session.advance(TestSequence(2)), std::invalid_argument);
}

}  // namespace
}  // namespace uniscan
