// Golden-digest regression over the benchmark corpus (DESIGN.md §5i).
//
// Tier-1 (uniscan_tests): SHA-256 unit vectors, registry/manifest checks,
// and the digest invariance matrix on s1423 — the same circuit digested
// under compiled/levelized/event engines, 1/4 threads, and a forced 64-bit
// slot width must produce ONE hash (the determinism contracts of DESIGN.md
// §5d/§5e/§5h collapsed into a single comparison). The fast tier is also
// checked against its checked-in corpus/golden/<ckt>.ans.sha files.
//
// Slow (uniscan_slow_tests, -DUNISCAN_SLOW_CORPUS, ctest label `slow`):
// the full fast+mid sweep against the golden files plus a wider
// engine × width × thread matrix on the mid-tier anchors (s1423, s5378).
//
// Refresh goldens after an intentional behavior change with
//   UNISCAN_REGEN_GOLDEN=1 ./uniscan_tests --gtest_filter='CorpusDigest.*'
// (mirroring the trace-golden tier). Changing a digest profile or the
// canonical record bumps kDigestFormatVersion in corpus/golden.hpp.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "corpus/golden.hpp"
#include "sim/engine.hpp"
#include "util/sha256.hpp"
#include "util/thread_pool.hpp"

namespace uniscan {
namespace {

/// Forces engine + slot width + pool size for one digest run; restores the
/// defaults on exit so test order cannot leak configuration.
struct ConfigGuard {
  ConfigGuard(SimEngine e, SlotWidth w, std::size_t threads) {
    set_global_sim_engine(e);
    set_global_slot_width(w);
    ThreadPool::set_global_threads(threads);
  }
  ~ConfigGuard() {
    set_global_sim_engine(SimEngine::Compiled);
    set_global_slot_width(SlotWidth::Auto);
    ThreadPool::set_global_threads(1);
  }
};

std::string digest_under(const CorpusRegistry& reg, const CorpusEntry& e, SimEngine engine,
                         SlotWidth width, std::size_t threads) {
  const ConfigGuard guard(engine, width, threads);
  return compute_corpus_digest(reg, e).sha_hex;
}

/// Compare one circuit's digest against its golden file; with
/// UNISCAN_REGEN_GOLDEN set, rewrite the golden instead.
void check_against_golden(const CorpusRegistry& reg, const CorpusEntry& e) {
  const CircuitDigest d = compute_corpus_digest(reg, e);
  const std::string path = reg.golden_path(e);
  if (std::getenv("UNISCAN_REGEN_GOLDEN")) {
    write_golden_sha(path, d.sha_hex);
    return;
  }
  const std::string want = read_golden_sha(path);
  ASSERT_FALSE(want.empty()) << "no golden digest for " << e.name << " at " << path
                             << " (generate with UNISCAN_REGEN_GOLDEN=1 or corpus_tool)";
  EXPECT_EQ(d.sha_hex, want) << e.name << ": pipeline behavior changed; if intentional, "
                             << "regenerate with UNISCAN_REGEN_GOLDEN=1 and bump "
                             << "kDigestFormatVersion when the record format changed";
}

TEST(Sha256, FipsVectors) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg(1000, 'x');
  Sha256 h;
  h.update(std::string_view(msg).substr(0, 13));
  h.update(std::string_view(msg).substr(13, 700));
  h.update(std::string_view(msg).substr(713));
  EXPECT_EQ(h.hex(), sha256_hex(msg));
}

TEST(CorpusRegistry, ManifestLoadsAndFindsAnchors) {
  const CorpusRegistry& reg = CorpusRegistry::global();
  ASSERT_FALSE(reg.entries().empty()) << "corpus manifest missing at " << reg.dir();
  for (const char* name : {"s1423", "s5378", "s9234", "s13207"}) {
    const CorpusEntry* e = reg.find(name);
    ASSERT_NE(e, nullptr) << name;
    EXPECT_FALSE(e->sha256.empty()) << name << " must carry a hash pin";
    EXPECT_TRUE(reg.has_file(*e)) << name << " must be checked in";
  }
  EXPECT_GE(reg.tier(CorpusTier::Fast).size(), 10u);
  EXPECT_GE(reg.tier(CorpusTier::Mid).size(), 10u);
  EXPECT_FALSE(reg.tier(CorpusTier::Large).empty());
}

TEST(CorpusRegistry, HashPinsVerifyAndMismatchThrows) {
  const CorpusRegistry& reg = CorpusRegistry::global();
  const CorpusEntry* e = reg.find("s1423");
  ASSERT_NE(e, nullptr);
  EXPECT_NO_THROW(reg.bench_text(*e, /*verify=*/true));
  CorpusEntry tampered = *e;
  tampered.sha256 = std::string(64, '0');
  EXPECT_THROW(reg.bench_text(tampered, /*verify=*/true), std::runtime_error);
}

TEST(CorpusRegistry, SuiteEntriesCarryCorpusBinding) {
  const CorpusRegistry& reg = CorpusRegistry::global();
  const auto rows = reg.suite_entries(CorpusTier::Mid);
  ASSERT_FALSE(rows.empty());
  for (const SuiteEntry& s : rows) {
    EXPECT_TRUE(s.from_corpus) << s.name;
    EXPECT_FALSE(s.bench_path.empty()) << s.name;
  }
}

TEST(CorpusGolden, ReadWriteRoundTrip) {
  const std::string path = ::testing::TempDir() + "roundtrip.ans.sha";
  const std::string hex(64, 'a');
  write_golden_sha(path, hex);
  EXPECT_EQ(read_golden_sha(path), hex);
  EXPECT_EQ(read_golden_sha(path + ".missing"), "");
  write_golden_sha(path, "not-a-digest");
  EXPECT_THROW(read_golden_sha(path), std::runtime_error);
  std::remove(path.c_str());
}

#ifndef UNISCAN_SLOW_CORPUS

// ---- tier-1: invariance matrix on the s1423 anchor + fast-tier goldens ----

TEST(CorpusDigest, S1423InvariantAcrossEnginesThreadsWidths) {
  const CorpusRegistry& reg = CorpusRegistry::global();
  const CorpusEntry* e = reg.find("s1423");
  ASSERT_NE(e, nullptr);
  const std::string ref =
      digest_under(reg, *e, SimEngine::Compiled, SlotWidth::Auto, 1);
  EXPECT_EQ(digest_under(reg, *e, SimEngine::Compiled, SlotWidth::Auto, 4), ref)
      << "threads changed the digest";
  EXPECT_EQ(digest_under(reg, *e, SimEngine::Compiled, SlotWidth::W64, 4), ref)
      << "slot width changed the digest";
  EXPECT_EQ(digest_under(reg, *e, SimEngine::Levelized, SlotWidth::Auto, 1), ref)
      << "levelized engine changed the digest";
  EXPECT_EQ(digest_under(reg, *e, SimEngine::Event, SlotWidth::Auto, 1), ref)
      << "event engine changed the digest";
}

TEST(CorpusDigest, FastTierMatchesGolden) {
  const CorpusRegistry& reg = CorpusRegistry::global();
  for (const CorpusEntry& e : reg.tier(CorpusTier::Fast)) {
    SCOPED_TRACE(e.name);
    check_against_golden(reg, e);
  }
}

TEST(CorpusDigest, S1423MatchesGolden) {
  const CorpusRegistry& reg = CorpusRegistry::global();
  const CorpusEntry* e = reg.find("s1423");
  ASSERT_NE(e, nullptr);
  check_against_golden(reg, *e);
}

#else  // UNISCAN_SLOW_CORPUS

// ---- slow: the full fast+mid golden sweep + a wider matrix on the anchors --

TEST(CorpusDigestSlow, FastAndMidTiersMatchGolden) {
  const CorpusRegistry& reg = CorpusRegistry::global();
  for (const CorpusEntry& e : reg.entries()) {
    if (e.tier == CorpusTier::Large) continue;  // nightly / corpus_tool territory
    SCOPED_TRACE(e.name);
    check_against_golden(reg, e);
  }
}

TEST(CorpusDigestSlow, AnchorsInvariantAcrossFullMatrix) {
  const CorpusRegistry& reg = CorpusRegistry::global();
  constexpr std::array<SimEngine, 3> kEngines = {SimEngine::Compiled, SimEngine::Levelized,
                                                 SimEngine::Event};
  constexpr std::array<std::size_t, 4> kThreads = {1, 2, 4, 8};
  constexpr std::array<SlotWidth, 3> kWidths = {SlotWidth::W64, SlotWidth::W256,
                                                SlotWidth::W512};

  // s1423: every engine at every thread count (width Auto).
  {
    const CorpusEntry* e = reg.find("s1423");
    ASSERT_NE(e, nullptr);
    const std::string ref = digest_under(reg, *e, SimEngine::Compiled, SlotWidth::Auto, 1);
    for (const SimEngine engine : kEngines)
      for (const std::size_t threads : kThreads)
        EXPECT_EQ(digest_under(reg, *e, engine, SlotWidth::Auto, threads), ref)
            << "s1423 engine=" << sim_engine_name(engine) << " threads=" << threads;
    // Every requested width (unavailable SIMD widths resolve downward —
    // still a valid run of the width-dispatch path).
    for (const SlotWidth width : kWidths)
      EXPECT_EQ(digest_under(reg, *e, SimEngine::Compiled, width, 4), ref)
          << "s1423 width=" << slot_width_bits(width);
  }

  // s5378: the engine extremes at the thread extremes.
  {
    const CorpusEntry* e = reg.find("s5378");
    ASSERT_NE(e, nullptr);
    const std::string ref = digest_under(reg, *e, SimEngine::Compiled, SlotWidth::Auto, 1);
    EXPECT_EQ(digest_under(reg, *e, SimEngine::Compiled, SlotWidth::Auto, 8), ref);
    EXPECT_EQ(digest_under(reg, *e, SimEngine::Levelized, SlotWidth::Auto, 8), ref);
    EXPECT_EQ(digest_under(reg, *e, SimEngine::Event, SlotWidth::W64, 2), ref);
  }
}

#endif  // UNISCAN_SLOW_CORPUS

}  // namespace
}  // namespace uniscan
