#include "sim/sequence_view.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/sequence.hpp"

namespace uniscan {
namespace {

TestSequence make_seq(std::size_t length) {
  TestSequence seq(2);
  for (std::size_t t = 0; t < length; ++t) {
    // Encode the frame index in the vector so identity checks are easy.
    seq.append({(t & 1) ? V3::One : V3::Zero, (t & 2) ? V3::One : V3::Zero});
  }
  return seq;
}

TEST(SequenceView, WholeSequence) {
  const TestSequence seq = make_seq(5);
  const SequenceView v(seq);
  EXPECT_EQ(v.length(), 5u);
  EXPECT_EQ(v.num_inputs(), 2u);
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_EQ(v.base_index(t), t);
    EXPECT_EQ(v.vector_at(t), seq.vector_at(t));
  }
  EXPECT_EQ(v.materialize(), seq);
}

TEST(SequenceView, DefaultConstructedIsEmpty) {
  const SequenceView v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.length(), 0u);
  EXPECT_EQ(v.num_inputs(), 0u);
}

TEST(SequenceView, KeepListSelectsFrames) {
  const TestSequence seq = make_seq(6);
  const std::vector<std::size_t> keep = {0, 2, 5};
  const SequenceView v(seq, keep);
  EXPECT_EQ(v.length(), 3u);
  EXPECT_EQ(v.base_index(0), 0u);
  EXPECT_EQ(v.base_index(1), 2u);
  EXPECT_EQ(v.base_index(2), 5u);
  EXPECT_EQ(v.materialize(), seq.select(keep));
}

TEST(SequenceView, WithoutSkipsOnePosition) {
  const TestSequence seq = make_seq(5);
  const SequenceView whole(seq);
  for (std::size_t skip = 0; skip < 5; ++skip) {
    const SequenceView v = whole.without(skip);
    EXPECT_EQ(v.length(), 4u);
    std::vector<std::size_t> expect;
    for (std::size_t t = 0; t < 5; ++t)
      if (t != skip) expect.push_back(t);
    for (std::size_t t = 0; t < 4; ++t) EXPECT_EQ(v.base_index(t), expect[t]);
    EXPECT_EQ(v.materialize(), seq.select(expect));
  }
}

TEST(SequenceView, WithoutComposesWithKeepList) {
  const TestSequence seq = make_seq(8);
  const std::vector<std::size_t> keep = {1, 3, 4, 7};
  const SequenceView v = SequenceView(seq, keep).without(2);  // drops base 4
  EXPECT_EQ(v.length(), 3u);
  EXPECT_EQ(v.base_index(0), 1u);
  EXPECT_EQ(v.base_index(1), 3u);
  EXPECT_EQ(v.base_index(2), 7u);
  EXPECT_EQ(v.materialize(), seq.select({1, 3, 7}));
}

TEST(SequenceView, DoubleSkipThrows) {
  const TestSequence seq = make_seq(4);
  const SequenceView v = SequenceView(seq).without(1);
  EXPECT_THROW(v.without(0), std::logic_error);
}

TEST(SequenceView, OutOfRangeSkipThrows) {
  const TestSequence seq = make_seq(3);
  EXPECT_THROW(SequenceView(seq).without(3), std::out_of_range);
}

TEST(SequenceView, SkipToEmpty) {
  const TestSequence seq = make_seq(1);
  const SequenceView v = SequenceView(seq).without(0);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.materialize(), TestSequence(2));
}

}  // namespace
}  // namespace uniscan
