// Integration tests: full paper pipelines on s27 and a synthetic circuit.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "workloads/circuits.hpp"
#include "workloads/suite.hpp"

namespace uniscan {
namespace {

TEST(Pipeline, GenerateAndCompactS27) {
  const GenerateCompactReport r = run_generate_and_compact(make_s27());
  EXPECT_EQ(r.circuit, "s27");
  EXPECT_EQ(r.num_inputs, 6u);  // 4 original + scan_sel + scan_inp (Table 5 `inp`)
  EXPECT_EQ(r.num_dffs, 3u);

  // Table 6 shape: omit <= restor <= test len, same for scan counts.
  EXPECT_LE(r.restored.total, r.raw.total);
  EXPECT_LE(r.omitted.total, r.restored.total);
  EXPECT_LE(r.omitted.scan, r.omitted.total);
  EXPECT_GT(r.atpg.fault_coverage(), 99.0);

  // The unified compacted sequence must beat the complete-scan baseline
  // cycles (the paper's headline claim).
  ASSERT_TRUE(r.baseline_run);
  EXPECT_LT(r.omitted.total, r.baseline.application_cycles());
}

TEST(Pipeline, TranslateAndCompactS27) {
  const TranslateCompactReport r = run_translate_and_compact(make_s27());
  // Table 7 shape: translated length equals baseline cycles; compaction
  // strictly helps on this circuit.
  EXPECT_EQ(r.translated.total, r.baseline.application_cycles());
  EXPECT_LE(r.restored.total, r.translated.total);
  EXPECT_LE(r.omitted.total, r.restored.total);
  EXPECT_LT(r.omitted.total, r.translated.total);
}

TEST(Pipeline, GenerateAndCompactSyntheticB01) {
  const Netlist c = load_circuit(*find_suite_entry("b01"));
  PipelineConfig cfg;
  cfg.run_baseline = true;
  const GenerateCompactReport r = run_generate_and_compact(c, cfg);
  EXPECT_GE(r.atpg.fault_coverage(), 90.0);
  EXPECT_LE(r.omitted.total, r.restored.total);
  EXPECT_LE(r.restored.total, r.raw.total);
}

TEST(Pipeline, SequenceStatsCountsScanVectors) {
  const ScanCircuit sc = insert_scan(make_s27());
  TestSequence seq(sc.netlist.num_inputs());
  for (int i = 0; i < 4; ++i) seq.append_x();
  seq.constant_fill(V3::Zero);
  seq.set(1, sc.scan_sel_index(), V3::One);
  seq.set(3, sc.scan_sel_index(), V3::One);
  const SequenceStats st = sequence_stats(sc, seq);
  EXPECT_EQ(st.total, 4u);
  EXPECT_EQ(st.scan, 2u);
}

TEST(Pipeline, BaselineCanBeSkipped) {
  PipelineConfig cfg;
  cfg.run_baseline = false;
  const GenerateCompactReport r = run_generate_and_compact(make_s27(), cfg);
  EXPECT_FALSE(r.baseline_run);
}

}  // namespace
}  // namespace uniscan
