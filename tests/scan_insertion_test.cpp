#include "scan/scan_insertion.hpp"

#include <gtest/gtest.h>

#include "sim/sequential_sim.hpp"
#include "util/rng.hpp"
#include "workloads/circuits.hpp"
#include "workloads/synth_gen.hpp"

namespace uniscan {
namespace {

TEST(ScanInsertion, AddsScanNets) {
  const Netlist c = make_s27();
  const ScanCircuit sc = insert_scan(c);
  EXPECT_EQ(sc.netlist.num_inputs(), c.num_inputs() + 2);
  EXPECT_EQ(sc.netlist.num_outputs(), c.num_outputs() + 1);
  EXPECT_EQ(sc.netlist.num_dffs(), c.num_dffs());
  EXPECT_EQ(sc.netlist.num_comb_gates(), c.num_comb_gates() + c.num_dffs());  // one mux per FF
  EXPECT_EQ(sc.nets.chains.size(), 1u);
  EXPECT_EQ(sc.chain().cells.size(), c.num_dffs());
  EXPECT_EQ(sc.max_chain_length(), c.num_dffs());
  EXPECT_EQ(sc.netlist.name(), "s27_scan");
}

TEST(ScanInsertion, ChainOrderMatchesCircuitDescription) {
  const Netlist c = make_s27();
  const ScanCircuit sc = insert_scan(c);
  for (std::size_t j = 0; j < c.num_dffs(); ++j)
    EXPECT_EQ(sc.chain().cells[j], c.dffs()[j]);
}

TEST(ScanInsertion, FunctionalModePreservesBehaviour) {
  // With scan_sel = 0, C_scan must step exactly like C.
  const Netlist c = make_s27();
  const ScanCircuit sc = insert_scan(c);
  const SequentialSimulator sim_c(c);
  const SequentialSimulator sim_s(sc.netlist);

  Rng rng(31);
  State state_c(c.num_dffs(), V3::X);
  State state_s(c.num_dffs(), V3::X);
  for (int t = 0; t < 50; ++t) {
    std::vector<V3> pi(c.num_inputs());
    for (auto& v : pi) v = rng.next_bool() ? V3::One : V3::Zero;
    std::vector<V3> pi_scan = pi;
    pi_scan.push_back(V3::Zero);                          // scan_sel
    pi_scan.push_back(rng.next_bool() ? V3::One : V3::Zero);  // scan_inp (must not matter)

    const FrameValues fc = sim_c.step(state_c, pi);
    const FrameValues fs = sim_s.step(state_s, pi_scan);
    for (std::size_t o = 0; o < c.num_outputs(); ++o) EXPECT_EQ(fc.po[o], fs.po[o]);
    EXPECT_EQ(fc.next_state, fs.next_state);
    state_c = fc.next_state;
    state_s = fs.next_state;
  }
}

TEST(ScanInsertion, ShiftModeShiftsChain) {
  const Netlist c = make_s27();
  const ScanCircuit sc = insert_scan(c);
  const SequentialSimulator sim(sc.netlist);

  // Load 1,0,1 via three shifts: feed reversed (cell j gets value fed at
  // shift n-1-j).
  State s(c.num_dffs(), V3::X);
  const V3 pattern[3] = {V3::One, V3::Zero, V3::One};
  for (int k = 0; k < 3; ++k) {
    std::vector<V3> pi(sc.netlist.num_inputs(), V3::Zero);
    pi[sc.scan_sel_index()] = V3::One;
    pi[sc.chain().scan_inp_index] = pattern[2 - k];
    s = sim.step(s, pi).next_state;
  }
  EXPECT_EQ(s[0], pattern[0]);
  EXPECT_EQ(s[1], pattern[1]);
  EXPECT_EQ(s[2], pattern[2]);
}

TEST(ScanInsertion, ScanOutObservesLastCell) {
  const Netlist c = make_s27();
  const ScanCircuit sc = insert_scan(c);
  const SequentialSimulator sim(sc.netlist);

  State s{V3::Zero, V3::One, V3::Zero};
  std::vector<V3> pi(sc.netlist.num_inputs(), V3::Zero);
  pi[sc.scan_sel_index()] = V3::One;
  const FrameValues fv = sim.step(s, pi);
  // scan_out is the Q of the last chain cell: currently 0.
  EXPECT_EQ(fv.po[sc.chain().scan_out_index], V3::Zero);
  // After one shift the middle 1 moved into the last cell.
  const FrameValues fv2 = sim.step(fv.next_state, pi);
  EXPECT_EQ(fv2.po[sc.chain().scan_out_index], V3::One);
}

TEST(ScanInsertion, MultipleChainsPartitionCells) {
  SynthSpec spec;
  spec.name = "multi";
  spec.num_inputs = 4;
  spec.num_dffs = 7;
  spec.num_gates = 40;
  const Netlist c = generate_synthetic(spec);
  const ScanCircuit sc = insert_scan(c, 3);
  ASSERT_EQ(sc.nets.chains.size(), 3u);
  EXPECT_EQ(sc.nets.chains[0].cells.size(), 3u);  // 7 = 3+2+2 balanced
  EXPECT_EQ(sc.nets.chains[1].cells.size(), 2u);
  EXPECT_EQ(sc.nets.chains[2].cells.size(), 2u);
  EXPECT_EQ(sc.max_chain_length(), 3u);
  // Distinct scan-in inputs and scan-out outputs per chain.
  EXPECT_EQ(sc.netlist.num_inputs(), c.num_inputs() + 1 + 3);
  EXPECT_EQ(sc.netlist.num_outputs(), c.num_outputs() + 3);
}

TEST(ScanInsertion, LastCellAlreadyPoGetsBuffer) {
  // Build a circuit whose last DFF output is itself a PO.
  Netlist c("po_ff");
  const GateId a = c.add_input("a");
  const GateId f = c.add_dff("f", a);
  c.add_output(f);
  c.finalize();
  const ScanCircuit sc = insert_scan(c);
  // scan_out must be a distinct PO (through a buffer).
  EXPECT_EQ(sc.netlist.num_outputs(), 2u);
  const GateId so = sc.netlist.outputs()[sc.chain().scan_out_index];
  EXPECT_EQ(sc.netlist.gate(so).type, GateType::Buf);
}

TEST(ScanInsertion, RejectsBadArguments) {
  const Netlist c = make_s27();
  EXPECT_THROW(insert_scan(c, 0), std::invalid_argument);
  EXPECT_THROW(insert_scan(c, 99), std::invalid_argument);

  Netlist comb("comb");
  const GateId a = comb.add_input("a");
  comb.add_output(comb.add_gate(GateType::Not, "n", {a}));
  comb.finalize();
  EXPECT_THROW(insert_scan(comb), std::invalid_argument);
}

}  // namespace
}  // namespace uniscan
