#include "netlist/verilog_io.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/sequential_sim.hpp"
#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

constexpr const char* kCounter = R"(
// 2-bit counter with enable
module counter (clk, en, q0, q1);
  input clk, en;
  output q1;
  wire q0, q1, n0, n1, t;
  dff r0 (clk, q0, n0);
  dff r1 (clk, q1, n1);
  xor g0 (n0, q0, en);
  and g1 (t, q0, en);
  xor g2 (n1, q1, t);
endmodule
)";

TEST(VerilogIo, ParsesCounter) {
  const Netlist nl = read_verilog_string(kCounter);
  EXPECT_EQ(nl.name(), "counter");
  // clk is used only as a dff clock and must not become a PI.
  EXPECT_EQ(nl.num_inputs(), 1u);
  EXPECT_EQ(nl.gate(nl.inputs()[0]).name, "en");
  EXPECT_EQ(nl.num_dffs(), 2u);
  EXPECT_EQ(nl.num_outputs(), 1u);
  EXPECT_EQ(nl.num_comb_gates(), 3u);
}

TEST(VerilogIo, CounterCounts) {
  const Netlist nl = read_verilog_string(kCounter);
  const SequentialSimulator sim(nl);
  State s{V3::Zero, V3::Zero};  // q0, q1
  // Three enabled ticks: 00 -> 10 -> 01 -> 11 (q0 is the LSB).
  const std::vector<V3> en{V3::One};
  s = sim.step(s, en).next_state;
  EXPECT_EQ(s, (State{V3::One, V3::Zero}));
  s = sim.step(s, en).next_state;
  EXPECT_EQ(s, (State{V3::Zero, V3::One}));
  s = sim.step(s, en).next_state;
  EXPECT_EQ(s, (State{V3::One, V3::One}));
}

TEST(VerilogIo, TwoArgDffForm) {
  const auto text = R"(
module m (a, y);
  input a;
  output y;
  wire y, q;
  dff r (q, a);
  buf b1 (y, q);
endmodule
)";
  const Netlist nl = read_verilog_string(text);
  EXPECT_EQ(nl.num_dffs(), 1u);
  EXPECT_EQ(nl.num_inputs(), 1u);
}

TEST(VerilogIo, BlockCommentsStripped) {
  const auto text = "module m (a, y); /* multi\nline */ input a; output y;\n"
                    "wire y; not n1 (y, a); endmodule";
  const Netlist nl = read_verilog_string(text);
  EXPECT_EQ(nl.num_comb_gates(), 1u);
}

TEST(VerilogIo, RejectsBuses) {
  EXPECT_THROW(read_verilog_string("module m (a); input [3:0] a; endmodule"),
               std::runtime_error);
}

TEST(VerilogIo, RejectsAssign) {
  EXPECT_THROW(
      read_verilog_string("module m (a, y); input a; output y; assign y = a; endmodule"),
      std::runtime_error);
}

TEST(VerilogIo, RejectsUnknownPrimitive) {
  EXPECT_THROW(read_verilog_string(
                   "module m (a, y); input a; output y; wire y; frob f1 (y, a); endmodule"),
               std::runtime_error);
}

TEST(VerilogIo, RejectsDoubleDriver) {
  EXPECT_THROW(read_verilog_string("module m (a, y); input a; output y; wire y;"
                                   "not n1 (y, a); not n2 (y, a); endmodule"),
               std::runtime_error);
}

TEST(VerilogIo, RejectsUndrivenOutput) {
  EXPECT_THROW(read_verilog_string("module m (a, y); input a; output y; endmodule"),
               std::runtime_error);
}

TEST(VerilogIo, RejectsMissingEndmodule) {
  EXPECT_THROW(read_verilog_string("module m (a, y); input a; output y; wire y; not n (y, a);"),
               std::runtime_error);
}

TEST(VerilogIo, RoundTripPreservesBehaviour) {
  const Netlist a = make_s27();
  const Netlist b = read_verilog_string(write_verilog_string(a), "s27rt");
  EXPECT_EQ(b.num_inputs(), a.num_inputs());
  EXPECT_EQ(b.num_outputs(), a.num_outputs());
  EXPECT_EQ(b.num_dffs(), a.num_dffs());
  // The writer adds one PO buffer per output.
  EXPECT_EQ(b.num_comb_gates(), a.num_comb_gates() + a.num_outputs());

  // Behavioural equivalence over a random stimulus.
  const SequentialSimulator sa(a), sb(b);
  Rng rng(77);
  State xa(a.num_dffs(), V3::X), xb(b.num_dffs(), V3::X);
  for (int t = 0; t < 40; ++t) {
    std::vector<V3> pi(a.num_inputs());
    for (auto& v : pi) v = rng.next_bool() ? V3::One : V3::Zero;
    const FrameValues fa = sa.step(xa, pi);
    const FrameValues fb = sb.step(xb, pi);
    ASSERT_EQ(fa.po, fb.po) << "t=" << t;
    xa = fa.next_state;
    xb = fb.next_state;
  }
}

}  // namespace
}  // namespace uniscan
