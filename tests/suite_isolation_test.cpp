// Failure isolation for suite runs (DESIGN.md §5f): one poisoned circuit
// becomes a structured TaskFailure in its own slot while every other
// circuit's report stays bit-identical to a clean run — at any thread count.
// Failures are injected deterministically via UNISCAN_FAULT_INJECT.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "util/thread_pool.hpp"
#include "workloads/suite.hpp"

namespace uniscan {
namespace {

/// Scoped UNISCAN_FAULT_INJECT setting; always unset on exit so one test's
/// poison cannot leak into the next.
class ScopedInjection {
 public:
  explicit ScopedInjection(const std::string& spec) {
    ::setenv("UNISCAN_FAULT_INJECT", spec.c_str(), /*overwrite=*/1);
  }
  ~ScopedInjection() { ::unsetenv("UNISCAN_FAULT_INJECT"); }
};

std::vector<SuiteEntry> mini_suite() {
  return {*find_suite_entry("s27"), *find_suite_entry("b01"), *find_suite_entry("b02")};
}

class SuiteIsolation : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("UNISCAN_FAULT_INJECT");
    ThreadPool::set_global_threads(1);
  }
};

TEST_F(SuiteIsolation, CleanRunHasNoFailures) {
  const auto rows = run_suite_generate_and_compact_isolated(mini_suite());
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    EXPECT_FALSE(row.failed());
    EXPECT_GT(row.value.atpg.detected, 0u);
    EXPECT_FALSE(row.value.timed_out());
  }
}

TEST_F(SuiteIsolation, InjectedFailureIsIsolatedAndOtherRowsBitIdentical) {
  const auto suite = mini_suite();
  const auto clean = run_suite_generate_and_compact_isolated(suite);
  ASSERT_EQ(clean.size(), 3u);

  const ScopedInjection poison("b01:atpg");
  for (const std::size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool::set_global_threads(threads);
    const auto rows = run_suite_generate_and_compact_isolated(suite);
    ASSERT_EQ(rows.size(), 3u);

    // The poisoned circuit fails with a structured, stage-tagged record.
    ASSERT_TRUE(rows[1].failed());
    EXPECT_EQ(rows[1].failure->circuit, "b01");
    EXPECT_EQ(rows[1].failure->stage, "atpg");
    EXPECT_NE(rows[1].failure->what.find("injected fault"), std::string::npos);

    // The healthy circuits are bit-identical to the clean run.
    for (const std::size_t i : {0u, 2u}) {
      ASSERT_FALSE(rows[i].failed()) << suite[i].name;
      EXPECT_EQ(rows[i].value.atpg.sequence, clean[i].value.atpg.sequence) << suite[i].name;
      EXPECT_EQ(rows[i].value.atpg.detected, clean[i].value.atpg.detected) << suite[i].name;
      EXPECT_EQ(rows[i].value.omission.sequence, clean[i].value.omission.sequence)
          << suite[i].name;
    }
  }
}

TEST_F(SuiteIsolation, WildcardStageKillsFirstStageOfTheCircuit) {
  const ScopedInjection poison("b02:*");
  const auto rows = run_suite_generate_and_compact_isolated(mini_suite());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_FALSE(rows[0].failed());
  EXPECT_FALSE(rows[1].failed());
  ASSERT_TRUE(rows[2].failed());
  EXPECT_EQ(rows[2].failure->circuit, "b02");
  EXPECT_EQ(rows[2].failure->stage, "load");  // the flow's first stage
}

TEST_F(SuiteIsolation, FailFastPropagatesTheStageError) {
  const ScopedInjection poison("b01:faults");
  PipelineConfig cfg;
  cfg.fail_fast = true;
  try {
    run_suite_generate_and_compact_isolated(mini_suite(), cfg);
    FAIL() << "expected StageError to escape under fail_fast";
  } catch (const StageError& e) {
    EXPECT_EQ(e.stage(), "faults");
    EXPECT_NE(std::string(e.what()).find("b01"), std::string::npos);
  }
}

TEST_F(SuiteIsolation, TranslateFlowIsolatesFailuresToo) {
  const ScopedInjection poison("b01:baseline");
  const auto rows = run_suite_translate_and_compact_isolated(mini_suite());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_FALSE(rows[0].failed());
  ASSERT_TRUE(rows[1].failed());
  EXPECT_EQ(rows[1].failure->stage, "baseline");
  EXPECT_FALSE(rows[2].failed());
  EXPECT_GT(rows[2].value.omitted.total, 0u);
}

TEST_F(SuiteIsolation, SuiteBudgetAnchoredOnceProducesTimedOutNotFailed) {
  // A pre-expired suite budget must DEGRADE (timed_out rows with verified
  // partial results), never FAIL: no exceptions, no TaskFailure slots.
  PipelineConfig cfg;
  cfg.time_budget_secs = 1e-9;
  const auto rows = run_suite_generate_and_compact_isolated(mini_suite(), cfg);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    ASSERT_FALSE(row.failed());
    EXPECT_TRUE(row.value.timed_out());
    EXPECT_EQ(row.value.atpg.proved_redundant, 0u);
  }
}

}  // namespace
}  // namespace uniscan
