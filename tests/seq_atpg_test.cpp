#include "atpg/seq_atpg.hpp"

#include <gtest/gtest.h>

#include "fault/fault_list.hpp"
#include "sim/fault_sim.hpp"
#include "workloads/circuits.hpp"
#include "workloads/synth_gen.hpp"

namespace uniscan {
namespace {

TEST(SeqAtpg, FullCoverageOnS27Scan) {
  const ScanCircuit sc = insert_scan(make_s27());
  const AtpgResult r = generate_tests(sc);
  EXPECT_EQ(r.num_faults, FaultList::collapsed(sc.netlist).size());
  // The paper reports 100% on s298 and near-100% elsewhere; s27 must be 100%.
  EXPECT_EQ(r.detected, r.num_faults) << "coverage " << r.fault_coverage();
  EXPECT_GT(r.sequence.length(), 0u);
}

TEST(SeqAtpg, SequenceIsFullySpecified) {
  const ScanCircuit sc = insert_scan(make_s27());
  const AtpgResult r = generate_tests(sc);
  for (std::size_t t = 0; t < r.sequence.length(); ++t)
    for (std::size_t i = 0; i < r.sequence.num_inputs(); ++i)
      EXPECT_NE(r.sequence.at(t, i), V3::X);
}

TEST(SeqAtpg, ReportedDetectionsMatchIndependentSimulation) {
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const AtpgResult r = generate_tests(sc, fl, {});
  FaultSimulator sim(sc.netlist);
  const auto check = sim.run(r.sequence, fl.faults());
  ASSERT_EQ(check.size(), r.detection.size());
  std::size_t detected = 0;
  for (std::size_t i = 0; i < check.size(); ++i) {
    EXPECT_EQ(check[i].detected, r.detection[i].detected) << i;
    detected += check[i].detected;
  }
  EXPECT_EQ(detected, r.detected);
}

TEST(SeqAtpg, DeterministicForFixedSeed) {
  const ScanCircuit sc = insert_scan(make_s27());
  AtpgOptions opt;
  opt.seed = 77;
  const AtpgResult a = generate_tests(sc, FaultList::collapsed(sc.netlist), opt);
  const AtpgResult b = generate_tests(sc, FaultList::collapsed(sc.netlist), opt);
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.detected, b.detected);
}

TEST(SeqAtpg, DifferentSeedsStillCover) {
  const ScanCircuit sc = insert_scan(make_s27());
  for (std::uint64_t seed : {2ull, 3ull, 17ull}) {
    AtpgOptions opt;
    opt.seed = seed;
    const AtpgResult r = generate_tests(sc, FaultList::collapsed(sc.netlist), opt);
    EXPECT_GE(r.fault_coverage(), 99.0) << "seed " << seed;
  }
}

TEST(SeqAtpg, ScanKnowledgeSwitchOff) {
  // With the Section-2 knowledge disabled nothing may be counted as `funct`,
  // and coverage can only stay equal or drop.
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  AtpgOptions with, without;
  without.use_scan_knowledge = false;
  const AtpgResult a = generate_tests(sc, fl, with);
  const AtpgResult b = generate_tests(sc, fl, without);
  EXPECT_EQ(b.detected_by_scan_knowledge, 0u);
  EXPECT_GE(a.detected, b.detected);
}

TEST(SeqAtpg, WorksOnSyntheticCircuit) {
  SynthSpec spec;
  spec.name = "atpg_synth";
  spec.num_inputs = 5;
  spec.num_dffs = 8;
  spec.num_gates = 60;
  const ScanCircuit sc = insert_scan(generate_synthetic(spec));
  const AtpgResult r = generate_tests(sc);
  EXPECT_GE(r.fault_coverage(), 90.0) << r.detected << "/" << r.num_faults;
}

TEST(SeqAtpg, RandomPhaseCanBeDisabled) {
  const ScanCircuit sc = insert_scan(make_s27());
  AtpgOptions opt;
  opt.max_random_chunks = 0;  // purely deterministic run
  const AtpgResult r = generate_tests(sc, FaultList::collapsed(sc.netlist), opt);
  EXPECT_EQ(r.stats.random_chunks_accepted, 0u);
  EXPECT_GE(r.fault_coverage(), 95.0);
}

TEST(SeqAtpg, StatsAreConsistent) {
  const ScanCircuit sc = insert_scan(make_s27());
  const AtpgResult r = generate_tests(sc);
  EXPECT_GE(r.stats.podem_calls, r.stats.podem_successes);
  EXPECT_LE(r.detected_by_scan_knowledge, r.detected);
}

}  // namespace
}  // namespace uniscan
