// Cross-cutting integration tests that exercise several subsystems at once.
#include <gtest/gtest.h>

#include "core/uniscan.hpp"

namespace uniscan {
namespace {

TEST(Integration, WideGateRejectedAtFinalize) {
  Netlist nl("wide");
  std::vector<GateId> ins;
  for (int i = 0; i < 65; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
  nl.add_output(nl.add_gate(GateType::And, "g", std::move(ins)));
  EXPECT_THROW(nl.finalize(), std::runtime_error);
}

TEST(Integration, TesterProgramExpectationsMatchSimulation) {
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const AtpgResult atpg = generate_tests(sc, fl, {});
  TestSequence seq = atpg.sequence;
  seq.truncate(12);
  const std::string program = format_tester_program(sc, seq);

  // Re-derive the expected outputs and check each data line.
  const SequentialSimulator sim(sc.netlist);
  const SimTrace trace = sim.simulate(seq, sim.initial_state());
  std::istringstream is(program);
  std::string line;
  std::size_t t = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto bar = line.rfind('|');
    ASSERT_NE(bar, std::string::npos);
    std::string expected;
    for (char c : line.substr(bar + 1))
      if (c != ' ') expected.push_back(c);
    std::string actual;
    for (V3 v : trace.po[t]) actual.push_back(to_char(v));
    EXPECT_EQ(expected, actual) << "cycle " << t;
    ++t;
  }
  EXPECT_EQ(t, seq.length());
}

TEST(Integration, InsertScanBenchRoundTripStaysFunctional) {
  // insert-scan -> .bench text -> parse -> the scan circuit still loads a
  // state through its chain (the muxes survived serialization).
  const ScanCircuit sc = insert_scan(make_s27());
  const Netlist reparsed = read_bench_string(write_bench_string(sc.netlist), "s27_scan_rt");
  EXPECT_EQ(reparsed.num_inputs(), sc.netlist.num_inputs());
  EXPECT_EQ(reparsed.num_dffs(), sc.netlist.num_dffs());

  const SequentialSimulator sim(reparsed);
  // Shift 1,0,1 through the reparsed chain (same column positions as sc).
  State s(reparsed.num_dffs(), V3::X);
  const V3 pattern[3] = {V3::One, V3::Zero, V3::One};
  for (int k = 0; k < 3; ++k) {
    std::vector<V3> pi(reparsed.num_inputs(), V3::Zero);
    pi[sc.scan_sel_index()] = V3::One;
    pi[sc.chain().scan_inp_index] = pattern[2 - k];
    s = sim.step(s, pi).next_state;
  }
  EXPECT_EQ(s, (State{V3::One, V3::Zero, V3::One}));
}

TEST(Integration, VerilogCircuitThroughFullPipeline) {
  const auto text = R"(
module demo (a, b, y);
  input a, b;
  output y;
  wire y, q0, q1, n0, n1, t;
  dff r0 (q0, n0);
  dff r1 (q1, n1);
  xor g0 (n0, a, q1);
  nand g1 (t, b, q0);
  not g2 (n1, t);
  or  g3 (y, q0, t);
endmodule
)";
  const Netlist c = read_verilog_string(text);
  const GenerateCompactReport r = run_generate_and_compact(c);
  EXPECT_GE(r.atpg.fault_coverage(), 85.0);
  EXPECT_LE(r.omitted.total, r.raw.total);
}

TEST(Integration, RepeatFillReducesInputTransitions) {
  const ScanCircuit sc = insert_scan(load_circuit(*find_suite_entry("b01")));
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const BaselineResult base = generate_baseline_tests(sc, fl, {});

  TranslationOptions rnd, rep;
  rnd.fill = XFillPolicy::RandomFill;
  rep.fill = XFillPolicy::RepeatFill;
  const auto m_rnd = compute_metrics(sc, translate_test_set(sc, base.test_set, rnd));
  const auto m_rep = compute_metrics(sc, translate_test_set(sc, base.test_set, rep));
  EXPECT_LT(m_rep.input_transitions, m_rnd.input_transitions);
  EXPECT_EQ(m_rep.length, m_rnd.length);
}

TEST(Integration, SequenceFileSurvivesWholeFlow) {
  // generate -> write -> read -> compact -> write -> read -> faultsim.
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  const AtpgResult atpg = generate_tests(sc, fl, {});

  const TestSequence loaded = read_sequence_string(write_sequence_string(atpg.sequence));
  ASSERT_EQ(loaded, atpg.sequence);

  const CompactionResult omit = omission_compact(sc.netlist, loaded, fl.faults());
  const TestSequence reloaded = read_sequence_string(write_sequence_string(omit.sequence));
  FaultSimulator sim(sc.netlist);
  EXPECT_EQ(sim.detected_indices(reloaded, fl.faults()).size(),
            sim.detected_indices(omit.sequence, fl.faults()).size());
}

TEST(Integration, EventSimAgreesOnScanShiftSequences) {
  // Scan-shift-heavy stimuli are the event simulator's best case; results
  // must still be identical.
  const ScanCircuit sc = insert_scan(load_circuit(*find_suite_entry("s298")));
  Rng rng(12);
  TestSequence seq(sc.netlist.num_inputs());
  for (int t = 0; t < 80; ++t) {
    std::vector<V3> vec(sc.netlist.num_inputs());
    for (auto& v : vec) v = rng.next_bool() ? V3::One : V3::Zero;
    vec[sc.scan_sel_index()] = t % 20 < 14 ? V3::One : V3::Zero;  // long shifts
    seq.append(std::move(vec));
  }
  const SequentialSimulator ref(sc.netlist);
  EventSimulator ev(sc.netlist);
  const SimTrace a = ref.simulate(seq, ref.initial_state());
  const SimTrace b = ev.simulate(seq, ref.initial_state());
  for (std::size_t t = 0; t < a.po.size(); ++t) ASSERT_EQ(a.po[t], b.po[t]) << t;
}

}  // namespace
}  // namespace uniscan
