// CompiledNetlist kernel tests: CSR/structural invariants of the compiled
// form, and the bit-identity contract across the three advance engines
// (compiled / levelized / event), with and without observation-cone pruning,
// at several thread counts — on the embedded s27 scan circuit and on fuzzed
// synthetic netlists, over fault lists that include branch faults (forced
// per-pin injection chains) and from the all-X power-up state.
#include "sim/compiled_netlist.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/uniscan.hpp"
#include "fault/fault_list.hpp"
#include "sim/engine.hpp"
#include "sim/fault_sim.hpp"
#include "sim/fault_sim_session.hpp"
#include "sim/sequential_sim.hpp"
#include "sim/transition_sim.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace uniscan {
namespace {

/// Restores the process-wide engine config and thread count on scope exit so
/// tests sharing the binary don't leak settings into each other.
struct EngineConfigGuard {
  ~EngineConfigGuard() {
    set_global_sim_engine(SimEngine::Compiled);
    set_global_cone_pruning(true);
    ThreadPool::set_global_threads(1);
  }
};

Netlist fuzz_netlist(std::uint64_t seed) {
  Rng rng(seed * 7919 + 13);
  SynthSpec spec;
  spec.name = "kernelfuzz" + std::to_string(seed);
  spec.num_inputs = 2 + rng.next_below(6);
  spec.num_dffs = 2 + rng.next_below(8);
  spec.num_gates = 20 + rng.next_below(60);
  spec.seed = seed;
  return generate_synthetic(spec);
}

TestSequence random_sequence(const Netlist& nl, std::size_t len, std::uint64_t seed) {
  TestSequence seq(nl.num_inputs());
  Rng rng(seed);
  for (std::size_t t = 0; t < len; ++t) seq.append_x();
  seq.random_fill(rng);
  return seq;
}

void check_structure(const Netlist& nl) {
  const CompiledNetlist cnl(nl);
  ASSERT_EQ(cnl.num_gates(), nl.num_gates());

  // Fanin CSR mirrors the netlist; fanout CSR is its exact transpose, with
  // every row sorted by reader id (the counting sort guarantees it).
  std::multiset<std::pair<GateId, GateId>> want_edges, got_edges;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    ASSERT_EQ(cnl.type(g), nl.gate(g).type);
    const auto fan = cnl.fanins(g);
    ASSERT_EQ(fan.size(), nl.gate(g).fanins.size());
    for (std::size_t p = 0; p < fan.size(); ++p) {
      ASSERT_EQ(fan[p], nl.gate(g).fanins[p]);
      want_edges.emplace(fan[p], g);
    }
    const auto fo = cnl.fanouts(g);
    ASSERT_TRUE(std::is_sorted(fo.begin(), fo.end()));
    for (const GateId r : fo) got_edges.emplace(g, r);
  }
  ASSERT_EQ(got_edges, want_edges);

  // Evaluation order: a permutation of the combinational core in
  // non-decreasing level order, covered exactly by homogeneous type runs.
  std::vector<GateId> sorted_eval = cnl.eval_order();
  std::vector<GateId> sorted_topo = nl.topo_order();
  std::sort(sorted_eval.begin(), sorted_eval.end());
  std::sort(sorted_topo.begin(), sorted_topo.end());
  ASSERT_EQ(sorted_eval, sorted_topo);

  const auto& order = cnl.eval_order();
  for (std::size_t i = 1; i < order.size(); ++i)
    ASSERT_LE(cnl.level(order[i - 1]), cnl.level(order[i]));

  std::uint32_t covered = 0;
  for (const TypeRun& r : cnl.runs()) {
    ASSERT_EQ(r.begin, covered);
    ASSERT_LT(r.begin, r.end);
    for (std::uint32_t i = r.begin; i < r.end; ++i) {
      ASSERT_EQ(cnl.type(order[i]), r.type);
      ASSERT_EQ(cnl.level(order[i]), r.level);
    }
    covered = r.end;
  }
  ASSERT_EQ(covered, order.size());

  // Level buckets agree with per-gate levels.
  for (std::size_t l = 0; l < cnl.num_levels(); ++l)
    for (std::uint32_t i = cnl.level_begin(l); i < cnl.level_begin(l + 1); ++i)
      ASSERT_EQ(cnl.level(order[i]), l);
}

TEST(CompiledNetlist, StructureMatchesNetlistS27Scan) {
  check_structure(insert_scan(make_s27()).netlist);
}

TEST(CompiledNetlist, StructureMatchesNetlistFuzz) {
  for (std::uint64_t seed = 1; seed < 6; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    check_structure(fuzz_netlist(seed));
  }
}

TEST(CompiledNetlist, RequiresFinalizedNetlist) {
  Netlist nl;
  (void)nl.add_input("a");
  ASSERT_THROW(CompiledNetlist{nl}, std::invalid_argument);
}

TEST(CompiledNetlist, FullEvalMatchesPerGateReference) {
  for (std::uint64_t seed = 1; seed < 6; ++seed) {
    const Netlist nl = fuzz_netlist(seed);
    const CompiledNetlist cnl(nl);
    Rng rng(seed + 77);
    // Random three-valued boundary values (X included) for a few frames.
    for (int rep = 0; rep < 8; ++rep) {
      std::vector<V3> kernel(nl.num_gates(), V3::X), ref(nl.num_gates(), V3::X);
      const auto rand_v3 = [&]() {
        const auto r = rng.next_below(3);
        return r == 0 ? V3::Zero : (r == 1 ? V3::One : V3::X);
      };
      for (const GateId pi : nl.inputs()) kernel[pi] = ref[pi] = rand_v3();
      for (const GateId ff : nl.dffs()) kernel[ff] = ref[ff] = rand_v3();

      cnl.eval_full_v3(kernel.data());
      V3 buf[64];
      for (const GateId g : nl.topo_order()) {
        const Gate& gate = nl.gate(g);
        for (std::size_t p = 0; p < gate.fanins.size(); ++p) buf[p] = ref[gate.fanins[p]];
        ref[g] = eval_gate_v3(gate.type, buf, gate.fanins.size());
      }
      ASSERT_EQ(kernel, ref) << "seed=" << seed << " rep=" << rep;
    }
  }
}

/// All (engine, pruning) configurations; the levelized engine ignores the
/// pruning flag, so it appears once.
struct EngineConfig {
  SimEngine engine;
  bool prune;
  const char* name;
};
constexpr EngineConfig kConfigs[] = {
    {SimEngine::Levelized, false, "levelized"},
    {SimEngine::Compiled, false, "compiled"},
    {SimEngine::Compiled, true, "compiled+prune"},
    {SimEngine::Event, false, "event"},
    {SimEngine::Event, true, "event+prune"},
};

class KernelEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelEquivalence, StuckAtEnginesBitIdentical) {
  EngineConfigGuard guard;
  const std::uint64_t seed = GetParam();
  const Netlist nl = seed == 0 ? insert_scan(make_s27()).netlist : fuzz_netlist(seed);
  // Uncollapsed list: keeps every branch fault so the per-pin forced
  // injection chains are exercised, several faults per gate included.
  const FaultList fl = FaultList::uncollapsed(nl);
  const TestSequence seq = random_sequence(nl, 40, seed * 31 + 7);

  // Baseline: the pre-kernel engine, single-threaded.
  set_global_sim_engine(SimEngine::Levelized);
  std::vector<LatchRecord> base_latch;
  FaultSimulator base_sim(nl);
  const auto base = base_sim.run(seq, fl.faults(), &base_latch);
  const auto base_counts = base_sim.run_counts(seq, fl.faults(), 3);

  for (const EngineConfig& cfg : kConfigs) {
    set_global_sim_engine(cfg.engine);
    set_global_cone_pruning(cfg.prune);
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE(std::string(cfg.name) + " threads=" + std::to_string(threads));
      ThreadPool::set_global_threads(threads);
      FaultSimulator sim(nl);
      std::vector<LatchRecord> latch;
      const auto got = sim.run(seq, fl.faults(), &latch);
      ASSERT_EQ(got.size(), base.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].detected, base[i].detected) << "fault " << i;
        ASSERT_EQ(got[i].time, base[i].time) << "fault " << i;
        ASSERT_EQ(latch[i].latched, base_latch[i].latched) << "fault " << i;
        ASSERT_EQ(latch[i].ff_index, base_latch[i].ff_index) << "fault " << i;
        ASSERT_EQ(latch[i].time, base_latch[i].time) << "fault " << i;
      }
      ASSERT_EQ(sim.run_counts(seq, fl.faults(), 3), base_counts);
    }
  }
}

TEST_P(KernelEquivalence, TransitionEnginesBitIdentical) {
  EngineConfigGuard guard;
  const std::uint64_t seed = GetParam();
  const Netlist nl = seed == 0 ? insert_scan(make_s27()).netlist : fuzz_netlist(seed);
  const std::vector<TransitionFault> faults = enumerate_transition_faults(nl);
  const TestSequence seq = random_sequence(nl, 40, seed * 37 + 3);

  set_global_sim_engine(SimEngine::Levelized);
  std::vector<LatchRecord> base_latch;
  TransitionFaultSimulator base_sim(nl);
  const auto base = base_sim.run(seq, faults, &base_latch);

  for (const EngineConfig& cfg : kConfigs) {
    set_global_sim_engine(cfg.engine);
    set_global_cone_pruning(cfg.prune);
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE(std::string(cfg.name) + " threads=" + std::to_string(threads));
      ThreadPool::set_global_threads(threads);
      TransitionFaultSimulator sim(nl);
      std::vector<LatchRecord> latch;
      const auto got = sim.run(seq, faults, &latch);
      ASSERT_EQ(got.size(), base.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].detected, base[i].detected) << "fault " << i;
        ASSERT_EQ(got[i].time, base[i].time) << "fault " << i;
        ASSERT_EQ(latch[i].latched, base_latch[i].latched) << "fault " << i;
        ASSERT_EQ(latch[i].ff_index, base_latch[i].ff_index) << "fault " << i;
        ASSERT_EQ(latch[i].time, base_latch[i].time) << "fault " << i;
      }
    }
  }
}

TEST_P(KernelEquivalence, SessionStatesBitIdentical) {
  EngineConfigGuard guard;
  const std::uint64_t seed = GetParam();
  const Netlist nl = seed == 0 ? insert_scan(make_s27()).netlist : fuzz_netlist(seed);
  const FaultList fl = FaultList::uncollapsed(nl);
  const TestSequence chunk1 = random_sequence(nl, 12, seed * 41 + 1);
  const TestSequence chunk2 = random_sequence(nl, 12, seed * 41 + 2);

  // Baseline session: levelized engine. pair_state must agree for every
  // fault even under pruning (unsampled DFFs reconstruct from the good
  // machine).
  set_global_sim_engine(SimEngine::Levelized);
  FaultSimSession base(nl, fl.faults());
  base.advance(chunk1);
  base.advance(chunk2);

  for (const EngineConfig& cfg : kConfigs) {
    set_global_sim_engine(cfg.engine);
    set_global_cone_pruning(cfg.prune);
    for (const std::size_t threads : {1u, 4u}) {
      SCOPED_TRACE(std::string(cfg.name) + " threads=" + std::to_string(threads));
      ThreadPool::set_global_threads(threads);
      FaultSimSession ses(nl, fl.faults());
      ses.advance(chunk1);
      ses.advance(chunk2);
      ASSERT_EQ(ses.num_detected(), base.num_detected());
      ASSERT_EQ(ses.good_state(), base.good_state());
      State g1, f1, g2, f2;
      for (std::size_t i = 0; i < fl.size(); ++i) {
        ASSERT_EQ(ses.is_detected(i), base.is_detected(i)) << "fault " << i;
        ses.pair_state(i, g1, f1);
        base.pair_state(i, g2, f2);
        ASSERT_EQ(g1, g2) << "fault " << i;
        ASSERT_EQ(f1, f2) << "fault " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelEquivalence, ::testing::Range<std::uint64_t>(0, 5));

/// From the all-X power-up state with all-X inputs nothing is detectable and
/// every engine must agree on the (empty) result — exercises optimistic-X
/// propagation through the type runs and the event comparisons.
TEST(KernelEquivalence, AllXSequenceAgreesAcrossEngines) {
  EngineConfigGuard guard;
  const Netlist nl = insert_scan(make_s27()).netlist;
  const FaultList fl = FaultList::uncollapsed(nl);
  TestSequence seq(nl.num_inputs());
  for (int t = 0; t < 10; ++t) seq.append_x();

  for (const EngineConfig& cfg : kConfigs) {
    SCOPED_TRACE(cfg.name);
    set_global_sim_engine(cfg.engine);
    set_global_cone_pruning(cfg.prune);
    FaultSimulator sim(nl);
    std::vector<LatchRecord> latch;
    const auto got = sim.run(seq, fl.faults(), &latch);
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_FALSE(got[i].detected) << "fault " << i;
      ASSERT_FALSE(latch[i].latched) << "fault " << i;
    }
  }
}

/// Pruned batch programs must cover exactly the gates a batch can disturb
/// plus their support, and the good-machine (empty) batch must never prune.
TEST(CompiledNetlist, BuildProgramConeInvariants) {
  const Netlist nl = fuzz_netlist(3);
  const CompiledNetlist cnl(nl);

  // Empty site list: pruning is disabled even when requested.
  const BatchProgram good = cnl.build_program({}, {}, true);
  ASSERT_FALSE(good.pruned);
  ASSERT_EQ(good.eval.size(), cnl.eval_order().size());
  ASSERT_EQ(good.samp_dff.size(), nl.num_dffs());
  ASSERT_EQ(good.obs_po.size(), nl.num_outputs());

  // Single-site program: every evaluated gate's fanins are evaluated,
  // loaded, or sampled — no gate reads a stale value.
  const GateId site = nl.topo_order().front();
  const BatchProgram p = cnl.build_program(std::span<const GateId>(&site, 1), {}, true);
  ASSERT_TRUE(p.pruned);
  std::vector<std::uint8_t> have(nl.num_gates(), 0);
  for (const GateId pi : nl.inputs()) have[pi] = 1;
  for (const std::uint32_t j : p.samp_dff) have[nl.dffs()[j]] = 1;
  for (const GateId g : p.eval) have[g] = 1;
  for (const GateId g : p.eval)
    for (const GateId f : cnl.fanins(g)) ASSERT_TRUE(have[f]) << "gate " << g << " reads " << f;
  for (const std::uint32_t j : p.samp_dff)
    if (cnl.dff_d()[j] != kNoGate)
      ASSERT_TRUE(have[cnl.dff_d()[j]]) << "dff " << j;
  // Observable sets are subsets of the full ones.
  ASSERT_LE(p.obs_po.size(), nl.num_outputs());
  ASSERT_LE(p.latch_dff.size(), p.samp_dff.size());
}

}  // namespace
}  // namespace uniscan
