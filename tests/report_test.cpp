#include "core/report.hpp"

#include <gtest/gtest.h>

#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"circ", "total", "scan"});
  t.add_row({"s27", "25", "7"});
  t.add_row({"s5378", "5381", "4594"});
  const std::string s = t.to_string();
  // Header, separator, two data rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  // Right-aligned numbers: the '7' of "7" lines up under "scan"'s 'n' column.
  const auto lines_at = [&](int n) {
    std::size_t pos = 0;
    for (int i = 0; i < n; ++i) pos = s.find('\n', pos) + 1;
    return s.substr(pos, s.find('\n', pos) - pos);
  };
  EXPECT_EQ(lines_at(0).size(), lines_at(2).size());
  EXPECT_EQ(lines_at(2).size(), lines_at(3).size());
}

TEST(TextTable, RejectsWrongWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Report, FormatPct) {
  EXPECT_EQ(format_pct(99.626), "99.63");
  EXPECT_EQ(format_pct(100.0), "100.00");
  EXPECT_EQ(format_pct(0.0), "0.00");
  EXPECT_EQ(format_pct(97.989), "97.99");
}

TEST(Report, SequenceTableShowsScanColumnsLast) {
  const ScanCircuit sc = insert_scan(make_s27());
  TestSequence seq(sc.netlist.num_inputs());
  seq.append_x();
  seq.set(0, sc.scan_sel_index(), V3::One);
  const std::string s = format_sequence_table(sc, seq);
  EXPECT_NE(s.find("scan_sel"), std::string::npos);
  EXPECT_NE(s.find("scan_inp"), std::string::npos);
  EXPECT_NE(s.find("G0"), std::string::npos);
  // scan_sel column shows the 1.
  const std::size_t data_line = s.rfind('\n', s.size() - 2);
  const std::string last = s.substr(data_line + 1);
  EXPECT_NE(last.find('1'), std::string::npos);
}

}  // namespace
}  // namespace uniscan
