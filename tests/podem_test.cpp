#include "atpg/podem.hpp"

#include <gtest/gtest.h>

#include "fault/fault_list.hpp"
#include "scan/scan_insertion.hpp"
#include "sim/fault_sim.hpp"
#include "util/rng.hpp"
#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

/// Fault-simulate `sub` (x-filled) from all-X and report detection of `f`.
bool confirm(const Netlist& nl, const Fault& f, TestSequence sub, std::uint64_t seed = 999) {
  Rng rng(seed);
  sub.random_fill(rng);
  FaultSimulator sim(nl);
  const Fault one[1] = {f};
  return sim.detects_all(sub, one);
}

TEST(Podem, DetectsEasyFaultOnS27) {
  const Netlist nl = make_s27();
  // G17 = NOT(G11) drives the PO; G17 s-a-0 is detected by making G17 = 1.
  const auto g17 = nl.find("G17");
  ASSERT_TRUE(g17);
  FrameModel model(nl, Fault{*g17, kStemPin, false}, 4);
  const PodemResult r = run_podem(model, PodemGoal::ObservePo);
  ASSERT_TRUE(r.success);
  EXPECT_GE(r.frames_used, 1u);
  EXPECT_TRUE(confirm(nl, Fault{*g17, kStemPin, false}, r.subsequence));
}

TEST(Podem, EveryPoSuccessConfirmedBySimulation) {
  // Property: whenever PODEM claims success, an independent fault simulation
  // of the x-filled subsequence detects the fault. Run on the SCAN version:
  // the plain s27 from an unknown power-up state has many sequentially
  // untestable faults (e.g. G6 = 1 is unreachable under 3-valued semantics
  // without scan), which is exactly the problem scan solves.
  const ScanCircuit sc = insert_scan(make_s27());
  const Netlist& nl = sc.netlist;
  const FaultList fl = FaultList::collapsed(nl);
  std::size_t successes = 0;
  for (std::size_t i = 0; i < fl.size(); ++i) {
    FrameModel model(nl, fl[i], 10);
    const PodemResult r = run_podem(model, PodemGoal::ObservePo, {400});
    if (!r.success) continue;
    ++successes;
    EXPECT_TRUE(confirm(nl, fl[i], r.subsequence))
        << "fault " << i << " (" << fault_to_string(nl, fl[i]) << ")";
  }
  // With scan lines as ordinary inputs/outputs, the engine should handle a
  // large majority of s27_scan deterministically.
  EXPECT_GT(successes, fl.size() * 3 / 4) << "only " << successes << "/" << fl.size();
}

TEST(Podem, PlainSequentialCircuitHasUntestableFaults) {
  // Documented behaviour: from the all-X power-up state several s27 faults
  // are sequentially untestable (G6 can never be justified to 1 without
  // scan), so the non-scan success count sits well below the scan one.
  const Netlist nl = make_s27();
  const FaultList fl = FaultList::collapsed(nl);
  std::size_t successes = 0;
  for (std::size_t i = 0; i < fl.size(); ++i) {
    FrameModel model(nl, fl[i], 8);
    successes += run_podem(model, PodemGoal::ObservePo, {200}).success;
  }
  EXPECT_GT(successes, 5u);
  EXPECT_LT(successes, fl.size());
}

TEST(Podem, SubsequenceEndsAtObservationFrame) {
  const Netlist nl = make_s27();
  const FaultList fl = FaultList::collapsed(nl);
  for (std::size_t i = 0; i < fl.size(); ++i) {
    FrameModel model(nl, fl[i], 6);
    const PodemResult r = run_podem(model, PodemGoal::ObservePo, {100});
    if (!r.success) continue;
    EXPECT_EQ(r.subsequence.length(), r.frames_used);
    EXPECT_LE(r.frames_used, 6u);
  }
}

TEST(Podem, LatchGoalLatchesEffect) {
  // On the scan version, the LatchIntoFf goal must report a chain position
  // whose flush length detects the fault.
  const ScanCircuit sc = insert_scan(make_s27());
  const Netlist& nl = sc.netlist;
  const GateId mux0 = nl.gate(sc.chain().cells[0]).fanins[0];
  const Fault f{mux0, kStemPin, true};
  FrameModel model(nl, f, 4);
  const PodemResult r = run_podem(model, PodemGoal::LatchIntoFf);
  ASSERT_TRUE(r.success);
  EXPECT_LT(r.latched_dff, nl.num_dffs());

  // Verify: subsequence + flush detects the fault.
  Rng rng(4242);
  TestSequence seq = r.subsequence;
  seq.random_fill(rng);
  // Flush: scan_sel = 1 until the effect reaches scan_out.
  const std::size_t shifts = nl.num_dffs() - r.latched_dff;
  for (std::size_t k = 0; k < shifts; ++k) {
    std::vector<V3> vec(nl.num_inputs(), V3::Zero);
    vec[sc.scan_sel_index()] = V3::One;
    seq.append(std::move(vec));
  }
  FaultSimulator sim(nl);
  const Fault one[1] = {f};
  EXPECT_TRUE(sim.detects_all(seq, one));
}

TEST(Podem, ScanObserveAcceptsLatchedOrPo) {
  const Netlist nl = make_s27();
  const FaultList fl = FaultList::collapsed(nl);
  std::size_t successes = 0;
  for (std::size_t i = 0; i < fl.size(); ++i) {
    FrameModel model(nl, fl[i], 3);
    model.set_state_assignable(true);
    const PodemResult r = run_podem(model, PodemGoal::ScanObserve, {200});
    if (r.success) {
      ++successes;
      EXPECT_EQ(r.scan_in.size(), nl.num_dffs());
    }
  }
  // With a controllable state and observable next state nearly every s27
  // fault is testable in 3 frames.
  EXPECT_GT(successes, fl.size() * 9 / 10);
}

TEST(Podem, RespectsBacktrackLimit) {
  const Netlist nl = make_s27();
  const FaultList fl = FaultList::collapsed(nl);
  for (std::size_t i = 0; i < fl.size(); ++i) {
    FrameModel model(nl, fl[i], 4);
    const PodemResult r = run_podem(model, PodemGoal::ObservePo, {1});
    EXPECT_LE(r.backtracks, 2) << "limit 1 must stop the search immediately";
  }
}

TEST(Podem, PinnedScanSelKeepsFunctionalMode) {
  const ScanCircuit sc = insert_scan(make_s27());
  const Netlist& nl = sc.netlist;
  const FaultList fl = FaultList::collapsed(nl);
  for (std::size_t i = 0; i < fl.size(); i += 7) {
    FrameModel model(nl, fl[i], 2);
    model.set_state_assignable(true);
    model.pin_input(sc.scan_sel_index(), V3::Zero);
    const PodemResult r = run_podem(model, PodemGoal::ScanObserve, {100});
    if (!r.success) continue;
    for (std::size_t t = 0; t < r.subsequence.length(); ++t)
      EXPECT_EQ(r.subsequence.at(t, sc.scan_sel_index()), V3::Zero);
  }
}

TEST(Podem, UsesScanShiftingWhenWindowAllows) {
  // A fault observable only through the chain: the scan_inp stem s-a-0 on
  // s27_scan needs shifting a 1 through the chain to scan_out.
  const ScanCircuit sc = insert_scan(make_s27());
  const Netlist& nl = sc.netlist;
  const GateId scan_inp = nl.inputs()[sc.chain().scan_inp_index];
  const Fault f{scan_inp, kStemPin, false};
  FrameModel model(nl, f, 8);
  const PodemResult r = run_podem(model, PodemGoal::ObservePo, {400});
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(confirm(nl, f, r.subsequence));
  // Detection requires at least chain-length+1 frames of shifting.
  EXPECT_GE(r.frames_used, nl.num_dffs() + 1);
}

}  // namespace
}  // namespace uniscan
