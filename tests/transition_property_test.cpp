// Parameterized property sweeps for the transition-fault subsystem.
#include <gtest/gtest.h>

#include "core/uniscan.hpp"

namespace uniscan {
namespace {

// ---------------------------------------------------------------------------
// Relationship between transition faults and their stuck-at twins. A strict
// implication ("transition detected => twin detected") does NOT hold in
// sequential circuits: a PERMANENT fault on a scan-path line (e.g. the mux
// select) keeps the faulty machine's state unknown from power-up, so the
// conservative 3-valued simulator can never credit a detection, while the
// TRANSIENT gross-delay fault only perturbs launch cycles and produces a
// crisp known difference. We pin down both the aggregate direction and the
// documented counterexample.
// ---------------------------------------------------------------------------

class TransitionVsStuckAt : public ::testing::TestWithParam<const char*> {};

TEST_P(TransitionVsStuckAt, TwinsDetectedForMostNonScanPathFaults) {
  const Netlist c = load_circuit(*find_suite_entry(GetParam()));
  const ScanCircuit sc = insert_scan(c);
  const auto tfaults = enumerate_transition_faults(sc.netlist);

  Rng rng(42);
  TestSequence seq(sc.netlist.num_inputs());
  for (int t = 0; t < 200; ++t) seq.append_x();
  seq.random_fill(rng);

  TransitionFaultSimulator tsim(sc.netlist);
  FaultSimulator ssim(sc.netlist);
  const auto tdet = tsim.run(seq, tfaults);

  std::vector<Fault> twins;
  twins.reserve(tfaults.size());
  for (const auto& tf : tfaults)
    twins.push_back(Fault{tf.gate, tf.pin, /*stuck_one=*/!tf.slow_to_rise});
  const auto sdet = ssim.run(seq, twins);

  std::size_t both = 0, transition_only = 0;
  for (std::size_t i = 0; i < tfaults.size(); ++i) {
    if (!tdet[i].detected) continue;
    if (sdet[i].detected) ++both;
    else ++transition_only;
  }
  ASSERT_GT(both, 0u);
  // The X-masking exceptions are a small minority.
  EXPECT_LT(transition_only, (both + transition_only) / 4)
      << GetParam() << ": too many transition-only detections";
}

INSTANTIATE_TEST_SUITE_P(Suite, TransitionVsStuckAt, ::testing::Values("s27", "b01", "b02"));

TEST(TransitionVsStuckAtCounterexample, PermanentScanSelFaultIsXMasked) {
  // The documented exception in isolation: on b02_scan, the scan-mux select
  // STR fault is detectable while its permanent s-a-0 twin is not (the
  // faulty machine can never initialize its state through the broken scan
  // path, so all comparisons stay X).
  const ScanCircuit sc = insert_scan(load_circuit(*find_suite_entry("b02")));
  const Netlist& nl = sc.netlist;
  const GateId mux0 = nl.gate(sc.chain().cells[0]).fanins[0];
  ASSERT_EQ(nl.gate(mux0).type, GateType::Mux2);

  Rng rng(42);
  TestSequence seq(nl.num_inputs());
  for (int t = 0; t < 200; ++t) seq.append_x();
  seq.random_fill(rng);

  const TransitionFault tf{mux0, 2, true};
  const Fault twin{mux0, 2, false};
  TransitionFaultSimulator tsim(nl);
  FaultSimulator ssim(nl);
  const TransitionFault tfs[1] = {tf};
  const Fault sfs[1] = {twin};
  EXPECT_TRUE(tsim.run(seq, tfs)[0].detected);
  EXPECT_FALSE(ssim.run(seq, sfs)[0].detected);
}

// ---------------------------------------------------------------------------
// Property: the transition generator's claims verify across circuits/seeds.
// ---------------------------------------------------------------------------

struct TGenParam {
  const char* circuit;
  std::uint64_t seed;
};

class TransitionGenerator : public ::testing::TestWithParam<TGenParam> {};

TEST_P(TransitionGenerator, ClaimsVerifyAndCompactionPreserves) {
  const auto [name, seed] = GetParam();
  const Netlist c = load_circuit(*find_suite_entry(name));
  const ScanCircuit sc = insert_scan(c);
  const auto faults = enumerate_transition_faults(sc.netlist);

  AtpgOptions opt;
  opt.seed = seed;
  opt.final_effort_backtracks = 500;
  const TransitionAtpgResult r = generate_transition_tests(sc, faults, opt);
  EXPECT_GT(r.fault_coverage(), 75.0) << name;

  TransitionFaultSimulator sim(sc.netlist);
  const auto check = sim.run(r.sequence, faults);
  for (std::size_t i = 0; i < faults.size(); ++i)
    ASSERT_EQ(check[i].detected, r.detection[i].detected) << name << " fault " << i;

  const CompactionResult rest = restoration_compact(sc.netlist, r.sequence, faults);
  const auto after = sim.run(rest.sequence, faults);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (check[i].detected) {
      ASSERT_TRUE(after[i].detected) << name << " fault " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TransitionGenerator,
                         ::testing::Values(TGenParam{"s27", 1}, TGenParam{"s27", 9},
                                           TGenParam{"b01", 1}, TGenParam{"b02", 3}),
                         [](const auto& info) {
                           return std::string(info.param.circuit) + "_seed" +
                                  std::to_string(info.param.seed);
                         });

// ---------------------------------------------------------------------------
// Property: FrameModel transition semantics equals the transition simulator
// on random stimuli (model-vs-machine consistency).
// ---------------------------------------------------------------------------

TEST(TransitionModelConsistency, FrameModelMatchesSimulator) {
  const Netlist nl = make_s27();
  const auto faults = enumerate_transition_faults(nl);
  Rng rng(7);
  TransitionFaultSimulator sim(nl);

  for (std::size_t fi = 0; fi < faults.size(); fi += 6) {
    // Random fully specified window.
    const std::size_t frames = 5;
    FrameModel model(nl, faults[fi], frames);
    TestSequence seq(nl.num_inputs());
    for (std::size_t f = 0; f < frames; ++f) {
      std::vector<V3> vec(nl.num_inputs());
      for (std::size_t i = 0; i < vec.size(); ++i) {
        vec[i] = rng.next_bool() ? V3::One : V3::Zero;
        model.assign(f, i, vec[i]);
      }
      seq.append(std::move(vec));
    }
    model.simulate();
    const TransitionFault one[1] = {faults[fi]};
    const auto det = sim.run(seq, one);
    const bool model_detects = model.po_detection_frame().has_value();
    EXPECT_EQ(model_detects, det[0].detected)
        << "fault " << fi << " (" << transition_fault_to_string(nl, faults[fi]) << ")";
    if (model_detects && det[0].detected) {
      EXPECT_EQ(*model.po_detection_frame(), det[0].time);
    }
  }
}

}  // namespace
}  // namespace uniscan
