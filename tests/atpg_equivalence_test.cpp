// Thread-count invariance of the test GENERATORS. The sessions inside
// generate_tests / generate_transition_tests fan 63-fault batches across
// ThreadPool::global(); the determinism contract (DESIGN.md §5d) says the
// thread count may only change wall-clock time, never a single bit of the
// result. These tests pin the full AtpgResult — the generated sequence, the
// per-fault detection records, every counter, and even the gate-evaluation
// work metric — bit-identical at 1, 2, 4 and 8 threads for both fault
// models, on the real s27 and on a synthetic suite circuit.
#include <gtest/gtest.h>

#include <cstddef>

#include "atpg/seq_atpg.hpp"
#include "atpg/transition_atpg.hpp"
#include "fault/fault_list.hpp"
#include "fault/transition_fault.hpp"
#include "scan/scan_insertion.hpp"
#include "util/thread_pool.hpp"
#include "workloads/circuits.hpp"
#include "workloads/suite.hpp"

namespace uniscan {
namespace {

struct PoolGuard {
  explicit PoolGuard(std::size_t n) { ThreadPool::set_global_threads(n); }
  ~PoolGuard() { ThreadPool::set_global_threads(1); }
};

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

void expect_same_stats(const AtpgStats& got, const AtpgStats& want) {
  EXPECT_EQ(got.podem_calls, want.podem_calls);
  EXPECT_EQ(got.podem_successes, want.podem_successes);
  EXPECT_EQ(got.scan_load_assisted, want.scan_load_assisted);
  EXPECT_EQ(got.fallback_attempts, want.fallback_attempts);
  EXPECT_EQ(got.random_chunks_accepted, want.random_chunks_accepted);
}

template <typename Result>
void expect_same_detection(const Result& got, const Result& want) {
  ASSERT_EQ(got.detection.size(), want.detection.size());
  for (std::size_t i = 0; i < got.detection.size(); ++i) {
    EXPECT_EQ(got.detection[i].detected, want.detection[i].detected) << "fault " << i;
    EXPECT_EQ(got.detection[i].time, want.detection[i].time) << "fault " << i;
  }
}

void expect_same(const AtpgResult& got, const AtpgResult& want) {
  EXPECT_EQ(got.sequence, want.sequence);
  EXPECT_EQ(got.num_faults, want.num_faults);
  EXPECT_EQ(got.detected, want.detected);
  EXPECT_EQ(got.detected_by_scan_knowledge, want.detected_by_scan_knowledge);
  EXPECT_EQ(got.proved_redundant, want.proved_redundant);
  EXPECT_EQ(got.gate_evals, want.gate_evals);
  expect_same_detection(got, want);
  expect_same_stats(got.stats, want.stats);
}

void expect_same(const TransitionAtpgResult& got, const TransitionAtpgResult& want) {
  EXPECT_EQ(got.sequence, want.sequence);
  EXPECT_EQ(got.num_faults, want.num_faults);
  EXPECT_EQ(got.detected, want.detected);
  EXPECT_EQ(got.detected_by_scan_knowledge, want.detected_by_scan_knowledge);
  EXPECT_EQ(got.gate_evals, want.gate_evals);
  expect_same_detection(got, want);
  expect_same_stats(got.stats, want.stats);
}

TEST(AtpgEquivalence, StuckAtBitIdenticalAcrossThreads) {
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);

  PoolGuard one(1);
  const AtpgResult want = generate_tests(sc, fl, {});
  ASSERT_EQ(want.detected, want.num_faults);  // s27: full coverage expected

  for (const std::size_t threads : kThreadCounts) {
    PoolGuard guard(threads);
    const AtpgResult got = generate_tests(sc, fl, {});
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_same(got, want);
  }
}

TEST(AtpgEquivalence, StuckAtSyntheticCircuitAcrossThreads) {
  // A suite stand-in large enough to fill several 63-fault batches, so the
  // batch fan-out actually spans workers.
  const Netlist c = load_circuit(*find_suite_entry("b02"));
  const ScanCircuit sc = insert_scan(c);
  const FaultList fl = FaultList::collapsed(sc.netlist);
  ASSERT_GT(fl.size(), 63u);

  PoolGuard one(1);
  const AtpgResult want = generate_tests(sc, fl, {});
  for (const std::size_t threads : kThreadCounts) {
    PoolGuard guard(threads);
    const AtpgResult got = generate_tests(sc, fl, {});
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_same(got, want);
  }
}

TEST(AtpgEquivalence, StuckAtNoScanKnowledgeAcrossThreads) {
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  AtpgOptions opt;
  opt.use_scan_knowledge = false;

  PoolGuard one(1);
  const AtpgResult want = generate_tests(sc, fl, opt);
  for (const std::size_t threads : kThreadCounts) {
    PoolGuard guard(threads);
    const AtpgResult got = generate_tests(sc, fl, opt);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_same(got, want);
  }
}

TEST(AtpgEquivalence, TransitionBitIdenticalAcrossThreads) {
  const ScanCircuit sc = insert_scan(make_s27());
  const auto faults = enumerate_transition_faults(sc.netlist);

  PoolGuard one(1);
  const TransitionAtpgResult want = generate_transition_tests(sc, faults, {});
  ASSERT_GT(want.detected, 0u);

  for (const std::size_t threads : kThreadCounts) {
    PoolGuard guard(threads);
    const TransitionAtpgResult got = generate_transition_tests(sc, faults, {});
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_same(got, want);
  }
}

TEST(AtpgEquivalence, RepeatedRunsIdenticalAtSameThreadCount) {
  // Re-running at a FIXED thread count must also be bit-identical: the
  // generator may not depend on scheduling order even indirectly.
  const ScanCircuit sc = insert_scan(make_s27());
  const FaultList fl = FaultList::collapsed(sc.netlist);
  PoolGuard guard(4);
  const AtpgResult first = generate_tests(sc, fl, {});
  const AtpgResult second = generate_tests(sc, fl, {});
  expect_same(second, first);
}

}  // namespace
}  // namespace uniscan
