// Unit tests for the in-repo CDCL solver (sat/solver.hpp): correctness on
// crafted instances, equivalence against brute-force enumeration on random
// small CNFs, budget/cancel discipline (an interrupted solve is Aborted,
// never a verdict), and the shape of the recorded UNSAT proof trace.
#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace uniscan::sat {
namespace {

Lit pos(Var v) { return lit(v, false); }
Lit neg(Var v) { return lit(v, true); }

TEST(SatSolver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve({}), SolveStatus::Sat);
}

TEST(SatSolver, UnitAndBinaryPropagation) {
  Solver s;
  s.ensure_vars(3);
  ASSERT_TRUE(s.add_clause({pos(0)}));
  ASSERT_TRUE(s.add_clause({neg(0), pos(1)}));
  ASSERT_TRUE(s.add_clause({neg(1), pos(2)}));
  ASSERT_EQ(s.solve({}), SolveStatus::Sat);
  EXPECT_TRUE(s.model_value(0));
  EXPECT_TRUE(s.model_value(1));
  EXPECT_TRUE(s.model_value(2));
}

TEST(SatSolver, ContradictoryUnitsAreUnsatAtAddTime) {
  Solver s;
  s.ensure_vars(1);
  bool ok = s.add_clause({pos(0)});
  ok = s.add_clause({neg(0)}) && ok;
  EXPECT_FALSE(ok);
  EXPECT_EQ(s.solve({}), SolveStatus::Unsat);
}

/// Pigeonhole PHP(n+1, n): n+1 pigeons in n holes, classically UNSAT and
/// requires real conflict analysis (no input unit clauses at all).
void add_pigeonhole(Solver& s, std::size_t holes) {
  const std::size_t pigeons = holes + 1;
  const auto var_of = [&](std::size_t p, std::size_t h) {
    return static_cast<Var>(p * holes + h);
  };
  s.ensure_vars(static_cast<Var>(pigeons * holes));
  for (std::size_t p = 0; p < pigeons; ++p) {
    Clause c;
    for (std::size_t h = 0; h < holes; ++h) c.push_back(pos(var_of(p, h)));
    s.add_clause(c);
  }
  for (std::size_t h = 0; h < holes; ++h)
    for (std::size_t p1 = 0; p1 + 1 < pigeons; ++p1)
      for (std::size_t p2 = p1 + 1; p2 < pigeons; ++p2)
        s.add_clause({neg(var_of(p1, h)), neg(var_of(p2, h))});
}

TEST(SatSolver, PigeonholeIsUnsat) {
  for (std::size_t holes = 2; holes <= 5; ++holes) {
    Solver s;
    add_pigeonhole(s, holes);
    EXPECT_EQ(s.solve({}), SolveStatus::Unsat) << "PHP holes=" << holes;
    EXPECT_GT(s.stats().conflicts, 0u);
  }
}

/// Exhaustive truth-table check of a small CNF.
bool brute_force_sat(std::size_t num_vars, const std::vector<Clause>& clauses) {
  for (std::uint32_t m = 0; m < (1u << num_vars); ++m) {
    bool all = true;
    for (const Clause& c : clauses) {
      bool any = false;
      for (const Lit l : c)
        if (((m >> l.var()) & 1u) == (l.sign() ? 0u : 1u)) {
          any = true;
          break;
        }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

TEST(SatSolver, RandomCnfsMatchBruteForce) {
  Rng rng(20240801);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t nv = 3 + rng.next_below(8);         // 3..10 vars
    const std::size_t nc = 2 + rng.next_below(5 * nv);    // up to ~5n clauses
    std::vector<Clause> clauses;
    for (std::size_t i = 0; i < nc; ++i) {
      Clause c;
      const std::size_t len = 1 + rng.next_below(3);
      for (std::size_t k = 0; k < len; ++k)
        c.push_back(lit(static_cast<Var>(rng.next_below(nv)), rng.next_bool()));
      clauses.push_back(std::move(c));
    }
    Solver s;
    s.ensure_vars(static_cast<Var>(nv));
    for (const Clause& c : clauses)
      if (!s.add_clause(c)) break;
    const SolveStatus st = s.solve({});
    const bool expect_sat = brute_force_sat(nv, clauses);
    ASSERT_EQ(st, expect_sat ? SolveStatus::Sat : SolveStatus::Unsat)
        << "iter " << iter << " nv=" << nv << " nc=" << nc;
    if (expect_sat) {
      // The model must actually satisfy every clause.
      for (const Clause& c : clauses) {
        bool any = false;
        for (const Lit l : c)
          if (s.model_value(l.var()) == !l.sign()) any = true;
        ASSERT_TRUE(any) << "iter " << iter << ": model violates a clause";
      }
    }
  }
}

TEST(SatSolver, ConflictBudgetAborts) {
  Solver s;
  add_pigeonhole(s, 7);  // hard enough to need > 1 conflict
  SolverOptions opt;
  opt.max_conflicts = 1;
  EXPECT_EQ(s.solve(opt), SolveStatus::Aborted);
  // The same solver finishes once the budget is lifted.
  EXPECT_EQ(s.solve({}), SolveStatus::Unsat);
}

TEST(SatSolver, PreFiredCancelAborts) {
  Solver s;
  add_pigeonhole(s, 6);
  SolverOptions opt;
  opt.cancel = CancelToken(Deadline::after(0));
  EXPECT_EQ(s.solve(opt), SolveStatus::Aborted);
}

TEST(SatSolver, ProofIsAdditionOnlyAndEndsEmpty) {
  Solver s;
  add_pigeonhole(s, 4);
  SolverOptions opt;
  opt.record_proof = true;
  ASSERT_EQ(s.solve(opt), SolveStatus::Unsat);
  const auto& proof = s.proof();
  ASSERT_FALSE(proof.empty());
  EXPECT_TRUE(proof.back().empty());  // the derivation reaches the empty clause
  for (std::size_t i = 0; i + 1 < proof.size(); ++i)
    EXPECT_FALSE(proof[i].empty()) << "only the final step may be empty";
}

TEST(SatSolver, DeterministicAcrossRuns) {
  const auto run = [] {
    Solver s;
    add_pigeonhole(s, 5);
    s.solve({});
    return s.stats();
  };
  const SolverStats a = run();
  const SolverStats b = run();
  EXPECT_EQ(a.conflicts, b.conflicts);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.propagations, b.propagations);
}

}  // namespace
}  // namespace uniscan::sat
