#include "sim/sequential_sim.hpp"

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "workloads/circuits.hpp"

namespace uniscan {
namespace {

std::vector<V3> vec(const std::string& s) {
  std::vector<V3> out;
  for (char c : s) out.push_back(v3_from_char(c));
  return out;
}

TEST(GateEval, ScalarGateFunctions) {
  const V3 in01[] = {V3::Zero, V3::One};
  const V3 in11[] = {V3::One, V3::One};
  EXPECT_EQ(eval_gate_v3(GateType::And, in01, 2), V3::Zero);
  EXPECT_EQ(eval_gate_v3(GateType::Nand, in11, 2), V3::Zero);
  EXPECT_EQ(eval_gate_v3(GateType::Or, in01, 2), V3::One);
  EXPECT_EQ(eval_gate_v3(GateType::Nor, in01, 2), V3::Zero);
  EXPECT_EQ(eval_gate_v3(GateType::Xor, in01, 2), V3::One);
  EXPECT_EQ(eval_gate_v3(GateType::Xnor, in01, 2), V3::Zero);
  EXPECT_EQ(eval_gate_v3(GateType::Const0, nullptr, 0), V3::Zero);
  EXPECT_EQ(eval_gate_v3(GateType::Const1, nullptr, 0), V3::One);
}

TEST(GateEval, WideGates) {
  const V3 in[] = {V3::One, V3::One, V3::One, V3::Zero};
  EXPECT_EQ(eval_gate_v3(GateType::And, in, 4), V3::Zero);
  EXPECT_EQ(eval_gate_v3(GateType::And, in, 3), V3::One);
  EXPECT_EQ(eval_gate_v3(GateType::Xor, in, 4), V3::One);  // odd parity
  EXPECT_EQ(eval_gate_v3(GateType::Xor, in, 3), V3::One);
}

TEST(SequentialSim, PowerUpStateIsAllX) {
  const Netlist nl = make_s27();
  const SequentialSimulator sim(nl);
  const State s = sim.initial_state();
  ASSERT_EQ(s.size(), 3u);
  for (V3 v : s) EXPECT_EQ(v, V3::X);
}

// Hand-derived s27 frame: with G0=1, G3=0 the output is 1 regardless of the
// (unknown) state, and the next state of G5/G6 is determined.
TEST(SequentialSim, S27KnownFrameFromUnknownState) {
  const Netlist nl = make_s27();
  const SequentialSimulator sim(nl);
  const FrameValues fv = sim.step(sim.initial_state(), vec("1xx0"));
  EXPECT_EQ(fv.po[0], V3::One);          // G17
  EXPECT_EQ(fv.next_state[0], V3::One);  // G5' = G10 = NOR(0, 0) = 1
  EXPECT_EQ(fv.next_state[1], V3::Zero); // G6' = G11 = NOR(x, 1) = 0
  EXPECT_EQ(fv.next_state[2], V3::X);    // G7' depends on unknown G7
}

TEST(SequentialSim, S27StateBecomesFullyKnown) {
  const Netlist nl = make_s27();
  const SequentialSimulator sim(nl);
  // G1=0 and the G7' = NAND(G2, G12) structure pin down the rest within a
  // few cycles of constant inputs.
  State s = sim.initial_state();
  for (int i = 0; i < 3; ++i) s = sim.step(s, vec("1000")).next_state;
  for (V3 v : s) EXPECT_NE(v, V3::X);
}

TEST(SequentialSim, ToyPipelineShiftBehaviour) {
  const Netlist nl = make_toy_pipeline();
  const SequentialSimulator sim(nl);
  // f0' = (a ^ f1) & en, f1' = f0, out = f1 | (x & en).
  State s{V3::Zero, V3::Zero};  // start from a known state
  FrameValues fv = sim.step(s, vec("11"));  // a=1, en=1
  EXPECT_EQ(fv.next_state[0], V3::One);
  EXPECT_EQ(fv.next_state[1], V3::Zero);
  fv = sim.step(fv.next_state, vec("01"));
  EXPECT_EQ(fv.next_state[0], V3::Zero);
  EXPECT_EQ(fv.next_state[1], V3::One);  // the 1 shifted down the pipe
}

TEST(SequentialSim, TraceShapes) {
  const Netlist nl = make_s27();
  const SequentialSimulator sim(nl);
  TestSequence seq = TestSequence::from_rows(4, {"0000", "1111", "0101"});
  const SimTrace trace = sim.simulate(seq, sim.initial_state());
  EXPECT_EQ(trace.po.size(), 3u);
  EXPECT_EQ(trace.state.size(), 4u);  // includes the initial state
  EXPECT_EQ(trace.state[0], sim.initial_state());
}

TEST(SequentialSim, XInputsPropagatePessimistically) {
  NetlistBuilder b("xprop");
  const GateId a = b.input("a");
  const GateId n = b.not_("n", a);
  const GateId g = b.or_("g", {a, n});  // a | !a: 3-valued sim cannot see it's 1
  b.output(g);
  const Netlist nl = b.build();
  const SequentialSimulator sim(nl);
  // No DFFs: state is empty.
  NetlistBuilder b2("dummy");
  (void)b2;
  EXPECT_EQ(sim.step({}, {V3::X}).po[0], V3::X);
  EXPECT_EQ(sim.step({}, {V3::One}).po[0], V3::One);
}

TEST(SequentialSim, RejectsWidthMismatch) {
  const Netlist nl = make_s27();
  const SequentialSimulator sim(nl);
  EXPECT_THROW(sim.step(sim.initial_state(), vec("00")), std::invalid_argument);
  EXPECT_THROW(sim.step({V3::Zero}, vec("0000")), std::invalid_argument);
}

}  // namespace
}  // namespace uniscan
