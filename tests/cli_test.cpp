// End-to-end tests of the uniscan_cli binary (path injected by CMake).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef UNISCAN_CLI_PATH
#define UNISCAN_CLI_PATH ""
#endif

namespace {

struct RunResult {
  int exit_code;
  std::string output;  // stdout + stderr
};

// Scratch paths carry the pid: ctest -j runs each CliFlow test in its own
// process against the shared TempDir, so fixed names race across tests.
std::string scratch_path(const std::string& name) {
  return ::testing::TempDir() + "cli_" + std::to_string(::getpid()) + "_" + name;
}

RunResult run_cli(const std::string& args) {
  const std::string out_path = scratch_path("out.txt");
  const std::string cmd = std::string(UNISCAN_CLI_PATH) + " " + args + " > " + out_path + " 2>&1";
  const int status = std::system(cmd.c_str());
  std::ifstream f(out_path);
  std::stringstream ss;
  ss << f.rdbuf();
  std::remove(out_path.c_str());
  return {WEXITSTATUS(status), ss.str()};
}

std::string write_demo_bench() {
  const std::string path = scratch_path("demo.bench");
  std::ofstream f(path);
  f << "INPUT(a)\nINPUT(b)\nOUTPUT(o)\n"
    << "f0 = DFF(n0)\nf1 = DFF(f0)\n"
    << "n0 = XOR(a, f1)\no = AND(b, f0)\n";
  return path;
}

class CliFlow : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::string(UNISCAN_CLI_PATH).empty()) GTEST_SKIP() << "CLI path not configured";
    bench_ = write_demo_bench();
  }
  void TearDown() override { std::remove(bench_.c_str()); }
  std::string bench_;
};

TEST_F(CliFlow, NoArgsShowsUsage) {
  const RunResult r = run_cli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST_F(CliFlow, Stats) {
  const RunResult r = run_cli("stats " + bench_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("2 PIs"), std::string::npos);
  EXPECT_NE(r.output.find("collapsed faults"), std::string::npos);
}

TEST_F(CliFlow, InsertScanEmitsParsableBench) {
  const RunResult r = run_cli("insert-scan " + bench_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("INPUT(scan_sel)"), std::string::npos);
  EXPECT_NE(r.output.find("MUX"), std::string::npos);
}

TEST_F(CliFlow, GenerateCompactFaultsimPipeline) {
  const std::string seq = ::testing::TempDir() + "cli_seq.useq";
  const std::string cseq = ::testing::TempDir() + "cli_cseq.useq";

  RunResult r = run_cli("generate " + bench_ + " -o " + seq);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("coverage"), std::string::npos);

  r = run_cli("compact " + bench_ + " " + seq + " -o " + cseq);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("omission:"), std::string::npos);

  r = run_cli("faultsim " + bench_ + " " + cseq);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("detected"), std::string::npos);

  std::remove(seq.c_str());
  std::remove(cseq.c_str());
}

TEST_F(CliFlow, BaselineAndTranslate) {
  const std::string tst = ::testing::TempDir() + "cli_tests.utst";
  RunResult r = run_cli("baseline " + bench_ + " -o " + tst);
  ASSERT_EQ(r.exit_code, 0) << r.output;

  r = run_cli("translate " + bench_ + " " + tst + " --x-fill=repeat");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("useq v1"), std::string::npos);
  std::remove(tst.c_str());
}

TEST_F(CliFlow, Classify) {
  const RunResult r = run_cli("classify " + bench_);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("testable"), std::string::npos);
}

TEST_F(CliFlow, ExportEmitsTesterProgram) {
  const std::string seq = ::testing::TempDir() + "cli_exp.useq";
  RunResult r = run_cli("generate " + bench_ + " -o " + seq);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  r = run_cli("export " + bench_ + " " + seq);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("tester program"), std::string::npos);
  EXPECT_NE(r.output.find("scan operation"), std::string::npos);
  EXPECT_NE(r.output.find("expected outputs"), std::string::npos);
  std::remove(seq.c_str());
}

TEST_F(CliFlow, MetricsCommand) {
  const std::string seq = ::testing::TempDir() + "cli_met.useq";
  RunResult r = run_cli("generate " + bench_ + " -o " + seq);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  r = run_cli("metrics " + bench_ + " " + seq);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("scan operations"), std::string::npos);
  EXPECT_NE(r.output.find("input transitions"), std::string::npos);
  std::remove(seq.c_str());
}

TEST_F(CliFlow, MultiChainFlow) {
  const RunResult r = run_cli("baseline " + bench_ + " --chains=2");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("coverage"), std::string::npos);
}

TEST_F(CliFlow, BadFileFailsCleanly) {
  const RunResult r = run_cli("stats /nonexistent/file.bench");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST_F(CliFlow, UnknownFlagRejected) {
  const RunResult r = run_cli("stats " + bench_ + " --frobnicate");
  EXPECT_EQ(r.exit_code, 2);
}

TEST_F(CliFlow, JsonFlagEmitsStructuredError) {
  const RunResult r = run_cli("stats /nonexistent/file.bench --json");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("{\"error\":"), std::string::npos) << r.output;
  // The plain-text channel still carries the message for humans/logs.
  EXPECT_NE(r.output.find("error:"), std::string::npos) << r.output;
}

TEST_F(CliFlow, MetricsFlagEmitsSchemaAndCounterTotals) {
  const std::string seq = ::testing::TempDir() + "cli_obs.useq";
  const RunResult r = run_cli("generate " + bench_ + " --metrics -o " + seq);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("{\"schema_version\": 2, \"counters\": {"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"gate_evals\": "), std::string::npos) << r.output;
  // Generation simulates: its run must have counted SOME gate evaluations.
  EXPECT_EQ(r.output.find("\"gate_evals\": 0,"), std::string::npos) << r.output;
  std::remove(seq.c_str());
}

TEST_F(CliFlow, MetricsFlagStaysStructuredOnError) {
  const RunResult r = run_cli("stats /nonexistent/file.bench --json --metrics");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("{\"error\":"), std::string::npos) << r.output;
  // The totals line is still emitted (all-zero: nothing ran), so machine
  // consumers can parse the same shape on both paths.
  EXPECT_NE(r.output.find("{\"schema_version\": 2, \"counters\": {"), std::string::npos)
      << r.output;
}

TEST_F(CliFlow, TraceFlagWritesChromeTraceJson) {
  const std::string seq = ::testing::TempDir() + "cli_tr.useq";
  const std::string trace = ::testing::TempDir() + "cli_tr.json";
  const RunResult r =
      run_cli("generate " + bench_ + " --trace=" + trace + " -o " + seq);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  std::ifstream f(trace);
  ASSERT_TRUE(f.is_open()) << trace;
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_NE(ss.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(ss.str().find("\"name\": \"podem\""), std::string::npos)
      << "generation should have recorded PODEM spans";
  std::remove(seq.c_str());
  std::remove(trace.c_str());
}

TEST_F(CliFlow, GenerateUnderExpiredBudgetDegradesGracefully) {
  // A zero time budget must not crash or hang: the CLI reports the verified
  // best-so-far result, flags the timeout, and still exits 0 (a timeout is a
  // degraded success, not an error).
  const RunResult r = run_cli("generate " + bench_ + " --time-budget=0.000001");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("TIMED OUT"), std::string::npos) << r.output;
}

// Exit-code taxonomy (core/exit_codes.hpp), shared with the table binaries:
// 0 success, 1 runtime error, 2 usage, 4 isolated job failures (serve),
// 5 overload/shed (serve). Scripts branch on WHAT went wrong.
TEST_F(CliFlow, ExitCodeTaxonomy) {
  EXPECT_EQ(run_cli("stats " + bench_).exit_code, 0);
  EXPECT_EQ(run_cli("stats /nonexistent.bench").exit_code, 1);
  EXPECT_EQ(run_cli("").exit_code, 2);
  EXPECT_EQ(run_cli("stats " + bench_ + " --no-such-flag").exit_code, 2);
  EXPECT_EQ(run_cli("no-such-command").exit_code, 2);
}

/// Pipe `lines` into `uniscan_cli serve` on stdin and capture the response.
RunResult run_serve_mode(const std::string& flags, const std::string& lines) {
  const std::string in_path = scratch_path("serve_in.jsonl");
  {
    std::ofstream f(in_path);
    f << lines;
  }
  RunResult r = run_cli("serve " + flags + " < " + in_path);
  std::remove(in_path.c_str());
  return r;
}

TEST_F(CliFlow, ServeModeAnswersJobsAndExitsZero) {
  const RunResult r = run_serve_mode(
      "--threads=2",
      R"({"op":"ping","id":"p"})"
      "\n"
      R"({"op":"generate","id":"g","bench":"INPUT(a)\nOUTPUT(o)\nf0 = DFF(a)\no = AND(a, f0)\n"})"
      "\n"
      R"({"op":"shutdown"})"
      "\n");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"op\":\"ping\""), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"status\":\"done\""), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"cache\":\"built\""), std::string::npos) << r.output;
}

TEST_F(CliFlow, ServeModeFailedJobExitsFour) {
  const RunResult r = run_serve_mode(
      "", R"({"op":"generate","id":"bad","bench":"THIS IS NOT A BENCH FILE"})"
          "\n"
          R"({"op":"shutdown"})"
          "\n");
  EXPECT_EQ(r.exit_code, 4) << r.output;
  EXPECT_NE(r.output.find("\"status\":\"failed\""), std::string::npos) << r.output;
}

TEST_F(CliFlow, ServeModeOverloadExitsFive) {
  // One-deep queue, dispatch paused: the second and third jobs are shed with
  // an explicit reject; nothing failed, so the exit code reports overload.
  std::string lines = R"({"op":"pause"})" "\n";
  for (int i = 0; i < 3; ++i)
    lines += R"({"op":"generate","id":"burst)" + std::to_string(i) +
             R"(","bench":"INPUT(a)\nOUTPUT(o)\nf0 = DFF(a)\no = AND(a, f0)\n"})" "\n";
  lines += R"({"op":"resume"})" "\n" R"({"op":"shutdown"})" "\n";
  const RunResult r = run_serve_mode("--max-queue=1", lines);
  EXPECT_EQ(r.exit_code, 5) << r.output;
  EXPECT_NE(r.output.find("\"status\":\"shed\""), std::string::npos) << r.output;
}

}  // namespace
