#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <vector>

#include "util/thread_pool.hpp"

namespace uniscan::obs {

namespace {

using Clock = std::chrono::steady_clock;

struct Event {
  char phase;             // 'B' or 'E'
  const char* name;       // static string; null for 'E'
  std::string arg;        // optional argument of a 'B' event
  std::uint32_t tid;      // pool worker index
  std::uint64_t ts_us;    // microseconds since trace start
};

constexpr std::size_t kMaxBuffers = 256;        // >= any realistic pool size
constexpr std::size_t kMaxEventsPerBuffer = 1 << 16;

struct Buffer {
  std::vector<Event> events;
  std::uint64_t dropped = 0;
};

std::atomic<bool> g_tracing{false};
Clock::time_point g_start;
std::string g_path;
Buffer g_buffers[kMaxBuffers];
std::mutex g_control;  // guards start/stop; the record path is lock-free
bool g_atexit_registered = false;

Buffer& buffer_here() noexcept {
  return g_buffers[ThreadPool::worker_id() & (kMaxBuffers - 1)];
}

std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - g_start).count());
}

void record(Event e) noexcept {
  Buffer& b = buffer_here();
  if (b.events.size() >= kMaxEventsPerBuffer) {
    ++b.dropped;
    return;
  }
  b.events.push_back(std::move(e));
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool Tracer::enabled() noexcept { return g_tracing.load(std::memory_order_relaxed); }

void Tracer::start(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_control);
  for (Buffer& b : g_buffers) {
    b.events.clear();
    b.dropped = 0;
  }
  g_path = path;
  g_start = Clock::now();
  if (!g_atexit_registered) {
    g_atexit_registered = true;
    std::atexit([] { Tracer::stop_and_write(); });
  }
  g_tracing.store(true, std::memory_order_release);
}

void Tracer::stop_and_write() {
  std::lock_guard<std::mutex> lock(g_control);
  if (!g_tracing.load(std::memory_order_relaxed)) return;
  g_tracing.store(false, std::memory_order_release);

  std::ofstream out(g_path);
  if (!out) {
    std::fprintf(stderr, "trace: cannot write %s\n", g_path.c_str());
    return;
  }

  // One event per line: greppable, and the golden test can parse it without
  // a JSON library. Buffers are emitted per worker, preserving each lane's
  // chronological (and properly nested) order.
  std::uint64_t dropped = 0;
  out << "{\"traceEvents\": [\n";
  bool first = true;
  for (const Buffer& b : g_buffers) {
    dropped += b.dropped;
    for (const Event& e : b.events) {
      if (!first) out << ",\n";
      first = false;
      out << "{\"ph\": \"" << e.phase << "\", \"pid\": 1, \"tid\": " << e.tid
          << ", \"ts\": " << e.ts_us;
      if (e.phase == 'B') {
        out << ", \"name\": \"" << json_escape(e.name) << "\"";
        if (!e.arg.empty()) out << ", \"args\": {\"target\": \"" << json_escape(e.arg) << "\"}";
      }
      out << "}";
    }
  }
  out << "\n], \"otherData\": {\"dropped_events\": " << dropped << "}}\n";
}

void TraceSpan::begin(const char* name, std::string_view arg) noexcept {
  active_ = true;
  record(Event{'B', name, std::string(arg),
               static_cast<std::uint32_t>(ThreadPool::worker_id()), now_us()});
}

void TraceSpan::end() noexcept {
  // A span that outlives stop_and_write would record an unmatched E into
  // the next trace; drop it instead (the writer already closed its B).
  if (!Tracer::enabled()) return;
  record(Event{'E', nullptr, {}, static_cast<std::uint32_t>(ThreadPool::worker_id()), now_us()});
}

}  // namespace uniscan::obs
