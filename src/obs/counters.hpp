// Process-wide observability counters (DESIGN.md §5g).
//
// A fixed registry of named monotonic counters measures the *work done* by
// the pipeline — gate-word evaluations, batches skipped, pruning savings,
// resimulation restarts — the quantities the paper's tables are claims
// about. Two properties drive the design:
//
//  * Determinism. Counts are sharded per ThreadPool worker and summed
//    serially, and every counting site sits inside work whose SET of
//    executions is thread-count independent (the pool's determinism
//    contract plus the wave-scheduled fail-fast of DESIGN.md §5g). Totals
//    are therefore bit-identical across --threads 1/2/4/8.
//  * Cost. count() on the hot paths is one predictable branch when the
//    layer is disabled (UNISCAN_OBS=0), and one relaxed fetch_add on a
//    worker-private cache line when enabled.
//
// CounterScope measures the delta a region of code contributed: inside a
// pool task it reads only the calling worker's shard (nested parallel_for
// runs inline, so a suite task's entire flow stays on one worker); at top
// level it sums all shards (the parallel_for join orders every worker's
// relaxed adds before the caller's reads).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/thread_pool.hpp"

namespace uniscan::obs {

enum class Counter : std::uint8_t {
  GateEvals = 0,        // gate-word evaluations in the fault-sim kernels
  BatchSkips,           // dead/inactive fault batches skipped unsimulated
  ConePruneHits,        // gate-word evaluations avoided by cone pruning
  ResimRestarts,        // omission trials resumed from a checkpoint
  CancelPolls,          // cooperative cancellation polls
  OmissionTrials,       // trial erasures attempted by omission
  RestorationRestores,  // widening restore attempts in restoration
  BatchesRun,           // batch advances executed (a width-dependent count:
                        // wider slot words pack more faults per batch)
  RepackEvents,         // live-fault repacks performed by the sessions
  LanesReclaimed,       // fault lanes freed by repacking (old live batches x
                        // old lanes-per-batch minus the repacked capacity)
  FaultsCollapsed,      // faults removed by equivalence collapsing
  LiveFaultsPeak,       // MAX semantics (count_max): largest concurrently
                        // live fault population seen by any session
  CacheHits,            // serve ArtifactCache lookups served from RAM/disk
  CacheMisses,          // serve ArtifactCache lookups rebuilt from source
  CacheQuarantined,     // corrupt/truncated/version-mismatched disk entries
                        // quarantined and rebuilt (never trusted, never fatal)
  JobsShed,             // jobs rejected by admission control (queue full)
  JobRetries,           // job attempts re-queued after a transient failure
  SatConflicts,         // CDCL conflicts across all SAT engine solves
  SatDecisions,         // CDCL decisions across all SAT engine solves
  SatPropagations,      // CDCL literal propagations across all SAT solves
};
inline constexpr std::size_t kNumCounters = 20;

/// Counters with max semantics: count_max() raises the shard value, totals()
/// max-reduces across shards instead of summing, and CounterScope reports a
/// zero delta (a running maximum has no meaningful per-stage delta; only the
/// process total is defined).
inline constexpr bool counter_is_max(Counter c) noexcept {
  return c == Counter::LiveFaultsPeak;
}

/// Stable snake_case name (the bench-JSON / --metrics key).
const char* counter_name(Counter c) noexcept;

using CounterArray = std::array<std::uint64_t, kNumCounters>;

namespace detail {

inline constexpr std::size_t kMaxShards = 256;  // >= any realistic pool size

struct alignas(64) Shard {
  std::atomic<std::uint64_t> v[kNumCounters] = {};
};

extern Shard g_shards[kMaxShards];
extern std::atomic<bool> g_enabled;

inline Shard& shard_here() noexcept {
  return g_shards[ThreadPool::worker_id() & (kMaxShards - 1)];
}

}  // namespace detail

/// True unless counting was turned off (UNISCAN_OBS=0 or set_enabled).
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

/// Add `n` to counter `c` on the calling worker's shard. Disabled cost: one
/// predictable branch.
inline void count(Counter c, std::uint64_t n = 1) noexcept {
  if (!enabled()) return;
  detail::shard_here().v[static_cast<std::size_t>(c)].fetch_add(n, std::memory_order_relaxed);
}

/// Raise a max-semantics counter (counter_is_max) to at least `n` on the
/// calling worker's shard; totals() max-reduces the shards.
inline void count_max(Counter c, std::uint64_t n) noexcept {
  if (!enabled()) return;
  std::atomic<std::uint64_t>& v = detail::shard_here().v[static_cast<std::size_t>(c)];
  std::uint64_t cur = v.load(std::memory_order_relaxed);
  while (cur < n && !v.compare_exchange_weak(cur, n, std::memory_order_relaxed)) {
  }
}

/// Serial sum over all shards. Call only while no counted work is in
/// flight (between parallel_for joins); the join's synchronisation makes
/// every worker's relaxed adds visible.
CounterArray totals() noexcept;
std::uint64_t total(Counter c) noexcept;

/// Zero every shard (test isolation; not meant for the hot path).
void reset() noexcept;

/// Wall-clock + counter-delta record of one pipeline stage, carried on the
/// pipeline reports and emitted as the bench-JSON per-stage rows.
struct StageStat {
  std::string name;
  double wall_ms = 0;
  CounterArray counters{};  // deltas contributed by the stage
};

/// Captures the counter state at construction and reports per-counter
/// deltas. See the header comment for the shard-local vs global rule.
class CounterScope {
 public:
  CounterScope() noexcept : local_(ThreadPool::in_pool_task()) {
    if (local_) {
      const detail::Shard& s = detail::shard_here();
      for (std::size_t i = 0; i < kNumCounters; ++i)
        start_[i] = s.v[i].load(std::memory_order_relaxed);
    } else {
      start_ = totals();
    }
  }

  std::uint64_t delta(Counter c) const noexcept {
    if (counter_is_max(c)) return 0;  // running maxima have no stage delta
    const std::size_t i = static_cast<std::size_t>(c);
    const std::uint64_t now =
        local_ ? detail::shard_here().v[i].load(std::memory_order_relaxed) : total(c);
    return now - start_[i];
  }

  CounterArray deltas() const noexcept {
    CounterArray out;
    for (std::size_t i = 0; i < kNumCounters; ++i) out[i] = delta(static_cast<Counter>(i));
    return out;
  }

 private:
  bool local_;
  CounterArray start_{};
};

}  // namespace uniscan::obs
