// Hierarchical trace spans emitted as Chrome trace_event JSON (--trace).
//
// A TraceSpan is an RAII duration event: construction records a "B" (begin)
// event, destruction the matching "E" (end). Events carry the pool worker
// index as their tid, so chrome://tracing (or Perfetto) shows one lane per
// worker with properly nested spans — spans never migrate threads because a
// nested parallel_for runs inline on the issuing worker.
//
// Events are appended to per-worker buffers (no locks on the record path)
// and merged when the trace is written. Each buffer is capped; overflow
// increments a drop counter that is reported in the output's metadata
// rather than silently truncating. When tracing is off — the default —
// constructing a span costs one predictable branch.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace uniscan::obs {

class Tracer {
 public:
  /// True while a trace is being collected.
  static bool enabled() noexcept;

  /// Start collecting into `path` (written on stop_and_write / exit).
  /// Clears previously buffered events; registers an atexit flush once so
  /// binaries that std::exit mid-run still produce a valid file.
  static void start(const std::string& path);

  /// Merge the per-worker buffers, write the Chrome trace JSON, disable
  /// collection. No-op when no trace was started (safe to call always).
  static void stop_and_write();
};

class TraceSpan {
 public:
  /// Begin a span named `name` (a static string); `arg` is an optional
  /// free-form argument rendered into the event's args (e.g. the circuit).
  explicit TraceSpan(const char* name, std::string_view arg = {}) noexcept {
    if (Tracer::enabled()) begin(name, arg);
  }
  ~TraceSpan() {
    if (active_) end();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void begin(const char* name, std::string_view arg) noexcept;
  void end() noexcept;

  bool active_ = false;
};

}  // namespace uniscan::obs
