#include "obs/counters.hpp"

#include <cstdlib>
#include <cstring>

namespace uniscan::obs {

namespace detail {

Shard g_shards[kMaxShards];

namespace {
bool enabled_from_env() {
  const char* v = std::getenv("UNISCAN_OBS");
  return v == nullptr || std::strcmp(v, "0") != 0;
}
}  // namespace

std::atomic<bool> g_enabled{enabled_from_env()};

}  // namespace detail

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::GateEvals: return "gate_evals";
    case Counter::BatchSkips: return "batch_skips";
    case Counter::ConePruneHits: return "cone_prune_hits";
    case Counter::ResimRestarts: return "resim_restarts";
    case Counter::CancelPolls: return "cancel_polls";
    case Counter::OmissionTrials: return "omission_trials";
    case Counter::RestorationRestores: return "restoration_restores";
    case Counter::BatchesRun: return "batches_run";
    case Counter::RepackEvents: return "repack_events";
    case Counter::LanesReclaimed: return "lanes_reclaimed";
    case Counter::FaultsCollapsed: return "faults_collapsed";
    case Counter::LiveFaultsPeak: return "live_faults_peak";
    case Counter::CacheHits: return "cache_hits";
    case Counter::CacheMisses: return "cache_misses";
    case Counter::CacheQuarantined: return "cache_quarantined";
    case Counter::JobsShed: return "jobs_shed";
    case Counter::JobRetries: return "job_retries";
    case Counter::SatConflicts: return "sat_conflicts";
    case Counter::SatDecisions: return "sat_decisions";
    case Counter::SatPropagations: return "sat_propagations";
  }
  return "unknown";
}

void set_enabled(bool on) noexcept { detail::g_enabled.store(on, std::memory_order_relaxed); }

CounterArray totals() noexcept {
  CounterArray out{};
  for (const detail::Shard& s : detail::g_shards)
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      const std::uint64_t v = s.v[i].load(std::memory_order_relaxed);
      if (counter_is_max(static_cast<Counter>(i))) {
        if (v > out[i]) out[i] = v;
      } else {
        out[i] += v;
      }
    }
  return out;
}

std::uint64_t total(Counter c) noexcept {
  const std::size_t i = static_cast<std::size_t>(c);
  const bool is_max = counter_is_max(c);
  std::uint64_t acc = 0;
  for (const detail::Shard& s : detail::g_shards) {
    const std::uint64_t v = s.v[i].load(std::memory_order_relaxed);
    if (is_max) {
      if (v > acc) acc = v;
    } else {
      acc += v;
    }
  }
  return acc;
}

void reset() noexcept {
  for (detail::Shard& s : detail::g_shards)
    for (std::size_t i = 0; i < kNumCounters; ++i) s.v[i].store(0, std::memory_order_relaxed);
}

}  // namespace uniscan::obs
