#include "corpus/corpus.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "netlist/bench_io.hpp"
#include "util/sha256.hpp"
#include "util/string_utils.hpp"
#include "workloads/circuits.hpp"
#include "workloads/synth_gen.hpp"

#ifndef UNISCAN_CORPUS_SOURCE_DIR
#define UNISCAN_CORPUS_SOURCE_DIR ""
#endif

namespace uniscan {

const char* corpus_tier_name(CorpusTier t) noexcept {
  switch (t) {
    case CorpusTier::Fast: return "fast";
    case CorpusTier::Mid: return "mid";
    case CorpusTier::Large: return "large";
  }
  return "?";
}

bool parse_corpus_tier(std::string_view s, CorpusTier& out) noexcept {
  if (s == "fast") out = CorpusTier::Fast;
  else if (s == "mid") out = CorpusTier::Mid;
  else if (s == "large") out = CorpusTier::Large;
  else return false;
  return true;
}

namespace {

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

}  // namespace

CorpusRegistry::CorpusRegistry(std::string dir) : dir_(std::move(dir)) {
  const std::string manifest = (std::filesystem::path(dir_) / "manifest.tsv").string();
  std::ifstream in(manifest);
  if (!in) return;  // empty registry: corpus not present in this checkout

  std::string line;
  std::size_t line_no = 0;
  const auto fail = [&](const std::string& msg) {
    throw std::runtime_error(manifest + ":" + std::to_string(line_no) + ": " + msg);
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::string_view body = trim(line);
    if (body.empty() || body[0] == '#') continue;
    const auto fields = split_tabs(line);
    if (fields.size() != 8)
      fail("expected 8 tab-separated fields (name tier source inputs dffs gates sha256 url), got " +
           std::to_string(fields.size()));

    CorpusEntry e;
    e.name = fields[0];
    if (!parse_corpus_tier(fields[1], e.tier)) fail("unknown tier '" + excerpt(fields[1]) + "'");
    e.source = fields[2];
    if (e.source != "embedded" && e.source != "file" && e.source != "synth")
      fail("unknown source '" + excerpt(e.source) + "'");
    e.num_inputs = std::strtoull(fields[3].c_str(), nullptr, 10);
    e.num_dffs = std::strtoull(fields[4].c_str(), nullptr, 10);
    e.num_gates = std::strtoull(fields[5].c_str(), nullptr, 10);
    e.sha256 = fields[6] == "-" ? "" : fields[6];
    if (!e.sha256.empty() && e.sha256.size() != 64)
      fail("sha256 pin must be 64 hex chars or '-'");
    e.url = fields[7] == "-" ? "" : fields[7];
    if (find(e.name)) fail("duplicate circuit '" + excerpt(e.name) + "'");
    entries_.push_back(std::move(e));
  }
}

const CorpusRegistry& CorpusRegistry::global() {
  static const CorpusRegistry reg(default_dir());
  return reg;
}

std::string CorpusRegistry::default_dir() {
  if (const char* env = std::getenv("UNISCAN_CORPUS_DIR"); env && *env) return env;
  const std::string compiled = UNISCAN_CORPUS_SOURCE_DIR;
  if (!compiled.empty() && std::filesystem::exists(compiled)) return compiled;
  return "corpus";
}

std::vector<CorpusEntry> CorpusRegistry::tier(CorpusTier t) const {
  std::vector<CorpusEntry> out;
  for (const auto& e : entries_)
    if (e.tier == t) out.push_back(e);
  return out;
}

const CorpusEntry* CorpusRegistry::find(std::string_view name) const noexcept {
  for (const auto& e : entries_)
    if (e.name == name) return &e;
  return nullptr;
}

std::string CorpusRegistry::circuit_path(const CorpusEntry& e) const {
  return (std::filesystem::path(dir_) / "circuits" / (e.name + ".bench")).string();
}

std::string CorpusRegistry::golden_path(const CorpusEntry& e) const {
  return (std::filesystem::path(dir_) / "golden" / (e.name + ".ans.sha")).string();
}

bool CorpusRegistry::has_file(const CorpusEntry& e) const {
  return std::filesystem::exists(circuit_path(e));
}

std::string CorpusRegistry::synth_bench_text(const CorpusEntry& e) {
  if (e.source != "synth")
    throw std::runtime_error("corpus circuit " + e.name + " has source '" + e.source +
                             "', not synth");
  SynthSpec spec;
  spec.name = e.name;
  spec.num_inputs = e.num_inputs;
  spec.num_dffs = e.num_dffs;
  spec.num_gates = e.num_gates;
  // Stable per-circuit seed derived from the name (same scheme as
  // load_circuit's synthetic fallback, namespaced for the corpus).
  spec.seed = 0x5eedc0de;
  for (char c : e.name) spec.seed = spec.seed * 131 + static_cast<unsigned char>(c);
  const Netlist nl = generate_synthetic(spec);

  std::ostringstream os;
  os << "# uniscan corpus stand-in for " << e.name << ": deterministic synthetic circuit with\n"
     << "# the upstream profile (" << e.num_inputs << " PIs, " << e.num_dffs << " DFFs, "
     << e.num_gates << " gates). Replace with the canonical benchmark via\n"
     << "# tools/fetch_corpus; regenerate byte-identically via `corpus_tool synth " << e.name
     << "`.\n";
  write_bench(os, nl);
  return os.str();
}

std::string CorpusRegistry::bench_text(const CorpusEntry& e, bool verify) const {
  std::string text;
  if (has_file(e)) {
    const std::string path = circuit_path(e);
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open corpus file " + path);
    std::ostringstream os;
    os << in.rdbuf();
    text = os.str();
  } else if (e.source == "synth") {
    text = synth_bench_text(e);
  } else if (e.source == "embedded") {
    text = std::string(s27_bench_text());
  } else {
    throw std::runtime_error("corpus circuit " + e.name + " not fetched: " + circuit_path(e) +
                             " missing (run tools/fetch_corpus)");
  }
  if (verify && !e.sha256.empty()) {
    const std::string got = sha256_hex(text);
    if (got != e.sha256)
      throw std::runtime_error("corpus hash mismatch for " + e.name + ": content sha256 " + got +
                               ", manifest pins " + e.sha256 +
                               " (re-fetch or re-pin via tools/fetch_corpus)");
  }
  return text;
}

Netlist CorpusRegistry::load(const CorpusEntry& e, bool verify) const {
  if (e.source == "embedded" && !has_file(e)) return make_s27();
  return read_bench_string(bench_text(e, verify), e.name, circuit_path(e));
}

std::vector<SuiteEntry> CorpusRegistry::suite_entries(std::optional<CorpusTier> t) const {
  std::vector<SuiteEntry> out;
  for (const auto& e : entries_) {
    if (t && e.tier != *t) continue;
    // Rows that need a fetched file but have none are not runnable; skip
    // them rather than seed guaranteed-FAILED rows into every table run.
    if (e.source == "file" && !has_file(e)) continue;
    SuiteEntry s;
    s.name = e.name;
    s.num_inputs = e.num_inputs;
    s.num_dffs = e.num_dffs;
    s.num_gates = e.num_gates;
    s.in_fast_suite = e.tier == CorpusTier::Fast;
    s.bench_path = circuit_path(e);
    s.expected_sha256 = e.sha256;
    s.from_corpus = true;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace uniscan
