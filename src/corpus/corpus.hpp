// Benchmark corpus registry (DESIGN.md §5i).
//
// The corpus is a data directory (default `corpus/` next to the binaries,
// overridable with UNISCAN_CORPUS_DIR) holding:
//
//   manifest.tsv          one line per circuit: name, tier, source, PI/FF/
//                         gate profile, pinned SHA-256 of the canonical
//                         .bench text, upstream URL
//   circuits/<name>.bench checked-in or fetched circuit files
//   golden/<name>.ans.sha one-line SHA-256 of the circuit's canonical
//                         pipeline result (corpus/golden.hpp)
//
// Sources:
//   embedded  the netlist compiled into the library (s27)
//   file      a real upstream circuit; must be fetched (tools/fetch_corpus)
//             before it can be loaded
//   synth     a deterministic profile-matched stand-in; loadable with or
//             without a materialized file (the in-memory generation produces
//             byte-identical .bench text, so the manifest hash pin applies
//             either way)
//
// Tiers scale the suite: `fast` rows run in the default experiment runs and
// tier-1 tests, `mid` rows back the corpus digest sweep (ctest label `slow`),
// `large` rows are nightly/fetch material.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"
#include "workloads/suite.hpp"

namespace uniscan {

enum class CorpusTier { Fast, Mid, Large };

const char* corpus_tier_name(CorpusTier t) noexcept;
bool parse_corpus_tier(std::string_view s, CorpusTier& out) noexcept;

struct CorpusEntry {
  std::string name;
  CorpusTier tier = CorpusTier::Fast;
  std::string source;  // "embedded" | "file" | "synth"
  std::size_t num_inputs = 0;
  std::size_t num_dffs = 0;
  std::size_t num_gates = 0;
  std::string sha256;  // pinned hash of the canonical .bench text ("-" in the file = unpinned)
  std::string url;     // upstream origin for tools/fetch_corpus ("-" = none)
};

/// Parses `<dir>/manifest.tsv` once and answers name/tier queries. Loading
/// verifies circuit content against the manifest pin, so a silently edited
/// or truncated corpus file fails loudly instead of producing a digest
/// mismatch three layers later.
class CorpusRegistry {
 public:
  /// Read `<dir>/manifest.tsv`. Throws std::runtime_error on a malformed
  /// manifest (bad tier, bad field count, duplicate name — with line numbers).
  explicit CorpusRegistry(std::string dir);

  /// Registry over default_dir(), constructed on first use. Missing manifest
  /// yields an empty registry (the synthetic paper suite still works).
  static const CorpusRegistry& global();

  /// UNISCAN_CORPUS_DIR env var when set, else the compiled-in source-tree
  /// corpus directory (UNISCAN_CORPUS_DIR compile definition), else "corpus".
  static std::string default_dir();

  const std::string& dir() const noexcept { return dir_; }
  const std::vector<CorpusEntry>& entries() const noexcept { return entries_; }
  std::vector<CorpusEntry> tier(CorpusTier t) const;
  const CorpusEntry* find(std::string_view name) const noexcept;

  std::string circuit_path(const CorpusEntry& e) const;
  std::string golden_path(const CorpusEntry& e) const;
  bool has_file(const CorpusEntry& e) const;

  /// Canonical .bench text of the circuit: the file's bytes when the file
  /// exists, else the deterministic in-memory stand-in for `synth` entries.
  /// With `verify`, a manifest hash pin that does not match throws with both
  /// hashes in the message. `file` entries with no file throw a hint to run
  /// tools/fetch_corpus.
  std::string bench_text(const CorpusEntry& e, bool verify = true) const;

  /// bench_text parsed into a finalized netlist (embedded entries load the
  /// compiled-in netlist directly).
  Netlist load(const CorpusEntry& e, bool verify = true) const;

  /// The deterministic stand-in .bench text for a synth entry: profile-exact
  /// (PI/FF/gate counts) and stable across builds, so its hash can be pinned
  /// in the manifest. Byte-identical to what `corpus_tool synth` writes.
  static std::string synth_bench_text(const CorpusEntry& e);

  /// Corpus rows as suite entries (tier filter optional), ready for the
  /// table binaries' pipeline runners. Every row carries its circuit path +
  /// hash pin so load_circuit() goes through the real .bench parser.
  /// `file` rows that have not been fetched are omitted (not runnable).
  std::vector<SuiteEntry> suite_entries(std::optional<CorpusTier> t = std::nullopt) const;

 private:
  std::string dir_;
  std::vector<CorpusEntry> entries_;
};

}  // namespace uniscan
