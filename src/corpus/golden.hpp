// Golden-digest regression harness over the corpus (DESIGN.md §5i).
//
// For one circuit, run the paper pipeline under a fixed, tier-scaled effort
// profile, render every behavior-bearing outcome into one canonical text
// record (fault partition, per-fault detection flags, sequence lengths,
// compaction outcomes, the final sequence's vectors), and SHA-256 it. The
// digest is the circuit's behavioral fingerprint: bit-identical across
// --threads 1/2/4/8, every built slot width, and every simulation engine
// (the determinism contracts of DESIGN.md §5d/§5e/§5h), so "did PR N change
// behavior on s5378?" is a one-line compare against
// corpus/golden/<ckt>.ans.sha instead of a full-output diff — the
// `.ans.sha` + judge.sh workflow of the Fault_Simulation exemplar.
//
// Digest profiles are part of the digest definition: changing them (or any
// canonicalized field) bumps kDigestFormatVersion and regenerates every
// golden file (UNISCAN_REGEN_GOLDEN=1, mirroring the trace-golden tier).
#pragma once

#include <string>

#include "atpg/seq_atpg.hpp"
#include "corpus/corpus.hpp"
#include "netlist/netlist.hpp"

namespace uniscan {

/// Bumped when the canonical record's fields or the tier profiles change.
inline constexpr int kDigestFormatVersion = 1;

struct DigestOptions {
  AtpgOptions atpg;
  /// Target only the first N collapsed faults (0 = all). Bounds ATPG cost on
  /// large-tier rows; the prefix is deterministic (collapsed order).
  std::size_t max_faults = 0;
  bool run_restoration = true;
  bool run_omission = true;
};

/// The fixed per-tier effort profile. fast = the full pipeline; mid drops
/// omission (the trial loop dominates wall time) and caps the last-chance
/// backtrack budget; large additionally drops restoration and bounds the
/// fault universe. `num_gates` further scales mid rows past
/// kMidGateBudget down to large-row effort — per-PODEM-call and
/// per-fault-sim cost grows with the netlist, so a flat fault budget
/// would make the biggest mid rows dominate the whole sweep.
inline constexpr std::size_t kMidGateBudget = 4000;
DigestOptions digest_profile(CorpusTier tier, std::size_t num_gates = 0);

struct CircuitDigest {
  std::string circuit;
  std::string canonical_text;  // the full canonical record (debugging aid)
  std::string sha_hex;         // SHA-256 of canonical_text, 64 hex chars
};

/// Run the pipeline on `c` under `opt` and canonicalize the results.
CircuitDigest compute_circuit_digest(const Netlist& c, const DigestOptions& opt);

/// Same digest from prebuilt artifacts (scan netlist + FULL collapsed fault
/// list, single-chain — the digest's fixed scan configuration). Produces
/// byte-identical canonical text to the Netlist overload: the serve layer's
/// warm-cache acceptance check compares these directly against the golden
/// `.ans.sha` files.
struct CircuitArtifacts;
CircuitDigest compute_circuit_digest(const CircuitArtifacts& a, const DigestOptions& opt);

/// Load a corpus entry (hash-verified) and digest it under its tier profile.
CircuitDigest compute_corpus_digest(const CorpusRegistry& reg, const CorpusEntry& e);

/// Read a `.ans.sha` file: one line, 64 hex chars (trailing whitespace
/// tolerated). Returns "" when the file does not exist; throws on a
/// malformed file.
std::string read_golden_sha(const std::string& path);

/// Write `hex` as a single-line `.ans.sha` file (parent dir must exist).
void write_golden_sha(const std::string& path, const std::string& hex);

}  // namespace uniscan
