#include "corpus/golden.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "compact/omission.hpp"
#include "compact/restoration.hpp"
#include "core/pipeline.hpp"
#include "fault/fault_list.hpp"
#include "scan/scan_insertion.hpp"
#include "sim/logic3.hpp"
#include "util/sha256.hpp"
#include "util/string_utils.hpp"

namespace uniscan {

DigestOptions digest_profile(CorpusTier tier, std::size_t num_gates) {
  DigestOptions opt;
  opt.atpg.seed = 1;
  switch (tier) {
    case CorpusTier::Fast:
      // Full pipeline, near-default effort: fast rows are small enough that
      // the whole flow is sub-second.
      opt.atpg.final_effort_backtracks = 1500;
      break;
    case CorpusTier::Mid:
      // The last-chance pass and the omission trial loop dominate mid-size
      // wall time; cap the first, drop the second, and target a
      // deterministic 1500-fault prefix of the collapsed universe. Still
      // the real parser, scan insertion, fault collapsing, session fault
      // simulation, PODEM, and restoration on a paper-scale circuit.
      opt.atpg.max_backtracks = 40;
      opt.atpg.final_effort_backtracks = 0;
      opt.atpg.max_random_chunks = 24;
      opt.max_faults = 1500;
      opt.run_omission = false;
      if (num_gates > kMidGateBudget) {
        // s9234/s13207-class rows: per-call cost is ~10x a 1000-gate row,
        // so shrink the targeted prefix and the random bootstrap instead
        // of letting two circuits dominate the whole mid sweep.
        opt.atpg.max_random_chunks = 12;
        opt.atpg.window_schedule = {4};
        opt.max_faults = 400;
      }
      break;
    case CorpusTier::Large:
      opt.atpg.max_backtracks = 20;
      opt.atpg.final_effort_backtracks = 0;
      opt.atpg.max_random_chunks = 12;
      opt.atpg.window_schedule = {4};
      opt.max_faults = 500;
      opt.run_restoration = false;
      opt.run_omission = false;
      break;
  }
  return opt;
}

namespace {

void append_sequence_line(std::ostream& os, const char* label, const ScanCircuit& sc,
                          const TestSequence& seq) {
  const SequenceStats st = sequence_stats(sc, seq);
  os << "seq " << label << " len " << st.total << " scan " << st.scan << "\n";
}

/// Per-fault detected flags packed as hex nibbles (fault i -> bit i%4 of
/// nibble i/4), 128 nibbles per line. Collapsed fault order is deterministic
/// for a given netlist, so the map is position-addressable.
void append_detmap(std::ostream& os, const std::vector<DetectionRecord>& det) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string line;
  unsigned nibble = 0;
  for (std::size_t i = 0; i < det.size(); ++i) {
    if (det[i].detected) nibble |= 1u << (i % 4);
    if (i % 4 == 3 || i + 1 == det.size()) {
      line.push_back(kHex[nibble]);
      nibble = 0;
      if (line.size() == 128) {
        os << "detmap " << line << "\n";
        line.clear();
      }
    }
  }
  if (!line.empty()) os << "detmap " << line << "\n";
}

void append_vectors(std::ostream& os, const TestSequence& seq) {
  os << "vectors " << seq.length() << " x " << seq.num_inputs() << "\n";
  std::string row;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    row.clear();
    for (std::size_t i = 0; i < seq.num_inputs(); ++i) row.push_back(to_char(seq.at(t, i)));
    os << row << "\n";
  }
}

/// Digest body over prebuilt pieces; both public overloads funnel here so
/// cached-artifact digests are byte-identical to cold ones.
CircuitDigest digest_impl(const std::string& name, const ScanCircuit& sc, const FaultList& full,
                          const DigestOptions& opt) {
  FaultList fl = full;
  const std::size_t collapsed = fl.size();
  if (opt.max_faults > 0 && fl.size() > opt.max_faults) fl = fl.prefix(opt.max_faults);

  const AtpgResult atpg = generate_tests(sc, fl, opt.atpg);

  std::ostringstream os;
  os << "uniscan-corpus-digest v" << kDigestFormatVersion << "\n";
  os << "circuit " << name << "\n";
  os << "profile inputs " << sc.netlist.num_inputs() << " dffs " << sc.netlist.num_dffs()
     << " gates " << sc.netlist.num_gates() << "\n";
  os << "faults collapsed " << collapsed << " targeted " << fl.size() << "\n";
  const std::size_t aborted = fl.size() - atpg.detected - atpg.proved_redundant;
  os << "atpg detected " << atpg.detected << " funct " << atpg.detected_by_scan_knowledge
     << " redundant " << atpg.proved_redundant << " aborted " << aborted << " timed_out "
     << (atpg.timed_out ? 1 : 0) << "\n";
  append_detmap(os, atpg.detection);
  append_sequence_line(os, "generated", sc, atpg.sequence);

  const TestSequence* final_seq = &atpg.sequence;
  CompactionResult rest, omit;
  if (opt.run_restoration) {
    rest = restoration_compact(sc.netlist, *final_seq, fl.faults());
    append_sequence_line(os, "restored", sc, rest.sequence);
    os << "compaction restoration removed " << rest.vectors_removed << " rounds " << rest.rounds
       << " extra " << rest.extra_detected << "\n";
    final_seq = &rest.sequence;
  }
  if (opt.run_omission) {
    omit = omission_compact(sc.netlist, *final_seq, fl.faults());
    append_sequence_line(os, "omitted", sc, omit.sequence);
    os << "compaction omission removed " << omit.vectors_removed << " rounds " << omit.rounds
       << " extra " << omit.extra_detected << "\n";
    final_seq = &omit.sequence;
  }
  append_vectors(os, *final_seq);
  os << "end\n";

  CircuitDigest d;
  d.circuit = name;
  d.canonical_text = os.str();
  d.sha_hex = sha256_hex(d.canonical_text);
  return d;
}

}  // namespace

CircuitDigest compute_circuit_digest(const Netlist& c, const DigestOptions& opt) {
  const ScanCircuit sc = insert_scan(c);
  const FaultList fl = FaultList::collapsed(sc.netlist);
  return digest_impl(c.name(), sc, fl, opt);
}

CircuitDigest compute_circuit_digest(const CircuitArtifacts& a, const DigestOptions& opt) {
  return digest_impl(a.circuit, *a.scan, *a.faults, opt);
}

CircuitDigest compute_corpus_digest(const CorpusRegistry& reg, const CorpusEntry& e) {
  return compute_circuit_digest(reg.load(e), digest_profile(e.tier, e.num_gates));
}

std::string read_golden_sha(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::string line;
  std::getline(in, line);
  const std::string hex{trim(line)};
  if (hex.size() != 64 || hex.find_first_not_of("0123456789abcdef") != std::string::npos)
    throw std::runtime_error("malformed golden digest file " + path + ": '" + excerpt(hex) + "'");
  return hex;
}

void write_golden_sha(const std::string& path, const std::string& hex) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write golden digest file " + path);
  out << hex << "\n";
}

}  // namespace uniscan
