// Five-valued D-calculus as good/faulty V3 pairs.
//
// A V5 carries the good-machine and faulty-machine values of a net:
//   0 = (0,0)   1 = (1,1)   X = (x,x)   D = (1,0)   D' = (0,1)
// plus partially known combinations such as (1,x). Gate evaluation applies
// the 3-valued function to each component, which is exact for the single
// stuck-at fault model with the fault forced on the faulty component.
#pragma once

#include "netlist/gate.hpp"
#include "sim/logic3.hpp"

namespace uniscan {

struct V5 {
  V3 good = V3::X;
  V3 faulty = V3::X;

  static constexpr V5 zero() noexcept { return {V3::Zero, V3::Zero}; }
  static constexpr V5 one() noexcept { return {V3::One, V3::One}; }
  static constexpr V5 x() noexcept { return {V3::X, V3::X}; }
  static constexpr V5 d() noexcept { return {V3::One, V3::Zero}; }
  static constexpr V5 dbar() noexcept { return {V3::Zero, V3::One}; }

  static constexpr V5 both(V3 v) noexcept { return {v, v}; }

  constexpr bool operator==(const V5&) const noexcept = default;
};

/// True iff the net carries a fault effect (both components known, unequal).
inline constexpr bool is_d_or_dbar(V5 v) noexcept {
  return v.good != V3::X && v.faulty != V3::X && v.good != v.faulty;
}

/// True iff both components are known (0/1/D/D').
inline constexpr bool is_fully_known(V5 v) noexcept {
  return v.good != V3::X && v.faulty != V3::X;
}

/// 'D', 'B' (for D-bar), '0', '1', 'x', or '?' for partial values.
char v5_to_char(V5 v) noexcept;

/// Evaluate a gate over V5 fanins: component-wise 3-valued evaluation.
V5 eval_gate_v5(GateType type, const V5* in, std::size_t n) noexcept;

}  // namespace uniscan
