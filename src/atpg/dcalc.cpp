#include "atpg/dcalc.hpp"

#include "sim/sequential_sim.hpp"

namespace uniscan {

char v5_to_char(V5 v) noexcept {
  if (v == V5::d()) return 'D';
  if (v == V5::dbar()) return 'B';
  if (v == V5::zero()) return '0';
  if (v == V5::one()) return '1';
  if (v == V5::x()) return 'x';
  return '?';
}

V5 eval_gate_v5(GateType type, const V5* in, std::size_t n) noexcept {
  V3 good_buf[64];
  V3 faulty_buf[64];
  for (std::size_t i = 0; i < n; ++i) {
    good_buf[i] = in[i].good;
    faulty_buf[i] = in[i].faulty;
  }
  return V5{eval_gate_v3(type, good_buf, n), eval_gate_v3(type, faulty_buf, n)};
}

}  // namespace uniscan
