#include "atpg/ndetect.hpp"

#include "sim/fault_sim.hpp"

namespace uniscan {

namespace {

/// Count-preserving vector omission: a vector is dropped only if no fault's
/// (n-saturated) detection count decreases.
TestSequence omission_keep_counts(const Netlist& nl, const TestSequence& seq,
                                  std::span<const Fault> faults, std::uint32_t n,
                                  std::size_t passes) {
  FaultSimulator sim(nl);
  TestSequence cur = seq;
  std::vector<std::uint32_t> base = sim.run_counts(cur, faults, n);

  for (std::size_t pass = 0; pass < passes; ++pass) {
    std::size_t removed = 0;
    for (std::size_t t = cur.length(); t-- > 0;) {
      TestSequence trial = cur;
      trial.erase(t);
      const auto counts = sim.run_counts(trial, faults, n);
      bool ok = true;
      for (std::size_t i = 0; i < counts.size() && ok; ++i) ok = counts[i] >= base[i];
      if (ok) {
        cur = std::move(trial);
        base = counts;
        ++removed;
      }
    }
    if (removed == 0) break;
  }
  return cur;
}

}  // namespace

NDetectResult generate_n_detect_tests(const ScanCircuit& sc, const FaultList& faults,
                                      const NDetectOptions& options) {
  NDetectResult result;
  result.num_faults = faults.size();
  result.sequence = TestSequence(sc.netlist.num_inputs());

  FaultSimulator sim(sc.netlist);
  for (std::uint32_t round = 0; round < options.n; ++round) {
    AtpgOptions opt = options.atpg;
    opt.seed = options.atpg.seed + 0x9e37 * (round + 1);
    const AtpgResult r = generate_tests(sc, faults, opt);
    result.sequence.append_sequence(r.sequence);

    // Early exit: all faults already at target count.
    const auto counts = sim.run_counts(result.sequence, faults.faults(), options.n);
    bool all = true;
    for (std::size_t i = 0; i < counts.size() && all; ++i)
      all = counts[i] >= options.n || counts[i] == 0;
    if (all) break;
  }

  if (options.compact)
    result.sequence = omission_keep_counts(sc.netlist, result.sequence, faults.faults(),
                                           options.n, options.compact_passes);

  result.counts = sim.run_counts(result.sequence, faults.faults(), options.n);
  for (std::uint32_t c : result.counts) {
    if (c >= 1) ++result.detected;
    if (c >= options.n) ++result.satisfied;
  }
  return result;
}

}  // namespace uniscan
