#include "atpg/seq_atpg.hpp"

#include <algorithm>

#include "atpg/frame_model.hpp"
#include "atpg/podem.hpp"
#include "atpg/scan_knowledge.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sat/sat_engine.hpp"
#include "sim/fault_sim_session.hpp"
#include "util/cancel.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace uniscan {

namespace {

TestSequence random_chunk(const ScanCircuit& sc, std::size_t len, double scan_sel_prob,
                          Rng& rng) {
  TestSequence seq(sc.netlist.num_inputs());
  for (std::size_t t = 0; t < len; ++t) {
    std::vector<V3> vec(sc.netlist.num_inputs());
    for (auto& v : vec) v = rng.next_bool() ? V3::One : V3::Zero;
    vec[sc.scan_sel_index()] = rng.next_double() < scan_sel_prob ? V3::One : V3::Zero;
    seq.append(std::move(vec));
  }
  return seq;
}

}  // namespace

AtpgResult generate_tests(const ScanCircuit& sc, const AtpgOptions& options) {
  const FaultList faults = FaultList::collapsed(sc.netlist);
  return generate_tests(sc, faults, options);
}

AtpgResult generate_tests(const ScanCircuit& sc, const FaultList& faults,
                          const AtpgOptions& options) {
  const Netlist& nl = sc.netlist;
  Rng rng(options.seed);
  const obs::CounterScope evals_scope;

  AtpgResult result;
  result.num_faults = faults.size();
  result.sequence = TestSequence(nl.num_inputs());

  FaultSimSession session(nl, faults.faults());
  std::vector<bool> via_scan_knowledge(faults.size(), false);
  std::vector<bool> podem_proved(faults.size(), false);

  // One strided view of the deadline for the whole generation flow: loop
  // bodies here cost microseconds, so polling the token every iteration
  // dominated small-circuit runs (see util/cancel.hpp).
  StridedPoll cancel(options.cancel);

  // ---- phase 1: random bootstrap -------------------------------------------
  std::size_t useless = 0;
  for (std::size_t chunk_no = 0;
       chunk_no < options.max_random_chunks && useless < options.random_give_up_after &&
       session.num_detected() < faults.size();
       ++chunk_no) {
    if (cancel.poll()) {
      result.timed_out = true;
      break;
    }
    TestSequence chunk =
        random_chunk(sc, options.random_chunk_len, options.random_scan_sel_prob, rng);
    const auto snap = session.snapshot();
    const std::size_t gained = session.advance(chunk);
    if (gained == 0) {
      session.restore(snap);
      ++useless;
      continue;
    }
    useless = 0;
    result.sequence.append_sequence(chunk);
    ++result.stats.random_chunks_accepted;
  }

  // ---- phase 2: deterministic per-fault generation --------------------------
  // Commit a candidate subsequence if it makes the session detect fault fi;
  // returns false (and rolls back) otherwise.
  const auto try_commit = [&](std::size_t fi, TestSequence sub) {
    sub.random_fill(rng);
    const auto snap = session.snapshot();
    session.advance(sub);
    if (!session.is_detected(fi)) {
      session.restore(snap);
      return false;
    }
    result.sequence.append_sequence(sub);
    return true;
  };

  State good, faulty;
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (cancel.poll()) {
      result.timed_out = true;
      break;
    }
    if (session.is_detected(fi)) continue;
    session.pair_state(fi, good, faulty);

    // (a) Plain forward search from the current machine state.
    bool done = false;
    for (std::size_t w : options.window_schedule) {
      FrameModel model(session.compiled(), faults[fi], w);
      model.set_initial_state(good, faulty);
      ++result.stats.podem_calls;
      PodemResult pr =
          run_podem(model, PodemGoal::ObservePo, {options.max_backtracks, options.cancel});
      if (!pr.success) continue;
      if (try_commit(fi, pr.subsequence)) {
        ++result.stats.podem_successes;
        done = true;
        break;
      }
      UNISCAN_LOG(Warn) << "PODEM success not confirmed by fault simulation for fault " << fi;
    }
    if (done || !options.use_scan_knowledge) continue;

    // (b) Scan-load justification assist (paper Section 2, justification
    // side): search with an assignable state in a SMALL window, then reach
    // that state through an explicit scan load. Keeps the window short even
    // for circuits with long chains. A latched-only observation gets the
    // flush of (c) appended.
    {
      FrameModel model(session.compiled(), faults[fi], options.justify_window);
      model.set_state_assignable(true);
      ++result.stats.podem_calls;
      PodemResult pr =
          run_podem(model, PodemGoal::ScanObserve, {options.max_backtracks, options.cancel});
      if (pr.success) {
        State target(pr.scan_in.begin(), pr.scan_in.end());
        TestSequence sub = make_scan_load_all(sc, target, rng);
        sub.append_sequence(pr.subsequence);
        if (!pr.observed_at_po) {
          const ChainPosition pos = chain_position(sc, pr.latched_dff);
          sub.append_sequence(make_flush_sequence(
              sc, pos.chain, flush_length(sc.nets.chains[pos.chain], pos.cell), rng));
        }
        if (try_commit(fi, std::move(sub))) {
          ++result.stats.scan_load_assisted;
          if (!pr.observed_at_po) via_scan_knowledge[fi] = true;
          continue;
        }
      }
    }

    // (c) Section-2 fallback: latch the effect from the CURRENT state, then
    // flush it to scan_out.
    ++result.stats.fallback_attempts;
    FrameModel model(session.compiled(), faults[fi], options.fallback_window);
    model.set_initial_state(good, faulty);
    PodemResult pr =
        run_podem(model, PodemGoal::LatchIntoFf, {options.max_backtracks, options.cancel});
    if (!pr.success) continue;

    const ChainPosition pos = chain_position(sc, pr.latched_dff);
    TestSequence sub = pr.subsequence;
    sub.append_sequence(make_flush_sequence(
        sc, pos.chain, flush_length(sc.nets.chains[pos.chain], pos.cell), rng));
    if (try_commit(fi, std::move(sub))) via_scan_knowledge[fi] = true;
  }

  // ---- phase 3: escalated last-chance pass -----------------------------------
  // The per-fault budget above is deliberately small; give the survivors one
  // deep scan-load-assisted search each.
  if (options.use_scan_knowledge && options.final_effort_backtracks > 0) {
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (cancel.poll()) {
        result.timed_out = true;
        break;
      }
      if (session.is_detected(fi)) continue;
      // Cheap exhaustive proof first: if no single-vector scan test exists,
      // the deep multi-frame search below is almost certainly futile — skip
      // it and report the fault as proved redundant instead. A search cut
      // short by the deadline proves nothing — `aborted` guards the count.
      {
        FrameModel proof(session.compiled(), faults[fi], 1);
        proof.set_state_assignable(true);
        const PodemResult pr = run_podem(proof, PodemGoal::ScanObserve,
                                         {options.final_effort_backtracks, options.cancel});
        if (!pr.success && !pr.aborted && pr.backtracks <= options.final_effort_backtracks) {
          podem_proved[fi] = true;
          ++result.proved_redundant;
          continue;
        }
      }
      FrameModel model(session.compiled(), faults[fi], options.justify_window);
      model.set_state_assignable(true);
      ++result.stats.podem_calls;
      PodemResult pr = run_podem(model, PodemGoal::ScanObserve,
                                 {options.final_effort_backtracks, options.cancel});
      if (!pr.success) continue;
      State target(pr.scan_in.begin(), pr.scan_in.end());
      TestSequence sub = make_scan_load_all(sc, target, rng);
      sub.append_sequence(pr.subsequence);
      if (!pr.observed_at_po) {
        const ChainPosition pos = chain_position(sc, pr.latched_dff);
        sub.append_sequence(make_flush_sequence(
            sc, pos.chain, flush_length(sc.nets.chains[pos.chain], pos.cell), rng));
      }
      if (try_commit(fi, std::move(sub))) {
        ++result.stats.scan_load_assisted;
        if (!pr.observed_at_po) via_scan_knowledge[fi] = true;
      }
    }
  }

  // ---- phase 3.5: SAT second chance (DESIGN.md §5l) --------------------------
  // Everything PODEM left undecided — undetected and not proved redundant —
  // gets one complete search: the miter either yields a test (replayed
  // through the session like every other candidate) or an UNSAT proof that
  // upgrades the fault from implicitly-Aborted to Redundant(proved).
  if (options.sat_mode != SatMode::Off && !result.timed_out) {
    const sat::SatEngine engine(session.compiled());
    sat::SatEngineOptions sopt;
    sopt.frames = options.sat_frames;
    sopt.state_assignable = true;
    sopt.max_conflicts = options.sat_max_conflicts;
    sopt.cancel = options.cancel;
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (cancel.poll()) {
        result.timed_out = true;
        break;
      }
      if (session.is_detected(fi)) continue;
      if (podem_proved[fi]) {
        // PODEM already exhausted the window-1 space; only the cross-check
        // mode spends solver time re-deriving (or refuting) that claim.
        if (options.sat_mode == SatMode::CrossCheck) {
          ++result.sat.cross_checks;
          const sat::SatResult sr = engine.prove(faults[fi], sopt);
          if (sr.verdict == sat::SatVerdict::Testable) {
            ++result.sat.mismatches;
            UNISCAN_LOG(Warn) << "SAT found a test for PODEM-proved fault " << fi;
          }
        }
        continue;
      }
      ++result.sat.attempts;
      const sat::SatResult sr = engine.prove(faults[fi], sopt);
      if (sr.verdict == sat::SatVerdict::RedundantProved) {
        ++result.sat.proved_redundant;
        ++result.proved_redundant;
        continue;
      }
      if (sr.verdict == sat::SatVerdict::Aborted) {
        ++result.sat.aborted;
        continue;
      }
      State target(sr.scan_in.begin(), sr.scan_in.end());
      TestSequence sub = make_scan_load_all(sc, target, rng);
      sub.append_sequence(sr.subsequence);
      if (!sr.observed_at_po) {
        const ChainPosition pos = chain_position(sc, *sr.latched_dff);
        sub.append_sequence(make_flush_sequence(
            sc, pos.chain, flush_length(sc.nets.chains[pos.chain], pos.cell), rng));
      }
      if (try_commit(fi, std::move(sub))) {
        ++result.sat.detected;
        if (!sr.observed_at_po) via_scan_knowledge[fi] = true;
      } else {
        // Same legitimate miss as PODEM's justify path: the (SI, T) model
        // assumes the scan load delivers SI to BOTH machines, but a fault in
        // the chain circuitry can corrupt the load itself. No claim is made;
        // the summary's mismatch counter records it.
        ++result.sat.mismatches;
      }
    }
  }

  // ---- final verification ----------------------------------------------------
  FaultSimulator verifier(nl);
  result.detection = verifier.run(result.sequence, faults.faults());
  result.gate_evals = evals_scope.delta(obs::Counter::GateEvals);
  result.detected = 0;
  for (std::size_t i = 0; i < result.detection.size(); ++i) {
    if (result.detection[i].detected) {
      ++result.detected;
      if (via_scan_knowledge[i]) ++result.detected_by_scan_knowledge;
    }
  }
  if (result.detected != session.num_detected())
    UNISCAN_LOG(Warn) << "session/verifier detection mismatch: " << session.num_detected()
                      << " vs " << result.detected;
  return result;
}

}  // namespace uniscan
