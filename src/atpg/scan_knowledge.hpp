// Functional-level scan knowledge (paper Section 2).
//
// The test generator treats C_scan as an ordinary sequential circuit, but it
// knows two things a generic generator does not:
//  * an effect latched in chain cell p can be carried to scan_out by holding
//    scan_sel = 1 (the flush sequence), and
//  * any state s can be justified by a full-length scan load with
//    scan_sel = 1 and scan_inp fed with s reversed.
#pragma once

#include <cstddef>

#include "scan/scan_insertion.hpp"
#include "sim/sequence.hpp"
#include "sim/sequential_sim.hpp"
#include "util/rng.hpp"

namespace uniscan {

/// Chain coordinates of DFF `dff_index` (Netlist::dffs() order): which chain
/// and which cell. Chains partition the DFFs contiguously in order.
struct ChainPosition {
  std::size_t chain = 0;
  std::size_t cell = 0;
};
ChainPosition chain_position(const ScanCircuit& sc, std::size_t dff_index);

/// Vectors needed to move an effect from chain cell `cell_pos` (0-based)
/// through the chain tail and observe it on scan_out: one shift per
/// remaining cell plus the observation frame.
inline std::size_t flush_length(const ScanChain& chain, std::size_t cell_pos) {
  return chain.cells.size() - cell_pos;
}

/// Build `shifts` vectors with scan_sel = 1. Original primary inputs and
/// scan_inp are filled randomly (the paper fills them randomly as well).
TestSequence make_flush_sequence(const ScanCircuit& sc, std::size_t chain_index,
                                 std::size_t shifts, Rng& rng);

/// Build the scan-load sequence that brings chain `chain_index` to `state`
/// (state[j] is the target value of chain cell j): chain-length vectors with
/// scan_sel = 1 and scan_inp carrying `state` in reverse order. Other
/// primary inputs are filled randomly.
TestSequence make_scan_load_sequence(const ScanCircuit& sc, std::size_t chain_index,
                                     const State& state, Rng& rng);

/// Build the scan-load for ALL chains at once: max-chain-length vectors with
/// scan_sel = 1; each chain's scan_inp feeds its slice of `state` (indexed
/// like Netlist::dffs()) so that after the load every flip-flop holds its
/// target value. X entries (and shifts that fall off a shorter chain) are
/// filled randomly.
TestSequence make_scan_load_all(const ScanCircuit& sc, const State& state, Rng& rng);

}  // namespace uniscan
