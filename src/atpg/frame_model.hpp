// Iterative-array (time-frame expansion) model of a sequential circuit with
// one injected stuck-at fault, over the five-valued D-calculus.
//
// Frame 0's present state is a fixed (good, faulty) pair — the machine pair
// state reached by the test sequence generated so far. Primary inputs of
// every frame are the decision variables; everything else is derived by
// forward pair simulation. The fault is injected in every frame (a stuck-at
// fault is permanent).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "atpg/dcalc.hpp"
#include "fault/fault.hpp"
#include "fault/transition_fault.hpp"
#include "netlist/netlist.hpp"
#include "sim/compiled_netlist.hpp"
#include "sim/sequence.hpp"
#include "sim/sequential_sim.hpp"

namespace uniscan {

class FrameModel {
 public:
  /// Convenience form: compiles `nl` privately. Hot callers (the ATPG loops,
  /// which build one model per fault attempt) should pass a shared
  /// CompiledNetlist instead — e.g. their session's compiled().
  FrameModel(const Netlist& nl, Fault fault, std::size_t num_frames);
  FrameModel(const CompiledNetlist& cnl, Fault fault, std::size_t num_frames);

  /// Transition-fault variant: the faulted line's faulty component follows
  /// the one-cycle gross-delay semantics (STR: and(now, prev), STF: or).
  /// The launch history entering frame 0 defaults to X; see
  /// set_initial_prev_driven().
  FrameModel(const Netlist& nl, TransitionFault fault, std::size_t num_frames);
  FrameModel(const CompiledNetlist& cnl, TransitionFault fault, std::size_t num_frames);

  const Netlist& netlist() const noexcept { return *nl_; }
  std::size_t num_frames() const noexcept { return num_frames_; }
  const Fault& fault() const noexcept { return fault_; }
  bool is_transition() const noexcept { return is_transition_; }
  bool slow_to_rise() const noexcept { return slow_to_rise_; }

  /// Faulted line's driven value in the faulty machine at the cycle before
  /// frame 0 (from the streaming session when extending a sequence).
  void set_initial_prev_driven(V3 v) noexcept {
    tf_prev_init_ = v;
    dirty_from_ = 0;
  }

  /// Fix the machine-pair state entering frame 0.
  void set_initial_state(const State& good, const State& faulty);

  /// Make frame 0's present state a decision variable instead of a fixed
  /// value — the scan-in vector of the conventional (SI, T) test model used
  /// by the baseline generators. Assigned via assign_state().
  void set_state_assignable(bool v) {
    state_assignable_ = v;
    dirty_from_ = 0;
  }
  bool state_assignable() const noexcept { return state_assignable_; }

  // ---- decision variables ---------------------------------------------------
  // Assignments track the earliest touched frame so simulate() only
  // re-evaluates frames that can have changed (frames before it keep their
  // values and cached bookkeeping).
  void assign(std::size_t frame, std::size_t pi, V3 v) {
    pi_assign_[frame * npi_ + pi] = v;
    if (frame < dirty_from_) dirty_from_ = frame;
  }
  V3 assignment(std::size_t frame, std::size_t pi) const { return pi_assign_[frame * npi_ + pi]; }
  void assign_state(std::size_t dff, V3 v) {
    state_assign_[dff] = v;
    dirty_from_ = 0;
  }
  V3 state_assignment(std::size_t dff) const { return state_assign_[dff]; }

  /// Hold input `pi` at `v` in every frame. Pins survive clear_assignments()
  /// and are never chosen as decision variables (the baseline generators pin
  /// scan_sel = 0 so the search stays in the functional mode).
  void pin_input(std::size_t pi, V3 v);
  /// The assigned scan-in vector (unassigned cells are X).
  const std::vector<V3>& extract_state_assignment() const noexcept { return state_assign_; }
  void clear_assignments();

  // ---- simulation -----------------------------------------------------------

  /// Forward pair-simulate all frames under the current assignments.
  void simulate();

  /// Value of gate `g` in frame `f` (after simulate()).
  V5 value(std::size_t f, GateId g) const { return values_[f * nl_->num_gates() + g]; }

  /// Pin value of gate g's pin p in frame f, including branch-fault forcing.
  V5 pin_value(std::size_t f, GateId g, std::size_t p) const;

  /// Value forced onto the faulted line's faulty component at `frame`, given
  /// the faulty machine's driven value (stuck value, or delay semantics).
  V3 forced_faulty(std::size_t frame, V3 driven_faulty) const;

  /// Earliest frame whose POs expose a fault effect, after simulate().
  std::optional<std::size_t> po_detection_frame() const { return po_detect_; }

  /// Earliest (frame, dff) whose *next state* carries a fault effect; among
  /// equal frames, the DFF deepest in Netlist::dffs() order (fewest scan
  /// shifts to the chain tail). Valid after simulate().
  struct LatchedEffect {
    std::size_t frame;
    std::size_t dff_index;
  };
  std::optional<LatchedEffect> first_latched_effect() const { return latch_; }

  /// D-frontier after simulate(): (frame, gate) pairs where a fault effect
  /// sits on an input but the output is not fully known.
  const std::vector<std::pair<std::size_t, GateId>>& d_frontier() const { return frontier_; }

  /// True if a fault effect exists anywhere in the model after simulate().
  bool any_effect() const noexcept { return any_effect_; }

  /// Extract the assigned PI vectors of frames [0, frames_used) as a test
  /// subsequence (unassigned inputs stay X).
  TestSequence extract_sequence(std::size_t frames_used) const;

  // ---- controllability costs ------------------------------------------------
  // SCOAP-flavoured per-net costs on the sequential circuit (DFF outputs
  // take their D cost plus a penalty; a few fixpoint sweeps). Used by the
  // PODEM backtrace to order choices.
  std::uint32_t cost0(GateId g) const { return cost0_[g]; }
  std::uint32_t cost1(GateId g) const { return cost1_[g]; }

 private:
  FrameModel(std::optional<CompiledNetlist> owned, const CompiledNetlist* shared, Fault fault,
             std::size_t num_frames);
  void compute_costs();

  std::optional<CompiledNetlist> owned_compile_;  // backing store for the Netlist ctors
  const CompiledNetlist* cnl_;
  const Netlist* nl_;
  // Full-core evaluation plan with the faulted combinational gate (if the
  // fault sits on one) excluded for individual forced evaluation;
  // fault_split_ is the first run at a level above it.
  BatchProgram prog_;
  std::size_t fault_split_ = 0;
  Fault fault_;  // for transitions: same site, stuck value unused
  bool is_transition_ = false;
  bool slow_to_rise_ = false;
  V3 tf_prev_init_ = V3::X;
  std::size_t num_frames_;
  std::size_t npi_;

  State init_good_, init_faulty_;
  bool state_assignable_ = false;
  std::vector<V3> state_assign_;  // frame-0 PS decision variables
  std::vector<V3> pi_pins_;       // per-PI pinned value (X = unpinned)
  std::vector<V3> pi_assign_;     // frame-major [frame * npi + pi]
  std::vector<V5> values_;     // frame-major [frame * num_gates + gate]

  std::optional<std::size_t> po_detect_;
  std::optional<LatchedEffect> latch_;
  std::vector<std::pair<std::size_t, GateId>> frontier_;
  bool any_effect_ = false;
  std::vector<V3> tf_prev_by_frame_;  // launch history entering each frame

  // Incremental re-simulation state: the machine-pair state entering each
  // frame ((num_frames+1) rows, row f+1 = next state after frame f) and
  // per-frame bookkeeping so frames before dirty_from_ keep cached results.
  std::size_t dirty_from_ = 0;
  std::vector<V5> frame_state_;
  std::vector<std::uint8_t> po_d_frame_, any_d_frame_;
  std::vector<std::int32_t> latch_frame_;      // largest latching DFF, or -1
  std::vector<std::uint32_t> frontier_off_;    // per-frame frontier_ offsets

  std::vector<std::uint32_t> cost0_, cost1_;
};

}  // namespace uniscan
