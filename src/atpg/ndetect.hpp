// n-detect test generation (extension).
//
// n-detect test sets observe every fault at n or more distinct time points,
// which empirically improves defect coverage beyond the single-detection
// stuck-at metric. Under the unified view this composes naturally: run the
// Section-2 generator n times with independent seeds (each round produces
// structurally different tests for the same faults), concatenate, and
// compact with a count-preserving variant of vector omission.
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/seq_atpg.hpp"
#include "fault/fault_list.hpp"
#include "scan/scan_insertion.hpp"

namespace uniscan {

struct NDetectOptions {
  std::uint32_t n = 3;
  AtpgOptions atpg;           // per-round options; the seed varies per round
  bool compact = true;        // count-preserving omission afterwards
  std::size_t compact_passes = 1;
};

struct NDetectResult {
  TestSequence sequence;
  std::vector<std::uint32_t> counts;  // per fault, saturated at n
  std::size_t num_faults = 0;
  std::size_t detected = 0;           // count >= 1
  std::size_t satisfied = 0;          // count >= n

  /// Percentage of faults observed at least n times.
  double n_coverage() const {
    return num_faults == 0
               ? 0.0
               : 100.0 * static_cast<double>(satisfied) / static_cast<double>(num_faults);
  }
};

NDetectResult generate_n_detect_tests(const ScanCircuit& sc, const FaultList& faults,
                                      const NDetectOptions& options = {});

}  // namespace uniscan
