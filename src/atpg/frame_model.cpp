#include "atpg/frame_model.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace uniscan {
namespace {

/// Component-wise five-valued logic for the type-run kernel: a V5 is a
/// (good, faulty) V3 pair and gate evaluation is exact per component.
struct V5Ops {
  using value = V5;
  static V5 not_(V5 a) noexcept { return {v3_not(a.good), v3_not(a.faulty)}; }
  static V5 and_(V5 a, V5 b) noexcept {
    return {v3_and(a.good, b.good), v3_and(a.faulty, b.faulty)};
  }
  static V5 or_(V5 a, V5 b) noexcept {
    return {v3_or(a.good, b.good), v3_or(a.faulty, b.faulty)};
  }
  static V5 xor_(V5 a, V5 b) noexcept {
    return {v3_xor(a.good, b.good), v3_xor(a.faulty, b.faulty)};
  }
  static V5 mux(V5 d0, V5 d1, V5 s) noexcept {
    return {v3_mux(d0.good, d1.good, s.good), v3_mux(d0.faulty, d1.faulty, s.faulty)};
  }
  static V5 zero() noexcept { return V5::zero(); }
  static V5 one() noexcept { return V5::one(); }
};

}  // namespace
}  // namespace uniscan

namespace uniscan {

FrameModel::FrameModel(std::optional<CompiledNetlist> owned, const CompiledNetlist* shared,
                       Fault fault, std::size_t num_frames)
    : owned_compile_(std::move(owned)),
      cnl_(shared ? shared : &*owned_compile_),
      nl_(&cnl_->netlist()),
      fault_(fault),
      num_frames_(num_frames),
      npi_(nl_->num_inputs()) {
  if (num_frames == 0) throw std::invalid_argument("FrameModel: zero frames");
  const Netlist& nl = *nl_;
  // One gate at most needs per-pin/stem fault forcing: exclude it from the
  // clean type runs and evaluate it individually between its level's runs.
  GateId forced[1];
  std::size_t nf = 0;
  const GateType ft = cnl_->type(fault_.gate);
  if (ft != GateType::Input && ft != GateType::Dff) forced[nf++] = fault_.gate;
  prog_ = cnl_->build_program({}, {forced, nf}, /*prune=*/false);
  const std::uint32_t fl =
      nf ? prog_.forced_level[0] : std::numeric_limits<std::uint32_t>::max();
  while (fault_split_ < prog_.runs.size() && prog_.runs[fault_split_].level <= fl)
    ++fault_split_;
  init_good_.assign(nl.num_dffs(), V3::X);
  init_faulty_.assign(nl.num_dffs(), V3::X);
  state_assign_.assign(nl.num_dffs(), V3::X);
  pi_pins_.assign(npi_, V3::X);
  pi_assign_.assign(num_frames_ * npi_, V3::X);
  values_.assign(num_frames_ * nl.num_gates(), V5::x());
  tf_prev_by_frame_.assign(num_frames_, V3::X);
  frame_state_.assign((num_frames_ + 1) * nl.num_dffs(), V5::x());
  po_d_frame_.assign(num_frames_, 0);
  any_d_frame_.assign(num_frames_, 0);
  latch_frame_.assign(num_frames_, -1);
  frontier_off_.assign(num_frames_ + 1, 0);
  compute_costs();
}

FrameModel::FrameModel(const Netlist& nl, Fault fault, std::size_t num_frames)
    : FrameModel(std::optional<CompiledNetlist>(std::in_place, nl), nullptr, fault, num_frames) {}

FrameModel::FrameModel(const CompiledNetlist& cnl, Fault fault, std::size_t num_frames)
    : FrameModel(std::nullopt, &cnl, fault, num_frames) {}

FrameModel::FrameModel(const Netlist& nl, TransitionFault fault, std::size_t num_frames)
    : FrameModel(nl, Fault{fault.gate, fault.pin, /*stuck_one=*/!fault.slow_to_rise},
                 num_frames) {
  // The equivalent-looking stuck value is only used by the activation
  // objective (an STR fault needs the line driven to 1, like s-a-0);
  // simulate() applies the real delay semantics below.
  is_transition_ = true;
  slow_to_rise_ = fault.slow_to_rise;
}

FrameModel::FrameModel(const CompiledNetlist& cnl, TransitionFault fault, std::size_t num_frames)
    : FrameModel(cnl, Fault{fault.gate, fault.pin, /*stuck_one=*/!fault.slow_to_rise},
                 num_frames) {
  is_transition_ = true;
  slow_to_rise_ = fault.slow_to_rise;
}

void FrameModel::set_initial_state(const State& good, const State& faulty) {
  if (good.size() != nl_->num_dffs() || faulty.size() != nl_->num_dffs())
    throw std::invalid_argument("FrameModel: state width mismatch");
  init_good_ = good;
  init_faulty_ = faulty;
  dirty_from_ = 0;
}

void FrameModel::pin_input(std::size_t pi, V3 v) {
  pi_pins_[pi] = v;
  for (std::size_t f = 0; f < num_frames_; ++f) pi_assign_[f * npi_ + pi] = v;
  dirty_from_ = 0;
}

void FrameModel::clear_assignments() {
  std::fill(pi_assign_.begin(), pi_assign_.end(), V3::X);
  std::fill(state_assign_.begin(), state_assign_.end(), V3::X);
  for (std::size_t i = 0; i < npi_; ++i)
    if (pi_pins_[i] != V3::X)
      for (std::size_t f = 0; f < num_frames_; ++f) pi_assign_[f * npi_ + i] = pi_pins_[i];
  dirty_from_ = 0;
}

V5 FrameModel::pin_value(std::size_t f, GateId g, std::size_t p) const {
  V5 v = value(f, nl_->gate(g).fanins[p]);
  if (fault_.pin != kStemPin && fault_.gate == g && fault_.pin == static_cast<std::int16_t>(p))
    v.faulty = forced_faulty(f, v.faulty);
  return v;
}

V3 FrameModel::forced_faulty(std::size_t frame, V3 driven_faulty) const {
  if (!is_transition_) return fault_.stuck_one ? V3::One : V3::Zero;
  const V3 prev = tf_prev_by_frame_[frame];
  return slow_to_rise_ ? v3_and(driven_faulty, prev) : v3_or(driven_faulty, prev);
}

void FrameModel::simulate() {
  const CompiledNetlist& cnl = *cnl_;
  const Netlist& nl = *nl_;
  const std::size_t ng = cnl.num_gates();
  const auto& inputs = cnl.inputs();
  const auto& dffs = cnl.dffs();
  const auto& dff_d = cnl.dff_d();
  const std::uint32_t* fanin_off = cnl.fanin_offsets();
  const GateId* fanin_ids = cnl.fanin_id_data();
  const std::size_t ndff = dffs.size();

  // Only frames from the earliest dirtied one on can have changed; earlier
  // frames keep their values_ and per-frame bookkeeping.
  const std::size_t start = std::min(dirty_from_, num_frames_);
  dirty_from_ = num_frames_;

  if (start == 0) {
    V5* row0 = frame_state_.data();
    for (std::size_t j = 0; j < ndff; ++j) {
      row0[j] = state_assignable_ ? V5::both(state_assign_[j])
                                  : V5{init_good_[j], init_faulty_[j]};
    }
  }

  const std::span<const TypeRun> runs(prog_.runs);
  const bool fault_on_comb = !prog_.forced_order.empty();
  V5 fanin_buf[64];
  V3 tf_prev =
      start == 0 ? tf_prev_init_ : (start < num_frames_ ? tf_prev_by_frame_[start] : V3::X);
  for (std::size_t f = start; f < num_frames_; ++f) {
    V5* vals = values_.data() + f * ng;
    const V5* state_good = frame_state_.data() + f * ndff;
    V5* state_next = frame_state_.data() + (f + 1) * ndff;
    tf_prev_by_frame_[f] = tf_prev;
    V3 tf_now = V3::X;  // faulted line's faulty driven value this frame

    // Frame boundary values, with stem-fault forcing on PIs / DFF outputs.
    for (std::size_t i = 0; i < npi_; ++i) vals[inputs[i]] = V5::both(pi_assign_[f * npi_ + i]);
    for (std::size_t j = 0; j < ndff; ++j) vals[dffs[j]] = state_good[j];
    if (fault_.pin == kStemPin) {
      const GateType bt = cnl.type(fault_.gate);
      if (bt == GateType::Input || bt == GateType::Dff) {
        tf_now = vals[fault_.gate].faulty;
        vals[fault_.gate].faulty = forced_faulty(f, tf_now);
      }
    }

    // Combinational evaluation: clean type runs up to the faulted gate's
    // level, the faulted gate individually (per-pin or stem forcing), the
    // remaining runs. Only the faulted gate ever needs a fault check.
    detail::eval_type_runs<V5Ops>(runs.first(fault_split_), prog_.eval.data(), fanin_off,
                                  fanin_ids, vals);
    if (fault_on_comb) {
      const GateId g = fault_.gate;
      const std::uint32_t lo = fanin_off[g];
      const std::size_t n = fanin_off[g + 1] - lo;
      for (std::size_t p = 0; p < n; ++p) fanin_buf[p] = vals[fanin_ids[lo + p]];
      if (fault_.pin != kStemPin) {
        tf_now = fanin_buf[fault_.pin].faulty;
        fanin_buf[fault_.pin].faulty = forced_faulty(f, tf_now);
      }
      V5 out = eval_gate_v5(cnl.type(g), fanin_buf, n);
      if (fault_.pin == kStemPin) {
        tf_now = out.faulty;
        out.faulty = forced_faulty(f, tf_now);
      }
      vals[g] = out;
    }
    detail::eval_type_runs<V5Ops>(runs.subspan(fault_split_), prog_.eval.data(), fanin_off,
                                  fanin_ids, vals);

    // PO detection.
    po_d_frame_[f] = 0;
    for (GateId po : cnl.outputs()) {
      if (is_d_or_dbar(vals[po])) {
        po_d_frame_[f] = 1;
        break;
      }
    }

    // Next state (with DFF D-pin branch forcing).
    for (std::size_t j = 0; j < ndff; ++j) {
      V5 d = vals[dff_d[j]];
      if (fault_.pin != kStemPin && fault_.gate == dffs[j] && fault_.pin == 0) {
        tf_now = d.faulty;
        d.faulty = forced_faulty(f, tf_now);
      }
      state_next[j] = d;
    }
    tf_prev = tf_now;

    // Latched-effect bookkeeping: the largest latching DFF index of the
    // frame (deepest in the scan chain), -1 if none.
    std::int32_t best = -1;
    for (std::size_t j = 0; j < ndff; ++j)
      if (is_d_or_dbar(state_next[j])) best = static_cast<std::int32_t>(j);
    latch_frame_[f] = best;
  }

  // D-frontier and any-effect scan over the re-simulated frames. Iterates in
  // topo_order like the evaluation loop it replaced: PODEM's decision order
  // depends on the frontier order, so it must stay put. Frames before
  // `start` keep their cached prefix of frontier_.
  frontier_.resize(frontier_off_[start]);
  for (std::size_t f = start; f < num_frames_; ++f) {
    const V5* vals = values_.data() + f * ng;
    any_d_frame_[f] = 0;
    for (GateId g : nl.topo_order()) {
      if (is_d_or_dbar(vals[g])) {
        any_d_frame_[f] = 1;
        continue;
      }
      if (is_fully_known(vals[g])) continue;
      const std::uint32_t lo = fanin_off[g];
      const std::size_t n = fanin_off[g + 1] - lo;
      bool has_d_input = false;
      for (std::size_t p = 0; p < n && !has_d_input; ++p) {
        V5 pv = vals[fanin_ids[lo + p]];
        if (fault_.pin != kStemPin && fault_.gate == g &&
            fault_.pin == static_cast<std::int16_t>(p))
          pv.faulty = forced_faulty(f, pv.faulty);
        has_d_input = is_d_or_dbar(pv);
      }
      if (has_d_input) {
        frontier_.emplace_back(f, g);
        any_d_frame_[f] = 1;
      }
    }
    frontier_off_[f + 1] = static_cast<std::uint32_t>(frontier_.size());
  }

  // Combine the per-frame caches (unchanged frames contribute their cached
  // entries) into the same results a full pass would produce.
  po_detect_.reset();
  latch_.reset();
  any_effect_ = !frontier_.empty();
  for (std::size_t f = 0; f < num_frames_; ++f) {
    if (!po_detect_ && po_d_frame_[f]) po_detect_ = f;
    if (!latch_ && latch_frame_[f] >= 0)
      latch_ = LatchedEffect{f, static_cast<std::size_t>(latch_frame_[f])};
    if (any_d_frame_[f]) any_effect_ = true;
  }
  if (latch_ || po_detect_) any_effect_ = true;
}

TestSequence FrameModel::extract_sequence(std::size_t frames_used) const {
  TestSequence seq(npi_);
  for (std::size_t f = 0; f < frames_used && f < num_frames_; ++f) {
    std::vector<V3> vec(npi_);
    for (std::size_t i = 0; i < npi_; ++i) vec[i] = pi_assign_[f * npi_ + i];
    seq.append(std::move(vec));
  }
  return seq;
}

namespace {
constexpr std::uint32_t kInf = 1000000;
constexpr std::uint32_t kDffPenalty = 16;
}  // namespace

void FrameModel::compute_costs() {
  const Netlist& nl = *nl_;
  cost0_.assign(nl.num_gates(), kInf);
  cost1_.assign(nl.num_gates(), kInf);

  for (GateId pi : nl.inputs()) {
    cost0_[pi] = 1;
    cost1_[pi] = 1;
  }

  const auto saturating_add = [](std::uint32_t a, std::uint32_t b) {
    return std::min(kInf, a + b);
  };

  // A few sweeps so DFF-output costs converge through feedback loops.
  for (int sweep = 0; sweep < 4; ++sweep) {
    for (GateId g : nl.topo_order()) {
      const Gate& gate = nl.gate(g);
      const auto& fi = gate.fanins;
      std::uint32_t c0 = kInf, c1 = kInf;
      const auto and_like = [&](bool invert) {
        // output 0 (pre-inversion): cheapest single 0 input; output 1: all 1s.
        std::uint32_t zero_side = kInf, one_side = 1;
        for (GateId in : fi) {
          zero_side = std::min(zero_side, cost0_[in]);
          one_side = saturating_add(one_side, cost1_[in]);
        }
        zero_side = saturating_add(zero_side, 1);
        c0 = invert ? one_side : zero_side;
        c1 = invert ? zero_side : one_side;
      };
      const auto or_like = [&](bool invert) {
        std::uint32_t one_side = kInf, zero_side = 1;
        for (GateId in : fi) {
          one_side = std::min(one_side, cost1_[in]);
          zero_side = saturating_add(zero_side, cost0_[in]);
        }
        one_side = saturating_add(one_side, 1);
        c0 = invert ? one_side : zero_side;
        c1 = invert ? zero_side : one_side;
      };
      switch (gate.type) {
        case GateType::Buf:
          c0 = saturating_add(cost0_[fi[0]], 1);
          c1 = saturating_add(cost1_[fi[0]], 1);
          break;
        case GateType::Not:
          c0 = saturating_add(cost1_[fi[0]], 1);
          c1 = saturating_add(cost0_[fi[0]], 1);
          break;
        case GateType::And: and_like(false); break;
        case GateType::Nand: and_like(true); break;
        case GateType::Or: or_like(false); break;
        case GateType::Nor: or_like(true); break;
        case GateType::Xor:
        case GateType::Xnor: {
          // Two-input approximation extended pairwise.
          std::uint32_t even = 1, odd = kInf;
          for (GateId in : fi) {
            const std::uint32_t e2 = std::min(saturating_add(even, cost0_[in]),
                                              saturating_add(odd, cost1_[in]));
            const std::uint32_t o2 = std::min(saturating_add(even, cost1_[in]),
                                              saturating_add(odd, cost0_[in]));
            even = e2;
            odd = o2;
          }
          c0 = gate.type == GateType::Xor ? even : odd;
          c1 = gate.type == GateType::Xor ? odd : even;
          break;
        }
        case GateType::Mux2: {
          const std::uint32_t via0_0 = saturating_add(cost0_[fi[2]], cost0_[fi[0]]);
          const std::uint32_t via1_0 = saturating_add(cost1_[fi[2]], cost0_[fi[1]]);
          const std::uint32_t via0_1 = saturating_add(cost0_[fi[2]], cost1_[fi[0]]);
          const std::uint32_t via1_1 = saturating_add(cost1_[fi[2]], cost1_[fi[1]]);
          c0 = saturating_add(std::min(via0_0, via1_0), 1);
          c1 = saturating_add(std::min(via0_1, via1_1), 1);
          break;
        }
        case GateType::Const0:
          c0 = 0;
          c1 = kInf;
          break;
        case GateType::Const1:
          c0 = kInf;
          c1 = 0;
          break;
        case GateType::Input:
        case GateType::Dff:
          break;
      }
      cost0_[g] = c0;
      cost1_[g] = c1;
    }
    for (GateId ff : nl.dffs()) {
      const GateId d = nl.gate(ff).fanins[0];
      cost0_[ff] = saturating_add(cost0_[d], kDffPenalty);
      cost1_[ff] = saturating_add(cost1_[d], kDffPenalty);
    }
  }
}

}  // namespace uniscan
