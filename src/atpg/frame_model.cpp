#include "atpg/frame_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace uniscan {

FrameModel::FrameModel(const Netlist& nl, Fault fault, std::size_t num_frames)
    : nl_(&nl), fault_(fault), num_frames_(num_frames), npi_(nl.num_inputs()) {
  if (!nl.is_finalized()) throw std::invalid_argument("FrameModel: netlist not finalized");
  if (num_frames == 0) throw std::invalid_argument("FrameModel: zero frames");
  init_good_.assign(nl.num_dffs(), V3::X);
  init_faulty_.assign(nl.num_dffs(), V3::X);
  state_assign_.assign(nl.num_dffs(), V3::X);
  pi_pins_.assign(npi_, V3::X);
  pi_assign_.assign(num_frames_ * npi_, V3::X);
  values_.assign(num_frames_ * nl.num_gates(), V5::x());
  tf_prev_by_frame_.assign(num_frames_, V3::X);
  compute_costs();
}

FrameModel::FrameModel(const Netlist& nl, TransitionFault fault, std::size_t num_frames)
    : FrameModel(nl, Fault{fault.gate, fault.pin, /*stuck_one=*/!fault.slow_to_rise},
                 num_frames) {
  // The equivalent-looking stuck value is only used by the activation
  // objective (an STR fault needs the line driven to 1, like s-a-0);
  // simulate() applies the real delay semantics below.
  is_transition_ = true;
  slow_to_rise_ = fault.slow_to_rise;
}

void FrameModel::set_initial_state(const State& good, const State& faulty) {
  if (good.size() != nl_->num_dffs() || faulty.size() != nl_->num_dffs())
    throw std::invalid_argument("FrameModel: state width mismatch");
  init_good_ = good;
  init_faulty_ = faulty;
}

void FrameModel::pin_input(std::size_t pi, V3 v) {
  pi_pins_[pi] = v;
  for (std::size_t f = 0; f < num_frames_; ++f) pi_assign_[f * npi_ + pi] = v;
}

void FrameModel::clear_assignments() {
  std::fill(pi_assign_.begin(), pi_assign_.end(), V3::X);
  std::fill(state_assign_.begin(), state_assign_.end(), V3::X);
  for (std::size_t i = 0; i < npi_; ++i)
    if (pi_pins_[i] != V3::X)
      for (std::size_t f = 0; f < num_frames_; ++f) pi_assign_[f * npi_ + i] = pi_pins_[i];
}

V5 FrameModel::pin_value(std::size_t f, GateId g, std::size_t p) const {
  V5 v = value(f, nl_->gate(g).fanins[p]);
  if (fault_.pin != kStemPin && fault_.gate == g && fault_.pin == static_cast<std::int16_t>(p))
    v.faulty = forced_faulty(f, v.faulty);
  return v;
}

V3 FrameModel::forced_faulty(std::size_t frame, V3 driven_faulty) const {
  if (!is_transition_) return fault_.stuck_one ? V3::One : V3::Zero;
  const V3 prev = tf_prev_by_frame_[frame];
  return slow_to_rise_ ? v3_and(driven_faulty, prev) : v3_or(driven_faulty, prev);
}

void FrameModel::simulate() {
  const Netlist& nl = *nl_;
  const std::size_t ng = nl.num_gates();
  po_detect_.reset();
  latch_.reset();
  frontier_.clear();
  any_effect_ = false;

  std::vector<V5> state_good(nl.num_dffs());
  for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
    state_good[j] = state_assignable_ ? V5::both(state_assign_[j])
                                      : V5{init_good_[j], init_faulty_[j]};
  }

  V5 fanin_buf[64];
  V3 tf_prev = tf_prev_init_;
  for (std::size_t f = 0; f < num_frames_; ++f) {
    V5* vals = values_.data() + f * ng;
    tf_prev_by_frame_[f] = tf_prev;
    V3 tf_now = V3::X;  // faulted line's faulty driven value this frame

    // Frame boundary values, with stem-fault forcing on PIs / DFF outputs.
    for (std::size_t i = 0; i < npi_; ++i) {
      const GateId pi = nl.inputs()[i];
      vals[pi] = V5::both(pi_assign_[f * npi_ + i]);
    }
    for (std::size_t j = 0; j < nl.num_dffs(); ++j) vals[nl.dffs()[j]] = state_good[j];
    if (fault_.pin == kStemPin) {
      const GateType bt = nl.gate(fault_.gate).type;
      if (bt == GateType::Input || bt == GateType::Dff) {
        tf_now = vals[fault_.gate].faulty;
        vals[fault_.gate].faulty = forced_faulty(f, tf_now);
      }
    }

    // Combinational evaluation with fault forcing.
    for (GateId g : nl.topo_order()) {
      const Gate& gate = nl.gate(g);
      const std::size_t n = gate.fanins.size();
      for (std::size_t p = 0; p < n; ++p) {
        fanin_buf[p] = vals[gate.fanins[p]];
        if (fault_.pin != kStemPin && fault_.gate == g &&
            fault_.pin == static_cast<std::int16_t>(p)) {
          tf_now = fanin_buf[p].faulty;
          fanin_buf[p].faulty = forced_faulty(f, tf_now);
        }
      }
      V5 out = eval_gate_v5(gate.type, fanin_buf, n);
      if (fault_.pin == kStemPin && fault_.gate == g) {
        tf_now = out.faulty;
        out.faulty = forced_faulty(f, tf_now);
      }
      vals[g] = out;
    }

    // PO detection.
    if (!po_detect_) {
      for (GateId po : nl.outputs()) {
        if (is_d_or_dbar(vals[po])) {
          po_detect_ = f;
          break;
        }
      }
    }

    // Next state (with DFF D-pin branch forcing).
    for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
      const GateId ff = nl.dffs()[j];
      V5 d = vals[nl.gate(ff).fanins[0]];
      if (fault_.pin != kStemPin && fault_.gate == ff && fault_.pin == 0) {
        tf_now = d.faulty;
        d.faulty = forced_faulty(f, tf_now);
      }
      state_good[j] = d;
    }
    tf_prev = tf_now;

    // Latched-effect bookkeeping: earliest frame; among DFFs of that frame,
    // the largest index (deepest in the scan chain).
    if (!latch_) {
      std::optional<std::size_t> best;
      for (std::size_t j = 0; j < nl.num_dffs(); ++j)
        if (is_d_or_dbar(state_good[j])) best = j;
      if (best) latch_ = LatchedEffect{f, *best};
    }
  }

  // D-frontier and any-effect scan over the simulated window.
  for (std::size_t f = 0; f < num_frames_; ++f) {
    const V5* vals = values_.data() + f * ng;
    for (GateId g : nl.topo_order()) {
      const Gate& gate = nl.gate(g);
      if (is_d_or_dbar(vals[g])) {
        any_effect_ = true;
        continue;
      }
      if (is_fully_known(vals[g])) continue;
      bool has_d_input = false;
      for (std::size_t p = 0; p < gate.fanins.size() && !has_d_input; ++p)
        has_d_input = is_d_or_dbar(pin_value(f, g, p));
      if (has_d_input) {
        frontier_.emplace_back(f, g);
        any_effect_ = true;
      }
    }
  }
  if (latch_ || po_detect_) any_effect_ = true;
}

TestSequence FrameModel::extract_sequence(std::size_t frames_used) const {
  TestSequence seq(npi_);
  for (std::size_t f = 0; f < frames_used && f < num_frames_; ++f) {
    std::vector<V3> vec(npi_);
    for (std::size_t i = 0; i < npi_; ++i) vec[i] = pi_assign_[f * npi_ + i];
    seq.append(std::move(vec));
  }
  return seq;
}

namespace {
constexpr std::uint32_t kInf = 1000000;
constexpr std::uint32_t kDffPenalty = 16;
}  // namespace

void FrameModel::compute_costs() {
  const Netlist& nl = *nl_;
  cost0_.assign(nl.num_gates(), kInf);
  cost1_.assign(nl.num_gates(), kInf);

  for (GateId pi : nl.inputs()) {
    cost0_[pi] = 1;
    cost1_[pi] = 1;
  }

  const auto saturating_add = [](std::uint32_t a, std::uint32_t b) {
    return std::min(kInf, a + b);
  };

  // A few sweeps so DFF-output costs converge through feedback loops.
  for (int sweep = 0; sweep < 4; ++sweep) {
    for (GateId g : nl.topo_order()) {
      const Gate& gate = nl.gate(g);
      const auto& fi = gate.fanins;
      std::uint32_t c0 = kInf, c1 = kInf;
      const auto and_like = [&](bool invert) {
        // output 0 (pre-inversion): cheapest single 0 input; output 1: all 1s.
        std::uint32_t zero_side = kInf, one_side = 1;
        for (GateId in : fi) {
          zero_side = std::min(zero_side, cost0_[in]);
          one_side = saturating_add(one_side, cost1_[in]);
        }
        zero_side = saturating_add(zero_side, 1);
        c0 = invert ? one_side : zero_side;
        c1 = invert ? zero_side : one_side;
      };
      const auto or_like = [&](bool invert) {
        std::uint32_t one_side = kInf, zero_side = 1;
        for (GateId in : fi) {
          one_side = std::min(one_side, cost1_[in]);
          zero_side = saturating_add(zero_side, cost0_[in]);
        }
        one_side = saturating_add(one_side, 1);
        c0 = invert ? one_side : zero_side;
        c1 = invert ? zero_side : one_side;
      };
      switch (gate.type) {
        case GateType::Buf:
          c0 = saturating_add(cost0_[fi[0]], 1);
          c1 = saturating_add(cost1_[fi[0]], 1);
          break;
        case GateType::Not:
          c0 = saturating_add(cost1_[fi[0]], 1);
          c1 = saturating_add(cost0_[fi[0]], 1);
          break;
        case GateType::And: and_like(false); break;
        case GateType::Nand: and_like(true); break;
        case GateType::Or: or_like(false); break;
        case GateType::Nor: or_like(true); break;
        case GateType::Xor:
        case GateType::Xnor: {
          // Two-input approximation extended pairwise.
          std::uint32_t even = 1, odd = kInf;
          for (GateId in : fi) {
            const std::uint32_t e2 = std::min(saturating_add(even, cost0_[in]),
                                              saturating_add(odd, cost1_[in]));
            const std::uint32_t o2 = std::min(saturating_add(even, cost1_[in]),
                                              saturating_add(odd, cost0_[in]));
            even = e2;
            odd = o2;
          }
          c0 = gate.type == GateType::Xor ? even : odd;
          c1 = gate.type == GateType::Xor ? odd : even;
          break;
        }
        case GateType::Mux2: {
          const std::uint32_t via0_0 = saturating_add(cost0_[fi[2]], cost0_[fi[0]]);
          const std::uint32_t via1_0 = saturating_add(cost1_[fi[2]], cost0_[fi[1]]);
          const std::uint32_t via0_1 = saturating_add(cost0_[fi[2]], cost1_[fi[0]]);
          const std::uint32_t via1_1 = saturating_add(cost1_[fi[2]], cost1_[fi[1]]);
          c0 = saturating_add(std::min(via0_0, via1_0), 1);
          c1 = saturating_add(std::min(via0_1, via1_1), 1);
          break;
        }
        case GateType::Const0:
          c0 = 0;
          c1 = kInf;
          break;
        case GateType::Const1:
          c0 = kInf;
          c1 = 0;
          break;
        case GateType::Input:
        case GateType::Dff:
          break;
      }
      cost0_[g] = c0;
      cost1_[g] = c1;
    }
    for (GateId ff : nl.dffs()) {
      const GateId d = nl.gate(ff).fanins[0];
      cost0_[ff] = saturating_add(cost0_[d], kDffPenalty);
      cost1_[ff] = saturating_add(cost1_[d], kDffPenalty);
    }
  }
}

}  // namespace uniscan
