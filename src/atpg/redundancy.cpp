#include "atpg/redundancy.hpp"

#include "atpg/frame_model.hpp"
#include "atpg/podem.hpp"
#include "sim/compiled_netlist.hpp"
#include "util/cancel.hpp"

namespace uniscan {

RedundancyReport classify_faults(const ScanCircuit& sc, std::span<const Fault> faults,
                                 const RedundancyOptions& options) {
  RedundancyReport report;
  report.classes.reserve(faults.size());

  const CompiledNetlist compiled(sc.netlist);
  StridedPoll cancel(options.cancel);
  for (const Fault& f : faults) {
    if (cancel.poll()) {
      // Deadline fired: everything not yet proved stays unproved.
      while (report.classes.size() < faults.size()) {
        report.classes.push_back(FaultClass::Aborted);
        ++report.aborted;
      }
      break;
    }
    FrameModel model(compiled, f, options.window);
    model.set_state_assignable(true);
    const PodemResult r =
        run_podem(model, PodemGoal::ScanObserve, {options.max_backtracks, options.cancel});

    FaultClass cls;
    if (r.success) {
      cls = FaultClass::Testable;
      ++report.testable;
    } else if (!r.aborted && r.backtracks <= options.max_backtracks) {
      // The search ran out of alternatives (stack emptied), not out of
      // budget or wall clock: the space was exhausted.
      cls = FaultClass::Redundant;
      ++report.redundant;
    } else {
      cls = FaultClass::Aborted;
      ++report.aborted;
    }
    report.classes.push_back(cls);
  }
  return report;
}

}  // namespace uniscan
