#include "atpg/redundancy.hpp"

#include "atpg/frame_model.hpp"
#include "atpg/podem.hpp"
#include "atpg/scan_knowledge.hpp"
#include "sat/sat_engine.hpp"
#include "sim/compiled_netlist.hpp"
#include "sim/fault_sim.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace uniscan {

RedundancyReport classify_faults(const ScanCircuit& sc, std::span<const Fault> faults,
                                 const RedundancyOptions& options) {
  RedundancyReport report;
  report.classes.reserve(faults.size());

  const CompiledNetlist compiled(sc.netlist);
  StridedPoll cancel(options.cancel);
  for (const Fault& f : faults) {
    if (cancel.poll()) {
      // Deadline fired: everything not yet proved stays unproved.
      while (report.classes.size() < faults.size()) {
        report.classes.push_back(FaultClass::Aborted);
        ++report.aborted;
      }
      break;
    }
    FrameModel model(compiled, f, options.window);
    model.set_state_assignable(true);
    const PodemResult r =
        run_podem(model, PodemGoal::ScanObserve, {options.max_backtracks, options.cancel});

    FaultClass cls;
    if (r.success) {
      cls = FaultClass::Testable;
      ++report.testable;
    } else if (!r.aborted && r.backtracks <= options.max_backtracks) {
      // The search ran out of alternatives (stack emptied), not out of
      // budget or wall clock: the space was exhausted.
      cls = FaultClass::Redundant;
      ++report.redundant;
    } else {
      cls = FaultClass::Aborted;
      ++report.aborted;
    }
    report.classes.push_back(cls);
  }

  // SAT second chance (DESIGN.md §5l): the complete search either settles
  // what PODEM's backtrack cap left Aborted, or (cross-check mode) attacks
  // PODEM's own Redundant claims. Upgrades rewrite `classes` and the tallies;
  // a solver model is only believed after the full scan sequence it decodes
  // to — load, subsequence, flush — replays through the fault simulator.
  if (options.sat_mode != SatMode::Off) {
    const sat::SatEngine engine(compiled);
    sat::SatEngineOptions sopt;
    sopt.frames = options.window;
    sopt.state_assignable = true;
    sopt.max_conflicts = options.sat_max_conflicts;
    sopt.cancel = options.cancel;
    const FaultSimulator verifier(sc.netlist);
    Rng rng(0x5a7c4ec2ULL);
    for (std::size_t i = 0; i < report.classes.size(); ++i) {
      if (cancel.poll()) break;
      FaultClass& cls = report.classes[i];
      if (cls == FaultClass::Testable) continue;
      if (cls == FaultClass::Redundant) {
        if (options.sat_mode == SatMode::CrossCheck) {
          ++report.sat.cross_checks;
          const sat::SatResult sr = engine.prove(faults[i], sopt);
          if (sr.verdict == sat::SatVerdict::Testable) ++report.sat.mismatches;
        }
        continue;
      }
      ++report.sat.attempts;
      const sat::SatResult sr = engine.prove(faults[i], sopt);
      if (sr.verdict == sat::SatVerdict::RedundantProved) {
        ++report.sat.proved_redundant;
        cls = FaultClass::Redundant;
        --report.aborted;
        ++report.redundant;
        continue;
      }
      if (sr.verdict == sat::SatVerdict::Aborted) {
        ++report.sat.aborted;
        continue;
      }
      State target(sr.scan_in.begin(), sr.scan_in.end());
      TestSequence seq = make_scan_load_all(sc, target, rng);
      seq.append_sequence(sr.subsequence);
      if (!sr.observed_at_po) {
        const ChainPosition pos = chain_position(sc, *sr.latched_dff);
        seq.append_sequence(make_flush_sequence(
            sc, pos.chain, flush_length(sc.nets.chains[pos.chain], pos.cell), rng));
      }
      seq.random_fill(rng);
      const auto det = verifier.run(seq, std::span<const Fault>(&faults[i], 1));
      if (!det.empty() && det[0].detected) {
        ++report.sat.detected;
        cls = FaultClass::Testable;
        --report.aborted;
        ++report.testable;
      } else {
        ++report.sat.mismatches;
      }
    }
  }
  return report;
}

}  // namespace uniscan
