// Bounded untestability analysis — the completeness the paper's Section-5
// remark points out its generator lacks ("it is not able to prove that a
// fault is undetectable").
//
// A fault of the scan circuit is classified by an exhaustive PODEM search on
// the (SI, T) model: frame-0 state fully assignable (any state is reachable
// through the chain), `window` functional frames, observation at any PO or
// in the final latched state (which a scan-out makes visible). With an
// unbounded backtrack budget the search is exhaustive over the input/state
// space, so:
//
//  * window = 1 failure  => the fault is UNTESTABLE BY ANY conventional
//    single-vector scan test (combinationally redundant under full scan,
//    modulo the optimistic X-propagation of the MUX model);
//  * window = k failure  => no (SI, T) test with |T| <= k exists.
//
// Faults that exhaust the backtrack cap before the space is exhausted are
// reported as Aborted, never as Redundant.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/verdict.hpp"
#include "fault/fault_list.hpp"
#include "scan/scan_insertion.hpp"
#include "util/cancel.hpp"

namespace uniscan {

enum class FaultClass : std::uint8_t {
  Testable,   // a test exists (found by the exhaustive search)
  Redundant,  // proved: no (SI, T) test with |T| <= window exists
  Aborted,    // backtrack cap hit before the space was exhausted
};

struct RedundancyOptions {
  std::size_t window = 1;       // |T| bound of the proof
  int max_backtracks = 200000;  // proof budget per fault
  /// Cooperative deadline (DESIGN.md §5f). When it fires, the fault whose
  /// search was interrupted and every fault not yet examined are classified
  /// Aborted — never Redundant, since their spaces were not exhausted.
  CancelToken cancel;

  // SAT second chance (DESIGN.md §5l). SecondChance hands every Aborted
  // fault to the SAT engine at the same window: an UNSAT upgrades it to
  // Redundant, a model that replays through the fault simulator upgrades it
  // to Testable. CrossCheck additionally re-proves every PODEM Redundant
  // claim and counts disagreements. Off keeps the report bit-identical to
  // the PODEM-only classification.
  SatMode sat_mode = SatMode::Off;
  std::int64_t sat_max_conflicts = 20000;  // per-fault solver budget
};

struct RedundancyReport {
  std::vector<FaultClass> classes;  // one per fault
  std::size_t testable = 0;
  std::size_t redundant = 0;
  std::size_t aborted = 0;
  /// What the SAT second-chance pass contributed (all zero when
  /// `RedundancyOptions::sat_mode == SatMode::Off`). The counters above
  /// reflect the FINAL classes, after any SAT upgrades.
  SatSummary sat;
};

/// Classify every fault in `faults` (usually the subset a generator left
/// undetected). `sc` must have its chains inserted already.
RedundancyReport classify_faults(const ScanCircuit& sc, std::span<const Fault> faults,
                                 const RedundancyOptions& options = {});

}  // namespace uniscan
