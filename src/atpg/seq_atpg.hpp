// Sequential test generation for scan circuits under the unified view
// (paper Section 2).
//
// The generator builds ONE test sequence T for C_scan by concatenating
// subsequences, exactly as the paper describes:
//   1. a cheap random bootstrap phase (accepted chunk-wise only when it
//      detects new faults),
//   2. per remaining fault, deterministic PODEM search over a growing
//      time-frame window, starting from the machine-pair state reached by T,
//   3. when deterministic detection fails, the Section-2 scan-knowledge
//      fallback: search only until the fault effect is LATCHED into a
//      flip-flop, then append a scan flush (scan_sel = 1) to carry it to
//      scan_out. Faults detected this way populate Table 5's `funct` column.
//
// Every extension is committed through a streaming fault-simulation session,
// so detection bookkeeping is exact and incremental; the final sequence is
// re-verified from power-up by an independent fault simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/verdict.hpp"
#include "fault/fault_list.hpp"
#include "scan/scan_insertion.hpp"
#include "sim/fault_sim.hpp"
#include "sim/sequence.hpp"
#include "util/cancel.hpp"

namespace uniscan {

struct AtpgOptions {
  std::uint64_t seed = 1;

  /// Cooperative wall-clock budget (DESIGN.md §5f). Polled at the top of
  /// every per-fault iteration and inside PODEM's search loop. When it
  /// fires, generation stops cleanly: the best-so-far sequence is verified
  /// and returned with `timed_out` set and the remaining faults untested.
  /// Inert by default — results are bit-identical to an unbudgeted run
  /// whenever the token never fires.
  CancelToken cancel;

  // Random bootstrap phase.
  std::size_t random_chunk_len = 24;
  std::size_t max_random_chunks = 64;
  std::size_t random_give_up_after = 6;   // consecutive useless chunks
  double random_scan_sel_prob = 0.25;     // P(scan_sel = 1) per random vector

  // Deterministic phase.
  std::vector<std::size_t> window_schedule = {4, 10};
  int max_backtracks = 120;

  // Section-2 functional scan knowledge (Table 5 ablation switch). Controls
  // both the latch-and-flush fallback (the paper's `funct` mechanism) and
  // the scan-load justification assist (the paper's Section-2 note on state
  // justification through the chain).
  bool use_scan_knowledge = true;
  std::size_t fallback_window = 8;
  std::size_t justify_window = 8;

  // Last-chance pass: remaining undetected faults get one scan-load-assisted
  // search with this (much larger) backtrack budget. 0 disables the pass.
  int final_effort_backtracks = 6000;

  // SAT second chance (DESIGN.md §5l). Off keeps the pipeline byte-identical
  // to the pre-SAT generator; SecondChance hands every fault still undecided
  // after the last-chance pass to the SAT engine (sat/sat_engine.hpp);
  // CrossCheck additionally re-proves PODEM's own redundancy claims and
  // counts disagreements in `AtpgResult::sat.mismatches`.
  SatMode sat_mode = SatMode::Off;
  std::int64_t sat_max_conflicts = 20000;  // per-fault solver budget
  std::size_t sat_frames = 1;              // unrolled depth of the miter
};

struct AtpgStats {
  std::size_t podem_calls = 0;
  std::size_t podem_successes = 0;
  std::size_t scan_load_assisted = 0;  // detections via scan-load justification
  std::size_t fallback_attempts = 0;
  std::size_t random_chunks_accepted = 0;
};

struct AtpgResult {
  TestSequence sequence;  // fully specified
  std::size_t num_faults = 0;
  std::size_t detected = 0;
  std::size_t detected_by_scan_knowledge = 0;  // the `funct` column
  /// Undetected faults PROVED untestable by any single-vector scan test
  /// (window-1 exhaustive search) during the last-chance pass — the
  /// completeness extension the paper notes its procedure lacks.
  std::size_t proved_redundant = 0;
  /// True when AtpgOptions::cancel fired: the sequence is the verified
  /// best-so-far prefix and the faults not reached remain undetected.
  bool timed_out = false;
  std::vector<DetectionRecord> detection;      // per collapsed fault, final sequence
  AtpgStats stats;
  /// Gate-word evaluations spent on fault simulation (session + final
  /// verification) — the bench binaries' work metric.
  std::uint64_t gate_evals = 0;
  /// What the SAT second-chance phase contributed (all zero when
  /// `AtpgOptions::sat_mode == SatMode::Off`).
  SatSummary sat;

  double fault_coverage() const {
    return num_faults == 0 ? 0.0 : 100.0 * static_cast<double>(detected) / static_cast<double>(num_faults);
  }
};

/// Run the Section-2 generator on a scan circuit. `faults` defaults to the
/// collapsed universe of sc.netlist when empty.
AtpgResult generate_tests(const ScanCircuit& sc, const AtpgOptions& options = {});
AtpgResult generate_tests(const ScanCircuit& sc, const FaultList& faults,
                          const AtpgOptions& options);

}  // namespace uniscan
