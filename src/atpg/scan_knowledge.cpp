#include "atpg/scan_knowledge.hpp"

#include <stdexcept>

namespace uniscan {

namespace {

std::vector<V3> random_vector(const ScanCircuit& sc, Rng& rng) {
  std::vector<V3> vec(sc.netlist.num_inputs());
  for (auto& v : vec) v = rng.next_bool() ? V3::One : V3::Zero;
  return vec;
}

}  // namespace

ChainPosition chain_position(const ScanCircuit& sc, std::size_t dff_index) {
  std::size_t base = 0;
  for (std::size_t c = 0; c < sc.nets.chains.size(); ++c) {
    const std::size_t len = sc.nets.chains[c].cells.size();
    if (dff_index < base + len) return {c, dff_index - base};
    base += len;
  }
  return {0, 0};
}

TestSequence make_flush_sequence(const ScanCircuit& sc, std::size_t chain_index,
                                 std::size_t shifts, Rng& rng) {
  const ScanChain& chain = sc.nets.chains.at(chain_index);
  (void)chain;
  TestSequence seq(sc.netlist.num_inputs());
  for (std::size_t k = 0; k < shifts; ++k) {
    auto vec = random_vector(sc, rng);
    vec[sc.scan_sel_index()] = V3::One;
    seq.append(std::move(vec));
  }
  return seq;
}

TestSequence make_scan_load_sequence(const ScanCircuit& sc, std::size_t chain_index,
                                     const State& state, Rng& rng) {
  const ScanChain& chain = sc.nets.chains.at(chain_index);
  const std::size_t n = chain.cells.size();
  if (state.size() != n)
    throw std::invalid_argument("make_scan_load_sequence: state width != chain length");

  TestSequence seq(sc.netlist.num_inputs());
  for (std::size_t k = 0; k < n; ++k) {
    auto vec = random_vector(sc, rng);
    vec[sc.scan_sel_index()] = V3::One;
    // The value fed at shift k ends up in cell n-1-k after n shifts, so the
    // state is fed in reverse order (the paper's Section-2 example).
    vec[chain.scan_inp_index] = state[n - 1 - k];
    seq.append(std::move(vec));
  }
  return seq;
}

TestSequence make_scan_load_all(const ScanCircuit& sc, const State& state, Rng& rng) {
  if (state.size() != sc.netlist.num_dffs())
    throw std::invalid_argument("make_scan_load_all: state width != DFF count");
  const std::size_t total = sc.max_chain_length();

  TestSequence seq(sc.netlist.num_inputs());
  for (std::size_t t = 0; t < total; ++t) {
    auto vec = random_vector(sc, rng);
    vec[sc.scan_sel_index()] = V3::One;
    // Chains are contiguous slices of the DFF list (insert_scan invariant).
    std::size_t base = 0;
    for (const ScanChain& chain : sc.nets.chains) {
      const std::size_t len = chain.cells.size();
      // The value fed at time t lands in cell (total-1-t) after `total`
      // shifts; earlier feeds fall off the chain end and do not matter.
      const std::size_t target = total - 1 - t;
      if (target < len) {
        const V3 v = state[base + target];
        if (v != V3::X) vec[chain.scan_inp_index] = v;
      }
      base += len;
    }
    seq.append(std::move(vec));
  }
  return seq;
}

}  // namespace uniscan
