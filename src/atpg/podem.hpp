// PODEM-style branch-and-bound test search on the time-frame model.
//
// Decision variables are primary-input assignments (any input, any frame —
// scan_sel and scan_inp included, which is how limited scan operations
// emerge without being scheduled explicitly). Implication is full forward
// pair simulation of the window; objectives are derived from fault
// activation and the D-frontier; backtrace walks to an unassigned input,
// crossing DFF boundaries into earlier frames.
//
// Two goals are supported:
//  * ObservePo   — classical detection: a fault effect at a primary output.
//  * LatchIntoFf — the paper's Section-2 hook: it is enough to latch the
//                  fault effect into a flip-flop; the driver then appends a
//                  scan flush to carry it to scan_out.
#pragma once

#include <cstddef>

#include "atpg/frame_model.hpp"
#include "sim/sequence.hpp"
#include "util/cancel.hpp"

namespace uniscan {

// ScanObserve models the conventional scan test (SI, T): the fault is
// observed either at a primary output of some frame or in the state latched
// after the last frame (which a complete scan-out would shift out). Used by
// the baseline generators together with FrameModel::set_state_assignable().
enum class PodemGoal { ObservePo, LatchIntoFf, ScanObserve };

struct PodemOptions {
  int max_backtracks = 300;
  /// Cooperative deadline/cancellation, checked every search iteration
  /// (every decision and every backtrack) but polled at kCancelPollStride
  /// via StridedPoll. Inert by default.
  CancelToken cancel;
};

struct PodemResult {
  bool success = false;
  /// True when the search stopped because `cancel` fired — the space was NOT
  /// exhausted, so callers must not conclude redundancy from this failure.
  bool aborted = false;
  TestSequence subsequence;    // frames 0..frames_used-1; unassigned inputs are X
  std::size_t frames_used = 0;
  // Valid when success && goal != ObservePo and the success came from a
  // latched effect: the DFF (Netlist::dffs() index) holding the fault effect
  // after the last vector of `subsequence`.
  std::size_t latched_dff = 0;
  bool observed_at_po = false;  // true when a PO exposed the effect directly
  // Valid when the model had state_assignable(): the scan-in assignment.
  std::vector<V3> scan_in;
  int backtracks = 0;
};

/// Run the search. The model's fault, window length and initial state must
/// be configured; its assignments are clobbered.
PodemResult run_podem(FrameModel& model, PodemGoal goal, const PodemOptions& options = {});

}  // namespace uniscan
