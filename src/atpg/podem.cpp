#include "atpg/podem.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "obs/trace.hpp"

namespace uniscan {

namespace {

// A decision assigns a primary input of some frame, or — when the model's
// frame-0 state is assignable — a scan-in cell, encoded as pi >= num_inputs
// with dff index pi - num_inputs (frame is then 0).
struct Decision {
  std::size_t frame;
  std::size_t pi;
  V3 value;
  bool flipped;
};

class PodemSearch {
 public:
  PodemSearch(FrameModel& model, PodemGoal goal, const PodemOptions& opt)
      : model_(model), nl_(model.netlist()), goal_(goal), opt_(opt) {}

  PodemResult run();

 private:
  std::optional<Decision> choose_objective();
  std::optional<Decision> backtrace(std::size_t frame, GateId net, V3 val) const;
  std::optional<Decision> bt(std::size_t frame, GateId net, V3 val) const;
  std::optional<Decision> frontier_objective(std::size_t frame, GateId g) const;
  std::optional<Decision> activation_objective() const;

  FrameModel& model_;
  const Netlist& nl_;
  PodemGoal goal_;
  PodemOptions opt_;

  // Memoized failure set for the backtrace DFS: (frame, net, val) triples
  // already proven to have no reachable unassigned input. Generation-stamped
  // so each top-level backtrace starts fresh without reallocation.
  mutable std::vector<std::uint32_t> bt_stamp_;
  mutable std::uint32_t bt_gen_ = 0;
};

V3 noncontrolling_value(GateType t) noexcept {
  switch (t) {
    case GateType::And:
    case GateType::Nand:
      return V3::One;
    case GateType::Or:
    case GateType::Nor:
      return V3::Zero;
    default:
      return V3::X;
  }
}

std::optional<Decision> PodemSearch::backtrace(std::size_t frame, GateId net, V3 val) const {
  const std::size_t slots = model_.num_frames() * nl_.num_gates() * 2;
  if (bt_stamp_.size() != slots) bt_stamp_.assign(slots, 0);
  ++bt_gen_;
  return bt(frame, net, val);
}

// Depth-first search for an unassigned primary input (or scan-in cell) that
// can move the (frame, net) good value toward `val`. Unlike classic PODEM's
// single-path backtrace this falls back to sibling inputs, which matters
// here because a path can dead-end at frame 0's fixed present state. Failed
// (frame, net, val) triples are memoized within one top-level call.
std::optional<Decision> PodemSearch::bt(std::size_t frame, GateId net, V3 val) const {
  const std::size_t key = (frame * nl_.num_gates() + net) * 2 + (val == V3::One ? 1 : 0);
  if (bt_stamp_[key] == bt_gen_) return std::nullopt;  // known dead end
  const auto fail = [&]() -> std::optional<Decision> {
    bt_stamp_[key] = bt_gen_;
    return std::nullopt;
  };

  const Gate& gate = nl_.gate(net);
  switch (gate.type) {
    case GateType::Input: {
      for (std::size_t i = 0; i < nl_.num_inputs(); ++i) {
        if (nl_.inputs()[i] == net) {
          if (model_.assignment(frame, i) != V3::X) return fail();  // already fixed
          return Decision{frame, i, val, false};
        }
      }
      return fail();
    }
    case GateType::Dff: {
      if (frame == 0) {
        if (!model_.state_assignable()) return fail();  // fixed PS
        const auto j = nl_.dff_index(net);
        if (!j || model_.state_assignment(*j) != V3::X) return fail();
        return Decision{0, nl_.num_inputs() + *j, val, false};
      }
      if (auto d = bt(frame - 1, gate.fanins[0], val)) return d;
      return fail();
    }
    case GateType::Buf: {
      if (auto d = bt(frame, gate.fanins[0], val)) return d;
      return fail();
    }
    case GateType::Not: {
      if (auto d = bt(frame, gate.fanins[0], v3_not(val))) return d;
      return fail();
    }
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor: {
      const bool invert = gate.type == GateType::Nand || gate.type == GateType::Nor;
      const bool and_like = gate.type == GateType::And || gate.type == GateType::Nand;
      const V3 need = invert ? v3_not(val) : val;  // pre-inversion target
      const bool controlling = and_like ? (need == V3::Zero) : (need == V3::One);
      // Candidate X inputs sorted by cost: controlling objectives take the
      // cheapest path first; non-controlling take the hardest first so
      // conflicts surface early. The DFS falls back to the others.
      std::vector<std::pair<std::uint32_t, GateId>> cands;
      for (GateId in : gate.fanins) {
        if (model_.value(frame, in).good != V3::X) continue;
        cands.emplace_back(need == V3::Zero ? model_.cost0(in) : model_.cost1(in), in);
      }
      std::sort(cands.begin(), cands.end());
      if (!controlling) std::reverse(cands.begin(), cands.end());
      for (const auto& [cost, in] : cands)
        if (auto d = bt(frame, in, need)) return d;
      return fail();
    }
    case GateType::Xor:
    case GateType::Xnor: {
      V3 target = gate.type == GateType::Xnor ? v3_not(val) : val;  // parity target
      std::vector<GateId> xs;
      for (GateId in : gate.fanins) {
        const V3 v = model_.value(frame, in).good;
        if (v == V3::X) xs.push_back(in);
        else if (v == V3::One) target = v3_not(target);
      }
      for (GateId in : xs) {
        const V3 first = xs.size() == 1
                             ? target
                             : (model_.cost0(in) <= model_.cost1(in) ? V3::Zero : V3::One);
        if (auto d = bt(frame, in, first)) return d;
        if (xs.size() > 1)
          if (auto d = bt(frame, in, v3_not(first))) return d;
      }
      return fail();
    }
    case GateType::Mux2: {
      const GateId d0 = gate.fanins[0];
      const GateId d1 = gate.fanins[1];
      const GateId sel = gate.fanins[2];
      const V3 sv = model_.value(frame, sel).good;
      if (sv == V3::Zero) {
        if (auto d = bt(frame, d0, val)) return d;
        return fail();
      }
      if (sv == V3::One) {
        if (auto d = bt(frame, d1, val)) return d;
        return fail();
      }
      // Select is free: try the cheaper side first, fall back to the other,
      // and as a last resort set a data input directly (useful when both
      // data values agree through the optimistic X-mux rule).
      const auto side_cost = [&](GateId data, bool sel_one) {
        const std::uint32_t cs = sel_one ? model_.cost1(sel) : model_.cost0(sel);
        const std::uint32_t cd = (val == V3::Zero) ? model_.cost0(data) : model_.cost1(data);
        return cs + cd;
      };
      const bool one_first = side_cost(d1, true) < side_cost(d0, false);
      for (bool choose_one : {one_first, !one_first})
        if (auto d = bt(frame, sel, choose_one ? V3::One : V3::Zero)) return d;
      for (GateId data : {d0, d1})
        if (model_.value(frame, data).good == V3::X)
          if (auto d = bt(frame, data, val)) return d;
      return fail();
    }
    case GateType::Const0:
    case GateType::Const1:
      return fail();
  }
  return fail();
}

std::optional<Decision> PodemSearch::frontier_objective(std::size_t frame, GateId g) const {
  const Gate& gate = nl_.gate(g);
  switch (gate.type) {
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor: {
      const V3 nc = noncontrolling_value(gate.type);
      for (std::size_t p = 0; p < gate.fanins.size(); ++p) {
        if (model_.pin_value(frame, g, p).good != V3::X) continue;
        if (auto d = backtrace(frame, gate.fanins[p], nc)) return d;
      }
      return std::nullopt;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      // Any X side input just needs a known value.
      for (std::size_t p = 0; p < gate.fanins.size(); ++p) {
        const V5 v = model_.pin_value(frame, g, p);
        if (is_d_or_dbar(v) || v.good != V3::X) continue;
        const GateId in = gate.fanins[p];
        const V3 cheap = model_.cost0(in) <= model_.cost1(in) ? V3::Zero : V3::One;
        if (auto d = backtrace(frame, in, cheap)) return d;
        if (auto d = backtrace(frame, in, v3_not(cheap))) return d;
      }
      return std::nullopt;
    }
    case GateType::Mux2: {
      const V5 vd0 = model_.pin_value(frame, g, 0);
      const V5 vd1 = model_.pin_value(frame, g, 1);
      const V5 vsel = model_.pin_value(frame, g, 2);
      if (is_d_or_dbar(vd0) && vsel.good == V3::X)
        if (auto d = backtrace(frame, gate.fanins[2], V3::Zero)) return d;
      if (is_d_or_dbar(vd1) && vsel.good == V3::X)
        if (auto d = backtrace(frame, gate.fanins[2], V3::One)) return d;
      if (is_d_or_dbar(vsel)) {
        // Propagating a D on select needs the data inputs to differ.
        if (vd0.good == V3::X && vd1.good != V3::X)
          if (auto d = backtrace(frame, gate.fanins[0], v3_not(vd1.good))) return d;
        if (vd1.good == V3::X && vd0.good != V3::X)
          if (auto d = backtrace(frame, gate.fanins[1], v3_not(vd0.good))) return d;
        if (vd0.good == V3::X && vd1.good == V3::X)
          if (auto d = backtrace(frame, gate.fanins[0], V3::Zero)) return d;
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;  // single-input gates propagate without help
  }
}

std::optional<Decision> PodemSearch::activation_objective() const {
  // Make the faulted line's good value the opposite of the stuck value in
  // some frame where it is still X. For a transition fault the same target
  // is the transition's final value; additionally the PREVIOUS frame must
  // present the initial value (the launch), which is targeted once the final
  // value is in place.
  const Fault& f = model_.fault();
  const GateId line =
      f.pin == kStemPin ? f.gate : nl_.gate(f.gate).fanins[static_cast<std::size_t>(f.pin)];
  const V3 want = f.stuck_one ? V3::Zero : V3::One;
  for (std::size_t frame = 0; frame < model_.num_frames(); ++frame) {
    if (model_.value(frame, line).good == V3::X) {
      if (auto d = backtrace(frame, line, want)) return d;
    } else if (model_.is_transition() && frame > 0 &&
               model_.value(frame, line).good == want &&
               model_.value(frame - 1, line).good == V3::X) {
      if (auto d = backtrace(frame - 1, line, v3_not(want))) return d;
    }
  }
  return std::nullopt;
}

std::optional<Decision> PodemSearch::choose_objective() {
  if (model_.any_effect()) {
    for (const auto& [frame, g] : model_.d_frontier())
      if (auto d = frontier_objective(frame, g)) return d;
    // The existing effects are blocked; try to (re-)activate the fault in a
    // later frame instead of giving up — a fresh effect there may have a
    // free path to an output.
    return activation_objective();
  }
  return activation_objective();
}

PodemResult PodemSearch::run() {
  PodemResult result;
  model_.clear_assignments();
  model_.simulate();

  std::vector<Decision> stack;
  int backtracks = 0;
  StridedPoll cancel(opt_.cancel);

  const auto finish = [&](std::size_t frames_used, bool at_po,
                          std::size_t latched_dff) -> PodemResult {
    result.success = true;
    result.frames_used = frames_used;
    result.subsequence = model_.extract_sequence(frames_used);
    result.observed_at_po = at_po;
    result.latched_dff = latched_dff;
    if (model_.state_assignable()) result.scan_in = model_.extract_state_assignment();
    result.backtracks = backtracks;
    return result;
  };

  for (;;) {
    // Cooperative cancellation, polled at stride (util/cancel.hpp): each
    // iteration either decides, backtracks, or finishes, and small-window
    // simulations are cheap enough that a per-iteration clock read showed up
    // in profiles. An aborted search is a plain failure, but flagged so it
    // is never read as exhaustion.
    if (cancel.poll()) {
      result.aborted = true;
      result.backtracks = backtracks;
      return result;
    }

    // Success checks.
    const auto po = model_.po_detection_frame();
    const auto latch = model_.first_latched_effect();
    switch (goal_) {
      case PodemGoal::ObservePo:
        if (po) return finish(*po + 1, true, 0);
        break;
      case PodemGoal::LatchIntoFf:
        if (latch) return finish(latch->frame + 1, false, latch->dff_index);
        break;
      case PodemGoal::ScanObserve:
        // Prefer whichever observation needs the shorter subsequence.
        if (po && (!latch || *po <= latch->frame)) return finish(*po + 1, true, 0);
        if (latch) return finish(latch->frame + 1, false, latch->dff_index);
        break;
    }

    if (auto obj = choose_objective()) {
      if (obj->pi >= nl_.num_inputs())
        model_.assign_state(obj->pi - nl_.num_inputs(), obj->value);
      else
        model_.assign(obj->frame, obj->pi, obj->value);
      stack.push_back(*obj);
      model_.simulate();
      continue;
    }

    // Dead end: backtrack.
    const auto unassign = [&](const Decision& d) {
      if (d.pi >= nl_.num_inputs())
        model_.assign_state(d.pi - nl_.num_inputs(), V3::X);
      else
        model_.assign(d.frame, d.pi, V3::X);
    };
    while (!stack.empty() && stack.back().flipped) {
      unassign(stack.back());
      stack.pop_back();
    }
    if (stack.empty() || ++backtracks > opt_.max_backtracks) {
      result.backtracks = backtracks;
      return result;  // failure
    }
    Decision& top = stack.back();
    top.value = v3_not(top.value);
    top.flipped = true;
    if (top.pi >= nl_.num_inputs())
      model_.assign_state(top.pi - nl_.num_inputs(), top.value);
    else
      model_.assign(top.frame, top.pi, top.value);
    model_.simulate();
  }
}

}  // namespace

PodemResult run_podem(FrameModel& model, PodemGoal goal, const PodemOptions& options) {
  const obs::TraceSpan span("podem");
  return PodemSearch(model, goal, options).run();
}

}  // namespace uniscan
