#include "atpg/transition_atpg.hpp"

#include <algorithm>

#include "atpg/frame_model.hpp"
#include "atpg/podem.hpp"
#include "atpg/scan_knowledge.hpp"
#include "obs/counters.hpp"
#include "sat/sat_engine.hpp"
#include "sim/transition_sim.hpp"
#include "util/cancel.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace uniscan {

namespace {

TestSequence random_chunk(const ScanCircuit& sc, std::size_t len, double scan_sel_prob,
                          Rng& rng) {
  TestSequence seq(sc.netlist.num_inputs());
  for (std::size_t t = 0; t < len; ++t) {
    std::vector<V3> vec(sc.netlist.num_inputs());
    for (auto& v : vec) v = rng.next_bool() ? V3::One : V3::Zero;
    vec[sc.scan_sel_index()] = rng.next_double() < scan_sel_prob ? V3::One : V3::Zero;
    seq.append(std::move(vec));
  }
  return seq;
}

}  // namespace

TransitionAtpgResult generate_transition_tests(const ScanCircuit& sc,
                                               const AtpgOptions& options) {
  return generate_transition_tests(sc, enumerate_transition_faults(sc.netlist), options);
}

TransitionAtpgResult generate_transition_tests(const ScanCircuit& sc,
                                               const std::vector<TransitionFault>& faults,
                                               const AtpgOptions& options) {
  const Netlist& nl = sc.netlist;
  Rng rng(options.seed ^ 0x7261746eULL);
  const obs::CounterScope evals_scope;

  TransitionAtpgResult result;
  result.num_faults = faults.size();
  result.sequence = TestSequence(nl.num_inputs());

  TransitionSimSession session(nl, faults);
  std::vector<bool> via_scan_knowledge(faults.size(), false);

  // Strided deadline polling, as in generate_tests (see util/cancel.hpp).
  StridedPoll cancel(options.cancel);

  // ---- random bootstrap ------------------------------------------------------
  std::size_t useless = 0;
  for (std::size_t chunk_no = 0;
       chunk_no < options.max_random_chunks && useless < options.random_give_up_after &&
       session.num_detected() < faults.size();
       ++chunk_no) {
    if (cancel.poll()) {
      result.timed_out = true;
      break;
    }
    TestSequence chunk =
        random_chunk(sc, options.random_chunk_len, options.random_scan_sel_prob, rng);
    const auto snap = session.snapshot();
    if (session.advance(chunk) == 0) {
      session.restore(snap);
      ++useless;
      continue;
    }
    useless = 0;
    result.sequence.append_sequence(chunk);
    ++result.stats.random_chunks_accepted;
  }

  const auto try_commit = [&](std::size_t fi, TestSequence sub) {
    sub.random_fill(rng);
    const auto snap = session.snapshot();
    session.advance(sub);
    if (!session.is_detected(fi)) {
      session.restore(snap);
      return false;
    }
    result.sequence.append_sequence(sub);
    return true;
  };

  // ---- deterministic phase ----------------------------------------------------
  State good, faulty;
  V3 prev_driven = V3::X;
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (cancel.poll()) {
      result.timed_out = true;
      break;
    }
    if (session.is_detected(fi)) continue;
    session.pair_state(fi, good, faulty, prev_driven);

    bool done = false;
    for (std::size_t w : options.window_schedule) {
      FrameModel model(session.compiled(), faults[fi], w + 1);  // +1 frame for the launch
      model.set_initial_state(good, faulty);
      model.set_initial_prev_driven(prev_driven);
      ++result.stats.podem_calls;
      PodemResult pr =
          run_podem(model, PodemGoal::ObservePo, {options.max_backtracks, options.cancel});
      if (!pr.success) continue;
      if (try_commit(fi, pr.subsequence)) {
        ++result.stats.podem_successes;
        done = true;
        break;
      }
      UNISCAN_LOG(Warn) << "transition PODEM success unconfirmed for fault " << fi;
    }
    if (done || !options.use_scan_knowledge) continue;

    // Scan-load justification assist.
    {
      FrameModel model(session.compiled(), faults[fi], options.justify_window + 1);
      model.set_state_assignable(true);
      ++result.stats.podem_calls;
      PodemResult pr =
          run_podem(model, PodemGoal::ScanObserve, {options.max_backtracks, options.cancel});
      if (pr.success) {
        State target(pr.scan_in.begin(), pr.scan_in.end());
        TestSequence sub = make_scan_load_all(sc, target, rng);
        sub.append_sequence(pr.subsequence);
        if (!pr.observed_at_po) {
          const ChainPosition pos = chain_position(sc, pr.latched_dff);
          sub.append_sequence(make_flush_sequence(
              sc, pos.chain, flush_length(sc.nets.chains[pos.chain], pos.cell), rng));
        }
        if (try_commit(fi, std::move(sub))) {
          ++result.stats.scan_load_assisted;
          if (!pr.observed_at_po) via_scan_knowledge[fi] = true;
          continue;
        }
      }
    }

    // Latch-and-flush fallback from the current state.
    ++result.stats.fallback_attempts;
    FrameModel model(session.compiled(), faults[fi], options.fallback_window + 1);
    model.set_initial_state(good, faulty);
    model.set_initial_prev_driven(prev_driven);
    PodemResult pr =
        run_podem(model, PodemGoal::LatchIntoFf, {options.max_backtracks, options.cancel});
    if (!pr.success) continue;
    const ChainPosition pos = chain_position(sc, pr.latched_dff);
    TestSequence sub = pr.subsequence;
    sub.append_sequence(make_flush_sequence(
        sc, pos.chain, flush_length(sc.nets.chains[pos.chain], pos.cell), rng));
    if (try_commit(fi, std::move(sub))) via_scan_knowledge[fi] = true;
  }

  // ---- SAT second chance (DESIGN.md §5l) --------------------------------------
  // The transition generator has no exhaustive PODEM proof pass, so every
  // undetected fault is still open here; the engine either finds a test
  // (committed through the session like any other candidate) or proves the
  // depth-bounded miter UNSAT. The extra frame is the launch cycle, matching
  // the FrameModel windows above.
  if (options.sat_mode != SatMode::Off && !result.timed_out) {
    const sat::SatEngine engine(session.compiled());
    sat::SatEngineOptions sopt;
    sopt.frames = options.sat_frames + 1;
    sopt.state_assignable = true;
    sopt.tf_prev_assignable = true;  // soundness: quantify the launch history
    sopt.max_conflicts = options.sat_max_conflicts;
    sopt.cancel = options.cancel;
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (cancel.poll()) {
        result.timed_out = true;
        break;
      }
      if (session.is_detected(fi)) continue;
      ++result.sat.attempts;
      const sat::SatResult sr = engine.prove(faults[fi], sopt);
      if (sr.verdict == sat::SatVerdict::RedundantProved) {
        ++result.sat.proved_redundant;
        ++result.proved_redundant;
        continue;
      }
      if (sr.verdict == sat::SatVerdict::Aborted) {
        ++result.sat.aborted;
        continue;
      }
      State target(sr.scan_in.begin(), sr.scan_in.end());
      TestSequence sub = make_scan_load_all(sc, target, rng);
      sub.append_sequence(sr.subsequence);
      if (!sr.observed_at_po) {
        const ChainPosition pos = chain_position(sc, *sr.latched_dff);
        sub.append_sequence(make_flush_sequence(
            sc, pos.chain, flush_length(sc.nets.chains[pos.chain], pos.cell), rng));
      }
      if (try_commit(fi, std::move(sub))) {
        ++result.sat.detected;
        if (!sr.observed_at_po) via_scan_knowledge[fi] = true;
      } else {
        // The SAT model chose its own launch history; the committed scan
        // load pins whatever its last shift drives, so a failed replay is a
        // legitimate miss here, not only an encoder bug. No claim, count it.
        ++result.sat.mismatches;
      }
    }
  }

  // ---- final verification ------------------------------------------------------
  TransitionFaultSimulator verifier(nl);
  result.detection = verifier.run(result.sequence, faults);
  result.gate_evals = evals_scope.delta(obs::Counter::GateEvals);
  for (std::size_t i = 0; i < result.detection.size(); ++i) {
    if (result.detection[i].detected) {
      ++result.detected;
      if (via_scan_knowledge[i]) ++result.detected_by_scan_knowledge;
    }
  }
  if (result.detected != session.num_detected())
    UNISCAN_LOG(Warn) << "transition session/verifier mismatch: " << session.num_detected()
                      << " vs " << result.detected;
  return result;
}

}  // namespace uniscan
