// Unified test generation for TRANSITION faults (at-speed extension).
//
// The unified view is a natural fit for at-speed testing: every pair of
// consecutive vectors in the sequence is a launch/capture pair applied at
// speed — including scan-shift cycles, so transitions can be launched by the
// last shift of a (limited) scan operation exactly as the enhanced-scan and
// LOS/LOC schemes do, without any special-casing. The driver mirrors the
// Section-2 stuck-at generator: random bootstrap, per-fault PODEM on the
// time-frame window with the transition launch condition, scan-load
// justification, and the latch-and-flush fallback.
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/seq_atpg.hpp"
#include "fault/transition_fault.hpp"
#include "scan/scan_insertion.hpp"
#include "sim/fault_sim.hpp"
#include "sim/sequence.hpp"

namespace uniscan {

struct TransitionAtpgResult {
  TestSequence sequence;
  std::size_t num_faults = 0;
  std::size_t detected = 0;
  std::size_t detected_by_scan_knowledge = 0;
  /// Undetected faults whose miter the SAT second chance proved UNSAT up to
  /// its unrolled depth (sat_frames + 1 launch frame, X launch history) — a
  /// depth-bounded claim for transition faults, see sat/sat_engine.hpp.
  std::size_t proved_redundant = 0;
  /// True when AtpgOptions::cancel fired: the sequence is the verified
  /// best-so-far prefix and the faults not reached remain undetected.
  bool timed_out = false;
  std::vector<DetectionRecord> detection;
  AtpgStats stats;
  /// Gate-word evaluations spent on fault simulation (session + final
  /// verification) — the bench binaries' work metric.
  std::uint64_t gate_evals = 0;
  /// What the SAT second-chance phase contributed (all zero when
  /// `AtpgOptions::sat_mode == SatMode::Off`).
  SatSummary sat;

  double fault_coverage() const {
    return num_faults == 0
               ? 0.0
               : 100.0 * static_cast<double>(detected) / static_cast<double>(num_faults);
  }
};

/// Options are shared with the stuck-at generator (AtpgOptions); the window
/// schedule applies unchanged, with every window extended by one frame for
/// the launch cycle.
TransitionAtpgResult generate_transition_tests(const ScanCircuit& sc,
                                               const std::vector<TransitionFault>& faults,
                                               const AtpgOptions& options = {});
TransitionAtpgResult generate_transition_tests(const ScanCircuit& sc,
                                               const AtpgOptions& options = {});

}  // namespace uniscan
