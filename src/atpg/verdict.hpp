// The SAT second-chance verdict taxonomy shared by the generators, the
// redundancy identifier, and the table binaries (DESIGN.md §5l).
//
// Every per-fault outcome is one of three verdicts:
//
//  * Detected          — a test exists and was REPLAYED through the fault
//                        simulator (never trusted from a solver model alone),
//  * Redundant(proved) — an UNSAT result of the full miter up to the
//                        unrolled depth; for stuck-at faults at window 1
//                        this is conventional-scan untestability,
//  * Aborted           — budgets or cancellation cut the search short; an
//                        aborted search never claims Redundant (PR 4).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace uniscan {

enum class SatMode : std::uint8_t {
  Off,           // no SAT calls anywhere; byte-identical to the pre-SAT pipeline
  SecondChance,  // retry PODEM-aborted faults with the SAT engine
  CrossCheck,    // SecondChance plus re-proving PODEM's own Redundant claims
};

constexpr std::string_view sat_mode_name(SatMode m) noexcept {
  switch (m) {
    case SatMode::Off: return "off";
    case SatMode::SecondChance: return "second-chance";
    case SatMode::CrossCheck: return "cross-check";
  }
  return "off";
}

constexpr std::optional<SatMode> parse_sat_mode(std::string_view s) noexcept {
  if (s == "off") return SatMode::Off;
  if (s == "second-chance") return SatMode::SecondChance;
  if (s == "cross-check") return SatMode::CrossCheck;
  return std::nullopt;
}

/// What the SAT phase contributed, reported on the ATPG / redundancy results
/// and in the bench-JSON `sat` block.
struct SatSummary {
  std::uint64_t attempts = 0;         // faults handed to the engine
  std::uint64_t detected = 0;         // SAT models that replayed to a detection
  std::uint64_t proved_redundant = 0; // UNSAT certificates up to the depth
  std::uint64_t aborted = 0;          // engine budget/cancel exhausted
  std::uint64_t cross_checks = 0;     // PODEM Redundant claims re-proved
  std::uint64_t mismatches = 0;       // oracle disagreements (model failed to
                                      // replay, or PODEM-Redundant proved SAT)
  bool any() const noexcept { return attempts != 0 || cross_checks != 0; }

  /// Accumulate another summary (suite totals in the table binaries).
  void add(const SatSummary& o) noexcept {
    attempts += o.attempts;
    detected += o.detected;
    proved_redundant += o.proved_redundant;
    aborted += o.aborted;
    cross_checks += o.cross_checks;
    mismatches += o.mismatches;
  }
};

}  // namespace uniscan
