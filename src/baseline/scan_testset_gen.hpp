// Baseline scan ATPG: the "second approach" of the paper's Section 1 and
// the stand-in for the comparison procedure [26] (see DESIGN.md §3).
//
// Tests have the conventional form (SI, T): a COMPLETE scan-in, a short
// functional primary-input sequence T (1..max_seq_len vectors, chosen
// minimal), and a complete scan-out overlapped with the next scan-in.
// Per-fault search is PODEM on C_scan with scan_sel pinned to 0, the frame-0
// state assignable (the scan-in), and the ScanObserve goal (effects latched
// at the end of T are scanned out). Detection bookkeeping simulates the
// exact translated sequence of the growing test set, so chain/mux faults
// detected incidentally by the shift operations are credited too.
//
// With max_seq_len = 1 this degenerates to the "first approach"
// (combinational-style scan ATPG); see comb_atpg.hpp.
#pragma once

#include <cstdint>

#include "scan/scan_insertion.hpp"
#include "scan/scan_test.hpp"
#include "fault/fault_list.hpp"
#include "sim/fault_sim.hpp"
#include "sim/sequence.hpp"
#include "util/cancel.hpp"

namespace uniscan {

struct BaselineOptions {
  std::uint64_t seed = 11;
  std::size_t max_seq_len = 4;   // max |T_i| (1 = first approach)
  int max_backtracks = 120;
  bool compact_test_set = true;  // greedy test-omission pass (the [26] flavour)
  /// Cooperative deadline (DESIGN.md §5f): polled per fault and inside the
  /// PODEM searches. On expiry the tests committed so far form the result
  /// and `timed_out` is set; each one is already verified by the session.
  CancelToken cancel;
};

struct BaselineResult {
  ScanTestSet test_set;
  TestSequence translated;  // exact unified sequence the bookkeeping simulated
  std::size_t num_faults = 0;
  std::size_t detected = 0;
  /// True when BaselineOptions::cancel fired before all faults were tried.
  bool timed_out = false;
  std::vector<DetectionRecord> detection;  // on the translated sequence

  /// Clock cycles with complete scan operations == translated.length().
  std::size_t application_cycles() const { return test_set.application_cycles(); }
  double fault_coverage() const {
    return num_faults == 0 ? 0.0
                           : 100.0 * static_cast<double>(detected) / static_cast<double>(num_faults);
  }
};

/// Generate a complete-scan baseline test set for the faults of C_scan.
BaselineResult generate_baseline_tests(const ScanCircuit& sc, const FaultList& faults,
                                       const BaselineOptions& options = {});
BaselineResult generate_baseline_tests(const ScanCircuit& sc,
                                       const BaselineOptions& options = {});

}  // namespace uniscan
