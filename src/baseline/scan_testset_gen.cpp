#include "baseline/scan_testset_gen.hpp"

#include <stdexcept>

#include "atpg/frame_model.hpp"
#include "atpg/podem.hpp"
#include "sim/fault_sim_session.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace uniscan {

namespace {

/// Fully specified translated fragment of one test: max-chain-length load
/// vectors (every chain's scan_inp feeds its slice of scan_in reversed)
/// followed by the functional vectors with scan_sel = 0. Original inputs
/// during loads are random. scan_in is indexed like Netlist::dffs().
TestSequence test_fragment(const ScanCircuit& sc, const ScanTest& test, Rng& rng) {
  const std::size_t shifts = sc.max_chain_length();
  const std::size_t npi = sc.netlist.num_inputs();
  const std::size_t num_chains = sc.nets.chains.size();
  const std::size_t npi_orig = npi - 1 - num_chains;

  TestSequence seq(npi);
  for (std::size_t t = 0; t < shifts; ++t) {
    std::vector<V3> vec(npi);
    for (auto& v : vec) v = rng.next_bool() ? V3::One : V3::Zero;
    vec[sc.scan_sel_index()] = V3::One;
    std::size_t base = 0;
    for (const ScanChain& chain : sc.nets.chains) {
      const std::size_t len = chain.cells.size();
      const std::size_t target = shifts - 1 - t;
      if (target < len) {
        const V3 si = test.scan_in[base + target];
        if (si != V3::X) vec[chain.scan_inp_index] = si;
      }
      base += len;
    }
    seq.append(std::move(vec));
  }
  for (const auto& v : test.vectors) {
    std::vector<V3> vec(npi);
    for (auto& x : vec) x = rng.next_bool() ? V3::One : V3::Zero;
    for (std::size_t i = 0; i < npi_orig; ++i)
      if (v[i] != V3::X) vec[i] = v[i];
    vec[sc.scan_sel_index()] = V3::Zero;
    seq.append(std::move(vec));
  }
  return seq;
}

TestSequence unload_fragment(const ScanCircuit& sc, Rng& rng) {
  const std::size_t shifts = sc.max_chain_length();
  const std::size_t npi = sc.netlist.num_inputs();
  TestSequence seq(npi);
  for (std::size_t k = 0; k < shifts; ++k) {
    std::vector<V3> vec(npi);
    for (auto& v : vec) v = rng.next_bool() ? V3::One : V3::Zero;
    vec[sc.scan_sel_index()] = V3::One;
    seq.append(std::move(vec));
  }
  return seq;
}

TestSequence concat_fragments(const std::vector<TestSequence>& fragments,
                              const std::vector<char>& keep, const TestSequence& unload,
                              std::size_t npi) {
  TestSequence seq(npi);
  for (std::size_t i = 0; i < fragments.size(); ++i)
    if (keep[i]) seq.append_sequence(fragments[i]);
  seq.append_sequence(unload);
  return seq;
}

}  // namespace

BaselineResult generate_baseline_tests(const ScanCircuit& sc, const BaselineOptions& options) {
  const FaultList faults = FaultList::collapsed(sc.netlist);
  return generate_baseline_tests(sc, faults, options);
}

BaselineResult generate_baseline_tests(const ScanCircuit& sc, const FaultList& faults,
                                       const BaselineOptions& options) {
  const Netlist& nl = sc.netlist;
  const std::size_t n = sc.max_chain_length();
  const std::size_t npi_orig = nl.num_inputs() - 1 - sc.nets.chains.size();
  Rng rng(options.seed);

  BaselineResult result;
  result.num_faults = faults.size();
  result.test_set.num_original_inputs = npi_orig;
  result.test_set.chain_length = n;

  FaultSimSession session(nl, faults.faults());
  std::vector<ScanTest> tests;
  std::vector<TestSequence> fragments;

  const auto try_commit = [&](ScanTest test, std::size_t target_fault) -> bool {
    TestSequence frag = test_fragment(sc, test, rng);
    const auto snap0 = session.snapshot();
    session.advance(frag);
    const auto snap1 = session.snapshot();
    // A latched effect is only observable once shifted out; peek with a
    // tentative unload, then roll back to just-after-the-fragment.
    Rng peek_rng(rng.next());
    session.advance(unload_fragment(sc, peek_rng));
    const bool ok = session.is_detected(target_fault);
    session.restore(ok ? snap1 : snap0);
    if (ok) {
      tests.push_back(std::move(test));
      fragments.push_back(std::move(frag));
    }
    return ok;
  };

  // Deterministic per-fault generation (deadline polled at stride — see
  // util/cancel.hpp).
  StridedPoll cancel(options.cancel);
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (cancel.poll()) {
      result.timed_out = true;
      break;
    }
    if (session.is_detected(fi)) continue;
    for (std::size_t w = 1; w <= options.max_seq_len; ++w) {
      FrameModel model(session.compiled(), faults[fi], w);
      model.set_state_assignable(true);
      model.pin_input(sc.scan_sel_index(), V3::Zero);
      for (const ScanChain& chain : sc.nets.chains)
        model.pin_input(chain.scan_inp_index, V3::Zero);
      PodemResult pr =
          run_podem(model, PodemGoal::ScanObserve, {options.max_backtracks, options.cancel});
      if (!pr.success) continue;

      ScanTest test;
      test.scan_in = pr.scan_in;
      for (std::size_t t = 0; t < pr.subsequence.length(); ++t) {
        std::vector<V3> v(npi_orig);
        for (std::size_t i = 0; i < npi_orig; ++i) v[i] = pr.subsequence.at(t, i);
        test.vectors.push_back(std::move(v));
      }
      if (try_commit(std::move(test), fi)) break;
    }
  }

  // Trailing scan-out.
  TestSequence unload = unload_fragment(sc, rng);
  session.advance(unload);

  // Greedy test-omission compaction: drop whole tests whose removal keeps
  // every currently detected fault detected (checked on the exact translated
  // sequence).
  std::vector<char> keep(tests.size(), 1);
  FaultSimulator sim(nl);
  {
    TestSequence full = concat_fragments(fragments, keep, unload, nl.num_inputs());
    std::vector<Fault> must;
    const auto det = sim.run(full, faults.faults());
    for (std::size_t i = 0; i < det.size(); ++i)
      if (det[i].detected) must.push_back(faults[i]);
    if (options.compact_test_set) {
      for (std::size_t i = tests.size(); i-- > 0;) {
        // Every committed drop already passed detects_all, so stopping
        // mid-pass leaves a consistent (just less compacted) test set.
        if (cancel.poll()) {
          result.timed_out = true;
          break;
        }
        keep[i] = 0;
        if (!sim.detects_all(concat_fragments(fragments, keep, unload, nl.num_inputs()), must))
          keep[i] = 1;
      }
    }
  }

  for (std::size_t i = 0; i < tests.size(); ++i)
    if (keep[i]) result.test_set.tests.push_back(tests[i]);
  result.translated = concat_fragments(fragments, keep, unload, nl.num_inputs());
  result.detection = sim.run(result.translated, faults.faults());
  for (const auto& d : result.detection)
    if (d.detected) ++result.detected;
  return result;
}

}  // namespace uniscan
