#include "baseline/comb_atpg.hpp"

namespace uniscan {

BaselineResult generate_comb_scan_tests(const ScanCircuit& sc, const FaultList& faults,
                                        const CombAtpgOptions& options) {
  BaselineOptions base;
  base.seed = options.seed;
  base.max_seq_len = 1;
  base.max_backtracks = options.max_backtracks;
  base.compact_test_set = options.compact_test_set;
  return generate_baseline_tests(sc, faults, base);
}

BaselineResult generate_comb_scan_tests(const ScanCircuit& sc, const CombAtpgOptions& options) {
  const FaultList faults = FaultList::collapsed(sc.netlist);
  return generate_comb_scan_tests(sc, faults, options);
}

}  // namespace uniscan
