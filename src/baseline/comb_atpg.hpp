// Baseline scan ATPG, "first approach" (paper Section 1, refs [1]-[5]):
// combinational-style test generation where the present state is treated as
// inputs and the next state as outputs — i.e. every test is a complete
// scan-in, ONE primary input vector, and a complete scan-out.
//
// Implemented as the max_seq_len = 1 specialization of the second-approach
// generator; kept as its own entry point because the two approaches are
// distinct baselines in the paper.
#pragma once

#include "baseline/scan_testset_gen.hpp"

namespace uniscan {

struct CombAtpgOptions {
  std::uint64_t seed = 13;
  int max_backtracks = 120;
  bool compact_test_set = true;
};

BaselineResult generate_comb_scan_tests(const ScanCircuit& sc, const FaultList& faults,
                                        const CombAtpgOptions& options = {});
BaselineResult generate_comb_scan_tests(const ScanCircuit& sc,
                                        const CombAtpgOptions& options = {});

}  // namespace uniscan
