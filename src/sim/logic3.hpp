// Three-valued logic (0, 1, X) in two representations:
//
//  * V3  — scalar, for ATPG decision making and small examples.
//  * W3T — bit-parallel, two plane words per signal with the encoding
//            0 -> (v0=1, v1=0),  1 -> (v0=0, v1=1),  X -> (v0=0, v1=0).
//          The invariant v0 & v1 == 0 holds for every well-formed value.
//
// W3T is templated over the slot word (sim/slot_word.hpp): W3 = W3T<u64>
// carries 64 machines per signal, W3T<Simd256>/W3T<Simd512> carry 256/512.
// Gate evaluation over W3T is branch-free and is the inner loop of both the
// good-machine simulator and the parallel-fault simulator; every width
// computes identical bits, wider words just carry more machines per op.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

#include "sim/slot_word.hpp"

namespace uniscan {

enum class V3 : std::uint8_t { Zero = 0, One = 1, X = 2 };

inline char to_char(V3 v) noexcept {
  switch (v) {
    case V3::Zero: return '0';
    case V3::One: return '1';
    case V3::X: return 'x';
  }
  return '?';
}

inline V3 v3_from_char(char c) noexcept {
  if (c == '0') return V3::Zero;
  if (c == '1') return V3::One;
  return V3::X;
}

inline V3 v3_not(V3 a) noexcept {
  if (a == V3::Zero) return V3::One;
  if (a == V3::One) return V3::Zero;
  return V3::X;
}

inline V3 v3_and(V3 a, V3 b) noexcept {
  if (a == V3::Zero || b == V3::Zero) return V3::Zero;
  if (a == V3::One && b == V3::One) return V3::One;
  return V3::X;
}

inline V3 v3_or(V3 a, V3 b) noexcept {
  if (a == V3::One || b == V3::One) return V3::One;
  if (a == V3::Zero && b == V3::Zero) return V3::Zero;
  return V3::X;
}

inline V3 v3_xor(V3 a, V3 b) noexcept {
  if (a == V3::X || b == V3::X) return V3::X;
  return (a == b) ? V3::Zero : V3::One;
}

/// MUX with optimistic X handling: if select is X but both data inputs agree
/// on a known value, that value is produced.
inline V3 v3_mux(V3 d0, V3 d1, V3 sel) noexcept {
  if (sel == V3::Zero) return d0;
  if (sel == V3::One) return d1;
  return (d0 == d1) ? d0 : V3::X;
}

// ---------------------------------------------------------------------------

/// WordTraits<Word>::kBits three-valued signals packed in two plane words.
template <class Word>
struct W3T {
  Word v0{};  // bit set => that slot is 0
  Word v1{};  // bit set => that slot is 1

  static constexpr unsigned kSlots = WordTraits<Word>::kBits;

  static constexpr W3T all_x() noexcept { return {WordTraits<Word>::zero(), WordTraits<Word>::zero()}; }
  static constexpr W3T all_zero() noexcept { return {WordTraits<Word>::ones(), WordTraits<Word>::zero()}; }
  static constexpr W3T all_one() noexcept { return {WordTraits<Word>::zero(), WordTraits<Word>::ones()}; }

  /// Broadcast a scalar into all slots.
  static constexpr W3T broadcast(V3 v) noexcept {
    if (v == V3::Zero) return all_zero();
    if (v == V3::One) return all_one();
    return all_x();
  }

  constexpr bool valid() const noexcept { return !w_any(v0 & v1); }

  V3 get(unsigned slot) const noexcept {
    if (w_test(v0, slot)) return V3::Zero;
    if (w_test(v1, slot)) return V3::One;
    return V3::X;
  }

  void set(unsigned slot, V3 v) noexcept {
    w_clear(v0, slot);
    w_clear(v1, slot);
    if (v == V3::Zero) w_set(v0, slot);
    else if (v == V3::One) w_set(v1, slot);
  }

  // Implicitly constexpr where the Word's operator== is (std::uint64_t);
  // the SIMD words compare via intrinsics, which never are.
  bool operator==(const W3T&) const noexcept = default;
};

/// The historical 64-slot word pair; slot-width-agnostic code is written
/// against W3T, everything good-machine-only stays on W3.
using W3 = W3T<std::uint64_t>;

template <class Word>
inline constexpr W3T<Word> w3_not(W3T<Word> a) noexcept { return {a.v1, a.v0}; }
template <class Word>
inline constexpr W3T<Word> w3_and(W3T<Word> a, W3T<Word> b) noexcept {
  return {a.v0 | b.v0, a.v1 & b.v1};
}
template <class Word>
inline constexpr W3T<Word> w3_or(W3T<Word> a, W3T<Word> b) noexcept {
  return {a.v0 & b.v0, a.v1 | b.v1};
}
template <class Word>
inline constexpr W3T<Word> w3_xor(W3T<Word> a, W3T<Word> b) noexcept {
  return {(a.v0 & b.v0) | (a.v1 & b.v1), (a.v0 & b.v1) | (a.v1 & b.v0)};
}

/// Word-parallel MUX with the same optimistic X rule as v3_mux.
template <class Word>
inline constexpr W3T<Word> w3_mux(W3T<Word> d0, W3T<Word> d1, W3T<Word> sel) noexcept {
  W3T<Word> out;
  out.v1 = (sel.v0 & d0.v1) | (sel.v1 & d1.v1) | (d0.v1 & d1.v1);
  out.v0 = (sel.v0 & d0.v0) | (sel.v1 & d1.v0) | (d0.v0 & d1.v0);
  return out;
}

/// Render slot values "0/1/x" LSB-first, for diagnostics.
template <class Word>
std::string to_string(W3T<Word> w, unsigned slots = 8) {
  std::string s;
  s.reserve(slots);
  for (unsigned i = 0; i < slots && i < W3T<Word>::kSlots; ++i) s.push_back(to_char(w.get(i)));
  return s;
}

}  // namespace uniscan
