// Three-valued logic (0, 1, X) in two representations:
//
//  * V3  — scalar, for ATPG decision making and small examples.
//  * W3  — 64-way bit-parallel, two words per signal with the encoding
//            0 -> (v0=1, v1=0),  1 -> (v0=0, v1=1),  X -> (v0=0, v1=0).
//          The invariant v0 & v1 == 0 holds for every well-formed value.
//
// Gate evaluation over W3 is branch-free and is the inner loop of both the
// good-machine simulator and the parallel-fault simulator.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

namespace uniscan {

enum class V3 : std::uint8_t { Zero = 0, One = 1, X = 2 };

inline char to_char(V3 v) noexcept {
  switch (v) {
    case V3::Zero: return '0';
    case V3::One: return '1';
    case V3::X: return 'x';
  }
  return '?';
}

inline V3 v3_from_char(char c) noexcept {
  if (c == '0') return V3::Zero;
  if (c == '1') return V3::One;
  return V3::X;
}

inline V3 v3_not(V3 a) noexcept {
  if (a == V3::Zero) return V3::One;
  if (a == V3::One) return V3::Zero;
  return V3::X;
}

inline V3 v3_and(V3 a, V3 b) noexcept {
  if (a == V3::Zero || b == V3::Zero) return V3::Zero;
  if (a == V3::One && b == V3::One) return V3::One;
  return V3::X;
}

inline V3 v3_or(V3 a, V3 b) noexcept {
  if (a == V3::One || b == V3::One) return V3::One;
  if (a == V3::Zero && b == V3::Zero) return V3::Zero;
  return V3::X;
}

inline V3 v3_xor(V3 a, V3 b) noexcept {
  if (a == V3::X || b == V3::X) return V3::X;
  return (a == b) ? V3::Zero : V3::One;
}

/// MUX with optimistic X handling: if select is X but both data inputs agree
/// on a known value, that value is produced.
inline V3 v3_mux(V3 d0, V3 d1, V3 sel) noexcept {
  if (sel == V3::Zero) return d0;
  if (sel == V3::One) return d1;
  return (d0 == d1) ? d0 : V3::X;
}

// ---------------------------------------------------------------------------

/// 64 three-valued signals packed in two machine words.
struct W3 {
  std::uint64_t v0 = 0;  // bit set => that slot is 0
  std::uint64_t v1 = 0;  // bit set => that slot is 1

  static constexpr W3 all_x() noexcept { return {0, 0}; }
  static constexpr W3 all_zero() noexcept { return {~0ULL, 0}; }
  static constexpr W3 all_one() noexcept { return {0, ~0ULL}; }

  /// Broadcast a scalar into all 64 slots.
  static constexpr W3 broadcast(V3 v) noexcept {
    if (v == V3::Zero) return all_zero();
    if (v == V3::One) return all_one();
    return all_x();
  }

  constexpr bool valid() const noexcept { return (v0 & v1) == 0; }

  V3 get(unsigned slot) const noexcept {
    const std::uint64_t m = 1ULL << slot;
    if (v0 & m) return V3::Zero;
    if (v1 & m) return V3::One;
    return V3::X;
  }

  void set(unsigned slot, V3 v) noexcept {
    const std::uint64_t m = 1ULL << slot;
    v0 &= ~m;
    v1 &= ~m;
    if (v == V3::Zero) v0 |= m;
    else if (v == V3::One) v1 |= m;
  }

  constexpr bool operator==(const W3&) const noexcept = default;
};

inline constexpr W3 w3_not(W3 a) noexcept { return {a.v1, a.v0}; }
inline constexpr W3 w3_and(W3 a, W3 b) noexcept { return {a.v0 | b.v0, a.v1 & b.v1}; }
inline constexpr W3 w3_or(W3 a, W3 b) noexcept { return {a.v0 & b.v0, a.v1 | b.v1}; }
inline constexpr W3 w3_xor(W3 a, W3 b) noexcept {
  return {(a.v0 & b.v0) | (a.v1 & b.v1), (a.v0 & b.v1) | (a.v1 & b.v0)};
}

/// Word-parallel MUX with the same optimistic X rule as v3_mux.
inline constexpr W3 w3_mux(W3 d0, W3 d1, W3 sel) noexcept {
  W3 out;
  out.v1 = (sel.v0 & d0.v1) | (sel.v1 & d1.v1) | (d0.v1 & d1.v1);
  out.v0 = (sel.v0 & d0.v0) | (sel.v1 & d1.v0) | (d0.v0 & d1.v0);
  return out;
}

/// Render slot values "0/1/x" LSB-first, for diagnostics.
std::string to_string(W3 w, unsigned slots = 8);

}  // namespace uniscan
