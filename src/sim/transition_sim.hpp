// Parallel-fault sequential simulation for transition (gross-delay) faults.
//
// Same 63-machines-per-word organisation as FaultSimulator; the injected
// value is dynamic: each faulty slot remembers the faulted line's driven
// value from the previous cycle and forces
//     STR: and(driven(t), driven(t-1))     STF: or(driven(t), driven(t-1))
// onto its slot. Slot 0 remains the good machine.
//
// Mirrors FaultSimulator's two-layer structure: BatchRunner is the
// incremental per-batch engine (checkpoint-resumable over a SequenceView,
// caller-provided scratch) built on the CompiledNetlist kernel with the same
// engine selection and observation-cone pruning; the one-shot
// run/detects_all fan batches across ThreadPool::global() with bit-identical
// results at any thread count. The launch history (previous driven value per
// fault) is part of SimBatchState::prev_driven so checkpoints capture it.
//
// Unlike the stuck-at engine's static forcing, a transition fault's forced
// value depends on prev_driven, so the event engine re-evaluates every
// injection site each frame even when its fanins are quiet — both to track
// the forced value and to refresh the launch history.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "fault/transition_fault.hpp"
#include "netlist/netlist.hpp"
#include "sim/checkpoint.hpp"
#include "sim/compiled_netlist.hpp"
#include "sim/engine.hpp"
#include "sim/fault_sim.hpp"
#include "sim/sequence.hpp"
#include "sim/sequence_view.hpp"
#include "sim/sequential_sim.hpp"

namespace uniscan {

class TransitionFaultSimulator {
 public:
  using fault_type = TransitionFault;

  explicit TransitionFaultSimulator(const Netlist& nl);

  const Netlist& netlist() const noexcept { return *nl_; }
  const CompiledNetlist& compiled() const noexcept { return compiled_; }

  /// Simulate from power-up; one detection record per fault.
  std::vector<DetectionRecord> run(const TestSequence& seq,
                                   std::span<const TransitionFault> faults,
                                   std::vector<LatchRecord>* latched = nullptr) const;
  std::vector<DetectionRecord> run(const SequenceView& view,
                                   std::span<const TransitionFault> faults,
                                   std::vector<LatchRecord>* latched = nullptr) const;

  bool detects_all(const TestSequence& seq, std::span<const TransitionFault> faults) const;
  bool detects_all(const SequenceView& view, std::span<const TransitionFault> faults) const;

  std::vector<std::size_t> detected_indices(const TestSequence& seq,
                                            std::span<const TransitionFault> faults) const;

  /// Incremental engine for one batch of up to 63 transition faults; see
  /// FaultSimulator::BatchRunner for the contract.
  class BatchRunner {
   public:
    BatchRunner(const CompiledNetlist& cnl, std::span<const TransitionFault> faults);

    std::span<const TransitionFault> faults() const noexcept { return faults_; }
    std::uint64_t slot_mask() const noexcept { return slot_mask_; }

    SimEngine engine() const noexcept { return engine_; }
    bool pruned() const noexcept { return prog_.pruned; }
    /// See FaultSimulator::BatchRunner::samples_dff.
    bool samples_dff(std::size_t j) const noexcept {
      return !prog_.pruned || prog_.dff_sampled[j] != 0;
    }

    /// All-X power-up state, X launch history, every fault slot live.
    SimBatchState initial_state() const;

    struct AdvanceOptions {
      bool early_exit = true;
      std::span<LatchRecord> latched = {};
      CheckpointStore* checkpoints = nullptr;
      std::size_t batch_index = 0;
      std::size_t capture_limit = 0;
    };

    std::uint64_t advance(SimBatchState& s, const SequenceView& view, std::vector<W3>& values,
                          const AdvanceOptions& opt) const;

   private:
    static constexpr std::int32_t kNone = -1;

    void run_frame(SimBatchState& s, const std::vector<V3>& pi, std::vector<W3>& values) const;
    void apply_stems_value(GateId g, SimBatchState& s, W3& w) const;
    void apply_stems(GateId g, SimBatchState& s, std::vector<W3>& values) const {
      apply_stems_value(g, s, values[g]);
    }
    void apply_branches(GateId g, W3* fanin_buf, std::size_t n, SimBatchState& s,
                        const std::vector<W3>& values) const;
    /// Evaluate one injection-carrying combinational gate (branch forcing on
    /// its fanins, stem forcing on its output); refreshes launch histories.
    W3 eval_forced(GateId g, SimBatchState& s, const std::vector<W3>& values) const;
    void enqueue(GateId g) const;
    void enqueue_fanouts(GateId g) const;
    std::uint64_t advance_levelized(SimBatchState& s, const SequenceView& view,
                                    std::vector<W3>& values, const AdvanceOptions& opt) const;
    std::uint64_t advance_kernel(SimBatchState& s, const SequenceView& view,
                                 std::vector<W3>& values, const AdvanceOptions& opt) const;

    const CompiledNetlist* cnl_;
    const Netlist* nl_;
    std::span<const TransitionFault> faults_;
    std::uint64_t slot_mask_ = 0;
    SimEngine engine_;
    // A line carries up to two faults (STR and STF) per batch; both stem and
    // branch faults are chained in per-gate intrusive lists.
    std::vector<std::int32_t> stem_head_;    // per gate -> fault index
    std::vector<std::int32_t> branch_head_;  // per gate -> fault index
    std::vector<std::int32_t> next_;         // per fault, shared by both chains
    // Per-fault launch value captured while evaluating the current frame,
    // committed into SimBatchState::prev_driven at frame end. Scratch: a
    // runner is used by one thread at a time.
    mutable std::vector<V3> pending_;

    // Compiled/event program (see FaultSimulator::BatchRunner). Boundary
    // gates carrying stem faults are listed once so the per-frame forcing
    // pass doesn't scan all boundaries.
    BatchProgram prog_;
    std::vector<GateId> forced_;
    std::vector<GateId> bstem_dff_;  // DFF gates with stem faults
    std::vector<GateId> bstem_pi_;   // PI gates with stem faults
    std::vector<std::uint8_t> in_plan_;
    mutable std::vector<std::vector<GateId>> buckets_;
    mutable std::vector<std::uint8_t> queued_;
  };

 private:
  const Netlist* nl_;
  CompiledNetlist compiled_;
  mutable std::vector<std::vector<W3>> scratch_;  // per pool worker
};

/// Streaming session for the transition generator (mirrors FaultSimSession:
/// one BatchRunner + SimBatchState per 63-fault batch, packed hardest-first,
/// dead batches skipped, live batches fanned across ThreadPool::global(),
/// bit-identical at every thread count).
class TransitionSimSession {
 public:
  TransitionSimSession(const Netlist& nl, std::span<const TransitionFault> faults);

  std::size_t advance(const TestSequence& chunk);
  std::size_t now() const noexcept { return now_; }
  std::size_t num_faults() const noexcept { return faults_.size(); }
  bool is_detected(std::size_t i) const { return detection_[i].detected; }
  const std::vector<DetectionRecord>& detections() const noexcept { return detection_; }
  std::size_t num_detected() const noexcept { return num_detected_; }
  /// Compiled form of the netlist, shared by all of the session's runners
  /// (and reusable by FrameModels targeting the same circuit).
  const CompiledNetlist& compiled() const noexcept { return compiled_; }
  State good_state() const;
  /// Machine-pair state plus the faulted line's previous driven value for
  /// fault `i` (needed to seed the ATPG window's launch history).
  void pair_state(std::size_t i, State& good, State& faulty, V3& prev_driven) const;

  /// See FaultSimSession::Snapshot for the live-batches-only contract.
  struct Snapshot {
    SimBatchState good;
    std::vector<std::pair<std::size_t, SimBatchState>> live_states;
    std::vector<DetectionRecord> detection;
    std::size_t num_detected;
    std::size_t now;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& s);

 private:
  const Netlist* nl_;
  CompiledNetlist compiled_;
  std::vector<TransitionFault> faults_;  // original (caller) order
  std::vector<std::size_t> order_;       // packed position -> original index
  std::vector<std::size_t> pos_;         // original index -> packed position
  std::vector<TransitionFault> packed_;  // runners reference this storage
  std::vector<TransitionFaultSimulator::BatchRunner> runners_;
  std::vector<SimBatchState> states_;
  TransitionFaultSimulator::BatchRunner good_runner_;  // empty batch
  SimBatchState good_;
  std::vector<DetectionRecord> detection_;  // original order
  std::size_t num_detected_ = 0;
  std::size_t now_ = 0;
  std::vector<std::size_t> live_idx_;
  std::vector<std::uint64_t> before_;
  std::vector<std::vector<W3>> scratch_;
};

}  // namespace uniscan
