// Parallel-fault sequential simulation for transition (gross-delay) faults.
//
// Same 63-machines-per-word organisation as FaultSimulator; the injected
// value is dynamic: each faulty slot remembers the faulted line's driven
// value from the previous cycle and forces
//     STR: and(driven(t), driven(t-1))     STF: or(driven(t), driven(t-1))
// onto its slot. Slot 0 remains the good machine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/transition_fault.hpp"
#include "netlist/netlist.hpp"
#include "sim/fault_sim.hpp"
#include "sim/sequence.hpp"
#include "sim/sequential_sim.hpp"

namespace uniscan {

class TransitionFaultSimulator {
 public:
  explicit TransitionFaultSimulator(const Netlist& nl);

  /// Simulate from power-up; one detection record per fault.
  std::vector<DetectionRecord> run(const TestSequence& seq,
                                   std::span<const TransitionFault> faults,
                                   std::vector<LatchRecord>* latched = nullptr) const;

  bool detects_all(const TestSequence& seq, std::span<const TransitionFault> faults) const;

  std::vector<std::size_t> detected_indices(const TestSequence& seq,
                                            std::span<const TransitionFault> faults) const;

 private:
  struct BatchResult {
    std::uint64_t detected_slots = 0;
    std::uint32_t detect_time[64];
  };
  BatchResult run_batch(const TestSequence& seq, std::span<const TransitionFault> faults,
                        std::span<LatchRecord> latched, bool early_exit) const;

  const Netlist* nl_;
  mutable std::vector<W3> values_;
};

/// Streaming session for the transition generator (mirrors FaultSimSession).
class TransitionSimSession {
 public:
  TransitionSimSession(const Netlist& nl, std::span<const TransitionFault> faults);

  std::size_t advance(const TestSequence& chunk);
  std::size_t now() const noexcept { return now_; }
  std::size_t num_faults() const noexcept { return faults_.size(); }
  bool is_detected(std::size_t i) const { return detection_[i].detected; }
  const std::vector<DetectionRecord>& detections() const noexcept { return detection_; }
  std::size_t num_detected() const noexcept { return num_detected_; }
  State good_state() const;
  /// Machine-pair state plus the faulted line's previous driven value for
  /// fault `i` (needed to seed the ATPG window's launch history).
  void pair_state(std::size_t i, State& good, State& faulty, V3& prev_driven) const;

  struct Snapshot {
    std::vector<std::vector<W3>> states;
    std::vector<std::vector<V3>> prevs;  // per batch: previous driven value per fault
    std::vector<std::uint64_t> live;
    std::vector<DetectionRecord> detection;
    std::size_t num_detected;
    std::size_t now;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& s);

 private:
  struct Batch {
    std::vector<TransitionFault> faults;
    std::vector<W3> state;       // per DFF
    std::vector<V3> prev_driven; // per fault slot (slot i-1)
    std::uint64_t live = 0;
    std::size_t first_fault_index = 0;
  };
  void advance_batch(Batch& b, const TestSequence& chunk);

  const Netlist* nl_;
  std::vector<TransitionFault> faults_;
  std::vector<Batch> batches_;
  std::vector<DetectionRecord> detection_;
  std::size_t num_detected_ = 0;
  std::size_t now_ = 0;
  mutable std::vector<W3> values_;
};

}  // namespace uniscan
