// Parallel-fault sequential simulation for transition (gross-delay) faults.
//
// Same machines-per-slot-word organisation as FaultSimulator (63/255/511
// faulty machines per batch depending on the slot width); the injected
// value is dynamic: each faulty slot remembers the faulted line's driven
// value from the previous cycle and forces
//     STR: and(driven(t), driven(t-1))     STF: or(driven(t), driven(t-1))
// onto its slot. Slot 0 remains the good machine.
//
// Mirrors FaultSimulator's two-layer structure: BatchRunnerT<Word> is the
// incremental per-batch engine (checkpoint-resumable over a SequenceView,
// caller-provided scratch) built on the CompiledNetlist kernel with the same
// engine selection and observation-cone pruning; the one-shot
// run/detects_all fan batches across ThreadPool::global() at the
// process-wide slot width, with bit-identical results at any thread count
// and any width. The launch history (previous driven value per fault) is
// part of SimBatchStateT::prev_driven so checkpoints capture it.
//
// Unlike the stuck-at engine's static forcing, a transition fault's forced
// value depends on prev_driven, so the event engine re-evaluates every
// injection site each frame even when its fanins are quiet — both to track
// the forced value and to refresh the launch history.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "fault/transition_fault.hpp"
#include "netlist/netlist.hpp"
#include "sim/checkpoint.hpp"
#include "sim/compiled_netlist.hpp"
#include "sim/engine.hpp"
#include "sim/fault_sim.hpp"
#include "sim/sequence.hpp"
#include "sim/sequence_view.hpp"
#include "sim/sequential_sim.hpp"
#include "sim/slot_word.hpp"

namespace uniscan {

class TransitionFaultSimulator {
 public:
  using fault_type = TransitionFault;

  explicit TransitionFaultSimulator(const Netlist& nl);

  const Netlist& netlist() const noexcept { return *nl_; }
  const CompiledNetlist& compiled() const noexcept { return *compiled_; }

  /// Simulate from power-up; one detection record per fault.
  std::vector<DetectionRecord> run(const TestSequence& seq,
                                   std::span<const TransitionFault> faults,
                                   std::vector<LatchRecord>* latched = nullptr) const;
  std::vector<DetectionRecord> run(const SequenceView& view,
                                   std::span<const TransitionFault> faults,
                                   std::vector<LatchRecord>* latched = nullptr) const;

  bool detects_all(const TestSequence& seq, std::span<const TransitionFault> faults) const;
  bool detects_all(const SequenceView& view, std::span<const TransitionFault> faults) const;

  std::vector<std::size_t> detected_indices(const TestSequence& seq,
                                            std::span<const TransitionFault> faults) const;

  /// Incremental engine for one batch of up to kSlots-1 transition faults;
  /// see FaultSimulator::BatchRunnerT for the contract. Instantiated for
  /// std::uint64_t, Simd256 and Simd512 (explicit instantiations in
  /// transition_sim.cpp).
  template <class Word>
  class BatchRunnerT {
   public:
    static constexpr unsigned kSlots = WordTraits<Word>::kBits;
    using State = SimBatchStateT<Word>;

    BatchRunnerT(const CompiledNetlist& cnl, std::span<const TransitionFault> faults);

    std::span<const TransitionFault> faults() const noexcept { return faults_; }
    Word slot_mask() const noexcept { return slot_mask_; }

    SimEngine engine() const noexcept { return engine_; }
    bool pruned() const noexcept { return prog_.pruned; }
    /// See FaultSimulator::BatchRunnerT::samples_dff.
    bool samples_dff(std::size_t j) const noexcept {
      return !prog_.pruned || prog_.dff_sampled[j] != 0;
    }

    /// All-X power-up state, X launch history, every fault slot live.
    State initial_state() const;

    struct AdvanceOptions {
      bool early_exit = true;
      std::span<LatchRecord> latched = {};
      CheckpointStoreT<Word>* checkpoints = nullptr;
      std::size_t batch_index = 0;
      std::size_t capture_limit = 0;
    };

    std::uint64_t advance(State& s, const SequenceView& view, std::vector<W3T<Word>>& values,
                          const AdvanceOptions& opt) const;

   private:
    static constexpr std::int32_t kNone = -1;

    void run_frame(State& s, const std::vector<V3>& pi, std::vector<W3T<Word>>& values) const;
    void apply_stems_value(GateId g, State& s, W3T<Word>& w) const;
    void apply_stems(GateId g, State& s, std::vector<W3T<Word>>& values) const {
      apply_stems_value(g, s, values[g]);
    }
    void apply_branches(GateId g, W3T<Word>* fanin_buf, std::size_t n, State& s,
                        const std::vector<W3T<Word>>& values) const;
    /// Evaluate one injection-carrying combinational gate (branch forcing on
    /// its fanins, stem forcing on its output); refreshes launch histories.
    W3T<Word> eval_forced(GateId g, State& s, const std::vector<W3T<Word>>& values) const;
    void enqueue(GateId g) const;
    void enqueue_fanouts(GateId g) const;
    std::uint64_t advance_levelized(State& s, const SequenceView& view,
                                    std::vector<W3T<Word>>& values,
                                    const AdvanceOptions& opt) const;
    std::uint64_t advance_kernel(State& s, const SequenceView& view,
                                 std::vector<W3T<Word>>& values,
                                 const AdvanceOptions& opt) const;

    const CompiledNetlist* cnl_;
    const Netlist* nl_;
    std::span<const TransitionFault> faults_;
    Word slot_mask_{};
    SimEngine engine_;
    // A line carries up to two faults (STR and STF) per batch; both stem and
    // branch faults are chained in per-gate intrusive lists.
    std::vector<std::int32_t> stem_head_;    // per gate -> fault index
    std::vector<std::int32_t> branch_head_;  // per gate -> fault index
    std::vector<std::int32_t> next_;         // per fault, shared by both chains
    // Per-fault launch value captured while evaluating the current frame,
    // committed into SimBatchStateT::prev_driven at frame end. Scratch: a
    // runner is used by one thread at a time.
    mutable std::vector<V3> pending_;

    // Compiled/event program (see FaultSimulator::BatchRunnerT). Boundary
    // gates carrying stem faults are listed once so the per-frame forcing
    // pass doesn't scan all boundaries.
    // forced_ holds only gates with branch (pin) faults; stem-only sites
    // stay inside the type runs (patched_) and get their slot rewrites
    // applied level-interleaved. fix_* merges both fixup streams
    // level-ascending: fix_idx_[i] is a patch gate id when fix_patch_[i],
    // else an index into forced_.
    BatchProgram prog_;
    std::vector<GateId> forced_;
    std::vector<GateId> patched_;
    std::vector<std::uint32_t> fix_idx_;
    std::vector<std::uint32_t> fix_level_;
    std::vector<std::uint8_t> fix_patch_;
    std::vector<GateId> bstem_dff_;  // DFF gates with stem faults
    std::vector<GateId> bstem_pi_;   // PI gates with stem faults
    std::vector<std::uint8_t> in_plan_;
    mutable std::vector<std::vector<GateId>> buckets_;
    mutable std::vector<std::uint8_t> queued_;
  };

  /// The historical 63-fault runner — the uint64_t instantiation.
  using BatchRunner = BatchRunnerT<std::uint64_t>;

 private:
  template <class Word>
  std::vector<DetectionRecord> run_impl(const SequenceView& view,
                                        std::span<const TransitionFault> faults,
                                        std::vector<LatchRecord>* latched) const;
  template <class Word>
  bool detects_all_impl(const SequenceView& view, std::span<const TransitionFault> faults) const;

  struct Scratch {
    std::vector<W3T<std::uint64_t>> w64;
    std::vector<W3T<Simd256>> w256;
    std::vector<W3T<Simd512>> w512;
    template <class Word>
    std::vector<W3T<Word>>& get() noexcept {
      if constexpr (std::is_same_v<Word, Simd256>) return w256;
      else if constexpr (std::is_same_v<Word, Simd512>) return w512;
      else return w64;
    }
  };

  const Netlist* nl_;
  std::shared_ptr<const CompiledNetlist> compiled_;
  mutable std::vector<Scratch> scratch_;  // per pool worker
};

/// Streaming session for the transition generator (mirrors FaultSimSession:
/// built on the shared SessionCoreT engine — one BatchRunnerT +
/// SimBatchStateT per batch, packed hardest-first, dead batches skipped,
/// live batches fanned across ThreadPool::global(), and with repacking
/// enabled (the default) surviving faults repacked into dense batches with
/// the slot word auto-narrowed as the live population shrinks — DESIGN.md
/// §5j). Bit-identical at every thread count and width, repack on or off.
class TransitionSimSession {
 public:
  TransitionSimSession(const Netlist& nl, std::span<const TransitionFault> faults);
  ~TransitionSimSession();
  TransitionSimSession(TransitionSimSession&&) noexcept;
  TransitionSimSession& operator=(TransitionSimSession&&) noexcept;

  std::size_t advance(const TestSequence& chunk);
  std::size_t now() const noexcept;
  std::size_t num_faults() const noexcept;
  bool is_detected(std::size_t i) const;
  const std::vector<DetectionRecord>& detections() const noexcept;
  std::size_t num_detected() const noexcept;
  /// Compiled form of the netlist, shared by all of the session's runners
  /// (and reusable by FrameModels targeting the same circuit).
  const CompiledNetlist& compiled() const noexcept;
  State good_state() const;
  /// Machine-pair state plus the faulted line's previous driven value for
  /// fault `i` (needed to seed the ATPG window's launch history).
  void pair_state(std::size_t i, State& good, State& faulty, V3& prev_driven) const;

  /// Opaque resumable session state (live batches only — see
  /// FaultSimSession::Snapshot for the contract). The snapshot pins the
  /// batch pack it was captured under, so restoring across an intervening
  /// repack (even one that changed the slot width) re-installs that exact
  /// pack. Copyable; only valid for the session that produced it —
  /// restoring into a different session throws std::invalid_argument.
  class Snapshot {
   public:
    Snapshot() = default;

   private:
    friend class TransitionSimSession;
    std::shared_ptr<const void> state_;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& s);

  /// Implementation (the shared SessionCoreT engine; public so the
  /// definition in transition_sim.cpp can name it; not part of the
  /// session's API).
  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace uniscan
