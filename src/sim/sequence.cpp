#include "sim/sequence.hpp"

#include <stdexcept>

namespace uniscan {

void TestSequence::append(std::vector<V3> vec) {
  if (vec.size() != num_inputs_)
    throw std::invalid_argument("TestSequence::append: vector width mismatch");
  vectors_.push_back(std::move(vec));
}

void TestSequence::append_sequence(const TestSequence& other) {
  if (other.num_inputs_ != num_inputs_)
    throw std::invalid_argument("TestSequence::append_sequence: input count mismatch");
  vectors_.insert(vectors_.end(), other.vectors_.begin(), other.vectors_.end());
}

void TestSequence::truncate(std::size_t new_length) {
  if (new_length < vectors_.size()) vectors_.resize(new_length);
}

void TestSequence::random_fill(Rng& rng) {
  for (auto& vec : vectors_)
    for (auto& v : vec)
      if (v == V3::X) v = rng.next_bool() ? V3::One : V3::Zero;
}

void TestSequence::repeat_fill() {
  for (std::size_t t = 0; t < vectors_.size(); ++t) {
    for (std::size_t i = 0; i < num_inputs_; ++i) {
      if (vectors_[t][i] != V3::X) continue;
      vectors_[t][i] = t == 0 ? V3::Zero : vectors_[t - 1][i];
    }
  }
}

void TestSequence::constant_fill(V3 fill) {
  for (auto& vec : vectors_)
    for (auto& v : vec)
      if (v == V3::X) v = fill;
}

std::size_t TestSequence::count_ones(std::size_t input) const {
  std::size_t n = 0;
  for (const auto& vec : vectors_)
    if (vec[input] == V3::One) ++n;
  return n;
}

TestSequence TestSequence::select(const std::vector<std::size_t>& keep) const {
  TestSequence out(num_inputs_);
  for (std::size_t idx : keep) {
    if (idx >= vectors_.size()) throw std::out_of_range("TestSequence::select: index out of range");
    out.vectors_.push_back(vectors_[idx]);
  }
  return out;
}

std::string TestSequence::to_string() const {
  std::string s;
  s.reserve(vectors_.size() * (num_inputs_ + 1));
  for (const auto& vec : vectors_) {
    for (V3 v : vec) s.push_back(to_char(v));
    s.push_back('\n');
  }
  return s;
}

TestSequence TestSequence::from_rows(std::size_t num_inputs, const std::vector<std::string>& rows) {
  TestSequence seq(num_inputs);
  for (const auto& row : rows) {
    std::vector<V3> vec;
    vec.reserve(num_inputs);
    for (char c : row) {
      if (c == ' ' || c == '\t') continue;
      vec.push_back(v3_from_char(c));
    }
    if (vec.size() != num_inputs)
      throw std::invalid_argument("TestSequence::from_rows: row width mismatch: '" + row + "'");
    seq.append(std::move(vec));
  }
  return seq;
}

}  // namespace uniscan
