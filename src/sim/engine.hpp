// Process-wide simulation-kernel configuration.
//
// Every batch advance (stuck-at and transition) can run on one of three
// engines over the same CompiledNetlist tables, all bit-identical in their
// observable results (detections, latch records, sampled states):
//
//  * Compiled  — type-run kernel over the flat evaluation order, with
//                per-batch observation-cone pruning (the default).
//  * Levelized — per-gate dispatch over the full evaluation order, the
//                pre-kernel algorithm kept as a bisection baseline.
//  * Event     — selective trace: only gates whose fanin words changed
//                since the previous frame are re-evaluated.
//
// The settings are process-wide (like ThreadPool::global()) so the bench
// binaries can select an engine with --engine=NAME without threading a
// config through every layer. They are read once at BatchRunner
// construction; changing them does not affect already-built runners.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace uniscan {

enum class SimEngine : std::uint8_t { Compiled, Levelized, Event };

/// Select the advance engine used by runners built from now on.
void set_global_sim_engine(SimEngine e) noexcept;
SimEngine global_sim_engine() noexcept;

/// Enable/disable per-batch observation-cone pruning (Compiled and Event
/// engines only; Levelized always evaluates the full order).
void set_global_cone_pruning(bool on) noexcept;
bool global_cone_pruning() noexcept;

/// Parse "compiled" / "levelized" / "event"; returns false on other input.
bool parse_sim_engine(std::string_view name, SimEngine& out) noexcept;

/// Printable engine name.
std::string_view sim_engine_name(SimEngine e) noexcept;

/// Slot-word width of the parallel-fault simulators: how many machines one
/// W3T word carries (64/256/512, i.e. 63/255/511 faults per batch). Auto
/// resolves to the widest SIMD level both compiled into this binary
/// (-mavx2 / -mavx512f) and reported by the CPU, else 64. Like the engine
/// selection, the width is read once at runner/session construction.
enum class SlotWidth : std::uint16_t { Auto = 0, W64 = 64, W256 = 256, W512 = 512 };

/// Select the slot width used by runners and sessions built from now on.
/// The UNISCAN_SLOT_WIDTH environment variable (read once, at first use)
/// overrides this setting — it exists so CI can force a width across a
/// whole test binary without threading a flag through every harness.
void set_global_slot_width(SlotWidth w) noexcept;
SlotWidth global_slot_width() noexcept;

/// The width runners built now would use: env override, else the configured
/// width, with Auto resolved against the compiled-in ISA and the CPU.
/// Never returns Auto.
SlotWidth resolved_slot_width() noexcept;

/// Parse "64" / "256" / "512" / "auto"; returns false on other input.
bool parse_slot_width(std::string_view name, SlotWidth& out) noexcept;

/// Bit width of a resolved SlotWidth (64/256/512).
unsigned slot_width_bits(SlotWidth w) noexcept;

/// Live-fault repacking (DESIGN.md §5j): when enabled, the streaming
/// sessions periodically repack their surviving faults into dense batches
/// and — when the width is Auto — narrow the slot word to the cheapest one
/// for the live population; the one-shot simulators size their word to the
/// fault count the same way. Results are bit-identical either way; only the
/// amount of work changes. The UNISCAN_REPACK environment variable (read
/// once: "0"/"off" disables, "1"/"on" enables) overrides this setting so CI
/// can pin a whole binary. Read at session construction and at every
/// advance-boundary repack decision.
void set_global_repack(bool on) noexcept;
bool global_repack() noexcept;

/// True when no explicit width was requested (env and global both Auto):
/// the auto-narrowing paths may pick per-population widths.
bool slot_width_is_auto() noexcept;

/// Cheapest slot width for `live` concurrently-simulated faults, never wider
/// than `widest`: minimizes batches(width) x per-batch-advance cost under a
/// fixed cost model (a wide word costs more per advance than a narrow one,
/// but far less than proportionally). Ties pick the narrower word. Pure —
/// the repack layer's determinism rests on it.
SlotWidth efficient_slot_width(std::size_t live, SlotWidth widest) noexcept;

/// The width a simulator should use for `n` concurrent faults: an explicit
/// env/global width is honored exactly; under Auto with repacking enabled
/// the width is efficient_slot_width(n, auto); with repacking disabled this
/// is resolved_slot_width() (the historical behavior, the --repack=off
/// baseline).
SlotWidth resolved_slot_width_for(std::size_t n) noexcept;

}  // namespace uniscan
