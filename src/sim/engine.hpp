// Process-wide simulation-kernel configuration.
//
// Every batch advance (stuck-at and transition) can run on one of three
// engines over the same CompiledNetlist tables, all bit-identical in their
// observable results (detections, latch records, sampled states):
//
//  * Compiled  — type-run kernel over the flat evaluation order, with
//                per-batch observation-cone pruning (the default).
//  * Levelized — per-gate dispatch over the full evaluation order, the
//                pre-kernel algorithm kept as a bisection baseline.
//  * Event     — selective trace: only gates whose fanin words changed
//                since the previous frame are re-evaluated.
//
// The settings are process-wide (like ThreadPool::global()) so the bench
// binaries can select an engine with --engine=NAME without threading a
// config through every layer. They are read once at BatchRunner
// construction; changing them does not affect already-built runners.
#pragma once

#include <cstdint>
#include <string_view>

namespace uniscan {

enum class SimEngine : std::uint8_t { Compiled, Levelized, Event };

/// Select the advance engine used by runners built from now on.
void set_global_sim_engine(SimEngine e) noexcept;
SimEngine global_sim_engine() noexcept;

/// Enable/disable per-batch observation-cone pruning (Compiled and Event
/// engines only; Levelized always evaluates the full order).
void set_global_cone_pruning(bool on) noexcept;
bool global_cone_pruning() noexcept;

/// Parse "compiled" / "levelized" / "event"; returns false on other input.
bool parse_sim_engine(std::string_view name, SimEngine& out) noexcept;

/// Printable engine name.
std::string_view sim_engine_name(SimEngine e) noexcept;

}  // namespace uniscan
