// Parallel-fault sequential fault simulation (PROOFS-style).
//
// Faults are processed in batches of kBits-1 machines, where kBits is the
// slot-word width (64, 256 or 512 — see sim/slot_word.hpp): bit slot 0 of
// every W3T word carries the good machine, slots 1..kBits-1 carry one faulty
// machine each. All machines see the same primary-input vectors; fault
// effects are injected by forcing the faulted line's value in the
// corresponding slot. Simulation starts from the all-X power-up state and
// runs the full sequence.
//
// A fault is *detected* at frame t if some primary output has a known good
// value and the opposite known value in the fault's slot. The simulator can
// additionally record where fault effects get *latched* into flip-flops —
// the hook used by the paper's Section-2 functional scan knowledge.
//
// Two layers:
//  * BatchRunnerT<Word> — the incremental engine for one batch of up to
//    kBits-1 faults over the CompiledNetlist kernel. The injection tables
//    (stem forcing per gate, per-pin force tables for branch faults) and the
//    batch's evaluation program — including the observation-cone pruning
//    that skips gates no fault of the batch can reach — are built once;
//    advance() resumes a SimBatchStateT at any frame (checkpoint restarts)
//    over a copy-free SequenceView, and the net-value scratch is
//    caller-provided so independent batches can run on different threads.
//    The advance engine (compiled / levelized / event, see sim/engine.hpp)
//    is latched from the process-wide setting at construction; all three
//    produce bit-identical detections, latch records and sampled states —
//    and so do all three widths, because batches never interact and every
//    per-fault result is a pure function of that fault's slot.
//  * FaultSimulator — the one-shot API (run / detects_all / run_counts),
//    fanning its independent batches across ThreadPool::global() at the
//    process-wide slot width (resolved_slot_width(), read per call).
//    Results are bit-identical for every thread count: each batch writes
//    only its own output slots and batches never interact.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/netlist.hpp"
#include "sim/checkpoint.hpp"
#include "sim/compiled_netlist.hpp"
#include "sim/engine.hpp"
#include "sim/logic3.hpp"
#include "sim/sequence.hpp"
#include "sim/sequence_view.hpp"
#include "sim/slot_word.hpp"

namespace uniscan {

/// Batches per wave of the deterministic fail-fast used by detects_all (and
/// mirrored in the transition simulator and the omission engine): cross-batch
/// fail flags are only consulted serially BETWEEN waves, so the set of batch
/// advances that execute — and every obs:: work counter — is a pure function
/// of the input, independent of thread count and timing.
inline constexpr std::size_t kFailFastWave = 8;

struct DetectionRecord {
  bool detected = false;
  std::uint32_t time = 0;  // first frame at which the fault was observed at a PO
};

/// Fault effect captured in a flip-flop: after clocking frame `time`, the
/// state entering frame time+1 differs from the good machine at DFF
/// `ff_index` (Netlist::dffs() order). For the scan fallback we keep the
/// occurrence with the largest ff_index (fewest shifts to scan_out).
struct LatchRecord {
  bool latched = false;
  std::uint32_t ff_index = 0;
  std::uint32_t time = 0;
};

class FaultSimulator {
 public:
  using fault_type = Fault;

  explicit FaultSimulator(const Netlist& nl);

  const Netlist& netlist() const noexcept { return *nl_; }
  const CompiledNetlist& compiled() const noexcept { return *compiled_; }

  /// Simulate `seq` against every fault in `faults`. Returns one detection
  /// record per fault (same order). If `latched` is non-null it receives one
  /// latch record per fault.
  std::vector<DetectionRecord> run(const TestSequence& seq, std::span<const Fault> faults,
                                   std::vector<LatchRecord>* latched = nullptr) const;
  std::vector<DetectionRecord> run(const SequenceView& view, std::span<const Fault> faults,
                                   std::vector<LatchRecord>* latched = nullptr) const;

  /// True iff `seq` detects every fault in `faults`. Early-exits both within
  /// a batch (all slots detected) and across batches (a miss stops scheduling
  /// further kFailFastWave-sized waves — deterministic at any thread count).
  bool detects_all(const TestSequence& seq, std::span<const Fault> faults) const;
  bool detects_all(const SequenceView& view, std::span<const Fault> faults) const;

  /// Indices (into `faults`) of the faults detected by `seq`.
  std::vector<std::size_t> detected_indices(const TestSequence& seq,
                                            std::span<const Fault> faults) const;

  /// Per-fault detection count, saturated at `cap`: the number of frames at
  /// which the fault is observed at some primary output (at most one count
  /// per frame). Used by the n-detect extension.
  std::vector<std::uint32_t> run_counts(const TestSequence& seq, std::span<const Fault> faults,
                                        std::uint32_t cap) const;
  std::vector<std::uint32_t> run_counts(const SequenceView& view, std::span<const Fault> faults,
                                        std::uint32_t cap) const;

  /// Incremental engine for one batch of up to kSlots-1 faults. The
  /// injection tables and the batch program are built once at construction;
  /// advance() is allocation-free. A runner may be shared across trials but
  /// is used by one thread at a time. Instantiated for std::uint64_t,
  /// Simd256 and Simd512 (explicit instantiations in fault_sim.cpp).
  template <class Word>
  class BatchRunnerT {
   public:
    static constexpr unsigned kSlots = WordTraits<Word>::kBits;
    using State = SimBatchStateT<Word>;

    BatchRunnerT(const CompiledNetlist& cnl, std::span<const Fault> faults);

    std::span<const Fault> faults() const noexcept { return faults_; }
    /// Bits 1..faults().size() — the slots this batch must detect.
    Word slot_mask() const noexcept { return slot_mask_; }

    /// Engine latched at construction from the process-wide setting.
    SimEngine engine() const noexcept { return engine_; }
    /// True when this batch's program skips out-of-cone gates.
    bool pruned() const noexcept { return prog_.pruned; }
    /// True if advance() maintains DFF j's next state. Always true without
    /// pruning; under pruning false exactly for DFFs outside the batch's
    /// cone-plus-support, whose state equals the good machine's by
    /// construction (no fault effect can reach them).
    bool samples_dff(std::size_t j) const noexcept {
      return !prog_.pruned || prog_.dff_sampled[j] != 0;
    }

    /// All-X power-up state with every fault slot live.
    State initial_state() const;

    struct AdvanceOptions {
      bool early_exit = true;      // stop once no slot is live
      std::uint32_t count_cap = 1; // observations until a slot leaves `live`
      std::span<LatchRecord> latched = {};  // one record per batch fault
      // Checkpoint capture: while simulating frames f <= capture_limit,
      // snapshot the state entering f whenever checkpoints->want(f).
      CheckpointStoreT<Word>* checkpoints = nullptr;
      std::size_t batch_index = 0;
      std::size_t capture_limit = 0;
    };

    /// Simulate frames [s.frame, view.length()) of `view`, updating `s` in
    /// place. `values` is per-net scratch (resized as needed; contents
    /// don't matter). Returns the number of gate-word evaluations.
    /// After an early exit, only the detection fields of `s` are
    /// meaningful; a state intended for later resumption must come from a
    /// checkpoint or a non-early-exit run.
    std::uint64_t advance(State& s, const SequenceView& view, std::vector<W3T<Word>>& values,
                          const AdvanceOptions& opt) const;

   private:
    /// Slot-forcing masks for fault injection. Slots listed in set0 are
    /// forced to 0, slots in set1 to 1; set0 & set1 == 0.
    struct Forcing {
      Word set0{};
      Word set1{};

      bool any() const noexcept { return w_any(set0 | set1); }
      W3T<Word> apply(W3T<Word> w) const noexcept {
        const Word touched = set0 | set1;
        return W3T<Word>{(w.v0 & ~touched) | set0, (w.v1 & ~touched) | set1};
      }
    };
    struct BranchForce {
      std::int16_t pin;
      std::int32_t next;  // next BranchForce on the same gate, -1 ends
      Forcing force;
    };

    W3T<Word> branch_force(GateId g, std::size_t pin, W3T<Word> w) const noexcept;
    // Hot: one call per forced gate per frame from advance_kernel's fixup
    // loop; inlined there so the wide words never bounce through a
    // by-hidden-pointer return.
    [[gnu::always_inline]]
    W3T<Word> eval_forced(std::size_t k, const W3T<Word>* values) const noexcept;
    void enqueue_fanouts(GateId g) const;
    std::uint64_t advance_levelized(State& s, const SequenceView& view,
                                    std::vector<W3T<Word>>& values,
                                    const AdvanceOptions& opt) const;
    std::uint64_t advance_kernel(State& s, const SequenceView& view,
                                 std::vector<W3T<Word>>& values,
                                 const AdvanceOptions& opt) const;

    const CompiledNetlist* cnl_;
    const Netlist* nl_;
    std::span<const Fault> faults_;
    Word slot_mask_{};
    SimEngine engine_;
    std::vector<Forcing> stem_;             // indexed by gate
    std::vector<std::int32_t> branch_head_; // per gate: first branch entry or -1
    std::vector<BranchForce> branches_;

    // Compiled/event program: cone-pruned evaluation plan, the comb gates
    // with a branch (pin) injection (evaluated individually via flat
    // per-pin force tables), and dense pin-0 forcing for DFF D inputs.
    // Stem-only sites stay inside the type runs; their output forcing is a
    // post-run patch. fix_* is the level-ascending merge of both fixup
    // streams the kernel walks between type runs: fix_idx_[i] is a patch
    // gate id when fix_patch_[i], else an index into forced_.
    BatchProgram prog_;
    std::vector<GateId> forced_;
    std::vector<std::uint32_t> fix_idx_;
    std::vector<std::uint32_t> fix_level_;
    std::vector<std::uint8_t> fix_patch_;
    std::vector<std::uint32_t> pin_off_;    // CSR offsets into pin_force_
    std::vector<Forcing> pin_force_;
    std::vector<std::uint8_t> pin_any_;     // parallel to pin_force_: force.any()
    std::vector<std::uint8_t> forced_stem_; // parallel to forced_: stem_[g].any()
    std::vector<Forcing> dff_force_;        // indexed by DFF index
    // Event engine bookkeeping (a runner is used by one thread at a time).
    std::vector<std::uint8_t> in_plan_;     // comb gate participates in plan
    mutable std::vector<std::vector<GateId>> buckets_;  // by level
    mutable std::vector<std::uint8_t> queued_;
  };

  /// The historical 63-fault runner — the uint64_t instantiation.
  using BatchRunner = BatchRunnerT<std::uint64_t>;

 private:
  template <class Word>
  std::vector<DetectionRecord> run_impl(const SequenceView& view, std::span<const Fault> faults,
                                        std::vector<LatchRecord>* latched) const;
  template <class Word>
  bool detects_all_impl(const SequenceView& view, std::span<const Fault> faults) const;
  template <class Word>
  std::vector<std::uint32_t> run_counts_impl(const SequenceView& view,
                                             std::span<const Fault> faults,
                                             std::uint32_t cap) const;

  // Per-pool-worker net-value scratch, one buffer per slot width so a width
  // switch between calls never reinterprets stale bytes.
  struct Scratch {
    std::vector<W3T<std::uint64_t>> w64;
    std::vector<W3T<Simd256>> w256;
    std::vector<W3T<Simd512>> w512;
    template <class Word>
    std::vector<W3T<Word>>& get() noexcept {
      if constexpr (std::is_same_v<Word, Simd256>) return w256;
      else if constexpr (std::is_same_v<Word, Simd512>) return w512;
      else return w64;
    }
  };
  template <class Word>
  std::vector<W3T<Word>>& scratch_for(std::size_t worker) const;

  const Netlist* nl_;
  // Shared one-time compile from Netlist::compiled_shared(): every simulator
  // over the same Netlist object reuses it instead of recompiling.
  std::shared_ptr<const CompiledNetlist> compiled_;
  // Index = ThreadPool worker id.
  mutable std::vector<Scratch> scratch_;
};

}  // namespace uniscan
