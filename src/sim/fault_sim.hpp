// Parallel-fault sequential fault simulation (PROOFS-style).
//
// Faults are processed in batches of 63: bit slot 0 of every W3 word carries
// the good machine, slots 1..63 carry one faulty machine each. All machines
// see the same primary-input vectors; fault effects are injected by forcing
// the faulted line's value in the corresponding slot. Simulation starts from
// the all-X power-up state and runs the full sequence.
//
// A fault is *detected* at frame t if some primary output has a known good
// value and the opposite known value in the fault's slot. The simulator can
// additionally record where fault effects get *latched* into flip-flops —
// the hook used by the paper's Section-2 functional scan knowledge.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/netlist.hpp"
#include "sim/logic3.hpp"
#include "sim/sequence.hpp"

namespace uniscan {

struct DetectionRecord {
  bool detected = false;
  std::uint32_t time = 0;  // first frame at which the fault was observed at a PO
};

/// Fault effect captured in a flip-flop: after clocking frame `time`, the
/// state entering frame time+1 differs from the good machine at DFF
/// `ff_index` (Netlist::dffs() order). For the scan fallback we keep the
/// occurrence with the largest ff_index (fewest shifts to scan_out).
struct LatchRecord {
  bool latched = false;
  std::uint32_t ff_index = 0;
  std::uint32_t time = 0;
};

class FaultSimulator {
 public:
  explicit FaultSimulator(const Netlist& nl);

  const Netlist& netlist() const noexcept { return *nl_; }

  /// Simulate `seq` against every fault in `faults`. Returns one detection
  /// record per fault (same order). If `latched` is non-null it receives one
  /// latch record per fault.
  std::vector<DetectionRecord> run(const TestSequence& seq, std::span<const Fault> faults,
                                   std::vector<LatchRecord>* latched = nullptr) const;

  /// True iff `seq` detects every fault in `faults`. Early-exits both within
  /// a batch (all 63 detected) and across batches (first miss fails fast).
  bool detects_all(const TestSequence& seq, std::span<const Fault> faults) const;

  /// Indices (into `faults`) of the faults detected by `seq`.
  std::vector<std::size_t> detected_indices(const TestSequence& seq,
                                            std::span<const Fault> faults) const;

  /// Per-fault detection count, saturated at `cap`: the number of frames at
  /// which the fault is observed at some primary output (at most one count
  /// per frame). Used by the n-detect extension.
  std::vector<std::uint32_t> run_counts(const TestSequence& seq, std::span<const Fault> faults,
                                        std::uint32_t cap) const;

  /// Total gate-word evaluations performed since construction (for benches).
  std::uint64_t gate_evals() const noexcept { return gate_evals_; }

 private:
  // One batch: up to 63 faults in slots 1..63. A slot stays live until it
  // has been observed at `count_cap` distinct frames; detect_time records
  // the first observation.
  struct BatchResult {
    std::uint64_t detected_slots = 0;  // bit k set => fault in slot k detected
    std::uint32_t detect_time[64];     // valid where detected_slots bit set
    std::uint32_t detect_count[64];    // observations, saturated at count_cap
  };

  BatchResult run_batch(const TestSequence& seq, std::span<const Fault> faults,
                        std::span<LatchRecord> latched, bool early_exit,
                        std::uint32_t count_cap = 1) const;

  const Netlist* nl_;
  mutable std::vector<W3> values_;  // scratch: per-net word values
  mutable std::uint64_t gate_evals_ = 0;
};

}  // namespace uniscan
