#include "sim/fault_order.hpp"

#include <queue>

namespace uniscan {

std::vector<std::uint32_t> observation_depth(const Netlist& nl) {
  const std::uint32_t unreachable = static_cast<std::uint32_t>(nl.num_gates());
  std::vector<std::uint32_t> depth(nl.num_gates(), unreachable);
  std::queue<GateId> frontier;
  for (GateId po : nl.outputs()) {
    if (depth[po] == unreachable) {
      depth[po] = 0;
      frontier.push(po);
    }
  }
  while (!frontier.empty()) {
    const GateId g = frontier.front();
    frontier.pop();
    for (GateId f : nl.gate(g).fanins) {
      if (depth[f] == unreachable) {
        depth[f] = depth[g] + 1;
        frontier.push(f);
      }
    }
  }
  return depth;
}

}  // namespace uniscan
