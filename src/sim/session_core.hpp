// Shared engine of the streaming fault-simulation sessions (DESIGN.md §5j).
//
// FaultSimSession and TransitionSimSession are the same machine over
// different fault models: faults packed hardest-first into batches of
// kBits-1 slots, dead batches skipped, live batches fanned across
// ThreadPool::global(), detections merged serially in batch order.
// SessionCoreT<Sim> implements that machine once, templated over the
// simulator (FaultSimulator / TransitionFaultSimulator), and adds the
// live-fault compaction layer:
//
//  * Repacking. As faults are detected, batches thin out — dead-batch skip
//    only helps once ALL lanes of a batch die, so late-phase advances run
//    mostly-empty words. At the start of an advance (the serial point
//    between parallel waves, so the decision is a pure function of the
//    session's thread-invariant state) the core repacks the surviving
//    faults into dense batches whenever that removes at least a quarter of
//    the live batches, rebuilding the affected BatchPrograms for exactly
//    the new batches.
//  * Auto-narrowing. When no explicit slot width was requested, the repack
//    target width is efficient_slot_width(live) — 512→256→64 as the live
//    population shrinks below what wide lanes amortize (and tiny circuits
//    start narrow on day one).
//  * Pack cache. Tentative advance/restore cycles (snapshot → advance →
//    restore) would otherwise rebuild the same pack every failed trial; the
//    last pack built per width is cached and reused when the survivor set
//    is unchanged.
//
// Determinism: a fault's detection is a pure function of its own slot —
// batches never interact — so moving a fault to a new batch/slot/width
// cannot change its detections, only the work done. The repacked state is
// constructed to be machine-for-machine identical: every DFF the new
// runner samples gets the good-machine value with the fault's old faulty
// value (good where the old runner did not sample — no fault effect could
// reach there). Results are therefore bit-identical with repacking on or
// off, at any width and any thread count; gate_evals/batches_run shrink,
// repack_events/lanes_reclaimed record the layer's activity.
//
// Snapshots hold a shared_ptr to the immutable pack they were captured
// under plus the live batch states, so restore() re-installs that exact
// engine (possibly switching widths). A snapshot is only valid for the
// session that produced it; restoring a foreign or empty snapshot throws.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sim/checkpoint.hpp"
#include "sim/compiled_netlist.hpp"
#include "sim/engine.hpp"
#include "sim/fault_order.hpp"
#include "sim/fault_sim.hpp"
#include "sim/logic3.hpp"
#include "sim/sequence.hpp"
#include "sim/sequence_view.hpp"
#include "sim/sequential_sim.hpp"
#include "sim/slot_word.hpp"
#include "util/thread_pool.hpp"

namespace uniscan {

template <class Sim>
class SessionCoreT {
 public:
  using FaultT = typename Sim::fault_type;
  template <class Word>
  using RunnerT = typename Sim::template BatchRunnerT<Word>;

  /// `name` prefixes exception messages ("FaultSimSession", ...). The core
  /// references (not copies) `nl`; it must outlive the core.
  SessionCoreT(const Netlist& nl, std::span<const FaultT> faults, const char* name)
      : nl_(&nl),
        compiled_(nl.compiled_shared()),
        faults_(faults.begin(), faults.end()),
        name_(name),
        good_runner_(*compiled_, std::span<const FaultT>{}) {
    detection_.assign(faults_.size(), DetectionRecord{});
    good_ = good_runner_.initial_state();
    repack_on_ = global_repack();
    width_auto_ = slot_width_is_auto();
    max_width_ = resolved_slot_width();

    // Initial packing: hardest-first (observation depth as the
    // detection-likelihood proxy, structurally grouped within a depth class
    // — sim/fault_order.hpp) at the width the whole population justifies.
    const SlotWidth w0 = (repack_on_ && width_auto_)
                             ? efficient_slot_width(faults_.size(), max_width_)
                             : max_width_;
    std::vector<std::size_t> order = hardest_first_order(nl, std::span<const FaultT>(faults_));
    install_fresh_engine(w0, std::move(order));
    obs::count_max(obs::Counter::LiveFaultsPeak, faults_.size());
  }

  std::size_t advance(const TestSequence& chunk) {
    if (chunk.num_inputs() != nl_->num_inputs())
      throw std::invalid_argument(std::string(name_) + "::advance: input width mismatch");
    const SequenceView view(chunk);
    const obs::TraceSpan span("session_advance");

    if (repack_on_) std::visit([&](auto& eng) { maybe_repack(eng); }, engine_);
    const std::size_t gained =
        std::visit([&](auto& eng) { return advance_engine(eng, view); }, engine_);
    now_ += chunk.length();
    return gained;
  }

  std::size_t now() const noexcept { return now_; }
  std::size_t num_faults() const noexcept { return faults_.size(); }
  bool is_detected(std::size_t i) const { return detection_[i].detected; }
  const std::vector<DetectionRecord>& detections() const noexcept { return detection_; }
  std::size_t num_detected() const noexcept { return num_detected_; }
  const CompiledNetlist& compiled() const noexcept { return *compiled_; }

  State good_state() const {
    State s(nl_->num_dffs(), V3::X);
    for (std::size_t j = 0; j < s.size(); ++j) s[j] = good_.state[j].get(0);
    return s;
  }

  /// (good, faulty) state pair of fault `i` entering the next frame; when
  /// `prev_driven` is non-null it receives the fault's launch history
  /// (transition model). Meaningful only for undetected faults — a detected
  /// fault's machine may have been repacked away, in which case both states
  /// report the good machine.
  void pair_state(std::size_t i, State& good, State& faulty, V3* prev_driven) const {
    std::visit([&](const auto& eng) { pair_state_engine(eng, i, good, faulty, prev_driven); },
               engine_);
  }

  std::shared_ptr<const void> snapshot() const {
    auto s = std::make_shared<CoreSnapshot>();
    s->owner = ident_;
    s->good = good_;
    s->detection = detection_;
    s->num_detected = num_detected_;
    s->now = now_;
    std::visit(
        [&](const auto& eng) {
          using Word = typename std::decay_t<decltype(eng)>::word_type;
          EngineSnap<Word> es;
          es.pack = eng.pack;
          for (std::size_t b = 0; b < eng.states.size(); ++b)
            if (w_any(eng.states[b].live)) es.live_states.emplace_back(b, eng.states[b]);
          s->eng = std::move(es);
        },
        engine_);
    return s;
  }

  void restore(const std::shared_ptr<const void>& snap) {
    const auto* s = static_cast<const CoreSnapshot*>(snap.get());
    if (!s || s->owner != ident_)
      throw std::invalid_argument(std::string(name_) +
                                  "::restore: snapshot from a different session");
    good_ = s->good;
    detection_ = s->detection;
    num_detected_ = s->num_detected;
    now_ = s->now;
    std::visit([&](const auto& es) { restore_engine(es); }, s->eng);
  }

 private:
  static constexpr std::size_t kNoPos = ~std::size_t{0};

  /// Immutable batch plan: the packed faults, their mapping to/from the
  /// original fault list, and one runner (injection tables + cone-pruned
  /// BatchProgram) per batch. Shared by the engine, the pack cache and any
  /// snapshots captured under it; never mutated after construction.
  template <class Word>
  struct PackT {
    static constexpr std::size_t kPer = WordTraits<Word>::kBits - 1;
    std::vector<FaultT> packed;      // batch-major; runners hold spans into it
    std::vector<std::size_t> orig;   // packed position -> original fault index
    std::vector<std::size_t> pos;    // original index -> packed position (kNoPos if dropped)
    std::vector<RunnerT<Word>> runners;
  };

  template <class Word>
  struct EngineT {
    using word_type = Word;
    std::shared_ptr<const PackT<Word>> pack;
    std::vector<SimBatchStateT<Word>> states;  // one per batch
  };

  template <class Word>
  struct EngineSnap {
    std::shared_ptr<const PackT<Word>> pack;
    std::vector<std::pair<std::size_t, SimBatchStateT<Word>>> live_states;
  };

  struct CoreSnapshot {
    // Identity token of the capturing core. Comparing raw core addresses
    // would false-match when a dead session's heap slot is reused; the
    // snapshot holding the token alive makes the token address unique among
    // all cores any live snapshot could have come from.
    std::shared_ptr<const int> owner;
    SimBatchStateT<std::uint64_t> good;
    std::variant<EngineSnap<std::uint64_t>, EngineSnap<Simd256>, EngineSnap<Simd512>> eng;
    std::vector<DetectionRecord> detection;
    std::size_t num_detected = 0;
    std::size_t now = 0;
  };

  struct Scratch {
    std::vector<W3T<std::uint64_t>> w64;
    std::vector<W3T<Simd256>> w256;
    std::vector<W3T<Simd512>> w512;
    template <class Word>
    std::vector<W3T<Word>>& get() noexcept {
      if constexpr (std::is_same_v<Word, Simd256>) return w256;
      else if constexpr (std::is_same_v<Word, Simd512>) return w512;
      else return w64;
    }
  };

  template <class Word>
  std::shared_ptr<const PackT<Word>>& cache_slot() noexcept {
    if constexpr (std::is_same_v<Word, Simd256>) return cache256_;
    else if constexpr (std::is_same_v<Word, Simd512>) return cache512_;
    else return cache64_;
  }

  /// Build (or fetch from the per-width cache) the pack for survivor list
  /// `orig`. Every pack's orig is a subsequence of the initial hardest-first
  /// order, so equal survivor SETS have equal vectors and the comparison is
  /// exact.
  template <class Word>
  std::shared_ptr<const PackT<Word>> cached_or_build(std::vector<std::size_t> orig) {
    std::shared_ptr<const PackT<Word>>& slot = cache_slot<Word>();
    if (slot && slot->orig == orig) return slot;
    auto pack = std::make_shared<PackT<Word>>();
    pack->orig = std::move(orig);
    pack->packed.reserve(pack->orig.size());
    for (const std::size_t idx : pack->orig) pack->packed.push_back(faults_[idx]);
    pack->pos.assign(faults_.size(), kNoPos);
    for (std::size_t p = 0; p < pack->orig.size(); ++p) pack->pos[pack->orig[p]] = p;
    const std::size_t num_batches = (pack->packed.size() + PackT<Word>::kPer - 1) / PackT<Word>::kPer;
    pack->runners.reserve(num_batches);
    for (std::size_t b = 0; b < num_batches; ++b) {
      const std::size_t lo = b * PackT<Word>::kPer;
      const std::size_t count = std::min<std::size_t>(PackT<Word>::kPer, pack->packed.size() - lo);
      pack->runners.emplace_back(*compiled_,
                                 std::span<const FaultT>(pack->packed.data() + lo, count));
    }
    slot = pack;
    return pack;
  }

  void install_fresh_engine(SlotWidth w, std::vector<std::size_t> order) {
    const auto install = [&]<class Word>() {
      EngineT<Word> eng;
      eng.pack = cached_or_build<Word>(std::move(order));
      eng.states.reserve(eng.pack->runners.size());
      for (const RunnerT<Word>& r : eng.pack->runners) eng.states.push_back(r.initial_state());
      engine_ = std::move(eng);
    };
    switch (w) {
      case SlotWidth::W256: install.template operator()<Simd256>(); break;
      case SlotWidth::W512: install.template operator()<Simd512>(); break;
      default: install.template operator()<std::uint64_t>(); break;
    }
  }

  // ---- repacking ----------------------------------------------------------

  template <class OldWord>
  void maybe_repack(EngineT<OldWord>& old) {
    const std::size_t live = faults_.size() - num_detected_;
    std::size_t live_batches = 0;
    for (const auto& s : old.states)
      if (w_any(s.live)) ++live_batches;
    const SlotWidth cur = static_cast<SlotWidth>(WordTraits<OldWord>::kBits);
    const SlotWidth target = width_auto_ ? efficient_slot_width(live, max_width_) : cur;
    const std::size_t per_new = slot_width_bits(target) - 1;
    const std::size_t need = (live + per_new - 1) / per_new;
    // Repack when the width changes, or when dense same-width repacking
    // frees at least a quarter of the live batches. Both inputs are
    // thread-count-invariant, so the decision is too.
    if (target == cur && !(need < live_batches && need * 4 <= live_batches * 3)) return;
    switch (target) {
      case SlotWidth::W256: repack_to<Simd256>(old, live_batches); break;
      case SlotWidth::W512: repack_to<Simd512>(old, live_batches); break;
      default: repack_to<std::uint64_t>(old, live_batches); break;
    }
  }

  /// Rebuild the engine at `NewWord` over the current survivors, carrying
  /// every machine's state across. `old` aliases the active variant
  /// alternative: the new engine is fully built before engine_ is
  /// reassigned, and `old` is not touched afterwards.
  template <class NewWord, class OldWord>
  void repack_to(EngineT<OldWord>& old, std::size_t old_live_batches) {
    constexpr std::size_t kPerOld = PackT<OldWord>::kPer;
    constexpr std::size_t kPerNew = PackT<NewWord>::kPer;
    const PackT<OldWord>& opack = *old.pack;

    std::vector<std::size_t> orig;
    orig.reserve(faults_.size() - num_detected_);
    for (const std::size_t oi : opack.orig)
      if (!detection_[oi].detected) orig.push_back(oi);

    EngineT<NewWord> eng;
    eng.pack = cached_or_build<NewWord>(std::move(orig));
    const PackT<NewWord>& pack = *eng.pack;
    eng.states.reserve(pack.runners.size());
    const std::size_t num_dffs = nl_->num_dffs();
    for (std::size_t b = 0; b < pack.runners.size(); ++b) {
      const RunnerT<NewWord>& runner = pack.runners[b];
      const std::size_t lo = b * kPerNew;
      const std::size_t count = std::min<std::size_t>(kPerNew, pack.packed.size() - lo);
      SimBatchStateT<NewWord> s = runner.initial_state();
      // Machine-for-machine state transfer: each sampled DFF starts from
      // the (width-invariant) good value; a fault slot takes its old faulty
      // value where the old runner maintained the DFF. Where it did not,
      // the DFF was outside the old batch's cone-plus-support, so no fault
      // effect can have reached it and the good value IS the faulty value.
      for (std::size_t j = 0; j < num_dffs; ++j) {
        if (!runner.samples_dff(j)) continue;  // never read by the new runner
        const V3 g = good_.state[j].get(0);
        W3T<NewWord> w = W3T<NewWord>::broadcast(g);
        for (std::size_t q = 0; q < count; ++q) {
          const std::size_t op = opack.pos[pack.orig[lo + q]];
          const std::size_t ob = op / kPerOld;
          if (!opack.runners[ob].samples_dff(j)) continue;
          const V3 v = old.states[ob].state[j].get(static_cast<unsigned>(op % kPerOld + 1));
          if (v != g) w.set(static_cast<unsigned>(q + 1), v);
        }
        s.state[j] = w;
      }
      // Launch history (transition model; empty for stuck-at states).
      if (!s.prev_driven.empty()) {
        for (std::size_t q = 0; q < count; ++q) {
          const std::size_t op = opack.pos[pack.orig[lo + q]];
          s.prev_driven[q] = old.states[op / kPerOld].prev_driven[op % kPerOld];
        }
      }
      eng.states.push_back(std::move(s));
    }

    obs::count(obs::Counter::RepackEvents);
    const std::size_t old_cap = old_live_batches * kPerOld;
    const std::size_t new_cap = pack.runners.size() * kPerNew;
    if (old_cap > new_cap) obs::count(obs::Counter::LanesReclaimed, old_cap - new_cap);
    engine_ = std::move(eng);
  }

  // ---- advance ------------------------------------------------------------

  template <class Word>
  std::size_t advance_engine(EngineT<Word>& eng, const SequenceView& view) {
    constexpr std::size_t kPer = PackT<Word>::kPer;
    const PackT<Word>& pack = *eng.pack;

    live_idx_.clear();
    for (std::size_t b = 0; b < eng.states.size(); ++b)
      if (w_any(eng.states[b].live)) live_idx_.push_back(b);
    obs::count(obs::Counter::BatchSkips, eng.states.size() - live_idx_.size());
    std::vector<Word> before(live_idx_.size());

    // Task 0 advances the good machine (kept on the 64-bit word: one
    // machine never needs wide lanes, and its per-gate-word counts are
    // width-invariant); tasks 1.. advance the live batches. Sessions carry
    // their state across chunks, so every advance restarts the per-chunk
    // frame counter and runs without early exit (the state must be valid at
    // the chunk end even when every slot dies mid-chunk).
    ThreadPool& pool = ThreadPool::global();
    if (scratch_.size() < pool.num_workers()) scratch_.resize(pool.num_workers());
    typename RunnerT<Word>::AdvanceOptions opt;
    opt.early_exit = false;
    typename RunnerT<std::uint64_t>::AdvanceOptions good_opt;
    good_opt.early_exit = false;
    pool.parallel_for(live_idx_.size() + 1, [&](std::size_t k, std::size_t w) {
      if (k == 0) {
        good_.frame = 0;
        good_runner_.advance(good_, view, scratch_[w].template get<std::uint64_t>(), good_opt);
        return;
      }
      SimBatchStateT<Word>& s = eng.states[live_idx_[k - 1]];
      before[k - 1] = s.detected_slots;
      s.frame = 0;
      pack.runners[live_idx_[k - 1]].advance(s, view, scratch_[w].template get<Word>(), opt);
    });

    // Deterministic merge, in batch order.
    const std::size_t gained_before = num_detected_;
    for (std::size_t k = 0; k < live_idx_.size(); ++k) {
      const std::size_t b = live_idx_[k];
      const SimBatchStateT<Word>& s = eng.states[b];
      const Word newly = s.detected_slots & ~before[k];
      w_for_each_set(newly, [&](unsigned slot) {
        DetectionRecord& dr = detection_[pack.orig[b * kPer + slot - 1]];
        dr.detected = true;
        dr.time = static_cast<std::uint32_t>(now_ + s.detect_time[slot]);
        ++num_detected_;
      });
    }
    return num_detected_ - gained_before;
  }

  // ---- queries ------------------------------------------------------------

  template <class Word>
  void pair_state_engine(const EngineT<Word>& eng, std::size_t i, State& good, State& faulty,
                         V3* prev_driven) const {
    constexpr std::size_t kPer = PackT<Word>::kPer;
    const PackT<Word>& pack = *eng.pack;
    const std::size_t p = pack.pos[i];
    good.assign(nl_->num_dffs(), V3::X);
    faulty.assign(nl_->num_dffs(), V3::X);
    if (p == kNoPos) {
      // Repacked away: the fault is detected, its machine no longer exists.
      for (std::size_t j = 0; j < good.size(); ++j) good[j] = faulty[j] = good_.state[j].get(0);
      if (prev_driven) *prev_driven = V3::X;
      return;
    }
    const unsigned slot = static_cast<unsigned>(p % kPer + 1);
    const std::size_t b = p / kPer;
    const SimBatchStateT<Word>& s = eng.states[b];
    const RunnerT<Word>& runner = pack.runners[b];
    for (std::size_t j = 0; j < good.size(); ++j) {
      if (runner.samples_dff(j)) {
        good[j] = s.state[j].get(0);
        faulty[j] = s.state[j].get(slot);
      } else {
        // Outside the batch's cone-plus-support the runner does not maintain
        // the DFF; both machines hold the (identical) good-machine value.
        const V3 v = good_.state[j].get(0);
        good[j] = v;
        faulty[j] = v;
      }
    }
    if (prev_driven)
      *prev_driven = (p % kPer) < s.prev_driven.size() ? s.prev_driven[p % kPer] : V3::X;
  }

  // ---- restore ------------------------------------------------------------

  template <class Word>
  void restore_engine(const EngineSnap<Word>& es) {
    // Batches live at capture time get their state back. Batches absent
    // from the snapshot were dead at capture time, so only their live mask
    // matters: a dead batch's machine state is never read (advance skips
    // it, pair_state falls back for detected faults), and the batch can
    // only come back to life through a restore that also carries its state.
    if (EngineT<Word>* cur = std::get_if<EngineT<Word>>(&engine_);
        cur && cur->pack == es.pack) {
      std::size_t k = 0;
      for (std::size_t b = 0; b < cur->states.size(); ++b) {
        if (k < es.live_states.size() && es.live_states[k].first == b) {
          cur->states[b] = es.live_states[k].second;
          ++k;
        } else {
          cur->states[b].live = Word{};
        }
      }
      return;
    }
    // The engine was repacked since the capture: re-install the snapshot's
    // pack (it is immutable and the snapshot keeps it alive).
    EngineT<Word> eng;
    eng.pack = es.pack;
    eng.states.reserve(es.pack->runners.size());
    std::size_t k = 0;
    for (std::size_t b = 0; b < es.pack->runners.size(); ++b) {
      if (k < es.live_states.size() && es.live_states[k].first == b) {
        eng.states.push_back(es.live_states[k].second);
        ++k;
      } else {
        SimBatchStateT<Word> s = es.pack->runners[b].initial_state();
        s.live = Word{};
        eng.states.push_back(std::move(s));
      }
    }
    engine_ = std::move(eng);
  }

  const Netlist* nl_;
  std::shared_ptr<const int> ident_ = std::make_shared<int>(0);  // see CoreSnapshot
  std::shared_ptr<const CompiledNetlist> compiled_;  // shared compile (declared first)
  std::vector<FaultT> faults_;  // original (caller) order
  const char* name_;
  RunnerT<std::uint64_t> good_runner_;  // empty batch: the good machine
  SimBatchStateT<std::uint64_t> good_;
  std::variant<EngineT<std::uint64_t>, EngineT<Simd256>, EngineT<Simd512>> engine_;
  std::vector<DetectionRecord> detection_;  // original order
  std::size_t num_detected_ = 0;
  std::size_t now_ = 0;
  SlotWidth max_width_ = SlotWidth::W64;  // construction-time resolved width
  bool width_auto_ = false;               // may auto-narrow below max_width_
  bool repack_on_ = false;
  // Last pack built per width, so tentative advance/restore churn reuses it.
  std::shared_ptr<const PackT<std::uint64_t>> cache64_;
  std::shared_ptr<const PackT<Simd256>> cache256_;
  std::shared_ptr<const PackT<Simd512>> cache512_;
  // Per-advance scratch, sized once.
  std::vector<std::size_t> live_idx_;
  mutable std::vector<Scratch> scratch_;
};

}  // namespace uniscan
