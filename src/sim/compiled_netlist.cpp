#include "sim/compiled_netlist.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace uniscan {

namespace detail {

std::vector<TypeRun> build_type_runs(std::span<const GateId> order,
                                     std::span<const GateType> type,
                                     std::span<const std::uint32_t> level) {
  std::vector<TypeRun> runs;
  std::uint32_t i = 0;
  const std::uint32_t n = static_cast<std::uint32_t>(order.size());
  while (i < n) {
    const GateType t = type[order[i]];
    const std::uint32_t lv = level[order[i]];
    std::uint32_t j = i + 1;
    while (j < n && type[order[j]] == t && level[order[j]] == lv) ++j;
    runs.push_back(TypeRun{t, lv, i, j});
    i = j;
  }
  return runs;
}

}  // namespace detail

CompiledNetlist::CompiledNetlist(const Netlist& nl) : nl_(&nl) {
  if (!nl.is_finalized()) throw std::invalid_argument("CompiledNetlist: netlist not finalized");

  const std::size_t n = nl.num_gates();
  type_.resize(n);
  level_ = nl.levels();
  fanin_off_.assign(n + 1, 0);
  for (GateId g = 0; g < n; ++g) {
    type_[g] = nl.gate(g).type;
    fanin_off_[g + 1] = fanin_off_[g] + static_cast<std::uint32_t>(nl.gate(g).fanins.size());
  }
  fanin_ids_.reserve(fanin_off_[n]);
  for (GateId g = 0; g < n; ++g)
    fanin_ids_.insert(fanin_ids_.end(), nl.gate(g).fanins.begin(), nl.gate(g).fanins.end());

  // Fanout CSR by counting sort over the fanin table: gate g appears in the
  // fanout row of each of its fanins. Rows come out sorted by reader id.
  fanout_off_.assign(n + 1, 0);
  for (const GateId f : fanin_ids_) ++fanout_off_[f + 1];
  for (std::size_t g = 1; g <= n; ++g) fanout_off_[g] += fanout_off_[g - 1];
  fanout_ids_.resize(fanin_ids_.size());
  {
    std::vector<std::uint32_t> cursor(fanout_off_.begin(), fanout_off_.end() - 1);
    for (GateId g = 0; g < n; ++g)
      for (const GateId f : fanins(g)) fanout_ids_[cursor[f]++] = g;
  }

  // Evaluation order: the combinational core sorted by (level, type, id).
  // nl.topo_order() is already (level, id)-sorted; the extra type key keeps
  // topological validity (no combinational edges within a level) while
  // making homogeneous runs maximal.
  eval_order_ = nl.topo_order();
  std::stable_sort(eval_order_.begin(), eval_order_.end(), [this](GateId a, GateId b) {
    if (level_[a] != level_[b]) return level_[a] < level_[b];
    if (type_[a] != type_[b]) return type_[a] < type_[b];
    return a < b;
  });

  std::uint32_t max_level = 0;
  for (const GateId g : eval_order_) max_level = std::max(max_level, level_[g]);
  level_begin_.assign(max_level + 2, 0);
  for (const GateId g : eval_order_) ++level_begin_[level_[g] + 1];
  for (std::size_t l = 1; l < level_begin_.size(); ++l) level_begin_[l] += level_begin_[l - 1];

  runs_ = detail::build_type_runs(eval_order_, type_, level_);

  inputs_ = nl.inputs();
  outputs_ = nl.outputs();
  dffs_ = nl.dffs();
  dff_d_.reserve(dffs_.size());
  for (const GateId d : dffs_) dff_d_.push_back(nl.gate(d).fanins.empty() ? kNoGate : nl.gate(d).fanins[0]);
}

void CompiledNetlist::eval_full_v3(V3* values) const noexcept {
  detail::eval_type_runs<detail::V3Ops>(runs_, eval_order_.data(), fanin_off_.data(),
                                        fanin_ids_.data(), values);
}

void CompiledNetlist::eval_full_w3(W3* values) const noexcept {
  detail::eval_type_runs<detail::W3Ops>(runs_, eval_order_.data(), fanin_off_.data(),
                                        fanin_ids_.data(), values);
}

void CompiledNetlist::eval_runs_v3(std::span<const TypeRun> runs, const GateId* order,
                                   V3* values) const noexcept {
  detail::eval_type_runs<detail::V3Ops>(runs, order, fanin_off_.data(), fanin_ids_.data(), values);
}

void CompiledNetlist::eval_runs_w3(std::span<const TypeRun> runs, const GateId* order,
                                   W3* values) const noexcept {
  detail::eval_type_runs<detail::W3Ops>(runs, order, fanin_off_.data(), fanin_ids_.data(), values);
}

V3 CompiledNetlist::eval_gate_v3_at(GateId g, const V3* values) const noexcept {
  return detail::eval_gate_generic<detail::V3Ops>(type_[g], fanin_ids_.data(), fanin_off_[g],
                                                  fanin_off_[g + 1], values);
}

W3 CompiledNetlist::eval_gate_w3_at(GateId g, const W3* values) const noexcept {
  return eval_gate_w3t_at<std::uint64_t>(g, values);
}

BatchProgram CompiledNetlist::build_program(std::span<const GateId> sites,
                                            std::span<const GateId> forced, bool prune) const {
  BatchProgram p;
  const std::size_t n = num_gates();
  // An empty batch (the good-machine runner) has no cone; it must still
  // produce full good values, so pruning is disabled for it.
  p.pruned = prune && !sites.empty();

  // needed[g]: gate must be evaluated (comb) or sampled (DFF) each frame.
  // cone[g]: a fault effect can reach g — only these POs/DFFs can observe.
  std::vector<std::uint8_t> cone, needed;
  if (p.pruned) {
    cone.assign(n, 0);
    // Forward closure of the fault sites over fanout edges. DFF crossings
    // are included: an effect latched into a DFF re-enters through its Q
    // output in later frames, so the cone is frame-independent.
    std::vector<GateId> stack(sites.begin(), sites.end());
    for (const GateId s : sites) cone[s] = 1;
    while (!stack.empty()) {
      const GateId g = stack.back();
      stack.pop_back();
      for (const GateId r : fanouts(g))
        if (!cone[r]) {
          cone[r] = 1;
          stack.push_back(r);
        }
    }
    // Backward support: every net read while evaluating a cone gate (or
    // sampling a cone DFF) must hold its correct good value, and therefore
    // so must its own transitive fanins. Inputs/DFF Q values are frame
    // boundary values; a support DFF must be *sampled* each frame so its
    // next-frame Q is fresh.
    needed = cone;
    std::vector<GateId> bstack;
    for (GateId g = 0; g < n; ++g)
      if (cone[g])
        for (const GateId f : fanins(g))
          if (!needed[f]) {
            needed[f] = 1;
            bstack.push_back(f);
          }
    while (!bstack.empty()) {
      const GateId g = bstack.back();
      bstack.pop_back();
      for (const GateId f : fanins(g))
        if (!needed[f]) {
          needed[f] = 1;
          bstack.push_back(f);
        }
    }
  }

  const auto in_plan = [&](GateId g) { return !p.pruned || needed[g]; };

  std::vector<std::uint8_t> is_forced(n, 0);
  for (const GateId g : forced) is_forced[g] = 1;

  p.eval.reserve(p.pruned ? 0 : eval_order_.size());
  for (const GateId g : eval_order_)
    if (in_plan(g) && !is_forced[g]) p.eval.push_back(g);
  p.runs = detail::build_type_runs(p.eval, type_, level_);

  // Forced gates sorted level-ascending (stable on caller order). They are
  // always evaluated — an injection site is a fault site, hence in-cone.
  std::vector<std::uint32_t> fidx(forced.size());
  for (std::uint32_t i = 0; i < forced.size(); ++i) fidx[i] = i;
  std::stable_sort(fidx.begin(), fidx.end(), [&](std::uint32_t a, std::uint32_t b) {
    return level_[forced[a]] < level_[forced[b]];
  });
  p.forced_order = std::move(fidx);
  p.forced_level.reserve(forced.size());
  for (const std::uint32_t i : p.forced_order) p.forced_level.push_back(level_[forced[i]]);

  for (const GateId po : outputs_)
    if (!p.pruned || cone[po]) p.obs_po.push_back(po);

  p.dff_sampled.assign(dffs_.size(), 0);
  for (std::uint32_t j = 0; j < dffs_.size(); ++j) {
    const GateId d = dffs_[j];
    if (in_plan(d)) {
      p.samp_dff.push_back(j);
      p.dff_sampled[j] = 1;
    }
    if (!p.pruned || cone[d]) p.latch_dff.push_back(j);
  }

  p.evals_per_frame = p.eval.size() + forced.size();
  return p;
}

std::shared_ptr<const CompiledNetlist> Netlist::compiled_shared() const {
  std::lock_guard<std::mutex> lock(compiled_slot_.mutex);
  if (!compiled_slot_.ptr) {
    compiled_slot_.ptr = std::make_shared<const CompiledNetlist>(*this);
  }
  return compiled_slot_.ptr;
}

}  // namespace uniscan
