// Streaming fault simulation session.
//
// The sequential test generator extends one global test sequence T by
// subsequences. Re-simulating T from power-up after every extension would be
// quadratic, so the session keeps the good and faulty machine states of the
// whole fault universe (63 faulty machines + the good machine per W3 batch)
// and advances them incrementally. Candidate subsequences can be evaluated
// tentatively via snapshot/restore.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "sim/fault_sim.hpp"
#include "sim/sequence.hpp"
#include "sim/sequential_sim.hpp"

namespace uniscan {

class FaultSimSession {
 public:
  /// The session references (not copies) `nl` and `faults`; both must
  /// outlive it.
  FaultSimSession(const Netlist& nl, std::span<const Fault> faults);

  /// Advance all machines by the vectors of `chunk` (which must be fully
  /// specified — no X primary inputs — so that detections are real).
  /// Returns the number of newly detected faults.
  std::size_t advance(const TestSequence& chunk);

  /// Current clock cycle (total vectors advanced so far).
  std::size_t now() const noexcept { return now_; }

  std::size_t num_faults() const noexcept { return faults_.size(); }
  bool is_detected(std::size_t fault_index) const { return detection_[fault_index].detected; }
  const std::vector<DetectionRecord>& detections() const noexcept { return detection_; }
  std::size_t num_detected() const noexcept { return num_detected_; }

  /// Good-machine state entering the next frame.
  State good_state() const;

  /// (good, faulty) state pair of fault `fault_index` entering the next
  /// frame; faulty == good wherever no effect is latched.
  void pair_state(std::size_t fault_index, State& good, State& faulty) const;

  struct Snapshot {
    std::vector<std::vector<W3>> states;
    std::vector<std::uint64_t> live;
    std::vector<DetectionRecord> detection;
    std::size_t num_detected;
    std::size_t now;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& s);

 private:
  struct Batch {
    std::vector<Fault> faults;          // <= 63
    std::vector<W3> state;              // per DFF
    std::uint64_t live = 0;             // undetected slots (bit 1..63)
    // Injection tables (fixed per batch).
    std::vector<std::uint64_t> stem_set0, stem_set1;  // per gate
    struct BranchForce {
      GateId gate;
      std::int16_t pin;
      std::uint64_t set0, set1;
    };
    std::vector<BranchForce> branches;
    std::vector<std::uint8_t> has_branch;  // per gate
    std::size_t first_fault_index = 0;     // index of slot-1 fault in the universe
  };

  void advance_batch(Batch& b, const TestSequence& chunk);

  const Netlist* nl_;
  std::vector<Fault> faults_;
  std::vector<Batch> batches_;
  std::vector<DetectionRecord> detection_;
  std::size_t num_detected_ = 0;
  std::size_t now_ = 0;
  mutable std::vector<W3> values_;  // scratch per net
};

}  // namespace uniscan
