// Streaming fault simulation session.
//
// The sequential test generator extends one global test sequence T by
// subsequences. Re-simulating T from power-up after every extension would be
// quadratic, so the session keeps the good and faulty machine states of the
// whole fault universe and advances them incrementally. Candidate
// subsequences can be evaluated tentatively via snapshot/restore.
//
// The session is built on the same engine shape as the compaction engine
// (DESIGN.md §5c/§5d): one FaultSimulator::BatchRunner + SimBatchState per
// 63-fault batch, packed hardest-first (sim/fault_order.hpp) so batches
// whose faults are all detected go cold early and are skipped without
// simulation; the live batches of every advance() fan out across
// ThreadPool::global(). Each batch writes only its own state and detection
// slots and the merge runs serially in batch order, so results are
// bit-identical at every thread count.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "sim/checkpoint.hpp"
#include "sim/fault_sim.hpp"
#include "sim/sequence.hpp"
#include "sim/sequential_sim.hpp"

namespace uniscan {

class FaultSimSession {
 public:
  /// The session references (not copies) `nl`; it must outlive the session.
  FaultSimSession(const Netlist& nl, std::span<const Fault> faults);

  /// Advance all machines by the vectors of `chunk` (which must be fully
  /// specified — no X primary inputs — so that detections are real).
  /// Returns the number of newly detected faults.
  std::size_t advance(const TestSequence& chunk);

  /// Current clock cycle (total vectors advanced so far).
  std::size_t now() const noexcept { return now_; }

  std::size_t num_faults() const noexcept { return faults_.size(); }
  bool is_detected(std::size_t fault_index) const { return detection_[fault_index].detected; }
  const std::vector<DetectionRecord>& detections() const noexcept { return detection_; }
  std::size_t num_detected() const noexcept { return num_detected_; }

  /// Compiled form of the netlist, shared by all of the session's runners
  /// (and reusable by FrameModels targeting the same circuit).
  const CompiledNetlist& compiled() const noexcept { return compiled_; }

  /// Good-machine state entering the next frame.
  State good_state() const;

  /// (good, faulty) state pair of fault `fault_index` entering the next
  /// frame; faulty == good wherever no effect is latched.
  void pair_state(std::size_t fault_index, State& good, State& faulty) const;

  /// Resumable session state. Only batches that were live (some fault still
  /// undetected) at capture time carry a machine state: a batch dead at
  /// capture time was dead — and therefore skipped, untouched — ever since
  /// it died, and a batch can only return to life through a restore that
  /// also restores its state.
  struct Snapshot {
    SimBatchState good;
    std::vector<std::pair<std::size_t, SimBatchState>> live_states;
    std::vector<DetectionRecord> detection;
    std::size_t num_detected;
    std::size_t now;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& s);

 private:
  const Netlist* nl_;
  CompiledNetlist compiled_;            // shared by all runners (declared first)
  std::vector<Fault> faults_;           // original (caller) order
  std::vector<std::size_t> order_;      // packed position -> original index
  std::vector<std::size_t> pos_;        // original index -> packed position
  std::vector<Fault> packed_;           // faults_[order_[..]]; runners reference it
  std::vector<FaultSimulator::BatchRunner> runners_;  // one per 63-fault batch
  std::vector<SimBatchState> states_;
  FaultSimulator::BatchRunner good_runner_;  // empty batch: the good machine
  SimBatchState good_;
  std::vector<DetectionRecord> detection_;  // original order
  std::size_t num_detected_ = 0;
  std::size_t now_ = 0;
  // Per-advance scratch, sized once: live batch list, pre-advance detected
  // masks, per-worker net values.
  std::vector<std::size_t> live_idx_;
  std::vector<std::uint64_t> before_;
  std::vector<std::vector<W3>> scratch_;
};

}  // namespace uniscan
