// Streaming fault simulation session.
//
// The sequential test generator extends one global test sequence T by
// subsequences. Re-simulating T from power-up after every extension would be
// quadratic, so the session keeps the good and faulty machine states of the
// whole fault universe and advances them incrementally. Candidate
// subsequences can be evaluated tentatively via snapshot/restore.
//
// The session is built on the shared SessionCoreT engine (DESIGN.md
// §5c/§5d/§5j): one FaultSimulator::BatchRunnerT + SimBatchStateT per fault
// batch (63/255/511 faults per batch — see sim/slot_word.hpp), packed
// hardest-first (sim/fault_order.hpp) so batches whose faults are all
// detected go cold early and are skipped without simulation; the live
// batches of every advance() fan out across ThreadPool::global(). With
// repacking enabled (engine.hpp, the default) the core additionally repacks
// surviving faults into dense batches between advances and auto-narrows the
// slot word as the live population shrinks. Each batch writes only its own
// state and detection slots and the merge runs serially in batch order, so
// results are bit-identical at every thread count — and at every width and
// with repacking on or off, because per-fault detection is a pure function
// of that fault's slot.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "sim/checkpoint.hpp"
#include "sim/fault_sim.hpp"
#include "sim/sequence.hpp"
#include "sim/sequential_sim.hpp"

namespace uniscan {

class FaultSimSession {
 public:
  /// The session references (not copies) `nl`; it must outlive the session.
  FaultSimSession(const Netlist& nl, std::span<const Fault> faults);
  ~FaultSimSession();
  FaultSimSession(FaultSimSession&&) noexcept;
  FaultSimSession& operator=(FaultSimSession&&) noexcept;

  /// Advance all machines by the vectors of `chunk` (which must be fully
  /// specified — no X primary inputs — so that detections are real).
  /// Returns the number of newly detected faults.
  std::size_t advance(const TestSequence& chunk);

  /// Current clock cycle (total vectors advanced so far).
  std::size_t now() const noexcept;

  std::size_t num_faults() const noexcept;
  bool is_detected(std::size_t fault_index) const;
  const std::vector<DetectionRecord>& detections() const noexcept;
  std::size_t num_detected() const noexcept;

  /// Compiled form of the netlist, shared by all of the session's runners
  /// (and reusable by FrameModels targeting the same circuit).
  const CompiledNetlist& compiled() const noexcept;

  /// Good-machine state entering the next frame.
  State good_state() const;

  /// (good, faulty) state pair of fault `fault_index` entering the next
  /// frame; faulty == good wherever no effect is latched.
  void pair_state(std::size_t fault_index, State& good, State& faulty) const;

  /// Opaque resumable session state. Only batches that were live (some fault
  /// still undetected) at capture time carry a machine state: a batch dead
  /// at capture time was dead — and therefore skipped, untouched — ever
  /// since it died, and a batch can only return to life through a restore
  /// that also restores its state. The snapshot pins the batch pack it was
  /// captured under, so restoring across an intervening repack (even one
  /// that changed the slot width) re-installs that exact pack. Copyable;
  /// only valid for the session that produced it — restoring into a
  /// different session throws std::invalid_argument.
  class Snapshot {
   public:
    Snapshot() = default;

   private:
    friend class FaultSimSession;
    std::shared_ptr<const void> state_;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& s);

  /// Implementation (the shared SessionCoreT engine; public so the
  /// definition in fault_sim_session.cpp can name it; not part of the
  /// session's API).
  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace uniscan
