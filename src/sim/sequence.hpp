// Test sequences: the central object of the unified approach.
//
// A TestSequence is an ordered list of primary-input vectors for a
// (finalized) netlist. For a scan circuit C_scan the scan_sel / scan_inp
// lines are ordinary columns of the sequence — exactly the paper's view.
// Values are three-valued; 'x' entries are free and may be filled randomly
// before application.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/logic3.hpp"
#include "util/rng.hpp"

namespace uniscan {

class TestSequence {
 public:
  TestSequence() = default;
  explicit TestSequence(std::size_t num_inputs) : num_inputs_(num_inputs) {}

  std::size_t num_inputs() const noexcept { return num_inputs_; }
  std::size_t length() const noexcept { return vectors_.size(); }
  bool empty() const noexcept { return vectors_.empty(); }

  /// Append an all-X vector and return its index.
  std::size_t append_x() {
    vectors_.emplace_back(num_inputs_, V3::X);
    return vectors_.size() - 1;
  }

  /// Append a fully specified vector (must have num_inputs entries).
  void append(std::vector<V3> vec);

  /// Append every vector of `other` (input counts must match).
  void append_sequence(const TestSequence& other);

  V3 at(std::size_t time, std::size_t input) const { return vectors_[time][input]; }
  void set(std::size_t time, std::size_t input, V3 v) { vectors_[time][input] = v; }

  const std::vector<V3>& vector_at(std::size_t time) const { return vectors_[time]; }
  std::vector<V3>& vector_at(std::size_t time) { return vectors_[time]; }

  /// Remove the vector at `time`.
  void erase(std::size_t time) { vectors_.erase(vectors_.begin() + static_cast<std::ptrdiff_t>(time)); }

  /// Truncate to the first `new_length` vectors.
  void truncate(std::size_t new_length);

  /// Replace every X entry with a random 0/1 draw.
  void random_fill(Rng& rng);

  /// Replace every X entry with `fill`.
  void constant_fill(V3 fill);

  /// Replace every X entry with the previous vector's value in the same
  /// column (0 for the first vector) — minimizes input transitions.
  void repeat_fill();

  /// Number of vectors in which column `input` has the value 1.
  std::size_t count_ones(std::size_t input) const;

  /// Sequence consisting of the vectors whose indices are in `keep`
  /// (indices must be strictly increasing).
  TestSequence select(const std::vector<std::size_t>& keep) const;

  /// Render as rows of 0/1/x characters, one vector per line.
  std::string to_string() const;

  /// Parse from rows of 0/1/x characters (whitespace ignored inside a row);
  /// used by tests to state expected sequences compactly.
  static TestSequence from_rows(std::size_t num_inputs, const std::vector<std::string>& rows);

  bool operator==(const TestSequence&) const = default;

 private:
  std::size_t num_inputs_ = 0;
  std::vector<std::vector<V3>> vectors_;
};

}  // namespace uniscan
