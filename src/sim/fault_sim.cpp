#include "sim/fault_sim.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "sim/sequential_sim.hpp"

namespace uniscan {

namespace {

/// Slot-forcing masks for fault injection. Slots listed in set0 are forced
/// to 0, slots in set1 forced to 1; set0 & set1 == 0.
struct Forcing {
  std::uint64_t set0 = 0;
  std::uint64_t set1 = 0;

  W3 apply(W3 w) const noexcept {
    const std::uint64_t touched = set0 | set1;
    return W3{(w.v0 & ~touched) | set0, (w.v1 & ~touched) | set1};
  }
  bool empty() const noexcept { return (set0 | set1) == 0; }
};

}  // namespace

FaultSimulator::FaultSimulator(const Netlist& nl) : nl_(&nl) {
  if (!nl.is_finalized()) throw std::invalid_argument("FaultSimulator: netlist not finalized");
  values_.assign(nl.num_gates(), W3::all_x());
}

FaultSimulator::BatchResult FaultSimulator::run_batch(const TestSequence& seq,
                                                      std::span<const Fault> faults,
                                                      std::span<LatchRecord> latched,
                                                      bool early_exit,
                                                      std::uint32_t count_cap) const {
  const Netlist& nl = *nl_;
  if (faults.size() > 63) throw std::invalid_argument("run_batch: batch too large");

  // Injection tables for this batch. Stem forcing is indexed by gate;
  // branch forcing is a small list per affected gate.
  std::vector<Forcing> stem(nl.num_gates());
  // (gate, pin) -> forcing, stored as parallel arrays for cache friendliness.
  struct BranchForce {
    GateId gate;
    std::int16_t pin;
    Forcing force;
  };
  std::vector<BranchForce> branches;
  std::vector<std::uint8_t> has_branch(nl.num_gates(), 0);

  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Fault& f = faults[i];
    const std::uint64_t bit = 1ULL << (i + 1);  // slot 0 is the good machine
    if (f.pin == kStemPin) {
      (f.stuck_one ? stem[f.gate].set1 : stem[f.gate].set0) |= bit;
    } else {
      BranchForce* bf = nullptr;
      for (auto& b : branches)
        if (b.gate == f.gate && b.pin == f.pin) bf = &b;
      if (!bf) {
        branches.push_back(BranchForce{f.gate, f.pin, {}});
        bf = &branches.back();
        has_branch[f.gate] = 1;
      }
      (f.stuck_one ? bf->force.set1 : bf->force.set0) |= bit;
    }
  }

  const auto branch_force = [&](GateId g, std::size_t pin, W3 w) -> W3 {
    for (const auto& b : branches)
      if (b.gate == g && b.pin == static_cast<std::int16_t>(pin)) return b.force.apply(w);
    return w;
  };

  // Mask of live (not-yet-detected) fault slots; bit 0 (good machine) stays 0.
  std::uint64_t live = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) live |= 1ULL << (i + 1);

  BatchResult result;
  for (auto& c : result.detect_count) c = 0;
  std::vector<W3> state(nl.num_dffs(), W3::all_x());
  std::vector<W3>& values = values_;
  W3 fanin_buf[64];

  for (std::size_t t = 0; t < seq.length(); ++t) {
    // Boundary values (with stem forcing on PIs and DFF outputs).
    const auto& vec = seq.vector_at(t);
    for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
      const GateId pi = nl.inputs()[i];
      values[pi] = stem[pi].apply(W3::broadcast(vec[i]));
    }
    for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
      const GateId ff = nl.dffs()[j];
      values[ff] = stem[ff].apply(state[j]);
    }

    // Combinational evaluation in topological order.
    for (GateId g : nl.topo_order()) {
      const Gate& gate = nl.gate(g);
      const std::size_t n = gate.fanins.size();
      if (has_branch[g]) {
        for (std::size_t p = 0; p < n; ++p)
          fanin_buf[p] = branch_force(g, p, values[gate.fanins[p]]);
      } else {
        for (std::size_t p = 0; p < n; ++p) fanin_buf[p] = values[gate.fanins[p]];
      }
      values[g] = stem[g].apply(eval_gate_w3(gate.type, fanin_buf, n));
    }
    gate_evals_ += nl.topo_order().size();

    // Detection at primary outputs. A frame contributes at most one count
    // per fault even if several outputs expose it.
    std::uint64_t observed_this_frame = 0;
    for (GateId po : nl.outputs()) {
      const W3 w = values[po];
      const bool good0 = (w.v0 & 1) != 0;
      const bool good1 = (w.v1 & 1) != 0;
      if (good1) observed_this_frame |= w.v0 & live;
      else if (good0) observed_this_frame |= w.v1 & live;
    }
    while (observed_this_frame) {
      const unsigned slot = static_cast<unsigned>(std::countr_zero(observed_this_frame));
      observed_this_frame &= observed_this_frame - 1;
      if (!(result.detected_slots & (1ULL << slot))) {
        result.detected_slots |= 1ULL << slot;
        result.detect_time[slot] = static_cast<std::uint32_t>(t);
      }
      if (++result.detect_count[slot] >= count_cap) live &= ~(1ULL << slot);
    }

    if (early_exit && live == 0) break;

    // Next state (with branch forcing on DFF D pins).
    for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
      const GateId ff = nl.dffs()[j];
      W3 d = values[nl.gate(ff).fanins[0]];
      if (has_branch[ff]) d = branch_force(ff, 0, d);
      state[j] = d;
    }

    // Latched fault effects: faulty slot differs (known vs opposite known)
    // from the good machine in the state entering frame t+1.
    if (!latched.empty()) {
      for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
        const W3 w = state[j];
        const bool good0 = (w.v0 & 1) != 0;
        const bool good1 = (w.v1 & 1) != 0;
        std::uint64_t diff = 0;
        if (good1) diff = w.v0;
        else if (good0) diff = w.v1;
        diff &= ~1ULL;
        while (diff) {
          const unsigned slot = static_cast<unsigned>(std::countr_zero(diff));
          diff &= diff - 1;
          LatchRecord& lr = latched[slot - 1];
          // Keep the occurrence deepest in the chain (fewest flush shifts).
          if (!lr.latched || j >= lr.ff_index) {
            lr.latched = true;
            lr.ff_index = static_cast<std::uint32_t>(j);
            lr.time = static_cast<std::uint32_t>(t);
          }
        }
      }
    }
  }

  return result;
}

std::vector<DetectionRecord> FaultSimulator::run(const TestSequence& seq,
                                                 std::span<const Fault> faults,
                                                 std::vector<LatchRecord>* latched) const {
  std::vector<DetectionRecord> out(faults.size());
  if (latched) latched->assign(faults.size(), LatchRecord{});

  for (std::size_t base = 0; base < faults.size(); base += 63) {
    const std::size_t count = std::min<std::size_t>(63, faults.size() - base);
    std::span<LatchRecord> latch_span;
    if (latched) latch_span = std::span<LatchRecord>(latched->data() + base, count);
    const BatchResult br =
        run_batch(seq, faults.subspan(base, count), latch_span, /*early_exit=*/latched == nullptr);
    for (std::size_t i = 0; i < count; ++i) {
      const unsigned slot = static_cast<unsigned>(i + 1);
      if (br.detected_slots & (1ULL << slot)) {
        out[base + i].detected = true;
        out[base + i].time = br.detect_time[slot];
      }
    }
  }
  return out;
}

bool FaultSimulator::detects_all(const TestSequence& seq, std::span<const Fault> faults) const {
  for (std::size_t base = 0; base < faults.size(); base += 63) {
    const std::size_t count = std::min<std::size_t>(63, faults.size() - base);
    const BatchResult br =
        run_batch(seq, faults.subspan(base, count), {}, /*early_exit=*/true);
    std::uint64_t want = 0;
    for (std::size_t i = 0; i < count; ++i) want |= 1ULL << (i + 1);
    if ((br.detected_slots & want) != want) return false;
  }
  return true;
}

std::vector<std::uint32_t> FaultSimulator::run_counts(const TestSequence& seq,
                                                      std::span<const Fault> faults,
                                                      std::uint32_t cap) const {
  std::vector<std::uint32_t> counts(faults.size(), 0);
  if (cap == 0) return counts;
  for (std::size_t base = 0; base < faults.size(); base += 63) {
    const std::size_t count = std::min<std::size_t>(63, faults.size() - base);
    const BatchResult br =
        run_batch(seq, faults.subspan(base, count), {}, /*early_exit=*/true, cap);
    for (std::size_t i = 0; i < count; ++i)
      counts[base + i] = br.detect_count[i + 1];
  }
  return counts;
}

std::vector<std::size_t> FaultSimulator::detected_indices(const TestSequence& seq,
                                                          std::span<const Fault> faults) const {
  std::vector<std::size_t> out;
  const auto records = run(seq, faults);
  for (std::size_t i = 0; i < records.size(); ++i)
    if (records[i].detected) out.push_back(i);
  return out;
}

}  // namespace uniscan
