#include "sim/fault_sim.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>
#include <stdexcept>

#include "obs/counters.hpp"
#include "sim/sequential_sim.hpp"
#include "util/thread_pool.hpp"

namespace uniscan {

// ---------------------------------------------------------------------------
// BatchRunnerT

template <class Word>
FaultSimulator::BatchRunnerT<Word>::BatchRunnerT(const CompiledNetlist& cnl,
                                                 std::span<const Fault> faults)
    : cnl_(&cnl), nl_(&cnl.netlist()), faults_(faults), engine_(global_sim_engine()) {
  if (faults.size() > kSlots - 1) throw std::invalid_argument("BatchRunner: batch too large");
  const std::size_t n = cnl.num_gates();
  stem_.assign(n, Forcing{});
  branch_head_.assign(n, -1);

  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Fault& f = faults[i];
    const unsigned slot = static_cast<unsigned>(i + 1);  // slot 0 is the good machine
    w_set(slot_mask_, slot);
    if (f.pin == kStemPin) {
      w_set(f.stuck_one ? stem_[f.gate].set1 : stem_[f.gate].set0, slot);
    } else {
      // Per-gate intrusive chain instead of one flat list: lookup during
      // simulation is O(branches on this gate), not O(branches in batch).
      std::int32_t idx = branch_head_[f.gate];
      while (idx >= 0 && branches_[static_cast<std::size_t>(idx)].pin != f.pin)
        idx = branches_[static_cast<std::size_t>(idx)].next;
      if (idx < 0) {
        branches_.push_back(BranchForce{f.pin, branch_head_[f.gate], Forcing{}});
        branch_head_[f.gate] = static_cast<std::int32_t>(branches_.size() - 1);
        idx = branch_head_[f.gate];
      }
      Forcing& force = branches_[static_cast<std::size_t>(idx)].force;
      w_set(f.stuck_one ? force.set1 : force.set0, slot);
    }
  }

  if (engine_ == SimEngine::Levelized) return;  // legacy path needs no program

  // Combinational gates carrying a branch (pin) injection leave the tight
  // type runs and are evaluated individually; a stem-only site keeps its
  // type-run evaluation and just has the output forcing patched on
  // afterwards (the fast path — a patch is two mask ops instead of a full
  // per-gate re-evaluation every frame). Boundary-gate stem forcing is
  // applied while loading boundary values, DFF D-pin branch forcing while
  // sampling.
  std::vector<GateId> sites;
  sites.reserve(faults.size());
  std::vector<GateId> patched;
  std::vector<std::uint8_t> mark(n, 0);
  for (const Fault& f : faults_) {
    sites.push_back(f.gate);
    if (mark[f.gate]) continue;
    mark[f.gate] = 1;
    if (!is_combinational(cnl.type(f.gate))) continue;
    if (branch_head_[f.gate] >= 0) forced_.push_back(f.gate);
    else if (stem_[f.gate].any()) patched.push_back(f.gate);
  }

  prog_ = cnl.build_program(sites, forced_, global_cone_pruning());

  // Level-ascending merge of the two fixup streams. A fixup at level L runs
  // after the type runs of level <= L (so a patch sees its own run-computed
  // value, and a forced gate sees all its fanins), before any higher run.
  std::stable_sort(patched.begin(), patched.end(),
                   [&](GateId a, GateId b) { return cnl.level(a) < cnl.level(b); });
  {
    const std::size_t nf = prog_.forced_order.size();
    std::size_t fi = 0, pi = 0;
    constexpr auto kMax = std::numeric_limits<std::uint32_t>::max();
    while (fi < nf || pi < patched.size()) {
      const std::uint32_t flv = fi < nf ? prog_.forced_level[fi] : kMax;
      const std::uint32_t plv = pi < patched.size() ? cnl.level(patched[pi]) : kMax;
      if (plv < flv) {
        fix_idx_.push_back(patched[pi++]);
        fix_level_.push_back(plv);
        fix_patch_.push_back(1);
      } else {
        fix_idx_.push_back(prog_.forced_order[fi++]);
        fix_level_.push_back(flv);
        fix_patch_.push_back(0);
      }
    }
  }

  // Flat per-pin force tables: one Forcing per fanin pin of each forced
  // gate, identity where no branch fault sits on that pin.
  pin_off_.assign(forced_.size() + 1, 0);
  for (std::size_t k = 0; k < forced_.size(); ++k)
    pin_off_[k + 1] = pin_off_[k] + static_cast<std::uint32_t>(cnl.fanin_count(forced_[k]));
  pin_force_.assign(pin_off_.back(), Forcing{});
  for (std::size_t k = 0; k < forced_.size(); ++k) {
    for (std::int32_t idx = branch_head_[forced_[k]]; idx >= 0;
         idx = branches_[static_cast<std::size_t>(idx)].next) {
      const BranchForce& b = branches_[static_cast<std::size_t>(idx)];
      pin_force_[pin_off_[k] + static_cast<std::uint32_t>(b.pin)] = b.force;
    }
  }
  // Identity flags hoisted out of the per-frame loop: eval_forced branches
  // on a byte instead of reducing the force masks every call.
  pin_any_.assign(pin_force_.size(), 0);
  for (std::size_t i = 0; i < pin_force_.size(); ++i) pin_any_[i] = pin_force_[i].any();
  forced_stem_.assign(forced_.size(), 0);
  for (std::size_t k = 0; k < forced_.size(); ++k) forced_stem_[k] = stem_[forced_[k]].any();

  dff_force_.assign(cnl.dffs().size(), Forcing{});
  for (std::size_t j = 0; j < cnl.dffs().size(); ++j) {
    for (std::int32_t idx = branch_head_[cnl.dffs()[j]]; idx >= 0;
         idx = branches_[static_cast<std::size_t>(idx)].next) {
      const BranchForce& b = branches_[static_cast<std::size_t>(idx)];
      if (b.pin == 0) dff_force_[j] = b.force;
    }
  }

  if (engine_ == SimEngine::Event) {
    in_plan_.assign(n, 0);
    for (const GateId g : prog_.eval) in_plan_[g] = 1;
    for (const GateId g : forced_) in_plan_[g] = 1;
    buckets_.assign(cnl.num_levels(), {});
    queued_.assign(n, 0);
  }
}

template <class Word>
W3T<Word> FaultSimulator::BatchRunnerT<Word>::branch_force(GateId g, std::size_t pin,
                                                           W3T<Word> w) const noexcept {
  for (std::int32_t idx = branch_head_[g]; idx >= 0;
       idx = branches_[static_cast<std::size_t>(idx)].next) {
    const BranchForce& b = branches_[static_cast<std::size_t>(idx)];
    if (b.pin == static_cast<std::int16_t>(pin)) return b.force.apply(w);
  }
  return w;
}

template <class Word>
W3T<Word> FaultSimulator::BatchRunnerT<Word>::eval_forced(std::size_t k,
                                                          const W3T<Word>* values) const noexcept {
  // The hottest per-frame path after the type runs: one call per forced
  // gate per frame, and the number of forced gates per batch grows with the
  // slot width. Fanins stream straight into the accumulator — no staging
  // buffer — and only pins that actually carry a branch injection pay the
  // forcing masks (most are identity).
  using W = W3T<Word>;
  const GateId g = forced_[k];
  const auto fan = cnl_->fanins(g);
  const Forcing* pf = pin_force_.data() + pin_off_[k];
  const std::uint8_t* pa = pin_any_.data() + pin_off_[k];
  const auto in = [&](std::size_t p) noexcept {
    const W w = values[fan[p]];
    return pa[p] ? pf[p].apply(w) : w;
  };
  const GateType t = cnl_->type(g);
  W out;
  switch (t) {
    case GateType::Buf: out = in(0); break;
    case GateType::Not: out = w3_not(in(0)); break;
    case GateType::And:
    case GateType::Nand: {
      W acc = in(0);
      for (std::size_t p = 1; p < fan.size(); ++p) acc = w3_and(acc, in(p));
      out = t == GateType::Nand ? w3_not(acc) : acc;
      break;
    }
    case GateType::Or:
    case GateType::Nor: {
      W acc = in(0);
      for (std::size_t p = 1; p < fan.size(); ++p) acc = w3_or(acc, in(p));
      out = t == GateType::Nor ? w3_not(acc) : acc;
      break;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      W acc = in(0);
      for (std::size_t p = 1; p < fan.size(); ++p) acc = w3_xor(acc, in(p));
      out = t == GateType::Xnor ? w3_not(acc) : acc;
      break;
    }
    case GateType::Mux2: out = w3_mux(in(0), in(1), in(2)); break;
    case GateType::Const0: out = W::all_zero(); break;
    case GateType::Const1: out = W::all_one(); break;
    case GateType::Input:
    case GateType::Dff: out = W::all_x(); break;  // forced gates are combinational
  }
  return forced_stem_[k] ? stem_[g].apply(out) : out;
}

template <class Word>
void FaultSimulator::BatchRunnerT<Word>::enqueue_fanouts(GateId g) const {
  for (const GateId fo : cnl_->fanouts(g)) {
    if (!is_combinational(cnl_->type(fo))) continue;  // DFFs sampled at frame end
    if (!in_plan_[fo] || queued_[fo]) continue;
    queued_[fo] = 1;
    buckets_[cnl_->level(fo)].push_back(fo);
  }
}

template <class Word>
SimBatchStateT<Word> FaultSimulator::BatchRunnerT<Word>::initial_state() const {
  State s;
  s.live = slot_mask_;
  s.state.assign(nl_->num_dffs(), W3T<Word>::all_x());
  return s;
}

template <class Word>
std::uint64_t FaultSimulator::BatchRunnerT<Word>::advance(State& s, const SequenceView& view,
                                                          std::vector<W3T<Word>>& values,
                                                          const AdvanceOptions& opt) const {
  const std::size_t start_frame = s.frame;
  const std::uint64_t evals = engine_ == SimEngine::Levelized
                                  ? advance_levelized(s, view, values, opt)
                                  : advance_kernel(s, view, values, opt);
  // Single telemetry choke point: every fault-simulation consumer (one-shot
  // runs, sessions, compaction trials) advances through here, so GateEvals
  // needs no per-object plumbing. ConePruneHits counts the gate-word
  // evaluations the pruned program avoided versus the full evaluation order
  // over the frames actually entered (s.frame advanced past them both on
  // completion and on early exit).
  obs::count(obs::Counter::BatchesRun, 1);
  obs::count(obs::Counter::GateEvals, evals);
  if (prog_.pruned) {
    const std::uint64_t frames = s.frame - start_frame;
    const std::uint64_t full = cnl_->eval_order().size();
    if (full > prog_.evals_per_frame)
      obs::count(obs::Counter::ConePruneHits, frames * (full - prog_.evals_per_frame));
  }
  return evals;
}

namespace {

/// Shared detection bookkeeping: fold the slots of `observed` (already
/// masked to live slots) into the batch state at frame `t`, dropping each
/// slot from `live` once it reaches `count_cap` observations.
template <class Word, class StateT>
inline void record_detections(StateT& s, const Word& observed, std::size_t t,
                              std::uint32_t count_cap) noexcept {
  w_for_each_set(observed, [&](unsigned slot) {
    if (!w_test(s.detected_slots, slot)) {
      w_set(s.detected_slots, slot);
      s.detect_time[slot] = static_cast<std::uint32_t>(t);
    }
    if (++s.detect_count[slot] >= count_cap) w_clear(s.live, slot);
  });
}

/// Shared latch bookkeeping: slots of `w` (a DFF machine-pair entering frame
/// t+1) whose known value opposes the known good value get recorded, keeping
/// the occurrence deepest in the chain (fewest flush shifts).
template <class Word>
inline void record_latches(const W3T<Word>& w, std::size_t j, std::size_t t,
                           std::span<LatchRecord> latched) noexcept {
  const bool good0 = w_bit0(w.v0);
  const bool good1 = w_bit0(w.v1);
  Word diff{};
  if (good1) diff = w.v0;
  else if (good0) diff = w.v1;
  w_clear(diff, 0);
  w_for_each_set(diff, [&](unsigned slot) {
    LatchRecord& lr = latched[slot - 1];
    if (!lr.latched || j >= lr.ff_index) {
      lr.latched = true;
      lr.ff_index = static_cast<std::uint32_t>(j);
      lr.time = static_cast<std::uint32_t>(t);
    }
  });
}

}  // namespace

template <class Word>
std::uint64_t FaultSimulator::BatchRunnerT<Word>::advance_kernel(
    State& s, const SequenceView& view, std::vector<W3T<Word>>& values,
    const AdvanceOptions& opt) const {
  using W = W3T<Word>;
  const CompiledNetlist& cnl = *cnl_;
  values.resize(cnl.num_gates());
  const auto& inputs = cnl.inputs();
  const auto& dffs = cnl.dffs();
  const auto& dff_d = cnl.dff_d();
  const bool event = engine_ == SimEngine::Event;
  std::uint64_t evals = 0;
  // The scratch is shared between runners on a worker thread, so the event
  // engine's first frame of every advance is a full evaluation; later frames
  // re-evaluate only the fanout cones of changed nets.
  bool full = true;

  for (std::size_t t = s.frame; t < view.length(); ++t) {
    if (opt.checkpoints && t <= opt.capture_limit && opt.checkpoints->want(t)) {
      s.frame = t;  // snapshot the state entering frame t
      opt.checkpoints->save(opt.batch_index, s);
    }

    const auto& vec = view.vector_at(t);
    if (!event || full) {
      full = false;
      // Boundary values (with stem forcing on PIs and sampled DFF outputs).
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        const GateId pi = inputs[i];
        values[pi] = stem_[pi].apply(W::broadcast(vec[i]));
      }
      for (const std::uint32_t j : prog_.samp_dff) {
        const GateId ff = dffs[j];
        values[ff] = stem_[ff].apply(s.state[j]);
      }

      // Type runs and fixups (individually-forced gates + stem patches),
      // interleaved level-major: a fixup at level L runs after the runs of
      // level <= L and before any run of a higher level (no combinational
      // edges within a level, so the relative order inside a level is free).
      std::size_t fi = 0, ri = 0;
      const std::size_t nf = fix_idx_.size();
      const std::size_t nr = prog_.runs.size();
      while (ri < nr || fi < nf) {
        const std::uint32_t fl =
            fi < nf ? fix_level_[fi] : std::numeric_limits<std::uint32_t>::max();
        std::size_t rj = ri;
        while (rj < nr && prog_.runs[rj].level <= fl) ++rj;
        if (rj > ri) {
          cnl.eval_runs_w3t<Word>(std::span<const TypeRun>(prog_.runs.data() + ri, rj - ri),
                                  prog_.eval.data(), values.data());
          ri = rj;
        }
        const std::uint32_t rl =
            ri < nr ? prog_.runs[ri].level : std::numeric_limits<std::uint32_t>::max();
        while (fi < nf && fix_level_[fi] < rl) {
          if (fix_patch_[fi]) {
            const GateId g = fix_idx_[fi];
            values[g] = stem_[g].apply(values[g]);
          } else {
            const std::size_t k = fix_idx_[fi];
            values[forced_[k]] = eval_forced(k, values.data());
          }
          ++fi;
        }
      }
      evals += prog_.evals_per_frame;
    } else {
      // Seed events from changed boundary values, then propagate by level.
      // Stuck-at forcing is static, so unchanged fanins imply an unchanged
      // (post-injection) output — forced gates need no special treatment.
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        const GateId pi = inputs[i];
        const W w = stem_[pi].apply(W::broadcast(vec[i]));
        if (!(w == values[pi])) {
          values[pi] = w;
          enqueue_fanouts(pi);
        }
      }
      for (const std::uint32_t j : prog_.samp_dff) {
        const GateId ff = dffs[j];
        const W w = stem_[ff].apply(s.state[j]);
        if (!(w == values[ff])) {
          values[ff] = w;
          enqueue_fanouts(ff);
        }
      }
      for (auto& bucket : buckets_) {
        // Draining may append to HIGHER buckets only (fanout level > level).
        for (std::size_t k = 0; k < bucket.size(); ++k) {
          const GateId g = bucket[k];
          queued_[g] = 0;
          ++evals;
          W w;
          if (branch_head_[g] >= 0 || stem_[g].any()) {
            const auto fan = cnl.fanins(g);
            W buf[64];
            if (branch_head_[g] >= 0) {
              for (std::size_t p = 0; p < fan.size(); ++p)
                buf[p] = branch_force(g, p, values[fan[p]]);
            } else {
              for (std::size_t p = 0; p < fan.size(); ++p) buf[p] = values[fan[p]];
            }
            w = stem_[g].apply(eval_gate_w3(cnl.type(g), buf, fan.size()));
          } else {
            w = cnl.eval_gate_w3t_at<Word>(g, values.data());
          }
          if (!(w == values[g])) {
            values[g] = w;
            enqueue_fanouts(g);
          }
        }
        bucket.clear();
      }
    }

    // Detection at the batch's observable primary outputs. A frame
    // contributes at most one count per fault even if several outputs
    // expose it.
    Word observed_this_frame{};
    for (const GateId po : prog_.obs_po) {
      const W w = values[po];
      const bool good0 = w_bit0(w.v0);
      const bool good1 = w_bit0(w.v1);
      if (good1) observed_this_frame = observed_this_frame | (w.v0 & s.live);
      else if (good0) observed_this_frame = observed_this_frame | (w.v1 & s.live);
    }
    record_detections(s, observed_this_frame, t, opt.count_cap);

    if (opt.early_exit && !w_any(s.live)) {
      s.frame = t + 1;  // state was not clocked into frame t+1 — see header
      return evals;
    }

    // Next state of the sampled DFFs (with branch forcing on D pins).
    for (const std::uint32_t j : prog_.samp_dff) {
      W d = values[dff_d[j]];
      const Forcing& f = dff_force_[j];
      if (f.any()) d = f.apply(d);
      s.state[j] = d;
    }

    // Latched fault effects can only sit in cone DFFs: faulty slot differs
    // (known vs opposite known) from the good machine in the state entering
    // frame t+1.
    if (!opt.latched.empty()) {
      for (const std::uint32_t j : prog_.latch_dff)
        record_latches(s.state[j], j, t, opt.latched);
    }
  }

  s.frame = view.length();
  return evals;
}

template <class Word>
std::uint64_t FaultSimulator::BatchRunnerT<Word>::advance_levelized(
    State& s, const SequenceView& view, std::vector<W3T<Word>>& values,
    const AdvanceOptions& opt) const {
  using W = W3T<Word>;
  const Netlist& nl = *nl_;
  values.resize(nl.num_gates());
  std::uint64_t frames = 0;
  W fanin_buf[64];

  for (std::size_t t = s.frame; t < view.length(); ++t) {
    if (opt.checkpoints && t <= opt.capture_limit && opt.checkpoints->want(t)) {
      s.frame = t;  // snapshot the state entering frame t
      opt.checkpoints->save(opt.batch_index, s);
    }

    // Boundary values (with stem forcing on PIs and DFF outputs).
    const auto& vec = view.vector_at(t);
    for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
      const GateId pi = nl.inputs()[i];
      values[pi] = stem_[pi].apply(W::broadcast(vec[i]));
    }
    for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
      const GateId ff = nl.dffs()[j];
      values[ff] = stem_[ff].apply(s.state[j]);
    }

    // Combinational evaluation in topological order, one dispatch per gate
    // (the pre-kernel algorithm, kept verbatim as a bisection baseline).
    for (GateId g : nl.topo_order()) {
      const Gate& gate = nl.gate(g);
      const std::size_t n = gate.fanins.size();
      if (branch_head_[g] >= 0) {
        for (std::size_t p = 0; p < n; ++p)
          fanin_buf[p] = branch_force(g, p, values[gate.fanins[p]]);
      } else {
        for (std::size_t p = 0; p < n; ++p) fanin_buf[p] = values[gate.fanins[p]];
      }
      values[g] = stem_[g].apply(eval_gate_w3(gate.type, fanin_buf, n));
    }
    ++frames;

    // Detection at primary outputs. A frame contributes at most one count
    // per fault even if several outputs expose it.
    Word observed_this_frame{};
    for (GateId po : nl.outputs()) {
      const W w = values[po];
      const bool good0 = w_bit0(w.v0);
      const bool good1 = w_bit0(w.v1);
      if (good1) observed_this_frame = observed_this_frame | (w.v0 & s.live);
      else if (good0) observed_this_frame = observed_this_frame | (w.v1 & s.live);
    }
    record_detections(s, observed_this_frame, t, opt.count_cap);

    if (opt.early_exit && !w_any(s.live)) {
      s.frame = t + 1;  // state was not clocked into frame t+1 — see header
      return frames * nl.topo_order().size();
    }

    // Next state (with branch forcing on DFF D pins).
    for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
      const GateId ff = nl.dffs()[j];
      W d = values[nl.gate(ff).fanins[0]];
      if (branch_head_[ff] >= 0) d = branch_force(ff, 0, d);
      s.state[j] = d;
    }

    // Latched fault effects: faulty slot differs (known vs opposite known)
    // from the good machine in the state entering frame t+1.
    if (!opt.latched.empty()) {
      for (std::size_t j = 0; j < nl.num_dffs(); ++j)
        record_latches(s.state[j], j, t, opt.latched);
    }
  }

  s.frame = view.length();
  return frames * nl.topo_order().size();
}

template class FaultSimulator::BatchRunnerT<std::uint64_t>;
template class FaultSimulator::BatchRunnerT<Simd256>;
template class FaultSimulator::BatchRunnerT<Simd512>;

// ---------------------------------------------------------------------------
// FaultSimulator

FaultSimulator::FaultSimulator(const Netlist& nl) : nl_(&nl), compiled_(nl.compiled_shared()) {}

template <class Word>
std::vector<W3T<Word>>& FaultSimulator::scratch_for(std::size_t worker) const {
  return scratch_[worker].get<Word>();
}

std::vector<DetectionRecord> FaultSimulator::run(const TestSequence& seq,
                                                 std::span<const Fault> faults,
                                                 std::vector<LatchRecord>* latched) const {
  return run(SequenceView(seq), faults, latched);
}

std::vector<DetectionRecord> FaultSimulator::run(const SequenceView& view,
                                                 std::span<const Fault> faults,
                                                 std::vector<LatchRecord>* latched) const {
  switch (resolved_slot_width_for(faults.size())) {
    case SlotWidth::W256: return run_impl<Simd256>(view, faults, latched);
    case SlotWidth::W512: return run_impl<Simd512>(view, faults, latched);
    default: return run_impl<std::uint64_t>(view, faults, latched);
  }
}

template <class Word>
std::vector<DetectionRecord> FaultSimulator::run_impl(const SequenceView& view,
                                                      std::span<const Fault> faults,
                                                      std::vector<LatchRecord>* latched) const {
  constexpr std::size_t kPer = WordTraits<Word>::kBits - 1;
  std::vector<DetectionRecord> out(faults.size());
  if (latched) latched->assign(faults.size(), LatchRecord{});

  const std::size_t num_batches = (faults.size() + kPer - 1) / kPer;
  ThreadPool& pool = ThreadPool::global();
  if (scratch_.size() < pool.num_workers()) scratch_.resize(pool.num_workers());
  pool.parallel_for(num_batches, [&](std::size_t b, std::size_t w) {
    const std::size_t base = b * kPer;
    const std::size_t count = std::min<std::size_t>(kPer, faults.size() - base);
    BatchRunnerT<Word> runner(*compiled_, faults.subspan(base, count));
    SimBatchStateT<Word> s = runner.initial_state();
    typename BatchRunnerT<Word>::AdvanceOptions opt;
    opt.early_exit = latched == nullptr;
    if (latched) opt.latched = std::span<LatchRecord>(latched->data() + base, count);
    runner.advance(s, view, scratch_for<Word>(w), opt);
    for (std::size_t i = 0; i < count; ++i) {
      const unsigned slot = static_cast<unsigned>(i + 1);
      if (w_test(s.detected_slots, slot)) {
        out[base + i].detected = true;
        out[base + i].time = s.detect_time[slot];
      }
    }
  });
  return out;
}

bool FaultSimulator::detects_all(const TestSequence& seq, std::span<const Fault> faults) const {
  return detects_all(SequenceView(seq), faults);
}

bool FaultSimulator::detects_all(const SequenceView& view, std::span<const Fault> faults) const {
  switch (resolved_slot_width_for(faults.size())) {
    case SlotWidth::W256: return detects_all_impl<Simd256>(view, faults);
    case SlotWidth::W512: return detects_all_impl<Simd512>(view, faults);
    default: return detects_all_impl<std::uint64_t>(view, faults);
  }
}

template <class Word>
bool FaultSimulator::detects_all_impl(const SequenceView& view,
                                      std::span<const Fault> faults) const {
  constexpr std::size_t kPer = WordTraits<Word>::kBits - 1;
  const std::size_t num_batches = (faults.size() + kPer - 1) / kPer;
  ThreadPool& pool = ThreadPool::global();
  if (scratch_.size() < pool.num_workers()) scratch_.resize(pool.num_workers());
  // Deterministic wave-scheduled fail-fast (DESIGN.md §5g): batches run in
  // fixed-size waves with the fail flag checked serially BETWEEN waves only.
  // Every batch of a scheduled wave always runs to completion, so the set of
  // executed batch advances — and with it every work counter — depends only
  // on the input, never on thread timing. The returned verdict is identical
  // to a run without fail-fast.
  bool ok = true;
  for (std::size_t wave = 0; wave < num_batches && ok; wave += kFailFastWave) {
    const std::size_t n = std::min(kFailFastWave, num_batches - wave);
    std::atomic<bool> wave_ok{true};
    pool.parallel_for(n, [&](std::size_t k, std::size_t w) {
      const std::size_t base = (wave + k) * kPer;
      const std::size_t count = std::min<std::size_t>(kPer, faults.size() - base);
      BatchRunnerT<Word> runner(*compiled_, faults.subspan(base, count));
      SimBatchStateT<Word> s = runner.initial_state();
      runner.advance(s, view, scratch_for<Word>(w), {});
      if (!((s.detected_slots & runner.slot_mask()) == runner.slot_mask()))
        wave_ok.store(false, std::memory_order_relaxed);
    });
    ok = wave_ok.load(std::memory_order_relaxed);
  }
  return ok;
}

std::vector<std::uint32_t> FaultSimulator::run_counts(const TestSequence& seq,
                                                      std::span<const Fault> faults,
                                                      std::uint32_t cap) const {
  return run_counts(SequenceView(seq), faults, cap);
}

std::vector<std::uint32_t> FaultSimulator::run_counts(const SequenceView& view,
                                                      std::span<const Fault> faults,
                                                      std::uint32_t cap) const {
  switch (resolved_slot_width_for(faults.size())) {
    case SlotWidth::W256: return run_counts_impl<Simd256>(view, faults, cap);
    case SlotWidth::W512: return run_counts_impl<Simd512>(view, faults, cap);
    default: return run_counts_impl<std::uint64_t>(view, faults, cap);
  }
}

template <class Word>
std::vector<std::uint32_t> FaultSimulator::run_counts_impl(const SequenceView& view,
                                                           std::span<const Fault> faults,
                                                           std::uint32_t cap) const {
  constexpr std::size_t kPer = WordTraits<Word>::kBits - 1;
  std::vector<std::uint32_t> counts(faults.size(), 0);
  if (cap == 0) return counts;
  const std::size_t num_batches = (faults.size() + kPer - 1) / kPer;
  ThreadPool& pool = ThreadPool::global();
  if (scratch_.size() < pool.num_workers()) scratch_.resize(pool.num_workers());
  pool.parallel_for(num_batches, [&](std::size_t b, std::size_t w) {
    const std::size_t base = b * kPer;
    const std::size_t count = std::min<std::size_t>(kPer, faults.size() - base);
    BatchRunnerT<Word> runner(*compiled_, faults.subspan(base, count));
    SimBatchStateT<Word> s = runner.initial_state();
    typename BatchRunnerT<Word>::AdvanceOptions opt;
    opt.count_cap = cap;
    runner.advance(s, view, scratch_for<Word>(w), opt);
    for (std::size_t i = 0; i < count; ++i) counts[base + i] = s.detect_count[i + 1];
  });
  return counts;
}

std::vector<std::size_t> FaultSimulator::detected_indices(const TestSequence& seq,
                                                          std::span<const Fault> faults) const {
  std::vector<std::size_t> out;
  const auto records = run(seq, faults);
  for (std::size_t i = 0; i < records.size(); ++i)
    if (records[i].detected) out.push_back(i);
  return out;
}

}  // namespace uniscan
