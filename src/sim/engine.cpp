#include "sim/engine.hpp"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <cstring>

namespace uniscan {

namespace {
std::atomic<SimEngine> g_engine{SimEngine::Compiled};
std::atomic<bool> g_prune{true};
std::atomic<SlotWidth> g_width{SlotWidth::Auto};
std::atomic<bool> g_repack{true};

/// UNISCAN_REPACK override, parsed once. 0 = forced off, 1 = forced on,
/// -1 = no override.
int env_repack() noexcept {
  static const int v = [] {
    const char* e = std::getenv("UNISCAN_REPACK");
    if (!e || !*e) return -1;
    if (std::strcmp(e, "0") == 0 || std::strcmp(e, "off") == 0) return 0;
    if (std::strcmp(e, "1") == 0 || std::strcmp(e, "on") == 0) return 1;
    return -1;
  }();
  return v;
}

/// UNISCAN_SLOT_WIDTH override, parsed once. Auto means "no override" (both
/// when the variable is unset and when it holds "auto" or garbage).
SlotWidth env_slot_width() noexcept {
  static const SlotWidth w = [] {
    SlotWidth out = SlotWidth::Auto;
    if (const char* e = std::getenv("UNISCAN_SLOT_WIDTH"); e && *e) parse_slot_width(e, out);
    return out;
  }();
  return w;
}

/// Widest width whose SIMD path is compiled in AND supported by this CPU.
/// Plain builds (no -mavx2/-mavx512f) resolve to 64 so default-configured
/// runs behave exactly like the pre-width engine.
SlotWidth auto_slot_width() noexcept {
#if defined(__AVX512F__)
  if (__builtin_cpu_supports("avx512f")) return SlotWidth::W512;
#endif
#if defined(__AVX2__)
  if (__builtin_cpu_supports("avx2")) return SlotWidth::W256;
#endif
  return SlotWidth::W64;
}
}  // namespace

void set_global_sim_engine(SimEngine e) noexcept {
  g_engine.store(e, std::memory_order_relaxed);
}

SimEngine global_sim_engine() noexcept { return g_engine.load(std::memory_order_relaxed); }

void set_global_cone_pruning(bool on) noexcept {
  g_prune.store(on, std::memory_order_relaxed);
}

bool global_cone_pruning() noexcept { return g_prune.load(std::memory_order_relaxed); }

bool parse_sim_engine(std::string_view name, SimEngine& out) noexcept {
  if (name == "compiled") out = SimEngine::Compiled;
  else if (name == "levelized") out = SimEngine::Levelized;
  else if (name == "event") out = SimEngine::Event;
  else return false;
  return true;
}

std::string_view sim_engine_name(SimEngine e) noexcept {
  switch (e) {
    case SimEngine::Compiled: return "compiled";
    case SimEngine::Levelized: return "levelized";
    case SimEngine::Event: return "event";
  }
  return "?";
}

void set_global_slot_width(SlotWidth w) noexcept {
  g_width.store(w, std::memory_order_relaxed);
}

SlotWidth global_slot_width() noexcept { return g_width.load(std::memory_order_relaxed); }

SlotWidth resolved_slot_width() noexcept {
  SlotWidth w = env_slot_width();
  if (w == SlotWidth::Auto) w = g_width.load(std::memory_order_relaxed);
  if (w == SlotWidth::Auto) w = auto_slot_width();
  return w;
}

bool parse_slot_width(std::string_view name, SlotWidth& out) noexcept {
  if (name == "64") out = SlotWidth::W64;
  else if (name == "256") out = SlotWidth::W256;
  else if (name == "512") out = SlotWidth::W512;
  else if (name == "auto") out = SlotWidth::Auto;
  else return false;
  return true;
}

unsigned slot_width_bits(SlotWidth w) noexcept { return static_cast<unsigned>(w); }

void set_global_repack(bool on) noexcept { g_repack.store(on, std::memory_order_relaxed); }

bool global_repack() noexcept {
  const int env = env_repack();
  if (env >= 0) return env != 0;
  return g_repack.load(std::memory_order_relaxed);
}

bool slot_width_is_auto() noexcept {
  return env_slot_width() == SlotWidth::Auto &&
         g_width.load(std::memory_order_relaxed) == SlotWidth::Auto;
}

SlotWidth efficient_slot_width(std::size_t live, SlotWidth widest) noexcept {
  // Per-batch advance cost in permille of a 64-bit batch. Wider words touch
  // more bytes per gate but amortize the per-batch fixed work (program walk,
  // forced-gate fixups) over more faults; the ratios below match the
  // measured per-batch overheads of the AVX2/AVX-512 kernels closely enough
  // to pick the right word, and being *fixed* keeps the choice a pure
  // function of the live count.
  struct Candidate {
    SlotWidth width;
    std::size_t cost;
  };
  static constexpr Candidate kCandidates[] = {
      {SlotWidth::W64, 1000}, {SlotWidth::W256, 1300}, {SlotWidth::W512, 1700}};
  SlotWidth best = SlotWidth::W64;
  std::size_t best_cost = ~std::size_t{0};
  for (const Candidate& c : kCandidates) {
    if (slot_width_bits(c.width) > slot_width_bits(widest)) break;
    const std::size_t per = slot_width_bits(c.width) - 1;
    const std::size_t batches = (live + per - 1) / per;
    const std::size_t cost = batches * c.cost;
    if (cost < best_cost) {  // strict: ties keep the narrower word
      best = c.width;
      best_cost = cost;
    }
  }
  return best;
}

SlotWidth resolved_slot_width_for(std::size_t n) noexcept {
  if (!global_repack() || !slot_width_is_auto()) return resolved_slot_width();
  return efficient_slot_width(n, auto_slot_width());
}

}  // namespace uniscan
