#include "sim/engine.hpp"

#include <atomic>
#include <cstdlib>

namespace uniscan {

namespace {
std::atomic<SimEngine> g_engine{SimEngine::Compiled};
std::atomic<bool> g_prune{true};
std::atomic<SlotWidth> g_width{SlotWidth::Auto};

/// UNISCAN_SLOT_WIDTH override, parsed once. Auto means "no override" (both
/// when the variable is unset and when it holds "auto" or garbage).
SlotWidth env_slot_width() noexcept {
  static const SlotWidth w = [] {
    SlotWidth out = SlotWidth::Auto;
    if (const char* e = std::getenv("UNISCAN_SLOT_WIDTH"); e && *e) parse_slot_width(e, out);
    return out;
  }();
  return w;
}

/// Widest width whose SIMD path is compiled in AND supported by this CPU.
/// Plain builds (no -mavx2/-mavx512f) resolve to 64 so default-configured
/// runs behave exactly like the pre-width engine.
SlotWidth auto_slot_width() noexcept {
#if defined(__AVX512F__)
  if (__builtin_cpu_supports("avx512f")) return SlotWidth::W512;
#endif
#if defined(__AVX2__)
  if (__builtin_cpu_supports("avx2")) return SlotWidth::W256;
#endif
  return SlotWidth::W64;
}
}  // namespace

void set_global_sim_engine(SimEngine e) noexcept {
  g_engine.store(e, std::memory_order_relaxed);
}

SimEngine global_sim_engine() noexcept { return g_engine.load(std::memory_order_relaxed); }

void set_global_cone_pruning(bool on) noexcept {
  g_prune.store(on, std::memory_order_relaxed);
}

bool global_cone_pruning() noexcept { return g_prune.load(std::memory_order_relaxed); }

bool parse_sim_engine(std::string_view name, SimEngine& out) noexcept {
  if (name == "compiled") out = SimEngine::Compiled;
  else if (name == "levelized") out = SimEngine::Levelized;
  else if (name == "event") out = SimEngine::Event;
  else return false;
  return true;
}

std::string_view sim_engine_name(SimEngine e) noexcept {
  switch (e) {
    case SimEngine::Compiled: return "compiled";
    case SimEngine::Levelized: return "levelized";
    case SimEngine::Event: return "event";
  }
  return "?";
}

void set_global_slot_width(SlotWidth w) noexcept {
  g_width.store(w, std::memory_order_relaxed);
}

SlotWidth global_slot_width() noexcept { return g_width.load(std::memory_order_relaxed); }

SlotWidth resolved_slot_width() noexcept {
  SlotWidth w = env_slot_width();
  if (w == SlotWidth::Auto) w = g_width.load(std::memory_order_relaxed);
  if (w == SlotWidth::Auto) w = auto_slot_width();
  return w;
}

bool parse_slot_width(std::string_view name, SlotWidth& out) noexcept {
  if (name == "64") out = SlotWidth::W64;
  else if (name == "256") out = SlotWidth::W256;
  else if (name == "512") out = SlotWidth::W512;
  else if (name == "auto") out = SlotWidth::Auto;
  else return false;
  return true;
}

unsigned slot_width_bits(SlotWidth w) noexcept { return static_cast<unsigned>(w); }

}  // namespace uniscan
