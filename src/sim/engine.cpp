#include "sim/engine.hpp"

#include <atomic>

namespace uniscan {

namespace {
std::atomic<SimEngine> g_engine{SimEngine::Compiled};
std::atomic<bool> g_prune{true};
}  // namespace

void set_global_sim_engine(SimEngine e) noexcept {
  g_engine.store(e, std::memory_order_relaxed);
}

SimEngine global_sim_engine() noexcept { return g_engine.load(std::memory_order_relaxed); }

void set_global_cone_pruning(bool on) noexcept {
  g_prune.store(on, std::memory_order_relaxed);
}

bool global_cone_pruning() noexcept { return g_prune.load(std::memory_order_relaxed); }

bool parse_sim_engine(std::string_view name, SimEngine& out) noexcept {
  if (name == "compiled") out = SimEngine::Compiled;
  else if (name == "levelized") out = SimEngine::Levelized;
  else if (name == "event") out = SimEngine::Event;
  else return false;
  return true;
}

std::string_view sim_engine_name(SimEngine e) noexcept {
  switch (e) {
    case SimEngine::Compiled: return "compiled";
    case SimEngine::Levelized: return "levelized";
    case SimEngine::Event: return "event";
  }
  return "?";
}

}  // namespace uniscan
