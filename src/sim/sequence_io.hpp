// Text serialization for test sequences and scan test sets, so generated
// tests can be stored, diffed and shipped to a tester flow.
//
// Sequence format (".useq"):
//   # comment
//   useq v1 <num_inputs>
//   <row of 0/1/x per vector, one per line>
//
// Scan test set format (".utst"):
//   utst v1 <num_original_inputs> <chain_length>
//   test <scan_in>
//   <vector rows over the original inputs>
//   (repeat)
#pragma once

#include <iosfwd>
#include <string>

#include "scan/scan_test.hpp"
#include "sim/sequence.hpp"

namespace uniscan {

void write_sequence(std::ostream& out, const TestSequence& seq);
std::string write_sequence_string(const TestSequence& seq);
void write_sequence_file(const std::string& path, const TestSequence& seq);

/// Throws std::runtime_error with a line number (and the originating
/// `source` — typically a file path — when one is given) on malformed
/// input. CRLF line endings and trailing whitespace are tolerated; echoed
/// fragments of bad lines are capped.
TestSequence read_sequence(std::istream& in, const std::string& source = {});
TestSequence read_sequence_string(const std::string& text);
TestSequence read_sequence_file(const std::string& path);

void write_test_set(std::ostream& out, const ScanTestSet& set);
std::string write_test_set_string(const ScanTestSet& set);
void write_test_set_file(const std::string& path, const ScanTestSet& set);

ScanTestSet read_test_set(std::istream& in, const std::string& source = {});
ScanTestSet read_test_set_string(const std::string& text);
ScanTestSet read_test_set_file(const std::string& path);

}  // namespace uniscan
