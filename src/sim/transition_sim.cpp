#include "sim/transition_sim.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "fault/fault.hpp"
#include "sim/fault_order.hpp"
#include "sim/sequential_sim.hpp"
#include "util/thread_pool.hpp"

namespace uniscan {

namespace {

/// Faulty slot value under the one-cycle gross-delay model.
inline V3 delayed_value(bool slow_to_rise, V3 driven_now, V3 driven_prev) noexcept {
  return slow_to_rise ? v3_and(driven_now, driven_prev) : v3_or(driven_now, driven_prev);
}

std::uint64_t observed_mask(const Netlist& nl, const std::vector<W3>& values) {
  std::uint64_t observed = 0;
  for (GateId po : nl.outputs()) {
    const W3 w = values[po];
    const bool good0 = (w.v0 & 1) != 0;
    const bool good1 = (w.v1 & 1) != 0;
    if (good1) observed |= w.v0;
    else if (good0) observed |= w.v1;
  }
  return observed & ~1ULL;
}

void record_latches(const Netlist& nl, const std::vector<W3>& state,
                    std::span<LatchRecord> latched, std::size_t t) {
  if (latched.empty()) return;
  for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
    const W3 w = state[j];
    const bool good0 = (w.v0 & 1) != 0;
    const bool good1 = (w.v1 & 1) != 0;
    std::uint64_t diff = 0;
    if (good1) diff = w.v0;
    else if (good0) diff = w.v1;
    diff &= ~1ULL;
    while (diff) {
      const unsigned slot = static_cast<unsigned>(std::countr_zero(diff));
      diff &= diff - 1;
      LatchRecord& lr = latched[slot - 1];
      if (!lr.latched || j >= lr.ff_index) {
        lr.latched = true;
        lr.ff_index = static_cast<std::uint32_t>(j);
        lr.time = static_cast<std::uint32_t>(t);
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// BatchRunner

TransitionFaultSimulator::BatchRunner::BatchRunner(const Netlist& nl,
                                                   std::span<const TransitionFault> faults)
    : nl_(&nl), faults_(faults) {
  if (faults.size() > 63) throw std::invalid_argument("BatchRunner: batch too large");
  stem_head_.assign(nl.num_gates(), kNone);
  branch_head_.assign(nl.num_gates(), kNone);
  next_.assign(faults.size(), kNone);
  pending_.assign(faults.size(), V3::X);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const TransitionFault& f = faults[i];
    slot_mask_ |= 1ULL << (i + 1);
    auto& head = (f.pin == kStemPin) ? stem_head_ : branch_head_;
    next_[i] = head[f.gate];
    head[f.gate] = static_cast<std::int32_t>(i);
  }
}

SimBatchState TransitionFaultSimulator::BatchRunner::initial_state() const {
  SimBatchState s;
  s.live = slot_mask_;
  s.state.assign(nl_->num_dffs(), W3::all_x());
  s.prev_driven.assign(faults_.size(), V3::X);
  return s;
}

void TransitionFaultSimulator::BatchRunner::apply_stems(GateId g, SimBatchState& s,
                                                        std::vector<W3>& values) const {
  for (std::int32_t i = stem_head_[g]; i != kNone; i = next_[i]) {
    const unsigned slot = static_cast<unsigned>(i + 1);
    const V3 now = values[g].get(slot);
    values[g].set(slot, delayed_value(faults_[i].slow_to_rise, now, s.prev_driven[i]));
    pending_[i] = now;
  }
}

void TransitionFaultSimulator::BatchRunner::apply_branches(GateId g, W3* fanin_buf,
                                                           std::size_t n, SimBatchState& s,
                                                           const std::vector<W3>& values) const {
  for (std::int32_t i = branch_head_[g]; i != kNone; i = next_[i]) {
    const TransitionFault& f = faults_[i];
    const std::size_t p = static_cast<std::size_t>(f.pin);
    if (p >= n) continue;
    const unsigned slot = static_cast<unsigned>(i + 1);
    const V3 now = values[nl_->gate(g).fanins[p]].get(slot);
    fanin_buf[p].set(slot, delayed_value(f.slow_to_rise, now, s.prev_driven[i]));
    pending_[i] = now;
  }
}

void TransitionFaultSimulator::BatchRunner::run_frame(SimBatchState& s,
                                                      const std::vector<V3>& pi,
                                                      std::vector<W3>& values) const {
  const Netlist& nl = *nl_;
  for (std::size_t i = 0; i < nl.num_inputs(); ++i)
    values[nl.inputs()[i]] = W3::broadcast(pi[i]);
  for (std::size_t j = 0; j < nl.num_dffs(); ++j) values[nl.dffs()[j]] = s.state[j];

  // Stem faults on boundary gates force before combinational evaluation.
  for (std::size_t j = 0; j < nl.num_dffs(); ++j)
    if (stem_head_[nl.dffs()[j]] != kNone) apply_stems(nl.dffs()[j], s, values);
  for (GateId pi_gate : nl.inputs())
    if (stem_head_[pi_gate] != kNone) apply_stems(pi_gate, s, values);

  W3 fanin_buf[64];
  for (GateId g : nl.topo_order()) {
    const Gate& gate = nl.gate(g);
    const std::size_t n = gate.fanins.size();
    for (std::size_t p = 0; p < n; ++p) fanin_buf[p] = values[gate.fanins[p]];
    if (branch_head_[g] != kNone) apply_branches(g, fanin_buf, n, s, values);
    values[g] = eval_gate_w3(gate.type, fanin_buf, n);
    if (stem_head_[g] != kNone) apply_stems(g, s, values);
  }

  for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
    const GateId ff = nl.dffs()[j];
    W3 d = values[nl.gate(ff).fanins[0]];
    if (branch_head_[ff] != kNone) {
      W3 buf[1] = {d};
      apply_branches(ff, buf, 1, s, values);
      d = buf[0];
    }
    s.state[j] = d;
  }

  // Commit launch histories (every fault site is evaluated every frame, so
  // every pending entry was refreshed above).
  for (std::size_t i = 0; i < faults_.size(); ++i) s.prev_driven[i] = pending_[i];
}

std::uint64_t TransitionFaultSimulator::BatchRunner::advance(SimBatchState& s,
                                                             const SequenceView& view,
                                                             std::vector<W3>& values,
                                                             const AdvanceOptions& opt) const {
  const Netlist& nl = *nl_;
  values.resize(nl.num_gates());
  std::uint64_t frames = 0;

  for (std::size_t t = s.frame; t < view.length(); ++t) {
    if (opt.checkpoints && t <= opt.capture_limit && opt.checkpoints->want(t)) {
      s.frame = t;  // snapshot the state (and launch history) entering frame t
      opt.checkpoints->save(opt.batch_index, s);
    }

    run_frame(s, view.vector_at(t), values);
    ++frames;

    std::uint64_t newly = observed_mask(nl, values) & s.live;
    while (newly) {
      const unsigned slot = static_cast<unsigned>(std::countr_zero(newly));
      newly &= newly - 1;
      s.detected_slots |= 1ULL << slot;
      s.detect_time[slot] = static_cast<std::uint32_t>(t);
      s.detect_count[slot] = 1;
      s.live &= ~(1ULL << slot);
    }
    if (opt.early_exit && s.live == 0) {
      s.frame = t + 1;
      return frames * nl.topo_order().size();
    }
    record_latches(nl, s.state, opt.latched, t);
  }

  s.frame = view.length();
  return frames * nl.topo_order().size();
}

// ---------------------------------------------------------------------------
// TransitionFaultSimulator

TransitionFaultSimulator::TransitionFaultSimulator(const Netlist& nl) : nl_(&nl) {
  if (!nl.is_finalized())
    throw std::invalid_argument("TransitionFaultSimulator: netlist not finalized");
}

std::vector<DetectionRecord> TransitionFaultSimulator::run(
    const TestSequence& seq, std::span<const TransitionFault> faults,
    std::vector<LatchRecord>* latched) const {
  return run(SequenceView(seq), faults, latched);
}

std::vector<DetectionRecord> TransitionFaultSimulator::run(
    const SequenceView& view, std::span<const TransitionFault> faults,
    std::vector<LatchRecord>* latched) const {
  std::vector<DetectionRecord> out(faults.size());
  if (latched) latched->assign(faults.size(), LatchRecord{});
  const std::size_t num_batches = (faults.size() + 62) / 63;
  ThreadPool& pool = ThreadPool::global();
  if (scratch_.size() < pool.num_workers()) scratch_.resize(pool.num_workers());
  pool.parallel_for(num_batches, [&](std::size_t b, std::size_t w) {
    const std::size_t base = b * 63;
    const std::size_t count = std::min<std::size_t>(63, faults.size() - base);
    BatchRunner runner(*nl_, faults.subspan(base, count));
    SimBatchState s = runner.initial_state();
    BatchRunner::AdvanceOptions opt;
    opt.early_exit = latched == nullptr;
    if (latched) opt.latched = std::span<LatchRecord>(latched->data() + base, count);
    gate_evals_.fetch_add(runner.advance(s, view, scratch_[w], opt),
                          std::memory_order_relaxed);
    for (std::size_t i = 0; i < count; ++i) {
      const unsigned slot = static_cast<unsigned>(i + 1);
      if (s.detected_slots & (1ULL << slot)) {
        out[base + i].detected = true;
        out[base + i].time = s.detect_time[slot];
      }
    }
  });
  return out;
}

bool TransitionFaultSimulator::detects_all(const TestSequence& seq,
                                           std::span<const TransitionFault> faults) const {
  return detects_all(SequenceView(seq), faults);
}

bool TransitionFaultSimulator::detects_all(const SequenceView& view,
                                           std::span<const TransitionFault> faults) const {
  const std::size_t num_batches = (faults.size() + 62) / 63;
  ThreadPool& pool = ThreadPool::global();
  if (scratch_.size() < pool.num_workers()) scratch_.resize(pool.num_workers());
  std::atomic<bool> ok{true};
  pool.parallel_for(num_batches, [&](std::size_t b, std::size_t w) {
    if (!ok.load(std::memory_order_relaxed)) return;  // cross-batch fail-fast
    const std::size_t base = b * 63;
    const std::size_t count = std::min<std::size_t>(63, faults.size() - base);
    BatchRunner runner(*nl_, faults.subspan(base, count));
    SimBatchState s = runner.initial_state();
    gate_evals_.fetch_add(runner.advance(s, view, scratch_[w], {}),
                          std::memory_order_relaxed);
    if ((s.detected_slots & runner.slot_mask()) != runner.slot_mask())
      ok.store(false, std::memory_order_relaxed);
  });
  return ok.load(std::memory_order_relaxed);
}

std::vector<std::size_t> TransitionFaultSimulator::detected_indices(
    const TestSequence& seq, std::span<const TransitionFault> faults) const {
  std::vector<std::size_t> out;
  const auto records = run(seq, faults);
  for (std::size_t i = 0; i < records.size(); ++i)
    if (records[i].detected) out.push_back(i);
  return out;
}

// ---------------------------------------------------------------------------
// TransitionSimSession

TransitionSimSession::TransitionSimSession(const Netlist& nl,
                                           std::span<const TransitionFault> faults)
    : nl_(&nl),
      faults_(faults.begin(), faults.end()),
      good_runner_(nl, std::span<const TransitionFault>{}) {
  if (!nl.is_finalized())
    throw std::invalid_argument("TransitionSimSession: netlist not finalized");
  detection_.assign(faults_.size(), DetectionRecord{});
  good_ = good_runner_.initial_state();

  order_ = hardest_first_order(nl, std::span<const TransitionFault>(faults_));
  pos_.resize(order_.size());
  packed_.reserve(order_.size());
  for (std::size_t p = 0; p < order_.size(); ++p) {
    pos_[order_[p]] = p;
    packed_.push_back(faults_[order_[p]]);
  }

  const std::size_t num_batches = (packed_.size() + 62) / 63;
  runners_.reserve(num_batches);
  states_.reserve(num_batches);
  for (std::size_t b = 0; b < num_batches; ++b) {
    const std::size_t lo = b * 63;
    const std::size_t count = std::min<std::size_t>(63, packed_.size() - lo);
    runners_.emplace_back(nl, std::span<const TransitionFault>(packed_.data() + lo, count));
    states_.push_back(runners_.back().initial_state());
  }
}

std::size_t TransitionSimSession::advance(const TestSequence& chunk) {
  if (chunk.num_inputs() != nl_->num_inputs())
    throw std::invalid_argument("TransitionSimSession::advance: input width mismatch");
  const SequenceView view(chunk);

  live_idx_.clear();
  for (std::size_t b = 0; b < states_.size(); ++b)
    if (states_[b].live != 0) live_idx_.push_back(b);
  before_.resize(live_idx_.size());
  evals_.assign(live_idx_.size() + 1, 0);

  // Task 0 advances the good machine; tasks 1.. the live batches. No early
  // exit: the session must carry every state to the chunk end.
  ThreadPool& pool = ThreadPool::global();
  if (scratch_.size() < pool.num_workers()) scratch_.resize(pool.num_workers());
  TransitionFaultSimulator::BatchRunner::AdvanceOptions opt;
  opt.early_exit = false;
  pool.parallel_for(live_idx_.size() + 1, [&](std::size_t k, std::size_t w) {
    if (k == 0) {
      good_.frame = 0;
      evals_[0] = good_runner_.advance(good_, view, scratch_[w], opt);
      return;
    }
    SimBatchState& s = states_[live_idx_[k - 1]];
    before_[k - 1] = s.detected_slots;
    s.frame = 0;
    evals_[k] = runners_[live_idx_[k - 1]].advance(s, view, scratch_[w], opt);
  });

  const std::size_t gained_before = num_detected_;
  for (std::size_t k = 0; k < live_idx_.size(); ++k) {
    const std::size_t b = live_idx_[k];
    const SimBatchState& s = states_[b];
    std::uint64_t newly = s.detected_slots & ~before_[k];
    while (newly) {
      const unsigned slot = static_cast<unsigned>(std::countr_zero(newly));
      newly &= newly - 1;
      DetectionRecord& dr = detection_[order_[b * 63 + slot - 1]];
      dr.detected = true;
      dr.time = static_cast<std::uint32_t>(now_ + s.detect_time[slot]);
      ++num_detected_;
    }
  }
  for (std::uint64_t e : evals_) gate_evals_ += e;
  now_ += chunk.length();
  return num_detected_ - gained_before;
}

State TransitionSimSession::good_state() const {
  State s(nl_->num_dffs(), V3::X);
  for (std::size_t j = 0; j < s.size(); ++j) s[j] = good_.state[j].get(0);
  return s;
}

void TransitionSimSession::pair_state(std::size_t i, State& good, State& faulty,
                                      V3& prev_driven) const {
  const std::size_t p = pos_[i];
  const unsigned slot = static_cast<unsigned>(p % 63 + 1);
  const SimBatchState& s = states_[p / 63];
  good.assign(nl_->num_dffs(), V3::X);
  faulty.assign(nl_->num_dffs(), V3::X);
  for (std::size_t j = 0; j < good.size(); ++j) {
    good[j] = s.state[j].get(0);
    faulty[j] = s.state[j].get(slot);
  }
  prev_driven = s.prev_driven[p % 63];
}

TransitionSimSession::Snapshot TransitionSimSession::snapshot() const {
  Snapshot s;
  s.good = good_;
  for (std::size_t b = 0; b < states_.size(); ++b)
    if (states_[b].live != 0) s.live_states.emplace_back(b, states_[b]);
  s.detection = detection_;
  s.num_detected = num_detected_;
  s.now = now_;
  return s;
}

void TransitionSimSession::restore(const Snapshot& s) {
  good_ = s.good;
  std::size_t k = 0;
  for (std::size_t b = 0; b < states_.size(); ++b) {
    if (k < s.live_states.size() && s.live_states[k].first == b) {
      states_[b] = s.live_states[k].second;
      ++k;
    } else {
      states_[b].live = 0;
    }
  }
  detection_ = s.detection;
  num_detected_ = s.num_detected;
  now_ = s.now;
}

}  // namespace uniscan
