#include "sim/transition_sim.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "fault/fault.hpp"
#include "sim/sequential_sim.hpp"

namespace uniscan {

namespace {

/// Faulty slot value under the one-cycle gross-delay model.
inline V3 delayed_value(bool slow_to_rise, V3 driven_now, V3 driven_prev) noexcept {
  return slow_to_rise ? v3_and(driven_now, driven_prev) : v3_or(driven_now, driven_prev);
}

/// One simulation frame shared by the one-shot simulator and the session.
/// Batch-scoped: build once per batch, call run() per frame. Keeps the
/// per-fault launch history (previous driven value) internally; sync it with
/// external storage via prev()/set_prev().
class FrameKernel {
 public:
  FrameKernel(const Netlist& nl, std::span<const TransitionFault> faults,
              std::vector<W3>& values)
      : nl_(nl), faults_(faults), values_(values) {
    prev_.assign(faults.size(), V3::X);
    pending_.assign(faults.size(), V3::X);
    stem_head_.assign(nl.num_gates(), kNone);
    stem_next_.assign(faults.size(), kNone);
    branch_any_.assign(nl.num_gates(), 0);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      const TransitionFault& f = faults[i];
      if (f.pin == kStemPin) {
        // A line carries up to two stem faults (STR and STF) per batch;
        // chain them in a per-gate intrusive list.
        stem_next_[i] = stem_head_[f.gate];
        stem_head_[f.gate] = static_cast<std::uint32_t>(i);
      } else {
        branch_any_[f.gate] = 1;
      }
    }
  }

  std::vector<V3>& prev() noexcept { return prev_; }
  void set_prev(const std::vector<V3>& p) { prev_ = p; }

  void run(const std::vector<V3>& pi, std::vector<W3>& state) {
    const Netlist& nl = nl_;
    for (std::size_t i = 0; i < nl.num_inputs(); ++i)
      values_[nl.inputs()[i]] = W3::broadcast(pi[i]);
    for (std::size_t j = 0; j < nl.num_dffs(); ++j) values_[nl.dffs()[j]] = state[j];

    // Stem faults on boundary gates force before combinational evaluation.
    for (std::size_t j = 0; j < nl.num_dffs(); ++j)
      if (stem_head_[nl.dffs()[j]] != kNone) apply_stems(nl.dffs()[j]);
    for (GateId pi_gate : nl.inputs())
      if (stem_head_[pi_gate] != kNone) apply_stems(pi_gate);

    W3 fanin_buf[64];
    for (GateId g : nl.topo_order()) {
      const Gate& gate = nl.gate(g);
      const std::size_t n = gate.fanins.size();
      for (std::size_t p = 0; p < n; ++p) fanin_buf[p] = values_[gate.fanins[p]];
      if (branch_any_[g]) apply_branches(g, fanin_buf, n);
      values_[g] = eval_gate_w3(gate.type, fanin_buf, n);
      if (stem_head_[g] != kNone) apply_stems(g);
    }

    for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
      const GateId ff = nl.dffs()[j];
      W3 d = values_[nl.gate(ff).fanins[0]];
      if (branch_any_[ff]) {
        W3 buf[1] = {d};
        apply_branches(ff, buf, 1);
        d = buf[0];
      }
      state[j] = d;
    }

    // Commit launch histories (a site not exercised this frame keeps X; that
    // only happens for sites whose value could not be computed, which does
    // not occur — every site is evaluated every frame).
    for (std::size_t i = 0; i < faults_.size(); ++i) prev_[i] = pending_[i];
  }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffU;

  void apply_stems(GateId g) {
    for (std::uint32_t i = stem_head_[g]; i != kNone; i = stem_next_[i]) {
      const unsigned slot = static_cast<unsigned>(i + 1);
      const V3 now = values_[g].get(slot);
      values_[g].set(slot, delayed_value(faults_[i].slow_to_rise, now, prev_[i]));
      pending_[i] = now;
    }
  }

  void apply_branches(GateId g, W3* fanin_buf, std::size_t n) {
    for (std::size_t i = 0; i < faults_.size(); ++i) {
      const TransitionFault& f = faults_[i];
      if (f.gate != g || f.pin == kStemPin) continue;
      const std::size_t p = static_cast<std::size_t>(f.pin);
      if (p >= n) continue;
      const unsigned slot = static_cast<unsigned>(i + 1);
      const V3 now = values_[nl_.gate(g).fanins[p]].get(slot);
      fanin_buf[p].set(slot, delayed_value(f.slow_to_rise, now, prev_[i]));
      pending_[i] = now;
    }
  }

  const Netlist& nl_;
  std::span<const TransitionFault> faults_;
  std::vector<W3>& values_;
  std::vector<V3> prev_;
  std::vector<V3> pending_;
  std::vector<std::uint32_t> stem_head_;
  std::vector<std::uint32_t> stem_next_;
  std::vector<std::uint8_t> branch_any_;
};

std::uint64_t observed_mask(const Netlist& nl, const std::vector<W3>& values) {
  std::uint64_t observed = 0;
  for (GateId po : nl.outputs()) {
    const W3 w = values[po];
    const bool good0 = (w.v0 & 1) != 0;
    const bool good1 = (w.v1 & 1) != 0;
    if (good1) observed |= w.v0;
    else if (good0) observed |= w.v1;
  }
  return observed & ~1ULL;
}

void record_latches(const Netlist& nl, const std::vector<W3>& state,
                    std::span<LatchRecord> latched, std::size_t t) {
  if (latched.empty()) return;
  for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
    const W3 w = state[j];
    const bool good0 = (w.v0 & 1) != 0;
    const bool good1 = (w.v1 & 1) != 0;
    std::uint64_t diff = 0;
    if (good1) diff = w.v0;
    else if (good0) diff = w.v1;
    diff &= ~1ULL;
    while (diff) {
      const unsigned slot = static_cast<unsigned>(std::countr_zero(diff));
      diff &= diff - 1;
      LatchRecord& lr = latched[slot - 1];
      if (!lr.latched || j >= lr.ff_index) {
        lr.latched = true;
        lr.ff_index = static_cast<std::uint32_t>(j);
        lr.time = static_cast<std::uint32_t>(t);
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------

TransitionFaultSimulator::TransitionFaultSimulator(const Netlist& nl) : nl_(&nl) {
  if (!nl.is_finalized())
    throw std::invalid_argument("TransitionFaultSimulator: netlist not finalized");
  values_.assign(nl.num_gates(), W3::all_x());
}

TransitionFaultSimulator::BatchResult TransitionFaultSimulator::run_batch(
    const TestSequence& seq, std::span<const TransitionFault> faults,
    std::span<LatchRecord> latched, bool early_exit) const {
  const Netlist& nl = *nl_;
  if (faults.size() > 63) throw std::invalid_argument("run_batch: batch too large");

  std::uint64_t live = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) live |= 1ULL << (i + 1);

  BatchResult result;
  std::vector<W3> state(nl.num_dffs(), W3::all_x());

  FrameKernel kernel{nl, faults, values_};

  for (std::size_t t = 0; t < seq.length(); ++t) {
    kernel.run(seq.vector_at(t), state);

    std::uint64_t newly = observed_mask(nl, values_) & live;
    while (newly) {
      const unsigned slot = static_cast<unsigned>(std::countr_zero(newly));
      newly &= newly - 1;
      result.detected_slots |= 1ULL << slot;
      result.detect_time[slot] = static_cast<std::uint32_t>(t);
      live &= ~(1ULL << slot);
    }
    if (early_exit && live == 0) break;
    record_latches(nl, state, latched, t);
  }
  return result;
}

std::vector<DetectionRecord> TransitionFaultSimulator::run(
    const TestSequence& seq, std::span<const TransitionFault> faults,
    std::vector<LatchRecord>* latched) const {
  std::vector<DetectionRecord> out(faults.size());
  if (latched) latched->assign(faults.size(), LatchRecord{});
  for (std::size_t base = 0; base < faults.size(); base += 63) {
    const std::size_t count = std::min<std::size_t>(63, faults.size() - base);
    std::span<LatchRecord> latch_span;
    if (latched) latch_span = std::span<LatchRecord>(latched->data() + base, count);
    const BatchResult br = run_batch(seq, faults.subspan(base, count), latch_span,
                                     /*early_exit=*/latched == nullptr);
    for (std::size_t i = 0; i < count; ++i) {
      const unsigned slot = static_cast<unsigned>(i + 1);
      if (br.detected_slots & (1ULL << slot)) {
        out[base + i].detected = true;
        out[base + i].time = br.detect_time[slot];
      }
    }
  }
  return out;
}

bool TransitionFaultSimulator::detects_all(const TestSequence& seq,
                                           std::span<const TransitionFault> faults) const {
  for (std::size_t base = 0; base < faults.size(); base += 63) {
    const std::size_t count = std::min<std::size_t>(63, faults.size() - base);
    const BatchResult br = run_batch(seq, faults.subspan(base, count), {}, /*early_exit=*/true);
    std::uint64_t want = 0;
    for (std::size_t i = 0; i < count; ++i) want |= 1ULL << (i + 1);
    if ((br.detected_slots & want) != want) return false;
  }
  return true;
}

std::vector<std::size_t> TransitionFaultSimulator::detected_indices(
    const TestSequence& seq, std::span<const TransitionFault> faults) const {
  std::vector<std::size_t> out;
  const auto records = run(seq, faults);
  for (std::size_t i = 0; i < records.size(); ++i)
    if (records[i].detected) out.push_back(i);
  return out;
}

// ---------------------------------------------------------------------------

TransitionSimSession::TransitionSimSession(const Netlist& nl,
                                           std::span<const TransitionFault> faults)
    : nl_(&nl), faults_(faults.begin(), faults.end()) {
  if (!nl.is_finalized())
    throw std::invalid_argument("TransitionSimSession: netlist not finalized");
  values_.assign(nl.num_gates(), W3::all_x());
  detection_.assign(faults_.size(), DetectionRecord{});
  for (std::size_t base = 0; base < faults_.size(); base += 63) {
    const std::size_t count = std::min<std::size_t>(63, faults_.size() - base);
    Batch b;
    b.first_fault_index = base;
    b.faults.assign(faults_.begin() + static_cast<std::ptrdiff_t>(base),
                    faults_.begin() + static_cast<std::ptrdiff_t>(base + count));
    b.state.assign(nl.num_dffs(), W3::all_x());
    b.prev_driven.assign(count, V3::X);
    for (std::size_t i = 0; i < count; ++i) b.live |= 1ULL << (i + 1);
    batches_.push_back(std::move(b));
  }
  if (batches_.empty()) {
    Batch b;
    b.state.assign(nl.num_dffs(), W3::all_x());
    batches_.push_back(std::move(b));
  }
}

void TransitionSimSession::advance_batch(Batch& b, const TestSequence& chunk) {
  const Netlist& nl = *nl_;
  FrameKernel kernel{nl, b.faults, values_};
  kernel.set_prev(b.prev_driven);
  for (std::size_t t = 0; t < chunk.length(); ++t) {
    kernel.run(chunk.vector_at(t), b.state);
    std::uint64_t newly = observed_mask(nl, values_) & b.live;
    while (newly) {
      const unsigned slot = static_cast<unsigned>(std::countr_zero(newly));
      newly &= newly - 1;
      b.live &= ~(1ULL << slot);
      DetectionRecord& dr = detection_[b.first_fault_index + slot - 1];
      dr.detected = true;
      dr.time = static_cast<std::uint32_t>(now_ + t);
      ++num_detected_;
    }
  }
  b.prev_driven = kernel.prev();
}

std::size_t TransitionSimSession::advance(const TestSequence& chunk) {
  if (chunk.num_inputs() != nl_->num_inputs())
    throw std::invalid_argument("TransitionSimSession::advance: input width mismatch");
  const std::size_t before = num_detected_;
  for (auto& b : batches_) advance_batch(b, chunk);
  now_ += chunk.length();
  return num_detected_ - before;
}

State TransitionSimSession::good_state() const {
  State s(nl_->num_dffs(), V3::X);
  const Batch& b = batches_.front();
  for (std::size_t j = 0; j < s.size(); ++j) s[j] = b.state[j].get(0);
  return s;
}

void TransitionSimSession::pair_state(std::size_t i, State& good, State& faulty,
                                      V3& prev_driven) const {
  const std::size_t batch_idx = i / 63;
  const unsigned slot = static_cast<unsigned>(i % 63 + 1);
  const Batch& b = batches_[batch_idx];
  good.assign(nl_->num_dffs(), V3::X);
  faulty.assign(nl_->num_dffs(), V3::X);
  for (std::size_t j = 0; j < good.size(); ++j) {
    good[j] = b.state[j].get(0);
    faulty[j] = b.state[j].get(slot);
  }
  prev_driven = b.prev_driven[i % 63];
}

TransitionSimSession::Snapshot TransitionSimSession::snapshot() const {
  Snapshot s;
  for (const auto& b : batches_) {
    s.states.push_back(b.state);
    s.prevs.push_back(b.prev_driven);
    s.live.push_back(b.live);
  }
  s.detection = detection_;
  s.num_detected = num_detected_;
  s.now = now_;
  return s;
}

void TransitionSimSession::restore(const Snapshot& s) {
  for (std::size_t i = 0; i < batches_.size(); ++i) {
    batches_[i].state = s.states[i];
    batches_[i].prev_driven = s.prevs[i];
    batches_[i].live = s.live[i];
  }
  detection_ = s.detection;
  num_detected_ = s.num_detected;
  now_ = s.now;
}

}  // namespace uniscan
