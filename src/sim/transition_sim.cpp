#include "sim/transition_sim.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>
#include <stdexcept>

#include "fault/fault.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sim/sequential_sim.hpp"
#include "sim/session_core.hpp"
#include "util/thread_pool.hpp"

namespace uniscan {

namespace {

/// Faulty slot value under the one-cycle gross-delay model.
inline V3 delayed_value(bool slow_to_rise, V3 driven_now, V3 driven_prev) noexcept {
  return slow_to_rise ? v3_and(driven_now, driven_prev) : v3_or(driven_now, driven_prev);
}

template <class Word>
Word observed_mask(std::span<const GateId> pos, const std::vector<W3T<Word>>& values) {
  Word observed{};
  for (GateId po : pos) {
    const W3T<Word> w = values[po];
    const bool good0 = w_bit0(w.v0);
    const bool good1 = w_bit0(w.v1);
    if (good1) observed = observed | w.v0;
    else if (good0) observed = observed | w.v1;
  }
  w_clear(observed, 0);
  return observed;
}

template <class Word>
void record_latch(std::span<LatchRecord> latched, const W3T<Word> w, std::size_t j,
                  std::size_t t) {
  const bool good0 = w_bit0(w.v0);
  const bool good1 = w_bit0(w.v1);
  Word diff{};
  if (good1) diff = w.v0;
  else if (good0) diff = w.v1;
  w_clear(diff, 0);
  w_for_each_set(diff, [&](unsigned slot) {
    LatchRecord& lr = latched[slot - 1];
    // Keep the occurrence deepest in the chain (fewest flush shifts).
    if (!lr.latched || j >= lr.ff_index) {
      lr.latched = true;
      lr.ff_index = static_cast<std::uint32_t>(j);
      lr.time = static_cast<std::uint32_t>(t);
    }
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// BatchRunnerT

template <class Word>
TransitionFaultSimulator::BatchRunnerT<Word>::BatchRunnerT(
    const CompiledNetlist& cnl, std::span<const TransitionFault> faults)
    : cnl_(&cnl), nl_(&cnl.netlist()), faults_(faults), engine_(global_sim_engine()) {
  if (faults.size() > kSlots - 1) throw std::invalid_argument("BatchRunner: batch too large");
  const std::size_t n = cnl.num_gates();
  stem_head_.assign(n, kNone);
  branch_head_.assign(n, kNone);
  next_.assign(faults.size(), kNone);
  pending_.assign(faults.size(), V3::X);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const TransitionFault& f = faults[i];
    w_set(slot_mask_, static_cast<unsigned>(i + 1));
    auto& head = (f.pin == kStemPin) ? stem_head_ : branch_head_;
    next_[i] = head[f.gate];
    head[f.gate] = static_cast<std::int32_t>(i);
  }

  if (engine_ == SimEngine::Levelized) return;  // legacy path needs no program

  // Branch (pin) injections need an individual evaluation; a stem-only
  // site keeps its type-run evaluation and has its slot rewrites (plus the
  // launch-history refresh) patched on afterwards.
  std::vector<GateId> sites;
  sites.reserve(faults.size());
  std::vector<std::uint8_t> mark(n, 0);
  for (const TransitionFault& f : faults_) {
    sites.push_back(f.gate);
    if (mark[f.gate]) continue;
    mark[f.gate] = 1;
    if (!is_combinational(cnl.type(f.gate))) continue;
    if (branch_head_[f.gate] != kNone) forced_.push_back(f.gate);
    else if (stem_head_[f.gate] != kNone) patched_.push_back(f.gate);
  }
  // Boundary-gate stem forcing runs from these lists each frame, in the
  // legacy order (DFFs, then PIs).
  for (const GateId d : cnl.dffs())
    if (stem_head_[d] != kNone) bstem_dff_.push_back(d);
  for (const GateId p : cnl.inputs())
    if (stem_head_[p] != kNone) bstem_pi_.push_back(p);

  prog_ = cnl.build_program(sites, forced_, global_cone_pruning());

  // Level-ascending merge of the two fixup streams (see the stuck-at
  // runner's constructor for the ordering argument).
  std::stable_sort(patched_.begin(), patched_.end(),
                   [&](GateId a, GateId b) { return cnl.level(a) < cnl.level(b); });
  {
    const std::size_t nf = prog_.forced_order.size();
    std::size_t fi = 0, pi = 0;
    constexpr auto kMax = std::numeric_limits<std::uint32_t>::max();
    while (fi < nf || pi < patched_.size()) {
      const std::uint32_t flv = fi < nf ? prog_.forced_level[fi] : kMax;
      const std::uint32_t plv = pi < patched_.size() ? cnl.level(patched_[pi]) : kMax;
      if (plv < flv) {
        fix_idx_.push_back(patched_[pi++]);
        fix_level_.push_back(plv);
        fix_patch_.push_back(1);
      } else {
        fix_idx_.push_back(prog_.forced_order[fi++]);
        fix_level_.push_back(flv);
        fix_patch_.push_back(0);
      }
    }
  }

  if (engine_ == SimEngine::Event) {
    in_plan_.assign(n, 0);
    for (const GateId g : prog_.eval) in_plan_[g] = 1;
    for (const GateId g : forced_) in_plan_[g] = 1;
    buckets_.assign(cnl.num_levels(), {});
    queued_.assign(n, 0);
  }
}

template <class Word>
SimBatchStateT<Word> TransitionFaultSimulator::BatchRunnerT<Word>::initial_state() const {
  State s;
  s.live = slot_mask_;
  s.state.assign(nl_->num_dffs(), W3T<Word>::all_x());
  s.prev_driven.assign(faults_.size(), V3::X);
  return s;
}

template <class Word>
void TransitionFaultSimulator::BatchRunnerT<Word>::apply_stems_value(GateId g, State& s,
                                                                     W3T<Word>& w) const {
  for (std::int32_t i = stem_head_[g]; i != kNone; i = next_[i]) {
    const unsigned slot = static_cast<unsigned>(i + 1);
    const V3 now = w.get(slot);
    w.set(slot, delayed_value(faults_[i].slow_to_rise, now, s.prev_driven[i]));
    pending_[i] = now;
  }
}

template <class Word>
void TransitionFaultSimulator::BatchRunnerT<Word>::apply_branches(
    GateId g, W3T<Word>* fanin_buf, std::size_t n, State& s,
    const std::vector<W3T<Word>>& values) const {
  for (std::int32_t i = branch_head_[g]; i != kNone; i = next_[i]) {
    const TransitionFault& f = faults_[i];
    const std::size_t p = static_cast<std::size_t>(f.pin);
    if (p >= n) continue;
    const unsigned slot = static_cast<unsigned>(i + 1);
    const V3 now = values[nl_->gate(g).fanins[p]].get(slot);
    fanin_buf[p].set(slot, delayed_value(f.slow_to_rise, now, s.prev_driven[i]));
    pending_[i] = now;
  }
}

template <class Word>
W3T<Word> TransitionFaultSimulator::BatchRunnerT<Word>::eval_forced(
    GateId g, State& s, const std::vector<W3T<Word>>& values) const {
  const auto fan = cnl_->fanins(g);
  W3T<Word> buf[64];
  for (std::size_t p = 0; p < fan.size(); ++p) buf[p] = values[fan[p]];
  if (branch_head_[g] != kNone) apply_branches(g, buf, fan.size(), s, values);
  W3T<Word> w = eval_gate_w3(cnl_->type(g), buf, fan.size());
  if (stem_head_[g] != kNone) apply_stems_value(g, s, w);
  return w;
}

template <class Word>
void TransitionFaultSimulator::BatchRunnerT<Word>::enqueue(GateId g) const {
  if (queued_[g]) return;
  queued_[g] = 1;
  buckets_[cnl_->level(g)].push_back(g);
}

template <class Word>
void TransitionFaultSimulator::BatchRunnerT<Word>::enqueue_fanouts(GateId g) const {
  for (const GateId fo : cnl_->fanouts(g)) {
    if (!is_combinational(cnl_->type(fo))) continue;  // DFFs sampled at frame end
    if (in_plan_[fo]) enqueue(fo);
  }
}

template <class Word>
std::uint64_t TransitionFaultSimulator::BatchRunnerT<Word>::advance(
    State& s, const SequenceView& view, std::vector<W3T<Word>>& values,
    const AdvanceOptions& opt) const {
  // Single telemetry choke point (same contract as FaultSimulator's runner):
  // every simulated gate-word evaluation in the transition model flows
  // through here, so the registry's gate_evals total matches the sum the old
  // per-object counters reported.
  const std::size_t start_frame = s.frame;
  const std::uint64_t evals = engine_ == SimEngine::Levelized
                                  ? advance_levelized(s, view, values, opt)
                                  : advance_kernel(s, view, values, opt);
  obs::count(obs::Counter::BatchesRun, 1);
  obs::count(obs::Counter::GateEvals, evals);
  if (prog_.pruned) {
    const std::uint64_t frames = s.frame - start_frame;
    const std::uint64_t full = cnl_->eval_order().size();
    if (full > prog_.evals_per_frame)
      obs::count(obs::Counter::ConePruneHits, frames * (full - prog_.evals_per_frame));
  }
  return evals;
}

template <class Word>
std::uint64_t TransitionFaultSimulator::BatchRunnerT<Word>::advance_kernel(
    State& s, const SequenceView& view, std::vector<W3T<Word>>& values,
    const AdvanceOptions& opt) const {
  using W = W3T<Word>;
  const CompiledNetlist& cnl = *cnl_;
  values.resize(cnl.num_gates());
  const auto& inputs = cnl.inputs();
  const auto& dffs = cnl.dffs();
  const auto& dff_d = cnl.dff_d();
  const bool event = engine_ == SimEngine::Event;
  std::uint64_t evals = 0;
  // The scratch is shared between runners on a worker thread, so the event
  // engine's first frame of every advance is a full evaluation.
  bool full = true;

  for (std::size_t t = s.frame; t < view.length(); ++t) {
    if (opt.checkpoints && t <= opt.capture_limit && opt.checkpoints->want(t)) {
      s.frame = t;  // snapshot the state (and launch history) entering frame t
      opt.checkpoints->save(opt.batch_index, s);
    }

    const auto& vec = view.vector_at(t);
    if (!event || full) {
      full = false;
      for (std::size_t i = 0; i < inputs.size(); ++i)
        values[inputs[i]] = W::broadcast(vec[i]);
      for (const std::uint32_t j : prog_.samp_dff) values[dffs[j]] = s.state[j];
      // Stem faults on boundary gates force before combinational evaluation
      // (a stem-faulted boundary is a fault site, hence always in-plan).
      for (const GateId g : bstem_dff_) apply_stems(g, s, values);
      for (const GateId g : bstem_pi_) apply_stems(g, s, values);

      // Type runs and fixups (individually-forced gates + stem patches),
      // interleaved level-major (see FaultSimulator::BatchRunnerT's
      // advance_kernel). A stem patch rewrites the faulted slots of the
      // run-computed value in place and refreshes the launch history.
      std::size_t fi = 0, ri = 0;
      const std::size_t nf = fix_idx_.size();
      const std::size_t nr = prog_.runs.size();
      while (ri < nr || fi < nf) {
        const std::uint32_t fl =
            fi < nf ? fix_level_[fi] : std::numeric_limits<std::uint32_t>::max();
        std::size_t rj = ri;
        while (rj < nr && prog_.runs[rj].level <= fl) ++rj;
        if (rj > ri) {
          cnl.eval_runs_w3t<Word>(std::span<const TypeRun>(prog_.runs.data() + ri, rj - ri),
                                  prog_.eval.data(), values.data());
          ri = rj;
        }
        const std::uint32_t rl =
            ri < nr ? prog_.runs[ri].level : std::numeric_limits<std::uint32_t>::max();
        while (fi < nf && fix_level_[fi] < rl) {
          if (fix_patch_[fi]) {
            apply_stems(fix_idx_[fi], s, values);
          } else {
            const GateId g = forced_[fix_idx_[fi]];
            values[g] = eval_forced(g, s, values);
          }
          ++fi;
        }
      }
      evals += prog_.evals_per_frame;
    } else {
      // The forced value at an injection site depends on prev_driven, so
      // every site re-evaluates each frame even with quiet fanins — this
      // also refreshes its launch history. Boundary sites refresh theirs in
      // the (unconditional) stem application below.
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        const GateId g = inputs[i];
        W w = W::broadcast(vec[i]);
        if (stem_head_[g] != kNone) apply_stems_value(g, s, w);
        if (!(w == values[g])) {
          values[g] = w;
          enqueue_fanouts(g);
        }
      }
      for (const std::uint32_t j : prog_.samp_dff) {
        const GateId g = dffs[j];
        W w = s.state[j];
        if (stem_head_[g] != kNone) apply_stems_value(g, s, w);
        if (!(w == values[g])) {
          values[g] = w;
          enqueue_fanouts(g);
        }
      }
      for (const GateId g : forced_) enqueue(g);
      for (const GateId g : patched_) enqueue(g);  // stem history refresh
      for (auto& bucket : buckets_) {
        // Draining may append to HIGHER buckets only (fanout level > level).
        for (std::size_t k = 0; k < bucket.size(); ++k) {
          const GateId g = bucket[k];
          queued_[g] = 0;
          ++evals;
          const W w = (branch_head_[g] != kNone || stem_head_[g] != kNone)
                          ? eval_forced(g, s, values)
                          : cnl.eval_gate_w3t_at<Word>(g, values.data());
          if (!(w == values[g])) {
            values[g] = w;
            enqueue_fanouts(g);
          }
        }
        bucket.clear();
      }
    }

    // Next state of the sampled DFFs (with branch forcing on D pins), then
    // commit the launch histories — every injection site was refreshed above
    // or is a DFF D pin refreshed here.
    for (const std::uint32_t j : prog_.samp_dff) {
      const GateId ff = dffs[j];
      W d = values[dff_d[j]];
      if (branch_head_[ff] != kNone) {
        W buf[1] = {d};
        apply_branches(ff, buf, 1, s, values);
        d = buf[0];
      }
      s.state[j] = d;
    }
    for (std::size_t i = 0; i < faults_.size(); ++i) s.prev_driven[i] = pending_[i];

    const Word newly = observed_mask(prog_.obs_po, values) & s.live;
    w_for_each_set(newly, [&](unsigned slot) {
      w_set(s.detected_slots, slot);
      s.detect_time[slot] = static_cast<std::uint32_t>(t);
      s.detect_count[slot] = 1;
      w_clear(s.live, slot);
    });
    if (opt.early_exit && !w_any(s.live)) {
      s.frame = t + 1;
      return evals;
    }
    if (!opt.latched.empty())
      for (const std::uint32_t j : prog_.latch_dff)
        record_latch(opt.latched, s.state[j], j, t);
  }

  s.frame = view.length();
  return evals;
}

template <class Word>
void TransitionFaultSimulator::BatchRunnerT<Word>::run_frame(
    State& s, const std::vector<V3>& pi, std::vector<W3T<Word>>& values) const {
  using W = W3T<Word>;
  const Netlist& nl = *nl_;
  for (std::size_t i = 0; i < nl.num_inputs(); ++i)
    values[nl.inputs()[i]] = W::broadcast(pi[i]);
  for (std::size_t j = 0; j < nl.num_dffs(); ++j) values[nl.dffs()[j]] = s.state[j];

  // Stem faults on boundary gates force before combinational evaluation.
  for (std::size_t j = 0; j < nl.num_dffs(); ++j)
    if (stem_head_[nl.dffs()[j]] != kNone) apply_stems(nl.dffs()[j], s, values);
  for (GateId pi_gate : nl.inputs())
    if (stem_head_[pi_gate] != kNone) apply_stems(pi_gate, s, values);

  W fanin_buf[64];
  for (GateId g : nl.topo_order()) {
    const Gate& gate = nl.gate(g);
    const std::size_t n = gate.fanins.size();
    for (std::size_t p = 0; p < n; ++p) fanin_buf[p] = values[gate.fanins[p]];
    if (branch_head_[g] != kNone) apply_branches(g, fanin_buf, n, s, values);
    values[g] = eval_gate_w3(gate.type, fanin_buf, n);
    if (stem_head_[g] != kNone) apply_stems(g, s, values);
  }

  for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
    const GateId ff = nl.dffs()[j];
    W d = values[nl.gate(ff).fanins[0]];
    if (branch_head_[ff] != kNone) {
      W buf[1] = {d};
      apply_branches(ff, buf, 1, s, values);
      d = buf[0];
    }
    s.state[j] = d;
  }

  // Commit launch histories (every fault site is evaluated every frame, so
  // every pending entry was refreshed above).
  for (std::size_t i = 0; i < faults_.size(); ++i) s.prev_driven[i] = pending_[i];
}

template <class Word>
std::uint64_t TransitionFaultSimulator::BatchRunnerT<Word>::advance_levelized(
    State& s, const SequenceView& view, std::vector<W3T<Word>>& values,
    const AdvanceOptions& opt) const {
  const Netlist& nl = *nl_;
  values.resize(nl.num_gates());
  std::uint64_t frames = 0;

  for (std::size_t t = s.frame; t < view.length(); ++t) {
    if (opt.checkpoints && t <= opt.capture_limit && opt.checkpoints->want(t)) {
      s.frame = t;  // snapshot the state (and launch history) entering frame t
      opt.checkpoints->save(opt.batch_index, s);
    }

    run_frame(s, view.vector_at(t), values);
    ++frames;

    const Word newly = observed_mask(nl.outputs(), values) & s.live;
    w_for_each_set(newly, [&](unsigned slot) {
      w_set(s.detected_slots, slot);
      s.detect_time[slot] = static_cast<std::uint32_t>(t);
      s.detect_count[slot] = 1;
      w_clear(s.live, slot);
    });
    if (opt.early_exit && !w_any(s.live)) {
      s.frame = t + 1;
      return frames * nl.topo_order().size();
    }
    if (!opt.latched.empty())
      for (std::size_t j = 0; j < nl.num_dffs(); ++j)
        record_latch(opt.latched, s.state[j], j, t);
  }

  s.frame = view.length();
  return frames * nl.topo_order().size();
}

template class TransitionFaultSimulator::BatchRunnerT<std::uint64_t>;
template class TransitionFaultSimulator::BatchRunnerT<Simd256>;
template class TransitionFaultSimulator::BatchRunnerT<Simd512>;

// ---------------------------------------------------------------------------
// TransitionFaultSimulator

TransitionFaultSimulator::TransitionFaultSimulator(const Netlist& nl)
    : nl_(&nl), compiled_(nl.compiled_shared()) {}

std::vector<DetectionRecord> TransitionFaultSimulator::run(
    const TestSequence& seq, std::span<const TransitionFault> faults,
    std::vector<LatchRecord>* latched) const {
  return run(SequenceView(seq), faults, latched);
}

std::vector<DetectionRecord> TransitionFaultSimulator::run(
    const SequenceView& view, std::span<const TransitionFault> faults,
    std::vector<LatchRecord>* latched) const {
  switch (resolved_slot_width_for(faults.size())) {
    case SlotWidth::W256: return run_impl<Simd256>(view, faults, latched);
    case SlotWidth::W512: return run_impl<Simd512>(view, faults, latched);
    default: return run_impl<std::uint64_t>(view, faults, latched);
  }
}

template <class Word>
std::vector<DetectionRecord> TransitionFaultSimulator::run_impl(
    const SequenceView& view, std::span<const TransitionFault> faults,
    std::vector<LatchRecord>* latched) const {
  constexpr std::size_t kPer = WordTraits<Word>::kBits - 1;
  std::vector<DetectionRecord> out(faults.size());
  if (latched) latched->assign(faults.size(), LatchRecord{});
  const std::size_t num_batches = (faults.size() + kPer - 1) / kPer;
  ThreadPool& pool = ThreadPool::global();
  if (scratch_.size() < pool.num_workers()) scratch_.resize(pool.num_workers());
  pool.parallel_for(num_batches, [&](std::size_t b, std::size_t w) {
    const std::size_t base = b * kPer;
    const std::size_t count = std::min<std::size_t>(kPer, faults.size() - base);
    BatchRunnerT<Word> runner(*compiled_, faults.subspan(base, count));
    SimBatchStateT<Word> s = runner.initial_state();
    typename BatchRunnerT<Word>::AdvanceOptions opt;
    opt.early_exit = latched == nullptr;
    if (latched) opt.latched = std::span<LatchRecord>(latched->data() + base, count);
    runner.advance(s, view, scratch_[w].get<Word>(), opt);
    for (std::size_t i = 0; i < count; ++i) {
      const unsigned slot = static_cast<unsigned>(i + 1);
      if (w_test(s.detected_slots, slot)) {
        out[base + i].detected = true;
        out[base + i].time = s.detect_time[slot];
      }
    }
  });
  return out;
}

bool TransitionFaultSimulator::detects_all(const TestSequence& seq,
                                           std::span<const TransitionFault> faults) const {
  return detects_all(SequenceView(seq), faults);
}

bool TransitionFaultSimulator::detects_all(const SequenceView& view,
                                           std::span<const TransitionFault> faults) const {
  switch (resolved_slot_width_for(faults.size())) {
    case SlotWidth::W256: return detects_all_impl<Simd256>(view, faults);
    case SlotWidth::W512: return detects_all_impl<Simd512>(view, faults);
    default: return detects_all_impl<std::uint64_t>(view, faults);
  }
}

template <class Word>
bool TransitionFaultSimulator::detects_all_impl(const SequenceView& view,
                                                std::span<const TransitionFault> faults) const {
  constexpr std::size_t kPer = WordTraits<Word>::kBits - 1;
  const std::size_t num_batches = (faults.size() + kPer - 1) / kPer;
  ThreadPool& pool = ThreadPool::global();
  if (scratch_.size() < pool.num_workers()) scratch_.resize(pool.num_workers());
  // Wave-scheduled deterministic fail-fast; see FaultSimulator::detects_all.
  bool ok = true;
  for (std::size_t wave = 0; wave < num_batches && ok; wave += kFailFastWave) {
    const std::size_t n = std::min(kFailFastWave, num_batches - wave);
    std::atomic<bool> wave_ok{true};
    pool.parallel_for(n, [&](std::size_t k, std::size_t w) {
      const std::size_t base = (wave + k) * kPer;
      const std::size_t count = std::min<std::size_t>(kPer, faults.size() - base);
      BatchRunnerT<Word> runner(*compiled_, faults.subspan(base, count));
      SimBatchStateT<Word> s = runner.initial_state();
      runner.advance(s, view, scratch_[w].get<Word>(), {});
      if (!((s.detected_slots & runner.slot_mask()) == runner.slot_mask()))
        wave_ok.store(false, std::memory_order_relaxed);
    });
    ok = wave_ok.load(std::memory_order_relaxed);
  }
  return ok;
}

std::vector<std::size_t> TransitionFaultSimulator::detected_indices(
    const TestSequence& seq, std::span<const TransitionFault> faults) const {
  std::vector<std::size_t> out;
  const auto records = run(seq, faults);
  for (std::size_t i = 0; i < records.size(); ++i)
    if (records[i].detected) out.push_back(i);
  return out;
}

// ---------------------------------------------------------------------------
// TransitionSimSession

struct TransitionSimSession::Impl : SessionCoreT<TransitionFaultSimulator> {
  Impl(const Netlist& nl, std::span<const TransitionFault> faults)
      : SessionCoreT<TransitionFaultSimulator>(nl, faults, "TransitionSimSession") {}
};

TransitionSimSession::TransitionSimSession(const Netlist& nl,
                                           std::span<const TransitionFault> faults)
    : impl_(std::make_unique<Impl>(nl, faults)) {}

TransitionSimSession::~TransitionSimSession() = default;
TransitionSimSession::TransitionSimSession(TransitionSimSession&&) noexcept = default;
TransitionSimSession& TransitionSimSession::operator=(TransitionSimSession&&) noexcept = default;

std::size_t TransitionSimSession::advance(const TestSequence& chunk) {
  return impl_->advance(chunk);
}
std::size_t TransitionSimSession::now() const noexcept { return impl_->now(); }
std::size_t TransitionSimSession::num_faults() const noexcept { return impl_->num_faults(); }
bool TransitionSimSession::is_detected(std::size_t i) const { return impl_->is_detected(i); }
const std::vector<DetectionRecord>& TransitionSimSession::detections() const noexcept {
  return impl_->detections();
}
std::size_t TransitionSimSession::num_detected() const noexcept { return impl_->num_detected(); }
const CompiledNetlist& TransitionSimSession::compiled() const noexcept {
  return impl_->compiled();
}
State TransitionSimSession::good_state() const { return impl_->good_state(); }
void TransitionSimSession::pair_state(std::size_t i, State& good, State& faulty,
                                      V3& prev_driven) const {
  impl_->pair_state(i, good, faulty, &prev_driven);
}

TransitionSimSession::Snapshot TransitionSimSession::snapshot() const {
  Snapshot s;
  s.state_ = impl_->snapshot();
  return s;
}

void TransitionSimSession::restore(const Snapshot& s) { impl_->restore(s.state_); }

}  // namespace uniscan
