#include "sim/transition_sim.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>
#include <stdexcept>

#include "fault/fault.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sim/fault_order.hpp"
#include "sim/sequential_sim.hpp"
#include "util/thread_pool.hpp"

namespace uniscan {

namespace {

/// Faulty slot value under the one-cycle gross-delay model.
inline V3 delayed_value(bool slow_to_rise, V3 driven_now, V3 driven_prev) noexcept {
  return slow_to_rise ? v3_and(driven_now, driven_prev) : v3_or(driven_now, driven_prev);
}

std::uint64_t observed_mask(std::span<const GateId> pos, const std::vector<W3>& values) {
  std::uint64_t observed = 0;
  for (GateId po : pos) {
    const W3 w = values[po];
    const bool good0 = (w.v0 & 1) != 0;
    const bool good1 = (w.v1 & 1) != 0;
    if (good1) observed |= w.v0;
    else if (good0) observed |= w.v1;
  }
  return observed & ~1ULL;
}

void record_latch(std::span<LatchRecord> latched, const W3 w, std::size_t j, std::size_t t) {
  const bool good0 = (w.v0 & 1) != 0;
  const bool good1 = (w.v1 & 1) != 0;
  std::uint64_t diff = 0;
  if (good1) diff = w.v0;
  else if (good0) diff = w.v1;
  diff &= ~1ULL;
  while (diff) {
    const unsigned slot = static_cast<unsigned>(std::countr_zero(diff));
    diff &= diff - 1;
    LatchRecord& lr = latched[slot - 1];
    // Keep the occurrence deepest in the chain (fewest flush shifts).
    if (!lr.latched || j >= lr.ff_index) {
      lr.latched = true;
      lr.ff_index = static_cast<std::uint32_t>(j);
      lr.time = static_cast<std::uint32_t>(t);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// BatchRunner

TransitionFaultSimulator::BatchRunner::BatchRunner(const CompiledNetlist& cnl,
                                                   std::span<const TransitionFault> faults)
    : cnl_(&cnl), nl_(&cnl.netlist()), faults_(faults), engine_(global_sim_engine()) {
  if (faults.size() > 63) throw std::invalid_argument("BatchRunner: batch too large");
  const std::size_t n = cnl.num_gates();
  stem_head_.assign(n, kNone);
  branch_head_.assign(n, kNone);
  next_.assign(faults.size(), kNone);
  pending_.assign(faults.size(), V3::X);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const TransitionFault& f = faults[i];
    slot_mask_ |= 1ULL << (i + 1);
    auto& head = (f.pin == kStemPin) ? stem_head_ : branch_head_;
    next_[i] = head[f.gate];
    head[f.gate] = static_cast<std::int32_t>(i);
  }

  if (engine_ == SimEngine::Levelized) return;  // legacy path needs no program

  std::vector<GateId> sites;
  sites.reserve(faults.size());
  std::vector<std::uint8_t> mark(n, 0);
  for (const TransitionFault& f : faults_) {
    sites.push_back(f.gate);
    if (mark[f.gate]) continue;
    mark[f.gate] = 1;
    if (is_combinational(cnl.type(f.gate)) &&
        (stem_head_[f.gate] != kNone || branch_head_[f.gate] != kNone))
      forced_.push_back(f.gate);
  }
  // Boundary-gate stem forcing runs from these lists each frame, in the
  // legacy order (DFFs, then PIs).
  for (const GateId d : cnl.dffs())
    if (stem_head_[d] != kNone) bstem_dff_.push_back(d);
  for (const GateId p : cnl.inputs())
    if (stem_head_[p] != kNone) bstem_pi_.push_back(p);

  prog_ = cnl.build_program(sites, forced_, global_cone_pruning());

  if (engine_ == SimEngine::Event) {
    in_plan_.assign(n, 0);
    for (const GateId g : prog_.eval) in_plan_[g] = 1;
    for (const GateId g : forced_) in_plan_[g] = 1;
    buckets_.assign(cnl.num_levels(), {});
    queued_.assign(n, 0);
  }
}

SimBatchState TransitionFaultSimulator::BatchRunner::initial_state() const {
  SimBatchState s;
  s.live = slot_mask_;
  s.state.assign(nl_->num_dffs(), W3::all_x());
  s.prev_driven.assign(faults_.size(), V3::X);
  return s;
}

void TransitionFaultSimulator::BatchRunner::apply_stems_value(GateId g, SimBatchState& s,
                                                              W3& w) const {
  for (std::int32_t i = stem_head_[g]; i != kNone; i = next_[i]) {
    const unsigned slot = static_cast<unsigned>(i + 1);
    const V3 now = w.get(slot);
    w.set(slot, delayed_value(faults_[i].slow_to_rise, now, s.prev_driven[i]));
    pending_[i] = now;
  }
}

void TransitionFaultSimulator::BatchRunner::apply_branches(GateId g, W3* fanin_buf,
                                                           std::size_t n, SimBatchState& s,
                                                           const std::vector<W3>& values) const {
  for (std::int32_t i = branch_head_[g]; i != kNone; i = next_[i]) {
    const TransitionFault& f = faults_[i];
    const std::size_t p = static_cast<std::size_t>(f.pin);
    if (p >= n) continue;
    const unsigned slot = static_cast<unsigned>(i + 1);
    const V3 now = values[nl_->gate(g).fanins[p]].get(slot);
    fanin_buf[p].set(slot, delayed_value(f.slow_to_rise, now, s.prev_driven[i]));
    pending_[i] = now;
  }
}

W3 TransitionFaultSimulator::BatchRunner::eval_forced(GateId g, SimBatchState& s,
                                                      const std::vector<W3>& values) const {
  const auto fan = cnl_->fanins(g);
  W3 buf[64];
  for (std::size_t p = 0; p < fan.size(); ++p) buf[p] = values[fan[p]];
  if (branch_head_[g] != kNone) apply_branches(g, buf, fan.size(), s, values);
  W3 w = eval_gate_w3(cnl_->type(g), buf, fan.size());
  if (stem_head_[g] != kNone) apply_stems_value(g, s, w);
  return w;
}

void TransitionFaultSimulator::BatchRunner::enqueue(GateId g) const {
  if (queued_[g]) return;
  queued_[g] = 1;
  buckets_[cnl_->level(g)].push_back(g);
}

void TransitionFaultSimulator::BatchRunner::enqueue_fanouts(GateId g) const {
  for (const GateId fo : cnl_->fanouts(g)) {
    if (!is_combinational(cnl_->type(fo))) continue;  // DFFs sampled at frame end
    if (in_plan_[fo]) enqueue(fo);
  }
}

std::uint64_t TransitionFaultSimulator::BatchRunner::advance(SimBatchState& s,
                                                             const SequenceView& view,
                                                             std::vector<W3>& values,
                                                             const AdvanceOptions& opt) const {
  // Single telemetry choke point (same contract as FaultSimulator's runner):
  // every simulated gate-word evaluation in the transition model flows
  // through here, so the registry's gate_evals total matches the sum the old
  // per-object counters reported.
  const std::size_t start_frame = s.frame;
  const std::uint64_t evals = engine_ == SimEngine::Levelized
                                  ? advance_levelized(s, view, values, opt)
                                  : advance_kernel(s, view, values, opt);
  obs::count(obs::Counter::GateEvals, evals);
  if (prog_.pruned) {
    const std::uint64_t frames = s.frame - start_frame;
    const std::uint64_t full = cnl_->eval_order().size();
    if (full > prog_.evals_per_frame)
      obs::count(obs::Counter::ConePruneHits, frames * (full - prog_.evals_per_frame));
  }
  return evals;
}

std::uint64_t TransitionFaultSimulator::BatchRunner::advance_kernel(
    SimBatchState& s, const SequenceView& view, std::vector<W3>& values,
    const AdvanceOptions& opt) const {
  const CompiledNetlist& cnl = *cnl_;
  values.resize(cnl.num_gates());
  const auto& inputs = cnl.inputs();
  const auto& dffs = cnl.dffs();
  const auto& dff_d = cnl.dff_d();
  const bool event = engine_ == SimEngine::Event;
  std::uint64_t evals = 0;
  // The scratch is shared between runners on a worker thread, so the event
  // engine's first frame of every advance is a full evaluation.
  bool full = true;

  for (std::size_t t = s.frame; t < view.length(); ++t) {
    if (opt.checkpoints && t <= opt.capture_limit && opt.checkpoints->want(t)) {
      s.frame = t;  // snapshot the state (and launch history) entering frame t
      opt.checkpoints->save(opt.batch_index, s);
    }

    const auto& vec = view.vector_at(t);
    if (!event || full) {
      full = false;
      for (std::size_t i = 0; i < inputs.size(); ++i)
        values[inputs[i]] = W3::broadcast(vec[i]);
      for (const std::uint32_t j : prog_.samp_dff) values[dffs[j]] = s.state[j];
      // Stem faults on boundary gates force before combinational evaluation
      // (a stem-faulted boundary is a fault site, hence always in-plan).
      for (const GateId g : bstem_dff_) apply_stems(g, s, values);
      for (const GateId g : bstem_pi_) apply_stems(g, s, values);

      // Type runs and individually-forced gates, interleaved level-major
      // (see FaultSimulator::BatchRunner::advance_kernel).
      std::size_t fi = 0, ri = 0;
      const std::size_t nf = prog_.forced_order.size();
      const std::size_t nr = prog_.runs.size();
      while (ri < nr || fi < nf) {
        const std::uint32_t fl =
            fi < nf ? prog_.forced_level[fi] : std::numeric_limits<std::uint32_t>::max();
        std::size_t rj = ri;
        while (rj < nr && prog_.runs[rj].level <= fl) ++rj;
        if (rj > ri) {
          cnl.eval_runs_w3(std::span<const TypeRun>(prog_.runs.data() + ri, rj - ri),
                           prog_.eval.data(), values.data());
          ri = rj;
        }
        const std::uint32_t rl =
            ri < nr ? prog_.runs[ri].level : std::numeric_limits<std::uint32_t>::max();
        while (fi < nf && prog_.forced_level[fi] < rl) {
          const GateId g = forced_[prog_.forced_order[fi++]];
          values[g] = eval_forced(g, s, values);
        }
      }
      evals += prog_.evals_per_frame;
    } else {
      // The forced value at an injection site depends on prev_driven, so
      // every site re-evaluates each frame even with quiet fanins — this
      // also refreshes its launch history. Boundary sites refresh theirs in
      // the (unconditional) stem application below.
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        const GateId g = inputs[i];
        W3 w = W3::broadcast(vec[i]);
        if (stem_head_[g] != kNone) apply_stems_value(g, s, w);
        if (!(w == values[g])) {
          values[g] = w;
          enqueue_fanouts(g);
        }
      }
      for (const std::uint32_t j : prog_.samp_dff) {
        const GateId g = dffs[j];
        W3 w = s.state[j];
        if (stem_head_[g] != kNone) apply_stems_value(g, s, w);
        if (!(w == values[g])) {
          values[g] = w;
          enqueue_fanouts(g);
        }
      }
      for (const GateId g : forced_) enqueue(g);
      for (auto& bucket : buckets_) {
        // Draining may append to HIGHER buckets only (fanout level > level).
        for (std::size_t k = 0; k < bucket.size(); ++k) {
          const GateId g = bucket[k];
          queued_[g] = 0;
          ++evals;
          const W3 w = (branch_head_[g] != kNone || stem_head_[g] != kNone)
                           ? eval_forced(g, s, values)
                           : cnl.eval_gate_w3_at(g, values.data());
          if (!(w == values[g])) {
            values[g] = w;
            enqueue_fanouts(g);
          }
        }
        bucket.clear();
      }
    }

    // Next state of the sampled DFFs (with branch forcing on D pins), then
    // commit the launch histories — every injection site was refreshed above
    // or is a DFF D pin refreshed here.
    for (const std::uint32_t j : prog_.samp_dff) {
      const GateId ff = dffs[j];
      W3 d = values[dff_d[j]];
      if (branch_head_[ff] != kNone) {
        W3 buf[1] = {d};
        apply_branches(ff, buf, 1, s, values);
        d = buf[0];
      }
      s.state[j] = d;
    }
    for (std::size_t i = 0; i < faults_.size(); ++i) s.prev_driven[i] = pending_[i];

    std::uint64_t newly = observed_mask(prog_.obs_po, values) & s.live;
    while (newly) {
      const unsigned slot = static_cast<unsigned>(std::countr_zero(newly));
      newly &= newly - 1;
      s.detected_slots |= 1ULL << slot;
      s.detect_time[slot] = static_cast<std::uint32_t>(t);
      s.detect_count[slot] = 1;
      s.live &= ~(1ULL << slot);
    }
    if (opt.early_exit && s.live == 0) {
      s.frame = t + 1;
      return evals;
    }
    if (!opt.latched.empty())
      for (const std::uint32_t j : prog_.latch_dff)
        record_latch(opt.latched, s.state[j], j, t);
  }

  s.frame = view.length();
  return evals;
}

void TransitionFaultSimulator::BatchRunner::run_frame(SimBatchState& s,
                                                      const std::vector<V3>& pi,
                                                      std::vector<W3>& values) const {
  const Netlist& nl = *nl_;
  for (std::size_t i = 0; i < nl.num_inputs(); ++i)
    values[nl.inputs()[i]] = W3::broadcast(pi[i]);
  for (std::size_t j = 0; j < nl.num_dffs(); ++j) values[nl.dffs()[j]] = s.state[j];

  // Stem faults on boundary gates force before combinational evaluation.
  for (std::size_t j = 0; j < nl.num_dffs(); ++j)
    if (stem_head_[nl.dffs()[j]] != kNone) apply_stems(nl.dffs()[j], s, values);
  for (GateId pi_gate : nl.inputs())
    if (stem_head_[pi_gate] != kNone) apply_stems(pi_gate, s, values);

  W3 fanin_buf[64];
  for (GateId g : nl.topo_order()) {
    const Gate& gate = nl.gate(g);
    const std::size_t n = gate.fanins.size();
    for (std::size_t p = 0; p < n; ++p) fanin_buf[p] = values[gate.fanins[p]];
    if (branch_head_[g] != kNone) apply_branches(g, fanin_buf, n, s, values);
    values[g] = eval_gate_w3(gate.type, fanin_buf, n);
    if (stem_head_[g] != kNone) apply_stems(g, s, values);
  }

  for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
    const GateId ff = nl.dffs()[j];
    W3 d = values[nl.gate(ff).fanins[0]];
    if (branch_head_[ff] != kNone) {
      W3 buf[1] = {d};
      apply_branches(ff, buf, 1, s, values);
      d = buf[0];
    }
    s.state[j] = d;
  }

  // Commit launch histories (every fault site is evaluated every frame, so
  // every pending entry was refreshed above).
  for (std::size_t i = 0; i < faults_.size(); ++i) s.prev_driven[i] = pending_[i];
}

std::uint64_t TransitionFaultSimulator::BatchRunner::advance_levelized(
    SimBatchState& s, const SequenceView& view, std::vector<W3>& values,
    const AdvanceOptions& opt) const {
  const Netlist& nl = *nl_;
  values.resize(nl.num_gates());
  std::uint64_t frames = 0;

  for (std::size_t t = s.frame; t < view.length(); ++t) {
    if (opt.checkpoints && t <= opt.capture_limit && opt.checkpoints->want(t)) {
      s.frame = t;  // snapshot the state (and launch history) entering frame t
      opt.checkpoints->save(opt.batch_index, s);
    }

    run_frame(s, view.vector_at(t), values);
    ++frames;

    std::uint64_t newly = observed_mask(nl.outputs(), values) & s.live;
    while (newly) {
      const unsigned slot = static_cast<unsigned>(std::countr_zero(newly));
      newly &= newly - 1;
      s.detected_slots |= 1ULL << slot;
      s.detect_time[slot] = static_cast<std::uint32_t>(t);
      s.detect_count[slot] = 1;
      s.live &= ~(1ULL << slot);
    }
    if (opt.early_exit && s.live == 0) {
      s.frame = t + 1;
      return frames * nl.topo_order().size();
    }
    if (!opt.latched.empty())
      for (std::size_t j = 0; j < nl.num_dffs(); ++j)
        record_latch(opt.latched, s.state[j], j, t);
  }

  s.frame = view.length();
  return frames * nl.topo_order().size();
}

// ---------------------------------------------------------------------------
// TransitionFaultSimulator

TransitionFaultSimulator::TransitionFaultSimulator(const Netlist& nl)
    : nl_(&nl), compiled_(nl) {}

std::vector<DetectionRecord> TransitionFaultSimulator::run(
    const TestSequence& seq, std::span<const TransitionFault> faults,
    std::vector<LatchRecord>* latched) const {
  return run(SequenceView(seq), faults, latched);
}

std::vector<DetectionRecord> TransitionFaultSimulator::run(
    const SequenceView& view, std::span<const TransitionFault> faults,
    std::vector<LatchRecord>* latched) const {
  std::vector<DetectionRecord> out(faults.size());
  if (latched) latched->assign(faults.size(), LatchRecord{});
  const std::size_t num_batches = (faults.size() + 62) / 63;
  ThreadPool& pool = ThreadPool::global();
  if (scratch_.size() < pool.num_workers()) scratch_.resize(pool.num_workers());
  pool.parallel_for(num_batches, [&](std::size_t b, std::size_t w) {
    const std::size_t base = b * 63;
    const std::size_t count = std::min<std::size_t>(63, faults.size() - base);
    BatchRunner runner(compiled_, faults.subspan(base, count));
    SimBatchState s = runner.initial_state();
    BatchRunner::AdvanceOptions opt;
    opt.early_exit = latched == nullptr;
    if (latched) opt.latched = std::span<LatchRecord>(latched->data() + base, count);
    runner.advance(s, view, scratch_[w], opt);
    for (std::size_t i = 0; i < count; ++i) {
      const unsigned slot = static_cast<unsigned>(i + 1);
      if (s.detected_slots & (1ULL << slot)) {
        out[base + i].detected = true;
        out[base + i].time = s.detect_time[slot];
      }
    }
  });
  return out;
}

bool TransitionFaultSimulator::detects_all(const TestSequence& seq,
                                           std::span<const TransitionFault> faults) const {
  return detects_all(SequenceView(seq), faults);
}

bool TransitionFaultSimulator::detects_all(const SequenceView& view,
                                           std::span<const TransitionFault> faults) const {
  const std::size_t num_batches = (faults.size() + 62) / 63;
  ThreadPool& pool = ThreadPool::global();
  if (scratch_.size() < pool.num_workers()) scratch_.resize(pool.num_workers());
  // Wave-scheduled deterministic fail-fast; see FaultSimulator::detects_all.
  bool ok = true;
  for (std::size_t wave = 0; wave < num_batches && ok; wave += kFailFastWave) {
    const std::size_t n = std::min(kFailFastWave, num_batches - wave);
    std::atomic<bool> wave_ok{true};
    pool.parallel_for(n, [&](std::size_t k, std::size_t w) {
      const std::size_t base = (wave + k) * 63;
      const std::size_t count = std::min<std::size_t>(63, faults.size() - base);
      BatchRunner runner(compiled_, faults.subspan(base, count));
      SimBatchState s = runner.initial_state();
      runner.advance(s, view, scratch_[w], {});
      if ((s.detected_slots & runner.slot_mask()) != runner.slot_mask())
        wave_ok.store(false, std::memory_order_relaxed);
    });
    ok = wave_ok.load(std::memory_order_relaxed);
  }
  return ok;
}

std::vector<std::size_t> TransitionFaultSimulator::detected_indices(
    const TestSequence& seq, std::span<const TransitionFault> faults) const {
  std::vector<std::size_t> out;
  const auto records = run(seq, faults);
  for (std::size_t i = 0; i < records.size(); ++i)
    if (records[i].detected) out.push_back(i);
  return out;
}

// ---------------------------------------------------------------------------
// TransitionSimSession

TransitionSimSession::TransitionSimSession(const Netlist& nl,
                                           std::span<const TransitionFault> faults)
    : nl_(&nl),
      compiled_(nl),
      faults_(faults.begin(), faults.end()),
      good_runner_(compiled_, std::span<const TransitionFault>{}) {
  detection_.assign(faults_.size(), DetectionRecord{});
  good_ = good_runner_.initial_state();

  order_ = hardest_first_order(nl, std::span<const TransitionFault>(faults_));
  pos_.resize(order_.size());
  packed_.reserve(order_.size());
  for (std::size_t p = 0; p < order_.size(); ++p) {
    pos_[order_[p]] = p;
    packed_.push_back(faults_[order_[p]]);
  }

  const std::size_t num_batches = (packed_.size() + 62) / 63;
  runners_.reserve(num_batches);
  states_.reserve(num_batches);
  for (std::size_t b = 0; b < num_batches; ++b) {
    const std::size_t lo = b * 63;
    const std::size_t count = std::min<std::size_t>(63, packed_.size() - lo);
    runners_.emplace_back(compiled_,
                          std::span<const TransitionFault>(packed_.data() + lo, count));
    states_.push_back(runners_.back().initial_state());
  }
}

std::size_t TransitionSimSession::advance(const TestSequence& chunk) {
  if (chunk.num_inputs() != nl_->num_inputs())
    throw std::invalid_argument("TransitionSimSession::advance: input width mismatch");
  const SequenceView view(chunk);
  const obs::TraceSpan span("session_advance");

  live_idx_.clear();
  for (std::size_t b = 0; b < states_.size(); ++b)
    if (states_[b].live != 0) live_idx_.push_back(b);
  before_.resize(live_idx_.size());
  obs::count(obs::Counter::BatchSkips, states_.size() - live_idx_.size());

  // Task 0 advances the good machine; tasks 1.. the live batches. No early
  // exit: the session must carry every state to the chunk end.
  ThreadPool& pool = ThreadPool::global();
  if (scratch_.size() < pool.num_workers()) scratch_.resize(pool.num_workers());
  TransitionFaultSimulator::BatchRunner::AdvanceOptions opt;
  opt.early_exit = false;
  pool.parallel_for(live_idx_.size() + 1, [&](std::size_t k, std::size_t w) {
    if (k == 0) {
      good_.frame = 0;
      good_runner_.advance(good_, view, scratch_[w], opt);
      return;
    }
    SimBatchState& s = states_[live_idx_[k - 1]];
    before_[k - 1] = s.detected_slots;
    s.frame = 0;
    runners_[live_idx_[k - 1]].advance(s, view, scratch_[w], opt);
  });

  const std::size_t gained_before = num_detected_;
  for (std::size_t k = 0; k < live_idx_.size(); ++k) {
    const std::size_t b = live_idx_[k];
    const SimBatchState& s = states_[b];
    std::uint64_t newly = s.detected_slots & ~before_[k];
    while (newly) {
      const unsigned slot = static_cast<unsigned>(std::countr_zero(newly));
      newly &= newly - 1;
      DetectionRecord& dr = detection_[order_[b * 63 + slot - 1]];
      dr.detected = true;
      dr.time = static_cast<std::uint32_t>(now_ + s.detect_time[slot]);
      ++num_detected_;
    }
  }
  now_ += chunk.length();
  return num_detected_ - gained_before;
}

State TransitionSimSession::good_state() const {
  State s(nl_->num_dffs(), V3::X);
  for (std::size_t j = 0; j < s.size(); ++j) s[j] = good_.state[j].get(0);
  return s;
}

void TransitionSimSession::pair_state(std::size_t i, State& good, State& faulty,
                                      V3& prev_driven) const {
  const std::size_t p = pos_[i];
  const unsigned slot = static_cast<unsigned>(p % 63 + 1);
  const std::size_t b = p / 63;
  const SimBatchState& s = states_[b];
  const TransitionFaultSimulator::BatchRunner& runner = runners_[b];
  good.assign(nl_->num_dffs(), V3::X);
  faulty.assign(nl_->num_dffs(), V3::X);
  for (std::size_t j = 0; j < good.size(); ++j) {
    if (runner.samples_dff(j)) {
      good[j] = s.state[j].get(0);
      faulty[j] = s.state[j].get(slot);
    } else {
      // Outside the batch's cone-plus-support the runner does not maintain
      // the DFF; both machines hold the (identical) good-machine value.
      const V3 v = good_.state[j].get(0);
      good[j] = v;
      faulty[j] = v;
    }
  }
  prev_driven = s.prev_driven[p % 63];
}

TransitionSimSession::Snapshot TransitionSimSession::snapshot() const {
  Snapshot s;
  s.good = good_;
  for (std::size_t b = 0; b < states_.size(); ++b)
    if (states_[b].live != 0) s.live_states.emplace_back(b, states_[b]);
  s.detection = detection_;
  s.num_detected = num_detected_;
  s.now = now_;
  return s;
}

void TransitionSimSession::restore(const Snapshot& s) {
  good_ = s.good;
  std::size_t k = 0;
  for (std::size_t b = 0; b < states_.size(); ++b) {
    if (k < s.live_states.size() && s.live_states[k].first == b) {
      states_[b] = s.live_states[k].second;
      ++k;
    } else {
      states_[b].live = 0;
    }
  }
  detection_ = s.detection;
  num_detected_ = s.num_detected;
  now_ = s.now;
}

}  // namespace uniscan
