#include "sim/transition_sim.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "fault/fault.hpp"
#include "sim/sequential_sim.hpp"
#include "util/thread_pool.hpp"

namespace uniscan {

namespace {

/// Faulty slot value under the one-cycle gross-delay model.
inline V3 delayed_value(bool slow_to_rise, V3 driven_now, V3 driven_prev) noexcept {
  return slow_to_rise ? v3_and(driven_now, driven_prev) : v3_or(driven_now, driven_prev);
}

std::uint64_t observed_mask(const Netlist& nl, const std::vector<W3>& values) {
  std::uint64_t observed = 0;
  for (GateId po : nl.outputs()) {
    const W3 w = values[po];
    const bool good0 = (w.v0 & 1) != 0;
    const bool good1 = (w.v1 & 1) != 0;
    if (good1) observed |= w.v0;
    else if (good0) observed |= w.v1;
  }
  return observed & ~1ULL;
}

void record_latches(const Netlist& nl, const std::vector<W3>& state,
                    std::span<LatchRecord> latched, std::size_t t) {
  if (latched.empty()) return;
  for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
    const W3 w = state[j];
    const bool good0 = (w.v0 & 1) != 0;
    const bool good1 = (w.v1 & 1) != 0;
    std::uint64_t diff = 0;
    if (good1) diff = w.v0;
    else if (good0) diff = w.v1;
    diff &= ~1ULL;
    while (diff) {
      const unsigned slot = static_cast<unsigned>(std::countr_zero(diff));
      diff &= diff - 1;
      LatchRecord& lr = latched[slot - 1];
      if (!lr.latched || j >= lr.ff_index) {
        lr.latched = true;
        lr.ff_index = static_cast<std::uint32_t>(j);
        lr.time = static_cast<std::uint32_t>(t);
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// BatchRunner

TransitionFaultSimulator::BatchRunner::BatchRunner(const Netlist& nl,
                                                   std::span<const TransitionFault> faults)
    : nl_(&nl), faults_(faults) {
  if (faults.size() > 63) throw std::invalid_argument("BatchRunner: batch too large");
  stem_head_.assign(nl.num_gates(), kNone);
  branch_head_.assign(nl.num_gates(), kNone);
  next_.assign(faults.size(), kNone);
  pending_.assign(faults.size(), V3::X);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const TransitionFault& f = faults[i];
    slot_mask_ |= 1ULL << (i + 1);
    auto& head = (f.pin == kStemPin) ? stem_head_ : branch_head_;
    next_[i] = head[f.gate];
    head[f.gate] = static_cast<std::int32_t>(i);
  }
}

SimBatchState TransitionFaultSimulator::BatchRunner::initial_state() const {
  SimBatchState s;
  s.live = slot_mask_;
  s.state.assign(nl_->num_dffs(), W3::all_x());
  s.prev_driven.assign(faults_.size(), V3::X);
  return s;
}

void TransitionFaultSimulator::BatchRunner::apply_stems(GateId g, SimBatchState& s,
                                                        std::vector<W3>& values) const {
  for (std::int32_t i = stem_head_[g]; i != kNone; i = next_[i]) {
    const unsigned slot = static_cast<unsigned>(i + 1);
    const V3 now = values[g].get(slot);
    values[g].set(slot, delayed_value(faults_[i].slow_to_rise, now, s.prev_driven[i]));
    pending_[i] = now;
  }
}

void TransitionFaultSimulator::BatchRunner::apply_branches(GateId g, W3* fanin_buf,
                                                           std::size_t n, SimBatchState& s,
                                                           const std::vector<W3>& values) const {
  for (std::int32_t i = branch_head_[g]; i != kNone; i = next_[i]) {
    const TransitionFault& f = faults_[i];
    const std::size_t p = static_cast<std::size_t>(f.pin);
    if (p >= n) continue;
    const unsigned slot = static_cast<unsigned>(i + 1);
    const V3 now = values[nl_->gate(g).fanins[p]].get(slot);
    fanin_buf[p].set(slot, delayed_value(f.slow_to_rise, now, s.prev_driven[i]));
    pending_[i] = now;
  }
}

void TransitionFaultSimulator::BatchRunner::run_frame(SimBatchState& s,
                                                      const std::vector<V3>& pi,
                                                      std::vector<W3>& values) const {
  const Netlist& nl = *nl_;
  for (std::size_t i = 0; i < nl.num_inputs(); ++i)
    values[nl.inputs()[i]] = W3::broadcast(pi[i]);
  for (std::size_t j = 0; j < nl.num_dffs(); ++j) values[nl.dffs()[j]] = s.state[j];

  // Stem faults on boundary gates force before combinational evaluation.
  for (std::size_t j = 0; j < nl.num_dffs(); ++j)
    if (stem_head_[nl.dffs()[j]] != kNone) apply_stems(nl.dffs()[j], s, values);
  for (GateId pi_gate : nl.inputs())
    if (stem_head_[pi_gate] != kNone) apply_stems(pi_gate, s, values);

  W3 fanin_buf[64];
  for (GateId g : nl.topo_order()) {
    const Gate& gate = nl.gate(g);
    const std::size_t n = gate.fanins.size();
    for (std::size_t p = 0; p < n; ++p) fanin_buf[p] = values[gate.fanins[p]];
    if (branch_head_[g] != kNone) apply_branches(g, fanin_buf, n, s, values);
    values[g] = eval_gate_w3(gate.type, fanin_buf, n);
    if (stem_head_[g] != kNone) apply_stems(g, s, values);
  }

  for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
    const GateId ff = nl.dffs()[j];
    W3 d = values[nl.gate(ff).fanins[0]];
    if (branch_head_[ff] != kNone) {
      W3 buf[1] = {d};
      apply_branches(ff, buf, 1, s, values);
      d = buf[0];
    }
    s.state[j] = d;
  }

  // Commit launch histories (every fault site is evaluated every frame, so
  // every pending entry was refreshed above).
  for (std::size_t i = 0; i < faults_.size(); ++i) s.prev_driven[i] = pending_[i];
}

std::uint64_t TransitionFaultSimulator::BatchRunner::advance(SimBatchState& s,
                                                             const SequenceView& view,
                                                             std::vector<W3>& values,
                                                             const AdvanceOptions& opt) const {
  const Netlist& nl = *nl_;
  values.resize(nl.num_gates());
  std::uint64_t frames = 0;

  for (std::size_t t = s.frame; t < view.length(); ++t) {
    if (opt.checkpoints && t <= opt.capture_limit && opt.checkpoints->want(t)) {
      s.frame = t;  // snapshot the state (and launch history) entering frame t
      opt.checkpoints->save(opt.batch_index, s);
    }

    run_frame(s, view.vector_at(t), values);
    ++frames;

    std::uint64_t newly = observed_mask(nl, values) & s.live;
    while (newly) {
      const unsigned slot = static_cast<unsigned>(std::countr_zero(newly));
      newly &= newly - 1;
      s.detected_slots |= 1ULL << slot;
      s.detect_time[slot] = static_cast<std::uint32_t>(t);
      s.detect_count[slot] = 1;
      s.live &= ~(1ULL << slot);
    }
    if (opt.early_exit && s.live == 0) {
      s.frame = t + 1;
      return frames * nl.topo_order().size();
    }
    record_latches(nl, s.state, opt.latched, t);
  }

  s.frame = view.length();
  return frames * nl.topo_order().size();
}

// ---------------------------------------------------------------------------
// TransitionFaultSimulator

TransitionFaultSimulator::TransitionFaultSimulator(const Netlist& nl) : nl_(&nl) {
  if (!nl.is_finalized())
    throw std::invalid_argument("TransitionFaultSimulator: netlist not finalized");
}

std::vector<DetectionRecord> TransitionFaultSimulator::run(
    const TestSequence& seq, std::span<const TransitionFault> faults,
    std::vector<LatchRecord>* latched) const {
  return run(SequenceView(seq), faults, latched);
}

std::vector<DetectionRecord> TransitionFaultSimulator::run(
    const SequenceView& view, std::span<const TransitionFault> faults,
    std::vector<LatchRecord>* latched) const {
  std::vector<DetectionRecord> out(faults.size());
  if (latched) latched->assign(faults.size(), LatchRecord{});
  const std::size_t num_batches = (faults.size() + 62) / 63;
  ThreadPool& pool = ThreadPool::global();
  if (scratch_.size() < pool.num_workers()) scratch_.resize(pool.num_workers());
  pool.parallel_for(num_batches, [&](std::size_t b, std::size_t w) {
    const std::size_t base = b * 63;
    const std::size_t count = std::min<std::size_t>(63, faults.size() - base);
    BatchRunner runner(*nl_, faults.subspan(base, count));
    SimBatchState s = runner.initial_state();
    BatchRunner::AdvanceOptions opt;
    opt.early_exit = latched == nullptr;
    if (latched) opt.latched = std::span<LatchRecord>(latched->data() + base, count);
    gate_evals_.fetch_add(runner.advance(s, view, scratch_[w], opt),
                          std::memory_order_relaxed);
    for (std::size_t i = 0; i < count; ++i) {
      const unsigned slot = static_cast<unsigned>(i + 1);
      if (s.detected_slots & (1ULL << slot)) {
        out[base + i].detected = true;
        out[base + i].time = s.detect_time[slot];
      }
    }
  });
  return out;
}

bool TransitionFaultSimulator::detects_all(const TestSequence& seq,
                                           std::span<const TransitionFault> faults) const {
  return detects_all(SequenceView(seq), faults);
}

bool TransitionFaultSimulator::detects_all(const SequenceView& view,
                                           std::span<const TransitionFault> faults) const {
  const std::size_t num_batches = (faults.size() + 62) / 63;
  ThreadPool& pool = ThreadPool::global();
  if (scratch_.size() < pool.num_workers()) scratch_.resize(pool.num_workers());
  std::atomic<bool> ok{true};
  pool.parallel_for(num_batches, [&](std::size_t b, std::size_t w) {
    if (!ok.load(std::memory_order_relaxed)) return;  // cross-batch fail-fast
    const std::size_t base = b * 63;
    const std::size_t count = std::min<std::size_t>(63, faults.size() - base);
    BatchRunner runner(*nl_, faults.subspan(base, count));
    SimBatchState s = runner.initial_state();
    gate_evals_.fetch_add(runner.advance(s, view, scratch_[w], {}),
                          std::memory_order_relaxed);
    if ((s.detected_slots & runner.slot_mask()) != runner.slot_mask())
      ok.store(false, std::memory_order_relaxed);
  });
  return ok.load(std::memory_order_relaxed);
}

std::vector<std::size_t> TransitionFaultSimulator::detected_indices(
    const TestSequence& seq, std::span<const TransitionFault> faults) const {
  std::vector<std::size_t> out;
  const auto records = run(seq, faults);
  for (std::size_t i = 0; i < records.size(); ++i)
    if (records[i].detected) out.push_back(i);
  return out;
}

// ---------------------------------------------------------------------------
// TransitionSimSession

TransitionSimSession::TransitionSimSession(const Netlist& nl,
                                           std::span<const TransitionFault> faults)
    : nl_(&nl), faults_(faults.begin(), faults.end()) {
  if (!nl.is_finalized())
    throw std::invalid_argument("TransitionSimSession: netlist not finalized");
  values_.assign(nl.num_gates(), W3::all_x());
  detection_.assign(faults_.size(), DetectionRecord{});
  for (std::size_t base = 0; base < faults_.size(); base += 63) {
    const std::size_t count = std::min<std::size_t>(63, faults_.size() - base);
    Batch b;
    b.first_fault_index = base;
    b.faults.assign(faults_.begin() + static_cast<std::ptrdiff_t>(base),
                    faults_.begin() + static_cast<std::ptrdiff_t>(base + count));
    b.state.assign(nl.num_dffs(), W3::all_x());
    b.prev_driven.assign(count, V3::X);
    for (std::size_t i = 0; i < count; ++i) b.live |= 1ULL << (i + 1);
    batches_.push_back(std::move(b));
  }
  if (batches_.empty()) {
    Batch b;
    b.state.assign(nl.num_dffs(), W3::all_x());
    batches_.push_back(std::move(b));
  }
}

void TransitionSimSession::advance_batch(Batch& b, const TestSequence& chunk) {
  const Netlist& nl = *nl_;
  TransitionFaultSimulator::BatchRunner runner(nl, b.faults);
  SimBatchState s;
  s.live = b.live;
  s.state = std::move(b.state);
  s.prev_driven = std::move(b.prev_driven);
  TransitionFaultSimulator::BatchRunner::AdvanceOptions opt;
  opt.early_exit = false;  // the session must carry the state to the chunk end
  runner.advance(s, SequenceView(chunk), values_, opt);
  std::uint64_t newly = s.detected_slots;
  while (newly) {
    const unsigned slot = static_cast<unsigned>(std::countr_zero(newly));
    newly &= newly - 1;
    DetectionRecord& dr = detection_[b.first_fault_index + slot - 1];
    dr.detected = true;
    dr.time = static_cast<std::uint32_t>(now_ + s.detect_time[slot]);
    ++num_detected_;
  }
  b.live = s.live;
  b.state = std::move(s.state);
  b.prev_driven = std::move(s.prev_driven);
}

std::size_t TransitionSimSession::advance(const TestSequence& chunk) {
  if (chunk.num_inputs() != nl_->num_inputs())
    throw std::invalid_argument("TransitionSimSession::advance: input width mismatch");
  const std::size_t before = num_detected_;
  for (auto& b : batches_) advance_batch(b, chunk);
  now_ += chunk.length();
  return num_detected_ - before;
}

State TransitionSimSession::good_state() const {
  State s(nl_->num_dffs(), V3::X);
  const Batch& b = batches_.front();
  for (std::size_t j = 0; j < s.size(); ++j) s[j] = b.state[j].get(0);
  return s;
}

void TransitionSimSession::pair_state(std::size_t i, State& good, State& faulty,
                                      V3& prev_driven) const {
  const std::size_t batch_idx = i / 63;
  const unsigned slot = static_cast<unsigned>(i % 63 + 1);
  const Batch& b = batches_[batch_idx];
  good.assign(nl_->num_dffs(), V3::X);
  faulty.assign(nl_->num_dffs(), V3::X);
  for (std::size_t j = 0; j < good.size(); ++j) {
    good[j] = b.state[j].get(0);
    faulty[j] = b.state[j].get(slot);
  }
  prev_driven = b.prev_driven[i % 63];
}

TransitionSimSession::Snapshot TransitionSimSession::snapshot() const {
  Snapshot s;
  for (const auto& b : batches_) {
    s.states.push_back(b.state);
    s.prevs.push_back(b.prev_driven);
    s.live.push_back(b.live);
  }
  s.detection = detection_;
  s.num_detected = num_detected_;
  s.now = now_;
  return s;
}

void TransitionSimSession::restore(const Snapshot& s) {
  for (std::size_t i = 0; i < batches_.size(); ++i) {
    batches_[i].state = s.states[i];
    batches_[i].prev_driven = s.prevs[i];
    batches_[i].live = s.live[i];
  }
  detection_ = s.detection;
  num_detected_ = s.num_detected;
  now_ = s.now;
}

}  // namespace uniscan
