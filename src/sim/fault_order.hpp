// Hardest-first fault ordering for batch packing.
//
// The streaming sessions skip a 63-fault batch entirely once all of its
// faults are detected, so batch packing decides how much simulation the
// random bootstrap phase can retire: if accidentally-detected (easy) faults
// share batches, those batches go cold early and every later advance pays
// only for the hard remainder. Following the accidental-detection-index
// observation of Pomeranz & Reddy (PAPERS.md), faults are ranked by a static
// proxy for how unlikely accidental detection is: the shortest structural
// distance from the fault site to any primary output (through flip-flops,
// one edge per crossing). Deep sites are observed rarely, so they are packed
// first, together. The ordering is a pure function of the netlist and the
// fault list — identical at every thread count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace uniscan {

/// Per-gate shortest edge distance to any primary output (multi-source BFS
/// over the reversed netlist graph, flip-flops crossed like ordinary gates).
/// Gates that reach no output get num_gates() (hardest).
std::vector<std::uint32_t> observation_depth(const Netlist& nl);

/// Indices of `faults` ordered hardest (deepest fault site) first. Within a
/// depth class faults are grouped by ascending gate id — gate ids are
/// roughly topological, so equally-deep faults with overlapping observation
/// cones land in the same batch and their (correlated) detections kill whole
/// lanes together, which is what makes live-fault repacking (DESIGN.md §5j)
/// pay off early. Remaining ties keep fault-list order. Works for any fault
/// type with a `gate` member; the ordering is a pure function of the
/// netlist and the fault list — identical at every thread count.
template <typename FaultT>
std::vector<std::size_t> hardest_first_order(const Netlist& nl, std::span<const FaultT> faults) {
  const std::vector<std::uint32_t> depth = observation_depth(nl);
  std::vector<std::size_t> order(faults.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const std::uint32_t da = depth[faults[a].gate];
    const std::uint32_t db = depth[faults[b].gate];
    if (da != db) return da > db;
    return faults[a].gate < faults[b].gate;
  });
  return order;
}

}  // namespace uniscan
