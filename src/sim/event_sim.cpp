#include "sim/event_sim.hpp"

#include <stdexcept>

namespace uniscan {

EventSimulator::EventSimulator(const Netlist& nl) : nl_(&nl), compiled_(nl.compiled_shared()) {
  values_.assign(nl.num_gates(), V3::X);
  state_.assign(nl.num_dffs(), V3::X);
  prev_pi_.assign(nl.num_inputs(), V3::X);
  buckets_.assign(compiled_->num_levels(), {});
  queued_.assign(nl.num_gates(), 0);
}

void EventSimulator::reset(const State& initial) {
  if (initial.size() != nl_->num_dffs())
    throw std::invalid_argument("EventSimulator::reset: state width mismatch");
  state_ = initial;
  needs_full_eval_ = true;
}

void EventSimulator::enqueue_fanouts(GateId g) {
  for (GateId fo : compiled_->fanouts(g)) {
    if (!is_combinational(compiled_->type(fo))) continue;  // DFFs sampled at end of frame
    if (queued_[fo]) continue;
    queued_[fo] = 1;
    buckets_[compiled_->level(fo)].push_back(fo);
  }
}

void EventSimulator::set_boundary(GateId g, V3 v) {
  if (values_[g] == v) return;
  values_[g] = v;
  enqueue_fanouts(g);
}

FrameValues EventSimulator::step(const std::vector<V3>& pi) {
  const Netlist& nl = *nl_;
  if (pi.size() != nl.num_inputs())
    throw std::invalid_argument("EventSimulator::step: PI width mismatch");

  if (needs_full_eval_) {
    needs_full_eval_ = false;
    for (std::size_t i = 0; i < pi.size(); ++i) values_[compiled_->inputs()[i]] = pi[i];
    for (std::size_t j = 0; j < state_.size(); ++j) values_[compiled_->dffs()[j]] = state_[j];
    compiled_->eval_full_v3(values_.data());
    gate_evals_ += compiled_->eval_order().size();
  } else {
    // Seed events from changed boundary values, then propagate by level.
    for (std::size_t i = 0; i < pi.size(); ++i) set_boundary(compiled_->inputs()[i], pi[i]);
    for (std::size_t j = 0; j < state_.size(); ++j) set_boundary(compiled_->dffs()[j], state_[j]);
    for (auto& bucket : buckets_) {
      // enqueue_fanouts may append to HIGHER buckets while this one drains;
      // same-level appends cannot happen (fanout level > fanin level).
      for (std::size_t k = 0; k < bucket.size(); ++k) {
        const GateId g = bucket[k];
        queued_[g] = 0;
        ++gate_evals_;
        const V3 v = compiled_->eval_gate_v3_at(g, values_.data());
        if (v != values_[g]) {
          values_[g] = v;
          enqueue_fanouts(g);
        }
      }
      bucket.clear();
    }
  }
  prev_pi_ = pi;

  FrameValues out;
  out.po.reserve(nl.num_outputs());
  for (GateId po : compiled_->outputs()) out.po.push_back(values_[po]);
  out.next_state.reserve(nl.num_dffs());
  for (GateId d : compiled_->dff_d()) out.next_state.push_back(values_[d]);
  state_ = out.next_state;
  return out;
}

SimTrace EventSimulator::simulate(const TestSequence& seq, const State& initial) {
  reset(initial);
  SimTrace trace;
  trace.state.push_back(initial);
  for (std::size_t t = 0; t < seq.length(); ++t) {
    FrameValues fv = step(seq.vector_at(t));
    trace.po.push_back(std::move(fv.po));
    trace.state.push_back(fv.next_state);
  }
  return trace;
}

}  // namespace uniscan
