#include "sim/event_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace uniscan {

EventSimulator::EventSimulator(const Netlist& nl) : nl_(&nl) {
  if (!nl.is_finalized()) throw std::invalid_argument("EventSimulator: netlist not finalized");
  values_.assign(nl.num_gates(), V3::X);
  state_.assign(nl.num_dffs(), V3::X);
  prev_pi_.assign(nl.num_inputs(), V3::X);
  std::uint32_t max_level = 0;
  for (GateId g : nl.topo_order()) max_level = std::max(max_level, nl.levels()[g]);
  buckets_.assign(max_level + 1, {});
  queued_.assign(nl.num_gates(), 0);
}

void EventSimulator::reset(const State& initial) {
  if (initial.size() != nl_->num_dffs())
    throw std::invalid_argument("EventSimulator::reset: state width mismatch");
  state_ = initial;
  needs_full_eval_ = true;
}

void EventSimulator::enqueue_fanouts(GateId g) {
  for (GateId fo : nl_->fanouts()[g]) {
    if (!is_combinational(nl_->gate(fo).type)) continue;  // DFFs sampled at end of frame
    if (queued_[fo]) continue;
    queued_[fo] = 1;
    buckets_[nl_->levels()[fo]].push_back(fo);
  }
}

void EventSimulator::set_boundary(GateId g, V3 v) {
  if (values_[g] == v) return;
  values_[g] = v;
  enqueue_fanouts(g);
}

FrameValues EventSimulator::step(const std::vector<V3>& pi) {
  const Netlist& nl = *nl_;
  if (pi.size() != nl.num_inputs())
    throw std::invalid_argument("EventSimulator::step: PI width mismatch");

  V3 fanin_buf[64];
  const auto evaluate = [&](GateId g) {
    const Gate& gate = nl.gate(g);
    const std::size_t n = gate.fanins.size();
    for (std::size_t p = 0; p < n; ++p) fanin_buf[p] = values_[gate.fanins[p]];
    ++gate_evals_;
    return eval_gate_v3(gate.type, fanin_buf, n);
  };

  if (needs_full_eval_) {
    needs_full_eval_ = false;
    for (std::size_t i = 0; i < pi.size(); ++i) values_[nl.inputs()[i]] = pi[i];
    for (std::size_t j = 0; j < state_.size(); ++j) values_[nl.dffs()[j]] = state_[j];
    for (GateId g : nl.topo_order()) values_[g] = evaluate(g);
  } else {
    // Seed events from changed boundary values, then propagate by level.
    for (std::size_t i = 0; i < pi.size(); ++i) set_boundary(nl.inputs()[i], pi[i]);
    for (std::size_t j = 0; j < state_.size(); ++j) set_boundary(nl.dffs()[j], state_[j]);
    for (auto& bucket : buckets_) {
      // enqueue_fanouts may append to HIGHER buckets while this one drains;
      // same-level appends cannot happen (fanout level > fanin level).
      for (std::size_t k = 0; k < bucket.size(); ++k) {
        const GateId g = bucket[k];
        queued_[g] = 0;
        const V3 v = evaluate(g);
        if (v != values_[g]) {
          values_[g] = v;
          enqueue_fanouts(g);
        }
      }
      bucket.clear();
    }
  }
  prev_pi_ = pi;

  FrameValues out;
  out.po.reserve(nl.num_outputs());
  for (GateId po : nl.outputs()) out.po.push_back(values_[po]);
  out.next_state.reserve(nl.num_dffs());
  for (GateId ff : nl.dffs()) out.next_state.push_back(values_[nl.gate(ff).fanins[0]]);
  state_ = out.next_state;
  return out;
}

SimTrace EventSimulator::simulate(const TestSequence& seq, const State& initial) {
  reset(initial);
  SimTrace trace;
  trace.state.push_back(initial);
  for (std::size_t t = 0; t < seq.length(); ++t) {
    FrameValues fv = step(seq.vector_at(t));
    trace.po.push_back(std::move(fv.po));
    trace.state.push_back(fv.next_state);
  }
  return trace;
}

}  // namespace uniscan
