#include "sim/sequential_sim.hpp"

#include <stdexcept>

namespace uniscan {

V3 eval_gate_v3(GateType type, const V3* in, std::size_t n) noexcept {
  switch (type) {
    case GateType::Buf:
      return in[0];
    case GateType::Not:
      return v3_not(in[0]);
    case GateType::And:
    case GateType::Nand: {
      V3 acc = in[0];
      for (std::size_t i = 1; i < n; ++i) acc = v3_and(acc, in[i]);
      return type == GateType::Nand ? v3_not(acc) : acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      V3 acc = in[0];
      for (std::size_t i = 1; i < n; ++i) acc = v3_or(acc, in[i]);
      return type == GateType::Nor ? v3_not(acc) : acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      V3 acc = in[0];
      for (std::size_t i = 1; i < n; ++i) acc = v3_xor(acc, in[i]);
      return type == GateType::Xnor ? v3_not(acc) : acc;
    }
    case GateType::Mux2:
      return v3_mux(in[0], in[1], in[2]);
    case GateType::Const0:
      return V3::Zero;
    case GateType::Const1:
      return V3::One;
    case GateType::Input:
    case GateType::Dff:
      break;  // boundary values; never evaluated
  }
  return V3::X;
}

SequentialSimulator::SequentialSimulator(const Netlist& nl) : nl_(&nl), compiled_(nl.compiled_shared()) {
  values_.assign(nl.num_gates(), V3::X);
}

FrameValues SequentialSimulator::eval_frame(const State& state, const std::vector<V3>& pi) const {
  const Netlist& nl = *nl_;
  if (pi.size() != nl.num_inputs())
    throw std::invalid_argument("SequentialSimulator: PI vector width mismatch");
  if (state.size() != nl.num_dffs())
    throw std::invalid_argument("SequentialSimulator: state width mismatch");

  for (std::size_t i = 0; i < pi.size(); ++i) values_[nl.inputs()[i]] = pi[i];
  for (std::size_t i = 0; i < state.size(); ++i) values_[nl.dffs()[i]] = state[i];

  compiled_->eval_full_v3(values_.data());

  FrameValues out;
  out.po.reserve(nl.num_outputs());
  for (GateId po : nl.outputs()) out.po.push_back(values_[po]);
  out.next_state.reserve(nl.num_dffs());
  for (GateId ff : nl.dffs()) out.next_state.push_back(values_[nl.gate(ff).fanins[0]]);
  return out;
}

FrameValues SequentialSimulator::step(const State& state, const std::vector<V3>& pi) const {
  return eval_frame(state, pi);
}

SimTrace SequentialSimulator::simulate(const TestSequence& seq, const State& initial) const {
  SimTrace trace;
  trace.state.push_back(initial);
  State cur = initial;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    FrameValues fv = eval_frame(cur, seq.vector_at(t));
    trace.po.push_back(std::move(fv.po));
    cur = std::move(fv.next_state);
    trace.state.push_back(cur);
  }
  return trace;
}

}  // namespace uniscan
