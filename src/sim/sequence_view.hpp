// Copy-free view of a TestSequence for trial simulations.
//
// Static compaction evaluates thousands of trial subsequences ("the current
// selection minus vector t"); materializing each trial as a TestSequence
// costs O(L·PI) per trial. A SequenceView instead addresses the base
// sequence through an optional keep-list (indices of selected frames, as
// maintained by restoration and the omission engine) plus an optional
// single skipped logical position (the vector under trial erasure), so
// building a trial is O(1) and reading a frame is O(1).
//
// The view references the base sequence and the keep-list; both must
// outlive it. A default-constructed view is empty.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/logic3.hpp"
#include "sim/sequence.hpp"

namespace uniscan {

class SequenceView {
 public:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  SequenceView() = default;

  /// View of the whole sequence.
  explicit SequenceView(const TestSequence& base) : base_(&base), length_(base.length()) {}

  /// View of the frames whose base indices are in `keep` (strictly
  /// increasing). The indices are referenced, not copied.
  SequenceView(const TestSequence& base, std::span<const std::size_t> keep)
      : base_(&base), keep_(keep.data()), length_(keep.size()) {}

  /// Copy of this view with the frame at logical position `pos` skipped.
  /// At most one skip level is supported (all a trial erasure needs).
  SequenceView without(std::size_t pos) const {
    if (skip_ != npos) throw std::logic_error("SequenceView::without: view already has a skip");
    if (pos >= length_) throw std::out_of_range("SequenceView::without: position out of range");
    SequenceView v = *this;
    v.skip_ = pos;
    --v.length_;
    return v;
  }

  std::size_t length() const noexcept { return length_; }
  bool empty() const noexcept { return length_ == 0; }
  std::size_t num_inputs() const noexcept { return base_ ? base_->num_inputs() : 0; }

  /// Index into the base sequence of logical frame `t`.
  std::size_t base_index(std::size_t t) const noexcept {
    if (skip_ != npos && t >= skip_) ++t;
    return keep_ ? keep_[t] : t;
  }

  const std::vector<V3>& vector_at(std::size_t t) const {
    return base_->vector_at(base_index(t));
  }

  /// Materialize into an owning TestSequence (used at API boundaries).
  TestSequence materialize() const {
    TestSequence out(num_inputs());
    for (std::size_t t = 0; t < length_; ++t) out.append(vector_at(t));
    return out;
  }

 private:
  const TestSequence* base_ = nullptr;
  const std::size_t* keep_ = nullptr;  // null => identity mapping
  std::size_t length_ = 0;
  std::size_t skip_ = npos;  // logical position removed from the view
};

}  // namespace uniscan
