#include "sim/fault_sim_session.hpp"

#include "sim/session_core.hpp"

namespace uniscan {

struct FaultSimSession::Impl : SessionCoreT<FaultSimulator> {
  Impl(const Netlist& nl, std::span<const Fault> faults)
      : SessionCoreT<FaultSimulator>(nl, faults, "FaultSimSession") {}
};

FaultSimSession::FaultSimSession(const Netlist& nl, std::span<const Fault> faults)
    : impl_(std::make_unique<Impl>(nl, faults)) {}

FaultSimSession::~FaultSimSession() = default;
FaultSimSession::FaultSimSession(FaultSimSession&&) noexcept = default;
FaultSimSession& FaultSimSession::operator=(FaultSimSession&&) noexcept = default;

std::size_t FaultSimSession::advance(const TestSequence& chunk) { return impl_->advance(chunk); }
std::size_t FaultSimSession::now() const noexcept { return impl_->now(); }
std::size_t FaultSimSession::num_faults() const noexcept { return impl_->num_faults(); }
bool FaultSimSession::is_detected(std::size_t fault_index) const {
  return impl_->is_detected(fault_index);
}
const std::vector<DetectionRecord>& FaultSimSession::detections() const noexcept {
  return impl_->detections();
}
std::size_t FaultSimSession::num_detected() const noexcept { return impl_->num_detected(); }
const CompiledNetlist& FaultSimSession::compiled() const noexcept { return impl_->compiled(); }
State FaultSimSession::good_state() const { return impl_->good_state(); }
void FaultSimSession::pair_state(std::size_t fault_index, State& good, State& faulty) const {
  impl_->pair_state(fault_index, good, faulty, nullptr);
}

FaultSimSession::Snapshot FaultSimSession::snapshot() const {
  Snapshot s;
  s.state_ = impl_->snapshot();
  return s;
}

void FaultSimSession::restore(const Snapshot& s) { impl_->restore(s.state_); }

}  // namespace uniscan
