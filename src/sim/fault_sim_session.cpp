#include "sim/fault_sim_session.hpp"

#include <bit>
#include <stdexcept>

namespace uniscan {

FaultSimSession::FaultSimSession(const Netlist& nl, std::span<const Fault> faults)
    : nl_(&nl), faults_(faults.begin(), faults.end()) {
  if (!nl.is_finalized()) throw std::invalid_argument("FaultSimSession: netlist not finalized");
  values_.assign(nl.num_gates(), W3::all_x());
  detection_.assign(faults_.size(), DetectionRecord{});

  for (std::size_t base = 0; base < faults_.size(); base += 63) {
    const std::size_t count = std::min<std::size_t>(63, faults_.size() - base);
    Batch b;
    b.first_fault_index = base;
    b.faults.assign(faults_.begin() + static_cast<std::ptrdiff_t>(base),
                    faults_.begin() + static_cast<std::ptrdiff_t>(base + count));
    b.state.assign(nl.num_dffs(), W3::all_x());
    b.stem_set0.assign(nl.num_gates(), 0);
    b.stem_set1.assign(nl.num_gates(), 0);
    b.has_branch.assign(nl.num_gates(), 0);
    for (std::size_t i = 0; i < count; ++i) {
      const Fault& f = b.faults[i];
      const std::uint64_t bit = 1ULL << (i + 1);
      b.live |= bit;
      if (f.pin == kStemPin) {
        (f.stuck_one ? b.stem_set1[f.gate] : b.stem_set0[f.gate]) |= bit;
      } else {
        Batch::BranchForce* bf = nullptr;
        for (auto& br : b.branches)
          if (br.gate == f.gate && br.pin == f.pin) bf = &br;
        if (!bf) {
          b.branches.push_back(Batch::BranchForce{f.gate, f.pin, 0, 0});
          bf = &b.branches.back();
          b.has_branch[f.gate] = 1;
        }
        (f.stuck_one ? bf->set1 : bf->set0) |= bit;
      }
    }
    batches_.push_back(std::move(b));
  }
  // Ensure at least one batch exists so good_state() works on empty universes.
  if (batches_.empty()) {
    Batch b;
    b.state.assign(nl.num_dffs(), W3::all_x());
    b.stem_set0.assign(nl.num_gates(), 0);
    b.stem_set1.assign(nl.num_gates(), 0);
    b.has_branch.assign(nl.num_gates(), 0);
    batches_.push_back(std::move(b));
  }
}

void FaultSimSession::advance_batch(Batch& b, const TestSequence& chunk) {
  const Netlist& nl = *nl_;
  std::vector<W3>& values = values_;
  W3 fanin_buf[64];

  const auto apply_stem = [&](GateId g, W3 w) -> W3 {
    const std::uint64_t touched = b.stem_set0[g] | b.stem_set1[g];
    if (!touched) return w;
    return W3{(w.v0 & ~touched) | b.stem_set0[g], (w.v1 & ~touched) | b.stem_set1[g]};
  };
  const auto apply_branch = [&](GateId g, std::size_t pin, W3 w) -> W3 {
    for (const auto& br : b.branches) {
      if (br.gate == g && br.pin == static_cast<std::int16_t>(pin)) {
        const std::uint64_t touched = br.set0 | br.set1;
        return W3{(w.v0 & ~touched) | br.set0, (w.v1 & ~touched) | br.set1};
      }
    }
    return w;
  };

  for (std::size_t t = 0; t < chunk.length(); ++t) {
    const auto& vec = chunk.vector_at(t);
    for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
      const GateId pi = nl.inputs()[i];
      values[pi] = apply_stem(pi, W3::broadcast(vec[i]));
    }
    for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
      const GateId ff = nl.dffs()[j];
      values[ff] = apply_stem(ff, b.state[j]);
    }
    for (GateId g : nl.topo_order()) {
      const Gate& gate = nl.gate(g);
      const std::size_t n = gate.fanins.size();
      if (b.has_branch[g]) {
        for (std::size_t p = 0; p < n; ++p)
          fanin_buf[p] = apply_branch(g, p, values[gate.fanins[p]]);
      } else {
        for (std::size_t p = 0; p < n; ++p) fanin_buf[p] = values[gate.fanins[p]];
      }
      values[g] = apply_stem(g, eval_gate_w3(gate.type, fanin_buf, n));
    }

    for (GateId po : nl.outputs()) {
      const W3 w = values[po];
      const bool good0 = (w.v0 & 1) != 0;
      const bool good1 = (w.v1 & 1) != 0;
      std::uint64_t newly = 0;
      if (good1) newly = w.v0 & b.live;
      else if (good0) newly = w.v1 & b.live;
      while (newly) {
        const unsigned slot = static_cast<unsigned>(std::countr_zero(newly));
        newly &= newly - 1;
        b.live &= ~(1ULL << slot);
        DetectionRecord& dr = detection_[b.first_fault_index + slot - 1];
        dr.detected = true;
        dr.time = static_cast<std::uint32_t>(now_ + t);
        ++num_detected_;
      }
    }

    for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
      const GateId ff = nl.dffs()[j];
      W3 d = values[nl.gate(ff).fanins[0]];
      if (b.has_branch[ff]) d = apply_branch(ff, 0, d);
      b.state[j] = d;
    }
  }
}

std::size_t FaultSimSession::advance(const TestSequence& chunk) {
  if (chunk.num_inputs() != nl_->num_inputs())
    throw std::invalid_argument("FaultSimSession::advance: input width mismatch");
  const std::size_t before = num_detected_;
  for (auto& b : batches_) advance_batch(b, chunk);
  now_ += chunk.length();
  return num_detected_ - before;
}

State FaultSimSession::good_state() const {
  State s(nl_->num_dffs(), V3::X);
  const Batch& b = batches_.front();
  for (std::size_t j = 0; j < s.size(); ++j) s[j] = b.state[j].get(0);
  return s;
}

void FaultSimSession::pair_state(std::size_t fault_index, State& good, State& faulty) const {
  const std::size_t batch_idx = fault_index / 63;
  const unsigned slot = static_cast<unsigned>(fault_index % 63 + 1);
  const Batch& b = batches_[batch_idx];
  good.assign(nl_->num_dffs(), V3::X);
  faulty.assign(nl_->num_dffs(), V3::X);
  for (std::size_t j = 0; j < good.size(); ++j) {
    good[j] = b.state[j].get(0);
    faulty[j] = b.state[j].get(slot);
  }
}

FaultSimSession::Snapshot FaultSimSession::snapshot() const {
  Snapshot s;
  s.states.reserve(batches_.size());
  s.live.reserve(batches_.size());
  for (const auto& b : batches_) {
    s.states.push_back(b.state);
    s.live.push_back(b.live);
  }
  s.detection = detection_;
  s.num_detected = num_detected_;
  s.now = now_;
  return s;
}

void FaultSimSession::restore(const Snapshot& s) {
  for (std::size_t i = 0; i < batches_.size(); ++i) {
    batches_[i].state = s.states[i];
    batches_[i].live = s.live[i];
  }
  detection_ = s.detection;
  num_detected_ = s.num_detected;
  now_ = s.now;
}

}  // namespace uniscan
