#include "sim/fault_sim_session.hpp"

#include <bit>
#include <stdexcept>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sim/fault_order.hpp"
#include "sim/sequence_view.hpp"
#include "util/thread_pool.hpp"

namespace uniscan {

FaultSimSession::FaultSimSession(const Netlist& nl, std::span<const Fault> faults)
    : nl_(&nl),
      compiled_(nl),
      faults_(faults.begin(), faults.end()),
      good_runner_(compiled_, std::span<const Fault>{}) {
  detection_.assign(faults_.size(), DetectionRecord{});
  good_ = good_runner_.initial_state();

  order_ = hardest_first_order(nl, std::span<const Fault>(faults_));
  pos_.resize(order_.size());
  packed_.reserve(order_.size());
  for (std::size_t p = 0; p < order_.size(); ++p) {
    pos_[order_[p]] = p;
    packed_.push_back(faults_[order_[p]]);
  }

  const std::size_t num_batches = (packed_.size() + 62) / 63;
  runners_.reserve(num_batches);
  states_.reserve(num_batches);
  for (std::size_t b = 0; b < num_batches; ++b) {
    const std::size_t lo = b * 63;
    const std::size_t count = std::min<std::size_t>(63, packed_.size() - lo);
    runners_.emplace_back(compiled_, std::span<const Fault>(packed_.data() + lo, count));
    states_.push_back(runners_.back().initial_state());
  }
}

std::size_t FaultSimSession::advance(const TestSequence& chunk) {
  if (chunk.num_inputs() != nl_->num_inputs())
    throw std::invalid_argument("FaultSimSession::advance: input width mismatch");
  const SequenceView view(chunk);
  const obs::TraceSpan span("session_advance");

  live_idx_.clear();
  for (std::size_t b = 0; b < states_.size(); ++b)
    if (states_[b].live != 0) live_idx_.push_back(b);
  before_.resize(live_idx_.size());
  obs::count(obs::Counter::BatchSkips, states_.size() - live_idx_.size());

  // Task 0 advances the good machine; tasks 1.. advance the live batches.
  // Sessions carry their state across chunks, so every advance restarts the
  // per-chunk frame counter and runs without early exit (the state must be
  // valid at the chunk end even when every slot dies mid-chunk).
  ThreadPool& pool = ThreadPool::global();
  if (scratch_.size() < pool.num_workers()) scratch_.resize(pool.num_workers());
  FaultSimulator::BatchRunner::AdvanceOptions opt;
  opt.early_exit = false;
  pool.parallel_for(live_idx_.size() + 1, [&](std::size_t k, std::size_t w) {
    if (k == 0) {
      good_.frame = 0;
      good_runner_.advance(good_, view, scratch_[w], opt);
      return;
    }
    SimBatchState& s = states_[live_idx_[k - 1]];
    before_[k - 1] = s.detected_slots;
    s.frame = 0;
    runners_[live_idx_[k - 1]].advance(s, view, scratch_[w], opt);
  });

  // Deterministic merge, in batch order.
  const std::size_t gained_before = num_detected_;
  for (std::size_t k = 0; k < live_idx_.size(); ++k) {
    const std::size_t b = live_idx_[k];
    const SimBatchState& s = states_[b];
    std::uint64_t newly = s.detected_slots & ~before_[k];
    while (newly) {
      const unsigned slot = static_cast<unsigned>(std::countr_zero(newly));
      newly &= newly - 1;
      DetectionRecord& dr = detection_[order_[b * 63 + slot - 1]];
      dr.detected = true;
      dr.time = static_cast<std::uint32_t>(now_ + s.detect_time[slot]);
      ++num_detected_;
    }
  }
  now_ += chunk.length();
  return num_detected_ - gained_before;
}

State FaultSimSession::good_state() const {
  State s(nl_->num_dffs(), V3::X);
  for (std::size_t j = 0; j < s.size(); ++j) s[j] = good_.state[j].get(0);
  return s;
}

void FaultSimSession::pair_state(std::size_t fault_index, State& good, State& faulty) const {
  const std::size_t p = pos_[fault_index];
  const unsigned slot = static_cast<unsigned>(p % 63 + 1);
  const std::size_t b = p / 63;
  const SimBatchState& s = states_[b];
  const FaultSimulator::BatchRunner& runner = runners_[b];
  good.assign(nl_->num_dffs(), V3::X);
  faulty.assign(nl_->num_dffs(), V3::X);
  for (std::size_t j = 0; j < good.size(); ++j) {
    if (runner.samples_dff(j)) {
      good[j] = s.state[j].get(0);
      faulty[j] = s.state[j].get(slot);
    } else {
      // Outside the batch's cone-plus-support the runner does not maintain
      // the DFF; both machines hold the (identical) good-machine value.
      const V3 v = good_.state[j].get(0);
      good[j] = v;
      faulty[j] = v;
    }
  }
}

FaultSimSession::Snapshot FaultSimSession::snapshot() const {
  Snapshot s;
  s.good = good_;
  for (std::size_t b = 0; b < states_.size(); ++b)
    if (states_[b].live != 0) s.live_states.emplace_back(b, states_[b]);
  s.detection = detection_;
  s.num_detected = num_detected_;
  s.now = now_;
  return s;
}

void FaultSimSession::restore(const Snapshot& s) {
  good_ = s.good;
  // Batches live at capture time get their state back. Batches absent from
  // the snapshot were dead at capture time, so only their live mask needs
  // restoring: a dead batch's machine state is never read (advance skips it,
  // pair_state is only called for undetected faults), and the batch can only
  // come back to life through a restore that also carries its state.
  std::size_t k = 0;
  for (std::size_t b = 0; b < states_.size(); ++b) {
    if (k < s.live_states.size() && s.live_states[k].first == b) {
      states_[b] = s.live_states[k].second;
      ++k;
    } else {
      states_[b].live = 0;
    }
  }
  detection_ = s.detection;
  num_detected_ = s.num_detected;
  now_ = s.now;
}

}  // namespace uniscan
