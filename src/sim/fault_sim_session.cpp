#include "sim/fault_sim_session.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sim/fault_order.hpp"
#include "sim/sequence_view.hpp"
#include "util/thread_pool.hpp"

namespace uniscan {

namespace {

/// Width-tagged payload behind the opaque session Snapshot.
template <class Word>
struct SessionSnapshotT {
  SimBatchStateT<Word> good;
  std::vector<std::pair<std::size_t, SimBatchStateT<Word>>> live_states;
  std::vector<DetectionRecord> detection;
  std::size_t num_detected = 0;
  std::size_t now = 0;
};

}  // namespace

struct FaultSimSession::Impl {
  virtual ~Impl() = default;
  virtual std::size_t advance(const TestSequence& chunk) = 0;
  virtual std::size_t now() const noexcept = 0;
  virtual std::size_t num_faults() const noexcept = 0;
  virtual bool is_detected(std::size_t fault_index) const = 0;
  virtual const std::vector<DetectionRecord>& detections() const noexcept = 0;
  virtual std::size_t num_detected() const noexcept = 0;
  virtual const CompiledNetlist& compiled() const noexcept = 0;
  virtual State good_state() const = 0;
  virtual void pair_state(std::size_t fault_index, State& good, State& faulty) const = 0;
  virtual std::shared_ptr<const void> snapshot() const = 0;
  virtual void restore(const void* snap) = 0;
  virtual SlotWidth width() const noexcept = 0;
};

namespace {

template <class Word>
class FaultSessionImpl final : public FaultSimSession::Impl {
 public:
  static constexpr std::size_t kPer = WordTraits<Word>::kBits - 1;
  using Runner = FaultSimulator::BatchRunnerT<Word>;
  using BatchState = SimBatchStateT<Word>;

  FaultSessionImpl(const Netlist& nl, std::span<const Fault> faults)
      : nl_(&nl),
        compiled_(nl),
        faults_(faults.begin(), faults.end()),
        good_runner_(compiled_, std::span<const Fault>{}) {
    detection_.assign(faults_.size(), DetectionRecord{});
    good_ = good_runner_.initial_state();

    order_ = hardest_first_order(nl, std::span<const Fault>(faults_));
    pos_.resize(order_.size());
    packed_.reserve(order_.size());
    for (std::size_t p = 0; p < order_.size(); ++p) {
      pos_[order_[p]] = p;
      packed_.push_back(faults_[order_[p]]);
    }

    const std::size_t num_batches = (packed_.size() + kPer - 1) / kPer;
    runners_.reserve(num_batches);
    states_.reserve(num_batches);
    for (std::size_t b = 0; b < num_batches; ++b) {
      const std::size_t lo = b * kPer;
      const std::size_t count = std::min<std::size_t>(kPer, packed_.size() - lo);
      runners_.emplace_back(compiled_, std::span<const Fault>(packed_.data() + lo, count));
      states_.push_back(runners_.back().initial_state());
    }
  }

  std::size_t advance(const TestSequence& chunk) override {
    if (chunk.num_inputs() != nl_->num_inputs())
      throw std::invalid_argument("FaultSimSession::advance: input width mismatch");
    const SequenceView view(chunk);
    const obs::TraceSpan span("session_advance");

    live_idx_.clear();
    for (std::size_t b = 0; b < states_.size(); ++b)
      if (w_any(states_[b].live)) live_idx_.push_back(b);
    before_.resize(live_idx_.size());
    obs::count(obs::Counter::BatchSkips, states_.size() - live_idx_.size());

    // Task 0 advances the good machine; tasks 1.. advance the live batches.
    // Sessions carry their state across chunks, so every advance restarts the
    // per-chunk frame counter and runs without early exit (the state must be
    // valid at the chunk end even when every slot dies mid-chunk).
    ThreadPool& pool = ThreadPool::global();
    if (scratch_.size() < pool.num_workers()) scratch_.resize(pool.num_workers());
    typename Runner::AdvanceOptions opt;
    opt.early_exit = false;
    pool.parallel_for(live_idx_.size() + 1, [&](std::size_t k, std::size_t w) {
      if (k == 0) {
        good_.frame = 0;
        good_runner_.advance(good_, view, scratch_[w], opt);
        return;
      }
      BatchState& s = states_[live_idx_[k - 1]];
      before_[k - 1] = s.detected_slots;
      s.frame = 0;
      runners_[live_idx_[k - 1]].advance(s, view, scratch_[w], opt);
    });

    // Deterministic merge, in batch order.
    const std::size_t gained_before = num_detected_;
    for (std::size_t k = 0; k < live_idx_.size(); ++k) {
      const std::size_t b = live_idx_[k];
      const BatchState& s = states_[b];
      const Word newly = s.detected_slots & ~before_[k];
      w_for_each_set(newly, [&](unsigned slot) {
        DetectionRecord& dr = detection_[order_[b * kPer + slot - 1]];
        dr.detected = true;
        dr.time = static_cast<std::uint32_t>(now_ + s.detect_time[slot]);
        ++num_detected_;
      });
    }
    now_ += chunk.length();
    return num_detected_ - gained_before;
  }

  std::size_t now() const noexcept override { return now_; }
  std::size_t num_faults() const noexcept override { return faults_.size(); }
  bool is_detected(std::size_t i) const override { return detection_[i].detected; }
  const std::vector<DetectionRecord>& detections() const noexcept override { return detection_; }
  std::size_t num_detected() const noexcept override { return num_detected_; }
  const CompiledNetlist& compiled() const noexcept override { return compiled_; }

  State good_state() const override {
    State s(nl_->num_dffs(), V3::X);
    for (std::size_t j = 0; j < s.size(); ++j) s[j] = good_.state[j].get(0);
    return s;
  }

  void pair_state(std::size_t fault_index, State& good, State& faulty) const override {
    const std::size_t p = pos_[fault_index];
    const unsigned slot = static_cast<unsigned>(p % kPer + 1);
    const std::size_t b = p / kPer;
    const BatchState& s = states_[b];
    const Runner& runner = runners_[b];
    good.assign(nl_->num_dffs(), V3::X);
    faulty.assign(nl_->num_dffs(), V3::X);
    for (std::size_t j = 0; j < good.size(); ++j) {
      if (runner.samples_dff(j)) {
        good[j] = s.state[j].get(0);
        faulty[j] = s.state[j].get(slot);
      } else {
        // Outside the batch's cone-plus-support the runner does not maintain
        // the DFF; both machines hold the (identical) good-machine value.
        const V3 v = good_.state[j].get(0);
        good[j] = v;
        faulty[j] = v;
      }
    }
  }

  std::shared_ptr<const void> snapshot() const override {
    auto s = std::make_shared<SessionSnapshotT<Word>>();
    s->good = good_;
    for (std::size_t b = 0; b < states_.size(); ++b)
      if (w_any(states_[b].live)) s->live_states.emplace_back(b, states_[b]);
    s->detection = detection_;
    s->num_detected = num_detected_;
    s->now = now_;
    return s;
  }

  void restore(const void* snap) override {
    const auto& s = *static_cast<const SessionSnapshotT<Word>*>(snap);
    good_ = s.good;
    // Batches live at capture time get their state back. Batches absent from
    // the snapshot were dead at capture time, so only their live mask needs
    // restoring: a dead batch's machine state is never read (advance skips
    // it, pair_state is only called for undetected faults), and the batch
    // can only come back to life through a restore that also carries its
    // state.
    std::size_t k = 0;
    for (std::size_t b = 0; b < states_.size(); ++b) {
      if (k < s.live_states.size() && s.live_states[k].first == b) {
        states_[b] = s.live_states[k].second;
        ++k;
      } else {
        states_[b].live = Word{};
      }
    }
    detection_ = s.detection;
    num_detected_ = s.num_detected;
    now_ = s.now;
  }

  SlotWidth width() const noexcept override {
    return static_cast<SlotWidth>(WordTraits<Word>::kBits);
  }

 private:
  const Netlist* nl_;
  CompiledNetlist compiled_;            // shared by all runners (declared first)
  std::vector<Fault> faults_;           // original (caller) order
  std::vector<std::size_t> order_;      // packed position -> original index
  std::vector<std::size_t> pos_;        // original index -> packed position
  std::vector<Fault> packed_;           // faults_[order_[..]]; runners reference it
  std::vector<Runner> runners_;         // one per batch
  std::vector<BatchState> states_;
  Runner good_runner_;                  // empty batch: the good machine
  BatchState good_;
  std::vector<DetectionRecord> detection_;  // original order
  std::size_t num_detected_ = 0;
  std::size_t now_ = 0;
  // Per-advance scratch, sized once: live batch list, pre-advance detected
  // masks, per-worker net values.
  std::vector<std::size_t> live_idx_;
  std::vector<Word> before_;
  std::vector<std::vector<W3T<Word>>> scratch_;
};

}  // namespace

FaultSimSession::FaultSimSession(const Netlist& nl, std::span<const Fault> faults) {
  switch (resolved_slot_width()) {
    case SlotWidth::W256:
      impl_ = std::make_unique<FaultSessionImpl<Simd256>>(nl, faults);
      break;
    case SlotWidth::W512:
      impl_ = std::make_unique<FaultSessionImpl<Simd512>>(nl, faults);
      break;
    default:
      impl_ = std::make_unique<FaultSessionImpl<std::uint64_t>>(nl, faults);
      break;
  }
}

FaultSimSession::~FaultSimSession() = default;
FaultSimSession::FaultSimSession(FaultSimSession&&) noexcept = default;
FaultSimSession& FaultSimSession::operator=(FaultSimSession&&) noexcept = default;

std::size_t FaultSimSession::advance(const TestSequence& chunk) { return impl_->advance(chunk); }
std::size_t FaultSimSession::now() const noexcept { return impl_->now(); }
std::size_t FaultSimSession::num_faults() const noexcept { return impl_->num_faults(); }
bool FaultSimSession::is_detected(std::size_t fault_index) const {
  return impl_->is_detected(fault_index);
}
const std::vector<DetectionRecord>& FaultSimSession::detections() const noexcept {
  return impl_->detections();
}
std::size_t FaultSimSession::num_detected() const noexcept { return impl_->num_detected(); }
const CompiledNetlist& FaultSimSession::compiled() const noexcept { return impl_->compiled(); }
State FaultSimSession::good_state() const { return impl_->good_state(); }
void FaultSimSession::pair_state(std::size_t fault_index, State& good, State& faulty) const {
  impl_->pair_state(fault_index, good, faulty);
}

FaultSimSession::Snapshot FaultSimSession::snapshot() const {
  Snapshot s;
  s.state_ = impl_->snapshot();
  s.width_ = impl_->width();
  return s;
}

void FaultSimSession::restore(const Snapshot& s) {
  if (!s.state_ || s.width_ != impl_->width())
    throw std::invalid_argument("FaultSimSession::restore: snapshot width mismatch");
  impl_->restore(s.state_.get());
}

}  // namespace uniscan
