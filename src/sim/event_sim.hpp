// Event-driven (selective-trace) three-valued sequential simulator.
//
// The levelized SequentialSimulator evaluates every gate every cycle; this
// engine only re-evaluates the fanout cones of nets that changed, which wins
// on large circuits with low activity (e.g. during scan shifts most of the
// functional logic is quiet). Results are bit-identical to the levelized
// simulator — the test suite cross-checks them — so either engine can back
// the higher layers.
//
// All adjacency walks (level buckets, fanout propagation, gate evaluation)
// run on the flat CSR tables of a CompiledNetlist.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled_netlist.hpp"
#include "sim/sequential_sim.hpp"

namespace uniscan {

class EventSimulator {
 public:
  explicit EventSimulator(const Netlist& nl);

  const Netlist& netlist() const noexcept { return *nl_; }
  const CompiledNetlist& compiled() const noexcept { return *compiled_; }

  /// Establish `initial` as the current state and fully evaluate once the
  /// next step() runs. Must be called before the first step().
  void reset(const State& initial);

  /// Clock one frame with primary inputs `pi`; returns POs and next state,
  /// and advances the internal state to that next state.
  FrameValues step(const std::vector<V3>& pi);

  /// Convenience wrapper matching SequentialSimulator::simulate.
  SimTrace simulate(const TestSequence& seq, const State& initial);

  /// Gate evaluations performed since construction (activity metric).
  std::uint64_t gate_evals() const noexcept { return gate_evals_; }

 private:
  void enqueue_fanouts(GateId g);
  void set_boundary(GateId g, V3 v);

  const Netlist* nl_;
  std::shared_ptr<const CompiledNetlist> compiled_;
  std::vector<V3> values_;
  State state_;                 // current DFF outputs
  std::vector<V3> prev_pi_;
  bool needs_full_eval_ = true;

  // Level-bucketed event queue.
  std::vector<std::vector<GateId>> buckets_;  // by combinational level
  std::vector<std::uint8_t> queued_;
  std::uint64_t gate_evals_ = 0;
};

}  // namespace uniscan
