// Checkpointed incremental resimulation support.
//
// A SimBatchStateT<Word> is the complete resumable state of one fault batch
// (up to kBits-1 faults, one per slot of the Word) of a parallel-fault
// simulation: the machine-pair state of every DFF, the live/detected
// bookkeeping, and (for the transition model) the per-fault launch history.
// Simulating frames [0, f) of a sequence and saving the state, then later
// resuming at f, is bit-identical to simulating from frame 0 — the
// invariant the compaction engine relies on. SimBatchState is the 64-slot
// instantiation the good-machine paths use.
//
// A CheckpointStoreT keeps per-batch snapshots taken every `interval`
// frames while simulating the currently accepted sequence. Erasing vector t
// leaves frames [0, t) unchanged, so a trial restarts from the nearest
// snapshot at frame <= t instead of frame 0; on an accepted erasure every
// snapshot past t is dropped (the suffix shifted) and the rest stay valid.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/logic3.hpp"
#include "sim/slot_word.hpp"

namespace uniscan {

/// Resumable per-batch simulation state. `frame` is the number of frames
/// already consumed, i.e. `state` is the DFF state *entering* frame `frame`.
template <class Word>
struct SimBatchStateT {
  static constexpr unsigned kSlots = WordTraits<Word>::kBits;

  std::size_t frame = 0;
  Word live{};            // slots (bits 1..kSlots-1) still being watched
  Word detected_slots{};  // slots observed at a PO at least once
  std::vector<W3T<Word>> state;  // one machine-pair word per DFF
  std::array<std::uint32_t, kSlots> detect_time{};   // first observation frame
  std::array<std::uint32_t, kSlots> detect_count{};  // observations (n-detect cap)
  std::vector<V3> prev_driven;  // transition model: per-slot launch history
};

using SimBatchState = SimBatchStateT<std::uint64_t>;

template <class Word>
class CheckpointStoreT {
 public:
  /// `num_batches` fault batches, snapshots every `interval` frames.
  /// interval == 0 disables capture (lookups always miss).
  CheckpointStoreT(std::size_t num_batches, std::size_t interval)
      : interval_(interval), snaps_(num_batches) {}

  std::size_t interval() const noexcept { return interval_; }
  std::size_t num_batches() const noexcept { return snaps_.size(); }

  /// Should a snapshot be captured at `frame`? (Frame 0 is the power-up
  /// state — never worth storing.)
  bool want(std::size_t frame) const noexcept {
    return interval_ != 0 && frame != 0 && frame % interval_ == 0;
  }

  /// Latest snapshot of `batch` with frame <= `frame`, or nullptr.
  const SimBatchStateT<Word>* best_at_or_before(std::size_t batch, std::size_t frame) const {
    const auto& v = snaps_[batch];
    const SimBatchStateT<Word>* best = nullptr;
    for (const auto& s : v) {
      if (s.frame > frame) break;  // ascending order
      best = &s;
    }
    return best;
  }

  /// Store a snapshot (no-op if one for s.frame already exists). Snapshots
  /// for distinct batches may be saved concurrently; a single batch is only
  /// ever written by one thread at a time.
  void save(std::size_t batch, const SimBatchStateT<Word>& s) {
    auto& v = snaps_[batch];
    std::size_t pos = v.size();
    while (pos > 0 && v[pos - 1].frame >= s.frame) {
      if (v[pos - 1].frame == s.frame) return;
      --pos;
    }
    v.insert(v.begin() + static_cast<std::ptrdiff_t>(pos), s);
  }

  /// Drop every snapshot with frame > `frame` (all batches) — called when a
  /// vector erasure at `frame` is accepted and the suffix shifts down.
  void invalidate_after(std::size_t frame) {
    for (auto& v : snaps_) {
      while (!v.empty() && v.back().frame > frame) v.pop_back();
    }
  }

  /// Total stored snapshots (diagnostics).
  std::size_t size() const noexcept {
    std::size_t n = 0;
    for (const auto& v : snaps_) n += v.size();
    return n;
  }

 private:
  std::size_t interval_;
  std::vector<std::vector<SimBatchStateT<Word>>> snaps_;
};

using CheckpointStore = CheckpointStoreT<std::uint64_t>;

}  // namespace uniscan
