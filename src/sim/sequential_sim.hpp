// Good-machine three-valued sequential simulation.
//
// The simulator evaluates the combinational core in topological order once
// per clock cycle (levelized compiled-code style). The circuit state is the
// vector of DFF output values; the conventional unknown power-up state is
// all-X.
#pragma once

#include <memory>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled_netlist.hpp"
#include "sim/logic3.hpp"
#include "sim/sequence.hpp"

namespace uniscan {

/// Circuit state: one value per DFF, in Netlist::dffs() order.
using State = std::vector<V3>;

/// Values observed during one clock cycle.
struct FrameValues {
  std::vector<V3> po;          // one per primary output
  State next_state;            // one per DFF
};

/// Full trace of a sequence simulation.
struct SimTrace {
  std::vector<std::vector<V3>> po;     // [time][output]
  std::vector<State> state;            // state[t] = state *entering* frame t; size = length+1
};

class SequentialSimulator {
 public:
  explicit SequentialSimulator(const Netlist& nl);

  const Netlist& netlist() const noexcept { return *nl_; }
  const CompiledNetlist& compiled() const noexcept { return *compiled_; }

  /// All-X power-up state.
  State initial_state() const { return State(nl_->num_dffs(), V3::X); }

  /// Simulate one clock cycle from `state` with primary inputs `pi`.
  /// `pi` is indexed like Netlist::inputs().
  FrameValues step(const State& state, const std::vector<V3>& pi) const;

  /// Simulate a whole sequence from `initial`. trace.state[t] is the state
  /// entering frame t, so trace.state.size() == seq.length() + 1.
  SimTrace simulate(const TestSequence& seq, const State& initial) const;

  /// Values of every net in the last step() / frame evaluated via
  /// eval_frame(). Exposed for ATPG and unit tests.
  const std::vector<V3>& net_values() const noexcept { return values_; }

  /// Evaluate one combinational frame into the internal net-value buffer and
  /// return POs + next state. Public so the ATPG can inspect internal nets.
  FrameValues eval_frame(const State& state, const std::vector<V3>& pi) const;

 private:
  const Netlist* nl_;
  std::shared_ptr<const CompiledNetlist> compiled_;
  mutable std::vector<V3> values_;  // scratch: value per net
};

/// Evaluate a single gate over scalar V3 fanin values.
V3 eval_gate_v3(GateType type, const V3* in, std::size_t n) noexcept;

/// Evaluate a single gate over word-parallel W3T fanin values (any width).
template <class Word>
W3T<Word> eval_gate_w3(GateType type, const W3T<Word>* in, std::size_t n) noexcept {
  using W = W3T<Word>;
  switch (type) {
    case GateType::Buf:
      return in[0];
    case GateType::Not:
      return w3_not(in[0]);
    case GateType::And:
    case GateType::Nand: {
      W acc = in[0];
      for (std::size_t i = 1; i < n; ++i) acc = w3_and(acc, in[i]);
      return type == GateType::Nand ? w3_not(acc) : acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      W acc = in[0];
      for (std::size_t i = 1; i < n; ++i) acc = w3_or(acc, in[i]);
      return type == GateType::Nor ? w3_not(acc) : acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      W acc = in[0];
      for (std::size_t i = 1; i < n; ++i) acc = w3_xor(acc, in[i]);
      return type == GateType::Xnor ? w3_not(acc) : acc;
    }
    case GateType::Mux2:
      return w3_mux(in[0], in[1], in[2]);
    case GateType::Const0:
      return W::all_zero();
    case GateType::Const1:
      return W::all_one();
    case GateType::Input:
    case GateType::Dff:
      break;  // boundary values; never evaluated
  }
  return W::all_x();
}

}  // namespace uniscan
