// Compiled flat-memory form of a finalized Netlist.
//
// The simulators' inner loop used to chase a per-gate heap-allocated
// std::vector<GateId> of fanins and re-dispatch on the gate type for every
// evaluation. A CompiledNetlist is a one-time compile of the netlist into
// contiguous structure-of-arrays form:
//
//  * a CSR fanin table (fanin_offsets + flat fanin ids),
//  * a parallel gate-type array,
//  * a level-sorted — and within each level type-sorted — evaluation order
//    with level-bucket ranges, partitioned into homogeneous *type runs* so
//    a whole run is evaluated by one tight loop with the gate function
//    hoisted out of it (no per-gate switch),
//  * a CSR fanout table (the canonical adjacency form; the nested-vector
//    per-gate vector-of-vectors Netlist accessor was removed in its favour).
//
// Any topological order yields the same per-net values, so re-sorting
// within a level by type cannot change results: every engine built on the
// kernel stays bit-identical to the pre-kernel engines (DESIGN.md §5e).
//
// build_program() additionally compiles a per-batch *observation cone*: the
// union fanout cone of a fault batch (closed over flip-flop crossings) plus
// its transitive fanin support. Gates outside the cone carry the same value
// in every machine slot at every frame, and gates outside cone ∪ support
// are read by nobody inside it — so a batch advance may skip them entirely,
// cutting gate_evals as well as cost per eval without changing any
// observable result.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/logic3.hpp"
#include "sim/slot_word.hpp"

namespace uniscan {

/// A maximal range of the evaluation order holding gates of one type on one
/// level. `begin`/`end` index the order array the run was built over.
struct TypeRun {
  GateType type;
  std::uint32_t level;
  std::uint32_t begin;
  std::uint32_t end;
};

/// Per-batch evaluation plan produced by CompiledNetlist::build_program().
struct BatchProgram {
  bool pruned = false;
  // Gates to evaluate with the plain (injection-free) kernel, in
  // level-major (level, type, id) order, partitioned into `runs`.
  std::vector<GateId> eval;
  std::vector<TypeRun> runs;
  // Caller's forced-gate list reordered level-ascending; forced gates are
  // excluded from `eval` and must be evaluated individually between the
  // runs of their level and the first run of a higher level.
  std::vector<std::uint32_t> forced_order;
  std::vector<std::uint32_t> forced_level;  // parallel to forced_order
  // Primary outputs that can observe a fault of this batch (all POs when
  // not pruned), in Netlist::outputs() order.
  std::vector<GateId> obs_po;
  // Flip-flops whose next state must be sampled (cone ∪ support), and the
  // subset a fault effect can actually reach (cone) — the only ones that
  // need scanning for latched effects. Both ascending by DFF index.
  std::vector<std::uint32_t> samp_dff;
  std::vector<std::uint32_t> latch_dff;
  std::vector<std::uint8_t> dff_sampled;  // indexed by DFF index
  // Gate evaluations a full (non-early-exit) frame performs.
  std::uint64_t evals_per_frame = 0;
};

class CompiledNetlist {
 public:
  /// Compiles `nl`, which must be finalized and must outlive this object.
  explicit CompiledNetlist(const Netlist& nl);

  const Netlist& netlist() const noexcept { return *nl_; }
  std::size_t num_gates() const noexcept { return type_.size(); }
  std::size_t num_levels() const noexcept { return level_begin_.size() - 1; }

  GateType type(GateId g) const noexcept { return type_[g]; }
  std::uint32_t level(GateId g) const noexcept { return level_[g]; }

  std::span<const GateId> fanins(GateId g) const noexcept {
    return {fanin_ids_.data() + fanin_off_[g], fanin_off_[g + 1] - fanin_off_[g]};
  }
  std::size_t fanin_count(GateId g) const noexcept { return fanin_off_[g + 1] - fanin_off_[g]; }

  /// Raw CSR fanin arrays, for callers driving detail::eval_type_runs over a
  /// value type the class doesn't provide a kernel for (e.g. the FrameModel's
  /// five-valued pairs).
  const std::uint32_t* fanin_offsets() const noexcept { return fanin_off_.data(); }
  const GateId* fanin_id_data() const noexcept { return fanin_ids_.data(); }

  /// CSR fanout table: every gate reading net `g` (combinational and DFF).
  std::span<const GateId> fanouts(GateId g) const noexcept {
    return {fanout_ids_.data() + fanout_off_[g], fanout_off_[g + 1] - fanout_off_[g]};
  }

  /// Combinational gates in (level, type, id) order.
  const std::vector<GateId>& eval_order() const noexcept { return eval_order_; }
  /// Homogeneous type runs covering eval_order().
  std::span<const TypeRun> runs() const noexcept { return runs_; }
  /// eval_order()[level_begin(l) .. level_begin(l+1)) holds level-l gates.
  std::uint32_t level_begin(std::size_t l) const noexcept { return level_begin_[l]; }

  const std::vector<GateId>& inputs() const noexcept { return inputs_; }
  const std::vector<GateId>& outputs() const noexcept { return outputs_; }
  const std::vector<GateId>& dffs() const noexcept { return dffs_; }
  /// D fanin of each DFF, indexed like dffs().
  const std::vector<GateId>& dff_d() const noexcept { return dff_d_; }

  /// Evaluate the whole combinational core (boundary values already loaded
  /// into `values`, indexed by GateId) with the type-run kernel.
  void eval_full_v3(V3* values) const noexcept;
  void eval_full_w3(W3* values) const noexcept;

  /// Evaluate type runs built over an arbitrary `order` array (e.g. a batch
  /// program's pruned evaluation list) with the same kernel.
  void eval_runs_v3(std::span<const TypeRun> runs, const GateId* order, V3* values) const noexcept;
  void eval_runs_w3(std::span<const TypeRun> runs, const GateId* order, W3* values) const noexcept;

  /// Width-generic form of eval_runs_w3: the same type-run kernel over any
  /// slot word (see sim/slot_word.hpp). Defined after detail::eval_type_runs.
  template <class Word>
  void eval_runs_w3t(std::span<const TypeRun> runs, const GateId* order,
                     W3T<Word>* values) const noexcept;

  /// Generic single-gate evaluation via the CSR tables (event engine and
  /// forced-gate paths).
  V3 eval_gate_v3_at(GateId g, const V3* values) const noexcept;
  W3 eval_gate_w3_at(GateId g, const W3* values) const noexcept;
  template <class Word>
  W3T<Word> eval_gate_w3t_at(GateId g, const W3T<Word>* values) const noexcept;

  /// Compile a batch plan. `sites` are the gates where fault effects enter
  /// the circuit (the faulted gate itself, for stems and branches alike);
  /// `forced` are the combinational gates that need individual evaluation
  /// because an injection applies to them (deduplicated by the caller).
  /// With prune=false (or no sites) the plan covers the full core.
  BatchProgram build_program(std::span<const GateId> sites, std::span<const GateId> forced,
                             bool prune) const;

 private:
  const Netlist* nl_;
  std::vector<GateType> type_;
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> fanin_off_;
  std::vector<GateId> fanin_ids_;
  std::vector<std::uint32_t> fanout_off_;
  std::vector<GateId> fanout_ids_;
  std::vector<GateId> eval_order_;
  std::vector<std::uint32_t> level_begin_;
  std::vector<TypeRun> runs_;
  std::vector<GateId> inputs_, outputs_, dffs_, dff_d_;
};

namespace detail {

/// Build maximal homogeneous (level, type) runs over `order`.
std::vector<TypeRun> build_type_runs(std::span<const GateId> order,
                                     std::span<const GateType> type,
                                     std::span<const std::uint32_t> level);

/// Evaluate homogeneous type runs over flat arrays. Ops supplies the value
/// type and the logic primitives; the type dispatch happens once per run,
/// the per-gate loop reads fanins straight out of the CSR table.
template <typename Ops>
inline void eval_type_runs(std::span<const TypeRun> runs, const GateId* order,
                           const std::uint32_t* fanin_off, const GateId* fanin_ids,
                           typename Ops::value* v) noexcept {
  using T = typename Ops::value;
  for (const TypeRun& r : runs) {
    switch (r.type) {
      case GateType::Buf:
        for (std::uint32_t i = r.begin; i < r.end; ++i) {
          const GateId g = order[i];
          v[g] = v[fanin_ids[fanin_off[g]]];
        }
        break;
      case GateType::Not:
        for (std::uint32_t i = r.begin; i < r.end; ++i) {
          const GateId g = order[i];
          v[g] = Ops::not_(v[fanin_ids[fanin_off[g]]]);
        }
        break;
      case GateType::And:
      case GateType::Nand: {
        const bool invert = r.type == GateType::Nand;
        for (std::uint32_t i = r.begin; i < r.end; ++i) {
          const GateId g = order[i];
          const std::uint32_t lo = fanin_off[g], hi = fanin_off[g + 1];
          T acc = v[fanin_ids[lo]];
          for (std::uint32_t k = lo + 1; k < hi; ++k) acc = Ops::and_(acc, v[fanin_ids[k]]);
          v[g] = invert ? Ops::not_(acc) : acc;
        }
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        const bool invert = r.type == GateType::Nor;
        for (std::uint32_t i = r.begin; i < r.end; ++i) {
          const GateId g = order[i];
          const std::uint32_t lo = fanin_off[g], hi = fanin_off[g + 1];
          T acc = v[fanin_ids[lo]];
          for (std::uint32_t k = lo + 1; k < hi; ++k) acc = Ops::or_(acc, v[fanin_ids[k]]);
          v[g] = invert ? Ops::not_(acc) : acc;
        }
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        const bool invert = r.type == GateType::Xnor;
        for (std::uint32_t i = r.begin; i < r.end; ++i) {
          const GateId g = order[i];
          const std::uint32_t lo = fanin_off[g], hi = fanin_off[g + 1];
          T acc = v[fanin_ids[lo]];
          for (std::uint32_t k = lo + 1; k < hi; ++k) acc = Ops::xor_(acc, v[fanin_ids[k]]);
          v[g] = invert ? Ops::not_(acc) : acc;
        }
        break;
      }
      case GateType::Mux2:
        for (std::uint32_t i = r.begin; i < r.end; ++i) {
          const GateId g = order[i];
          const std::uint32_t lo = fanin_off[g];
          v[g] = Ops::mux(v[fanin_ids[lo]], v[fanin_ids[lo + 1]], v[fanin_ids[lo + 2]]);
        }
        break;
      case GateType::Const0:
        for (std::uint32_t i = r.begin; i < r.end; ++i) v[order[i]] = Ops::zero();
        break;
      case GateType::Const1:
        for (std::uint32_t i = r.begin; i < r.end; ++i) v[order[i]] = Ops::one();
        break;
      case GateType::Input:
      case GateType::Dff:
        break;  // boundary gates never appear in an evaluation order
    }
  }
}

/// Single-gate evaluation over the CSR fanin arrays; the per-gate mirror of
/// eval_type_runs, shared by the event engine and the forced-gate paths.
template <typename Ops>
inline typename Ops::value eval_gate_generic(GateType t, const GateId* ids, std::uint32_t lo,
                                             std::uint32_t hi,
                                             const typename Ops::value* v) noexcept {
  using T = typename Ops::value;
  switch (t) {
    case GateType::Buf: return v[ids[lo]];
    case GateType::Not: return Ops::not_(v[ids[lo]]);
    case GateType::And:
    case GateType::Nand: {
      T acc = v[ids[lo]];
      for (std::uint32_t k = lo + 1; k < hi; ++k) acc = Ops::and_(acc, v[ids[k]]);
      return t == GateType::Nand ? Ops::not_(acc) : acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      T acc = v[ids[lo]];
      for (std::uint32_t k = lo + 1; k < hi; ++k) acc = Ops::or_(acc, v[ids[k]]);
      return t == GateType::Nor ? Ops::not_(acc) : acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      T acc = v[ids[lo]];
      for (std::uint32_t k = lo + 1; k < hi; ++k) acc = Ops::xor_(acc, v[ids[k]]);
      return t == GateType::Xnor ? Ops::not_(acc) : acc;
    }
    case GateType::Mux2: return Ops::mux(v[ids[lo]], v[ids[lo + 1]], v[ids[lo + 2]]);
    case GateType::Const0: return Ops::zero();
    case GateType::Const1: return Ops::one();
    case GateType::Input:
    case GateType::Dff: break;
  }
  assert(false && "eval of boundary gate");
  return Ops::zero();
}

struct V3Ops {
  using value = V3;
  static V3 not_(V3 a) noexcept { return v3_not(a); }
  static V3 and_(V3 a, V3 b) noexcept { return v3_and(a, b); }
  static V3 or_(V3 a, V3 b) noexcept { return v3_or(a, b); }
  static V3 xor_(V3 a, V3 b) noexcept { return v3_xor(a, b); }
  static V3 mux(V3 d0, V3 d1, V3 s) noexcept { return v3_mux(d0, d1, s); }
  static V3 zero() noexcept { return V3::Zero; }
  static V3 one() noexcept { return V3::One; }
};

/// Logic primitives over any slot width; the uint64_t instantiation is the
/// historical W3Ops.
template <class Word>
struct W3OpsT {
  using value = W3T<Word>;
  static value not_(value a) noexcept { return w3_not(a); }
  static value and_(value a, value b) noexcept { return w3_and(a, b); }
  static value or_(value a, value b) noexcept { return w3_or(a, b); }
  static value xor_(value a, value b) noexcept { return w3_xor(a, b); }
  static value mux(value d0, value d1, value s) noexcept { return w3_mux(d0, d1, s); }
  static value zero() noexcept { return value::all_zero(); }
  static value one() noexcept { return value::all_one(); }
};

using W3Ops = W3OpsT<std::uint64_t>;

}  // namespace detail

template <class Word>
inline void CompiledNetlist::eval_runs_w3t(std::span<const TypeRun> runs, const GateId* order,
                                           W3T<Word>* values) const noexcept {
  detail::eval_type_runs<detail::W3OpsT<Word>>(runs, order, fanin_off_.data(), fanin_ids_.data(),
                                               values);
}

template <class Word>
inline W3T<Word> CompiledNetlist::eval_gate_w3t_at(GateId g,
                                                   const W3T<Word>* values) const noexcept {
  return detail::eval_gate_generic<detail::W3OpsT<Word>>(type_[g], fanin_ids_.data(),
                                                         fanin_off_[g], fanin_off_[g + 1], values);
}

}  // namespace uniscan
