#include "sim/sequence_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/string_utils.hpp"

namespace uniscan {

namespace {

[[noreturn]] void fail_in(const std::string& source, std::size_t line_no, const std::string& msg) {
  std::string text = "sequence parse error";
  if (!source.empty()) text += " in " + source;
  text += " at line " + std::to_string(line_no) + ": " + msg;
  throw std::runtime_error(text);
}

/// Read the next non-empty, non-comment line; returns false on EOF.
bool next_line(std::istream& in, std::string& line, std::size_t& line_no) {
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    line = std::string(trim(line));
    if (!line.empty()) return true;
  }
  return false;
}

std::vector<V3> parse_row(const std::string& line, std::size_t width, std::size_t line_no,
                          const std::string& source) {
  std::vector<V3> row;
  row.reserve(width);
  for (char c : line) {
    if (c == ' ' || c == '\t') continue;
    if (c != '0' && c != '1' && c != 'x' && c != 'X')
      fail_in(source, line_no, "bad value character in '" + excerpt(line) + "'");
    row.push_back(v3_from_char(c));
  }
  if (row.size() != width)
    fail_in(source, line_no, "expected " + std::to_string(width) + " values, got " +
                                 std::to_string(row.size()));
  return row;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot write file: " + path);
  return f;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot read file: " + path);
  return f;
}

}  // namespace

void write_sequence(std::ostream& out, const TestSequence& seq) {
  out << "useq v1 " << seq.num_inputs() << "\n";
  for (std::size_t t = 0; t < seq.length(); ++t) {
    for (std::size_t i = 0; i < seq.num_inputs(); ++i) out << to_char(seq.at(t, i));
    out << "\n";
  }
}

std::string write_sequence_string(const TestSequence& seq) {
  std::ostringstream os;
  write_sequence(os, seq);
  return os.str();
}

void write_sequence_file(const std::string& path, const TestSequence& seq) {
  auto f = open_out(path);
  write_sequence(f, seq);
}

TestSequence read_sequence(std::istream& in, const std::string& source) {
  std::string line;
  std::size_t line_no = 0;
  if (!next_line(in, line, line_no)) fail_in(source, line_no, "empty input");
  std::istringstream header(line);
  std::string magic, version;
  std::size_t width = 0;
  header >> magic >> version >> width;
  if (magic != "useq" || version != "v1" || header.fail())
    fail_in(source, line_no, "expected header 'useq v1 <num_inputs>'");

  TestSequence seq(width);
  while (next_line(in, line, line_no)) seq.append(parse_row(line, width, line_no, source));
  return seq;
}

TestSequence read_sequence_string(const std::string& text) {
  std::istringstream is(text);
  return read_sequence(is);
}

TestSequence read_sequence_file(const std::string& path) {
  auto f = open_in(path);
  return read_sequence(f, path);
}

void write_test_set(std::ostream& out, const ScanTestSet& set) {
  out << "utst v1 " << set.num_original_inputs << " " << set.chain_length << "\n";
  for (const ScanTest& t : set.tests) {
    out << "test ";
    for (V3 v : t.scan_in) out << to_char(v);
    out << "\n";
    for (const auto& vec : t.vectors) {
      for (V3 v : vec) out << to_char(v);
      out << "\n";
    }
  }
}

std::string write_test_set_string(const ScanTestSet& set) {
  std::ostringstream os;
  write_test_set(os, set);
  return os.str();
}

void write_test_set_file(const std::string& path, const ScanTestSet& set) {
  auto f = open_out(path);
  write_test_set(f, set);
}

ScanTestSet read_test_set(std::istream& in, const std::string& source) {
  std::string line;
  std::size_t line_no = 0;
  if (!next_line(in, line, line_no)) fail_in(source, line_no, "empty input");
  std::istringstream header(line);
  std::string magic, version;
  std::size_t width = 0, chain = 0;
  header >> magic >> version >> width >> chain;
  if (magic != "utst" || version != "v1" || header.fail())
    fail_in(source, line_no, "expected header 'utst v1 <num_inputs> <chain_length>'");

  ScanTestSet set;
  set.num_original_inputs = width;
  set.chain_length = chain;
  while (next_line(in, line, line_no)) {
    if (starts_with(line, "test ")) {
      ScanTest t;
      const std::string si(trim(line.substr(5)));
      for (char c : si) {
        if (c != '0' && c != '1' && c != 'x' && c != 'X')
          fail_in(source, line_no, "bad scan-in character in '" + excerpt(si) + "'");
        t.scan_in.push_back(v3_from_char(c));
      }
      // scan_in covers every flip-flop; with multiple chains this exceeds
      // chain_length (the shift count), so only cross-test consistency is
      // checked here.
      if (t.scan_in.size() < chain)
        fail_in(source, line_no, "scan-in narrower than the chain length");
      if (!set.tests.empty() && t.scan_in.size() != set.tests.front().scan_in.size())
        fail_in(source, line_no, "inconsistent scan-in width");
      set.tests.push_back(std::move(t));
    } else {
      if (set.tests.empty()) fail_in(source, line_no, "vector before first 'test' line");
      set.tests.back().vectors.push_back(parse_row(line, width, line_no, source));
    }
  }
  for (std::size_t i = 0; i < set.tests.size(); ++i)
    if (set.tests[i].vectors.empty())
      throw std::runtime_error("test " + std::to_string(i + 1) + " has no vectors");
  return set;
}

ScanTestSet read_test_set_string(const std::string& text) {
  std::istringstream is(text);
  return read_test_set(is);
}

ScanTestSet read_test_set_file(const std::string& path) {
  auto f = open_in(path);
  return read_test_set(f, path);
}

}  // namespace uniscan
