#include "sim/logic3.hpp"

namespace uniscan {

std::string to_string(W3 w, unsigned slots) {
  std::string s;
  s.reserve(slots);
  for (unsigned i = 0; i < slots && i < 64; ++i) s.push_back(to_char(w.get(i)));
  return s;
}

// Truth-table sanity checks, evaluated at compile time.
static_assert(w3_and(W3::all_one(), W3::all_zero()) == W3::all_zero());
static_assert(w3_and(W3::all_x(), W3::all_zero()) == W3::all_zero());
static_assert(w3_or(W3::all_x(), W3::all_one()) == W3::all_one());
static_assert(w3_not(W3::all_zero()) == W3::all_one());
static_assert(w3_xor(W3::all_one(), W3::all_one()) == W3::all_zero());
static_assert(w3_mux(W3::all_zero(), W3::all_zero(), W3::all_x()) == W3::all_zero());

}  // namespace uniscan
