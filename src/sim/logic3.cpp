#include "sim/logic3.hpp"

namespace uniscan {

// Truth-table sanity checks, evaluated at compile time.
static_assert(w3_and(W3::all_one(), W3::all_zero()) == W3::all_zero());
static_assert(w3_and(W3::all_x(), W3::all_zero()) == W3::all_zero());
static_assert(w3_or(W3::all_x(), W3::all_one()) == W3::all_one());
static_assert(w3_not(W3::all_zero()) == W3::all_one());
static_assert(w3_xor(W3::all_one(), W3::all_one()) == W3::all_zero());
static_assert(w3_mux(W3::all_zero(), W3::all_zero(), W3::all_x()) == W3::all_zero());

// The wide words route through the same templates; pin their shape here.
static_assert(W3T<Simd256>::kSlots == 256);
static_assert(W3T<Simd512>::kSlots == 512);

}  // namespace uniscan
