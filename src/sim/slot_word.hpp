// Slot words: the bit-parallel machine containers behind W3T<Word>.
//
// A parallel-fault batch packs one machine per bit of a slot word — slot 0
// is the good machine, slots 1..kBits-1 carry faulty machines. The original
// engine fixed the word to std::uint64_t (63 faults per batch); this header
// supplies the two wider words, Simd256 and Simd512 (255/511 faults per
// batch), plus the WordTraits glue the templated simulators use to stay
// generic over all three.
//
// The wide types are plain arrays of std::uint64_t lanes. Their bitwise
// operators use AVX2 / AVX-512 intrinsics when the translation unit is
// compiled with -mavx2 / -mavx512f and fall back to portable per-lane loops
// otherwise (which still auto-vectorize under the baseline ISA), so non-x86
// and plain builds stay green and bit-identical: every path computes the
// same bits, only the instruction selection differs. Runtime selection
// between the widths lives in sim/engine.hpp (SlotWidth / CPUID dispatch).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace uniscan {

/// 256-bit slot word: 4 x 64 lanes, one machine per bit.
struct alignas(32) Simd256 {
  std::uint64_t lane[4] = {0, 0, 0, 0};

  friend Simd256 operator&(const Simd256& a, const Simd256& b) noexcept {
#if defined(__AVX2__)
    Simd256 r;
    _mm256_store_si256(reinterpret_cast<__m256i*>(r.lane),
                       _mm256_and_si256(_mm256_load_si256(reinterpret_cast<const __m256i*>(a.lane)),
                                        _mm256_load_si256(reinterpret_cast<const __m256i*>(b.lane))));
    return r;
#else
    return {{a.lane[0] & b.lane[0], a.lane[1] & b.lane[1], a.lane[2] & b.lane[2],
             a.lane[3] & b.lane[3]}};
#endif
  }
  friend Simd256 operator|(const Simd256& a, const Simd256& b) noexcept {
#if defined(__AVX2__)
    Simd256 r;
    _mm256_store_si256(reinterpret_cast<__m256i*>(r.lane),
                       _mm256_or_si256(_mm256_load_si256(reinterpret_cast<const __m256i*>(a.lane)),
                                       _mm256_load_si256(reinterpret_cast<const __m256i*>(b.lane))));
    return r;
#else
    return {{a.lane[0] | b.lane[0], a.lane[1] | b.lane[1], a.lane[2] | b.lane[2],
             a.lane[3] | b.lane[3]}};
#endif
  }
  friend Simd256 operator^(const Simd256& a, const Simd256& b) noexcept {
#if defined(__AVX2__)
    Simd256 r;
    _mm256_store_si256(reinterpret_cast<__m256i*>(r.lane),
                       _mm256_xor_si256(_mm256_load_si256(reinterpret_cast<const __m256i*>(a.lane)),
                                        _mm256_load_si256(reinterpret_cast<const __m256i*>(b.lane))));
    return r;
#else
    return {{a.lane[0] ^ b.lane[0], a.lane[1] ^ b.lane[1], a.lane[2] ^ b.lane[2],
             a.lane[3] ^ b.lane[3]}};
#endif
  }
  friend Simd256 operator~(const Simd256& a) noexcept {
#if defined(__AVX2__)
    Simd256 r;
    _mm256_store_si256(
        reinterpret_cast<__m256i*>(r.lane),
        _mm256_xor_si256(_mm256_load_si256(reinterpret_cast<const __m256i*>(a.lane)),
                         _mm256_set1_epi64x(-1)));
    return r;
#else
    return {{~a.lane[0], ~a.lane[1], ~a.lane[2], ~a.lane[3]}};
#endif
  }
  friend bool operator==(const Simd256& a, const Simd256& b) noexcept {
#if defined(__AVX2__)
    const __m256i eq =
        _mm256_cmpeq_epi64(_mm256_load_si256(reinterpret_cast<const __m256i*>(a.lane)),
                           _mm256_load_si256(reinterpret_cast<const __m256i*>(b.lane)));
    return _mm256_movemask_epi8(eq) == -1;
#else
    return a.lane[0] == b.lane[0] && a.lane[1] == b.lane[1] && a.lane[2] == b.lane[2] &&
           a.lane[3] == b.lane[3];
#endif
  }
};

/// 512-bit slot word: 8 x 64 lanes, one machine per bit.
struct alignas(64) Simd512 {
  std::uint64_t lane[8] = {0, 0, 0, 0, 0, 0, 0, 0};

  friend Simd512 operator&(const Simd512& a, const Simd512& b) noexcept {
#if defined(__AVX512F__)
    Simd512 r;
    _mm512_store_si512(r.lane, _mm512_and_si512(_mm512_load_si512(a.lane),
                                                _mm512_load_si512(b.lane)));
    return r;
#else
    Simd512 r;
    for (int j = 0; j < 8; ++j) r.lane[j] = a.lane[j] & b.lane[j];
    return r;
#endif
  }
  friend Simd512 operator|(const Simd512& a, const Simd512& b) noexcept {
#if defined(__AVX512F__)
    Simd512 r;
    _mm512_store_si512(r.lane, _mm512_or_si512(_mm512_load_si512(a.lane),
                                               _mm512_load_si512(b.lane)));
    return r;
#else
    Simd512 r;
    for (int j = 0; j < 8; ++j) r.lane[j] = a.lane[j] | b.lane[j];
    return r;
#endif
  }
  friend Simd512 operator^(const Simd512& a, const Simd512& b) noexcept {
#if defined(__AVX512F__)
    Simd512 r;
    _mm512_store_si512(r.lane, _mm512_xor_si512(_mm512_load_si512(a.lane),
                                                _mm512_load_si512(b.lane)));
    return r;
#else
    Simd512 r;
    for (int j = 0; j < 8; ++j) r.lane[j] = a.lane[j] ^ b.lane[j];
    return r;
#endif
  }
  friend Simd512 operator~(const Simd512& a) noexcept {
#if defined(__AVX512F__)
    Simd512 r;
    _mm512_store_si512(r.lane,
                       _mm512_xor_si512(_mm512_load_si512(a.lane), _mm512_set1_epi64(-1)));
    return r;
#else
    Simd512 r;
    for (int j = 0; j < 8; ++j) r.lane[j] = ~a.lane[j];
    return r;
#endif
  }
  friend bool operator==(const Simd512& a, const Simd512& b) noexcept {
#if defined(__AVX512F__)
    return _mm512_cmpneq_epi64_mask(_mm512_load_si512(a.lane), _mm512_load_si512(b.lane)) == 0;
#else
    for (int j = 0; j < 8; ++j)
      if (a.lane[j] != b.lane[j]) return false;
    return true;
#endif
  }
};

/// Compile-time shape of a slot word plus uniform lane access, so generic
/// simulator code can treat std::uint64_t and the SIMD words identically.
template <class Word>
struct WordTraits;

template <>
struct WordTraits<std::uint64_t> {
  static constexpr unsigned kBits = 64;
  static constexpr unsigned kLanes = 1;
  static constexpr std::uint64_t zero() noexcept { return 0; }
  static constexpr std::uint64_t ones() noexcept { return ~0ULL; }
  static constexpr std::uint64_t lane(std::uint64_t w, unsigned) noexcept { return w; }
  static constexpr std::uint64_t& lane_ref(std::uint64_t& w, unsigned) noexcept { return w; }
};

template <>
struct WordTraits<Simd256> {
  static constexpr unsigned kBits = 256;
  static constexpr unsigned kLanes = 4;
  static constexpr Simd256 zero() noexcept { return {}; }
  static constexpr Simd256 ones() noexcept { return {{~0ULL, ~0ULL, ~0ULL, ~0ULL}}; }
  static constexpr std::uint64_t lane(const Simd256& w, unsigned j) noexcept { return w.lane[j]; }
  static constexpr std::uint64_t& lane_ref(Simd256& w, unsigned j) noexcept { return w.lane[j]; }
};

template <>
struct WordTraits<Simd512> {
  static constexpr unsigned kBits = 512;
  static constexpr unsigned kLanes = 8;
  static constexpr Simd512 zero() noexcept { return {}; }
  static constexpr Simd512 ones() noexcept {
    return {{~0ULL, ~0ULL, ~0ULL, ~0ULL, ~0ULL, ~0ULL, ~0ULL, ~0ULL}};
  }
  static constexpr std::uint64_t lane(const Simd512& w, unsigned j) noexcept { return w.lane[j]; }
  static constexpr std::uint64_t& lane_ref(Simd512& w, unsigned j) noexcept { return w.lane[j]; }
};

/// True iff any bit of `w` is set. The lane loop unrolls (kLanes is a
/// constant) and collapses to `w != 0` for std::uint64_t.
template <class Word>
constexpr bool w_any(const Word& w) noexcept {
  std::uint64_t acc = 0;
  for (unsigned j = 0; j < WordTraits<Word>::kLanes; ++j) acc |= WordTraits<Word>::lane(w, j);
  return acc != 0;
}

template <class Word>
constexpr bool w_test(const Word& w, unsigned slot) noexcept {
  return (WordTraits<Word>::lane(w, slot >> 6) >> (slot & 63)) & 1;
}

template <class Word>
constexpr void w_set(Word& w, unsigned slot) noexcept {
  WordTraits<Word>::lane_ref(w, slot >> 6) |= 1ULL << (slot & 63);
}

template <class Word>
constexpr void w_clear(Word& w, unsigned slot) noexcept {
  WordTraits<Word>::lane_ref(w, slot >> 6) &= ~(1ULL << (slot & 63));
}

/// Slot-0 (good machine) bit of a plane word.
template <class Word>
constexpr bool w_bit0(const Word& w) noexcept {
  return (WordTraits<Word>::lane(w, 0) & 1) != 0;
}

/// Visit every set slot of `w` in ascending order. `fn(unsigned slot)`.
template <class Word, class Fn>
constexpr void w_for_each_set(const Word& w, Fn&& fn) {
  for (unsigned j = 0; j < WordTraits<Word>::kLanes; ++j) {
    std::uint64_t m = WordTraits<Word>::lane(w, j);
    while (m) {
      fn(j * 64 + static_cast<unsigned>(std::countr_zero(m)));
      m &= m - 1;
    }
  }
}

}  // namespace uniscan
