// Netlist: a synchronous sequential gate-level circuit.
//
// Gates are stored in a flat vector; the index of a gate is also the id of
// the (single) net it drives. Primary outputs are references to driving
// gates. DFFs form the state; their outputs are time-frame boundary values.
//
// After construction, call finalize() to validate the structure, build
// fanout lists and a topological order of the combinational core. All
// simulators and the ATPG require a finalized netlist.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/gate.hpp"

namespace uniscan {

class CompiledNetlist;

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  // ---- construction -------------------------------------------------------

  /// Add a primary input. Returns its gate id.
  GateId add_input(std::string net_name);

  /// Add a D flip-flop whose D connection is hooked up later (or now).
  GateId add_dff(std::string net_name, GateId d = kNoGate);

  /// Add a combinational gate.
  GateId add_gate(GateType type, std::string net_name, std::vector<GateId> fanins);

  /// Declare `g` a primary output. A gate may be declared a PO at most once.
  void add_output(GateId g);

  /// Connect/replace the D input of flip-flop `dff`.
  void set_dff_input(GateId dff, GateId d);

  /// Replace fanin pin `pin` of gate `g` with `new_net`.
  void replace_fanin(GateId g, std::size_t pin, GateId new_net);

  /// Validate and build derived structures (fanouts, topological order,
  /// levels). Throws std::runtime_error on malformed circuits (dangling
  /// fanin, combinational cycle, arity violation, duplicate names).
  void finalize();

  // ---- accessors -----------------------------------------------------------

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  std::size_t num_gates() const noexcept { return gates_.size(); }
  std::size_t num_inputs() const noexcept { return inputs_.size(); }
  std::size_t num_outputs() const noexcept { return outputs_.size(); }
  std::size_t num_dffs() const noexcept { return dffs_.size(); }

  const Gate& gate(GateId g) const { return gates_[g]; }
  const std::vector<GateId>& inputs() const noexcept { return inputs_; }
  const std::vector<GateId>& outputs() const noexcept { return outputs_; }
  const std::vector<GateId>& dffs() const noexcept { return dffs_; }

  bool is_finalized() const noexcept { return finalized_; }

  /// Combinational gates in topological (fanin-before-fanout) order.
  /// Only valid after finalize().
  const std::vector<GateId>& topo_order() const noexcept { return topo_; }

  /// Logic level of each gate: inputs/DFF outputs are level 0, a
  /// combinational gate is 1 + max(fanin levels). Only valid after finalize().
  const std::vector<std::uint32_t>& levels() const noexcept { return levels_; }

  /// Fanout degree of a gate (CompiledNetlist::fanouts() is the canonical
  /// CSR adjacency for traversal). Only valid after finalize().
  std::size_t fanout_count(GateId g) const { return fanouts_[g].size(); }

  /// Lookup a gate id by net name.
  std::optional<GateId> find(std::string_view net_name) const;

  /// Index of a DFF in the state vector (0..num_dffs-1), or nullopt.
  std::optional<std::size_t> dff_index(GateId g) const;

  /// Index of a PO in the output vector, or nullopt if not a PO.
  std::optional<std::size_t> output_index(GateId g) const;

  /// Count of combinational gates (excludes Input and Dff).
  std::size_t num_comb_gates() const noexcept { return topo_.size(); }

  /// Human-readable one-line statistics.
  std::string stats_string() const;

  /// The one-time CSR compile of this netlist, built lazily on first call
  /// and shared by every simulator constructed over the same Netlist object
  /// (see DESIGN.md §5k). Requires finalize(); the netlist is structurally
  /// immutable afterwards, so the compile can never go stale. Thread-safe.
  /// Implemented in sim/compiled_netlist.cpp to keep the netlist layer free
  /// of a sim-layer dependency at compile time.
  std::shared_ptr<const CompiledNetlist> compiled_shared() const;

 private:
  // Lazily-built shared compile. The cached CompiledNetlist holds a pointer
  // back to the owning Netlist, so the slot must reset — never transfer —
  // on copy or move: a copied/moved netlist lives at a new address (and a
  // moved-from one has surrendered its vectors), so a carried-over compile
  // would dangle. Copies simply recompile on first use.
  struct CompiledSlot {
    CompiledSlot() = default;
    CompiledSlot(const CompiledSlot&) noexcept {}
    CompiledSlot(CompiledSlot&&) noexcept {}
    CompiledSlot& operator=(const CompiledSlot&) noexcept { return *this; }
    CompiledSlot& operator=(CompiledSlot&&) noexcept { return *this; }

    mutable std::mutex mutex;
    mutable std::shared_ptr<const CompiledNetlist> ptr;
  };
  GateId add_raw(GateType type, std::string net_name, std::vector<GateId> fanins);
  void check_not_finalized(const char* op) const;

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::vector<GateId> dffs_;
  std::unordered_map<std::string, GateId> by_name_;

  bool finalized_ = false;
  std::vector<GateId> topo_;
  std::vector<std::uint32_t> levels_;
  std::vector<std::vector<GateId>> fanouts_;
  CompiledSlot compiled_slot_;
};

}  // namespace uniscan
