// Fluent programmatic netlist construction, used by tests and the synthetic
// workload generator. Thin convenience layer over Netlist.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace uniscan {

class NetlistBuilder {
 public:
  explicit NetlistBuilder(std::string circuit_name) : nl_(std::move(circuit_name)) {}

  GateId input(const std::string& name) { return nl_.add_input(name); }
  GateId dff(const std::string& name, GateId d = kNoGate) { return nl_.add_dff(name, d); }

  GateId and_(const std::string& name, std::vector<GateId> in) {
    return nl_.add_gate(GateType::And, name, std::move(in));
  }
  GateId nand_(const std::string& name, std::vector<GateId> in) {
    return nl_.add_gate(GateType::Nand, name, std::move(in));
  }
  GateId or_(const std::string& name, std::vector<GateId> in) {
    return nl_.add_gate(GateType::Or, name, std::move(in));
  }
  GateId nor_(const std::string& name, std::vector<GateId> in) {
    return nl_.add_gate(GateType::Nor, name, std::move(in));
  }
  GateId xor_(const std::string& name, std::vector<GateId> in) {
    return nl_.add_gate(GateType::Xor, name, std::move(in));
  }
  GateId xnor_(const std::string& name, std::vector<GateId> in) {
    return nl_.add_gate(GateType::Xnor, name, std::move(in));
  }
  GateId not_(const std::string& name, GateId in) {
    return nl_.add_gate(GateType::Not, name, {in});
  }
  GateId buf(const std::string& name, GateId in) {
    return nl_.add_gate(GateType::Buf, name, {in});
  }
  /// MUX pin order: (d0, d1, select); output = select ? d1 : d0.
  GateId mux(const std::string& name, GateId d0, GateId d1, GateId sel) {
    return nl_.add_gate(GateType::Mux2, name, {d0, d1, sel});
  }

  void output(GateId g) { nl_.add_output(g); }
  void connect_dff(GateId dff, GateId d) { nl_.set_dff_input(dff, d); }

  /// Finalize and return the netlist; the builder must not be reused.
  Netlist build() {
    nl_.finalize();
    return std::move(nl_);
  }

  /// Access the netlist under construction (e.g., for find()).
  const Netlist& peek() const noexcept { return nl_; }

 private:
  Netlist nl_;
};

}  // namespace uniscan
