// Gate-level primitives.
//
// A netlist is a vector of single-output gates; the gate's index doubles as
// the identifier of the net it drives. Primary inputs and D flip-flops are
// modelled as gates without combinational fanin (the DFF's D connection is
// its single fanin, sampled at the end of each clock cycle).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace uniscan {

/// Identifier of a gate and of the net it drives.
using GateId = std::uint32_t;
inline constexpr GateId kNoGate = 0xffffffffU;

enum class GateType : std::uint8_t {
  Input,   // primary input; no fanin
  Dff,     // D flip-flop; fanin[0] = D; output = Q
  Buf,     // 1 fanin
  Not,     // 1 fanin
  And,     // >= 1 fanin
  Nand,    // >= 1 fanin
  Or,      // >= 1 fanin
  Nor,     // >= 1 fanin
  Xor,     // >= 1 fanin
  Xnor,    // >= 1 fanin
  Mux2,    // fanin[0] = d0, fanin[1] = d1, fanin[2] = select (used by scan insertion)
  Const0,  // no fanin
  Const1,  // no fanin
};

/// Printable name of a gate type ("AND", "DFF", ...).
std::string_view gate_type_name(GateType type) noexcept;

/// Parse an ISCAS .bench gate keyword; returns true on success.
bool parse_gate_type(std::string_view keyword, GateType& out) noexcept;

/// Number of fanins required by a type; -1 means "one or more".
int gate_type_arity(GateType type) noexcept;

/// True for types evaluated in the combinational core (everything except
/// Input and Dff, whose values are boundary conditions of a time frame).
constexpr bool is_combinational(GateType type) noexcept {
  return type != GateType::Input && type != GateType::Dff;
}

struct Gate {
  GateType type = GateType::Buf;
  std::vector<GateId> fanins;
  std::string name;  // net name; unique within a netlist
};

}  // namespace uniscan
