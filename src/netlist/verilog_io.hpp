// Reader for structural gate-level Verilog — the other common distribution
// format of the ISCAS/ITC benchmarks.
//
// Supported subset (one module per file):
//   module name (ports);            // port list informational only
//   input  a, b, c;                 // scalar nets only
//   output y;
//   wire   w1, w2;
//   and    g1 (y, a, b);            // primitives: and or nand nor xor xnor
//   not    g2 (w1, a);              //             not buf
//   dff    q1 (Q, D);               // 2-arg form
//   dff    q2 (CK, Q, D);           // 3-arg form, clock ignored
//   endmodule
// Comments // and /* */ are stripped. Clock inputs that are used only as
// dff clocks are excluded from the primary inputs. Buses, assigns and
// hierarchies are rejected with a clear diagnostic.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace uniscan {

Netlist read_verilog(std::istream& in, std::string fallback_name);
Netlist read_verilog_string(std::string_view text, std::string fallback_name = "top");
Netlist read_verilog_file(const std::string& path);

/// Serialize as structural Verilog (round-trips through read_verilog).
void write_verilog(std::ostream& out, const Netlist& nl);
std::string write_verilog_string(const Netlist& nl);

}  // namespace uniscan
