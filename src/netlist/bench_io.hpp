// Reader and writer for the ISCAS-89 `.bench` netlist format.
//
// Grammar accepted (a superset of the classical format):
//   # comment
//   INPUT(name)
//   OUTPUT(name)
//   name = GATE(op1, op2, ...)       GATE in {AND,NAND,OR,NOR,XOR,XNOR,NOT,BUF(F),DFF,MUX,CONST0,CONST1}
//
// OUTPUT lines may appear before the net they reference is defined.
// MUX operand order is (d0, d1, select).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace uniscan {

/// Parse .bench text. Throws std::runtime_error with a line number (and the
/// originating `source` — typically a file path — when one is given) on
/// malformed input. Lines may end in CRLF or trailing whitespace; echoed
/// fragments of bad lines are capped so a corrupt file cannot explode the
/// diagnostic. The returned netlist is finalized.
Netlist read_bench(std::istream& in, std::string circuit_name, const std::string& source = {});
Netlist read_bench_string(std::string_view text, std::string circuit_name,
                          const std::string& source = {});
Netlist read_bench_file(const std::string& path);

/// Serialize a netlist into .bench text (round-trips through read_bench).
void write_bench(std::ostream& out, const Netlist& nl);
std::string write_bench_string(const Netlist& nl);

}  // namespace uniscan
