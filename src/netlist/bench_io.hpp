// Reader and writer for the ISCAS-89 `.bench` netlist format.
//
// Grammar accepted (a superset of the classical format):
//   # comment
//   INPUT(name)
//   OUTPUT(name)
//   name = GATE(op1, op2, ...)       GATE in {AND,NAND,OR,NOR,XOR,XNOR,
//                                    NOT/INV,BUF/BUFF,DFF,MUX,CONST0,CONST1}
//
// OUTPUT lines may appear before the net they reference is defined.
// MUX operand order is (d0, d1, select). Keywords are case-insensitive.
// Logical lines may wrap: a line whose parenthesis is still open, or that
// ends in ',' or '=', continues on the next non-blank line (comments and
// blank lines are tolerated anywhere, including inside a wrapped line).
// Diagnostics carry <source>:<line>: duplicate INPUT, duplicate definition,
// undefined (undriven) nets, arity mismatches, and trailing junk all fail
// loudly instead of parsing to a surprising netlist.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace uniscan {

/// Parse .bench text. Throws std::runtime_error with a line number (and the
/// originating `source` — typically a file path — when one is given) on
/// malformed input. Lines may end in CRLF or trailing whitespace; echoed
/// fragments of bad lines are capped so a corrupt file cannot explode the
/// diagnostic. The returned netlist is finalized.
Netlist read_bench(std::istream& in, std::string circuit_name, const std::string& source = {});
Netlist read_bench_string(std::string_view text, std::string circuit_name,
                          const std::string& source = {});
Netlist read_bench_file(const std::string& path);

/// Serialize a netlist into .bench text (round-trips through read_bench).
void write_bench(std::ostream& out, const Netlist& nl);
std::string write_bench_string(const Netlist& nl);

}  // namespace uniscan
