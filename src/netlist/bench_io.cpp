#include "netlist/bench_io.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "util/string_utils.hpp"

namespace uniscan {

namespace {

[[noreturn]] void fail_in(const std::string& source, std::size_t line_no, const std::string& msg) {
  std::string text = "bench parse error";
  if (!source.empty()) text += " in " + source;
  text += " at line " + std::to_string(line_no) + ": " + msg;
  throw std::runtime_error(text);
}

struct PendingGate {
  GateType type;
  std::string name;
  std::vector<std::string> operand_names;
  std::size_t line_no;
};

/// A physical line is an incomplete fragment of a logical line when its
/// parenthesis is still open or it visibly trails off. Real .bench writers
/// wrap wide operand lists as
///   G123 = AND(G1, G2,
///               G3)
/// and some put the `=` and the expression on separate lines.
bool needs_continuation(std::string_view body) {
  const auto open = body.find('(');
  if (open != std::string_view::npos && body.find(')', open) == std::string_view::npos) return true;
  return !body.empty() && (body.back() == ',' || body.back() == '=');
}

}  // namespace

Netlist read_bench(std::istream& in, std::string circuit_name, const std::string& source) {
  Netlist nl(std::move(circuit_name));
  const auto fail_at = [&source](std::size_t line_no, const std::string& msg) {
    fail_in(source, line_no, msg);
  };

  std::vector<std::string> output_names;
  std::vector<std::size_t> output_lines;
  std::vector<PendingGate> pending;

  const auto process = [&](std::string_view body, std::size_t line_no) {
    if (starts_with(to_upper(body), "INPUT(") || starts_with(to_upper(body), "OUTPUT(")) {
      const bool is_input = to_upper(body)[0] == 'I';
      const auto open = body.find('(');
      const auto close = body.rfind(')');
      if (close == std::string_view::npos || close < open) fail_at(line_no, "missing ')'");
      if (!trim(body.substr(close + 1)).empty())
        fail_at(line_no, "unexpected text after ')': '" +
                             excerpt(trim(body.substr(close + 1))) + "'");
      const auto name = std::string(trim(body.substr(open + 1, close - open - 1)));
      if (name.empty()) fail_at(line_no, is_input ? "empty INPUT name" : "empty OUTPUT name");
      if (is_input) {
        for (GateId pi : nl.inputs())
          if (nl.gate(pi).name == name)
            fail_at(line_no, "duplicate INPUT '" + excerpt(name) + "'");
        nl.add_input(name);
      } else {
        output_names.push_back(name);
        output_lines.push_back(line_no);
      }
      return;
    }

    const auto eq = body.find('=');
    if (eq == std::string_view::npos) fail_at(line_no, "expected INPUT/OUTPUT or assignment");
    const auto lhs = std::string(trim(body.substr(0, eq)));
    const std::string_view rhs = trim(body.substr(eq + 1));
    const auto open = rhs.find('(');
    const auto close = rhs.rfind(')');
    if (lhs.empty()) fail_at(line_no, "empty left-hand side");
    if (open == std::string_view::npos || close == std::string_view::npos || close < open)
      fail_at(line_no, "malformed gate expression");
    if (!trim(rhs.substr(close + 1)).empty())
      fail_at(line_no,
              "unexpected text after ')': '" + excerpt(trim(rhs.substr(close + 1))) + "'");

    GateType type;
    const auto keyword = trim(rhs.substr(0, open));
    if (!parse_gate_type(keyword, type))
      fail_at(line_no, "unknown gate type '" + excerpt(keyword) + "'");

    std::vector<std::string> operands;
    const std::string_view arg_list = trim(rhs.substr(open + 1, close - open - 1));
    if (!arg_list.empty()) {
      operands = split(arg_list, ',');
      for (const auto& op : operands)
        if (op.empty()) fail_at(line_no, "empty operand");
    }
    const int arity = gate_type_arity(type);
    if (arity >= 0 && operands.size() != static_cast<std::size_t>(arity))
      fail_at(line_no, std::string(keyword) + " takes exactly " + std::to_string(arity) +
                           " operand(s), got " + std::to_string(operands.size()));
    if (arity < 0 && operands.empty())
      fail_at(line_no, std::string(keyword) + " needs at least one operand");
    pending.push_back(PendingGate{type, lhs, std::move(operands), line_no});
  };

  // Assemble logical lines: strip comments/CR, join wrapped lines (open
  // parenthesis, trailing ',' or '=') before handing them to `process`.
  std::string line, logical;
  std::size_t line_no = 0, logical_line = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view body = line;
    if (const auto hash = body.find('#'); hash != std::string_view::npos)
      body = body.substr(0, hash);
    body = trim(body);
    if (body.empty()) continue;
    if (logical.empty()) {
      if (!needs_continuation(body)) {
        process(body, line_no);
        continue;
      }
      logical = body;
      logical_line = line_no;
    } else {
      logical += ' ';
      logical += body;
      if (needs_continuation(logical)) continue;
      process(logical, logical_line);
      logical.clear();
    }
  }
  if (!logical.empty())
    fail_at(logical_line, "unterminated line (expression continues past end of file)");

  // First pass: create all gates (fanins resolved later so definitions may
  // appear in any order, which real ISCAS files rely on).
  std::unordered_map<std::string, GateId> ids;
  for (GateId pi : nl.inputs()) ids.emplace(nl.gate(pi).name, pi);
  for (const PendingGate& pg : pending) {
    GateId id;
    if (pg.type == GateType::Dff) {
      id = nl.add_dff(pg.name);
    } else {
      // Create with empty fanins; fill in pass two via replace_fanin.
      std::vector<GateId> placeholder(pg.operand_names.size(), kNoGate);
      id = nl.add_gate(pg.type, pg.name, std::move(placeholder));
    }
    if (!ids.emplace(pg.name, id).second)
      fail_at(pg.line_no, "duplicate definition of '" + excerpt(pg.name) + "'");
  }

  // Second pass: resolve fanins.
  for (const PendingGate& pg : pending) {
    const GateId id = ids.at(pg.name);
    if (pg.type == GateType::Dff) {
      if (pg.operand_names.size() != 1) fail_at(pg.line_no, "DFF takes exactly one operand");
      const auto it = ids.find(pg.operand_names[0]);
      if (it == ids.end()) fail_at(pg.line_no, "undefined net '" + excerpt(pg.operand_names[0]) + "'");
      nl.set_dff_input(id, it->second);
    } else {
      for (std::size_t pin = 0; pin < pg.operand_names.size(); ++pin) {
        const auto it = ids.find(pg.operand_names[pin]);
        if (it == ids.end())
          fail_at(pg.line_no, "undefined net '" + excerpt(pg.operand_names[pin]) + "'");
        nl.replace_fanin(id, pin, it->second);
      }
    }
  }

  for (std::size_t i = 0; i < output_names.size(); ++i) {
    const auto it = ids.find(output_names[i]);
    if (it == ids.end())
      fail_at(output_lines[i],
              "OUTPUT references undefined net '" + excerpt(output_names[i]) + "'");
    nl.add_output(it->second);
  }

  nl.finalize();
  return nl;
}

Netlist read_bench_string(std::string_view text, std::string circuit_name,
                          const std::string& source) {
  std::istringstream is{std::string(text)};
  return read_bench(is, std::move(circuit_name), source);
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open bench file: " + path);
  return read_bench(f, std::filesystem::path(path).stem().string(), path);
}

void write_bench(std::ostream& out, const Netlist& nl) {
  out << "# " << nl.name() << " — written by uniscan\n";
  for (GateId pi : nl.inputs()) out << "INPUT(" << nl.gate(pi).name << ")\n";
  for (GateId po : nl.outputs()) out << "OUTPUT(" << nl.gate(po).name << ")\n";
  out << "\n";
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.type == GateType::Input) continue;
    out << gate.name << " = " << gate_type_name(gate.type) << "(";
    for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
      if (i) out << ", ";
      out << nl.gate(gate.fanins[i]).name;
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream os;
  write_bench(os, nl);
  return os.str();
}

}  // namespace uniscan
