#include "netlist/netlist.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace uniscan {

namespace {
[[noreturn]] void fail(const std::string& msg) { throw std::runtime_error("netlist: " + msg); }
}  // namespace

void Netlist::check_not_finalized(const char* op) const {
  if (finalized_) fail(std::string(op) + " called on a finalized netlist");
}

GateId Netlist::add_raw(GateType type, std::string net_name, std::vector<GateId> fanins) {
  check_not_finalized("add");
  if (net_name.empty()) fail("empty net name");
  if (by_name_.contains(net_name)) fail("duplicate net name '" + net_name + "'");
  const GateId id = static_cast<GateId>(gates_.size());
  by_name_.emplace(net_name, id);
  gates_.push_back(Gate{type, std::move(fanins), std::move(net_name)});
  return id;
}

GateId Netlist::add_input(std::string net_name) {
  const GateId id = add_raw(GateType::Input, std::move(net_name), {});
  inputs_.push_back(id);
  return id;
}

GateId Netlist::add_dff(std::string net_name, GateId d) {
  std::vector<GateId> fi;
  if (d != kNoGate) fi.push_back(d);
  const GateId id = add_raw(GateType::Dff, std::move(net_name), std::move(fi));
  dffs_.push_back(id);
  return id;
}

GateId Netlist::add_gate(GateType type, std::string net_name, std::vector<GateId> fanins) {
  if (type == GateType::Input || type == GateType::Dff)
    fail("add_gate cannot create INPUT/DFF; use add_input/add_dff");
  return add_raw(type, std::move(net_name), std::move(fanins));
}

void Netlist::add_output(GateId g) {
  check_not_finalized("add_output");
  if (g >= gates_.size()) fail("add_output: no such gate");
  if (std::find(outputs_.begin(), outputs_.end(), g) != outputs_.end())
    fail("gate '" + gates_[g].name + "' declared PO twice");
  outputs_.push_back(g);
}

void Netlist::set_dff_input(GateId dff, GateId d) {
  check_not_finalized("set_dff_input");
  if (dff >= gates_.size() || gates_[dff].type != GateType::Dff) fail("set_dff_input: not a DFF");
  gates_[dff].fanins.assign(1, d);
}

void Netlist::replace_fanin(GateId g, std::size_t pin, GateId new_net) {
  check_not_finalized("replace_fanin");
  if (g >= gates_.size()) fail("replace_fanin: no such gate");
  if (pin >= gates_[g].fanins.size()) fail("replace_fanin: no such pin");
  gates_[g].fanins[pin] = new_net;
}

void Netlist::finalize() {
  if (finalized_) fail("finalize called twice");

  // Arity and dangling-fanin checks.
  for (GateId g = 0; g < gates_.size(); ++g) {
    const Gate& gate = gates_[g];
    const int arity = gate_type_arity(gate.type);
    const auto n = gate.fanins.size();
    if (arity >= 0 && n != static_cast<std::size_t>(arity))
      fail("gate '" + gate.name + "' (" + std::string(gate_type_name(gate.type)) + ") has " +
           std::to_string(n) + " fanins, expected " + std::to_string(arity));
    if (arity < 0 && n < 1)
      fail("gate '" + gate.name + "' has no fanins");
    if (n > 64)
      fail("gate '" + gate.name + "' has " + std::to_string(n) +
           " fanins; the simulators support at most 64 — decompose wide gates");
    for (GateId fi : gate.fanins)
      if (fi == kNoGate || fi >= gates_.size())
        fail("gate '" + gate.name + "' has a dangling fanin");
  }
  if (outputs_.empty()) fail("circuit '" + name_ + "' has no primary outputs");

  // Kahn topological sort of the combinational core. DFF outputs and PIs are
  // sources; a DFF's D pin is a sink (consumes a combinational value but
  // introduces no combinational edge).
  std::vector<std::uint32_t> pending(gates_.size(), 0);
  fanouts_.assign(gates_.size(), {});
  for (GateId g = 0; g < gates_.size(); ++g) {
    for (GateId fi : gates_[g].fanins) fanouts_[fi].push_back(g);
    if (is_combinational(gates_[g].type))
      for (GateId fi : gates_[g].fanins)
        if (is_combinational(gates_[fi].type)) ++pending[g];
  }

  levels_.assign(gates_.size(), 0);
  topo_.clear();
  std::vector<GateId> ready;
  for (GateId g = 0; g < gates_.size(); ++g)
    if (is_combinational(gates_[g].type) && pending[g] == 0) ready.push_back(g);

  while (!ready.empty()) {
    const GateId g = ready.back();
    ready.pop_back();
    topo_.push_back(g);
    std::uint32_t lvl = 0;
    for (GateId fi : gates_[g].fanins) lvl = std::max(lvl, levels_[fi] + 1);
    levels_[g] = lvl;
    for (GateId fo : fanouts_[g])
      if (is_combinational(gates_[fo].type) && --pending[fo] == 0) ready.push_back(fo);
  }

  std::size_t comb_count = 0;
  for (const Gate& g : gates_)
    if (is_combinational(g.type)) ++comb_count;
  if (topo_.size() != comb_count) fail("combinational cycle detected in '" + name_ + "'");

  // Deterministic order: sort the topological order by (level, id) so that
  // results do not depend on the DFS/queue order above.
  std::sort(topo_.begin(), topo_.end(), [this](GateId a, GateId b) {
    return levels_[a] != levels_[b] ? levels_[a] < levels_[b] : a < b;
  });

  finalized_ = true;
}

std::optional<GateId> Netlist::find(std::string_view net_name) const {
  const auto it = by_name_.find(std::string(net_name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::size_t> Netlist::dff_index(GateId g) const {
  const auto it = std::find(dffs_.begin(), dffs_.end(), g);
  if (it == dffs_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - dffs_.begin());
}

std::optional<std::size_t> Netlist::output_index(GateId g) const {
  const auto it = std::find(outputs_.begin(), outputs_.end(), g);
  if (it == outputs_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - outputs_.begin());
}

std::string Netlist::stats_string() const {
  std::ostringstream os;
  os << name_ << ": " << inputs_.size() << " PIs, " << outputs_.size() << " POs, "
     << dffs_.size() << " DFFs, " << num_comb_gates() << " comb gates";
  return os.str();
}

}  // namespace uniscan
