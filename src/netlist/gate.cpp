#include "netlist/gate.hpp"

#include "util/string_utils.hpp"

namespace uniscan {

std::string_view gate_type_name(GateType type) noexcept {
  switch (type) {
    case GateType::Input: return "INPUT";
    case GateType::Dff: return "DFF";
    case GateType::Buf: return "BUF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Nand: return "NAND";
    case GateType::Or: return "OR";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
    case GateType::Mux2: return "MUX";
    case GateType::Const0: return "CONST0";
    case GateType::Const1: return "CONST1";
  }
  return "?";
}

bool parse_gate_type(std::string_view keyword, GateType& out) noexcept {
  const std::string k = to_upper(keyword);
  if (k == "DFF") out = GateType::Dff;
  else if (k == "BUF" || k == "BUFF") out = GateType::Buf;
  else if (k == "NOT" || k == "INV") out = GateType::Not;
  else if (k == "AND") out = GateType::And;
  else if (k == "NAND") out = GateType::Nand;
  else if (k == "OR") out = GateType::Or;
  else if (k == "NOR") out = GateType::Nor;
  else if (k == "XOR") out = GateType::Xor;
  else if (k == "XNOR") out = GateType::Xnor;
  else if (k == "MUX") out = GateType::Mux2;
  else if (k == "CONST0") out = GateType::Const0;
  else if (k == "CONST1") out = GateType::Const1;
  else return false;
  return true;
}

int gate_type_arity(GateType type) noexcept {
  switch (type) {
    case GateType::Input:
    case GateType::Const0:
    case GateType::Const1:
      return 0;
    case GateType::Dff:
    case GateType::Buf:
    case GateType::Not:
      return 1;
    case GateType::Mux2:
      return 3;
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor:
    case GateType::Xor:
    case GateType::Xnor:
      return -1;  // one or more
  }
  return -1;
}

}  // namespace uniscan
