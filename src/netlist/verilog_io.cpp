#include "netlist/verilog_io.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "util/string_utils.hpp"

namespace uniscan {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("verilog parse error: " + msg);
}

std::string strip_comments(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size();) {
    if (text.compare(i, 2, "//") == 0) {
      while (i < text.size() && text[i] != '\n') ++i;
    } else if (text.compare(i, 2, "/*") == 0) {
      const auto end = text.find("*/", i + 2);
      if (end == std::string_view::npos) fail("unterminated /* comment");
      i = end + 2;
      out.push_back(' ');
    } else {
      out.push_back(text[i++]);
    }
  }
  return out;
}

/// Split "a , b , c" keeping identifiers only.
std::vector<std::string> id_list(std::string_view s) {
  std::vector<std::string> out;
  for (auto& part : split(s, ','))
    if (!part.empty()) out.push_back(std::move(part));
  return out;
}

struct Instance {
  std::string keyword;  // lowercase primitive name
  std::string name;
  std::vector<std::string> args;
};

}  // namespace

Netlist read_verilog(std::istream& in, std::string fallback_name) {
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = strip_comments(buffer.str());

  std::string module_name = std::move(fallback_name);
  std::vector<std::string> inputs, outputs;
  std::set<std::string> wires;
  std::vector<Instance> instances;
  bool in_module = false, ended = false;

  // Statements are ';'-terminated; `endmodule` has no semicolon, handle it.
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t semi = text.find(';', pos);
    std::string stmt(trim(std::string_view(text).substr(
        pos, (semi == std::string::npos ? text.size() : semi) - pos)));
    pos = semi == std::string::npos ? text.size() : semi + 1;

    // `endmodule` may be glued in front of / behind a statement chunk.
    while (starts_with(stmt, "endmodule")) {
      ended = true;
      stmt = std::string(trim(std::string_view(stmt).substr(9)));
    }
    if (const auto e = stmt.find("endmodule"); e != std::string::npos) {
      ended = true;
      stmt = std::string(trim(std::string_view(stmt).substr(0, e)));
    }
    if (stmt.empty()) continue;
    if (ended) fail("statement after endmodule: '" + stmt + "'");

    if (stmt.find('[') != std::string::npos)
      fail("bus/vector declarations are not supported: '" + stmt + "'");
    if (starts_with(stmt, "assign")) fail("assign statements are not supported");

    // First token.
    std::size_t ws = 0;
    while (ws < stmt.size() && !std::isspace(static_cast<unsigned char>(stmt[ws]))) ++ws;
    const std::string keyword = to_upper(stmt.substr(0, ws));
    const std::string_view rest = trim(std::string_view(stmt).substr(ws));

    if (keyword == "MODULE") {
      if (in_module) fail("nested modules are not supported");
      in_module = true;
      const auto paren = rest.find('(');
      module_name = std::string(trim(rest.substr(0, paren)));
      continue;  // port list is informational
    }
    if (keyword == "INPUT") {
      for (auto& n : id_list(rest)) inputs.push_back(std::move(n));
      continue;
    }
    if (keyword == "OUTPUT") {
      for (auto& n : id_list(rest)) outputs.push_back(std::move(n));
      continue;
    }
    if (keyword == "WIRE") {
      for (auto& n : id_list(rest)) wires.insert(std::move(n));
      continue;
    }

    // Primitive instance: keyword name ( args );
    const auto open = rest.find('(');
    const auto close = rest.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos || close < open)
      fail("malformed instance: '" + stmt + "'");
    Instance inst;
    inst.keyword = keyword;
    inst.name = std::string(trim(rest.substr(0, open)));
    inst.args = id_list(rest.substr(open + 1, close - open - 1));
    if (inst.args.empty()) fail("instance with no connections: '" + stmt + "'");
    instances.push_back(std::move(inst));
  }
  if (!ended && in_module) fail("missing endmodule");

  // Identify clock nets: inputs used ONLY as the first argument of 3-arg dff
  // instances.
  std::set<std::string> clock_candidates;
  std::set<std::string> non_clock_uses;
  for (const Instance& inst : instances) {
    if (inst.keyword == "DFF" && inst.args.size() == 3) {
      clock_candidates.insert(inst.args[0]);
      non_clock_uses.insert(inst.args.begin() + 1, inst.args.end());
    } else {
      non_clock_uses.insert(inst.args.begin(), inst.args.end());
    }
  }

  Netlist nl(module_name);
  std::unordered_map<std::string, GateId> ids;
  for (const std::string& n : inputs) {
    if (clock_candidates.contains(n) && !non_clock_uses.contains(n)) continue;  // clock
    ids.emplace(n, nl.add_input(n));
  }

  // First pass: create gates (output net = first arg, except dff forms).
  struct Pending {
    GateId id;
    GateType type;
    std::vector<std::string> fanin_names;
  };
  std::vector<Pending> pending;
  for (const Instance& inst : instances) {
    GateType type;
    if (!parse_gate_type(inst.keyword, type))
      fail("unknown primitive '" + inst.keyword + "' (instance " + inst.name + ")");

    std::string out_net;
    std::vector<std::string> fanin_names;
    if (type == GateType::Dff) {
      if (inst.args.size() == 2) {
        out_net = inst.args[0];
        fanin_names = {inst.args[1]};
      } else if (inst.args.size() == 3) {
        out_net = inst.args[1];
        fanin_names = {inst.args[2]};
      } else {
        fail("dff '" + inst.name + "' must have 2 or 3 connections");
      }
    } else {
      out_net = inst.args[0];
      fanin_names.assign(inst.args.begin() + 1, inst.args.end());
    }

    if (ids.contains(out_net)) fail("net '" + out_net + "' driven twice");
    const GateId id = type == GateType::Dff
                          ? nl.add_dff(out_net)
                          : nl.add_gate(type, out_net,
                                        std::vector<GateId>(fanin_names.size(), kNoGate));
    ids.emplace(out_net, id);
    pending.push_back(Pending{id, type, std::move(fanin_names)});
  }

  // Second pass: resolve fanins.
  for (const Pending& p : pending) {
    for (std::size_t pin = 0; pin < p.fanin_names.size(); ++pin) {
      const auto it = ids.find(p.fanin_names[pin]);
      if (it == ids.end()) fail("undriven net '" + p.fanin_names[pin] + "'");
      if (p.type == GateType::Dff) nl.set_dff_input(p.id, it->second);
      else nl.replace_fanin(p.id, pin, it->second);
    }
  }

  for (const std::string& n : outputs) {
    const auto it = ids.find(n);
    if (it == ids.end()) fail("output '" + n + "' is never driven");
    nl.add_output(it->second);
  }

  nl.finalize();
  return nl;
}

Netlist read_verilog_string(std::string_view text, std::string fallback_name) {
  std::istringstream is{std::string(text)};
  return read_verilog(is, std::move(fallback_name));
}

Netlist read_verilog_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open verilog file: " + path);
  return read_verilog(f, std::filesystem::path(path).stem().string());
}

void write_verilog(std::ostream& out, const Netlist& nl) {
  out << "// " << nl.name() << " — written by uniscan\n";
  out << "module " << nl.name() << " (";
  bool first = true;
  for (GateId pi : nl.inputs()) {
    out << (first ? "" : ", ") << nl.gate(pi).name;
    first = false;
  }
  for (GateId po : nl.outputs()) out << ", " << nl.gate(po).name << "_po";
  out << ");\n";

  for (GateId pi : nl.inputs()) out << "  input " << nl.gate(pi).name << ";\n";
  for (GateId po : nl.outputs()) out << "  output " << nl.gate(po).name << "_po;\n";
  for (GateId g = 0; g < nl.num_gates(); ++g)
    if (nl.gate(g).type != GateType::Input) out << "  wire " << nl.gate(g).name << ";\n";

  std::size_t n = 0;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.type == GateType::Input) continue;
    if (gate.type == GateType::Mux2 || gate.type == GateType::Const0 ||
        gate.type == GateType::Const1)
      throw std::runtime_error("write_verilog: no primitive for " +
                               std::string(gate_type_name(gate.type)));
    std::string kw(gate_type_name(gate.type));
    std::transform(kw.begin(), kw.end(), kw.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    out << "  " << kw << " u" << n++ << " (" << gate.name;
    for (GateId fi : gate.fanins) out << ", " << nl.gate(fi).name;
    out << ");\n";
  }
  // PO buffers so output port names never collide with internal nets.
  for (GateId po : nl.outputs())
    out << "  buf u" << n++ << " (" << nl.gate(po).name << "_po, " << nl.gate(po).name
        << ");\n";
  out << "endmodule\n";
}

std::string write_verilog_string(const Netlist& nl) {
  std::ostringstream os;
  write_verilog(os, nl);
  return os.str();
}

}  // namespace uniscan
