#include "netlist/builder.hpp"

// Header-only; translation unit kept for component symmetry.
